(* tvs — command-line driver for the test-vector-stitching toolkit.

   Subcommands:
     stats     structural statistics of a circuit
     lint      rule-based static analysis + hidden-fault risk table
     atpg      traditional full-shift test generation (baseline)
     faultsim  fault-simulate a circuit's baseline test set
     stitch    run the stitched flow and report compression
     tpi       ATPG-aware test-point insertion driven by the risk table
     serve     persistent stitching daemon (Unix/TCP socket, JSONL frames)
     table     regenerate a paper table (1-5)
     ablation  run the design-choice ablations
     emit      render a circuit as structural Verilog
     xcheck    cross-validate against an external Verilog simulator
     fig1      print the worked-example walkthrough *)

module Circuit = Tvs_netlist.Circuit
module Bench_format = Tvs_netlist.Bench_format
module Stats = Tvs_netlist.Stats
module Fault_gen = Tvs_fault.Fault_gen
module Fault_sim = Tvs_fault.Fault_sim
module Parallel = Tvs_sim.Parallel
module Cube = Tvs_atpg.Cube
module Xor_scheme = Tvs_scan.Xor_scheme
module Policy = Tvs_core.Policy
module Baseline = Tvs_core.Baseline
module Experiments = Tvs_harness.Experiments
module Prep = Tvs_harness.Prep
module Lint = Tvs_lint.Lint
module Lint_diag = Tvs_lint.Diagnostic
module Tpi = Tvs_tpi.Tpi
module Cec = Tvs_cec.Cec
module Codec = Tvs_store.Codec
module Checkpoint = Tvs_store.Checkpoint
module Cache = Tvs_store.Cache
module Store_digest = Tvs_store.Digest

open Cmdliner

let msg_of_string_error r = Result.map_error (fun m -> `Msg m) r

(* A circuit argument: a known profile name ("s444"), "s27", "fig1", or a
   path to a .bench file. Unknown specs are rejected at parse time by
   cmdliner (usage error, non-zero exit). *)
let circuit_conv =
  Arg.conv ~docv:"CIRCUIT"
    ((fun s -> msg_of_string_error (Tvs_harness.Cli.check_spec s)), Format.pp_print_string)

(* The spec was validated by [circuit_conv]; only a malformed .bench file can
   still fail here. *)
let load_circuit ?scale spec =
  match Tvs_harness.Cli.load_circuit ?scale spec with
  | Ok c -> c
  | Error msg ->
      prerr_endline ("tvs: " ^ msg);
      exit Cmd.Exit.cli_error

let circuit_arg =
  let doc = "Circuit: a benchmark profile name (s444 ... s38584), s27, fig1, or a .bench file." in
  Arg.(required & pos 0 (some circuit_conv) None & info [] ~docv:"CIRCUIT" ~doc)

let scale_arg =
  let doc = "Linear scale factor applied to profile circuits." in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"F" ~doc)

(* Fan-out width of the fault-simulation domain pool. The flag (or the
   TVS_JOBS environment variable) sets the process-wide default that every
   Fault_sim context created without an explicit [jobs] picks up; results
   are bit-identical for every value. *)
let jobs_arg =
  let doc =
    "Number of domains for fault simulation (default: available cores). Results are identical \
     for every value; only wall-clock time changes."
  in
  let jobs_conv =
    Arg.conv ~docv:"N"
      ( (fun s ->
          match int_of_string_opt s with
          | None -> Error (`Msg (Printf.sprintf "invalid job count %S" s))
          | Some j -> msg_of_string_error (Tvs_harness.Cli.check_jobs j)),
        Format.pp_print_int )
  in
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "jobs"; "j" ] ~env:(Cmd.Env.info "TVS_JOBS") ~docv:"N" ~doc)

let set_jobs = Option.iter Tvs_util.Pool.set_default_jobs

(* Vector-batch size for multi-vector screening (Fault_sim.detected_matrix).
   Like --jobs, a pure scheduling knob: the flag (or TVS_BATCH) sets the
   process-wide default, and results are bit-identical for every value. *)
let batch_arg =
  let doc =
    "Vectors per domain-pool chunk in multi-vector fault screening (default: 16). Results are \
     identical for every value; only wall-clock time changes."
  in
  let batch_conv =
    Arg.conv ~docv:"N"
      ( (fun s ->
          match int_of_string_opt s with
          | None -> Error (`Msg (Printf.sprintf "invalid batch size %S" s))
          | Some b -> msg_of_string_error (Tvs_harness.Cli.check_batch b)),
        Format.pp_print_int )
  in
  Arg.(
    value
    & opt (some batch_conv) None
    & info [ "batch" ] ~env:(Cmd.Env.info "TVS_BATCH") ~docv:"N" ~doc)

let set_batch = Option.iter Tvs_fault.Fault_sim.set_default_batch
let prep_of ?scale spec = Prep.of_circuit (load_circuit ?scale spec)

(* Observability flags, shared by every subcommand. Both channels bypass
   stdout — the metrics table goes to stderr and the trace to its own file —
   so the printed tables stay byte-identical whether or not the flags are
   given (CI diffs on exactly that). *)
let metrics_arg =
  let doc = "Print the merged metrics registry to standard error at exit." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_arg =
  let doc =
    "Record span traces and write them to $(docv) at exit as Chrome trace-event JSON (load via \
     chrome://tracing or https://ui.perfetto.dev)."
  in
  let trace_conv =
    Arg.conv ~docv:"FILE"
      ((fun s -> msg_of_string_error (Tvs_harness.Cli.check_trace_file s)), Format.pp_print_string)
  in
  Arg.(value & opt (some trace_conv) None & info [ "trace" ] ~docv:"FILE" ~doc)

let setup_obs metrics trace =
  if metrics then begin
    Tvs_obs.Instrument.install_pool_probe ();
    at_exit (fun () -> prerr_string (Tvs_obs.Metrics.render ~all:true ()))
  end;
  match trace with
  | None -> ()
  | Some file ->
      Tvs_obs.Trace.start ();
      at_exit (fun () ->
          Tvs_obs.Trace.write file;
          Printf.eprintf "tvs: trace written to %s\n" file)

let obs_term = Term.(const setup_obs $ metrics_arg $ trace_arg)

(* Content-addressed result cache, shared by the subcommands that run whole
   experiments. The handle is installed process-wide so every [run_flow] a
   table triggers sees it. *)
let cache_arg =
  let doc =
    "Directory for the content-addressed result cache (created if missing). Experiment results \
     are keyed by circuit and configuration digests plus the store schema version, so a stale \
     entry can never be replayed."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let setup_cache = function
  | None -> ()
  | Some dir -> (
      match Cache.open_dir dir with
      | Ok c -> Experiments.set_cache (Some c)
      | Error msg ->
          prerr_endline ("tvs: " ^ msg);
          exit Cmd.Exit.cli_error)

let cache_term = Term.(const setup_cache $ cache_arg)

(* Equivalence gate behind the `--verify` flags of `tvs tpi` / `tvs emit`.
   Reports through stderr so the gated command's own stdout stays
   byte-identical with and without the gate. *)
let verify_gate ~what left right =
  match Cec.check ?cache:(Experiments.cache ()) left right with
  | r -> (
      match r.Cec.verdict with
      | Cec.Equivalent ->
          Printf.eprintf
            "tvs: %s verify: proven function-preserving (%d point(s), %d sat call(s))\n" what
            (Cec.points r) r.Cec.sat_calls
      | Cec.Inequivalent _ | Cec.Unknown _ ->
          prerr_string (Cec.to_ascii r);
          Printf.eprintf "tvs: %s verify FAILED\n" what;
          exit 1)
  | exception Cec.Mismatch msg ->
      Printf.eprintf "tvs: %s verify: interface mismatch: %s\n" what msg;
      exit 1

let stats_cmd =
  let run () spec scale =
    let c = load_circuit ~scale spec in
    Format.printf "%a@." Stats.pp (Stats.compute c);
    let issues = Tvs_netlist.Validate.check c in
    if issues = [] then Format.printf "validation: clean@."
    else begin
      Format.printf "validation issues:@.";
      List.iter (fun i -> Format.printf "  %a@." (Tvs_netlist.Validate.pp_issue c) i) issues
    end
  in
  Cmd.v (Cmd.info "stats" ~doc:"Structural statistics and validation of a circuit")
    Term.(const run $ obs_term $ circuit_arg $ scale_arg)

let lint_cmd =
  let circuit_opt_arg =
    let doc =
      "Circuit: a benchmark profile name (s444 ... s38584), s27, fig1, or a .bench file. \
       Optional with $(b,--list-rules)."
    in
    Arg.(value & pos 0 (some circuit_conv) None & info [] ~docv:"CIRCUIT" ~doc)
  in
  let format_arg =
    let doc = "Output format: $(b,ascii) or $(b,json)." in
    Arg.(
      value
      & opt (Arg.enum [ ("ascii", `Ascii); ("json", `Json) ]) `Ascii
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let rules_arg =
    let doc =
      "Keep only diagnostics whose rule id matches one of these comma-separated ids or id \
       prefixes (e.g. TVS-N001,TVS-D). See $(b,--list-rules)."
    in
    Arg.(value & opt (some string) None & info [ "rules" ] ~docv:"LIST" ~doc)
  in
  let fail_on_arg =
    let doc =
      "Exit 1 when a diagnostic at or above $(docv) exists: error, warning, info, or never."
    in
    Arg.(
      value
      & opt
          (Arg.enum
             [
               ("error", Some Lint_diag.Error);
               ("warning", Some Lint_diag.Warning);
               ("info", Some Lint_diag.Info);
               ("never", None);
             ])
          (Some Lint_diag.Error)
      & info [ "fail-on" ] ~docv:"SEV" ~doc)
  in
  let lint_shift_arg =
    let doc =
      "Shift size(s) for the hidden-fault risk table (default: chain length / 4). A \
       comma-separated list ($(b,--shift 2,4,8)) sweeps: the first shift is the primary table, \
       each further shift adds its own table."
    in
    Arg.(value & opt (some string) None & info [ "shift" ] ~docv:"S[,S...]" ~doc)
  in
  let sat_faults_arg =
    let doc = "Attempt SAT untestability proofs on at most $(docv) hardest faults (0 disables)." in
    Arg.(
      value & opt int Lint.default_options.Lint.sat_faults & info [ "sat-faults" ] ~docv:"N" ~doc)
  in
  let sat_budget_arg =
    let doc = "Per-fault SAT decision budget; exhausted proofs report TVS-D005 (undecided)." in
    Arg.(
      value
      & opt int Lint.default_options.Lint.sat_decisions
      & info [ "sat-budget" ] ~docv:"N" ~doc)
  in
  let list_rules_arg =
    let doc = "Print the rule catalog (id, severity, title) and exit." in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let die_cli msg =
    prerr_endline ("tvs: " ^ msg);
    exit Cmd.Exit.cli_error
  in
  let run () () list_rules spec scale format rules fail_on shift sat_faults sat_budget jobs =
    set_jobs jobs;
    if list_rules then
      List.iter
        (fun (r : Lint_diag.rule_info) ->
          Printf.printf "%s  %-7s  %s\n" r.Lint_diag.id
            (Lint_diag.severity_to_string r.Lint_diag.default_severity)
            r.Lint_diag.title)
        Lint_diag.catalog
    else begin
      let spec =
        match spec with
        | Some s -> s
        | None -> die_cli "lint needs a CIRCUIT argument (or --list-rules)"
      in
      let rules =
        Option.map
          (fun s ->
            let ids = List.filter (fun r -> r <> "") (String.split_on_char ',' s) in
            if ids = [] then die_cli "--rules: empty rule list";
            List.iter
              (fun r ->
                if
                  not
                    (List.exists
                       (fun (i : Lint_diag.rule_info) -> Lint_diag.matches r ~rule:i.Lint_diag.id)
                       Lint_diag.catalog)
                then die_cli (Printf.sprintf "--rules: %S matches no rule id (see --list-rules)" r))
              ids;
            ids)
          rules
      in
      let shift, sweep =
        match shift with
        | None -> (None, [])
        | Some s -> (
            let parse v =
              match int_of_string_opt v with
              | Some n when n >= 1 -> n
              | _ -> die_cli (Printf.sprintf "--shift: %S is not a positive shift size" v)
            in
            match List.filter (fun v -> v <> "") (String.split_on_char ',' s) with
            | [] -> die_cli "--shift: empty shift list"
            | first :: rest -> (Some (parse first), List.map parse rest))
      in
      let options = { Lint.rules; sat_faults; sat_decisions = sat_budget; shift; sweep } in
      (* Netlist files (.bench or structural Verilog) are linted from source
         so statement-level defects (syntax, cycles, duplicate/undefined
         nets) become diagnostics with line numbers in the original file;
         built-in circuits have no source text and go through the
         (cacheable) circuit-level path. *)
      let report =
        if Sys.file_exists spec then
          let text = In_channel.with_open_bin spec In_channel.input_all in
          Lint.run_source ~options
            ~format:(Tvs_verilog.Loader.detect ~path:spec text)
            ~name:Filename.(remove_extension (basename spec))
            text
        else Experiments.lint_report ~options (load_circuit ~scale spec)
      in
      (match format with
      | `Ascii -> print_string (Lint.to_ascii report)
      | `Json -> print_endline (Lint.to_json_string report));
      match fail_on with
      | Some sev when Lint.failed ~fail_on:sev report -> exit 1
      | _ -> ()
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Rule-based static analysis: structural, dataflow and scan-chain checks plus a \
          hidden-fault risk table")
    Term.(
      const run $ obs_term $ cache_term $ list_rules_arg $ circuit_opt_arg $ scale_arg
      $ format_arg $ rules_arg $ fail_on_arg $ lint_shift_arg $ sat_faults_arg $ sat_budget_arg
      $ jobs_arg)

let atpg_cmd =
  let run () spec scale jobs =
    set_jobs jobs;
    let prep = prep_of ~scale spec in
    let b = prep.Prep.baseline in
    Printf.printf "circuit        : %s\n" (Circuit.name prep.Prep.circuit);
    Printf.printf "faults (coll.) : %d (of %d total)\n" (Array.length prep.Prep.faults)
      (Array.length prep.Prep.all_faults);
    Printf.printf "vectors (aTV)  : %d\n" b.Baseline.num_vectors;
    Printf.printf "redundant      : %d\n" (List.length b.Baseline.redundant);
    Printf.printf "aborted        : %d\n" (List.length b.Baseline.aborted);
    Printf.printf "coverage       : %.4f\n" b.Baseline.coverage;
    Printf.printf "test time      : %d shift cycles\n" b.Baseline.time;
    Printf.printf "tester memory  : %d bits\n" b.Baseline.memory
  in
  Cmd.v (Cmd.info "atpg" ~doc:"Traditional full-shift test generation (the aTV baseline)")
    Term.(const run $ obs_term $ circuit_arg $ scale_arg $ jobs_arg)

let faultsim_cmd =
  let run () () spec scale jobs batch =
    set_jobs jobs;
    set_batch batch;
    let prep = prep_of ~scale spec in
    let d = Experiments.baseline_detection prep in
    Printf.printf "%s: %d/%d faults detected by the %d baseline vectors (%.2f%%)\n"
      (Circuit.name prep.Prep.circuit) d.Experiments.detected d.Experiments.faults
      d.Experiments.vectors
      (100.0 *. float_of_int d.Experiments.detected /. float_of_int d.Experiments.faults)
  in
  Cmd.v (Cmd.info "faultsim" ~doc:"Fault-simulate the baseline test set")
    Term.(const run $ obs_term $ cache_term $ circuit_arg $ scale_arg $ jobs_arg $ batch_arg)

(* Scheme and selection share their vocabulary with the serve protocol's job
   fields through Tvs_harness.Cli, so the CLI and a serve client can never
   drift apart. *)
let scheme_arg =
  let doc = "Observation scheme: nxor, vxor or hxor:<taps>." in
  let scheme_conv =
    Arg.conv ~docv:"SCHEME"
      ( (fun s -> msg_of_string_error (Tvs_harness.Cli.parse_scheme s)),
        fun fmt s -> Format.pp_print_string fmt (Xor_scheme.to_string s) )
  in
  Arg.(value & opt scheme_conv Xor_scheme.Nxor & info [ "scheme" ] ~docv:"SCHEME" ~doc)

let selection_arg =
  let doc = "Vector selection: random, hardness, most-faults or weighted." in
  let sel_conv =
    Arg.conv ~docv:"SEL"
      ( (fun s -> msg_of_string_error (Tvs_harness.Cli.parse_selection s)),
        fun fmt s -> Format.pp_print_string fmt (Policy.describe_selection s) )
  in
  Arg.(value & opt sel_conv (Policy.Most_faults 5) & info [ "selection" ] ~docv:"SEL" ~doc)

let shift_arg =
  let doc = "Fixed shift size per cycle; omit for the variable policy." in
  Arg.(value & opt (some int) None & info [ "shift" ] ~docv:"S" ~doc)

(* Shared by [stitch], [resume] and the serve daemon's done events: all must
   produce byte-identical summaries for the same run (CI diffs a resumed run
   and a served response against an uninterrupted run on exactly this
   block). *)
let print_stitch_summary prep scheme selection (r : Experiments.run_summary) =
  print_string
    (Experiments.render_summary ~circuit:(Circuit.name prep.Prep.circuit) ~scheme ~selection r)

let checkpoint_file_arg =
  let doc = "Save an engine checkpoint to $(docv) periodically (atomic temp+rename writes)." in
  let ckpt_conv =
    Arg.conv ~docv:"FILE"
      ( (fun s -> msg_of_string_error (Tvs_harness.Cli.check_checkpoint_file s)),
        Format.pp_print_string )
  in
  Arg.(value & opt (some ckpt_conv) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc = "Checkpoint period, in stitched cycles." in
  let every_conv =
    Arg.conv ~docv:"N"
      ( (fun s ->
          match int_of_string_opt s with
          | None -> Error (`Msg (Printf.sprintf "invalid checkpoint period %S" s))
          | Some n -> msg_of_string_error (Tvs_harness.Cli.check_checkpoint_every n)),
        Format.pp_print_int )
  in
  Arg.(value & opt every_conv 4 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

(* The checkpoint callback: wraps each engine snapshot with the run's
   identity so [resume] can rebuild and digest-verify the same run. *)
let checkpoint_hook ~file ~every ~spec ~scale ~scheme ~selection ~shift ~label ?jobs prep =
  let config =
    Experiments.config_for ~scheme
      ?shift:(Option.map (fun s -> Policy.Fixed s) shift)
      ~selection ?jobs prep
  in
  let circuit_digest = Store_digest.circuit prep.Prep.circuit in
  let config_digest = Store_digest.config ~config ~label in
  ( every,
    fun snapshot ->
      Checkpoint.save file
        {
          Checkpoint.spec;
          scale;
          scheme;
          selection;
          shift;
          label;
          circuit_digest;
          config_digest;
          snapshot;
        } )

let preflight_arg =
  let doc =
    "Run the lint preflight gate (structural and constant-propagation checks) before stitching \
     and abort on any error-severity finding."
  in
  Arg.(value & flag & info [ "preflight" ] ~doc)

let stitch_cmd =
  let run () () spec scale scheme selection shift preflight jobs batch ckpt every =
    set_jobs jobs;
    set_batch batch;
    let prep = prep_of ~scale spec in
    let shift_policy = Option.map (fun s -> Policy.Fixed s) shift in
    let checkpoint =
      Option.map
        (fun file ->
          checkpoint_hook ~file ~every ~spec ~scale ~scheme ~selection ~shift ~label:"cli" ?jobs
            prep)
        ckpt
    in
    let r =
      try
        Experiments.run_flow ~scheme ?shift:shift_policy ~selection ~preflight ?jobs ?batch
          ?checkpoint ~label:"cli" prep
      with Failure msg when preflight ->
        prerr_endline ("tvs: " ^ msg);
        exit Cmd.Exit.some_error
    in
    print_stitch_summary prep scheme selection r
  in
  Cmd.v (Cmd.info "stitch" ~doc:"Run the stitched compression flow")
    Term.(
      const run $ obs_term $ cache_term $ circuit_arg $ scale_arg $ scheme_arg $ selection_arg
      $ shift_arg $ preflight_arg $ jobs_arg $ batch_arg $ checkpoint_file_arg
      $ checkpoint_every_arg)

let resume_cmd =
  let file_arg =
    let doc = "Checkpoint file written by stitch --checkpoint." in
    let resume_conv =
      Arg.conv ~docv:"FILE"
        ( (fun s -> msg_of_string_error (Tvs_harness.Cli.check_resume_file s)),
          Format.pp_print_string )
    in
    Arg.(required & pos 0 (some resume_conv) None & info [] ~docv:"FILE" ~doc)
  in
  let die msg =
    prerr_endline ("tvs: " ^ msg);
    exit Cmd.Exit.some_error
  in
  let run () () file jobs batch ckpt every =
    set_jobs jobs;
    set_batch batch;
    match Checkpoint.load file with
    | Error e ->
        die (Printf.sprintf "cannot resume from %S: %s" file (Codec.error_to_string e))
    | Ok ck ->
        let spec =
          match Tvs_harness.Cli.check_spec ck.Checkpoint.spec with
          | Ok s -> s
          | Error msg -> die (Printf.sprintf "checkpoint circuit unavailable: %s" msg)
        in
        let prep = prep_of ~scale:ck.Checkpoint.scale spec in
        if
          not
            (Store_digest.equal
               (Store_digest.circuit prep.Prep.circuit)
               ck.Checkpoint.circuit_digest)
        then
          die
            (Printf.sprintf "circuit digest mismatch: %S no longer builds the circuit %S was \
                             checkpointed on"
               spec file);
        let shift_policy = Option.map (fun s -> Policy.Fixed s) ck.Checkpoint.shift in
        let config =
          Experiments.config_for ~scheme:ck.Checkpoint.scheme ?shift:shift_policy
            ~selection:ck.Checkpoint.selection ?jobs prep
        in
        if
          not
            (Store_digest.equal
               (Store_digest.config ~config ~label:ck.Checkpoint.label)
               ck.Checkpoint.config_digest)
        then die (Printf.sprintf "configuration digest mismatch: %S was written by a build with \
                                  different engine options" file);
        let checkpoint =
          Option.map
            (fun file ->
              checkpoint_hook ~file ~every ~spec ~scale:ck.Checkpoint.scale
                ~scheme:ck.Checkpoint.scheme ~selection:ck.Checkpoint.selection
                ~shift:ck.Checkpoint.shift ~label:ck.Checkpoint.label ?jobs prep)
            ckpt
        in
        let r =
          Experiments.run_flow ~scheme:ck.Checkpoint.scheme ?shift:shift_policy
            ~selection:ck.Checkpoint.selection ?jobs ?batch ~resume:ck.Checkpoint.snapshot
            ?checkpoint ~label:ck.Checkpoint.label prep
        in
        print_stitch_summary prep ck.Checkpoint.scheme ck.Checkpoint.selection r
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Continue an interrupted stitched run from a checkpoint; the output is byte-identical \
          to the uninterrupted run's")
    Term.(
      const run $ obs_term $ cache_term $ file_arg $ jobs_arg $ batch_arg $ checkpoint_file_arg
      $ checkpoint_every_arg)

let tpi_cmd =
  let format_arg =
    let doc = "Output format: $(b,ascii) or $(b,json)." in
    Arg.(
      value
      & opt (Arg.enum [ ("ascii", `Ascii); ("json", `Json) ]) `Ascii
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let positive name =
    Arg.conv ~docv:"K"
      ( (fun s ->
          match int_of_string_opt s with
          | Some n when n >= 1 -> Ok n
          | _ -> Error (`Msg (Printf.sprintf "invalid %s %S (want a positive integer)" name s))),
        Format.pp_print_int )
  in
  let points_arg =
    let doc = "Number of test points to select (greedy rounds)." in
    Arg.(value & opt (positive "point count") Tpi.default_options.Tpi.points
         & info [ "points"; "k" ] ~docv:"K" ~doc)
  in
  let budget_arg =
    let doc = "Candidate pool size: evaluate only the top $(docv) mined candidates." in
    Arg.(value & opt (positive "candidate budget") Tpi.default_options.Tpi.budget
         & info [ "budget" ] ~docv:"N" ~doc)
  in
  let tpi_shift_arg =
    let doc =
      "Mining shift for the risk analysis candidates are ranked under (default: chain length / \
       4, the lint default)."
    in
    Arg.(value & opt (some (positive "shift")) None & info [ "shift" ] ~docv:"S" ~doc)
  in
  let po_taps_arg =
    let doc = "Also mine direct primary-output observation taps." in
    Arg.(value & flag & info [ "po-taps" ] ~doc)
  in
  let controls_arg =
    let doc = "Also mine control points (OR-force-1 / AND-force-0 behind a new input)." in
    Arg.(value & flag & info [ "controls" ] ~doc)
  in
  let verify_arg =
    let doc =
      "Prove the accepted transform function-preserving with the equivalence checker (as \
       $(b,tvs equiv) would): original vs the circuit with every selected point inserted, \
       tpi_ctl_* tied to 0, tpi_po_*/tpi_obs_* as inclusion extras. Exit 1 if the proof fails."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let run () () spec scale points budget shift po_taps controls format verify jobs batch =
    set_jobs jobs;
    set_batch batch;
    let c = load_circuit ~scale spec in
    let options = { Tpi.points; budget; shift; po_taps; controls } in
    match Tpi.run ~options c with
    | r ->
        (match format with
        | `Ascii -> print_string (Tpi.to_ascii r)
        | `Json -> print_endline (Tpi.to_json_string r));
        if verify then begin
          let cands = List.map (fun (p : Tpi.point) -> p.Tpi.candidate) r.Tpi.points in
          let transformed = Tvs_tpi.Transform.apply c cands in
          verify_gate ~what:"tpi" c transformed
        end
    | exception Circuit.Build_error msg ->
        prerr_endline ("tvs: " ^ msg);
        exit Cmd.Exit.some_error
  in
  Cmd.v
    (Cmd.info "tpi"
       ~doc:
         "ATPG-aware test-point insertion: mine candidates from the lint risk table, select \
          greedily by re-running the stitched flow, report hidden-to-caught conversions")
    Term.(
      const run $ obs_term $ cache_term $ circuit_arg $ scale_arg $ points_arg $ budget_arg
      $ tpi_shift_arg $ po_taps_arg $ controls_arg $ format_arg $ verify_arg $ jobs_arg
      $ batch_arg)

let table_cmd =
  let which =
    let doc = "Table number (1-5)." in
    let table_conv =
      Arg.conv ~docv:"N"
        ( (fun s ->
            match int_of_string_opt s with
            | None -> Error (`Msg (Printf.sprintf "invalid table number %S" s))
            | Some n -> msg_of_string_error (Tvs_harness.Cli.check_table n)),
          Format.pp_print_int )
    in
    Arg.(required & pos 0 (some table_conv) None & info [] ~docv:"N" ~doc)
  in
  let circuits_arg =
    let doc = "Restrict to these circuits (comma-separated)." in
    Arg.(value & opt (some string) None & info [ "circuits" ] ~docv:"LIST" ~doc)
  in
  let run () () n scale circuits jobs batch =
    set_jobs jobs;
    set_batch batch;
    let circuits = Option.map (String.split_on_char ',') circuits in
    (* scale < 0 means "per-circuit defaults". *)
    let scale = if scale < 0.0 then None else Some scale in
    let text =
      match n with
      | 1 -> Experiments.table1 ()
      | 2 -> Experiments.table2 ?scale ?circuits ()
      | 3 -> Experiments.table3 ?scale ?circuits ()
      | 4 -> Experiments.table4 ?scale ?circuits ()
      | _ -> Experiments.table5 ?scale ?circuits ()
    in
    print_string text
  in
  let scale_arg =
    let doc = "Uniform scale override; omit for per-circuit defaults." in
    Arg.(value & opt float (-1.0) & info [ "scale" ] ~docv:"F" ~doc)
  in
  Cmd.v (Cmd.info "table" ~doc:"Regenerate a paper table")
    Term.(const run $ obs_term $ cache_term $ which $ scale_arg $ circuits_arg $ jobs_arg
      $ batch_arg)

let ablation_cmd =
  let circuit_arg =
    let doc = "Profile circuit for the ablations." in
    Arg.(value & opt string "s953" & info [ "circuit" ] ~docv:"NAME" ~doc)
  in
  let run () scale circuit jobs batch =
    set_jobs jobs;
    set_batch batch;
    print_string (Experiments.ablations ~scale ~circuit ?jobs ())
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Run the design-choice ablations")
    Term.(const run $ obs_term $ scale_arg $ circuit_arg $ jobs_arg $ batch_arg)

let misr_cmd =
  let circuit_arg =
    let doc = "Profile circuit for the study." in
    Arg.(value & opt string "s953" & info [ "circuit" ] ~docv:"NAME" ~doc)
  in
  let run () scale circuit jobs =
    set_jobs jobs;
    print_string (Experiments.misr_study ~scale ~circuit ())
  in
  Cmd.v (Cmd.info "misr" ~doc:"MISR aliasing and diagnosis-resolution study")
    Term.(const run $ obs_term $ scale_arg $ circuit_arg $ jobs_arg)

let comparison_cmd =
  let circuits_arg =
    let doc = "Circuits (comma-separated)." in
    Arg.(value & opt (some string) None & info [ "circuits" ] ~docv:"LIST" ~doc)
  in
  let run () scale circuits jobs =
    set_jobs jobs;
    let circuits = Option.map (String.split_on_char ',') circuits in
    print_string (Experiments.comparison_study ~scale ?circuits ())
  in
  Cmd.v (Cmd.info "comparison" ~doc:"Static reordering vs stitched generation")
    Term.(const run $ obs_term $ scale_arg $ circuits_arg $ jobs_arg)

let diagnosis_cmd =
  let circuit_arg =
    let doc = "Profile circuit for the study." in
    Arg.(value & opt string "s444" & info [ "circuit" ] ~docv:"NAME" ~doc)
  in
  let run () scale circuit jobs =
    set_jobs jobs;
    print_string (Experiments.diagnosis_study ~scale ~circuit ())
  in
  Cmd.v (Cmd.info "diagnosis" ~doc:"Fault-dictionary diagnosis resolution study")
    Term.(const run $ obs_term $ scale_arg $ circuit_arg $ jobs_arg)

let randtest_cmd =
  let patterns_arg =
    let doc = "Number of LFSR patterns." in
    Arg.(value & opt int 256 & info [ "patterns" ] ~docv:"N" ~doc)
  in
  let run () patterns jobs =
    set_jobs jobs;
    print_string (Experiments.random_testability ~patterns ())
  in
  Cmd.v (Cmd.info "randtest" ~doc:"LFSR random-pattern testability sweep")
    Term.(const run $ obs_term $ patterns_arg $ jobs_arg)

let export_cmd =
  let out_arg =
    let doc = "Output file for the tester program." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc)
  in
  let run () spec scale scheme selection shift jobs out =
    set_jobs jobs;
    let prep = prep_of ~scale spec in
    let c = prep.Prep.circuit in
    let chain_len = Circuit.num_flops c in
    let base = Tvs_core.Engine.default_config ~chain_len in
    let config =
      {
        base with
        Tvs_core.Engine.scheme;
        selection;
        shift =
          (match shift with Some s -> Policy.Fixed s | None -> base.Tvs_core.Engine.shift);
        jobs;
      }
    in
    let r =
      Tvs_core.Engine.run ~config ~fallback:prep.Prep.baseline.Baseline.vectors
        ~rng:(Tvs_util.Rng.of_string (Circuit.name c ^ ":export")) prep.Prep.ctx
        ~faults:prep.Prep.testable
    in
    let stitched =
      Tvs_scan.Tester_format.of_stitched ~chain_len ~npi:(Circuit.num_inputs c)
        ~vectors:r.Tvs_core.Engine.stimuli ()
    in
    (* Append the traditional extras as full loads. *)
    let extra_ops =
      List.concat_map
        (fun (v : Cube.vector) ->
          Tvs_scan.Protocol.load_ops ~fresh:v.Cube.scan @ [ Tvs_scan.Protocol.Capture v.Cube.pi ])
        r.Tvs_core.Engine.extra_stimuli
    in
    let program =
      { stitched with Tvs_scan.Tester_format.ops = stitched.Tvs_scan.Tester_format.ops @ extra_ops }
    in
    Tvs_scan.Tester_format.write_file out program;
    Printf.printf "wrote %s: %d shift cycles, %d captures\n" out
      (Tvs_scan.Tester_format.num_shift_cycles program)
      (Tvs_scan.Tester_format.num_captures program)
  in
  Cmd.v (Cmd.info "export" ~doc:"Run the stitched flow and write an ATE program file")
    Term.(
      const run $ obs_term $ circuit_arg $ scale_arg $ scheme_arg $ selection_arg $ shift_arg
      $ jobs_arg $ out_arg)

let emit_cmd =
  let out_arg =
    let doc = "Output Verilog file (default: standard output)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"OUT" ~doc)
  in
  let scan_flag =
    let doc =
      "Emit the scan-inserted view: flip-flops become tvs_sdff cells chained from a new scan_in \
       port to a new scan_out port, as a DFT tool would hand to the tester."
    in
    Arg.(value & flag & info [ "scan" ] ~doc)
  in
  let cells_arg =
    let doc = "Also write the behavioural tvs cell models (tvs_dff/tvs_sdff/tvs_mux2) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "cells" ] ~docv:"FILE" ~doc)
  in
  let verify_arg =
    let doc =
      "Re-parse the emitted Verilog and prove it equivalent to the source circuit with the \
       equivalence checker (scan pins are dropped on re-parse, so the scan view verifies \
       against the functional circuit). Exit 1 on any miscompare."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let run () spec scale scan cells verify out =
    let c = load_circuit ~scale spec in
    let e =
      try Tvs_verilog.Emitter.emit ~scan c
      with Invalid_argument msg ->
        prerr_endline ("tvs: " ^ msg);
        exit Cmd.Exit.cli_error
    in
    (match out with
    | None -> print_string e.Tvs_verilog.Emitter.text
    | Some path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc e.Tvs_verilog.Emitter.text);
        Printf.eprintf "tvs: wrote %s (module %s)\n" path e.Tvs_verilog.Emitter.module_name);
    Option.iter
      (fun path ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc Tvs_verilog.Emitter.cell_models);
        Printf.eprintf "tvs: wrote %s (cell models)\n" path)
      cells;
    if verify then begin
      match
        Tvs_verilog.Loader.parse_string ~format:Tvs_verilog.Loader.Verilog
          e.Tvs_verilog.Emitter.text
      with
      | reparsed -> verify_gate ~what:"emit" c reparsed
      | exception Tvs_netlist.Bench_format.Parse_error (line, msg) ->
          Printf.eprintf "tvs: emit verify: emitted Verilog does not re-parse (line %d): %s\n"
            line msg;
          exit 1
    end
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Render a circuit as structural Verilog (optionally scan-inserted)")
    Term.(
      const run $ obs_term $ circuit_arg $ scale_arg $ scan_flag $ cells_arg $ verify_arg
      $ out_arg)

let equiv_cmd =
  let left_arg =
    let doc = "Reference (golden) circuit: a profile name, s27, fig1, or a netlist file." in
    Arg.(required & pos 0 (some circuit_conv) None & info [] ~docv:"LEFT" ~doc)
  in
  let right_arg =
    let doc = "Revised circuit to check against $(i,LEFT). Omit with $(b,--scan)." in
    Arg.(value & pos 1 (some circuit_conv) None & info [] ~docv:"RIGHT" ~doc)
  in
  let scan_flag =
    let doc =
      "Check $(i,LEFT) against its own scan-inserted form, proving the scan-mux rewrite \
       function-preserving under the automatic scan_en=0 tie."
    in
    Arg.(value & flag & info [ "scan" ] ~doc)
  in
  let format_arg =
    let doc = "Output format: $(b,ascii) or $(b,json)." in
    Arg.(
      value
      & opt (Arg.enum [ ("ascii", `Ascii); ("json", `Json) ]) `Ascii
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let positive name =
    Arg.conv ~docv:"N"
      ( (fun s ->
          match int_of_string_opt s with
          | Some n when n >= 1 -> Ok n
          | _ -> Error (`Msg (Printf.sprintf "invalid %s %S (want a positive integer)" name s))),
        Format.pp_print_int )
  in
  let budget_arg =
    let doc = "SAT decision budget per observation-point miter." in
    Arg.(value
         & opt (positive "sat budget") Cec.default_options.Cec.budget
         & info [ "budget" ] ~docv:"N" ~doc)
  in
  let vectors_arg =
    let doc = "Random-simulation rounds for candidate-class discovery (63 patterns each)." in
    Arg.(value
         & opt (positive "vector rounds") Cec.default_options.Cec.vectors
         & info [ "vectors" ] ~docv:"N" ~doc)
  in
  let scan_map_arg =
    let doc =
      "Pin ties applied before checking, comma-separated $(b,name=0|1) (e.g. \
       $(b,scan_en=0,test_mode=1)). The scan_en and tpi_ctl_* conventions are tied to 0 \
       automatically."
    in
    Arg.(value & opt (some string) None & info [ "scan-map" ] ~docv:"LIST" ~doc)
  in
  let run () () left_spec right_spec scan scale format budget vectors scan_map jobs =
    set_jobs jobs;
    let left = load_circuit ~scale left_spec in
    let right =
      match (right_spec, scan) with
      | Some _, true ->
          prerr_endline "tvs: give either RIGHT or --scan, not both";
          exit Cmd.Exit.cli_error
      | Some spec, false -> load_circuit ~scale spec
      | None, true -> (
          try (Tvs_netlist.Scan_insert.insert left).Tvs_netlist.Scan_insert.circuit
          with Circuit.Build_error msg ->
            prerr_endline ("tvs: scan insertion failed: " ^ msg);
            exit Cmd.Exit.cli_error)
      | None, false ->
          prerr_endline "tvs: missing RIGHT circuit (or --scan)";
          exit Cmd.Exit.cli_error
    in
    let ties =
      match scan_map with
      | None -> []
      | Some s -> (
          match Tvs_harness.Cli.parse_ties s with
          | Ok l -> List.map (fun (name, value) -> { Cec.name; value }) l
          | Error msg ->
              prerr_endline ("tvs: " ^ msg);
              exit Cmd.Exit.cli_error)
    in
    let options = { Cec.default_options with Cec.budget; vectors; ties } in
    match Cec.check ~options ?cache:(Experiments.cache ()) left right with
    | r -> (
        (match format with
        | `Ascii -> print_string (Cec.to_ascii r)
        | `Json -> print_endline (Cec.to_json_string r));
        match r.Cec.verdict with
        | Cec.Equivalent -> ()
        | Cec.Inequivalent _ -> exit 1
        | Cec.Unknown _ -> exit 3)
    | exception Cec.Mismatch msg ->
        prerr_endline ("tvs: interface mismatch: " ^ msg);
        exit Cmd.Exit.some_error
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:
         "SAT-sweeping combinational equivalence check of two netlists under the full-scan \
          abstraction. Exit status: 0 equivalent, 1 inequivalent (a simulation-confirmed \
          counterexample is printed), 3 undecided within the SAT budget.")
    Term.(
      const run $ obs_term $ cache_term $ left_arg $ right_arg $ scan_flag $ scale_arg
      $ format_arg $ budget_arg $ vectors_arg $ scan_map_arg $ jobs_arg)

let xcheck_cmd =
  let workdir_arg =
    let doc =
      "Directory for the generated design/testbench/simulator artifacts (default: a fresh \
       directory under the system temp dir, printed and kept for inspection)."
    in
    Arg.(value & opt (some string) None & info [ "workdir" ] ~docv:"DIR" ~doc)
  in
  let require_flag =
    let doc =
      "Fail (exit 1) when no external simulator is installed, instead of skipping. CI sets this \
       so the cross-check can never silently stop running."
    in
    Arg.(value & flag & info [ "require" ] ~doc)
  in
  let run () spec scale scheme selection shift jobs workdir require =
    set_jobs jobs;
    let prep = prep_of ~scale spec in
    let c = prep.Prep.circuit in
    (* Sequential circuits replay the exact stitched schedule the engine
       produced (the same assembly [tvs export] writes to the ATE program);
       combinational circuits apply the baseline vectors. Either way the
       external simulator sees the stimulus the flow would really apply. *)
    let program =
      if Circuit.num_flops c > 0 then begin
        let chain_len = Circuit.num_flops c in
        let base = Tvs_core.Engine.default_config ~chain_len in
        let config =
          {
            base with
            Tvs_core.Engine.scheme;
            selection;
            shift =
              (match shift with Some s -> Policy.Fixed s | None -> base.Tvs_core.Engine.shift);
            jobs;
          }
        in
        let r =
          Tvs_core.Engine.run ~config ~fallback:prep.Prep.baseline.Baseline.vectors
            ~rng:(Tvs_util.Rng.of_string (Circuit.name c ^ ":xcheck")) prep.Prep.ctx
            ~faults:prep.Prep.testable
        in
        let stitched =
          Tvs_scan.Tester_format.of_stitched ~chain_len ~npi:(Circuit.num_inputs c)
            ~vectors:r.Tvs_core.Engine.stimuli ()
        in
        let extra_ops =
          List.concat_map
            (fun (v : Cube.vector) ->
              Tvs_scan.Protocol.load_ops ~fresh:v.Cube.scan
              @ [ Tvs_scan.Protocol.Capture v.Cube.pi ])
            r.Tvs_core.Engine.extra_stimuli
        in
        Tvs_verilog.Xcheck.Scan (stitched.Tvs_scan.Tester_format.ops @ extra_ops)
      end
      else
        Tvs_verilog.Xcheck.Comb
          (Array.to_list
             (Array.map (fun (v : Cube.vector) -> v.Cube.pi) prep.Prep.baseline.Baseline.vectors))
    in
    match Tvs_verilog.Xcheck.run ?workdir c program with
    | Tvs_verilog.Xcheck.Agree { observations } ->
        Printf.printf "xcheck %s: PASS — external simulation agrees on %d observation(s)\n"
          (Circuit.name c) observations
    | Tvs_verilog.Xcheck.Disagree { index; internal_; external_ } ->
        Printf.printf
          "xcheck %s: FAIL — divergence at observation %d: internal %S, external %S\n"
          (Circuit.name c) index internal_ external_;
        exit 1
    | Tvs_verilog.Xcheck.Skipped reason ->
        if require then begin
          Printf.eprintf "tvs: xcheck skipped but --require was given: %s\n" reason;
          exit 1
        end
        else Printf.printf "xcheck %s: SKIP — %s\n" (Circuit.name c) reason
    | Tvs_verilog.Xcheck.Tool_error msg ->
        prerr_endline ("tvs: xcheck tool failure: " ^ msg);
        exit 1
  in
  Cmd.v
    (Cmd.info "xcheck"
       ~doc:
         "Cross-validate the internal simulator against iverilog: emit Verilog plus a \
          self-checking testbench for the stitched program and compare traces")
    Term.(
      const run $ obs_term $ circuit_arg $ scale_arg $ scheme_arg $ selection_arg $ shift_arg
      $ jobs_arg $ workdir_arg $ require_flag)

let fig1_cmd =
  let run () = print_string (Experiments.table1 ()) in
  Cmd.v (Cmd.info "fig1" ~doc:"Print the Section 3 worked example (Table 1)")
    Term.(const run $ obs_term)

let serve_cmd =
  let socket_arg =
    let doc = "Listen on a Unix-domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc = "Listen on 127.0.0.1 at TCP port $(docv)." in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let state_arg =
    let doc =
      "State directory for crash recovery (created if missing): large jobs checkpoint here, \
       inline netlists are persisted here, and $(b,*.ckpt) files found at startup are resumed \
       before the server accepts connections."
    in
    Arg.(value & opt (some string) None & info [ "state" ] ~docv:"DIR" ~doc)
  in
  let threshold_arg =
    let doc =
      "Minimum collapsed-fault count for a job to checkpoint at all (smaller jobs rerun cheaper \
       than they checkpoint). Needs $(b,--state)."
    in
    Arg.(value & opt int 1000 & info [ "checkpoint-threshold" ] ~docv:"N" ~doc)
  in
  let run () () socket port state every threshold jobs batch =
    set_jobs jobs;
    set_batch batch;
    let listen =
      match (socket, port) with
      | Some path, None -> Tvs_serve.Server.Unix_socket path
      | None, Some port -> Tvs_serve.Server.Tcp port
      | Some _, Some _ ->
          prerr_endline "tvs: serve takes --socket or --port, not both";
          exit Cmd.Exit.cli_error
      | None, None ->
          prerr_endline "tvs: serve needs --socket PATH or --port PORT";
          exit Cmd.Exit.cli_error
    in
    if threshold < 0 then begin
      prerr_endline "tvs: --checkpoint-threshold must be >= 0";
      exit Cmd.Exit.cli_error
    end;
    match
      Tvs_serve.Server.run ?state_dir:state ~checkpoint_every:every
        ~checkpoint_threshold:threshold
        ~on_ready:(fun () -> Printf.eprintf "tvs serve: listening\n%!")
        listen
    with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("tvs: " ^ msg);
        exit Cmd.Exit.some_error
    | exception Failure msg ->
        prerr_endline ("tvs: " ^ msg);
        exit Cmd.Exit.some_error
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Persistent stitching daemon: accepts jobs over a Unix or TCP socket (length-delimited \
          JSONL frames), dedupes identical jobs through the result cache, checkpoints large jobs \
          for restart recovery, and streams progress events")
    Term.(
      const run $ obs_term $ cache_term $ socket_arg $ port_arg $ state_arg
      $ checkpoint_every_arg $ threshold_arg $ jobs_arg $ batch_arg)

(* --version: the code generation (git revision when available) plus the two
   on-disk schema versions a deployment cares about — the store frame schema
   (checkpoints, cache entries) and the bench report JSON schema. *)
let version_string =
  Printf.sprintf "1.0.0+%s (store schema %d, report schema %d)"
    (Option.value ~default:"unknown" (Tvs_obs.Report.git_rev ()))
    Codec.schema_version Tvs_obs.Report.schema_version

let () =
  let info =
    Cmd.info "tvs" ~version:version_string
      ~doc:"Virtual test compression through test vector stitching (DATE 2003 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ stats_cmd; lint_cmd; atpg_cmd; faultsim_cmd; stitch_cmd; resume_cmd; tpi_cmd; serve_cmd; table_cmd; ablation_cmd; misr_cmd; comparison_cmd; diagnosis_cmd; randtest_cmd; export_cmd; emit_cmd; equiv_cmd; xcheck_cmd; fig1_cmd ]))
