(* Benchmark harness: regenerates every table of the paper's evaluation and
   times the kernels behind each one with Bechamel.

     dune exec bench/main.exe                 # all tables + microbenchmarks
     dune exec bench/main.exe -- table2       # one artifact
     dune exec bench/main.exe -- --scale 0.5 table5
     dune exec bench/main.exe -- micro        # Bechamel suite only

   Table circuits default to full profile scale except the four Table 5
   giants (0.25 linear scale); see DESIGN.md §5 and EXPERIMENTS.md. *)

open Bechamel

module Experiments = Tvs_harness.Experiments
module Prep = Tvs_harness.Prep

let scale : float option ref = ref None
let only : string list ref = ref []
let jobs : int option ref = ref None

let artifacts =
  [
    "table1"; "table2"; "table3"; "table4"; "table5"; "ablations"; "misr"; "comparison";
    "diagnosis"; "randtest"; "micro";
  ]

let usage_and_exit msg =
  Printf.eprintf "error: %s\n" msg;
  Printf.eprintf "usage: bench [--scale FLOAT] [--jobs N] [ARTIFACT...]\n";
  Printf.eprintf "valid artifacts: %s\n" (String.concat " " artifacts);
  exit 2

let parse_args () =
  let rec go = function
    | [] -> ()
    | [ "--scale" ] -> usage_and_exit "--scale requires a value"
    | "--scale" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> scale := Some f
        | Some _ | None -> usage_and_exit (Printf.sprintf "invalid --scale value %S" v));
        go rest
    | [ "--jobs" ] -> usage_and_exit "--jobs requires a value"
    | "--jobs" :: v :: rest ->
        (match Option.map Tvs_harness.Cli.check_jobs (int_of_string_opt v) with
        | Some (Ok j) -> jobs := Some j
        | Some (Error msg) -> usage_and_exit msg
        | None -> usage_and_exit (Printf.sprintf "invalid --jobs value %S" v));
        go rest
    | arg :: rest ->
        if not (List.mem arg artifacts) then
          usage_and_exit (Printf.sprintf "unknown artifact %S" arg);
        only := arg :: !only;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv))

let wants what = !only = [] || List.mem what !only

let section title body =
  Printf.printf "==== %s ====\n%s\n%!" title body

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one per table, timing the kernel that the
   table's experiment leans on.                                        *)

let micro_tests () =
  let fig1 = Tvs_circuits.Fig1.circuit () in
  let fig1_faults =
    Array.of_list (List.map (Tvs_circuits.Fig1.paper_fault fig1) Tvs_circuits.Fig1.table1_faults)
  in
  let s444 = Tvs_circuits.Synth.generate_named "s444" in
  let s444_faults = Tvs_fault.Fault_gen.collapsed s444 in
  let s444_ctx = Tvs_atpg.Podem.create s444 in
  let s444_sim = Tvs_fault.Fault_sim.create s444 in
  let s444_sim_full = Tvs_fault.Fault_sim.create ~mode:Tvs_fault.Fault_sim.Full s444 in
  let s444_vec =
    let rng = Tvs_util.Rng.of_string "bench:vec" in
    {
      Tvs_atpg.Cube.pi = Array.init (Tvs_netlist.Circuit.num_inputs s444) (fun _ -> Tvs_util.Rng.bool rng);
      scan = Array.init (Tvs_netlist.Circuit.num_flops s444) (fun _ -> Tvs_util.Rng.bool rng);
    }
  in
  [
    (* Table 1: one stitched cycle of the worked example. *)
    Test.make ~name:"table1/cycle-step"
      (Staged.stage (fun () ->
           let machine = Tvs_core.Cycle.create fig1 ~faults:fig1_faults in
           List.iter
             (fun fresh -> ignore (Tvs_core.Cycle.step machine ~pi:[||] ~fresh))
             Tvs_circuits.Fig1.fresh_bits));
    (* Table 2: constrained PODEM, the kernel behind every shift-size row. *)
    Test.make ~name:"table2/podem-constrained"
      (Staged.stage
         (let constraints =
            Array.init (Tvs_netlist.Circuit.num_flops s444) (fun i ->
                if i < 10 then Tvs_logic.Ternary.X else Tvs_logic.Ternary.of_bool (i mod 2 = 0))
          in
          fun () ->
            Array.iteri
              (fun i f ->
                if i mod 97 = 0 then
                  ignore (Tvs_atpg.Podem.generate ~constraints s444_ctx f))
              s444_faults));
    (* Table 3: XOR write-back/observation schemes. *)
    Test.make ~name:"table3/xor-schemes"
      (Staged.stage
         (let contents = Array.init 64 (fun i -> i mod 3 = 0) in
          let fresh = Array.make 8 true in
          let capture = Array.init 64 (fun i -> i mod 5 = 0) in
          fun () ->
            List.iter
              (fun scheme ->
                ignore (Tvs_scan.Xor_scheme.observe scheme ~contents ~fresh);
                ignore (Tvs_scan.Xor_scheme.writeback scheme ~applied_scan:contents ~capture))
              [ Tvs_scan.Xor_scheme.Nxor; Tvs_scan.Xor_scheme.Vxor; Tvs_scan.Xor_scheme.Hxor 3 ]));
    (* Table 4: SCOAP hardness ordering, the basis of the Hardness strategy. *)
    Test.make ~name:"table4/scoap-hardness"
      (Staged.stage (fun () ->
           let guide = Tvs_atpg.Scoap.compute s444 in
           Array.iter (fun f -> ignore (Tvs_atpg.Scoap.fault_hardness guide f)) s444_faults));
    (* Table 5: word-parallel fault simulation, the large-circuit workhorse.
       Default = event-driven cone-restricted path; the -full variant runs
       one complete levelized pass per chunk for comparison. *)
    Test.make ~name:"table5/parallel-faultsim"
      (Staged.stage (fun () ->
           ignore
             (Tvs_fault.Fault_sim.detected_faults s444_sim ~pi:s444_vec.Tvs_atpg.Cube.pi
                ~state:s444_vec.Tvs_atpg.Cube.scan s444_faults)));
    Test.make ~name:"table5/parallel-faultsim-full"
      (Staged.stage (fun () ->
           ignore
             (Tvs_fault.Fault_sim.detected_faults s444_sim_full ~pi:s444_vec.Tvs_atpg.Cube.pi
                ~state:s444_vec.Tvs_atpg.Cube.scan s444_faults)));
  ]

let run_micro () =
  let tests = micro_tests () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  Printf.printf "==== Bechamel microbenchmarks (one kernel per table) ====\n";
  Tvs_fault.Fault_sim.reset_counters ();
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.printf "%-28s %12.0f ns/run\n%!" name est
          | Some [] | None -> Printf.printf "%-28s (no estimate)\n%!" name)
        analysis)
    tests;
  let ctr = Tvs_fault.Fault_sim.counters in
  let evals = ctr.Tvs_fault.Fault_sim.gate_evals
  and skipped = ctr.Tvs_fault.Fault_sim.gates_skipped in
  let skip_pct =
    if evals + skipped = 0 then 0.0
    else 100.0 *. float_of_int skipped /. float_of_int (evals + skipped)
  in
  Printf.printf
    "faultsim counters: %d event runs, %d full runs, %d events fired, %d gate evals (%.1f%% \
     skipped), %d faults dropped\n"
    ctr.Tvs_fault.Fault_sim.event_runs ctr.Tvs_fault.Fault_sim.full_runs
    ctr.Tvs_fault.Fault_sim.events_fired evals skip_pct
    ctr.Tvs_fault.Fault_sim.faults_dropped;
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  parse_args ();
  (* --jobs (or TVS_JOBS, handled inside Pool) sets the process-wide default
     fan-out; every table regenerates identically for any value. *)
  Option.iter Tvs_util.Pool.set_default_jobs !jobs;
  let t0 = Unix.gettimeofday () in
  if wants "table1" then section "Table 1 / Figure 1" (Experiments.table1 ());
  if wants "table2" then section "Table 2" (Experiments.table2 ?scale:!scale ());
  if wants "table3" then section "Table 3" (Experiments.table3 ?scale:!scale ());
  if wants "table4" then section "Table 4" (Experiments.table4 ?scale:!scale ());
  if wants "table5" then section "Table 5" (Experiments.table5 ?scale:!scale ());
  if wants "ablations" then section "Ablations" (Experiments.ablations ?jobs:!jobs ());
  if wants "misr" then section "MISR aliasing / diagnosis study" (Experiments.misr_study ());
  if wants "comparison" then
    section "Prior-art comparison" (Experiments.comparison_study ());
  if wants "diagnosis" then section "Diagnosis resolution" (Experiments.diagnosis_study ());
  if wants "randtest" then
    section "Random-pattern testability" (Experiments.random_testability ());
  if wants "micro" then run_micro ();
  Printf.printf "total wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
