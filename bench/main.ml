(* Benchmark harness: regenerates every table of the paper's evaluation and
   times the kernels behind each one with Bechamel.

     dune exec bench/main.exe                 # all tables + microbenchmarks
     dune exec bench/main.exe -- table2       # one artifact
     dune exec bench/main.exe -- --scale 0.5 table5
     dune exec bench/main.exe -- micro        # Bechamel suite only
     dune exec bench/main.exe -- --out bench.json table5   # + JSON report

   Table circuits default to full profile scale except the four Table 5
   giants (0.25 linear scale); see DESIGN.md §5 and EXPERIMENTS.md. *)

open Bechamel

module Experiments = Tvs_harness.Experiments
module Prep = Tvs_harness.Prep
module Report = Tvs_obs.Report

let scale : float option ref = ref None
let only : string list ref = ref []
let jobs : int option ref = ref None
let batch : int option ref = ref None
let out : string option ref = ref None

let artifacts =
  [
    "table1"; "table2"; "table3"; "table4"; "table5"; "ablations"; "misr"; "comparison";
    "diagnosis"; "randtest"; "tpi"; "cec"; "micro";
  ]

let usage_and_exit msg =
  Printf.eprintf "error: %s\n" msg;
  Printf.eprintf
    "usage: bench [--scale FLOAT] [--jobs N] [--batch N] [--out FILE] [--cache DIR] [ARTIFACT...]\n";
  Printf.eprintf "valid artifacts: %s\n" (String.concat " " artifacts);
  exit 2

let parse_args () =
  let rec go = function
    | [] -> ()
    | [ "--scale" ] -> usage_and_exit "--scale requires a value"
    | "--scale" :: v :: rest ->
        (match Option.map Tvs_harness.Cli.check_scale (float_of_string_opt v) with
        | Some (Ok f) -> scale := Some f
        | Some (Error msg) -> usage_and_exit msg
        | None -> usage_and_exit (Printf.sprintf "invalid --scale value %S" v));
        go rest
    | [ "--batch" ] -> usage_and_exit "--batch requires a value"
    | "--batch" :: v :: rest ->
        (match Option.map Tvs_harness.Cli.check_batch (int_of_string_opt v) with
        | Some (Ok b) -> batch := Some b
        | Some (Error msg) -> usage_and_exit msg
        | None -> usage_and_exit (Printf.sprintf "invalid --batch value %S" v));
        go rest
    | [ "--jobs" ] -> usage_and_exit "--jobs requires a value"
    | "--jobs" :: v :: rest ->
        (match Option.map Tvs_harness.Cli.check_jobs (int_of_string_opt v) with
        | Some (Ok j) -> jobs := Some j
        | Some (Error msg) -> usage_and_exit msg
        | None -> usage_and_exit (Printf.sprintf "invalid --jobs value %S" v));
        go rest
    | [ "--out" ] -> usage_and_exit "--out requires a value"
    | "--out" :: v :: rest ->
        (match Tvs_harness.Cli.check_out_file ~flag:"--out" v with
        | Ok path -> out := Some path
        | Error msg -> usage_and_exit msg);
        go rest
    | [ "--cache" ] -> usage_and_exit "--cache requires a value"
    | "--cache" :: v :: rest ->
        (match Tvs_store.Cache.open_dir v with
        | Ok c -> Experiments.set_cache (Some c)
        | Error msg -> usage_and_exit msg);
        go rest
    | arg :: rest ->
        if not (List.mem arg artifacts) then
          usage_and_exit (Printf.sprintf "unknown artifact %S" arg);
        (* Dedupe: `bench table5 table5` regenerates the table once. *)
        if not (List.mem arg !only) then only := arg :: !only;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv))

let wants what = !only = [] || List.mem what !only

(* Artifact runs accumulated for the --out report, in execution order. *)
let runs : Report.run list ref = ref []

(* Test-point-insertion studies for the report's [tpi] section. *)
let tpi_entries : Report.tpi_entry list ref = ref []

(* Equivalence-checker gates for the report's [cec] section. *)
let cec_entries : Report.cec_entry list ref = ref []

(* [body] produces the artifact's printed text plus any Bechamel estimates;
   the header carries the artifact's own wall time so a slow table is
   attributable at a glance. *)
let section title artifact body =
  let (text, benchmarks), secs = Tvs_util.Clock.time_it body in
  Printf.printf "==== %s (%.1fs) ====\n%s\n%!" title secs text;
  runs := { Report.artifact; circuit = None; wall_ns = secs *. 1e9; benchmarks } :: !runs

let table title artifact body = section title artifact (fun () -> (body (), []))

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one per table, timing the kernel that the
   table's experiment leans on.                                        *)

let micro_tests () =
  let fig1 = Tvs_circuits.Fig1.circuit () in
  let fig1_faults =
    Array.of_list (List.map (Tvs_circuits.Fig1.paper_fault fig1) Tvs_circuits.Fig1.table1_faults)
  in
  let s444 = Tvs_circuits.Synth.generate_named "s444" in
  let s444_faults = Tvs_fault.Fault_gen.collapsed s444 in
  let s444_ctx = Tvs_atpg.Podem.create s444 in
  let s444_sim = Tvs_fault.Fault_sim.create s444 in
  let s444_sim_full = Tvs_fault.Fault_sim.create ~mode:Tvs_fault.Fault_sim.Full s444 in
  let s444_vec =
    let rng = Tvs_util.Rng.of_string "bench:vec" in
    {
      Tvs_atpg.Cube.pi = Array.init (Tvs_netlist.Circuit.num_inputs s444) (fun _ -> Tvs_util.Rng.bool rng);
      scan = Array.init (Tvs_netlist.Circuit.num_flops s444) (fun _ -> Tvs_util.Rng.bool rng);
    }
  in
  let s444_vecs =
    let rng = Tvs_util.Rng.of_string "bench:vecs" in
    Array.init 16 (fun _ ->
        ( Array.init (Tvs_netlist.Circuit.num_inputs s444) (fun _ -> Tvs_util.Rng.bool rng),
          Array.init (Tvs_netlist.Circuit.num_flops s444) (fun _ -> Tvs_util.Rng.bool rng) ))
  in
  [
    (* Table 1: one stitched cycle of the worked example. *)
    Test.make ~name:"table1/cycle-step"
      (Staged.stage (fun () ->
           let machine = Tvs_core.Cycle.create fig1 ~faults:fig1_faults in
           List.iter
             (fun fresh -> ignore (Tvs_core.Cycle.step machine ~pi:[||] ~fresh))
             Tvs_circuits.Fig1.fresh_bits));
    (* Table 2: constrained PODEM, the kernel behind every shift-size row. *)
    Test.make ~name:"table2/podem-constrained"
      (Staged.stage
         (let constraints =
            Array.init (Tvs_netlist.Circuit.num_flops s444) (fun i ->
                if i < 10 then Tvs_logic.Ternary.X else Tvs_logic.Ternary.of_bool (i mod 2 = 0))
          in
          fun () ->
            Array.iteri
              (fun i f ->
                if i mod 97 = 0 then
                  ignore (Tvs_atpg.Podem.generate ~constraints s444_ctx f))
              s444_faults));
    (* Table 3: XOR write-back/observation schemes. *)
    Test.make ~name:"table3/xor-schemes"
      (Staged.stage
         (let contents = Array.init 64 (fun i -> i mod 3 = 0) in
          let fresh = Array.make 8 true in
          let capture = Array.init 64 (fun i -> i mod 5 = 0) in
          fun () ->
            List.iter
              (fun scheme ->
                ignore (Tvs_scan.Xor_scheme.observe scheme ~contents ~fresh);
                ignore (Tvs_scan.Xor_scheme.writeback scheme ~applied_scan:contents ~capture))
              [ Tvs_scan.Xor_scheme.Nxor; Tvs_scan.Xor_scheme.Vxor; Tvs_scan.Xor_scheme.Hxor 3 ]));
    (* Table 4: SCOAP hardness ordering, the basis of the Hardness strategy. *)
    Test.make ~name:"table4/scoap-hardness"
      (Staged.stage (fun () ->
           let guide = Tvs_atpg.Scoap.compute s444 in
           Array.iter (fun f -> ignore (Tvs_atpg.Scoap.fault_hardness guide f)) s444_faults));
    (* Table 5: word-parallel fault simulation, the large-circuit workhorse.
       Default = event-driven cone-restricted path; the -full variant runs
       one complete levelized pass per chunk for comparison. *)
    Test.make ~name:"table5/parallel-faultsim"
      (Staged.stage (fun () ->
           ignore
             (Tvs_fault.Fault_sim.detected_faults s444_sim ~pi:s444_vec.Tvs_atpg.Cube.pi
                ~state:s444_vec.Tvs_atpg.Cube.scan s444_faults)));
    Test.make ~name:"table5/parallel-faultsim-full"
      (Staged.stage (fun () ->
           ignore
             (Tvs_fault.Fault_sim.detected_faults s444_sim_full ~pi:s444_vec.Tvs_atpg.Cube.pi
                ~state:s444_vec.Tvs_atpg.Cube.scan s444_faults)));
    (* The multi-vector screen behind candidate scoring: 16 vectors in one
       call, so cone setup and injection tables amortize across the batch. *)
    Test.make ~name:"table5/faultsim-matrix"
      (Staged.stage (fun () ->
           ignore (Tvs_fault.Fault_sim.detected_matrix s444_sim ~vectors:s444_vecs s444_faults)));
  ]

let run_micro () =
  let tests = micro_tests () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let buf = Buffer.create 1024 in
  let benches = ref [] in
  Tvs_fault.Fault_sim.reset_counters ();
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) ->
              benches := { Report.name; ns_per_run = est } :: !benches;
              Buffer.add_string buf (Printf.sprintf "%-28s %12.0f ns/run\n" name est)
          | Some [] | None -> Buffer.add_string buf (Printf.sprintf "%-28s (no estimate)\n" name))
        analysis)
    tests;
  let ctr = Tvs_fault.Fault_sim.counters () in
  let evals = ctr.Tvs_fault.Fault_sim.gate_evals
  and skipped = ctr.Tvs_fault.Fault_sim.gates_skipped in
  let skip_pct =
    if evals + skipped = 0 then 0.0
    else 100.0 *. float_of_int skipped /. float_of_int (evals + skipped)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "faultsim counters: %d event runs, %d full runs, %d events fired, %d gate evals (%.1f%% \
        skipped), %d faults dropped\n"
       ctr.Tvs_fault.Fault_sim.event_runs ctr.Tvs_fault.Fault_sim.full_runs
       ctr.Tvs_fault.Fault_sim.events_fired evals skip_pct
       ctr.Tvs_fault.Fault_sim.faults_dropped);
  (Buffer.contents buf, List.rev !benches)

(* ------------------------------------------------------------------ *)

(* The TPI artifact: one greedy study per circuit, rendered like the CLI,
   with the headline numbers folded into the report's [tpi] section. *)
let run_tpi () =
  let module Tpi = Tvs_tpi.Tpi in
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      let c =
        if name = "s27" then Tvs_circuits.S27.circuit ()
        else Tvs_circuits.Synth.generate_named name
      in
      let r = Tpi.run ~options:{ Tpi.default_options with Tpi.points = 2 } c in
      Buffer.add_string buf (Tpi.to_ascii r);
      let final = Tpi.final_summary r in
      tpi_entries :=
        {
          Report.tpi_circuit = r.Tpi.circuit;
          points = List.length r.Tpi.points;
          converted_faults = r.Tpi.converted_faults;
          caught = r.Tpi.caught;
          d_coverage = final.Experiments.coverage -. r.Tpi.base.Experiments.coverage;
          dm = final.Experiments.m -. r.Tpi.base.Experiments.m;
          dt = final.Experiments.t -. r.Tpi.base.Experiments.t;
        }
        :: !tpi_entries)
    [ "s27"; "s444" ];
  Buffer.contents buf

(* The CEC artifact: prove the scan and TPI rewrites function-preserving on
   a couple of profiles, folding each verdict into the report's [cec]
   section. The verdicts are deterministic at any --jobs width, so the
   section is part of the stable, byte-comparable report body. *)
let run_cec () =
  let module Cec = Tvs_cec.Cec in
  let module Tpi = Tvs_tpi.Tpi in
  let buf = Buffer.create 1024 in
  let gate transform left right =
    let r = Cec.check left right in
    Buffer.add_string buf (Cec.to_ascii r);
    cec_entries :=
      {
        Report.cec_circuit = r.Cec.left;
        transform;
        verdict = Cec.verdict_name r.Cec.verdict;
        points = Cec.points r;
        sat_calls = r.Cec.sat_calls;
        decisions = r.Cec.decisions;
      }
      :: !cec_entries
  in
  List.iter
    (fun name ->
      let c =
        if name = "s27" then Tvs_circuits.S27.circuit ()
        else Tvs_circuits.Synth.generate_named name
      in
      gate "scan" c (Tvs_netlist.Scan_insert.insert c).Tvs_netlist.Scan_insert.circuit;
      let study = Tpi.run ~options:{ Tpi.default_options with Tpi.points = 2 } c in
      let cands = List.map (fun (p : Tpi.point) -> p.Tpi.candidate) study.Tpi.points in
      gate "tpi" c (Tvs_tpi.Transform.apply c cands))
    [ "s27"; "s444" ];
  Buffer.contents buf

let write_report file =
  let jobs = match !jobs with Some j -> j | None -> Tvs_util.Pool.default_jobs () in
  let report =
    Report.make ?scale:!scale ?git_rev:(Report.git_rev ()) ~tpi:(List.rev !tpi_entries)
      ~cec:(List.rev !cec_entries) ~jobs ~runs:(List.rev !runs)
      ~metrics:(Tvs_obs.Metrics.snapshot ()) ()
  in
  let oc = open_out file in
  output_string oc (Report.to_json report);
  output_char oc '\n';
  close_out oc;
  Printf.eprintf "bench report written to %s\n%!" file

let () =
  parse_args ();
  (* --jobs (or TVS_JOBS, handled inside Pool) sets the process-wide default
     fan-out, and --batch (or TVS_BATCH) the vector-batch size; every table
     regenerates identically for any value of either. *)
  Option.iter Tvs_util.Pool.set_default_jobs !jobs;
  Option.iter Tvs_fault.Fault_sim.set_default_batch !batch;
  let t0 = Unix.gettimeofday () in
  if wants "table1" then table "Table 1 / Figure 1" "table1" Experiments.table1;
  if wants "table2" then table "Table 2" "table2" (fun () -> Experiments.table2 ?scale:!scale ());
  if wants "table3" then table "Table 3" "table3" (fun () -> Experiments.table3 ?scale:!scale ());
  if wants "table4" then table "Table 4" "table4" (fun () -> Experiments.table4 ?scale:!scale ());
  if wants "table5" then table "Table 5" "table5" (fun () -> Experiments.table5 ?scale:!scale ());
  if wants "ablations" then
    table "Ablations" "ablations" (fun () -> Experiments.ablations ?jobs:!jobs ());
  if wants "misr" then
    table "MISR aliasing / diagnosis study" "misr" (fun () -> Experiments.misr_study ());
  if wants "comparison" then
    table "Prior-art comparison" "comparison" (fun () -> Experiments.comparison_study ());
  if wants "diagnosis" then
    table "Diagnosis resolution" "diagnosis" (fun () -> Experiments.diagnosis_study ());
  if wants "randtest" then
    table "Random-pattern testability" "randtest" (fun () -> Experiments.random_testability ());
  if wants "tpi" then table "Test-point insertion" "tpi" run_tpi;
  if wants "cec" then table "Equivalence-checker gates" "cec" run_cec;
  if wants "micro" then
    section "Bechamel microbenchmarks (one kernel per table)" "micro" run_micro;
  Option.iter write_report !out;
  Printf.printf "total wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
