module Circuit = Tvs_netlist.Circuit
module Ternary = Tvs_logic.Ternary
module Fault = Tvs_fault.Fault
module Fault_sim = Tvs_fault.Fault_sim
module Parallel = Tvs_sim.Parallel
module Chain = Tvs_scan.Chain
module Xor_scheme = Tvs_scan.Xor_scheme
module Metrics = Tvs_obs.Metrics

(* Stitching-cycle metrics, all recorded on the submitting domain in [step]:
   deterministic for every jobs value. [cycle.shift_bits_saved] is the
   paper's virtual-compression claim in counter form — chain_len minus the
   fresh bits actually shifted, per cycle. *)
let m_steps = Metrics.counter "cycle.steps"
let m_caught = Metrics.counter "cycle.caught"
let m_became_hidden = Metrics.counter "cycle.became_hidden"
let m_reverted = Metrics.counter "cycle.reverted"
let m_shift_bits = Metrics.counter "cycle.shift_bits"
let m_shift_bits_saved = Metrics.counter "cycle.shift_bits_saved"
let g_peak_hidden = Metrics.gauge "cycle.peak_hidden"
let h_hidden_after = Metrics.histogram "cycle.hidden_after"

type status = Caught of int | Hidden | Uncaught

type st = C of int | H of bool array | U

type t = {
  circuit : Circuit.t;
  scheme : Xor_scheme.t;
  sim : Fault_sim.t;
  faults : Fault.t array;
  state : st array;
  mutable good : bool array;  (* fault-free chain contents, post write-back *)
  mutable cycles : int;
  mutable last_shift : int;
}

let create ?(scheme = Xor_scheme.Nxor) ?jobs ?batch circuit ~faults =
  {
    circuit;
    scheme;
    sim = Fault_sim.create ?jobs ?batch circuit;
    faults;
    state = Array.make (Array.length faults) U;
    good = Array.make (Circuit.num_flops circuit) false;
    cycles = 0;
    last_shift = Circuit.num_flops circuit;
  }

let circuit t = t.circuit
let scheme t = t.scheme
let num_faults t = Array.length t.faults
let cycle_count t = t.cycles

let status t i = match t.state.(i) with C n -> Caught n | H _ -> Hidden | U -> Uncaught

let count p t = Array.fold_left (fun acc s -> if p s then acc + 1 else acc) 0 t.state

let num_caught = count (function C _ -> true | H _ | U -> false)
let num_hidden = count (function H _ -> true | C _ | U -> false)
let num_uncaught = count (function U -> true | C _ | H _ -> false)

let indices p t =
  let acc = ref [] in
  for i = Array.length t.state - 1 downto 0 do
    if p t.state.(i) then acc := i :: !acc
  done;
  !acc

let uncaught_indices = indices (function U -> true | C _ | H _ -> false)
let hidden_indices = indices (function H _ -> true | C _ | U -> false)

let good_contents t = t.good

(* --- persisted state (checkpoint/resume) ---------------------------- *)

type fault_state = Fs_caught of int | Fs_hidden of bool array | Fs_uncaught

type persisted = {
  states : fault_state array;
  good : bool array;
  cycles : int;
  last_shift : int;
}

let export t =
  {
    states =
      Array.map
        (function C n -> Fs_caught n | H contents -> Fs_hidden (Array.copy contents) | U -> Fs_uncaught)
        t.state;
    good = Array.copy t.good;
    cycles = t.cycles;
    last_shift = t.last_shift;
  }

let restore t p =
  let ln = Circuit.num_flops t.circuit in
  if Array.length p.states <> Array.length t.faults then
    invalid_arg
      (Printf.sprintf "Cycle.restore: %d fault states for %d faults" (Array.length p.states)
         (Array.length t.faults));
  if Array.length p.good <> ln then
    invalid_arg
      (Printf.sprintf "Cycle.restore: chain contents of %d bits on a %d-cell chain"
         (Array.length p.good) ln);
  Array.iteri
    (fun i s ->
      t.state.(i) <-
        (match s with
        | Fs_caught n -> C n
        | Fs_hidden contents ->
            if Array.length contents <> ln then
              invalid_arg
                (Printf.sprintf
                   "Cycle.restore: hidden contents of %d bits on a %d-cell chain (fault %d)"
                   (Array.length contents) ln i);
            H (Array.copy contents)
        | Fs_uncaught -> U))
    p.states;
  t.good <- Array.copy p.good;
  t.cycles <- p.cycles;
  t.last_shift <- p.last_shift

let constraints_for (t : t) ~s = Chain.shift_ternary (Array.map Ternary.of_bool t.good) ~s

type report = {
  caught_now : int list;
  newly_hidden : int list;
  reverted : int list;
  still_hidden : int list;
  good_po : bool array;
  good_capture : bool array;
}

let differentiated r = List.length r.caught_now + List.length r.newly_hidden

(* Deferred state mutations computed by [classify]; [step] commits them. *)
type transition = { report : report; new_good : bool array; updates : (int * st) list }

(* One test cycle, pure: shift [fresh] in (observing the outgoing stream,
   which resolves hidden faults), apply the vector, capture, write back.

   Hidden faults split three ways at the shift: stream difference = caught;
   divergent applied vector = tracked further with a private stimulus;
   convergent applied vector = screened together with f_u (the capture under
   the shared vector decides whether the fault re-differentiates). *)
let classify t ~pi ~fresh =
  let ln = Circuit.num_flops t.circuit in
  if Array.length fresh > ln then invalid_arg "Cycle: shift exceeds chain length";
  let cycle = t.cycles + 1 in
  let applied_g, _ = Chain.shift t.good ~fresh in
  let good_stream = Xor_scheme.observe t.scheme ~contents:t.good ~fresh in
  let updates = ref [] in
  let caught = ref [] and reverted = ref [] and newly_hidden = ref [] and still_hidden = ref [] in
  let catch i =
    caught := i :: !caught;
    updates := (i, C cycle) :: !updates
  in
  (* Phase 1: the shift resolves hidden faults against the outgoing stream. *)
  let survivors = ref [] and converged = ref [] in
  Array.iteri
    (fun i st ->
      match st with
      | H contents ->
          let stream_f = Xor_scheme.observe t.scheme ~contents ~fresh in
          if stream_f <> good_stream then catch i
          else
            let applied_f, _ = Chain.shift contents ~fresh in
            if applied_f = applied_g then converged := i :: !converged
            else survivors := (i, applied_f) :: !survivors
      | C _ | U -> ())
    t.state;
  let survivors = List.rev !survivors in
  let converged = List.rev !converged in
  (* Phase 2a: faults applying the shared vector — f_u plus the hidden
     faults whose mutated vector re-converged. *)
  let shared = uncaught_indices t @ converged in
  let shared_faults = Array.of_list (List.map (fun i -> t.faults.(i)) shared) in
  let u_res = Fault_sim.run_batch t.sim ~pi ~state:applied_g ~faults:shared_faults in
  let good_po = u_res.good.po and good_capture = u_res.good.capture in
  let contents_g = Xor_scheme.writeback t.scheme ~applied_scan:applied_g ~capture:good_capture in
  List.iteri
    (fun k i ->
      let was_hidden = match t.state.(i) with H _ -> true | C _ | U -> false in
      match u_res.outcomes.(k) with
      | Fault_sim.Same ->
          if was_hidden then begin
            reverted := i :: !reverted;
            updates := (i, U) :: !updates
          end
      | Fault_sim.Po_detected -> catch i
      | Fault_sim.Capture_differs cap_f ->
          let contents_f = Xor_scheme.writeback t.scheme ~applied_scan:applied_g ~capture:cap_f in
          if contents_f = contents_g then begin
            (* Differentiation erased by the write-back itself. *)
            if was_hidden then begin
              reverted := i :: !reverted;
              updates := (i, U) :: !updates
            end
          end
          else begin
            if was_hidden then still_hidden := i :: !still_hidden
            else newly_hidden := i :: !newly_hidden;
            updates := (i, H contents_f) :: !updates
          end)
    shared;
  (* Phase 2b: hidden survivors apply their own mutated vectors. *)
  if survivors <> [] then begin
    let h_faults = Array.of_list (List.map (fun (i, _) -> t.faults.(i)) survivors) in
    let h_states = Array.of_list (List.map snd survivors) in
    let h_res =
      Fault_sim.run_per_state t.sim ~pi ~good_state:applied_g ~faults:h_faults ~states:h_states
    in
    List.iteri
      (fun k (i, applied_f) ->
        let resolve contents_f =
          if contents_f = contents_g then begin
            reverted := i :: !reverted;
            updates := (i, U) :: !updates
          end
          else begin
            still_hidden := i :: !still_hidden;
            updates := (i, H contents_f) :: !updates
          end
        in
        match h_res.outcomes.(k) with
        | Fault_sim.Po_detected -> catch i
        | Fault_sim.Same ->
            (* Capture equals the fault-free one, but under VXOR the
               write-back still mixes in the divergent applied vector. *)
            resolve (Xor_scheme.writeback t.scheme ~applied_scan:applied_f ~capture:good_capture)
        | Fault_sim.Capture_differs cap_f ->
            resolve (Xor_scheme.writeback t.scheme ~applied_scan:applied_f ~capture:cap_f))
      survivors
  end;
  {
    report =
      {
        caught_now = List.rev !caught;
        newly_hidden = List.rev !newly_hidden;
        reverted = List.rev !reverted;
        still_hidden = List.rev !still_hidden;
        good_po;
        good_capture;
      };
    new_good = contents_g;
    updates = !updates;
  }

let preview t ~pi ~fresh = (classify t ~pi ~fresh).report

let step t ~pi ~fresh =
  let { report; new_good; updates } = classify t ~pi ~fresh in
  List.iter (fun (i, st) -> t.state.(i) <- st) updates;
  (* Caught faults leave the uncaught/hidden pools for good: no future
     [classify] simulates them again. *)
  Fault_sim.note_dropped (List.length report.caught_now);
  t.good <- new_good;
  t.cycles <- t.cycles + 1;
  t.last_shift <- Array.length fresh;
  let chain_len = Circuit.num_flops t.circuit in
  Metrics.incr m_steps;
  Metrics.add m_caught (List.length report.caught_now);
  Metrics.add m_became_hidden (List.length report.newly_hidden);
  Metrics.add m_reverted (List.length report.reverted);
  Metrics.add m_shift_bits (Array.length fresh);
  Metrics.add m_shift_bits_saved (chain_len - Array.length fresh);
  let hidden = num_hidden t in
  Metrics.observe_max g_peak_hidden hidden;
  Metrics.observe h_hidden_after hidden;
  report

let flush t ~full =
  let ln = Circuit.num_flops t.circuit in
  let s = if full then ln else min t.last_shift ln in
  let fresh = Array.make s false in
  let good_stream = Xor_scheme.observe t.scheme ~contents:t.good ~fresh in
  let cycle = t.cycles + 1 in
  let caught = ref [] and reverted = ref [] in
  Array.iteri
    (fun i st ->
      match st with
      | H contents ->
          let stream_f = Xor_scheme.observe t.scheme ~contents ~fresh in
          if stream_f <> good_stream then begin
            caught := i :: !caught;
            t.state.(i) <- C cycle
          end
          else begin
            reverted := i :: !reverted;
            t.state.(i) <- U
          end
      | C _ | U -> ())
    t.state;
  {
    caught_now = List.rev !caught;
    newly_hidden = [];
    reverted = List.rev !reverted;
    still_hidden = [];
    good_po = [||];
    good_capture = [||];
  }
