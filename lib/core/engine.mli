(** The stitched test-generation engine: the algorithmic framework of the
    paper's Section 5 (Figure 2 flowchart) with the implementation options of
    Section 6.

    Each iteration chooses a shift size per the shift policy, derives the
    constraint cube from the retained fault-free response, asks PODEM for a
    vector catching a new [f_u] fault under that constraint, selects among
    candidates per the selection strategy, and advances the {!Cycle} machine.
    When no constrained vector can be produced, a variable policy widens the
    shift; once it is exhausted the leftover faults are handed to the
    traditional generator as full-shift "extra" vectors (the [ex] column of
    Table 2). *)

type config = {
  scheme : Tvs_scan.Xor_scheme.t;
  shift : Policy.shift_policy;
  selection : Policy.selection;
  podem : Tvs_atpg.Podem.config;
  max_cycles : int;  (** hard cap on stitched cycles *)
  stagnation_limit : int;
      (** stop stitching after this many consecutive cycles catching nothing
          (newly hidden faults do not count: they can churn between hidden
          and uncaught without ever being observed) *)
  max_targets_per_cycle : int;  (** PODEM attempts before declaring the cycle stuck *)
  jobs : int option;
      (** fault-simulation fan-out width; [None] defers to
          {!Tvs_util.Pool.default_jobs}. Results are bit-identical for every
          value — the knob trades wall-clock for cores only. *)
  batch : int option;
      (** vectors per pool chunk in multi-vector screening; [None] defers to
          {!Tvs_fault.Fault_sim.default_batch}. Like [jobs], a pure
          scheduling knob: results are bit-identical for every value, and it
          is excluded from {!Tvs_store.Digest.config} so checkpoints and
          cache keys stay compatible across settings. *)
  preflight : bool;
      (** run the cheap lint gate ({!Tvs_lint.Lint.preflight}: structural +
          constant propagation, no SAT) before the first cycle and raise
          [Failure] on any error-severity finding. Off by default; has no
          effect on the results of a run that passes, so it is excluded from
          {!Tvs_store.Digest.config} and checkpoints stay compatible. *)
}

val default_config : chain_len:int -> config
(** Variable shift (paper's winner), most-faults selection over 5 candidates,
    no XOR hardware. *)

type cycle_log = {
  shift : int;
  target : Tvs_fault.Fault.t;
  caught : int;
  became_hidden : int;
  hidden_after : int;
  uncaught_after : int;
  events_fired : int;  (** simulator net events this cycle (event path) *)
  gates_skipped : int;
      (** gate evaluations the event path avoided vs. full passes *)
  faults_dropped : int;  (** faults permanently dropped (caught) this cycle *)
}

type result = {
  schedule : Tvs_scan.Cost.schedule;
  stimuli : (bool array * bool array) list;
      (** the stitched test data, in order: (PI values, fresh scan bits) per
          cycle — everything an ATE needs besides the expected responses *)
  extra_stimuli : Tvs_atpg.Cube.vector list;
      (** the appended traditional vectors, in order *)
  stitched_vectors : int;  (** TV *)
  extra_vectors : int;  (** ex *)
  caught_stitched : int;
  caught_extra : int;
  total_faults : int;
  redundant : Tvs_fault.Fault.t list;  (** found untestable during the extra phase *)
  aborted : Tvs_fault.Fault.t list;
  peak_hidden : int;
  log : cycle_log list;  (** per stitched cycle, in order *)
}

val coverage : result -> float
(** Caught over non-redundant faults. *)

type snapshot = {
  machine : Cycle.persisted;
  shifts_rev : int list;  (** shift sizes so far, most recent first *)
  stimuli_rev : (bool array * bool array) list;
  log_rev : cycle_log list;
  peak_hidden : int;
  stagnant : int;
  current_s : int;  (** the shift size the next cycle will try *)
  rng_state : int64;
}
(** Everything the main loop mutates between stitched cycles. Together with
    the construction inputs (config, faults, fallback, PODEM context — all
    deterministically reproducible from a circuit spec) a snapshot continues
    an interrupted run bit-identically; see {!Tvs_store.Checkpoint} for the
    on-disk form. *)

val run :
  ?config:config ->
  ?fallback:Tvs_atpg.Cube.vector array ->
  ?resume:snapshot ->
  ?checkpoint:int * (snapshot -> unit) ->
  rng:Tvs_util.Rng.t ->
  Tvs_atpg.Podem.ctx ->
  faults:Tvs_fault.Fault.t array ->
  result
(** Deterministic given the rng state. The fault array should normally be the
    collapsed list; known-redundant faults may be pre-filtered for speed.

    [fallback] is a known-good full-shift test set (typically the baseline's):
    when the extra phase's own ATPG aborts on a leftover fault, detecting
    vectors are appended from it instead, so the stitched flow can never end
    below the baseline's coverage.

    [resume] restores a mid-flow snapshot before the first cycle: the run
    continues exactly where the snapshot was taken, and its result is
    byte-identical to the uninterrupted run's (the remaining inputs must be
    the ones the original run was created with — enforced by digest checks
    at the {!Tvs_store.Checkpoint} layer). [checkpoint] is [(every, save)]:
    [save] receives a fresh snapshot after every [every]-th stitched cycle.
    Raises [Invalid_argument] when a resumed snapshot's shape does not match
    the circuit or fault list. *)
