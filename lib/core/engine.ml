module Circuit = Tvs_netlist.Circuit
module Fault = Tvs_fault.Fault
module Podem = Tvs_atpg.Podem
module Cube = Tvs_atpg.Cube
module Scoap = Tvs_atpg.Scoap
module Generator = Tvs_atpg.Generator
module Cost = Tvs_scan.Cost
module Xor_scheme = Tvs_scan.Xor_scheme
module Rng = Tvs_util.Rng
module Metrics = Tvs_obs.Metrics
module Trace = Tvs_obs.Trace

(* Engine-level work metrics. All are driven from the submitting domain
   (the engine itself is single-domain; only fault-sim chunks fan out), so
   they are deterministic by construction. *)
let m_engine_runs = Metrics.counter "engine.runs"
let m_stitched_vectors = Metrics.counter "engine.stitched_vectors"
let m_extra_vectors = Metrics.counter "engine.extra_vectors"
let m_atpg_attempts = Metrics.counter "engine.atpg_attempts"

type config = {
  scheme : Xor_scheme.t;
  shift : Policy.shift_policy;
  selection : Policy.selection;
  podem : Podem.config;
  max_cycles : int;
  stagnation_limit : int;
  max_targets_per_cycle : int;
  jobs : int option;
  batch : int option;
  preflight : bool;
}

let default_config ~chain_len =
  {
    scheme = Xor_scheme.Nxor;
    shift = Policy.default_variable ~chain_len;
    selection = Policy.Most_faults 5;
    podem = { Podem.default_config with backtrack_limit = 32 };
    max_cycles = 4000;
    stagnation_limit = 25;
    max_targets_per_cycle = 25;
    jobs = None;
    batch = None;
    preflight = false;
  }

type cycle_log = {
  shift : int;
  target : Fault.t;
  caught : int;
  became_hidden : int;
  hidden_after : int;
  uncaught_after : int;
  events_fired : int;
  gates_skipped : int;
  faults_dropped : int;
}

type result = {
  schedule : Cost.schedule;
  stimuli : (bool array * bool array) list;
  extra_stimuli : Cube.vector list;
  stitched_vectors : int;
  extra_vectors : int;
  caught_stitched : int;
  caught_extra : int;
  total_faults : int;
  redundant : Fault.t list;
  aborted : Fault.t list;
  peak_hidden : int;
  log : cycle_log list;
}

let coverage r =
  let considered = r.total_faults - List.length r.redundant in
  if considered <= 0 then 1.0
  else float_of_int (r.caught_stitched + r.caught_extra) /. float_of_int considered

(* A candidate vector produced for one target fault under the cycle's
   constraints, split into PI values and the fresh scan bits. *)
type candidate = { target_idx : int; pi : bool array; fresh : bool array }

let make_candidate ~rng ~s cube =
  let vec = Cube.fill_random rng cube in
  { target_idx = 0; pi = vec.Cube.pi; fresh = Array.sub vec.Cube.scan 0 s }

(* Order in which targets are attempted this cycle. *)
let target_order ~rng ~hardness selection uncaught =
  let arr = Array.of_list uncaught in
  (match selection with
  | Policy.Hardness_order ->
      Array.sort (fun a b -> compare hardness.(b) hardness.(a)) arr
  | Policy.Random_order | Policy.Most_faults _ | Policy.Weighted _ -> Rng.shuffle rng arr);
  Array.to_list arr

let wanted_candidates = function
  | Policy.Random_order | Policy.Hardness_order -> 1
  | Policy.Most_faults k | Policy.Weighted k -> max 1 k

(* Greedy scores of a cycle's candidates: how many uncaught faults each
   candidate's vector differentiates, estimated on a fixed random sample of
   f_u (full classification per candidate would dominate the runtime on big
   circuits); [Weighted] sums SCOAP hardness instead of counting. All
   candidates are screened in one [detected_matrix] call, so the cone order
   and injection tables are built once per cycle and the pool's vector-batch
   axis applies. A fault counts as differentiated iff its detection flag is
   set — exactly the [outcome <> Same] criterion of per-candidate scoring,
   so the scores (and therefore the selected candidate and every downstream
   byte) are unchanged. *)
let sample_size = 512

let score_candidates ~sim ~machine ~hardness selection ~sample candidates =
  match selection with
  | Policy.Random_order | Policy.Hardness_order -> List.map (fun _ -> 0) candidates
  | Policy.Most_faults _ | Policy.Weighted _ ->
      let faults = Array.map snd sample in
      let vectors =
        Array.of_list
          (List.map
             (fun cand ->
               let applied, _ =
                 Tvs_scan.Chain.shift (Cycle.good_contents machine) ~fresh:cand.fresh
               in
               (cand.pi, applied))
             candidates)
      in
      let matrix = Tvs_fault.Fault_sim.detected_matrix sim ~vectors faults in
      List.mapi
        (fun i _ ->
          let flags = matrix.(i) in
          let total = ref 0 in
          Array.iteri
            (fun k hit ->
              if hit then
                match selection with
                | Policy.Weighted _ -> total := !total + hardness.(fst sample.(k))
                | Policy.Random_order | Policy.Hardness_order | Policy.Most_faults _ ->
                    incr total)
            flags;
          !total)
        candidates

(* Everything the main loop mutates, beyond what the caller's inputs
   determine: enough to continue an interrupted run bit-identically. *)
type snapshot = {
  machine : Cycle.persisted;
  shifts_rev : int list;
  stimuli_rev : (bool array * bool array) list;
  log_rev : cycle_log list;
  peak_hidden : int;
  stagnant : int;
  current_s : int;
  rng_state : int64;
}

let run ?config ?(fallback = [||]) ?resume ?checkpoint ~rng ctx ~faults =
  Metrics.incr m_engine_runs;
  Trace.with_span "engine.run"
    ~args:[ ("faults", string_of_int (Array.length faults)) ]
  @@ fun () ->
  let c = Podem.circuit ctx in
  let chain_len = Circuit.num_flops c in
  let cfg = match config with Some cfg -> cfg | None -> default_config ~chain_len in
  if cfg.preflight then begin
    (* Cheap gate only (structural + constant propagation): an error-severity
       finding means the netlist cannot produce a meaningful run, so fail
       before any compute is invested. Warnings pass — several bundled
       circuits legitimately warn (fig1 has no primary inputs). *)
    let errs =
      List.filter
        (fun (d : Tvs_lint.Diagnostic.t) -> d.severity = Tvs_lint.Diagnostic.Error)
        (Tvs_lint.Lint.preflight c)
    in
    match errs with
    | [] -> ()
    | first :: _ ->
        failwith
          (Printf.sprintf "preflight lint failed on %s: %d error(s), first: [%s] %s"
             (Circuit.name c) (List.length errs) first.rule first.message)
  end;
  let machine = Cycle.create ~scheme:cfg.scheme ?jobs:cfg.jobs ?batch:cfg.batch c ~faults in
  let sim = Tvs_fault.Fault_sim.create ?jobs:cfg.jobs ?batch:cfg.batch c in
  let hardness =
    let guide = Podem.scoap ctx in
    Array.map (fun f -> Scoap.fault_hardness guide f) faults
  in
  let shifts = ref [] in
  let stimuli = ref [] in
  let log = ref [] in
  let peak_hidden = ref 0 in
  let stagnant = ref 0 in
  let current_s = ref (min chain_len (max 1 (Policy.initial_shift cfg.shift))) in
  (match resume with
  | None -> ()
  | Some s ->
      Cycle.restore machine s.machine;
      shifts := s.shifts_rev;
      stimuli := s.stimuli_rev;
      log := s.log_rev;
      peak_hidden := s.peak_hidden;
      stagnant := s.stagnant;
      current_s := s.current_s;
      Rng.set_state rng s.rng_state);
  let take_snapshot () =
    {
      machine = Cycle.export machine;
      shifts_rev = !shifts;
      stimuli_rev = !stimuli;
      log_rev = !log;
      peak_hidden = !peak_hidden;
      stagnant = !stagnant;
      current_s = !current_s;
      rng_state = Rng.state rng;
    }
  in
  let finished () = Cycle.num_uncaught machine = 0 && Cycle.num_hidden machine = 0 in
  (* Produce candidate vectors for this cycle's shift size, or [None] if no
     target is generatable under the constraints. *)
  let collect_candidates s =
    Trace.with_span "engine.atpg" ~args:[ ("shift", string_of_int s) ]
    @@ fun () ->
    let constraints = Cycle.constraints_for machine ~s in
    let order = target_order ~rng ~hardness cfg.selection (Cycle.uncaught_indices machine) in
    let wanted = wanted_candidates cfg.selection in
    let max_tries =
      match cfg.shift with
      | Policy.Fixed _ -> 4 * cfg.max_targets_per_cycle
      | Policy.Variable _ -> cfg.max_targets_per_cycle
    in
    let rec gather acc found tries = function
      | [] -> acc
      | _ when found >= wanted || tries >= max_tries -> acc
      | idx :: rest -> (
          Metrics.incr m_atpg_attempts;
          match Podem.generate ~config:cfg.podem ~constraints ctx faults.(idx) with
          | Podem.Detected cube ->
              let cand = { (make_candidate ~rng ~s cube) with target_idx = idx } in
              gather (cand :: acc) (found + 1) (tries + 1) rest
          | Podem.Untestable | Podem.Aborted -> gather acc found (tries + 1) rest)
    in
    List.rev (gather [] 0 0 order)
  in
  let apply_candidate s cand =
    let ctrs0 = Tvs_fault.Fault_sim.counters () in
    let ev0 = ctrs0.Tvs_fault.Fault_sim.events_fired in
    let sk0 = ctrs0.Tvs_fault.Fault_sim.gates_skipped in
    let dr0 = ctrs0.Tvs_fault.Fault_sim.faults_dropped in
    let report =
      Trace.with_span "engine.stitch" ~args:[ ("shift", string_of_int s) ] (fun () ->
          Cycle.step machine ~pi:cand.pi ~fresh:cand.fresh)
    in
    let ctrs = Tvs_fault.Fault_sim.counters () in
    shifts := s :: !shifts;
    stimuli := (cand.pi, cand.fresh) :: !stimuli;
    peak_hidden := max !peak_hidden (Cycle.num_hidden machine);
    let caught = List.length report.Cycle.caught_now in
    let became_hidden = List.length report.Cycle.newly_hidden in
    (* Only catches count as progress: newly hidden faults can churn between
       f_h and f_u forever without any ever reaching the tester. *)
    if caught = 0 then incr stagnant else stagnant := 0;
    log :=
      {
        shift = s;
        target = faults.(cand.target_idx);
        caught;
        became_hidden;
        hidden_after = Cycle.num_hidden machine;
        uncaught_after = Cycle.num_uncaught machine;
        events_fired = ctrs.Tvs_fault.Fault_sim.events_fired - ev0;
        gates_skipped = ctrs.Tvs_fault.Fault_sim.gates_skipped - sk0;
        faults_dropped = ctrs.Tvs_fault.Fault_sim.faults_dropped - dr0;
      }
      :: !log
  in
  (* Main loop (Figure 2): iterate while uncaught faults remain and the
     stitched phase keeps making progress. *)
  let rec loop () =
    if
      finished ()
      || Cycle.num_uncaught machine = 0
      || Cycle.cycle_count machine >= cfg.max_cycles
      || !stagnant >= cfg.stagnation_limit
    then ()
    else
      let s = if Cycle.cycle_count machine = 0 then chain_len else !current_s in
      match collect_candidates s with
      | [] -> (
          match Policy.grow cfg.shift ~current:!current_s with
          | Some s' ->
              current_s := s';
              loop ()
          | None -> () (* stuck: hand the rest to the extra phase *))
      | first :: _ as candidates ->
          let best =
            match cfg.selection with
            | Policy.Random_order | Policy.Hardness_order -> first
            | Policy.Most_faults _ | Policy.Weighted _ ->
                let sample =
                  let uncaught = Array.of_list (Cycle.uncaught_indices machine) in
                  Rng.shuffle rng uncaught;
                  let k = min sample_size (Array.length uncaught) in
                  Array.init k (fun i -> (uncaught.(i), faults.(uncaught.(i))))
                in
                let scored =
                  List.map2
                    (fun sc cand -> (sc, cand))
                    (score_candidates ~sim ~machine ~hardness cfg.selection ~sample candidates)
                    candidates
                in
                List.fold_left
                  (fun (bs, bc) (sc, cand) -> if sc > bs then (sc, cand) else (bs, bc))
                  (List.hd scored) (List.tl scored)
                |> snd
          in
          apply_candidate s best;
          current_s := Policy.shrink cfg.shift ~current:!current_s;
          (* Snapshot between cycles: everything below this point is a pure
             function of the captured state and the caller's inputs. *)
          (match checkpoint with
          | Some (every, save) when every > 0 && Cycle.cycle_count machine mod every = 0 ->
              Trace.with_span "engine.checkpoint" (fun () -> save (take_snapshot ()))
          | Some _ | None -> ());
          loop ()
  in
  loop ();
  (* Final unload: a full drain when hidden faults remain to flush. *)
  let need_drain = Cycle.num_hidden machine > 0 in
  ignore (Cycle.flush machine ~full:need_drain);
  let caught_stitched = Cycle.num_caught machine in
  (* Extra phase: traditional full-shift vectors for the leftovers. *)
  let leftover_idx = Cycle.uncaught_indices machine in
  let leftover = Array.of_list (List.map (fun i -> faults.(i)) leftover_idx) in
  let extra_stimuli = ref [] in
  let extra_vectors, caught_extra, redundant, aborted =
    if Array.length leftover = 0 then (0, 0, [], [])
    else
      Trace.with_span "engine.extra"
        ~args:[ ("leftover", string_of_int (Array.length leftover)) ]
      @@ fun () ->
      begin
      let extra_podem = { cfg.podem with Podem.backtrack_limit = max 100 cfg.podem.Podem.backtrack_limit } in
      let options = { Generator.default_options with random_patterns = 0; podem = extra_podem } in
      let gen = Generator.generate ~options ~rng ctx leftover in
      extra_stimuli := Array.to_list gen.Generator.vectors;
      let nvec = ref (Array.length gen.Generator.vectors) in
      let caught =
        ref (Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 gen.Generator.detected)
      in
      (* Aborted leftovers are topped up from the known-good fallback set:
         append any fallback vector that detects a still-missing fault. *)
      let aborted = ref gen.Generator.aborted in
      if !aborted <> [] && Array.length fallback > 0 then begin
        let sim = Tvs_fault.Fault_sim.create ?jobs:cfg.jobs ?batch:cfg.batch c in
        let missing = ref !aborted in
        (* Accumulate appended vectors in reverse and splice once at the end:
           list append inside the loop is quadratic in the fallback count. *)
        let appended_rev = ref [] in
        Array.iter
          (fun (vec : Cube.vector) ->
            if !missing <> [] then begin
              let subset = Array.of_list !missing in
              let flags =
                Tvs_fault.Fault_sim.detected_faults sim ~pi:vec.Cube.pi ~state:vec.Cube.scan subset
              in
              let hit = Array.exists (fun b -> b) flags in
              if hit then begin
                incr nvec;
                appended_rev := vec :: !appended_rev;
                let survivors = ref [] in
                Array.iteri
                  (fun k f -> if flags.(k) then incr caught else survivors := f :: !survivors)
                  subset;
                missing := List.rev !survivors
              end
            end)
          fallback;
        extra_stimuli := !extra_stimuli @ List.rev !appended_rev;
        aborted := !missing
      end;
      (!nvec, !caught, gen.Generator.redundant, !aborted)
    end
  in
  Metrics.add m_stitched_vectors (List.length !shifts);
  Metrics.add m_extra_vectors extra_vectors;
  {
    schedule =
      {
        Cost.chain_len;
        npi = Circuit.num_inputs c;
        npo = Circuit.num_outputs c;
        shifts = List.rev !shifts;
        extra = extra_vectors;
        full_drain = need_drain;
      };
    stimuli = List.rev !stimuli;
    extra_stimuli = !extra_stimuli;
    stitched_vectors = List.length !shifts;
    extra_vectors;
    caught_stitched;
    caught_extra;
    total_faults = Array.length faults;
    redundant;
    aborted;
    peak_hidden = !peak_hidden;
    log = List.rev !log;
  }
