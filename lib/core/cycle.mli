(** The per-cycle fault-set machine of the stitched flow.

    Tracks the three disjoint fault sets of Section 4 — caught [f_c], hidden
    [f_h], uncaught [f_u] — together with the fault-free chain contents and,
    for every hidden fault, its private (divergent) chain contents. One
    {!step} models: shift [s] fresh bits in (observing [s] bits of the
    previous response, which resolves hidden faults), apply the resulting
    vector, capture, and write back according to the XOR scheme.

    {!preview} runs the same classification without committing, which is how
    the greedy vector-selection strategies score candidates. *)

type status =
  | Caught of int  (** cycle number (1-based) at which the fault was observed *)
  | Hidden
  | Uncaught

type t

val create :
  ?scheme:Tvs_scan.Xor_scheme.t ->
  ?jobs:int ->
  ?batch:int ->
  Tvs_netlist.Circuit.t ->
  faults:Tvs_fault.Fault.t array ->
  t
(** Fresh machine: every fault uncaught, chain contents all-zero (the first
    vector is fully shifted so the initial contents never matter). [jobs] is
    the fault-simulation fan-out width and [batch] the vector-batch size
    (see {!Tvs_fault.Fault_sim.create}); results are identical for every
    value of either. *)

val circuit : t -> Tvs_netlist.Circuit.t
val scheme : t -> Tvs_scan.Xor_scheme.t
val num_faults : t -> int
val status : t -> int -> status
val cycle_count : t -> int

val num_caught : t -> int
val num_hidden : t -> int
val num_uncaught : t -> int

val uncaught_indices : t -> int list
(** Ascending fault indices currently in [f_u]. *)

val hidden_indices : t -> int list

val good_contents : t -> bool array
(** Fault-free chain contents (post write-back). Do not mutate. *)

(** {2 Persisted state}

    Everything a mid-flow machine carries beyond its construction inputs:
    the fault partition (with each hidden fault's private chain contents),
    the fault-free chain contents, and the cycle counters. {!export} and
    {!restore} are the checkpoint/resume substrate — restoring an exported
    state into a machine created with the same circuit and fault list
    continues the flow bit-identically. *)

type fault_state =
  | Fs_caught of int  (** cycle number at which the fault was observed *)
  | Fs_hidden of bool array  (** the fault's private (divergent) chain contents *)
  | Fs_uncaught

type persisted = {
  states : fault_state array;  (** one per fault, in fault-list order *)
  good : bool array;  (** fault-free chain contents *)
  cycles : int;
  last_shift : int;
}

val export : t -> persisted
(** Deep copy of the machine's mutable state. *)

val restore : t -> persisted -> unit
(** Overwrite the machine's state. Raises [Invalid_argument] when the
    persisted shape does not match the machine's circuit or fault count. *)

val constraints_for : t -> s:int -> Tvs_logic.Ternary.t array
(** The scan-part constraint cube a vector built with shift [s] must satisfy:
    head [s] cells free, the rest pinned to the retained response. *)

type report = {
  caught_now : int list;  (** fault indices newly caught this cycle *)
  newly_hidden : int list;  (** [f_u] faults that became hidden *)
  reverted : int list;  (** hidden faults whose effect vanished (back to [f_u]) *)
  still_hidden : int list;  (** hidden faults remaining hidden *)
  good_po : bool array;
  good_capture : bool array;
}

val step : t -> pi:bool array -> fresh:bool array -> report
(** Commit one test cycle. [Array.length fresh] is the shift size [s]; the
    applied scan part is [fresh] concatenated with the retained contents.
    Raises [Invalid_argument] if [s] exceeds the chain length. *)

val preview : t -> pi:bool array -> fresh:bool array -> report
(** Same classification as {!step} but without mutating the machine. *)

val flush : t -> full:bool -> report
(** Final unload with no new vector: observe [s] bits ([s] = chain length
    when [full], else the last step's shift size) of the last response.
    Hidden faults observed there are caught; the rest revert to uncaught.
    After [flush] the hidden set is empty. *)

val differentiated : report -> int
(** [caught_now] plus [newly_hidden]: how many uncaught faults the cycle's
    vector told apart from the fault-free machine — the greedy score. *)
