(** Binary wire primitives for the persistence layer ([tvs_store]).

    All multi-byte integers are little-endian; lengths and non-negative ints
    use unsigned LEB128 varints; bool arrays are bit-packed LSB-first. The
    canonical byte form is host-independent, so content digests computed
    over encodings are stable across machines.

    Writers append to a growable buffer and raise [Invalid_argument] only on
    programmer error (negative varint, byte out of range). Readers are
    bounds-checked cursors: every malformed or truncated input raises the
    local {!Error} exception, which {!decode} converts to [Result.Error] —
    corrupt bytes can never surface as a bare [Failure] from a half-read. *)

type writer

val writer : ?size:int -> unit -> writer
val contents : writer -> string

val write_u8 : writer -> int -> unit
val write_bool : writer -> bool -> unit

val write_varint : writer -> int -> unit
(** Unsigned LEB128. Raises [Invalid_argument] on a negative value. *)

val write_i64 : writer -> int64 -> unit
(** Fixed 8 bytes, little-endian. *)

val write_f64 : writer -> float -> unit
(** IEEE-754 bits via {!write_i64}. *)

val write_string : writer -> string -> unit
(** Varint byte length, then the raw bytes. *)

val write_bool_array : writer -> bool array -> unit
(** Varint bit length, then [ceil(n/8)] bytes, LSB-first. *)

val write_option : (writer -> 'a -> unit) -> writer -> 'a option -> unit
val write_list : (writer -> 'a -> unit) -> writer -> 'a list -> unit
val write_array : (writer -> 'a -> unit) -> writer -> 'a array -> unit

(** {2 Reading} *)

exception Error of string
(** Truncated or malformed input. The message names the offset. *)

type reader

val reader : ?pos:int -> ?len:int -> string -> reader
val remaining : reader -> int
val at_end : reader -> bool

val read_u8 : reader -> int
val read_bool : reader -> bool
val read_varint : reader -> int
val read_i64 : reader -> int64
val read_f64 : reader -> float
val read_string : reader -> string
val read_bool_array : reader -> bool array
val read_option : (reader -> 'a) -> reader -> 'a option
val read_list : (reader -> 'a) -> reader -> 'a list
val read_array : (reader -> 'a) -> reader -> 'a array

val decode : string -> (reader -> 'a) -> ('a, string) result
(** Run a decoder over a whole string, catching {!Error} (and
    [Invalid_argument] from structural validation inside decoders) as
    [Result.Error]. *)
