(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
   State is kept as a plain OCaml int masked to 32 bits: on a 64-bit build
   every intermediate fits a native int, avoiding Int32 boxing on the hot
   byte loop. *)

let poly = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := poly lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

type t = int

let mask = 0xFFFFFFFF

let init = 0

let update_bytes crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update_bytes: range out of bounds";
  let tbl = Lazy.force table in
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c := tbl.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor mask land mask

let update crc s = update_bytes crc s 0 (String.length s)

let digest s = update init s
