let now = Unix.gettimeofday

let time_it f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
