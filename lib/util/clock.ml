external monotonic : unit -> float = "tvs_clock_monotonic_s"

let now = monotonic
let wall = Unix.gettimeofday

let time_it f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
