(** CRC-32 (IEEE 802.3), the integrity trailer of every [tvs_store] frame.

    The checksum is the standard reflected CRC-32 (polynomial 0xEDB88320,
    initial value and final XOR 0xFFFFFFFF) — the same function as zlib's
    [crc32], so frames can be checked with external tooling. Values are
    plain non-negative ints in [0, 2^32). *)

type t = int
(** A running checksum. *)

val init : t
(** The checksum of the empty string. *)

val update : t -> string -> t
(** [update crc s] extends [crc] with every byte of [s]. *)

val update_bytes : t -> string -> int -> int -> t
(** [update_bytes crc s pos len] extends [crc] with [s.[pos .. pos+len-1]].
    Raises [Invalid_argument] if the range is out of bounds. *)

val digest : string -> t
(** [update init]. *)
