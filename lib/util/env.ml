(* Environment knobs with misconfiguration reporting. A deployment that sets
   TVS_JOBS or TVS_BATCH to garbage used to run silently at the default
   parallelism; now every unparseable value is reported once per distinct
   value on stderr and through an installable hook (tvs_obs routes it into a
   metrics counter), while the knob still falls back to its default. *)

let mutex = Mutex.create ()

(* key -> last value we warned about: repeated reads of the same bad value
   (pool and fault-sim contexts are created freely in hot paths) warn once,
   while a changed-but-still-bad value warns again. *)
let warned : (string, string) Hashtbl.t = Hashtbl.create 4
let warnings = Atomic.make 0
let hook : (key:string -> value:string -> unit) option ref = ref None

let set_warning_hook h = hook := h
let warning_count () = Atomic.get warnings

let warn ~key ~value ~fallback =
  let fresh =
    Mutex.protect mutex (fun () ->
        match Hashtbl.find_opt warned key with
        | Some v when String.equal v value -> false
        | _ ->
            Hashtbl.replace warned key value;
            true)
  in
  if fresh then begin
    Atomic.incr warnings;
    (match !hook with Some f -> f ~key ~value | None -> ());
    Printf.eprintf "tvs: warning: %s=%S is not a positive integer; falling back to %s\n%!" key
      value fallback
  end

let positive_int ?(fallback = "the built-in default") key =
  match Sys.getenv_opt key with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> Some v
      | Some _ | None ->
          warn ~key ~value:s ~fallback;
          None)
