(** Deterministic pseudo-random number generation.

    All randomness in the project flows through this module so that every
    experiment is reproducible bit-for-bit. The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent statistical
    quality for simulation workloads, and trivially splittable, which lets
    each (circuit, experiment) pair derive an independent stream. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val state : t -> int64
(** The raw generator state, for checkpointing. [create (state t)] yields a
    generator that continues [t]'s stream exactly. *)

val set_state : t -> int64 -> unit
(** Overwrite the generator state (checkpoint restore). *)

val mix64 : int64 -> int64
(** The SplitMix64 finalizer (Stafford's mix13), exposed for content-hash
    construction in the persistence layer. *)

val of_string : string -> t
(** [of_string s] derives a generator from an arbitrary label (e.g. a circuit
    name) via a FNV-1a hash, so streams for distinct labels are independent. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of the
    remainder of [t]'s stream; [t] advances by one step. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] returns a uniformly chosen element. [arr] must be non-empty. *)
