/* Monotonic clock stub for Tvs_util.Clock.
 *
 * CLOCK_MONOTONIC never steps (NTP slews it but cannot jump it), so
 * durations measured against it are always non-negative — unlike
 * gettimeofday, whose steps corrupt long-running servers' trace spans and
 * bench timings. The epoch is arbitrary (typically boot time).
 */
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value tvs_clock_monotonic_s(value unit)
{
  (void)unit;
#ifdef CLOCK_MONOTONIC
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec / 1e9);
#endif
  /* No monotonic source (should not happen on any supported platform):
     degrade to the wall clock rather than failing. */
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec / 1e6);
  }
}
