(** A small DPLL SAT solver.

    Complete (sound SAT and UNSAT answers) with unit propagation and
    chronological backtracking — deliberately simple, sized for the
    cone-local CNFs of SAT-based ATPG and equivalence checking where a few
    thousand variables is typical. Variables are positive integers; a
    literal is [v] or [-v]. *)

type result =
  | Sat of bool array  (** satisfying assignment, index = variable *)
  | Unsat
  | Unknown  (** decision budget exhausted *)

type stats = {
  decisions : int;  (** search nodes visited (the [max_decisions] currency) *)
  propagations : int;  (** literals implied by unit propagation *)
}

val no_stats : stats
(** All-zero statistics — the cost of a call that never reached the
    search (e.g. an input containing an empty clause). *)

val solve : ?decision_order:int list -> ?max_decisions:int -> nvars:int -> int list list -> result
(** [solve ~nvars clauses] decides the conjunction of [clauses]. Variables
    range over [1 .. nvars]; index 0 of a [Sat] assignment is unused. An
    empty clause yields [Unsat]; an empty clause list is satisfiable.

    Input clauses are normalized first: duplicate literals are dropped and
    tautological clauses (containing both [v] and [-v]) are removed rather
    than branched on, so encoders need not dedupe their output.

    [decision_order] lists the variables to branch on first (e.g. circuit
    inputs, whose assignment implies everything else by propagation);
    remaining variables are decided in ascending order afterwards.
    [max_decisions] bounds the search; exceeding it returns [Unknown]
    (default: unbounded). Raises [Invalid_argument] on a literal out of
    range. *)

val solve_stats :
  ?decision_order:int list -> ?max_decisions:int -> nvars:int -> int list list -> result * stats
(** [solve] plus the work done: decisions consumed (so an [Unknown] verdict
    can report how much of the budget was spent) and propagated literals. *)

val check : nvars:int -> int list list -> bool array -> bool
(** [check ~nvars clauses model] verifies a model (used by the tests). *)
