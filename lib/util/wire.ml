(* Binary wire primitives shared by every codec instance (Bitvec, Circuit,
   Fault, Cube, the engine snapshot). Writers append to a Buffer; readers
   are bounds-checked cursors over a string and raise the local [Error]
   exception, which [decode] converts to a result so no half-read ever
   escapes as a bare [Failure]. *)

type writer = Buffer.t

let writer ?(size = 256) () = Buffer.create size

let contents = Buffer.contents

let write_u8 b v =
  if v < 0 || v > 0xFF then invalid_arg "Wire.write_u8: out of range";
  Buffer.add_char b (Char.unsafe_chr v)

let write_bool b v = write_u8 b (if v then 1 else 0)

(* Unsigned LEB128. Lengths, net ids, counters: always non-negative. *)
let write_varint b v =
  if v < 0 then invalid_arg "Wire.write_varint: negative";
  let rec go v =
    if v < 0x80 then Buffer.add_char b (Char.unsafe_chr v)
    else begin
      Buffer.add_char b (Char.unsafe_chr (0x80 lor (v land 0x7F)));
      go (v lsr 7)
    end
  in
  go v

let write_i64 b v =
  for i = 0 to 7 do
    Buffer.add_char b (Char.unsafe_chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let write_f64 b v = write_i64 b (Int64.bits_of_float v)

let write_string b s =
  write_varint b (String.length s);
  Buffer.add_string b s

(* Bit-packed, LSB-first within each byte: the canonical form is independent
   of the host word size (unlike Bitvec's 63-bit internal words). *)
let write_bool_array b arr =
  let n = Array.length arr in
  write_varint b n;
  let byte = ref 0 in
  for i = 0 to n - 1 do
    if arr.(i) then byte := !byte lor (1 lsl (i land 7));
    if i land 7 = 7 then begin
      Buffer.add_char b (Char.unsafe_chr !byte);
      byte := 0
    end
  done;
  if n land 7 <> 0 then Buffer.add_char b (Char.unsafe_chr !byte)

let write_option f b = function
  | None -> write_u8 b 0
  | Some v ->
      write_u8 b 1;
      f b v

let write_list f b l =
  write_varint b (List.length l);
  List.iter (f b) l

let write_array f b a =
  write_varint b (Array.length a);
  Array.iter (f b) a

(* --- reading ---------------------------------------------------------- *)

exception Error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

type reader = { buf : string; limit : int; mutable pos : int }

let reader ?(pos = 0) ?len buf =
  let limit = match len with Some l -> pos + l | None -> String.length buf in
  if pos < 0 || limit > String.length buf || pos > limit then
    invalid_arg "Wire.reader: range out of bounds";
  { buf; limit; pos }

let remaining r = r.limit - r.pos

let at_end r = r.pos >= r.limit

let read_u8 r =
  if r.pos >= r.limit then error "truncated input: expected a byte at offset %d" r.pos;
  let v = Char.code (String.unsafe_get r.buf r.pos) in
  r.pos <- r.pos + 1;
  v

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> error "invalid boolean byte %d at offset %d" v (r.pos - 1)

let read_varint r =
  let rec go shift acc =
    if shift > 62 then error "varint overflows a native int at offset %d" r.pos;
    let byte = read_u8 r in
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_i64 r =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (read_u8 r)) (8 * i))
  done;
  !v

let read_f64 r = Int64.float_of_bits (read_i64 r)

let read_string r =
  let n = read_varint r in
  if n > remaining r then error "truncated input: string of %d bytes at offset %d" n r.pos;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let read_bool_array r =
  let n = read_varint r in
  let nbytes = (n + 7) / 8 in
  if nbytes > remaining r then
    error "truncated input: bit array of %d bits at offset %d" n r.pos;
  let arr =
    Array.init n (fun i ->
        Char.code (String.unsafe_get r.buf (r.pos + (i lsr 3))) land (1 lsl (i land 7)) <> 0)
  in
  r.pos <- r.pos + nbytes;
  arr

let read_option f r = match read_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | v -> error "invalid option tag %d at offset %d" v (r.pos - 1)

let read_list f r =
  let n = read_varint r in
  if n > remaining r then error "truncated input: list of %d elements at offset %d" n r.pos;
  List.init n (fun _ -> f r)

let read_array f r =
  let n = read_varint r in
  if n > remaining r then error "truncated input: array of %d elements at offset %d" n r.pos;
  Array.init n (fun _ -> f r)

let decode buf f =
  try Ok (f (reader buf)) with
  | Error msg -> Result.Error msg
  | Invalid_argument msg -> Result.Error ("malformed input: " ^ msg)
