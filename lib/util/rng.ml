type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Mixing finalizer from SplitMix64 (variant 13 of Stafford's mix). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let state t = t.state
let set_state t s = t.state <- s

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let of_string label =
  (* FNV-1a, then widen through the mixer so short labels still differ. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  create (mix64 !h)

let split t = create (next_int64 t)

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit native int positively. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
