(** Environment-variable knobs with misconfiguration reporting.

    The scheduling knobs ([TVS_JOBS], [TVS_BATCH]) are read through
    {!positive_int}, which distinguishes "unset" (use the default, silently)
    from "set but unparseable" (use the default, but say so): a deployment
    that exports [TVS_JOBS=sixteen] gets a one-line stderr warning and a tick
    on the warning counter instead of silently running at the wrong
    parallelism. Warnings are deduplicated per distinct value, so hot paths
    that re-read a knob do not spam. *)

val positive_int : ?fallback:string -> string -> int option
(** [positive_int key] is [Some v] when the variable is set to a positive
    integer (surrounding whitespace tolerated), [None] when unset. A set but
    non-positive or unparseable value warns on stderr (once per distinct
    value), fires the {!set_warning_hook} hook, and returns [None];
    [fallback] names the default used in the warning text. *)

val set_warning_hook : (key:string -> value:string -> unit) option -> unit
(** Install (or remove) the process-wide bad-value hook. [tvs_util] sits
    below the [tvs_obs] metrics library, so instead of counting directly it
    reports through this hook ({!Tvs_obs.Instrument.install_env_warning_counter}
    routes it into the [util.env.invalid] counter). Called at most once per
    distinct bad value, on whichever thread read the knob. *)

val warning_count : unit -> int
(** Total misconfiguration warnings emitted so far (hook installed or not). *)
