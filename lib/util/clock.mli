(** Timing sources.

    Two clocks with distinct jobs. {!now} is the OS monotonic clock: it
    never steps backwards, so every duration computed from it (trace spans,
    bench timings, pool probe wait/busy readings) is non-negative even on a
    server that runs across NTP corrections — exactly where
    [Unix.gettimeofday] deltas go negative. {!wall} is calendar time, for
    report timestamps only.

    [Sys.time] is avoided throughout: it reports summed CPU seconds across
    every running domain, which silently inflates measurements the moment
    work fans out over a domain pool. *)

val now : unit -> float
(** Monotonic seconds on an arbitrary epoch ([CLOCK_MONOTONIC],
    sub-microsecond resolution). Only differences are meaningful; use
    {!wall} for timestamps. *)

val wall : unit -> float
(** Seconds since the Unix epoch ([Unix.gettimeofday]). Steps with NTP and
    manual clock changes — never subtract two readings to time anything. *)

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] runs [f ()] and returns its result with the elapsed
    monotonic seconds (always [>= 0]). *)
