(** Wall-clock timing.

    [Sys.time] reports summed CPU seconds across every running domain, which
    silently inflates measurements the moment work fans out over a domain
    pool; all run-time and speedup numbers in the harness use this wall clock
    instead. *)

val now : unit -> float
(** Seconds since the epoch, sub-microsecond resolution
    ([Unix.gettimeofday]). *)

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] runs [f ()] and returns its result with the elapsed
    wall-clock seconds. *)
