(* A fixed-size domain pool. Domains are spawned lazily — on the first
   submission that actually fans out — and then reused across submissions:
   between jobs they park on a condition variable, so an idle pool costs
   nothing but memory, and a pool whose every submission runs inline (jobs=1
   or single-chunk work) never spawns at all. Work is distributed by an
   atomic chunk counter (workers race to claim the next index); results land
   in a slot array indexed by chunk, which makes the output order — and
   therefore everything merged from it — independent of scheduling. *)

type t = {
  jobs : int;  (* total parallelism, submitter included *)
  mutex : Mutex.t;
  work : Condition.t;  (* workers park here between submissions *)
  finished : Condition.t;  (* submitter parks here while workers drain *)
  mutable task : (int -> unit) option;  (* current job body, given the slot *)
  mutable epoch : int;  (* submission counter; wakes workers when bumped *)
  mutable busy_workers : int;  (* workers still inside the current job *)
  mutable submitting : bool;  (* re-entrance guard *)
  mutable stop : bool;
  mutable spawned : bool;  (* workers exist; flipped once, submitter-side *)
  mutable domains : unit Domain.t list;
}

let jobs t = t.jobs

let hardware_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let override = ref None

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  override := Some j

let default_jobs () =
  match !override with
  | Some j -> j
  | None -> (
      match Env.positive_int ~fallback:"the hardware core count" "TVS_JOBS" with
      | Some j -> j
      | None -> hardware_jobs ())

(* Worker body for slot [slot] (1 .. jobs-1). Parks until the epoch moves,
   runs the published task, reports completion, repeats. The task closure is
   responsible for catching its own exceptions ([parallel_map_chunks] funnels
   them into an atomic for the submitter to re-raise), so a worker can only
   die through [stop]. *)
let rec worker_loop t ~slot ~seen_epoch =
  Mutex.lock t.mutex;
  while (not t.stop) && t.epoch = seen_epoch do
    Condition.wait t.work t.mutex
  done;
  if t.stop then Mutex.unlock t.mutex
  else begin
    let epoch = t.epoch in
    let task = match t.task with Some f -> f | None -> assert false in
    Mutex.unlock t.mutex;
    (try task slot with _ -> () (* belt and braces; see above *));
    Mutex.lock t.mutex;
    t.busy_workers <- t.busy_workers - 1;
    if t.busy_workers = 0 then Condition.signal t.finished;
    Mutex.unlock t.mutex;
    worker_loop t ~slot ~seen_epoch:epoch
  end

let create ?jobs () =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  {
    jobs;
    mutex = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    task = None;
    epoch = 0;
    busy_workers = 0;
    submitting = false;
    stop = false;
    spawned = false;
    domains = [];
  }

(* First real fan-out: bring the workers up. Runs on the submitter with the
   [submitting] guard already held, so the flag and list are single-writer;
   workers start at the current epoch so solo submissions that happened
   before the spawn are not mistaken for pending work. *)
let ensure_spawned t =
  if not t.spawned then begin
    t.spawned <- true;
    let epoch = t.epoch in
    t.domains <-
      List.init (t.jobs - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t ~slot:(i + 1) ~seen_epoch:epoch))
  end

let num_spawned t = List.length t.domains

(* Respawn-safe: once the workers are joined the stop/spawned flags are
   reset, so the next fanned-out submission brings a fresh crew up. This
   matters for the [shared] registry — shutdown used to leave the dead pool
   registered, silently degrading every later [shared ~jobs] caller's
   submissions to solo — and equally for any retained handle (a long-lived
   fault-sim context on a server). *)
let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- [];
  Mutex.lock t.mutex;
  t.stop <- false;
  t.spawned <- false;
  Mutex.unlock t.mutex

let sequential_map n f = Array.init n (fun i -> f ~slot:0 i)

(* Observability probe: a single process-wide cell. Only read at submission
   time, so installation must precede fan-out; the no-probe path costs one
   load and no clock readings. *)
type probe = {
  on_submit : chunks:int -> jobs:int -> unit;
  on_chunk : slot:int -> wait_s:float -> busy_s:float -> unit;
}

let probe : probe option ref = ref None

let set_probe p = probe := p

let parallel_map_chunks t ~n f =
  if n < 0 then invalid_arg "Pool.parallel_map_chunks: negative chunk count";
  if n = 0 then [||]
  else begin
    let solo =
      t.jobs = 1 || n = 1 || t.stop
      ||
      (* Re-entrant submission (from a task body, or a nested call) would
         deadlock on [finished]; degrade to the submitter's own slot. *)
      (Mutex.lock t.mutex;
       let busy = t.submitting in
       if not busy then t.submitting <- true;
       Mutex.unlock t.mutex;
       busy)
    in
    if solo then sequential_map n f
    else begin
      ensure_spawned t;
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let error = Atomic.make None in
      (* With a probe installed, time each chunk against the submission
         instant (queue wait) and its own start (busy). The timed wrapper is
         chosen once per submission, so the common no-probe case adds
         nothing to the claim loop. *)
      let probe = !probe in
      let f =
        match probe with
        | None -> f
        | Some p ->
            let t_submit = Clock.now () in
            fun ~slot i ->
              let t0 = Clock.now () in
              let v = f ~slot i in
              let t1 = Clock.now () in
              p.on_chunk ~slot ~wait_s:(t0 -. t_submit) ~busy_s:(t1 -. t0);
              v
      in
      (match probe with Some p -> p.on_submit ~chunks:n ~jobs:t.jobs | None -> ());
      let task slot =
        let rec claim () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (* After a failure the queue drains without running [f]: the
               submitter re-raises, so surplus results would be discarded. *)
            (match Atomic.get error with
            | Some _ -> ()
            | None -> (
                try results.(i) <- Some (f ~slot i)
                with e ->
                  let bt = Printexc.get_raw_backtrace () in
                  ignore (Atomic.compare_and_set error None (Some (e, bt)))));
            claim ()
          end
        in
        claim ()
      in
      Mutex.lock t.mutex;
      t.task <- Some task;
      t.busy_workers <- List.length t.domains;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* The submitter is slot 0 of the crew, not a bystander. *)
      task 0;
      Mutex.lock t.mutex;
      while t.busy_workers > 0 do
        Condition.wait t.finished t.mutex
      done;
      t.task <- None;
      t.submitting <- false;
      Mutex.unlock t.mutex;
      match Atomic.get error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          Array.map (function Some v -> v | None -> assert false) results
    end
  end

(* Shared pools, one per size: contexts that fan out (fault simulators) are
   created freely and often, so each creating its own domains would thrash.
   Pools persist for the life of the process; parked domains are cheap. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 4

let shared ~jobs =
  let jobs = max 1 jobs in
  match Hashtbl.find_opt registry jobs with
  | Some p -> p
  | None ->
      let p = create ~jobs () in
      Hashtbl.add registry jobs p;
      p
