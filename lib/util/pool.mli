(** Fixed-size domain pool for deterministic chunked fan-out.

    Domains are spawned lazily — on the first submission that actually fans
    out — and reused: between submissions they park on a condition variable,
    and a pool whose submissions all run inline never spawns any. A
    submission hands the pool a number of
    independent chunks; workers (plus the submitting domain itself, as slot
    0) claim chunk indices from an atomic counter and write results into a
    per-chunk slot array, so the returned array — and anything merged from it
    in index order — is identical for every pool size and scheduling.

    Pools are submitter-side only: one submission runs at a time, and a
    re-entrant submission (from inside a task) degrades safely to the
    caller's own slot instead of deadlocking. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] sizes the pool for [jobs - 1] worker domains ([jobs]
    is the total parallelism including the submitter; clamped to at least 1,
    so [jobs:1] spawns nothing and every submission runs inline). The
    workers are not spawned here: they come up on the first submission that
    fans out, so a pool whose work always fits one chunk costs nothing.
    Default: {!default_jobs}. *)

val shared : jobs:int -> t
(** The process-wide pool of the given size, created on first use and reused
    forever after. Fault-simulation contexts are created freely in hot paths;
    sharing keeps domain spawns a one-time cost. *)

val jobs : t -> int
(** Total parallelism of the pool, submitter included. *)

val parallel_map_chunks : t -> n:int -> (slot:int -> int -> 'a) -> 'a array
(** [parallel_map_chunks t ~n f] computes [|f ~slot 0; ...; f ~slot (n-1)|].
    [slot] identifies the executing lane ([0] = the submitting domain,
    [1 .. jobs-1] = a fixed worker domain) — callers key per-domain scratch
    contexts off it; a given slot never runs two chunks concurrently, and a
    slot maps to the same domain across submissions. Chunks must be
    independent: [f] must not touch another slot's context or submit to the
    same pool.

    If any [f] raises, remaining chunks are drained without running and the
    first exception is re-raised in the submitter with its backtrace.
    Runs inline on the submitter — without spawning or waking any worker —
    when [jobs = 1] or [n <= 1]. *)

val num_spawned : t -> int
(** Worker domains currently alive: [0] until the first fanned-out
    submission (or forever, if none ever fans out), [jobs - 1] after.
    Exposed for tests and observability. *)

val shutdown : t -> unit
(** Stop and join the worker domains, then reset the pool so it is usable
    again: the next submission that fans out respawns a fresh crew, exactly
    as after {!create}. In particular a pool obtained from {!shared} keeps
    working for later callers after an intermediate shutdown — it is never
    left as a dead registry entry whose submissions silently degrade to
    solo. Only needed by tests and servers; shared pools live with the
    process. *)

val default_jobs : unit -> int
(** The jobs knob's default: {!set_default_jobs} if called, else the
    [TVS_JOBS] environment variable, else
    [Domain.recommended_domain_count () - 1] clamped to at least 1. A set
    but non-positive or unparseable [TVS_JOBS] falls back to the hardware
    default and warns through {!Env} — a misconfigured deployment is never
    silent. *)

val set_default_jobs : int -> unit
(** Process-wide override of {!default_jobs} (the [--jobs] CLI flag).
    Raises [Invalid_argument] if the value is < 1. *)

(** Observability hook. The pool sits below the [tvs_obs] metrics library in
    the dependency order, so instead of recording metrics itself it reports
    neutral events through an installable probe
    ([Tvs_obs.Instrument.install_pool_probe] routes them into the metrics
    registry). With no probe installed (the default) the fan-out path takes
    no clock readings at all. *)
type probe = {
  on_submit : chunks:int -> jobs:int -> unit;
      (** A fanned-out submission of [chunks] chunks started on a pool of
          width [jobs]. Called on the submitting domain. Inline submissions
          ([jobs = 1], [n <= 1], re-entrant) are not reported. *)
  on_chunk : slot:int -> wait_s:float -> busy_s:float -> unit;
      (** One chunk finished on [slot]. [wait_s] is the queue wait (from
          submission until the chunk started); [busy_s] the chunk body's own
          wall time. Called on the executing domain, so a probe must be
          domain-safe. *)
}

val set_probe : probe option -> unit
(** Install or remove the process-wide probe. Not synchronized with running
    submissions: install before fan-out begins (front-end startup). *)
