type result = Sat of bool array | Unsat | Unknown

type stats = { decisions : int; propagations : int }

let no_stats = { decisions = 0; propagations = 0 }

(* Assignment: 0 = unassigned, 1 = true, -1 = false. *)

let check ~nvars clauses model =
  ignore nvars;
  List.for_all
    (fun clause ->
      List.exists
        (fun lit ->
          let v = abs lit in
          if lit > 0 then model.(v) else not model.(v))
        clause)
    clauses

(* Drop duplicate literals and tautological clauses (containing both [v]
   and [-v]) so the search never branches on them. [None] marks a
   tautology — always satisfied, hence removable. *)
let normalize_clause clause =
  let rec go seen acc = function
    | [] -> Some (List.rev acc)
    | lit :: rest ->
        if List.memq (-lit) seen then None
        else if List.memq lit seen then go seen acc rest
        else go (lit :: seen) (lit :: acc) rest
  in
  go [] [] clause

exception Out_of_budget

let solve_stats ?(decision_order = []) ?max_decisions ~nvars clauses =
  if nvars < 0 then invalid_arg "Sat.solve: negative variable count";
  List.iter
    (List.iter (fun lit ->
         if lit = 0 || abs lit > nvars then invalid_arg "Sat.solve: literal out of range"))
    clauses;
  let clauses = List.filter_map normalize_clause clauses in
  if List.exists (fun c -> c = []) clauses then (Unsat, no_stats)
  else begin
    let clauses = Array.of_list (List.map Array.of_list clauses) in
    let assign = Array.make (nvars + 1) 0 in
    (* Occurrence lists: clauses watching each variable (simple scheme: all
       clauses containing the variable). *)
    let occurs = Array.make (nvars + 1) [] in
    Array.iteri
      (fun ci clause ->
        Array.iter
          (fun lit ->
            let v = abs lit in
            if not (List.memq ci occurs.(v)) then occurs.(v) <- ci :: occurs.(v))
          clause)
      clauses;
    let value lit =
      let v = assign.(abs lit) in
      if v = 0 then 0 else if lit > 0 then v else -v
    in
    let trail = ref [] in
    let set lit =
      assign.(abs lit) <- (if lit > 0 then 1 else -1);
      trail := abs lit :: !trail
    in
    let undo_to mark =
      while !trail != mark do
        match !trail with
        | v :: rest ->
            assign.(v) <- 0;
            trail := rest
        | [] -> assert false
      done
    in
    let decisions = ref 0 in
    let propagations = ref 0 in
    (* Unit propagation from the clauses touching recently assigned
       variables; returns false on conflict. *)
    let rec propagate queue =
      match queue with
      | [] -> true
      | v :: rest ->
          let continue = ref (Some rest) in
          List.iter
            (fun ci ->
              match !continue with
              | None -> ()
              | Some pending ->
                  let clause = clauses.(ci) in
                  let satisfied = ref false in
                  let unassigned = ref 0 in
                  let last = ref 0 in
                  Array.iter
                    (fun lit ->
                      match value lit with
                      | 1 -> satisfied := true
                      | 0 ->
                          incr unassigned;
                          last := lit
                      | _ -> ())
                    clause;
                  if not !satisfied then
                    if !unassigned = 0 then continue := None (* conflict *)
                    else if !unassigned = 1 then begin
                      set !last;
                      incr propagations;
                      continue := Some (abs !last :: pending)
                    end)
            occurs.(v);
          (match !continue with None -> false | Some pending -> propagate pending)
    in
    (* Initial units. *)
    let initial_ok =
      Array.for_all
        (fun clause ->
          if Array.length clause = 1 then begin
            match value clause.(0) with
            | -1 -> false
            | 0 ->
                set clause.(0);
                incr propagations;
                propagate [ abs clause.(0) ]
            | _ -> true
          end
          else true)
        clauses
    in
    let order =
      let preferred = List.filter (fun v -> v >= 1 && v <= nvars) decision_order in
      let mark = Array.make (nvars + 1) false in
      List.iter (fun v -> mark.(v) <- true) preferred;
      let rest = List.init nvars (fun i -> i + 1) |> List.filter (fun v -> not mark.(v)) in
      Array.of_list (preferred @ rest)
    in
    let budget_ok () =
      incr decisions;
      match max_decisions with
      | None -> ()
      | Some cap -> if !decisions > cap then raise Out_of_budget
    in
    let rec pick_unassigned i =
      if i >= Array.length order then 0
      else if assign.(order.(i)) = 0 then order.(i)
      else pick_unassigned (i + 1)
    in
    let rec search () =
      let v = pick_unassigned 0 in
      if v = 0 then true
      else begin
        budget_ok ();
        let mark = !trail in
        let try_value lit =
          set lit;
          if propagate [ abs lit ] && search () then true
          else begin
            undo_to mark;
            false
          end
        in
        try_value v || try_value (-v)
      end
    in
    let stats () = { decisions = !decisions; propagations = !propagations } in
    match initial_ok && search () with
    | true -> (Sat (Array.init (nvars + 1) (fun v -> v > 0 && assign.(v) = 1)), stats ())
    | false -> (Unsat, stats ())
    | exception Out_of_budget -> (Unknown, stats ())
  end

let solve ?decision_order ?max_decisions ~nvars clauses =
  fst (solve_stats ?decision_order ?max_decisions ~nvars clauses)
