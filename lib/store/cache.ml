module Metrics = Tvs_obs.Metrics

(* Cache traffic varies run to run (a warm cache hits where a cold one
   misses), so none of these may enter the stable snapshot that CI compares
   across jobs values. *)
let m_hits = Metrics.counter ~stable:false "store.cache.hits"
let m_misses = Metrics.counter ~stable:false "store.cache.misses"
let m_evictions = Metrics.counter ~stable:false "store.cache.evictions"
let m_stores = Metrics.counter ~stable:false "store.cache.stores"

type t = { dir : string }

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir path =
  if String.length path = 0 then Error "--cache needs a non-empty directory name"
  else
    match
      if Sys.file_exists path then
        if Sys.is_directory path then Ok ()
        else Error (Printf.sprintf "--cache %S exists and is not a directory" path)
      else begin
        mkdir_p path;
        Ok ()
      end
    with
    | Ok () -> Ok { dir = path }
    | Error _ as e -> e
    | exception Unix.Unix_error (err, _, arg) ->
        Error (Printf.sprintf "--cache %S: cannot create %S: %s" path arg (Unix.error_message err))

let dir t = t.dir

let entry_path t ~kind ~key =
  Filename.concat t.dir
    (Printf.sprintf "%s-v%d-%s.tvsc" kind Codec.schema_version (Digest.to_hex key))

let find t ~kind ~key f =
  let path = entry_path t ~kind ~key in
  if not (Sys.file_exists path) then begin
    Metrics.incr m_misses;
    None
  end
  else
    match Codec.of_file ~kind path f with
    | Ok v ->
        Metrics.incr m_hits;
        Some v
    | Error _ ->
        (* Torn write, bit rot, or a schema change that kept the file name:
           drop the entry and recompute. The eviction counter records files
           this call actually removed — if a concurrent reader already
           unlinked the entry (the remove raises), the eviction was theirs
           and this read tallies only its miss. *)
        (match Sys.remove path with
        | () -> Metrics.incr m_evictions
        | exception Sys_error _ -> ());
        Metrics.incr m_misses;
        None

let store t ~kind ~key f =
  Codec.to_file ~kind (entry_path t ~kind ~key) f;
  Metrics.incr m_stores

let hits () = Metrics.counter_value m_hits
let misses () = Metrics.counter_value m_misses
let evictions () = Metrics.counter_value m_evictions
