(** Content-addressed on-disk result cache.

    Entries live in one flat directory as CRC-trailered {!Codec} frames,
    named [<kind>-v<schema>-<key>.tvsc] where [key] is the hex {!Digest} of
    everything that determines the result (typically
    [Digest.combine (Digest.circuit c) (Digest.config ...)]). The schema
    version in the file name keeps entries from different code generations
    from ever colliding; the frame's own version byte and CRC catch the rest.

    A corrupt or stale entry is evicted (deleted) on lookup and reported as
    a miss — damage degrades to recomputation, never to a crash or a wrong
    result. Lookups and stores count on the [tvs_obs] metrics registry
    ([store.cache.hits] / [.misses] / [.evictions] / [.stores], all
    unstable: cache traffic legitimately varies across runs). *)

type t

val open_dir : string -> (t, string) result
(** Create the directory (and parents) if needed. [Error] when the path
    exists but is not a directory, or cannot be created. *)

val dir : t -> string

val entry_path : t -> kind:string -> key:Digest.t -> string
(** Where an entry is (or would be) stored; exposed for tests. *)

val find : t -> kind:string -> key:Digest.t -> (Tvs_util.Wire.reader -> 'a) -> 'a option
(** [None] on absence ([store.cache.misses]) and on any damaged or
    incompatible entry, which is also deleted ([store.cache.evictions]). *)

val store : t -> kind:string -> key:Digest.t -> (Tvs_util.Wire.writer -> unit) -> unit
(** Atomic write (temp + rename); concurrent writers of the same key are
    safe, last one wins with identical bytes. Raises [Sys_error] on I/O
    failure. *)

val hits : unit -> int
val misses : unit -> int
val evictions : unit -> int
