module Rng = Tvs_util.Rng
module Wire = Tvs_util.Wire
module Circuit = Tvs_netlist.Circuit
module Xor_scheme = Tvs_scan.Xor_scheme
module Policy = Tvs_core.Policy

type t = int64

let equal = Int64.equal
let compare = Int64.compare
let to_hex = Printf.sprintf "%016Lx"

(* SplitMix64's golden-ratio increment, the same constant Rng steps by. *)
let golden = 0x9E3779B97F4A7C15L

let of_string s =
  let n = String.length s in
  (* Little-endian load of up to 8 bytes; short tails zero-extend, and the
     length seed keeps "a" and "a\x00" distinct. *)
  let word pos len =
    let v = ref 0L in
    for i = len - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + i]))
    done;
    !v
  in
  let h = ref (Rng.mix64 (Int64.of_int n)) in
  let fold block = h := Rng.mix64 (Int64.add (Int64.logxor !h block) golden) in
  for k = 0 to (n / 8) - 1 do
    fold (word (k * 8) 8)
  done;
  if n land 7 <> 0 then fold (word (n land lnot 7) (n land 7));
  !h

let combine a b = Rng.mix64 (Int64.add (Int64.logxor (Rng.mix64 a) b) golden)

let of_encoding f =
  let w = Wire.writer () in
  f w;
  of_string (Wire.contents w)

let circuit c = of_encoding (fun w -> Circuit.encode w c)

let config ~(config : Tvs_core.Engine.config) ~label =
  of_encoding (fun w ->
      Wire.write_string w (Xor_scheme.to_string config.scheme);
      Wire.write_string w (Policy.describe_shift config.shift);
      Wire.write_string w (Policy.describe_selection config.selection);
      Wire.write_varint w config.podem.backtrack_limit;
      Wire.write_bool w config.podem.guided;
      Wire.write_varint w config.max_cycles;
      Wire.write_varint w config.stagnation_limit;
      Wire.write_varint w config.max_targets_per_cycle;
      (* config.jobs and config.batch are NOT digested: results are
         invariant to both, so checkpoints and cache entries written at one
         setting replay at any other. *)
      Wire.write_string w label)

let encode = Wire.write_i64
let decode = Wire.read_i64
