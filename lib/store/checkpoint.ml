module Wire = Tvs_util.Wire
module Fault = Tvs_fault.Fault
module Xor_scheme = Tvs_scan.Xor_scheme
module Policy = Tvs_core.Policy
module Cycle = Tvs_core.Cycle
module Engine = Tvs_core.Engine

type t = {
  spec : string;
  scale : float;
  scheme : Xor_scheme.t;
  selection : Policy.selection;
  shift : int option;
  label : string;
  circuit_digest : Digest.t;
  config_digest : Digest.t;
  snapshot : Engine.snapshot;
}

let kind = "CKPT"

(* --- component codecs ------------------------------------------------- *)

let write_scheme w s = Wire.write_string w (Xor_scheme.to_string s)

let read_scheme r =
  let s = Wire.read_string r in
  match Xor_scheme.of_string s with
  | Some v -> v
  | None -> raise (Wire.Error (Printf.sprintf "unknown XOR scheme %S" s))

let write_selection w = function
  | Policy.Random_order -> Wire.write_u8 w 0
  | Policy.Hardness_order -> Wire.write_u8 w 1
  | Policy.Most_faults k ->
      Wire.write_u8 w 2;
      Wire.write_varint w k
  | Policy.Weighted k ->
      Wire.write_u8 w 3;
      Wire.write_varint w k

let read_selection r =
  match Wire.read_u8 r with
  | 0 -> Policy.Random_order
  | 1 -> Policy.Hardness_order
  | 2 -> Policy.Most_faults (Wire.read_varint r)
  | 3 -> Policy.Weighted (Wire.read_varint r)
  | v -> raise (Wire.Error (Printf.sprintf "unknown selection tag %d" v))

let write_fault_state w = function
  | Cycle.Fs_uncaught -> Wire.write_u8 w 0
  | Cycle.Fs_caught cycle ->
      Wire.write_u8 w 1;
      Wire.write_varint w cycle
  | Cycle.Fs_hidden contents ->
      Wire.write_u8 w 2;
      Wire.write_bool_array w contents

let read_fault_state r =
  match Wire.read_u8 r with
  | 0 -> Cycle.Fs_uncaught
  | 1 -> Cycle.Fs_caught (Wire.read_varint r)
  | 2 -> Cycle.Fs_hidden (Wire.read_bool_array r)
  | v -> raise (Wire.Error (Printf.sprintf "unknown fault-state tag %d" v))

let write_machine w (p : Cycle.persisted) =
  Wire.write_array write_fault_state w p.Cycle.states;
  Wire.write_bool_array w p.Cycle.good;
  Wire.write_varint w p.Cycle.cycles;
  Wire.write_varint w p.Cycle.last_shift

let read_machine r =
  let states = Wire.read_array read_fault_state r in
  let good = Wire.read_bool_array r in
  let cycles = Wire.read_varint r in
  let last_shift = Wire.read_varint r in
  { Cycle.states; good; cycles; last_shift }

let write_stimulus w (pi, fresh) =
  Wire.write_bool_array w pi;
  Wire.write_bool_array w fresh

let read_stimulus r =
  let pi = Wire.read_bool_array r in
  let fresh = Wire.read_bool_array r in
  (pi, fresh)

let write_cycle_log w (l : Engine.cycle_log) =
  Wire.write_varint w l.Engine.shift;
  Fault.encode w l.Engine.target;
  Wire.write_varint w l.Engine.caught;
  Wire.write_varint w l.Engine.became_hidden;
  Wire.write_varint w l.Engine.hidden_after;
  Wire.write_varint w l.Engine.uncaught_after;
  Wire.write_varint w l.Engine.events_fired;
  Wire.write_varint w l.Engine.gates_skipped;
  Wire.write_varint w l.Engine.faults_dropped

let read_cycle_log r =
  let shift = Wire.read_varint r in
  let target = Fault.decode r in
  let caught = Wire.read_varint r in
  let became_hidden = Wire.read_varint r in
  let hidden_after = Wire.read_varint r in
  let uncaught_after = Wire.read_varint r in
  let events_fired = Wire.read_varint r in
  let gates_skipped = Wire.read_varint r in
  let faults_dropped = Wire.read_varint r in
  {
    Engine.shift;
    target;
    caught;
    became_hidden;
    hidden_after;
    uncaught_after;
    events_fired;
    gates_skipped;
    faults_dropped;
  }

let write_snapshot w (s : Engine.snapshot) =
  write_machine w s.Engine.machine;
  Wire.write_list Wire.write_varint w s.Engine.shifts_rev;
  Wire.write_list write_stimulus w s.Engine.stimuli_rev;
  Wire.write_list write_cycle_log w s.Engine.log_rev;
  Wire.write_varint w s.Engine.peak_hidden;
  Wire.write_varint w s.Engine.stagnant;
  Wire.write_varint w s.Engine.current_s;
  Wire.write_i64 w s.Engine.rng_state

let read_snapshot r =
  let machine = read_machine r in
  let shifts_rev = Wire.read_list Wire.read_varint r in
  let stimuli_rev = Wire.read_list read_stimulus r in
  let log_rev = Wire.read_list read_cycle_log r in
  let peak_hidden = Wire.read_varint r in
  let stagnant = Wire.read_varint r in
  let current_s = Wire.read_varint r in
  let rng_state = Wire.read_i64 r in
  { Engine.machine; shifts_rev; stimuli_rev; log_rev; peak_hidden; stagnant; current_s; rng_state }

(* --- whole-checkpoint codec ------------------------------------------- *)

let encode w t =
  Wire.write_string w t.spec;
  Wire.write_f64 w t.scale;
  write_scheme w t.scheme;
  write_selection w t.selection;
  Wire.write_option (fun w s -> Wire.write_varint w s) w t.shift;
  Wire.write_string w t.label;
  Digest.encode w t.circuit_digest;
  Digest.encode w t.config_digest;
  write_snapshot w t.snapshot

let decode r =
  let spec = Wire.read_string r in
  let scale = Wire.read_f64 r in
  let scheme = read_scheme r in
  let selection = read_selection r in
  let shift = Wire.read_option Wire.read_varint r in
  let label = Wire.read_string r in
  let circuit_digest = Digest.decode r in
  let config_digest = Digest.decode r in
  let snapshot = read_snapshot r in
  { spec; scale; scheme; selection; shift; label; circuit_digest; config_digest; snapshot }

let save path t = Codec.to_file ~kind path (fun w -> encode w t)

let load path = Codec.of_file ~kind path decode
