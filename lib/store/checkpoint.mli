(** On-disk engine checkpoints: everything needed to continue an interrupted
    stitched run bit-identically.

    A checkpoint couples the engine's mid-flow {!Tvs_core.Engine.snapshot}
    with the run's identity: the circuit spec and scale (so [tvs resume] can
    rebuild the preparation deterministically), the engine options, and
    content digests of the circuit and configuration. {!load} only hands back
    a checkpoint whose frame is intact (CRC); the caller must additionally
    verify the digests against the rebuilt run before resuming — a checkpoint
    from a different circuit or configuration would otherwise continue into
    silently wrong results. *)

type t = {
  spec : string;  (** circuit spec as given on the command line *)
  scale : float;
  scheme : Tvs_scan.Xor_scheme.t;
  selection : Tvs_core.Policy.selection;
  shift : int option;  (** fixed shift size; [None] = variable policy *)
  label : string;  (** experiment label seeding the engine RNG *)
  circuit_digest : Digest.t;
  config_digest : Digest.t;
  snapshot : Tvs_core.Engine.snapshot;
}

val kind : string
(** The frame kind, ["CKPT"]. *)

val encode : Tvs_util.Wire.writer -> t -> unit
val decode : Tvs_util.Wire.reader -> t
(** Payload codec, exposed for round-trip tests. [decode] raises
    [Wire.Error] on malformed input (callers normally go through {!load}). *)

val save : string -> t -> unit
(** Atomic write (temp + rename): an interrupted save never damages the
    previous checkpoint at the same path. *)

val load : string -> (t, Codec.error) result
