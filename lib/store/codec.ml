module Wire = Tvs_util.Wire
module Crc32 = Tvs_util.Crc32

let schema_version = 1

(* "TVS" plus a non-ASCII byte so a frame is never mistaken for text. *)
let magic = "TVS\x01"

let header_len = 4 + 4 + 1 + 8
let trailer_len = 4

type error =
  | Truncated of string
  | Bad_magic
  | Bad_kind of { expected : string; got : string }
  | Bad_version of int
  | Crc_mismatch
  | Malformed of string
  | Io of string

let error_to_string = function
  | Truncated what -> "truncated frame: " ^ what
  | Bad_magic -> "bad magic: not a tvs_store frame"
  | Bad_kind { expected; got } ->
      Printf.sprintf "frame kind mismatch: expected %S, got %S" expected got
  | Bad_version v ->
      Printf.sprintf "unsupported schema version %d (this build reads version %d)" v
        schema_version
  | Crc_mismatch -> "CRC mismatch: frame is corrupt"
  | Malformed msg -> "malformed payload: " ^ msg
  | Io msg -> msg

let check_kind kind =
  if String.length kind <> 4 then invalid_arg "Codec: frame kind must be 4 bytes"

let le32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.unsafe_chr ((v lsr (8 * i)) land 0xFF))
  done

let encode ~kind f =
  check_kind kind;
  let pw = Wire.writer () in
  f pw;
  let payload = Wire.contents pw in
  let buf = Buffer.create (header_len + String.length payload + trailer_len) in
  Buffer.add_string buf magic;
  Buffer.add_string buf kind;
  Buffer.add_char buf (Char.chr schema_version);
  let plen = String.length payload in
  for i = 0 to 7 do
    Buffer.add_char buf (Char.unsafe_chr ((plen lsr (8 * i)) land 0xFF))
  done;
  Buffer.add_string buf payload;
  let crc = Crc32.digest (Buffer.contents buf) in
  le32 buf crc;
  Buffer.contents buf

let read_le32 s pos =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let decode_frame ~kind s =
  check_kind kind;
  let len = String.length s in
  if len < header_len + trailer_len then
    Error (Truncated (Printf.sprintf "%d bytes, need at least %d" len (header_len + trailer_len)))
  else if String.sub s 0 4 <> magic then Error Bad_magic
  else
    let got_kind = String.sub s 4 4 in
    if got_kind <> kind then Error (Bad_kind { expected = kind; got = got_kind })
    else
      let version = Char.code s.[8] in
      if version <> schema_version then Error (Bad_version version)
      else
        let plen64 =
          let v = ref 0L in
          for i = 7 downto 0 do
            v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[9 + i]))
          done;
          !v
        in
        if Int64.compare plen64 0L < 0 || Int64.compare plen64 (Int64.of_int max_int) > 0 then
          Error (Malformed "payload length out of range")
        else
          let plen = Int64.to_int plen64 in
          if len < header_len + plen + trailer_len then
            Error
              (Truncated
                 (Printf.sprintf "payload claims %d bytes, only %d present" plen
                    (len - header_len - trailer_len)))
          else if len > header_len + plen + trailer_len then
            Error (Malformed "trailing bytes after frame")
          else
            let stored = read_le32 s (header_len + plen) in
            let computed = Crc32.digest (String.sub s 0 (header_len + plen)) in
            if stored <> computed then Error Crc_mismatch
            else Ok (Wire.reader ~pos:header_len ~len:plen s)

let decode ~kind s f =
  match decode_frame ~kind s with
  | Error _ as e -> e
  | Ok r -> (
      try
        let v = f r in
        if Wire.at_end r then Ok v else Error (Malformed "payload has trailing bytes")
      with
      | Wire.Error msg -> Error (Malformed msg)
      | Invalid_argument msg -> Error (Malformed msg))

let write_file_atomic path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (* The rename can also fail (permissions, a concurrent reader's directory
     scan on some platforms, target replaced by a directory); never leave
     the temp file behind in that case either. *)
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let to_file ~kind path f = write_file_atomic path (encode ~kind f)

let of_file ~kind path f =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error (Io (path ^ ": unreadable"))
  | data -> decode ~kind data f
