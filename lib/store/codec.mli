(** Versioned binary framing for everything [tvs_store] puts on disk.

    A frame is:

    {v
      "TVS\x01"           magic (4 bytes)
      kind                4 ASCII bytes naming the payload ("CKPT", "FSIM", ...)
      schema version      1 byte
      payload length      8 bytes, little-endian
      payload             Wire-encoded body
      CRC-32              4 bytes, little-endian, over every preceding byte
    v}

    The CRC trailer turns crash-window damage (truncation, bit flips from a
    torn write) into a typed {!error} instead of a garbage decode, and the
    schema byte keeps old files from being misread by newer code. Files are
    written atomically (temp file in the same directory, then [rename]), so a
    reader never observes a half-written frame under POSIX semantics. *)

type wire_writer := Tvs_util.Wire.writer
type wire_reader := Tvs_util.Wire.reader

val schema_version : int
(** Bump on any incompatible change to a payload encoding. *)

type error =
  | Truncated of string  (** too short for a frame, or payload length lies *)
  | Bad_magic
  | Bad_kind of { expected : string; got : string }
  | Bad_version of int  (** the schema byte found in the frame *)
  | Crc_mismatch
  | Malformed of string  (** frame intact, payload undecodable *)
  | Io of string  (** file missing or unreadable *)

val error_to_string : error -> string

val encode : kind:string -> (wire_writer -> unit) -> string
(** Build a complete frame around the payload [f] writes. [kind] must be
    exactly 4 bytes; raises [Invalid_argument] otherwise. *)

val decode : kind:string -> string -> (wire_reader -> 'a) -> ('a, error) result
(** Verify framing (magic, kind, version, length, CRC) and run the payload
    decoder. Wire errors and [Invalid_argument] from structural validation
    inside the decoder surface as [Malformed] — never a bare exception. *)

val write_file_atomic : string -> string -> unit
(** [write_file_atomic path data]: write to [path ^ ".tmp.<pid>"] in the same
    directory, then rename over [path]. Raises [Sys_error] on I/O failure. *)

val to_file : kind:string -> string -> (wire_writer -> unit) -> unit
(** {!encode} then {!write_file_atomic}. *)

val of_file : kind:string -> string -> (wire_reader -> 'a) -> ('a, error) result
(** Read the whole file ([Io] if absent/unreadable) then {!decode}. *)
