(** Content digests over canonical {!Tvs_util.Wire} encodings.

    64-bit SplitMix64-chain hash (the same finalizer as {!Tvs_util.Rng}): each
    8-byte little-endian block is folded through [mix64], seeded with the
    input length. Not cryptographic — it keys the on-disk result cache and
    guards checkpoint/run compatibility, where accidental divergence is the
    threat model, not an adversary. Encodings are host-independent, so
    digests agree across machines. *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int

val to_hex : t -> string
(** 16 lowercase hex digits. *)

val of_string : string -> t

val of_encoding : (Tvs_util.Wire.writer -> unit) -> t
(** Digest of whatever the callback writes. *)

val combine : t -> t -> t
(** Order-sensitive: [combine a b <> combine b a] in general. *)

val circuit : Tvs_netlist.Circuit.t -> t
(** Digest of the canonical circuit encoding: nets, drivers, names, outputs.
    Two structurally identical circuits digest equally; any netlist change
    does not. *)

val config : config:Tvs_core.Engine.config -> label:string -> t
(** Digest of every engine-configuration field that affects results, plus the
    experiment label (which seeds the engine RNG). [jobs] is deliberately
    excluded: results are bit-identical for every fan-out width, so cached
    results are shared across it. *)

val encode : Tvs_util.Wire.writer -> t -> unit
val decode : Tvs_util.Wire.reader -> t
