(* The stitching daemon behind [tvs serve].

   Shape: the main thread owns the listening socket; every accepted
   connection gets a reader thread that parses frames and answers the cheap
   verbs (status/metrics/ping) in place; submitted jobs go into one FIFO
   drained by a single scheduler thread. Jobs execute one at a time — the
   engine already fans out across the shared domain pool internally, so
   running two engines at once would fight over cores and break nothing
   but throughput — and stream their lifecycle (queued/started/checkpoint/
   done) back over the submitting connection.

   Durability: identical jobs dedupe through the content-addressed result
   cache when one is installed ([tvs serve --cache], the same directory the
   one-shot CLI uses). With a state directory, jobs at or above the fault
   threshold checkpoint periodically; on restart the server scans the
   directory and finishes interrupted work before accepting traffic, so a
   SIGTERM mid-job costs at most [checkpoint_every] cycles of recompute and
   the result still lands in the cache for the client's retry. *)

module Cli = Tvs_harness.Cli
module Experiments = Tvs_harness.Experiments
module Prep = Tvs_harness.Prep
module Circuit = Tvs_netlist.Circuit
module Policy = Tvs_core.Policy
module Cache = Tvs_store.Cache
module Checkpoint = Tvs_store.Checkpoint
module Store_digest = Tvs_store.Digest
module Metrics = Tvs_obs.Metrics
module Json = Tvs_obs.Json
module Clock = Tvs_util.Clock

(* Traffic-shaped, so never part of the stable snapshot. *)
let m_submitted = Metrics.counter ~stable:false "serve.jobs.submitted"
let m_completed = Metrics.counter ~stable:false "serve.jobs.completed"
let m_failed = Metrics.counter ~stable:false "serve.jobs.failed"
let m_deduped = Metrics.counter ~stable:false "serve.jobs.deduped"
let m_recovered = Metrics.counter ~stable:false "serve.jobs.recovered"
let m_connections = Metrics.counter ~stable:false "serve.connections"
let m_protocol_errors = Metrics.counter ~stable:false "serve.protocol.errors"
let m_queue_peak = Metrics.gauge ~stable:false "serve.queue.peak"

type listen = Unix_socket of string | Tcp of int

(* One client connection. Events for a job are written by the scheduler
   thread while the reader thread answers status verbs, so writes are
   serialized by [wlock]; a peer that vanished flips [alive] and later
   events are dropped (the job itself keeps running — its result is still
   worth caching). *)
type conn = { oc : out_channel; wlock : Mutex.t; mutable alive : bool }

let send conn j =
  Mutex.protect conn.wlock (fun () ->
      if conn.alive then
        try Protocol.write_frame conn.oc j
        with Sys_error _ -> conn.alive <- false)

type pending = {
  id : int;
  job : Protocol.job;
  reply : conn option;  (* [None]: recovery job replayed from a checkpoint *)
  resume : (Checkpoint.t * string) option;  (* checkpoint and its path *)
}

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : pending Queue.t;
  mutable next_id : int;
  mutable running : bool;
  mutable stopping : bool;
  started_at : float;  (* Clock.now at startup, for status uptime *)
  state_dir : string option;
  checkpoint_every : int;
  checkpoint_threshold : int;
  (* Scheduler-thread state: preparation is expensive and deterministic, so
     it is memoized per circuit digest; [seen] remembers result keys served
     this process lifetime for the dedupe counter and the [cached] flag. *)
  preps : (string, Prep.t) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
  wake_r : Unix.file_descr;  (* self-pipe: shutdown verb wakes the accept loop *)
  wake_w : Unix.file_descr;
}

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_text_atomic path text =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc text);
  try Sys.rename tmp path
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(* --- job execution (scheduler thread only) ------------------------------ *)

let prep_for t circuit =
  let key = Store_digest.to_hex (Store_digest.circuit circuit) in
  match Hashtbl.find_opt t.preps key with
  | Some prep -> prep
  | None ->
      (* A server fed an unbounded stream of distinct circuits must not
         hold every preparation forever. *)
      if Hashtbl.length t.preps >= 64 then Hashtbl.reset t.preps;
      let prep = Prep.of_circuit circuit in
      Hashtbl.add t.preps key prep;
      prep

(* Resolve the job's circuit plus the spec string a checkpoint would record
   (what [resolve]-on-restart feeds back to [Cli.load_circuit]). Inline
   netlists are persisted into the state directory under their
   content-digest name, so a checkpoint of an inline job survives the
   client: the restarted server reloads the text from disk. *)
let resolve t (job : Protocol.job) =
  match job.source with
  | Protocol.Spec s ->
      Result.map (fun c -> (c, s)) (Cli.load_circuit ~scale:job.scale ?format:job.format s)
  | Protocol.Bench text -> (
      match Cli.inline_circuit ?format:job.format text with
      | Error _ as e -> e
      | Ok c ->
          let spec =
            match t.state_dir with
            | None -> "<inline>"
            | Some dir ->
                (* the persisted copy's extension pins the resolved format,
                   so a restarted server reparses it identically even though
                   the checkpoint has no format field *)
                let path = Filename.concat dir (Cli.inline_file_name ?format:job.format text) in
                if not (Sys.file_exists path) then write_text_atomic path text;
                path
          in
          Ok (c, spec))

let json_of_summary (s : Experiments.run_summary) =
  Json.Obj
    [
      ("atv", Json.Int s.Experiments.atv);
      ("tv", Json.Int s.Experiments.tv);
      ("ex", Json.Int s.Experiments.ex);
      ("peak_hidden", Json.Int s.Experiments.peak_hidden);
      ("m", Json.Float s.Experiments.m);
      ("t", Json.Float s.Experiments.t);
      ("coverage", Json.Float s.Experiments.coverage);
    ]

(* A test-point-insertion study. No checkpointing — a study is a sequence
   of short flow runs, each memoized per modified-circuit digest, so a
   restart recomputes at most one evaluation; the whole study dedupes
   through its own cache kind. *)
let run_tpi_job t (job : Protocol.job) circuit (params : Protocol.tpi_params) =
  let module Tpi = Tvs_tpi.Tpi in
  let options =
    {
      Tpi.points = params.Protocol.points;
      budget = params.Protocol.budget;
      shift = job.Protocol.shift;
      po_taps = params.Protocol.po_taps;
      controls = params.Protocol.controls;
    }
  in
  let key = Tpi.study_key ~options circuit in
  let key_hex = "tpi:" ^ Store_digest.to_hex key in
  let deduped =
    Hashtbl.mem t.seen key_hex
    ||
    match Experiments.cache () with
    | Some c -> Sys.file_exists (Cache.entry_path c ~kind:Tpi.study_kind ~key)
    | None -> false
  in
  match Tpi.run ~options circuit with
  | exception Circuit.Build_error msg -> Error msg
  | exception Failure msg -> Error msg
  | r ->
      Hashtbl.replace t.seen key_hex ();
      Ok
        ( deduped,
          [
            ("cached", Json.Bool deduped);
            ("tpi", Tpi.to_json r);
            ("output", Json.Str (Tpi.to_ascii r));
          ] )

(* An equivalence check. No checkpointing — a check is seconds even on the
   biggest bundled profile, and the whole verdict dedupes through the CEQV
   cache kind, so a restarted client's retry is a cache hit. *)
let run_equiv_job t (job : Protocol.job) left (params : Protocol.equiv_params) =
  let module Cec = Tvs_cec.Cec in
  let right =
    match params.Protocol.target with
    | Protocol.Scan_form -> (
        match Tvs_netlist.Scan_insert.insert left with
        | r -> Ok r.Tvs_netlist.Scan_insert.circuit
        | exception Circuit.Build_error msg -> Error ("scan insertion failed: " ^ msg))
    | Protocol.Netlist (Protocol.Spec s) ->
        Cli.load_circuit ~scale:job.Protocol.scale ?format:job.Protocol.format s
    | Protocol.Netlist (Protocol.Bench text) -> Cli.inline_circuit ?format:job.Protocol.format text
  in
  match right with
  | Error msg -> Error msg
  | Ok right -> (
      let ties =
        List.map (fun (name, value) -> { Cec.name; value }) params.Protocol.ties
      in
      let options =
        {
          Cec.default_options with
          Cec.budget = params.Protocol.budget;
          vectors = params.Protocol.vectors;
          ties;
        }
      in
      let key = Cec.check_key ~options left right in
      let key_hex = "cec:" ^ Store_digest.to_hex key in
      let deduped =
        Hashtbl.mem t.seen key_hex
        ||
        match Experiments.cache () with
        | Some c -> Sys.file_exists (Cache.entry_path c ~kind:Cec.cache_kind ~key)
        | None -> false
      in
      match Cec.check ~options ?cache:(Experiments.cache ()) left right with
      | exception Cec.Mismatch msg -> Error ("interface mismatch: " ^ msg)
      | exception Circuit.Build_error msg -> Error msg
      | exception Failure msg -> Error msg
      | r ->
          Hashtbl.replace t.seen key_hex ();
          Ok
            ( deduped,
              [
                ("cached", Json.Bool deduped);
                ("verdict", Json.Str (Cec.verdict_name r.Cec.verdict));
                ("equiv", Cec.to_json r);
                ("output", Json.Str (Cec.to_ascii r));
              ] ))

(* Run one job to completion. [emit] streams protocol events (dropped for
   recovery jobs). Returns the done-event fields or an error message. *)
let run_job t (p : pending) emit =
  match resolve t p.job with
  | Error msg -> Error msg
  | Ok (circuit, spec) when p.job.Protocol.kind = Protocol.Stitch -> (
      let job = p.job in
      let prep = prep_for t circuit in
      let shift_policy = Option.map (fun s -> Policy.Fixed s) job.shift in
      let config =
        Experiments.config_for ~scheme:job.scheme ?shift:shift_policy ~selection:job.selection
          prep
      in
      let circuit_digest = Store_digest.circuit circuit in
      let config_digest = Store_digest.config ~config ~label:job.label in
      let key = Store_digest.combine circuit_digest config_digest in
      let key_hex = Store_digest.to_hex key in
      (* Verify a recovery checkpoint the way [tvs resume] does: continuing
         into a different circuit or configuration would produce silently
         wrong results. *)
      let verified =
        match p.resume with
        | None -> Ok ()
        | Some (ck, path) ->
            if not (Store_digest.equal circuit_digest ck.Checkpoint.circuit_digest) then
              Error
                (Printf.sprintf
                   "checkpoint %S: circuit digest mismatch — %S no longer builds the circuit it \
                    was checkpointed on"
                   path spec)
            else if not (Store_digest.equal config_digest ck.Checkpoint.config_digest) then
              Error
                (Printf.sprintf
                   "checkpoint %S: configuration digest mismatch — written by a build with \
                    different engine options"
                   path)
            else Ok ()
      in
      match verified with
      | Error _ as e -> e
      | Ok () -> (
          let deduped =
            Hashtbl.mem t.seen key_hex
            ||
            match Experiments.cache () with
            | Some c ->
                Sys.file_exists (Cache.entry_path c ~kind:Experiments.summary_kind ~key)
            | None -> false
          in
          (* Already-cached jobs skip checkpointing so [run_flow] can serve
             them straight from the cache; fresh big jobs checkpoint into the
             state directory for crash recovery. *)
          let ckpt_path =
            match (t.state_dir, p.resume) with
            | _, Some (_, path) -> Some path
            | Some dir, None
              when (not deduped) && Array.length prep.Prep.faults >= t.checkpoint_threshold ->
                Some (Filename.concat dir ("job-" ^ key_hex ^ ".ckpt"))
            | _ -> None
          in
          let checkpoint =
            Option.map
              (fun path ->
                ( t.checkpoint_every,
                  fun snapshot ->
                    Checkpoint.save path
                      {
                        Checkpoint.spec;
                        scale = job.scale;
                        scheme = job.scheme;
                        selection = job.selection;
                        shift = job.shift;
                        label = job.label;
                        circuit_digest;
                        config_digest;
                        snapshot;
                      };
                    emit "checkpoint" [] ))
              ckpt_path
          in
          let resume = Option.map (fun (ck, _) -> ck.Checkpoint.snapshot) p.resume in
          match
            Experiments.run_flow ~scheme:job.scheme ?shift:shift_policy
              ~selection:job.selection ?resume ?checkpoint ~label:job.label prep
          with
          | exception Failure msg -> Error msg
          | exception (Invalid_argument _ as e) -> Error (Printexc.to_string e)
          | summary ->
              Hashtbl.replace t.seen key_hex ();
              Option.iter
                (fun path -> try Sys.remove path with Sys_error _ -> ())
                ckpt_path;
              let output =
                Experiments.render_summary ~circuit:(Circuit.name circuit) ~scheme:job.scheme
                  ~selection:job.selection summary
              in
              Ok
                ( deduped,
                  [
                    ("cached", Json.Bool deduped);
                    ("summary", json_of_summary summary);
                    ("output", Json.Str output);
                  ] )))
  | Ok (circuit, _) -> (
      match p.job.Protocol.kind with
      | Protocol.Tpi params -> run_tpi_job t p.job circuit params
      | Protocol.Equiv params -> run_equiv_job t p.job circuit params
      | Protocol.Stitch -> assert false (* handled by the guarded arm above *))

let execute t (p : pending) =
  let emit name fields =
    match p.reply with
    | Some conn -> send conn (Protocol.event name (("id", Json.Int p.id) :: fields))
    | None -> ()
  in
  emit "started" [];
  (* One pathological job (degenerate circuit, engine invariant violation)
     must never take the scheduler thread down with it — every client after
     it would hang forever. *)
  match (try run_job t p emit with e -> Error ("job raised: " ^ Printexc.to_string e)) with
  | Ok (deduped, fields) ->
      Metrics.incr m_completed;
      if deduped then Metrics.incr m_deduped;
      if p.resume <> None then Metrics.incr m_recovered;
      emit "done" fields
  | Error msg ->
      Metrics.incr m_failed;
      (* A recovery job that cannot be replayed (deleted .bench, changed
         build) would fail identically on every restart: drop its file. *)
      (match p.resume with
      | Some (_, path) ->
          Printf.eprintf "tvs serve: abandoning checkpoint %s: %s\n%!" path msg;
          (try Sys.remove path with Sys_error _ -> ())
      | None -> ());
      emit "error" [ ("message", Json.Str msg) ]

let rec scheduler_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stopping, drained *)
  else begin
    let p = Queue.pop t.queue in
    t.running <- true;
    Mutex.unlock t.mutex;
    execute t p;
    Mutex.lock t.mutex;
    t.running <- false;
    Mutex.unlock t.mutex;
    scheduler_loop t
  end

(* --- connection handling (one reader thread per client) ----------------- *)

let enqueue t (p : pending) =
  Mutex.lock t.mutex;
  Queue.push p t.queue;
  Metrics.observe_max m_queue_peak (Queue.length t.queue);
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let status_json t =
  Mutex.lock t.mutex;
  let depth = Queue.length t.queue and running = t.running and stopping = t.stopping in
  Mutex.unlock t.mutex;
  Protocol.event "status"
    [
      ("queue", Json.Int depth);
      ("running", Json.Bool running);
      ("draining", Json.Bool stopping);
      ("submitted", Json.Int (Metrics.counter_value m_submitted));
      ("completed", Json.Int (Metrics.counter_value m_completed));
      ("failed", Json.Int (Metrics.counter_value m_failed));
      ("deduped", Json.Int (Metrics.counter_value m_deduped));
      ("recovered", Json.Int (Metrics.counter_value m_recovered));
      ("uptime_s", Json.Float (Clock.now () -. t.started_at));
    ]

let metrics_json () =
  let value_fields = function
    | Metrics.Counter_v v -> [ ("kind", Json.Str "counter"); ("value", Json.Int v) ]
    | Metrics.Gauge_v v -> [ ("kind", Json.Str "gauge"); ("value", Json.Int v) ]
    | Metrics.Histogram_v { count; sum; buckets } ->
        [
          ("kind", Json.Str "histogram");
          ("count", Json.Int count);
          ("sum", Json.Int sum);
          ("buckets", Json.Arr (Array.to_list (Array.map (fun b -> Json.Int b) buckets)));
        ]
  in
  Protocol.event "metrics"
    [
      ( "metrics",
        Json.Arr
          (List.map
             (fun (name, v) -> Json.Obj (("name", Json.Str name) :: value_fields v))
             (Metrics.snapshot ~all:true ())) );
    ]

let wake_accept_loop t = ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)

let handle_request t conn = function
  | Protocol.Status -> send conn (status_json t)
  | Protocol.Metrics -> send conn (metrics_json ())
  | Protocol.Ping -> send conn (Protocol.event "pong" [])
  | Protocol.Shutdown ->
      send conn (Protocol.event "shutting-down" []);
      Mutex.lock t.mutex;
      t.stopping <- true;
      Condition.broadcast t.nonempty;
      Mutex.unlock t.mutex;
      wake_accept_loop t
  | Protocol.Submit job ->
      let rejected =
        Mutex.protect t.mutex (fun () ->
            if t.stopping then true
            else begin
              t.next_id <- t.next_id + 1;
              false
            end)
      in
      if rejected then
        send conn
          (Protocol.event "error" [ ("message", Json.Str "server is draining; job rejected") ])
      else begin
        let id = t.next_id in
        Metrics.incr m_submitted;
        (* The queued event is written before the job becomes visible to the
           scheduler, so each job's events arrive in lifecycle order. *)
        send conn (Protocol.event "queued" [ ("id", Json.Int id) ]);
        enqueue t { id; job; reply = Some conn; resume = None }
      end

let handle_conn t fd =
  Metrics.incr m_connections;
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let conn = { oc; wlock = Mutex.create (); alive = true } in
  let rec loop () =
    match Protocol.read_frame ic with
    | None -> ()
    | Some (Error msg) ->
        (* Framing is byte-positional: past one bad frame the stream cannot
           be trusted, so report and drop the connection. *)
        Metrics.incr m_protocol_errors;
        send conn (Protocol.event "error" [ ("message", Json.Str msg) ])
    | Some (Ok j) ->
        (match Protocol.request_of_json j with
        | Error msg ->
            Metrics.incr m_protocol_errors;
            send conn (Protocol.event "error" [ ("message", Json.Str msg) ])
        | Ok req -> handle_request t conn req);
        loop ()
  in
  (try loop () with Sys_error _ | End_of_file -> ());
  Mutex.protect conn.wlock (fun () -> conn.alive <- false);
  close_out_noerr oc

(* --- recovery ----------------------------------------------------------- *)

let scan_recovery t dir =
  let files = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort compare files;
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".ckpt" then begin
        let path = Filename.concat dir f in
        match Checkpoint.load path with
        | Error e ->
            Printf.eprintf "tvs serve: dropping unreadable checkpoint %s: %s\n%!" path
              (Tvs_store.Codec.error_to_string e);
            (try Sys.remove path with Sys_error _ -> ())
        | Ok ck ->
            let job =
              {
                Protocol.source = Protocol.Spec ck.Checkpoint.spec;
                kind = Protocol.Stitch;
                (* the checkpointed spec is a resolved server-side path whose
                   extension already pins the format *)
                format = None;
                scale = ck.Checkpoint.scale;
                scheme = ck.Checkpoint.scheme;
                selection = ck.Checkpoint.selection;
                shift = ck.Checkpoint.shift;
                label = ck.Checkpoint.label;
              }
            in
            Mutex.protect t.mutex (fun () -> t.next_id <- t.next_id + 1);
            enqueue t { id = t.next_id; job; reply = None; resume = Some (ck, path) }
      end)
    files

(* --- listening sockets -------------------------------------------------- *)

let bind_listen = function
  | Tcp port ->
      if port < 1 || port > 65535 then Error (Printf.sprintf "invalid port %d" port)
      else begin
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        match Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)) with
        | exception Unix.Unix_error (err, _, _) ->
            Unix.close fd;
            Error (Printf.sprintf "cannot bind 127.0.0.1:%d: %s" port (Unix.error_message err))
        | () ->
            Unix.listen fd 64;
            Ok (fd, fun () -> (try Unix.close fd with Unix.Unix_error _ -> ()))
      end
  | Unix_socket path ->
      if String.length path = 0 then Error "--socket needs a non-empty path"
      else begin
        (* A leftover socket file from a killed server must not block
           restart, but clobbering a live server would be worse: probe with
           a connect first. *)
        (if Sys.file_exists path then begin
           let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
           let live =
             match Unix.connect probe (Unix.ADDR_UNIX path) with
             | () -> true
             | exception Unix.Unix_error (_, _, _) -> false
           in
           Unix.close probe;
           if live then failwith (Printf.sprintf "socket %S: a server is already listening" path)
           else try Unix.unlink path with Unix.Unix_error (_, _, _) -> ()
         end);
        match
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (match Unix.bind fd (Unix.ADDR_UNIX path) with
          | exception e ->
              Unix.close fd;
              raise e
          | () -> ());
          Unix.listen fd 64;
          fd
        with
        | exception Failure msg -> Error msg
        | exception Unix.Unix_error (err, _, _) ->
            Error (Printf.sprintf "cannot bind %S: %s" path (Unix.error_message err))
        | fd ->
            let cleaned = Atomic.make false in
            Ok
              ( fd,
                fun () ->
                  if not (Atomic.exchange cleaned true) then begin
                    (try Unix.close fd with Unix.Unix_error _ -> ());
                    try Unix.unlink path with Unix.Unix_error _ -> ()
                  end )
      end

(* --- entry point -------------------------------------------------------- *)

let run ?state_dir ?(checkpoint_every = 4) ?(checkpoint_threshold = 1000) ?on_ready listen =
  if checkpoint_every < 1 then invalid_arg "Server.run: checkpoint_every must be >= 1";
  if checkpoint_threshold < 0 then invalid_arg "Server.run: checkpoint_threshold must be >= 0";
  (* A client that disconnects mid-stream must not kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* SIGTERM/SIGINT exit immediately: periodic checkpoints are already on
     disk (atomic temp+rename, so a kill mid-save is harmless) and the
     at_exit below removes the socket file. Restarting resumes the work. *)
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> Stdlib.exit 0));
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> Stdlib.exit 130));
  Tvs_obs.Instrument.install_pool_probe ();
  match bind_listen listen with
  | Error _ as e -> e
  | Ok (fd, cleanup) ->
      at_exit cleanup;
      let wake_r, wake_w = Unix.pipe () in
      let t =
        {
          mutex = Mutex.create ();
          nonempty = Condition.create ();
          queue = Queue.create ();
          next_id = 0;
          running = false;
          stopping = false;
          started_at = Clock.now ();
          state_dir;
          checkpoint_every;
          checkpoint_threshold;
          preps = Hashtbl.create 8;
          seen = Hashtbl.create 64;
          wake_r;
          wake_w;
        }
      in
      (match state_dir with
      | Some dir ->
          mkdir_p dir;
          scan_recovery t dir
      | None -> ());
      let scheduler = Thread.create scheduler_loop t in
      Option.iter (fun f -> f ()) on_ready;
      let rec accept_loop () =
        let stopping = Mutex.protect t.mutex (fun () -> t.stopping) in
        if not stopping then begin
          match Unix.select [ fd; t.wake_r ] [] [] (-1.0) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | readable, _, _ ->
              if List.mem t.wake_r readable then () (* shutdown verb *)
              else begin
                (match Unix.accept fd with
                | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
                | cfd, _ -> ignore (Thread.create (handle_conn t) cfd));
                accept_loop ()
              end
        end
      in
      accept_loop ();
      (* Graceful drain: no new connections, scheduler finishes the queue. *)
      Thread.join scheduler;
      cleanup ();
      (try Unix.close wake_r with Unix.Unix_error _ -> ());
      (try Unix.close wake_w with Unix.Unix_error _ -> ());
      Ok ()
