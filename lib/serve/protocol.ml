module Json = Tvs_obs.Json
module Cli = Tvs_harness.Cli

(* Generous for netlists (s38584 is ~1 MB of .bench text) while still
   bounding what one frame can make the server buffer. *)
let max_frame = 16 * 1024 * 1024

let write_frame oc j =
  let s = Json.to_string j in
  output_string oc (string_of_int (String.length s));
  output_char oc '\n';
  output_string oc s;
  output_char oc '\n';
  flush oc

let read_frame ic =
  match input_line ic with
  | exception End_of_file -> None
  | line -> (
      match int_of_string_opt (String.trim line) with
      | None -> Some (Error (Printf.sprintf "bad frame length %S" line))
      | Some n when n < 0 || n > max_frame ->
          Some (Error (Printf.sprintf "frame length %d out of range [0, %d]" n max_frame))
      | Some n -> (
          match really_input_string ic n with
          | exception End_of_file -> Some (Error "truncated frame payload")
          | payload -> (
              match input_char ic with
              | exception End_of_file -> Some (Error "missing frame terminator")
              | '\n' ->
                  Some (Result.map_error (fun m -> "bad JSON payload: " ^ m) (Json.parse payload))
              | _ -> Some (Error "missing frame terminator"))))

type source = Spec of string | Bench of string

type tpi_params = { points : int; budget : int; po_taps : bool; controls : bool }

(* What the equiv verb checks the job's circuit against: an explicit revised
   netlist, or the scan-inserted form of the circuit itself (computed
   server-side, mirroring [tvs equiv --scan]). *)
type equiv_target = Scan_form | Netlist of source

type equiv_params = {
  target : equiv_target;
  budget : int;
  vectors : int;
  ties : (string * bool) list;
}

type kind = Stitch | Tpi of tpi_params | Equiv of equiv_params

let default_equiv_params =
  let o = Tvs_cec.Cec.default_options in
  {
    target = Scan_form;
    budget = o.Tvs_cec.Cec.budget;
    vectors = o.Tvs_cec.Cec.vectors;
    ties = [];
  }

let default_tpi_params =
  let o = Tvs_tpi.Tpi.default_options in
  {
    points = o.Tvs_tpi.Tpi.points;
    budget = o.Tvs_tpi.Tpi.budget;
    po_taps = o.Tvs_tpi.Tpi.po_taps;
    controls = o.Tvs_tpi.Tpi.controls;
  }

type job = {
  source : source;
  kind : kind;
  format : Tvs_verilog.Loader.format option;
  scale : float;
  scheme : Tvs_scan.Xor_scheme.t;
  selection : Tvs_core.Policy.selection;
  shift : int option;
  label : string;
}

let default_job ?(kind = Stitch) source =
  {
    source;
    kind;
    format = None;
    scale = 1.0;
    scheme = Tvs_scan.Xor_scheme.Nxor;
    selection = Tvs_core.Policy.Most_faults 5;
    shift = None;
    label = "cli";
  }

type request = Submit of job | Status | Metrics | Ping | Shutdown

let ( let* ) = Result.bind

(* Optional typed field accessors: absent fields succeed as [None], present
   fields of the wrong type are errors (a misspelled value must never be
   silently defaulted — that is exactly the TVS_JOBS lesson). *)
let opt_string k j =
  match Json.member k j with
  | None -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)

let opt_number k j =
  match Json.member k j with
  | None -> Ok None
  | Some (Json.Int i) -> Ok (Some (float_of_int i))
  | Some (Json.Float f) -> Ok (Some f)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" k)

let opt_int k j =
  match Json.member k j with
  | None -> Ok None
  | Some (Json.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" k)

let opt_bool k j =
  match Json.member k j with
  | None -> Ok None
  | Some (Json.Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" k)

let tpi_params_of_json j =
  let positive name = function
    | None -> Ok None
    | Some v when v >= 1 -> Ok (Some v)
    | Some v -> Error (Printf.sprintf "field %S must be a positive integer, got %d" name v)
  in
  let* points = opt_int "points" j in
  let* points = positive "points" points in
  let* budget = opt_int "budget" j in
  let* budget = positive "budget" budget in
  let* po_taps = opt_bool "po_taps" j in
  let* controls = opt_bool "controls" j in
  let d = default_tpi_params in
  Ok
    {
      points = Option.value ~default:d.points points;
      budget = Option.value ~default:d.budget budget;
      po_taps = Option.value ~default:d.po_taps po_taps;
      controls = Option.value ~default:d.controls controls;
    }

let equiv_params_of_json j =
  let positive name = function
    | None -> Ok None
    | Some v when v >= 1 -> Ok (Some v)
    | Some v -> Error (Printf.sprintf "field %S must be a positive integer, got %d" name v)
  in
  let* right_spec = opt_string "right_spec" j in
  let* right_bench = opt_string "right_bench" j in
  let* scan = opt_bool "scan" j in
  let scan = Option.value ~default:false scan in
  let* target =
    match (right_spec, right_bench, scan) with
    | Some s, None, false -> Ok (Netlist (Spec s))
    | None, Some b, false -> Ok (Netlist (Bench b))
    | None, None, true -> Ok Scan_form
    | None, None, false ->
        Error "equiv job needs a \"right_spec\"/\"right_bench\" circuit or \"scan\": true"
    | _ ->
        Error
          "equiv job takes exactly one of \"right_spec\", \"right_bench\" or \"scan\": true"
  in
  let* budget = opt_int "budget" j in
  let* budget = positive "budget" budget in
  let* vectors = opt_int "vectors" j in
  let* vectors = positive "vectors" vectors in
  let* scan_map = opt_string "scan_map" j in
  let* ties = match scan_map with None -> Ok [] | Some s -> Cli.parse_ties s in
  let d = default_equiv_params in
  Ok
    {
      target;
      budget = Option.value ~default:d.budget budget;
      vectors = Option.value ~default:d.vectors vectors;
      ties;
    }

let job_of_json ?(kind = Stitch) j =
  let* spec = opt_string "spec" j in
  let* bench = opt_string "bench" j in
  let* source =
    match (spec, bench) with
    | Some s, None -> Ok (Spec s)
    | None, Some b -> Ok (Bench b)
    | Some _, Some _ -> Error "job has both \"spec\" and \"bench\"; give exactly one"
    | None, None -> Error "job needs a \"spec\" (circuit name/path) or \"bench\" (inline netlist)"
  in
  let* format = opt_string "format" j in
  let* format = match format with None -> Ok None | Some s -> Cli.parse_format s in
  let* scale = opt_number "scale" j in
  let* scale =
    match scale with None -> Ok 1.0 | Some f -> Cli.check_scale f
  in
  let* scheme = opt_string "scheme" j in
  let* scheme =
    match scheme with None -> Ok Tvs_scan.Xor_scheme.Nxor | Some s -> Cli.parse_scheme s
  in
  let* selection = opt_string "selection" j in
  let* selection =
    match selection with
    | None -> Ok (Tvs_core.Policy.Most_faults 5)
    | Some s -> Cli.parse_selection s
  in
  let* shift = opt_int "shift" j in
  let* shift =
    match shift with
    | None -> Ok None
    | Some s -> Result.map Option.some (Cli.check_shift s)
  in
  let* label = opt_string "label" j in
  let label = Option.value ~default:"cli" label in
  Ok { source; kind; format; scale; scheme; selection; shift; label }

let request_of_json j =
  match Json.member "verb" j with
  | None -> Error "request needs a \"verb\" field"
  | Some (Json.Str "submit") -> Result.map (fun job -> Submit job) (job_of_json j)
  | Some (Json.Str "tpi") ->
      let* params = tpi_params_of_json j in
      Result.map (fun job -> Submit job) (job_of_json ~kind:(Tpi params) j)
  | Some (Json.Str "equiv") ->
      let* params = equiv_params_of_json j in
      Result.map (fun job -> Submit job) (job_of_json ~kind:(Equiv params) j)
  | Some (Json.Str "status") -> Ok Status
  | Some (Json.Str "metrics") -> Ok Metrics
  | Some (Json.Str "ping") -> Ok Ping
  | Some (Json.Str "shutdown") -> Ok Shutdown
  | Some (Json.Str v) ->
      Error
        (Printf.sprintf
           "unknown verb %S (expected submit, tpi, equiv, status, metrics, ping or shutdown)" v)
  | Some _ -> Error "\"verb\" must be a string"

let json_of_job (job : job) =
  let source_fields =
    match job.source with
    | Spec s -> [ ("spec", Json.Str s) ]
    | Bench b -> [ ("bench", Json.Str b) ]
  in
  let verb, kind_fields =
    match job.kind with
    | Stitch -> ("submit", [])
    | Tpi p ->
        ( "tpi",
          [
            ("points", Json.Int p.points);
            ("budget", Json.Int p.budget);
            ("po_taps", Json.Bool p.po_taps);
            ("controls", Json.Bool p.controls);
          ] )
    | Equiv p ->
        ( "equiv",
          (match p.target with
          | Scan_form -> [ ("scan", Json.Bool true) ]
          | Netlist (Spec s) -> [ ("right_spec", Json.Str s) ]
          | Netlist (Bench b) -> [ ("right_bench", Json.Str b) ])
          @ [ ("budget", Json.Int p.budget); ("vectors", Json.Int p.vectors) ]
          @
          match p.ties with
          | [] -> []
          | ties ->
              [
                ( "scan_map",
                  Json.Str
                    (String.concat ","
                       (List.map
                          (fun (n, v) -> Printf.sprintf "%s=%d" n (if v then 1 else 0))
                          ties)) );
              ] )
  in
  Json.Obj
    (("verb", Json.Str verb)
     :: source_fields @ kind_fields
    @ (match job.format with
      | None -> []
      | Some f -> [ ("format", Json.Str (Tvs_verilog.Loader.format_name f)) ])
    @ [
        ("scale", Json.Float job.scale);
        ("scheme", Json.Str (Tvs_scan.Xor_scheme.to_string job.scheme));
        ( "selection",
          Json.Str
            (match job.selection with
            | Tvs_core.Policy.Random_order -> "random"
            | Tvs_core.Policy.Hardness_order -> "hardness"
            | Tvs_core.Policy.Most_faults _ -> "most-faults"
            | Tvs_core.Policy.Weighted _ -> "weighted") );
      ]
    @ (match job.shift with None -> [] | Some s -> [ ("shift", Json.Int s) ])
    @ [ ("label", Json.Str job.label) ])

let json_of_request = function
  | Submit job -> json_of_job job
  | Status -> Json.Obj [ ("verb", Json.Str "status") ]
  | Metrics -> Json.Obj [ ("verb", Json.Str "metrics") ]
  | Ping -> Json.Obj [ ("verb", Json.Str "ping") ]
  | Shutdown -> Json.Obj [ ("verb", Json.Str "shutdown") ]

let event name fields = Json.Obj (("event", Json.Str name) :: fields)
