(** The [tvs serve] wire protocol: length-delimited JSONL frames.

    One frame is the decimal byte length of a compact JSON document, a
    newline, the document, a newline:
    {v
      47
      {"verb":"submit","spec":"s444","scale":1.0,...}
    v}
    The explicit length keeps framing independent of the payload (an inline
    netlist may be arbitrary text) while staying trivially implementable
    from any language — and greppable on the wire.

    Requests carry a ["verb"]: [submit] (a stitch job), [tpi] (a test-point
    insertion study), [equiv] (an equivalence check), [status], [metrics],
    [ping], [shutdown]. Responses are events: [queued], [started],
    [checkpoint], [done], [error], [status], [metrics], [pong],
    [shutting-down]. Job events carry the submission ["id"], and [done]
    additionally the run summary (or the ["tpi"] study / ["equiv"] check
    document) plus ["output"] — the exact bytes the one-shot [tvs stitch]
    (or [tvs tpi] / [tvs equiv]) would print for the same job.

    Job fields reuse the CLI vocabulary verbatim ({!Tvs_harness.Cli}):
    ["spec"] is a profile name / s27 / fig1 / server-side netlist path
    (alternatively ["bench"] is an inline netlist text — `.bench` or
    structural Verilog, resolved by the ["format"] field, default
    auto-detect), and ["scale"], ["scheme"], ["selection"], ["shift"],
    ["label"] mirror the [stitch] flags. Absent fields take the CLI
    defaults; present-but-malformed fields are errors, never silent
    defaults. *)

val max_frame : int
(** Upper bound on a frame's payload bytes (16 MiB). *)

val write_frame : out_channel -> Tvs_obs.Json.t -> unit
(** Write one frame and flush. Raises [Sys_error] when the peer is gone. *)

val read_frame : in_channel -> (Tvs_obs.Json.t, string) result option
(** [None] on clean end-of-stream before a frame starts; [Some (Error _)]
    on framing or JSON damage (the stream is not recoverable past it). *)

type source =
  | Spec of string  (** circuit spec resolved server-side, as on the CLI *)
  | Bench of string  (** inline netlist text, named by its content digest *)

type tpi_params = {
  points : int;  (** test points to select; wire field ["points"] *)
  budget : int;  (** candidate pool size; wire field ["budget"] *)
  po_taps : bool;  (** wire field ["po_taps"] *)
  controls : bool;  (** wire field ["controls"] *)
}

type equiv_target =
  | Scan_form
      (** wire field ["scan"]: true — check the job's circuit against its
          own scan-inserted form, computed server-side as [tvs equiv --scan]
          does *)
  | Netlist of source
      (** wire field ["right_spec"] (server-side spec) or ["right_bench"]
          (inline netlist text) — an explicit revised circuit *)

type equiv_params = {
  target : equiv_target;
  budget : int;  (** SAT decisions per point miter; wire field ["budget"] *)
  vectors : int;  (** random-simulation rounds; wire field ["vectors"] *)
  ties : (string * bool) list;
      (** wire field ["scan_map"]: a CLI-syntax ["name=0|1,..."] string *)
}

type kind =
  | Stitch  (** verb ["submit"]: one stitched-flow run *)
  | Tpi of tpi_params
      (** verb ["tpi"]: a {!Tvs_tpi.Tpi} study; [shift] becomes the mining
          shift and [scheme]/[selection] are ignored (a study always runs
          the flow defaults, matching the [tvs tpi] CLI) *)
  | Equiv of equiv_params
      (** verb ["equiv"]: a {!Tvs_cec.Cec} check of the job's circuit
          (golden left side) against [target]; [scheme]/[selection]/[shift]
          are ignored, [scale]/[format] apply to both circuits as on the
          [tvs equiv] CLI *)

val default_tpi_params : tpi_params
(** {!Tvs_tpi.Tpi.default_options} projected onto the wire fields. *)

val default_equiv_params : equiv_params
(** {!Tvs_cec.Cec.default_options} projected onto the wire fields, with a
    {!Scan_form} target and no ties. *)

type job = {
  source : source;
  kind : kind;
  format : Tvs_verilog.Loader.format option;
      (** netlist format of the source text/path; [None] = auto-detect.
          On the wire: ["format"] of ["auto"], ["bench"] or ["verilog"];
          any other value is a typed protocol error, never a default. *)
  scale : float;
  scheme : Tvs_scan.Xor_scheme.t;
  selection : Tvs_core.Policy.selection;
  shift : int option;  (** fixed shift size; [None] = variable policy *)
  label : string;  (** engine RNG label; the CLI uses ["cli"] *)
}

val default_job : ?kind:kind -> source -> job
(** A job with every option at its [tvs stitch] default ([kind] defaults
    to {!Stitch}). *)

type request = Submit of job | Status | Metrics | Ping | Shutdown

val request_of_json : Tvs_obs.Json.t -> (request, string) result
val json_of_job : job -> Tvs_obs.Json.t
val json_of_request : request -> Tvs_obs.Json.t

val event : string -> (string * Tvs_obs.Json.t) list -> Tvs_obs.Json.t
(** [event name fields] is [{"event": name, ...fields}]. *)
