(** The [tvs serve] daemon: a persistent stitching service over the
    {!Protocol} wire format.

    One scheduler thread drains a FIFO of submitted jobs and runs each
    through {!Tvs_harness.Experiments.run_flow} — one at a time, because
    the engine already parallelizes internally across the shared
    {!Tvs_util.Pool}. Each connection gets a reader thread; cheap verbs
    (status/metrics/ping) are answered inline, and a job's lifecycle events
    stream back over the connection that submitted it. The [done] event's
    ["output"] field carries exactly the bytes [tvs stitch] would print for
    the same job ({!Tvs_harness.Experiments.render_summary}).

    When a result cache is installed ({!Tvs_harness.Experiments.set_cache}),
    identical jobs dedupe through it: the engine runs once, repeats are
    served from disk and flagged ["cached": true]. With a state directory,
    jobs whose collapsed fault list reaches [checkpoint_threshold]
    checkpoint every [checkpoint_every] stitched cycles; at startup the
    server replays any [*.ckpt] files it finds (digest-verified, stale ones
    deleted) before accepting connections, so a SIGTERM mid-job resumes on
    restart and the finished result lands in the cache for the client's
    retry. Inline ["bench"] jobs persist their netlist text into the state
    directory under the content-digest name so their checkpoints survive the
    submitting client. *)

type listen =
  | Unix_socket of string
      (** Listen on a Unix-domain socket at this path. A stale socket file
          left by a killed server is detected (connect probe) and removed;
          a live one is a startup error. The file is unlinked at exit. *)
  | Tcp of int  (** Listen on 127.0.0.1 at this port. *)

val run :
  ?state_dir:string ->
  ?checkpoint_every:int ->
  ?checkpoint_threshold:int ->
  ?on_ready:(unit -> unit) ->
  listen ->
  (unit, string) result
(** Run the daemon until a [shutdown] verb arrives (the queue is drained
    first, new submissions are rejected, then [Ok ()] returns) or a fatal
    signal ends the process. [Error] on bind failures. [state_dir] enables
    checkpointing and restart recovery; [checkpoint_every] (default 4) is
    the checkpoint period in stitched cycles, [checkpoint_threshold]
    (default 1000) the minimum collapsed-fault count for a job to
    checkpoint at all. [on_ready] fires once the socket is listening and
    recovery jobs are queued — tests use it to connect without racing.
    Installs SIGTERM/SIGINT handlers (immediate exit — on-disk checkpoints
    carry the state) and ignores SIGPIPE. *)
