module Circuit = Tvs_netlist.Circuit
module Bench_format = Tvs_netlist.Bench_format
module Validate = Tvs_netlist.Validate

(* Iterative Tarjan: the benchmark giants have tens of thousands of gates in
   a chain, so a recursive DFS would overflow the stack exactly on the inputs
   that matter. *)
let cyclic_sccs (adj : int list array) =
  let n = Array.length adj in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let self_loop = Array.make n false in
  Array.iteri (fun u vs -> if List.mem u vs then self_loop.(u) <- true) adj;
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let visit root =
    let call = Stack.create () in
    let open_node u =
      index.(u) <- !counter;
      low.(u) <- !counter;
      incr counter;
      stack := u :: !stack;
      on_stack.(u) <- true;
      Stack.push (u, ref adj.(u)) call
    in
    open_node root;
    while not (Stack.is_empty call) do
      let u, succs = Stack.top call in
      match !succs with
      | v :: rest ->
          succs := rest;
          if index.(v) < 0 then open_node v
          else if on_stack.(v) then low.(u) <- min low.(u) index.(v)
      | [] ->
          ignore (Stack.pop call);
          (match Stack.top_opt call with
          | Some (p, _) -> low.(p) <- min low.(p) low.(u)
          | None -> ());
          if low.(u) = index.(u) then begin
            let rec pop acc =
              match !stack with
              | v :: rest ->
                  stack := rest;
                  on_stack.(v) <- false;
                  if v = u then v :: acc else pop (v :: acc)
              | [] -> acc
            in
            let comp = pop [] in
            if List.length comp > 1 || self_loop.(u) then out := comp :: !out
          end
    done
  in
  for u = 0 to n - 1 do
    if index.(u) < 0 then visit u
  done;
  List.rev !out

(* ---------- statement-level pass ---------- *)

let statement_target = function
  | Bench_format.St_input nm
  | Bench_format.St_dff (nm, _)
  | Bench_format.St_gate (nm, _, _)
  | Bench_format.St_const (nm, _) ->
      Some nm
  | Bench_format.St_output _ -> None

let source_pass numbered =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* N010: a net defined more than once (and duplicate OUTPUT lines, which
     would silently duplicate the observation). *)
  let defined_at = Hashtbl.create 64 in
  let output_at = Hashtbl.create 16 in
  List.iter
    (fun (lineno, st) ->
      let dup tbl what nm =
        match Hashtbl.find_opt tbl nm with
        | Some first ->
            add
              (Diagnostic.make ~rule:"TVS-N010" ~nets:[ nm ] ~line:lineno
                 ~hint:"delete or rename one of the definitions"
                 (Printf.sprintf "duplicate %s of net %S (first defined at line %d)" what nm
                    first))
        | None -> Hashtbl.add tbl nm lineno
      in
      match st with
      | Bench_format.St_output nm -> dup output_at "OUTPUT declaration" nm
      | st -> Option.iter (dup defined_at "definition") (statement_target st))
    numbered;
  (* N009: references to names no statement defines. One diagnostic per
     missing name, at its first use. *)
  let reported = Hashtbl.create 16 in
  let reference lineno ~by nm =
    if (not (Hashtbl.mem defined_at nm)) && not (Hashtbl.mem reported nm) then begin
      Hashtbl.add reported nm ();
      add
        (Diagnostic.make ~rule:"TVS-N009" ~nets:[ nm ] ~line:lineno
           ~hint:"add an INPUT, DFF or gate definition for the net"
           (Printf.sprintf "net %S is referenced by %s but never defined" nm by))
    end
  in
  List.iter
    (fun (lineno, st) ->
      match st with
      | Bench_format.St_input _ | Bench_format.St_const _ -> ()
      | Bench_format.St_output nm -> reference lineno ~by:"an OUTPUT declaration" nm
      | Bench_format.St_dff (q, d) -> reference lineno ~by:(Printf.sprintf "flop %S" q) d
      | Bench_format.St_gate (g, _, ins) ->
          List.iter (reference lineno ~by:(Printf.sprintf "gate %S" g)) ins)
    numbered;
  (* N001: cycles through gate definitions. Flip-flops break combinational
     paths, so only gate-target -> gate-target edges count. *)
  let gates =
    List.filter_map
      (function
        | lineno, Bench_format.St_gate (nm, _, ins) -> Some (lineno, nm, ins) | _ -> None)
      numbered
  in
  let gate_ids = Hashtbl.create 64 in
  List.iteri (fun i (_, nm, _) -> if not (Hashtbl.mem gate_ids nm) then Hashtbl.add gate_ids nm i) gates;
  let garr = Array.of_list gates in
  let adj =
    Array.map
      (fun (_, _, ins) -> List.filter_map (Hashtbl.find_opt gate_ids) ins)
      garr
  in
  (* Edge direction fanin -> target for the SCC walk. [adj] above maps target
     -> fanins; cycles are direction-independent, so it works as-is. *)
  List.iter
    (fun comp ->
      let names = List.map (fun i -> let _, nm, _ = garr.(i) in nm) comp in
      let first_line =
        List.fold_left (fun acc i -> let l, _, _ = garr.(i) in min acc l) max_int comp
      in
      add
        (Diagnostic.make ~rule:"TVS-N001" ~nets:names ~line:first_line
           ~hint:"break the loop with a flip-flop or remove the feedback"
           (Printf.sprintf "combinational cycle: %s -> %s"
              (String.concat " -> " names) (List.hd names))))
    (cyclic_sccs adj);
  List.rev !diags

(* ---------- circuit-level pass ---------- *)

let line_of lines nm = Option.bind lines (fun tbl -> Hashtbl.find_opt tbl nm)

let of_validate_issue c lines issue =
  let mk ?nets ?hint rule msg =
    let line = match nets with Some (nm :: _) -> line_of lines nm | _ -> None in
    Diagnostic.make ?nets ?line ?hint ~rule msg
  in
  let name n = Circuit.net_name c n in
  match issue with
  | Validate.No_inputs ->
      mk "TVS-N002" "circuit has no primary inputs"
        ~hint:"every stimulus must come through the scan chain"
  | Validate.No_observation_points ->
      mk "TVS-N003" "circuit has no outputs and no flip-flops"
        ~hint:"mark at least one OUTPUT or add scan cells"
  | Validate.Dangling_net n ->
      mk "TVS-N004" ~nets:[ name n ]
        (Printf.sprintf "net %s drives nothing and is not an output" (name n))
        ~hint:"remove the dead logic or declare the net as an OUTPUT"
  | Validate.Undriven_output n ->
      mk "TVS-N005" ~nets:[ name n ]
        (Printf.sprintf "output %s is driven by a constant" (name n))
  | Validate.Trivial_gate n ->
      mk "TVS-N006" ~nets:[ name n ]
        (Printf.sprintf "gate %s has a single input but is not a buffer/inverter" (name n))
        ~hint:"use BUFF or NOT"
  | Validate.Repeated_fanin (g, f) ->
      mk "TVS-N007" ~nets:[ name g; name f ]
        (Printf.sprintf "gate %s lists net %s more than once in its fanin" (name g) (name f))
        ~hint:"deduplicate the fanin list"

let circuit_pass ?lines c =
  let diags = List.map (of_validate_issue c lines) (Validate.check c) in
  (* N008: logic whose value can never reach a primary output or a scan
     capture point. [cone_rep] already runs the reverse cone sweep and marks
     such nets with [max_int]; dangling nets (fanout 0) are N004's. *)
  let unobservable = ref [] in
  for n = Circuit.num_nets c - 1 downto 0 do
    if
      Circuit.cone_rep c n = max_int
      && Array.length (Circuit.fanout c n) > 0
      && not (Circuit.is_output c n)
    then
      unobservable :=
        (let nm = Circuit.net_name c n in
         Diagnostic.make ~rule:"TVS-N008" ~nets:[ nm ] ?line:(line_of lines nm)
           ~hint:"the downstream logic is dead; remove it or observe it"
           (Printf.sprintf "net %s cannot reach any output or scan cell" nm))
        :: !unobservable
  done;
  (* N001, defensively: [Builder.finish] and [Circuit.decode] both force a
     topological order, so a cyclic [Circuit.t] cannot normally exist — but
     the check is O(V+E) and makes the pass self-contained. *)
  let n = Circuit.num_nets c in
  let adj =
    Array.init n (fun v ->
        match Circuit.driver c v with
        | Circuit.Gate_node (_, ins) ->
            Array.to_list ins
            |> List.filter (fun u ->
                   match Circuit.driver c u with Circuit.Gate_node _ -> true | _ -> false)
        | _ -> [])
  in
  let cycles =
    List.map
      (fun comp ->
        let names = List.map (Circuit.net_name c) comp in
        Diagnostic.make ~rule:"TVS-N001" ~nets:names
          ~hint:"break the loop with a flip-flop or remove the feedback"
          (Printf.sprintf "combinational cycle: %s -> %s" (String.concat " -> " names)
             (List.hd names)))
      (cyclic_sccs adj)
  in
  cycles @ diags @ !unobservable
