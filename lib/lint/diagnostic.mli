(** Structured lint findings.

    Every finding carries a stable rule identifier (see {!catalog}), a
    severity, the net names involved, and — when the circuit came from a
    `.bench` file — the source line of the primary net. Rule identifiers are
    part of the tool's contract: scripts filter on them (`tvs lint --rules`)
    and CI gates on severities, so an id is never reused or renumbered. *)

type severity = Error | Warning | Info

val severity_rank : severity -> int
(** [Error] = 3, [Warning] = 2, [Info] = 1 — total order for [--fail-on]
    thresholds. *)

val severity_to_string : severity -> string
(** ["error"] / ["warning"] / ["info"]. *)

val severity_of_string : string -> severity option

type t = {
  rule : string;  (** stable id, e.g. ["TVS-N001"] *)
  severity : severity;  (** the rule's catalog severity *)
  message : string;
  nets : string list;  (** involved net names, most significant first *)
  line : int option;  (** `.bench` source line of the primary net *)
  hint : string option;  (** optional fix suggestion *)
}

type rule_info = { id : string; default_severity : severity; title : string }

val catalog : rule_info list
(** Every rule the three pass families can emit, in id order. The catalog is
    the single source of severities: {!make} looks the severity up here. *)

val known_rule : string -> bool

val matches : string -> rule : string -> bool
(** [matches filter ~rule]: the filter is an exact id or an id prefix
    (["TVS-N"] selects the whole structural family). *)

val make :
  ?nets:string list -> ?line:int -> ?hint:string -> rule:string -> string -> t
(** [make ~rule message]. Raises [Invalid_argument] on an id missing from
    {!catalog} — an unknown rule is a programming error, not an input
    error. *)

val to_ascii : t -> string
(** One line: severity, rule id, optional [line N], message, optional
    hint. No trailing newline. *)

val to_json : t -> Tvs_obs.Json.t
(** Object with members [rule], [severity], [message], [nets], [line]
    (number or null), [hint] (string or null) — always all six, in that
    order, so renderings are byte-stable. *)

val encode : Tvs_util.Wire.writer -> t -> unit
val decode : Tvs_util.Wire.reader -> t
(** Raises [Tvs_util.Wire.Error] on malformed input. *)
