(** Rule-based static analysis for netlists, scan chains and hidden-fault
    risk — the `tvs lint` engine.

    Orchestrates the three pass families ({!Structural}, {!Dataflow},
    {!Scan_lint}) into one {!report}: structured diagnostics (stable rule
    ids, severities, net names, `.bench` line numbers, fix hints) plus the
    per-scan-position hidden-fault-risk table. Rendering is ASCII for humans
    and JSON for machines; both are deterministic functions of the inputs,
    so CI can diff them across [--jobs] values. Counts land on the metrics
    registry under [lint.*]. *)

type options = {
  rules : string list option;
      (** keep only diagnostics whose rule id matches one of these ids or
          id prefixes; [None] = all rules *)
  sat_faults : int;  (** SAT untestability budget: at most this many faults; 0 disables *)
  sat_decisions : int;  (** per-fault SAT decision budget *)
  shift : int option;  (** shift size for the risk table; [None] = {!Scan_lint.default_shift} *)
  sweep : int list;
      (** additional shifts to tabulate risk at ([tvs lint --shift 2,4,8]
          puts 2 in [shift] and [4; 8] here); clamped like [shift],
          duplicates dropped *)
}

val default_options : options
(** All rules, 32 SAT faults at 2000 decisions each, default shift, no
    sweep. *)

type report = {
  circuit : string;
  nets : int;
  diagnostics : Diagnostic.t list;  (** pass order, post rule-filter *)
  shift : int;  (** the shift the risk table used; 0 when there is no chain *)
  risk : Scan_lint.risk_row array;
  sweep : (int * Scan_lint.risk_row array) list;
      (** one extra risk table per surviving sweep shift, request order *)
}

val run :
  ?options:options ->
  ?lines:(string, int) Hashtbl.t ->
  ?chain:Tvs_netlist.Circuit.net array ->
  Tvs_netlist.Circuit.t ->
  report
(** Lint a built circuit. [lines] (from
    {!Tvs_netlist.Bench_format.line_of_net}) attaches source lines; [chain]
    overrides the scan order under test (default
    {!Tvs_netlist.Circuit.flops}). The risk table is computed only when the
    chain passes integrity without errors. *)

val run_source :
  ?options:options -> ?format:Tvs_verilog.Loader.format -> name:string -> string -> report
(** Lint netlist text — `.bench` or structural Verilog, auto-detected by
    content when [format] is absent (callers that know the file path should
    resolve it with {!Tvs_verilog.Loader.detect} and pass the result).
    Statement-level defects a [Circuit.t] cannot represent — syntax errors
    (P001), multiply-driven nets (N010), undefined references (N009),
    combinational cycles (N001) — are reported with line numbers instead of
    raising; when the source is build-clean this is {!run} with the line
    table attached. Line numbers always refer to the original source, bench
    or Verilog. *)

val preflight : Tvs_netlist.Circuit.t -> Diagnostic.t list
(** The cheap gate for {!Tvs_core.Engine}: structural and
    constant-propagation passes only (no SAT, no risk table). *)

val errors : report -> Diagnostic.t list
val count : report -> Diagnostic.severity -> int

val failed : fail_on:Diagnostic.severity -> report -> bool
(** Any diagnostic at or above the threshold severity. *)

val to_ascii : report -> string
(** Summary line, one line per diagnostic, then the risk table (when a
    chain exists) followed by one table per sweep shift. Ends with a
    newline. *)

val to_json : report -> Tvs_obs.Json.t
(** Schema (also enforced by `validate_report --lint`):
    {v
    { "schema": 2, "circuit": str, "nets": int,
      "summary": {"errors": int, "warnings": int, "infos": int},
      "diagnostics": [ {"rule": "TVS-...", "severity": "error|warning|info",
                        "message": str, "nets": [str], "line": int|null,
                        "hint": str|null} ],
      "risk": {"shift": int,
               "positions": [ {"position": int, "cell": str, "captures": int,
                               "exclusive": int, "observability": int,
                               "emitted": bool, "risk": int} ]},
      "risk_sweep": [ {"shift": int, "positions": [...]} ] }
    v} *)

val to_json_string : report -> string

val schema_version : int
(** Version of both the JSON schema above and the wire encoding; bump on
    any rule-set or format change so cached reports never go stale. *)

val encode_options : Tvs_util.Wire.writer -> options -> unit
(** Canonical encoding of everything in [options] that affects the report —
    cache-key material for {!Tvs_harness.Experiments}. *)

val encode_report : Tvs_util.Wire.writer -> report -> unit
val decode_report : Tvs_util.Wire.reader -> report
(** Raises [Tvs_util.Wire.Error] on malformed input. *)
