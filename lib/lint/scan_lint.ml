module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Scoap = Tvs_atpg.Scoap

type risk_row = {
  position : int;
  cell : string;
  captures : int;
  exclusive : int;
  observability : int;
  emitted : bool;
  risk : int;
}

let line_of lines nm = Option.bind lines (fun tbl -> Hashtbl.find_opt tbl nm)

let integrity ?chain ?lines c =
  let chain = Option.value ~default:(Circuit.flops c) chain in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let seen = Hashtbl.create 16 in
  Array.iteri
    (fun i q ->
      let nm = Circuit.net_name c q in
      (match Circuit.driver c q with
      | Circuit.Flip_flop _ -> ()
      | _ ->
          add
            (Diagnostic.make ~rule:"TVS-S001" ~nets:[ nm ] ?line:(line_of lines nm)
               ~hint:"only flip-flop Q nets can be stitched into the chain"
               (Printf.sprintf "scan position %d is net %s, which is not a flip-flop" i nm)));
      match Hashtbl.find_opt seen q with
      | Some first ->
          add
            (Diagnostic.make ~rule:"TVS-S002" ~nets:[ nm ] ?line:(line_of lines nm)
               ~hint:"a cell can hold one value; a repeated entry shadows the first"
               (Printf.sprintf "cell %s appears at scan positions %d and %d" nm first i))
      | None -> Hashtbl.add seen q i)
    chain;
  Array.iter
    (fun q ->
      if not (Hashtbl.mem seen q) then
        let nm = Circuit.net_name c q in
        add
          (Diagnostic.make ~rule:"TVS-S003" ~nets:[ nm ] ?line:(line_of lines nm)
             ~hint:"faults captured into an off-chain cell are never shifted out"
             (Printf.sprintf "flip-flop %s is not on the scan chain" nm)))
    (Circuit.flops c);
  List.rev !diags

let default_shift c =
  let l = Circuit.num_flops c in
  if l = 0 then 0 else max 1 (l / 4)

(* Constants of the documented risk formula (DESIGN.md §8). *)
let defer_penalty = 8
let obs_cap = 50
let exclusive_weight = 3

let unreachable = Scoap.unreachable
let sat_add a b = let s = a + b in if s < 0 || s > unreachable then unreachable else s

(* Transitive combinational fanin of [root] (the support), as visited net
   ids: the root, every gate net feeding it, and the PI/Q/const sources.
   Stamp-based so the per-cell sweeps reuse one array. *)
let support c stamp cur root =
  incr cur;
  let acc = ref [] in
  let todo = ref [ root ] in
  while !todo <> [] do
    match !todo with
    | [] -> ()
    | x :: rest ->
        todo := rest;
        if stamp.(x) <> !cur then begin
          stamp.(x) <- !cur;
          acc := x :: !acc;
          match Circuit.driver c x with
          | Circuit.Gate_node (_, ins) -> Array.iter (fun i -> todo := i :: !todo) ins
          | _ -> ()
        end
  done;
  !acc

(* Chain-aware SCOAP observability: the standard reverse CO sweep, except
   that only primary outputs and the emitted tail cells observe for free —
   capturing into a retained cell defers observation by at least one more
   cycle and costs [defer_penalty]. Off-chain flops observe nothing. *)
let chain_aware_co c guide ~chain ~emitted =
  let n = Circuit.num_nets c in
  let co = Array.make n unreachable in
  let better net v = if v < co.(net) then co.(net) <- v in
  Array.iter (fun po -> better po 0) (Circuit.outputs c);
  Array.iteri
    (fun i q ->
      match Circuit.driver c q with
      | Circuit.Flip_flop d -> better d (if emitted i then 0 else defer_penalty)
      | _ -> ())
    chain;
  let order = Circuit.topo_order c in
  for k = Array.length order - 1 downto 0 do
    let net = order.(k) in
    if co.(net) < unreachable then
      match Circuit.driver c net with
      | Circuit.Gate_node (kind, ins) ->
          let side j =
            match kind with
            | Gate.And | Gate.Nand -> Scoap.cc1 guide ins.(j)
            | Gate.Or | Gate.Nor -> Scoap.cc0 guide ins.(j)
            | Gate.Xor | Gate.Xnor -> min (Scoap.cc0 guide ins.(j)) (Scoap.cc1 guide ins.(j))
            | Gate.Not | Gate.Buf -> 0
          in
          let m = Array.length ins in
          for i = 0 to m - 1 do
            let cost = ref (sat_add co.(net) 1) in
            for j = 0 to m - 1 do
              if j <> i then cost := sat_add !cost (side j)
            done;
            better ins.(i) !cost
          done
      | _ -> ()
  done;
  co

(* The shared substrate of [risk_table] and [exclusive_nets]: per-cell
   supports plus the "observable elsewhere" net marking (transitive fanin of
   every primary output and of every emitted cell). *)
let hidden_supports c ~chain ~emitted =
  let nets = Circuit.num_nets c in
  let stamp = Array.make nets 0 in
  let cur = ref 0 in
  let supports =
    Array.map
      (fun q ->
        match Circuit.driver c q with
        | Circuit.Flip_flop d -> support c stamp cur d
        | _ -> [])
      chain
  in
  let elsewhere = Array.make nets false in
  let mark root = List.iter (fun x -> elsewhere.(x) <- true) (support c stamp cur root) in
  Array.iter mark (Circuit.outputs c);
  Array.iteri
    (fun i q ->
      if emitted i then
        match Circuit.driver c q with Circuit.Flip_flop d -> mark d | _ -> ())
    chain;
  (supports, elsewhere)

let exclusive_nets ?chain ~s c =
  let chain = Option.value ~default:(Circuit.flops c) chain in
  let len = Array.length chain in
  if len = 0 then [||]
  else begin
    let s = max 1 (min s len) in
    let emitted i = i >= len - s in
    let supports, elsewhere = hidden_supports c ~chain ~emitted in
    Array.map
      (fun sup -> List.sort compare (List.filter (fun x -> not elsewhere.(x)) sup))
      supports
  end

let risk_table ?chain ~s c =
  let chain = Option.value ~default:(Circuit.flops c) chain in
  let len = Array.length chain in
  if len = 0 then [||]
  else begin
    let s = max 1 (min s len) in
    let emitted i = i >= len - s in
    let supports, elsewhere = hidden_supports c ~chain ~emitted in
    let guide = Scoap.compute c in
    let co = chain_aware_co c guide ~chain ~emitted in
    Array.mapi
      (fun i q ->
        let sup = supports.(i) in
        let captures = List.length sup in
        let exclusive = List.length (List.filter (fun x -> not elsewhere.(x)) sup) in
        let observability = min co.(q) obs_cap in
        let risk =
          if emitted i then 0
          else captures + (exclusive_weight * exclusive) + observability
        in
        {
          position = i;
          cell = Circuit.net_name c q;
          captures;
          exclusive;
          observability;
          emitted = emitted i;
          risk;
        })
      chain
  end
