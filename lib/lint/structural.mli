(** Structural lint passes (rules TVS-N001 .. TVS-N010).

    Two entry points, because the two representations can express different
    defects. [Circuit.Builder] rejects undefined references and forces a
    topological order, so undriven nets (N009), multiply-driven nets (N010)
    and combinational cycles (N001) can only be observed at the `.bench`
    statement level — {!source_pass} finds them there, with line numbers,
    before any build is attempted. Everything expressible on a built
    {!Tvs_netlist.Circuit.t} — including every rule of the legacy
    {!Tvs_netlist.Validate} checker — comes from {!circuit_pass}. *)

val source_pass : (int * Tvs_netlist.Bench_format.statement) list -> Diagnostic.t list
(** Statement-level checks on numbered statements (as returned by
    {!Tvs_netlist.Bench_format.statements_of_string}): multiply-driven nets
    and duplicate OUTPUT declarations (N010), references to undefined nets
    (N009), and combinational cycles through gate definitions (N001, with
    the cycle path in the message). An empty error set guarantees
    {!Tvs_netlist.Bench_format.circuit_of_statements} succeeds. *)

val circuit_pass :
  ?lines:(string, int) Hashtbl.t -> Tvs_netlist.Circuit.t -> Diagnostic.t list
(** Checks on a built circuit: the {!Tvs_netlist.Validate} rules mapped to
    N002..N007, logic that cannot reach any primary output or scan cell
    (N008, via the reverse cone sweep behind
    {!Tvs_netlist.Circuit.cone_rep}), and a defensive N001 cycle check.
    [lines] (from {!Tvs_netlist.Bench_format.line_of_net}) attaches source
    lines to net-located findings. *)

val cyclic_sccs : int list array -> int list list
(** Strongly connected components of the adjacency list that contain a cycle
    (size > 1, or a single node with a self-edge), via iterative Tarjan —
    safe on graphs deeper than the OCaml stack. Exposed for tests. *)
