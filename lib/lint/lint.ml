module Circuit = Tvs_netlist.Circuit
module Bench_format = Tvs_netlist.Bench_format
module Json = Tvs_obs.Json
module Metrics = Tvs_obs.Metrics
module Trace = Tvs_obs.Trace
module Table = Tvs_util.Table
module Wire = Tvs_util.Wire

let schema_version = 2

let m_runs = Metrics.counter "lint.runs"
let m_errors = Metrics.counter "lint.diagnostics.error"
let m_warnings = Metrics.counter "lint.diagnostics.warning"
let m_infos = Metrics.counter "lint.diagnostics.info"

type options = {
  rules : string list option;
  sat_faults : int;
  sat_decisions : int;
  shift : int option;
  sweep : int list;
}

let default_options =
  { rules = None; sat_faults = 32; sat_decisions = 2000; shift = None; sweep = [] }

type report = {
  circuit : string;
  nets : int;
  diagnostics : Diagnostic.t list;
  shift : int;
  risk : Scan_lint.risk_row array;
  sweep : (int * Scan_lint.risk_row array) list;
}

let filter_rules rules diags =
  match rules with
  | None -> diags
  | Some rs ->
      List.filter
        (fun (d : Diagnostic.t) -> List.exists (fun r -> Diagnostic.matches r ~rule:d.rule) rs)
        diags

let count r sev =
  List.length (List.filter (fun (d : Diagnostic.t) -> d.severity = sev) r.diagnostics)

let errors r = List.filter (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) r.diagnostics

let failed ~fail_on r =
  let threshold = Diagnostic.severity_rank fail_on in
  List.exists
    (fun (d : Diagnostic.t) -> Diagnostic.severity_rank d.severity >= threshold)
    r.diagnostics

let finish ~circuit ~nets ~shift ~risk ~sweep options diags =
  let diagnostics = filter_rules options.rules diags in
  List.iter
    (fun (d : Diagnostic.t) ->
      Metrics.incr
        (match d.severity with
        | Diagnostic.Error -> m_errors
        | Diagnostic.Warning -> m_warnings
        | Diagnostic.Info -> m_infos))
    diagnostics;
  { circuit; nets; diagnostics; shift; risk; sweep }

(* The S004 hotspot: name the riskiest retained position so the headline
   finding survives even when nobody reads the full table. *)
let hotspot shift risk =
  let best = ref None in
  Array.iter
    (fun (row : Scan_lint.risk_row) ->
      if not row.emitted then
        match !best with
        | Some (b : Scan_lint.risk_row) when b.risk >= row.risk -> ()
        | _ -> best := Some row)
    risk;
  match !best with
  | None -> []
  | Some row ->
      [
        Diagnostic.make ~rule:"TVS-S004" ~nets:[ row.cell ]
          ~hint:"prefer larger shifts or XOR observation when targeting faults captured here"
          (Printf.sprintf
             "scan position %d (cell %s) has the highest hidden-fault risk (%d) under shift %d"
             row.position row.cell row.risk shift);
      ]

let run ?(options = default_options) ?lines ?chain c =
  Trace.with_span "lint" ~args:[ ("circuit", Circuit.name c) ] @@ fun () ->
  Metrics.incr m_runs;
  let structural = Structural.circuit_pass ?lines c in
  let constants = Dataflow.constants ?lines c in
  let sat =
    if options.sat_faults > 0 then
      Dataflow.untestable ?lines ~max_faults:options.sat_faults
        ~max_decisions:options.sat_decisions c
    else []
  in
  let chain_diags = Scan_lint.integrity ?chain ?lines c in
  let chain_ok =
    not
      (List.exists (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) chain_diags)
  in
  let shift =
    match options.shift with
    | Some s -> max 1 (min s (max 1 (Circuit.num_flops c)))
    | None -> Scan_lint.default_shift c
  in
  let risk =
    if chain_ok && Circuit.num_flops c > 0 then Scan_lint.risk_table ?chain ~s:shift c
    else [||]
  in
  let shift = if Array.length risk = 0 then 0 else shift in
  (* The sweep: one extra table per requested shift, clamped like the
     primary, duplicates (of the primary or of earlier entries) dropped so
     the report never prints the same table twice. *)
  let sweep =
    if Array.length risk = 0 then []
    else
      let clamp s = max 1 (min s (max 1 (Circuit.num_flops c))) in
      List.fold_left
        (fun acc s ->
          let s = clamp s in
          if s = shift || List.mem_assoc s acc then acc
          else (s, Scan_lint.risk_table ?chain ~s c) :: acc)
        [] options.sweep
      |> List.rev
  in
  let diags =
    structural @ constants @ sat @ chain_diags @ hotspot shift risk
  in
  finish ~circuit:(Circuit.name c) ~nets:(Circuit.num_nets c) ~shift ~risk ~sweep options diags

let source_failure ?(options = default_options) ~name diags =
  finish ~circuit:name ~nets:0 ~shift:0 ~risk:[||] ~sweep:[] options diags

(* Both frontends speak the same statement vocabulary, so once the text is
   tokenised the whole pass pipeline below is format-blind — Verilog inputs
   get the same rules with Verilog line numbers. *)
let statements_of ?format text =
  match Option.value format ~default:(Tvs_verilog.Loader.detect text) with
  | Tvs_verilog.Loader.Bench -> Bench_format.statements_of_string text
  | Tvs_verilog.Loader.Verilog -> snd (Tvs_verilog.Frontend.statements_of_string text)

let run_source ?(options = default_options) ?format ~name text =
  match statements_of ?format text with
  | exception Bench_format.Parse_error (line, msg) ->
      source_failure ~options ~name [ Diagnostic.make ~rule:"TVS-P001" ~line msg ]
  | stmts -> (
      let sdiags = Structural.source_pass stmts in
      if List.exists (fun (d : Diagnostic.t) -> d.severity = Diagnostic.Error) sdiags then
        source_failure ~options ~name sdiags
      else
        let lines = Bench_format.line_of_net stmts in
        match Bench_format.circuit_of_statements ~name stmts with
        | c -> run ~options ~lines c
        | exception Bench_format.Parse_error (line, msg) ->
            (* Unreachable when [source_pass] is error-free; kept as a belt. *)
            source_failure ~options ~name
              (sdiags @ [ Diagnostic.make ~rule:"TVS-P001" ~line msg ])
        | exception Circuit.Build_error msg ->
            source_failure ~options ~name
              (sdiags @ [ Diagnostic.make ~rule:"TVS-P001" msg ]))

let preflight c = Structural.circuit_pass c @ Dataflow.constants c

(* ---------- rendering ---------- *)

let to_ascii r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "lint %s: %d nets, %d error(s), %d warning(s), %d info(s)\n" r.circuit
       r.nets (count r Diagnostic.Error) (count r Diagnostic.Warning)
       (count r Diagnostic.Info));
  List.iter (fun d -> Buffer.add_string b ("  " ^ Diagnostic.to_ascii d ^ "\n")) r.diagnostics;
  let risk_table shift risk =
    Buffer.add_string b
      (Printf.sprintf "hidden-fault risk under shift s=%d (tail cell %d is scan-out):\n" shift
         (Array.length risk - 1));
    let t =
      Table.create [ "pos"; "cell"; "captures"; "exclusive"; "obs"; "emitted"; "risk" ]
    in
    Array.iter
      (fun (row : Scan_lint.risk_row) ->
        Table.add_row t
          [
            string_of_int row.position;
            row.cell;
            string_of_int row.captures;
            string_of_int row.exclusive;
            string_of_int row.observability;
            (if row.emitted then "yes" else "no");
            string_of_int row.risk;
          ])
      risk;
    Buffer.add_string b (Table.render t);
    Buffer.add_char b '\n'
  in
  if Array.length r.risk > 0 then begin
    risk_table r.shift r.risk;
    List.iter (fun (s, risk) -> risk_table s risk) r.sweep
  end;
  Buffer.contents b

let risk_row_json (row : Scan_lint.risk_row) =
  Json.Obj
    [
      ("position", Json.Int row.position);
      ("cell", Json.Str row.cell);
      ("captures", Json.Int row.captures);
      ("exclusive", Json.Int row.exclusive);
      ("observability", Json.Int row.observability);
      ("emitted", Json.Bool row.emitted);
      ("risk", Json.Int row.risk);
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.Int schema_version);
      ("circuit", Json.Str r.circuit);
      ("nets", Json.Int r.nets);
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (count r Diagnostic.Error));
            ("warnings", Json.Int (count r Diagnostic.Warning));
            ("infos", Json.Int (count r Diagnostic.Info));
          ] );
      ("diagnostics", Json.Arr (List.map Diagnostic.to_json r.diagnostics));
      ( "risk",
        Json.Obj
          [
            ("shift", Json.Int r.shift);
            ("positions", Json.Arr (Array.to_list (Array.map risk_row_json r.risk)));
          ] );
      ( "risk_sweep",
        Json.Arr
          (List.map
             (fun (s, risk) ->
               Json.Obj
                 [
                   ("shift", Json.Int s);
                   ("positions", Json.Arr (Array.to_list (Array.map risk_row_json risk)));
                 ])
             r.sweep) );
    ]

let to_json_string r = Json.to_string (to_json r)

(* ---------- wire form (result cache) ---------- *)

let encode_options w o =
  Wire.write_option (Wire.write_list Wire.write_string) w o.rules;
  Wire.write_varint w o.sat_faults;
  Wire.write_varint w o.sat_decisions;
  Wire.write_option (fun w s -> Wire.write_varint w s) w o.shift;
  Wire.write_list (fun w s -> Wire.write_varint w s) w o.sweep

let encode_risk_row w (row : Scan_lint.risk_row) =
  Wire.write_varint w row.position;
  Wire.write_string w row.cell;
  Wire.write_varint w row.captures;
  Wire.write_varint w row.exclusive;
  Wire.write_varint w row.observability;
  Wire.write_bool w row.emitted;
  Wire.write_varint w row.risk

let decode_risk_row r : Scan_lint.risk_row =
  let position = Wire.read_varint r in
  let cell = Wire.read_string r in
  let captures = Wire.read_varint r in
  let exclusive = Wire.read_varint r in
  let observability = Wire.read_varint r in
  let emitted = Wire.read_bool r in
  let risk = Wire.read_varint r in
  { position; cell; captures; exclusive; observability; emitted; risk }

let encode_report w r =
  Wire.write_string w r.circuit;
  Wire.write_varint w r.nets;
  Wire.write_list Diagnostic.encode w r.diagnostics;
  Wire.write_varint w r.shift;
  Wire.write_array encode_risk_row w r.risk;
  Wire.write_list
    (fun w (s, risk) ->
      Wire.write_varint w s;
      Wire.write_array encode_risk_row w risk)
    w r.sweep

let decode_report rd =
  let circuit = Wire.read_string rd in
  let nets = Wire.read_varint rd in
  let diagnostics = Wire.read_list Diagnostic.decode rd in
  let shift = Wire.read_varint rd in
  let risk = Wire.read_array decode_risk_row rd in
  let sweep =
    Wire.read_list
      (fun rd ->
        let s = Wire.read_varint rd in
        let risk = Wire.read_array decode_risk_row rd in
        (s, risk))
      rd
  in
  { circuit; nets; diagnostics; shift; risk; sweep }
