module Circuit = Tvs_netlist.Circuit
module Ternary = Tvs_logic.Ternary
module Gate = Tvs_netlist.Gate
module Fault = Tvs_fault.Fault
module Fault_gen = Tvs_fault.Fault_gen
module Scoap = Tvs_atpg.Scoap
module Sat_atpg = Tvs_atpg.Sat_atpg
module Metrics = Tvs_obs.Metrics

let m_sat_untestable = Metrics.counter "lint.sat.untestable"
let m_sat_unknown = Metrics.counter "lint.sat.unknown"
let m_sat_decisions = Metrics.counter "lint.sat.decisions"
let m_sat_propagations = Metrics.counter "lint.sat.propagations"

let values c =
  let v = Array.make (Circuit.num_nets c) Ternary.X in
  Array.iter
    (fun n ->
      match Circuit.driver c n with
      | Circuit.Const b -> v.(n) <- Ternary.of_bool b
      | Circuit.Gate_node (kind, ins) ->
          v.(n) <- Gate.eval_ternary kind (Array.map (fun i -> v.(i)) ins)
      | Circuit.Primary_input | Circuit.Flip_flop _ -> ())
    (Circuit.topo_order c);
  v

let line_of lines nm = Option.bind lines (fun tbl -> Hashtbl.find_opt tbl nm)

let constants ?lines c =
  let v = values c in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  for n = Circuit.num_nets c - 1 downto 0 do
    let nm = Circuit.net_name c n in
    (match (Circuit.driver c n, v.(n)) with
    | Circuit.Gate_node _, (Ternary.Zero | Ternary.One) ->
        (* A stuck gate's constant inputs are subsumed by its own D001;
           D003 below only covers gates that still vary. *)
        add
          (Diagnostic.make ~rule:"TVS-D001" ~nets:[ nm ] ?line:(line_of lines nm)
             ~hint:"the driving cone is logically constant; simplify it away"
             (Printf.sprintf "gate output %s is stuck at %c for every input assignment" nm
                (Ternary.to_char v.(n))))
    | Circuit.Gate_node (_, ins), Ternary.X ->
        (* D003: constant inputs to a live gate, each net once per gate. *)
        let seen = Hashtbl.create 4 in
        Array.iter
          (fun i ->
            if Ternary.is_specified v.(i) && not (Hashtbl.mem seen i) then begin
              Hashtbl.add seen i ();
              let inm = Circuit.net_name c i in
              add
                (Diagnostic.make ~rule:"TVS-D003" ~nets:[ inm; nm ]
                   ?line:(line_of lines inm)
                   (Printf.sprintf "input %s of gate %s is always %c" inm nm
                      (Ternary.to_char v.(i))))
            end)
          ins
    | _ -> ());
    (* D002: a primary output pinned through logic. Constant drivers are the
       structural rule N005; gate-driven outputs land here. *)
    if Circuit.is_output c n && Ternary.is_specified v.(n) then
      match Circuit.driver c n with
      | Circuit.Const _ -> ()
      | _ ->
          add
            (Diagnostic.make ~rule:"TVS-D002" ~nets:[ nm ] ?line:(line_of lines nm)
               ~hint:"a constant output observes nothing; drop it from the interface"
               (Printf.sprintf "primary output %s is constant %c" nm (Ternary.to_char v.(n))))
  done;
  !diags

let untestable ?lines ~max_faults ~max_decisions c =
  if max_faults <= 0 then []
  else begin
    let faults = Fault_gen.collapsed c in
    let guide = Scoap.compute c in
    let order = Array.mapi (fun i f -> (Scoap.fault_hardness guide f, i, f)) faults in
    (* Hardest first; index breaks ties so the selection is deterministic. *)
    Array.sort (fun (h1, i1, _) (h2, i2, _) -> if h1 <> h2 then compare h2 h1 else compare i1 i2) order;
    let picked = min max_faults (Array.length order) in
    let diags = ref [] in
    for k = picked - 1 downto 0 do
      let _, _, f = order.(k) in
      let nm = Circuit.net_name c f.Fault.stem in
      let verdict, stats = Sat_atpg.generate_stats ~max_decisions c f in
      Metrics.add m_sat_decisions stats.Tvs_util.Sat.decisions;
      Metrics.add m_sat_propagations stats.Tvs_util.Sat.propagations;
      match verdict with
      | Sat_atpg.Detected _ -> ()
      | Sat_atpg.Untestable ->
          Metrics.incr m_sat_untestable;
          diags :=
            Diagnostic.make ~rule:"TVS-D004" ~nets:[ nm ] ?line:(line_of lines nm)
              ~hint:"the fault site is redundant logic; no vector can ever detect it"
              (Printf.sprintf "stuck-at fault %s is untestable (SAT proof)" (Fault.name c f))
            :: !diags
      | Sat_atpg.Unknown ->
          Metrics.incr m_sat_unknown;
          diags :=
            Diagnostic.make ~rule:"TVS-D005" ~nets:[ nm ] ?line:(line_of lines nm)
              (Printf.sprintf "untestability of fault %s undecided within %d SAT decisions"
                 (Fault.name c f) max_decisions)
            :: !diags
    done;
    !diags
  end
