(** Dataflow lint passes (rules TVS-D001 .. TVS-D005).

    {!constants} is three-valued constant propagation: every source (primary
    input or flop Q) starts at X, constants at their value, and gates fold
    through the Kleene tables — any net that still evaluates to 0 or 1 is
    provably stuck for every input assignment. {!untestable} goes further on
    a budget: it hands the hardest collapsed faults (SCOAP ordering) to the
    SAT-based ATPG, whose [Untestable] answers are redundancy {e proofs}
    (D004); budget-exhausted [Unknown] answers downgrade to info (D005). *)

val values : Tvs_netlist.Circuit.t -> Tvs_logic.Ternary.t array
(** The constant-propagation fixpoint, indexed by net. Exposed for tests. *)

val constants :
  ?lines:(string, int) Hashtbl.t -> Tvs_netlist.Circuit.t -> Diagnostic.t list
(** D001 (gate output stuck at a constant), D002 (primary output constant
    through logic — constant {e drivers} are structural N005), D003 (a
    constant input to a gate whose output still varies). *)

val untestable :
  ?lines:(string, int) Hashtbl.t ->
  max_faults:int ->
  max_decisions:int ->
  Tvs_netlist.Circuit.t ->
  Diagnostic.t list
(** SAT pass over at most [max_faults] collapsed faults, hardest first by
    {!Tvs_atpg.Scoap.fault_hardness}, each with a [max_decisions] budget.
    Deterministic: the fault order is a pure function of the circuit. *)
