(** Scan-chain lint passes (rules TVS-S001 .. TVS-S004) and the per-position
    hidden-fault-risk table.

    The chain follows the project convention ({!Tvs_netlist.Circuit.flops}):
    cell 0 is the scan-in head, cell L-1 the scan-out tail, and a shift of
    [s] emits exactly the last [s] cells. A fault whose effect is captured
    only into non-emitted cells is {e hidden} — the paper's central event —
    so which positions are likely to hide faults is statically predictable.

    The documented risk score for position [i] under shift [s] (see DESIGN.md
    §8 for the rationale and constants):
    {v
      risk(i) = 0                                          if i >= L - s
              = captures(i) + 3*exclusive(i) + obs(i)      otherwise
    v}
    where [captures(i)] is the size of the combinational support of cell
    [i]'s D net (how much logic funnels faults into the cell),
    [exclusive(i)] counts the support nets observable {e nowhere else} (no
    primary output and no emitted cell sees them — a fault there can only
    ever surface through this cell), and [obs(i)] is a chain-aware SCOAP
    observability of the cell's Q net, capped at 50: the CO sweep in which
    only primary outputs and emitted cells are free observation points while
    capturing into a non-emitted cell costs a deferred-observation penalty
    of 8. Higher risk = more likely to hide faults, and for longer. *)

type risk_row = {
  position : int;
  cell : string;  (** Q-net name of the scan cell *)
  captures : int;
  exclusive : int;
  observability : int;  (** chain-aware CO of the Q net, capped at 50 *)
  emitted : bool;  (** position is within the emitted tail under [s] *)
  risk : int;
}

val integrity :
  ?chain:Tvs_netlist.Circuit.net array ->
  ?lines:(string, int) Hashtbl.t ->
  Tvs_netlist.Circuit.t ->
  Diagnostic.t list
(** S001 (a chain entry whose driver is not a flip-flop), S002 (the same
    cell listed twice), S003 (a flip-flop of the circuit absent from the
    chain). [chain] defaults to {!Tvs_netlist.Circuit.flops} — the order
    every other layer uses — and exists so tests and future re-ordering
    experiments can lint candidate chains. *)

val default_shift : Tvs_netlist.Circuit.t -> int
(** The shift size the risk table assumes when the caller gives none:
    [max 1 (L/4)], the lower end of the paper's variable-shift sweep, where
    hiding pressure is highest. 0 when the circuit has no flops. *)

val exclusive_nets :
  ?chain:Tvs_netlist.Circuit.net array ->
  s:int ->
  Tvs_netlist.Circuit.t ->
  Tvs_netlist.Circuit.net list array
(** Per chain position, the [exclusive(i)] net set of the risk formula: the
    support nets of cell [i]'s D that no primary output and no emitted cell
    can observe — a fault on one of them can only ever surface through cell
    [i]. Sorted ascending by net id; emitted positions come out empty
    (their own support marks itself observable). These are exactly the nets
    test-point insertion ([Tvs_tpi]) wants to tap: observing one of them
    anywhere else removes it from every position's exclusive set. Same
    [chain]/[s] conventions as {!risk_table}. *)

val risk_table :
  ?chain:Tvs_netlist.Circuit.net array ->
  s:int ->
  Tvs_netlist.Circuit.t ->
  risk_row array
(** One row per chain position, in chain order. [s] is clamped to
    [1 .. L]. Empty when the chain is empty; call only on chains that pass
    {!integrity} without errors. *)
