module Json = Tvs_obs.Json
module Wire = Tvs_util.Wire

type severity = Error | Warning | Info

let severity_rank = function Error -> 3 | Warning -> 2 | Info -> 1
let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

type t = {
  rule : string;
  severity : severity;
  message : string;
  nets : string list;
  line : int option;
  hint : string option;
}

type rule_info = { id : string; default_severity : severity; title : string }

let catalog =
  [
    { id = "TVS-N001"; default_severity = Error; title = "combinational cycle" };
    { id = "TVS-N002"; default_severity = Warning; title = "no primary inputs" };
    { id = "TVS-N003"; default_severity = Error; title = "no observation points" };
    { id = "TVS-N004"; default_severity = Warning; title = "dangling net" };
    { id = "TVS-N005"; default_severity = Warning; title = "constant primary output driver" };
    { id = "TVS-N006"; default_severity = Warning; title = "trivial single-input gate" };
    { id = "TVS-N007"; default_severity = Warning; title = "repeated fanin" };
    { id = "TVS-N008"; default_severity = Warning; title = "unobservable logic" };
    { id = "TVS-N009"; default_severity = Error; title = "undefined net reference" };
    { id = "TVS-N010"; default_severity = Error; title = "multiply-driven net" };
    { id = "TVS-P001"; default_severity = Error; title = "syntax error" };
    { id = "TVS-D001"; default_severity = Warning; title = "stuck net" };
    { id = "TVS-D002"; default_severity = Warning; title = "constant primary output value" };
    { id = "TVS-D003"; default_severity = Info; title = "constant gate input" };
    { id = "TVS-D004"; default_severity = Warning; title = "untestable stuck-at fault (SAT proof)" };
    { id = "TVS-D005"; default_severity = Info; title = "untestability undecided (budget exhausted)" };
    { id = "TVS-S001"; default_severity = Error; title = "scan-chain cell is not a flip-flop" };
    { id = "TVS-S002"; default_severity = Error; title = "duplicate scan-chain cell" };
    { id = "TVS-S003"; default_severity = Warning; title = "flip-flop missing from the scan chain" };
    { id = "TVS-S004"; default_severity = Info; title = "hidden-fault risk hotspot" };
  ]

let find_rule id = List.find_opt (fun r -> r.id = id) catalog
let known_rule id = find_rule id <> None
let matches filter ~rule = String.starts_with ~prefix:filter rule

let make ?(nets = []) ?line ?hint ~rule message =
  match find_rule rule with
  | None -> invalid_arg (Printf.sprintf "Diagnostic.make: unknown rule %S" rule)
  | Some info -> { rule; severity = info.default_severity; message; nets; line; hint }

let to_ascii d =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "%-7s %s" (severity_to_string d.severity) d.rule);
  (match d.line with
  | Some l -> Buffer.add_string b (Printf.sprintf " [line %d]" l)
  | None -> ());
  Buffer.add_string b ("  " ^ d.message);
  (match d.hint with
  | Some h -> Buffer.add_string b (Printf.sprintf " (fix: %s)" h)
  | None -> ());
  Buffer.contents b

let to_json d =
  Json.Obj
    [
      ("rule", Json.Str d.rule);
      ("severity", Json.Str (severity_to_string d.severity));
      ("message", Json.Str d.message);
      ("nets", Json.Arr (List.map (fun n -> Json.Str n) d.nets));
      ("line", match d.line with Some l -> Json.Int l | None -> Json.Null);
      ("hint", match d.hint with Some h -> Json.Str h | None -> Json.Null);
    ]

let encode w d =
  Wire.write_string w d.rule;
  Wire.write_u8 w (severity_rank d.severity);
  Wire.write_string w d.message;
  Wire.write_list Wire.write_string w d.nets;
  Wire.write_option (fun w l -> Wire.write_varint w l) w d.line;
  Wire.write_option Wire.write_string w d.hint

let decode r =
  let rule = Wire.read_string r in
  let severity =
    match Wire.read_u8 r with
    | 3 -> Error
    | 2 -> Warning
    | 1 -> Info
    | k -> raise (Wire.Error (Printf.sprintf "bad severity tag %d" k))
  in
  let message = Wire.read_string r in
  let nets = Wire.read_list Wire.read_string r in
  let line = Wire.read_option Wire.read_varint r in
  let hint = Wire.read_option Wire.read_string r in
  { rule; severity; message; nets; line; hint }
