(** Reader and writer for the ISCAS89 `.bench` netlist format.

    Grammar (one statement per line, '#' starts a comment):
    {v
      INPUT(name)
      OUTPUT(name)
      name = DFF(data)
      name = GATE(a, b, ...)      # GATE in AND OR NAND NOR XOR XNOR NOT BUFF
    v}

    Flip-flops become scan cells in file order. Forward references are
    allowed, as in the standard benchmark files. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

(** One parsed statement. Exposed (with {!statements_of_string}) so the lint
    layer can analyse defects a built {!Circuit.t} cannot represent —
    multiply-driven nets, undefined references, combinational cycles — at
    the source level, with line numbers. *)
type statement =
  | St_input of string
  | St_output of string
  | St_dff of string * string  (** (Q net, data net) *)
  | St_gate of string * Gate.kind * string list  (** (target, kind, fanins) *)
  | St_const of string * bool
      (** (target, value). Never produced by the `.bench` parser — the format
          has no constant statement — but part of the shared statement
          vocabulary so source frontends that do have constants (structural
          Verilog tie cells, [assign n = 1'b0]) build circuits through the
          same {!circuit_of_statements} machinery. *)

val statements_of_string : string -> (int * statement) list
(** Tokenize and parse, statement per non-empty line, each paired with its
    1-based line number. Raises [Parse_error] on malformed syntax only
    (unknown keywords, bad arity, bad characters); cross-statement
    consistency is {!circuit_of_statements}'s job. *)

val line_of_net : (int * statement) list -> (string, int) Hashtbl.t
(** Net name → line of its first definition (INPUT, DFF target or gate
    target). The table lint diagnostics use to cite source lines. *)

val circuit_of_statements : name:string -> (int * statement) list -> Circuit.t
(** Build the circuit. Raises [Parse_error] — always carrying the offending
    line — on duplicate definitions and duplicate OUTPUT declarations (with
    both line numbers in the message), on references to undefined nets
    (from a gate, a DFF data pin or an OUTPUT), and on combinational cycles
    through gate definitions. *)

val parse_string : name:string -> string -> Circuit.t
(** [circuit_of_statements ~name (statements_of_string text)]: every
    malformed input, including undefined nets and combinational cycles,
    raises [Parse_error] with its source line. *)

val parse_file : string -> Circuit.t
(** Circuit name is the file's basename without extension. *)

val to_string : Circuit.t -> string
(** Render back to `.bench`. Parsing the result yields a circuit with the
    same structure (net order may canonicalise). *)

val write_file : string -> Circuit.t -> unit
