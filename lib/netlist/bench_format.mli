(** Reader and writer for the ISCAS89 `.bench` netlist format.

    Grammar (one statement per line, '#' starts a comment):
    {v
      INPUT(name)
      OUTPUT(name)
      name = DFF(data)
      name = GATE(a, b, ...)      # GATE in AND OR NAND NOR XOR XNOR NOT BUFF
    v}

    Flip-flops become scan cells in file order. Forward references are
    allowed, as in the standard benchmark files. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse_string : name:string -> string -> Circuit.t
(** Raises [Parse_error] on malformed input — including a duplicate
    definition of a net (by INPUT, a DFF target or a gate target) or a
    duplicate OUTPUT declaration, reported with both line numbers — and
    [Circuit.Build_error] on structural violations (undefined nets,
    combinational cycles). *)

val parse_file : string -> Circuit.t
(** Circuit name is the file's basename without extension. *)

val to_string : Circuit.t -> string
(** Render back to `.bench`. Parsing the result yields a circuit with the
    same structure (net order may canonicalise). *)

val write_file : string -> Circuit.t -> unit
