(** Structural sanity checks on circuits.

    [Circuit.Builder] already guarantees well-formed references and acyclic
    combinational logic; this module adds the checks a DFT flow cares about
    before investing compute in a netlist.

    This is the dependency-light compatibility layer: the full rule-based
    analyser ([Tvs_lint], `tvs lint`) subsumes every issue here — mapping
    them to its stable rule ids TVS-N002..N007 — and adds source-level,
    dataflow and scan-chain rules on top. [check]/[is_clean] keep their
    historical signatures for callers below the lint layer. *)

type issue =
  | Dangling_net of Circuit.net  (** drives nothing and is not an output *)
  | Undriven_output of Circuit.net  (** an output that is a constant *)
  | No_inputs
  | No_observation_points  (** neither outputs nor flip-flops *)
  | Trivial_gate of Circuit.net  (** single-input AND/OR family gate *)
  | Repeated_fanin of Circuit.net * Circuit.net
      (** (gate, net): the gate lists the net more than once — degenerate
          (AND(a,a)) or cancelling (XOR(a,a)) *)

val pp_issue : Circuit.t -> Format.formatter -> issue -> unit

val check : Circuit.t -> issue list
(** All issues found, in net order. An empty list means the circuit is clean
    for test generation. *)

val is_clean : Circuit.t -> bool
