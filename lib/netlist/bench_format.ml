exception Parse_error of int * string

type statement =
  | St_input of string
  | St_output of string
  | St_dff of string * string
  | St_gate of string * Gate.kind * string list
  | St_const of string * bool

let fail line msg = raise (Parse_error (line, msg))

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '[' | ']' | '-' | '$' -> true
  | _ -> false

let split_args s =
  String.split_on_char ',' s |> List.map String.trim |> List.filter (fun a -> a <> "")

(* Parses "HEAD(arg1, arg2, ...)" returning (head, args). *)
let parse_call lineno s =
  match String.index_opt s '(' with
  | None -> fail lineno (Printf.sprintf "expected a call, got %S" s)
  | Some lp ->
      let head = String.trim (String.sub s 0 lp) in
      let len = String.length s in
      if len = 0 || s.[len - 1] <> ')' then fail lineno "missing closing parenthesis";
      let args = String.sub s (lp + 1) (len - lp - 2) in
      (head, split_args args)

let check_ident lineno nm =
  if nm = "" then fail lineno "empty net name";
  String.iter
    (fun c -> if not (is_ident_char c) then fail lineno (Printf.sprintf "bad character %C in name %S" c nm))
    nm

let parse_statement lineno line =
  let line = String.trim (strip_comment line) in
  if line = "" then None
  else
    match String.index_opt line '=' with
    | None -> (
        let head, args = parse_call lineno line in
        match (String.uppercase_ascii head, args) with
        | "INPUT", [ nm ] ->
            check_ident lineno nm;
            Some (St_input nm)
        | "OUTPUT", [ nm ] ->
            check_ident lineno nm;
            Some (St_output nm)
        | ("INPUT" | "OUTPUT"), _ -> fail lineno "INPUT/OUTPUT take exactly one name"
        | _ -> fail lineno (Printf.sprintf "unknown statement %S" head))
    | Some eq ->
        let target = String.trim (String.sub line 0 eq) in
        check_ident lineno target;
        let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
        let head, args = parse_call lineno rhs in
        if String.uppercase_ascii head = "DFF" then
          match args with
          | [ d ] ->
              check_ident lineno d;
              Some (St_dff (target, d))
          | _ -> fail lineno "DFF takes exactly one data net"
        else
          match Gate.of_string head with
          | None -> fail lineno (Printf.sprintf "unknown gate kind %S" head)
          | Some kind ->
              if not (Gate.arity_ok kind (List.length args)) then
                fail lineno
                  (Printf.sprintf "gate %s: invalid arity %d" (Gate.to_string kind)
                     (List.length args));
              List.iter (check_ident lineno) args;
              Some (St_gate (target, kind, args))

let statements_of_string text =
  let statements = ref [] in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         match parse_statement (i + 1) line with
         | Some st -> statements := (i + 1, st) :: !statements
         | None -> ());
  List.rev !statements

let line_of_net numbered =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (lineno, st) ->
      match st with
      | St_input nm | St_dff (nm, _) | St_gate (nm, _, _) | St_const (nm, _) ->
          if not (Hashtbl.mem tbl nm) then Hashtbl.add tbl nm lineno
      | St_output _ -> ())
    numbered;
  tbl

let circuit_of_statements ~name numbered =
  (* Pass 0: reject duplicate definitions up front, with both line numbers.
     Without this, the second definition of a net would either silently race
     pass 2's fixpoint or surface as a context-free [Build_error]; a net is
     defined by INPUT, a DFF target, or a gate target. Duplicate OUTPUT lines
     are rejected too — they would silently duplicate the outputs array. *)
  let defined_at = Hashtbl.create 64 in
  let output_at = Hashtbl.create 16 in
  List.iter
    (fun (lineno, st) ->
      let check_dup tbl what nm =
        match Hashtbl.find_opt tbl nm with
        | Some first ->
            fail lineno
              (Printf.sprintf "duplicate %s of net %S (first defined at line %d)" what nm first)
        | None -> Hashtbl.add tbl nm lineno
      in
      match st with
      | St_input nm | St_dff (nm, _) | St_gate (nm, _, _) | St_const (nm, _) ->
          check_dup defined_at "definition" nm
      | St_output nm -> check_dup output_at "OUTPUT declaration" nm)
    numbered;
  let b = Circuit.Builder.create name in
  (* Pass 1: declare inputs, constants and flip-flops (forward), recording
     definitions. *)
  let defined = Hashtbl.create 64 in
  let declare nm net = Hashtbl.replace defined nm net in
  List.iter
    (fun (_, st) ->
      match st with
      | St_input nm -> declare nm (Circuit.Builder.input b nm)
      | St_const (nm, v) -> declare nm (Circuit.Builder.const b ~name:nm v)
      | St_dff (q, _) -> declare q (Circuit.Builder.flop_forward b q)
      | St_output _ | St_gate _ -> ())
    numbered;
  (* Pass 2: create gates in dependency order (gates may reference later
     gates only through flip-flops in well-formed .bench files, but some
     files do order gates arbitrarily, so iterate until fixpoint). *)
  let gates_left =
    ref
      (List.filter_map
         (function
           | lineno, St_gate (nm, k, ins) -> Some (lineno, nm, k, ins)
           | _, (St_input _ | St_output _ | St_dff _ | St_const _) -> None)
         numbered)
  in
  let progress = ref true in
  while !gates_left <> [] && !progress do
    progress := false;
    let deferred = ref [] in
    List.iter
      (fun ((_, nm, kind, ins) as g) ->
        if List.for_all (Hashtbl.mem defined) ins then begin
          let fanins = List.map (Hashtbl.find defined) ins in
          declare nm (Circuit.Builder.gate b ~name:nm kind fanins);
          progress := true
        end
        else deferred := g :: !deferred)
      !gates_left;
    gates_left := List.rev !deferred
  done;
  (match !gates_left with
  | [] -> ()
  | (lineno, nm, _, ins) :: _ as stalled ->
      (* A stalled fixpoint is either a reference to a name nothing defines,
         or gates defining each other in a combinational cycle — tell them
         apart so the error names the real problem. *)
      let missing = List.filter (fun i -> not (Hashtbl.mem defined i)) ins in
      let undeclared = List.filter (fun i -> not (Hashtbl.mem defined_at i)) missing in
      if undeclared <> [] then
        fail lineno
          (Printf.sprintf "gate %s references undefined net(s): %s" nm
             (String.concat ", " undeclared))
      else
        fail lineno
          (Printf.sprintf "combinational cycle through gate(s): %s"
             (String.concat ", " (List.map (fun (_, g, _, _) -> g) stalled))));
  (* Pass 3: resolve flip-flop data nets and outputs. *)
  List.iter
    (fun (lineno, st) ->
      match st with
      | St_dff (q, d) -> (
          match Hashtbl.find_opt defined d with
          | Some dnet -> Circuit.Builder.connect_flop b (Hashtbl.find defined q) dnet
          | None -> fail lineno (Printf.sprintf "flop %s references undefined net %s" q d))
      | St_output nm -> (
          match Hashtbl.find_opt defined nm with
          | Some net -> Circuit.Builder.mark_output b net
          | None -> fail lineno ("OUTPUT references undefined net " ^ nm))
      | St_input _ | St_gate _ | St_const _ -> ())
    numbered;
  Circuit.Builder.finish b

let parse_string ~name text = circuit_of_statements ~name (statements_of_string text)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let base = Filename.remove_extension (Filename.basename path) in
  parse_string ~name:base text

let to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" (Circuit.name c));
  Array.iter (fun n -> Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Circuit.net_name c n))) (Circuit.inputs c);
  Array.iter (fun n -> Buffer.add_string buf (Printf.sprintf "OUTPUT(%s)\n" (Circuit.net_name c n))) (Circuit.outputs c);
  Buffer.add_char buf '\n';
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.driver c net with
    | Circuit.Primary_input -> ()
    | Circuit.Flip_flop d ->
        Buffer.add_string buf
          (Printf.sprintf "%s = DFF(%s)\n" (Circuit.net_name c net) (Circuit.net_name c d))
    | Circuit.Gate_node (kind, ins) ->
        let args = Array.to_list ins |> List.map (Circuit.net_name c) |> String.concat ", " in
        Buffer.add_string buf
          (Printf.sprintf "%s = %s(%s)\n" (Circuit.net_name c net) (Gate.to_string kind) args)
    | Circuit.Const v ->
        (* .bench has no constant statement; encode as a degenerate gate pair
           driven from itself via XOR/XNOR is unsound, so emit a comment and
           rely on validation rejecting round-trips of constant circuits. *)
        Buffer.add_string buf
          (Printf.sprintf "# CONST %s = %b (not representable in .bench)\n" (Circuit.net_name c net) v)
  done;
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
