type net = int

type driver =
  | Primary_input
  | Flip_flop of net
  | Gate_node of Gate.kind * net array
  | Const of bool

exception Build_error of string

type t = {
  name : string;
  drivers : driver array;
  net_names : string array;
  inputs : net array;
  outputs : net array;
  flops : net array;
  by_name : (string, net) Hashtbl.t;
  fanouts : (net * int) array array;
  output_set : bool array;
  mutable topo : net array option;
  mutable levels : int array option;
  mutable cones : Bytes.t array option;
  mutable cone_sizes : int array option;
  mutable cone_reps : int array option;
}

let name t = t.name
let num_nets t = Array.length t.drivers
let driver t n = t.drivers.(n)
let net_name t n = t.net_names.(n)
let find_net t s =
  match Hashtbl.find_opt t.by_name s with
  | Some n -> n
  | None -> failwith (Printf.sprintf "Circuit.find_net: no net %S in circuit %S" s t.name)
let find_net_opt t s = Hashtbl.find_opt t.by_name s
let inputs t = t.inputs
let outputs t = t.outputs
let flops t = t.flops
let num_inputs t = Array.length t.inputs
let num_outputs t = Array.length t.outputs
let num_flops t = Array.length t.flops
let fanout t n = t.fanouts.(n)
let is_output t n = t.output_set.(n)

let fanins_of = function
  | Primary_input -> [||]
  | Const _ -> [||]
  | Flip_flop d -> [| d |]
  | Gate_node (_, ins) -> ins

let compute_fanouts drivers =
  let n = Array.length drivers in
  let counts = Array.make n 0 in
  let note src = counts.(src) <- counts.(src) + 1 in
  Array.iter (fun d -> Array.iter note (fanins_of d)) drivers;
  let fanouts = Array.map (fun c -> Array.make c (-1, -1)) counts in
  let fill = Array.make n 0 in
  Array.iteri
    (fun sink d ->
      Array.iteri
        (fun pin src ->
          fanouts.(src).(fill.(src)) <- (sink, pin);
          fill.(src) <- fill.(src) + 1)
        (fanins_of d))
    drivers;
  fanouts

(* Kahn's algorithm over the combinational core: flip-flop Q nets and primary
   inputs are sources; a flip-flop's D reference is a sink edge that does not
   feed back combinationally. *)
let compute_topo t =
  let n = num_nets t in
  let indeg = Array.make n 0 in
  let comb_fanins net =
    match t.drivers.(net) with
    | Gate_node (_, ins) -> ins
    | Primary_input | Flip_flop _ | Const _ -> [||]
  in
  for net = 0 to n - 1 do
    indeg.(net) <- Array.length (comb_fanins net)
  done;
  let queue = Queue.create () in
  for net = 0 to n - 1 do
    if indeg.(net) = 0 then Queue.add net queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let net = Queue.pop queue in
    incr seen;
    (match t.drivers.(net) with
    | Gate_node _ | Const _ -> order := net :: !order
    | Primary_input | Flip_flop _ -> ());
    Array.iter
      (fun (sink, _pin) ->
        match t.drivers.(sink) with
        | Gate_node _ ->
            indeg.(sink) <- indeg.(sink) - 1;
            if indeg.(sink) = 0 then Queue.add sink queue
        | Primary_input | Flip_flop _ | Const _ -> ())
      t.fanouts.(net)
  done;
  if !seen <> n then failwith (Printf.sprintf "Circuit %s: combinational cycle detected" t.name);
  Array.of_list (List.rev !order)

let topo_order t =
  match t.topo with
  | Some order -> order
  | None ->
      let order = compute_topo t in
      t.topo <- Some order;
      order

let compute_levels t =
  let lv = Array.make (num_nets t) 0 in
  Array.iter
    (fun net ->
      match t.drivers.(net) with
      | Gate_node (_, ins) ->
          let m = Array.fold_left (fun acc i -> max acc lv.(i)) (-1) ins in
          lv.(net) <- m + 1
      | Const _ | Primary_input | Flip_flop _ -> ())
    (topo_order t);
  lv

let levels t =
  match t.levels with
  | Some lv -> lv
  | None ->
      let lv = compute_levels t in
      t.levels <- Some lv;
      lv

let level t n = (levels t).(n)

let depth t = Array.fold_left max 0 (levels t)

(* --- fanout-cone index ---------------------------------------------- *)

(* The cone of net [n] is the set of nets a value change on [n] can reach
   within one combinational evaluation: [n] itself plus, transitively, every
   gate consuming a cone member. Propagation stops at flip-flop D pins and
   primary outputs (both are observation points, not further combinational
   drivers). Stored as one bitmap per net, each [num_nets] bits wide, built
   in a single reverse-topological union pass and cached on the circuit. *)
let compute_cones t =
  let n = num_nets t in
  let nbytes = (n + 7) / 8 in
  let cones = Array.init n (fun _ -> Bytes.make nbytes '\000') in
  let set_bit bm i =
    Bytes.unsafe_set bm (i lsr 3)
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get bm (i lsr 3)) lor (1 lsl (i land 7))))
  in
  let union dst src =
    for b = 0 to nbytes - 1 do
      Bytes.unsafe_set dst b
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get dst b) lor Char.code (Bytes.unsafe_get src b)))
    done
  in
  let absorb_sinks net =
    set_bit cones.(net) net;
    Array.iter
      (fun (sink, _pin) ->
        match t.drivers.(sink) with
        | Gate_node _ -> union cones.(net) cones.(sink)
        | Primary_input | Flip_flop _ | Const _ -> ())
      t.fanouts.(net)
  in
  (* Gate/const nets in reverse evaluation order: every gate sink's cone is
     complete before its fanins absorb it. *)
  let order = topo_order t in
  for k = Array.length order - 1 downto 0 do
    absorb_sinks order.(k)
  done;
  (* Sources (primary inputs and flip-flop Q nets) only consume gate cones. *)
  for net = 0 to n - 1 do
    match t.drivers.(net) with
    | Primary_input | Flip_flop _ -> absorb_sinks net
    | Gate_node _ | Const _ -> ()
  done;
  cones

let cones t =
  match t.cones with
  | Some c -> c
  | None ->
      let c = compute_cones t in
      t.cones <- Some c;
      c

let cone t n = (cones t).(n)

let in_cone t ~stem n =
  let bm = (cones t).(stem) in
  Char.code (Bytes.unsafe_get bm (n lsr 3)) land (1 lsl (n land 7)) <> 0

let popcount_byte =
  lazy
    (Array.init 256 (fun b ->
         let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
         go b 0))

let cone_size t n =
  let sizes =
    match t.cone_sizes with
    | Some s -> s
    | None ->
        let pop = Lazy.force popcount_byte in
        let s =
          Array.map
            (fun bm ->
              let acc = ref 0 in
              Bytes.iter (fun c -> acc := !acc + pop.(Char.code c)) bm;
              !acc)
            (cones t)
        in
        t.cone_sizes <- Some s;
        s
  in
  sizes.(n)

(* A cheap cone-locality key that needs no bitmaps: the smallest-numbered
   observation point (primary output, or flip-flop identified by its Q net)
   the net reaches. Faults sharing a representative tend to share most of
   their downstream cone, so sorting by it clusters overlapping cones. *)
let compute_cone_reps t =
  let n = num_nets t in
  let inf = max_int in
  let reps = Array.make n inf in
  let observe_at net =
    let own = if t.output_set.(net) then net else inf in
    Array.fold_left
      (fun acc (sink, _pin) ->
        match t.drivers.(sink) with
        | Flip_flop _ -> min acc sink
        | Gate_node _ -> min acc reps.(sink)
        | Primary_input | Const _ -> acc)
      own t.fanouts.(net)
  in
  let order = topo_order t in
  for k = Array.length order - 1 downto 0 do
    let net = order.(k) in
    reps.(net) <- observe_at net
  done;
  for net = 0 to n - 1 do
    match t.drivers.(net) with
    | Primary_input | Flip_flop _ -> reps.(net) <- observe_at net
    | Gate_node _ | Const _ -> ()
  done;
  reps

let cone_rep t n =
  let reps =
    match t.cone_reps with
    | Some r -> r
    | None ->
        let r = compute_cone_reps t in
        t.cone_reps <- Some r;
        r
  in
  reps.(n)

module Builder = struct
  type b = {
    bname : string;
    mutable rev_drivers : driver list;
    mutable count : int;
    names : (string, net) Hashtbl.t;
    mutable rev_names : string list;
    mutable rev_inputs : net list;
    mutable rev_outputs : net list;
    mutable rev_flops : net list;
    pending : (net, unit) Hashtbl.t; (* forward flops awaiting a data net *)
  }

  let create bname =
    {
      bname;
      rev_drivers = [];
      count = 0;
      names = Hashtbl.create 64;
      rev_names = [];
      rev_inputs = [];
      rev_outputs = [];
      rev_flops = [];
      pending = Hashtbl.create 4;
    }

  let fresh b name_opt prefix d =
    let id = b.count in
    let nm = match name_opt with Some nm -> nm | None -> Printf.sprintf "%s%d" prefix id in
    if Hashtbl.mem b.names nm then raise (Build_error (Printf.sprintf "duplicate net name %S" nm));
    Hashtbl.add b.names nm id;
    b.rev_names <- nm :: b.rev_names;
    b.rev_drivers <- d :: b.rev_drivers;
    b.count <- id + 1;
    id

  let check_net b n ctx =
    if n < 0 || n >= b.count then raise (Build_error (Printf.sprintf "%s: unknown net %d" ctx n))

  let input b nm =
    let id = fresh b (Some nm) "" Primary_input in
    b.rev_inputs <- id :: b.rev_inputs;
    id

  let const b ?name v = fresh b name "const" (Const v)

  let gate b ?name kind ins =
    List.iter (fun n -> check_net b n "gate fanin") ins;
    let arr = Array.of_list ins in
    if not (Gate.arity_ok kind (Array.length arr)) then
      raise
        (Build_error
           (Printf.sprintf "gate %s: invalid arity %d" (Gate.to_string kind) (Array.length arr)));
    fresh b name "n" (Gate_node (kind, arr))

  let flop b ?name d =
    check_net b d "flop data";
    let id = fresh b name "ff" (Flip_flop d) in
    b.rev_flops <- id :: b.rev_flops;
    id

  let flop_forward b nm =
    let id = fresh b (Some nm) "" (Flip_flop (-1)) in
    b.rev_flops <- id :: b.rev_flops;
    Hashtbl.replace b.pending id ();
    id

  let connect_flop b q d =
    check_net b d "flop data";
    if not (Hashtbl.mem b.pending q) then
      raise (Build_error (Printf.sprintf "connect_flop: net %d is not a pending flop" q));
    Hashtbl.remove b.pending q;
    (* Drivers are stored reversed: index from the tail. *)
    let idx_from_end = b.count - 1 - q in
    let rec replace i = function
      | [] -> raise (Build_error "connect_flop: internal index error")
      | _ :: rest when i = idx_from_end -> Flip_flop d :: rest
      | d0 :: rest -> d0 :: replace (i + 1) rest
    in
    b.rev_drivers <- replace 0 b.rev_drivers

  let mark_output b n =
    check_net b n "output";
    b.rev_outputs <- n :: b.rev_outputs

  let finish b =
    if Hashtbl.length b.pending > 0 then begin
      let missing =
        Hashtbl.fold (fun q () acc -> string_of_int q :: acc) b.pending []
      in
      raise (Build_error ("unconnected forward flops: " ^ String.concat ", " missing))
    end;
    let drivers = Array.of_list (List.rev b.rev_drivers) in
    let net_names = Array.of_list (List.rev b.rev_names) in
    let outputs = Array.of_list (List.rev b.rev_outputs) in
    let output_set = Array.make (Array.length drivers) false in
    Array.iter (fun n -> output_set.(n) <- true) outputs;
    let t =
      {
        name = b.bname;
        drivers;
        net_names;
        inputs = Array.of_list (List.rev b.rev_inputs);
        outputs;
        flops = Array.of_list (List.rev b.rev_flops);
        by_name = b.names;
        fanouts = compute_fanouts drivers;
        output_set;
        topo = None;
        levels = None;
        cones = None;
        cone_sizes = None;
        cone_reps = None;
      }
    in
    (* Force topo computation now so construction fails fast on cycles. *)
    ignore (topo_order t);
    t
end

(* --- wire codec ------------------------------------------------------- *)

module Wire = Tvs_util.Wire

let kind_tag = function
  | Gate.And -> 0
  | Gate.Nand -> 1
  | Gate.Or -> 2
  | Gate.Nor -> 3
  | Gate.Xor -> 4
  | Gate.Xnor -> 5
  | Gate.Not -> 6
  | Gate.Buf -> 7

let kind_of_tag = function
  | 0 -> Gate.And
  | 1 -> Gate.Nand
  | 2 -> Gate.Or
  | 3 -> Gate.Nor
  | 4 -> Gate.Xor
  | 5 -> Gate.Xnor
  | 6 -> Gate.Not
  | 7 -> Gate.Buf
  | n -> raise (Wire.Error (Printf.sprintf "unknown gate kind tag %d" n))

(* Canonical form: net records in index order (name + driver), then the
   output list. Inputs and flops are recovered from the drivers — their
   arrays hold PI/FF nets in index order by construction — so the encoding
   carries no redundant structure a corrupt file could contradict. *)
let encode w t =
  Wire.write_string w t.name;
  Wire.write_varint w (num_nets t);
  Array.iteri
    (fun net d ->
      Wire.write_string w t.net_names.(net);
      match d with
      | Primary_input -> Wire.write_u8 w 0
      | Flip_flop d ->
          Wire.write_u8 w 1;
          Wire.write_varint w d
      | Gate_node (kind, ins) ->
          Wire.write_u8 w 2;
          Wire.write_u8 w (kind_tag kind);
          Wire.write_array Wire.write_varint w ins
      | Const v ->
          Wire.write_u8 w 3;
          Wire.write_bool w v)
    t.drivers;
  Wire.write_array Wire.write_varint w t.outputs

let decode r =
  try
    let name = Wire.read_string r in
    let n = Wire.read_varint r in
    let b = Builder.create name in
    let pending = ref [] in
    for net = 0 to n - 1 do
      let nm = Wire.read_string r in
      match Wire.read_u8 r with
      | 0 -> ignore (Builder.input b nm)
      | 1 ->
          let d = Wire.read_varint r in
          if d < net then ignore (Builder.flop b ~name:nm d)
          else begin
            (* Forward data reference: connect once every net exists. *)
            let q = Builder.flop_forward b nm in
            pending := (q, d) :: !pending
          end
      | 2 ->
          let kind = kind_of_tag (Wire.read_u8 r) in
          let ins = Wire.read_array Wire.read_varint r in
          ignore (Builder.gate b ~name:nm kind (Array.to_list ins))
      | 3 -> ignore (Builder.const b ~name:nm (Wire.read_bool r))
      | tag -> raise (Wire.Error (Printf.sprintf "unknown driver tag %d for net %d" tag net))
    done;
    List.iter (fun (q, d) -> Builder.connect_flop b q d) !pending;
    Array.iter (Builder.mark_output b) (Wire.read_array Wire.read_varint r);
    Builder.finish b
  with
  | Build_error msg -> raise (Wire.Error ("invalid circuit encoding: " ^ msg))
  | Failure msg -> raise (Wire.Error ("invalid circuit encoding: " ^ msg))

let pp_summary fmt t =
  let gates =
    Array.fold_left
      (fun acc d -> match d with Gate_node _ -> acc + 1 | Primary_input | Flip_flop _ | Const _ -> acc)
      0 t.drivers
  in
  Format.fprintf fmt "%s: %d PI, %d PO, %d FF, %d gates, depth %d" t.name (num_inputs t)
    (num_outputs t) (num_flops t) gates (depth t)
