type issue =
  | Dangling_net of Circuit.net
  | Undriven_output of Circuit.net
  | No_inputs
  | No_observation_points
  | Trivial_gate of Circuit.net
  | Repeated_fanin of Circuit.net * Circuit.net

let pp_issue c fmt = function
  | Dangling_net n -> Format.fprintf fmt "net %s drives nothing and is not an output" (Circuit.net_name c n)
  | Undriven_output n -> Format.fprintf fmt "output %s is a constant" (Circuit.net_name c n)
  | No_inputs -> Format.fprintf fmt "circuit has no primary inputs"
  | No_observation_points -> Format.fprintf fmt "circuit has no outputs and no flip-flops"
  | Trivial_gate n -> Format.fprintf fmt "gate %s has a single input but is not a buffer/inverter" (Circuit.net_name c n)
  | Repeated_fanin (g, f) ->
      Format.fprintf fmt "gate %s lists net %s more than once in its fanin" (Circuit.net_name c g)
        (Circuit.net_name c f)

let check c =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  if Circuit.num_inputs c = 0 then add No_inputs;
  if Circuit.num_outputs c = 0 && Circuit.num_flops c = 0 then add No_observation_points;
  for net = 0 to Circuit.num_nets c - 1 do
    (match Circuit.driver c net with
    | Circuit.Gate_node (kind, ins) ->
        if Array.length ins = 1 then begin
          match kind with
          | Gate.And | Gate.Or | Gate.Nand | Gate.Nor -> add (Trivial_gate net)
          | Gate.Xor | Gate.Xnor | Gate.Not | Gate.Buf -> ()
        end;
        (* One report per gate: the first net that appears twice. A repeated
           fanin is degenerate (AND(a,a) = a) or cancelling (XOR(a,a) = 0)
           and usually a netlist-generation bug. *)
        (try
           let m = Array.length ins in
           for i = 0 to m - 1 do
             for j = i + 1 to m - 1 do
               if ins.(i) = ins.(j) then begin
                 add (Repeated_fanin (net, ins.(i)));
                 raise Exit
               end
             done
           done
         with Exit -> ())
    | Circuit.Const _ -> if Circuit.is_output c net then add (Undriven_output net)
    | Circuit.Primary_input | Circuit.Flip_flop _ -> ());
    if Array.length (Circuit.fanout c net) = 0 && not (Circuit.is_output c net) then
      add (Dangling_net net)
  done;
  List.rev !issues

let is_clean c = check c = []
