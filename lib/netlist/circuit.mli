(** Gate-level circuit intermediate representation.

    A circuit is a set of {e nets}, each driven by exactly one of: a primary
    input, a flip-flop (whose net is the Q output and which references its D
    data net), a logic gate over fanin nets, or a constant. Flip-flops are
    listed in scan-chain order: [flops.(0)] is the cell nearest scan-in,
    [flops.(n-1)] the cell nearest scan-out.

    The {e combinational core} view used throughout the project treats
    primary inputs and flip-flop Q nets as sources, and primary outputs and
    flip-flop D nets as sinks — the standard full-scan abstraction that turns
    sequential test generation into a combinational problem. *)

type net = int
(** Dense net identifier, [0 .. num_nets - 1]. *)

type driver =
  | Primary_input
  | Flip_flop of net  (** argument = the D (data) input net *)
  | Gate_node of Gate.kind * net array
  | Const of bool

type t

val name : t -> string
val num_nets : t -> int
val driver : t -> net -> driver
val net_name : t -> net -> string

val find_net : t -> string -> net
(** Raises [Failure] with the net and circuit names when no such net exists;
    use {!find_net_opt} when absence is expected. *)

val find_net_opt : t -> string -> net option

val inputs : t -> net array
(** Primary inputs. The returned array must not be mutated. *)

val outputs : t -> net array
val flops : t -> net array

val num_inputs : t -> int
val num_outputs : t -> int
val num_flops : t -> int

val fanout : t -> net -> (net * int) array
(** [fanout c n] lists the consumers of net [n] as (consumer net, pin index)
    pairs. A flip-flop consumes its D net at pin 0. Primary-output
    observation is not a fanout entry. *)

val is_output : t -> net -> bool

val topo_order : t -> net array
(** Gate and constant nets of the combinational core in evaluation order
    (every net appears after all its fanins, with primary inputs and
    flip-flop Q nets taken as sources). Computed once and cached.
    Raises [Failure] if the combinational core has a cycle. *)

val level : t -> net -> int
(** Logic depth: 0 for sources and constants, 1 + max of fanin levels for
    gates. *)

val depth : t -> int
(** Maximum level over all nets. *)

val cone : t -> net -> Bytes.t
(** [cone c n] is the fanout cone of net [n] as a bitmap over net ids: [n]
    itself plus every net a value change on [n] can reach combinationally
    (propagation stops at flip-flop D pins and primary outputs). All cones
    are computed once per circuit on first use — an O(nets²/8)-byte index —
    and cached. The returned bytes must not be mutated. *)

val in_cone : t -> stem:net -> net -> bool
(** O(1) cone membership. [in_cone c ~stem n] implies the cone of [n] is a
    subset of the cone of [stem] (combinational reachability is transitive),
    the property the fault simulator's chunk grouping relies on. *)

val cone_size : t -> net -> int
(** Number of nets in the cone, cached alongside the bitmaps. *)

val cone_rep : t -> net -> int
(** A cheap cone-locality key: the smallest-numbered observation point
    (primary-output net, or the Q net of a capturing flip-flop) reachable
    from the net; [max_int] when the net reaches no observation point.
    Computed in O(edges) without the bitmap index — usable on circuits too
    large for {!cone}. *)

exception Build_error of string

(** Imperative construction API. Net names must be unique. Flip-flops may be
    declared before their data net exists ([flop_forward] +
    [connect_flop]). *)
module Builder : sig
  type circuit := t
  type b

  val create : string -> b
  val input : b -> string -> net
  val const : b -> ?name:string -> bool -> net
  val gate : b -> ?name:string -> Gate.kind -> net list -> net
  val flop : b -> ?name:string -> net -> net
  (** [flop b d] declares a flip-flop with data input [d]; returns the Q net.
      Scan order follows declaration order. *)

  val flop_forward : b -> string -> net
  (** Declare a flip-flop whose data net is not known yet; returns Q. *)

  val connect_flop : b -> net -> net -> unit
  (** [connect_flop b q d] resolves a forward-declared flip-flop. *)

  val mark_output : b -> net -> unit
  val finish : b -> circuit
  (** Raises [Build_error] on dangling forward flops or arity violations. *)
end

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: name, #PI, #PO, #FF, #gates. *)

val encode : Tvs_util.Wire.writer -> t -> unit
(** Canonical wire form: net records in index order (name and driver), then
    the output list. The byte form is a function of the circuit structure
    only, so it doubles as the input to content digests. *)

val decode : Tvs_util.Wire.reader -> t
(** Rebuild through {!Builder}, preserving net numbering exactly. Raises
    [Tvs_util.Wire.Error] on truncated input or structural violations
    (unknown tags, dangling references, combinational cycles). *)
