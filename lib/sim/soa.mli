(** Flat structure-of-arrays gate representation shared by both simulation
    engines.

    One contiguous int array per gate field — opcode, inversion word, CSR
    fanin offsets, level, CSR gate-fanout — built once per circuit and then
    only read. A levelized sweep walks [order] touching a handful of parallel
    arrays instead of chasing per-gate records and constructor tags, which
    keeps the hot loops of {!Parallel} and {!Event} in cache.

    The encoding folds the eight netlist gate kinds down to three
    fold operators plus a copy, with negation moved into a per-net inversion
    word ([0] or [Lanes.all_mask]): NAND = AND + invert, NOR = OR + invert,
    XNOR = XOR + invert, NOT = copy + invert. Constant drivers ride the same
    kernel as an empty XOR fold whose inversion word broadcasts the constant,
    so the sweep needs no per-net special cases at all.

    The record is exposed read-only so the engines can index its arrays
    directly on their hot paths; treat every field as immutable. A [t] holds
    no mutable state and may be shared freely across domains. *)

type t = private {
  circuit : Tvs_netlist.Circuit.t;
  order : int array;  (** evaluation order: gate and const nets, topological *)
  op : int array;  (** per net: 0 = AND-fold, 1 = OR-fold, 2 = XOR-fold, 3 = copy *)
  inv : int array;  (** per net: output inversion word, [0] or [Lanes.all_mask] *)
  is_gate : bool array;  (** nets driven by a gate (consts excluded) *)
  level_of : int array;  (** topological level per net *)
  depth : int;  (** max level *)
  fanin_base : int array;  (** CSR offsets into [fanin], length nets+1 *)
  fanin : int array;  (** concatenated fanin nets, pin order *)
  sink_base : int array;  (** CSR offsets into [sink], length nets+1 *)
  sink : int array;  (** concatenated gate-net consumers per net *)
  level_pop : int array;  (** gate population per level (scheduling capacity) *)
  flop_d : int array;  (** D net per flop, scan order *)
  is_po : bool array;  (** nets listed as primary outputs *)
  is_flop : bool array;  (** nets driven by a flip-flop *)
  dflop_base : int array;  (** CSR offsets into [dflop], length nets+1 *)
  dflop : int array;  (** flop nets consuming each net as their D input *)
}

val create : Tvs_netlist.Circuit.t -> t
(** Extract the flat tables from a circuit. O(nets + edges); intended to run
    once per circuit and be shared by every engine context over it. *)

val circuit : t -> Tvs_netlist.Circuit.t

val num_evals : t -> int
(** Evaluations one full sweep performs (length of [order]) — the denominator
    for event-driven skip ratios. *)

val eval : t -> int array -> int -> int
(** [eval t values net] computes [net]'s lane-packed word from [values],
    ignoring branch overrides. Bit-exact with the legacy per-record
    evaluation of the corresponding {!Tvs_netlist.Gate.kind}. *)

val eval_inject : t -> Inject.t -> int array -> int -> int
(** Like {!eval} but reads each fanin through {!Inject.fetch}, honouring
    branch overrides installed against [net] as a sink. *)
