module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate

type injection = {
  lane : int;
  stuck : bool;
  stem : Circuit.net;
  branch : (Circuit.net * int) option;
}

(* Branch overrides live in a CSR-style flat table: slot = pin_base.(sink) +
   pin, one slot per consumer pin in the circuit. Keeps install/clear at a
   handful of array writes per injection — no hashing — which matters because
   both simulators reinstall the override set once per chunk. *)
type t = {
  stem_set : int array;  (* per-net force-to-1 lane masks *)
  stem_clear : int array;  (* per-net force-to-0 lane masks *)
  sink_flagged : bool array;  (* sinks with at least one branch override *)
  pin_base : int array;  (* first slot per sink net *)
  branch_set : int array;  (* per-slot force-to-1 lane masks *)
  branch_clear : int array;  (* per-slot force-to-0 lane masks *)
  mutable touched_stems : Circuit.net list;
  mutable touched_sinks : Circuit.net list;
  mutable touched_slots : int list;
}

let create circuit =
  let n = Circuit.num_nets circuit in
  let pin_base = Array.make (n + 1) 0 in
  for net = 0 to n - 1 do
    let pins =
      match Circuit.driver circuit net with
      | Circuit.Gate_node (_, ins) -> Array.length ins
      | Circuit.Flip_flop _ -> 1  (* consumes its D net at pin 0 *)
      | Circuit.Primary_input | Circuit.Const _ -> 0
    in
    pin_base.(net + 1) <- pin_base.(net) + pins
  done;
  let slots = pin_base.(n) in
  {
    stem_set = Array.make n 0;
    stem_clear = Array.make n 0;
    sink_flagged = Array.make n false;
    pin_base;
    branch_set = Array.make (max slots 1) 0;
    branch_clear = Array.make (max slots 1) 0;
    touched_stems = [];
    touched_sinks = [];
    touched_slots = [];
  }

(* Undo only what the last install touched: time proportional to the
   injection count, independent of circuit size. *)
let clear t =
  List.iter
    (fun n ->
      t.stem_set.(n) <- 0;
      t.stem_clear.(n) <- 0)
    t.touched_stems;
  List.iter (fun n -> t.sink_flagged.(n) <- false) t.touched_sinks;
  List.iter
    (fun slot ->
      t.branch_set.(slot) <- 0;
      t.branch_clear.(slot) <- 0)
    t.touched_slots;
  t.touched_stems <- [];
  t.touched_sinks <- [];
  t.touched_slots <- []

let install t injections =
  List.iter
    (fun inj ->
      if inj.lane < 0 || inj.lane >= Lanes.width then invalid_arg "Parallel.run: lane out of range";
      let bit = Lanes.lane_bit inj.lane in
      match inj.branch with
      | None ->
          if t.stem_set.(inj.stem) = 0 && t.stem_clear.(inj.stem) = 0 then
            t.touched_stems <- inj.stem :: t.touched_stems;
          if inj.stuck then t.stem_set.(inj.stem) <- t.stem_set.(inj.stem) lor bit
          else t.stem_clear.(inj.stem) <- t.stem_clear.(inj.stem) lor bit
      | Some (sink, pin) ->
          let slot = t.pin_base.(sink) + pin in
          if slot >= t.pin_base.(sink + 1) then
            invalid_arg "Parallel.run: branch pin out of range";
          if not t.sink_flagged.(sink) then begin
            t.sink_flagged.(sink) <- true;
            t.touched_sinks <- sink :: t.touched_sinks
          end;
          if t.branch_set.(slot) = 0 && t.branch_clear.(slot) = 0 then
            t.touched_slots <- slot :: t.touched_slots;
          if inj.stuck then t.branch_set.(slot) <- t.branch_set.(slot) lor bit
          else t.branch_clear.(slot) <- t.branch_clear.(slot) lor bit)
    injections

type plan = {
  stems : Circuit.net array;
  stem_set_m : int array;
  stem_clear_m : int array;
  flag_sinks : Circuit.net array;
  slots : int array;
  slot_set_m : int array;
  slot_clear_m : int array;
  branch_stems : Circuit.net array;
  branch_sinks : Circuit.net array;
  branch_pins : int array;
}

(* Reuse [install]'s merge-and-validate logic: install into [t], snapshot the
   touched cells with their merged masks, then undo. [t] is only a scratch
   here — its tables are byte-identical before and after. *)
let compile t injections =
  install t injections;
  let stems = Array.of_list t.touched_stems in
  let plan =
    {
      stems;
      stem_set_m = Array.map (fun n -> t.stem_set.(n)) stems;
      stem_clear_m = Array.map (fun n -> t.stem_clear.(n)) stems;
      flag_sinks = Array.of_list t.touched_sinks;
      slots = Array.of_list t.touched_slots;
      slot_set_m = Array.of_list (List.map (fun s -> t.branch_set.(s)) t.touched_slots);
      slot_clear_m = Array.of_list (List.map (fun s -> t.branch_clear.(s)) t.touched_slots);
      branch_stems =
        Array.of_list
          (List.filter_map (fun i -> Option.map (fun _ -> i.stem) i.branch) injections);
      branch_sinks =
        Array.of_list (List.filter_map (fun i -> Option.map fst i.branch) injections);
      branch_pins =
        Array.of_list (List.filter_map (fun i -> Option.map snd i.branch) injections);
    }
  in
  clear t;
  plan

let install_plan t p =
  let stems = p.stems in
  for i = 0 to Array.length stems - 1 do
    let n = Array.unsafe_get stems i in
    t.stem_set.(n) <- Array.unsafe_get p.stem_set_m i;
    t.stem_clear.(n) <- Array.unsafe_get p.stem_clear_m i
  done;
  Array.iter (fun s -> t.sink_flagged.(s) <- true) p.flag_sinks;
  let slots = p.slots in
  for i = 0 to Array.length slots - 1 do
    let s = Array.unsafe_get slots i in
    t.branch_set.(s) <- Array.unsafe_get p.slot_set_m i;
    t.branch_clear.(s) <- Array.unsafe_get p.slot_clear_m i
  done

let clear_plan t p =
  Array.iter
    (fun n ->
      t.stem_set.(n) <- 0;
      t.stem_clear.(n) <- 0)
    p.stems;
  Array.iter (fun s -> t.sink_flagged.(s) <- false) p.flag_sinks;
  Array.iter
    (fun s ->
      t.branch_set.(s) <- 0;
      t.branch_clear.(s) <- 0)
    p.slots

(* Hot path of both simulators; [net] always comes from the circuit's own
   tables, so the bounds checks are elided. *)
let apply_stem t net v =
  v land lnot (Array.unsafe_get t.stem_clear net) lor Array.unsafe_get t.stem_set net

let sink_flagged t sink = Array.unsafe_get t.sink_flagged sink

let stem_overridden t net = t.stem_set.(net) lor t.stem_clear.(net) <> 0

(* Value of [src] as seen by pin [pin] of consumer [sink]. *)
let fetch t ~values ~sink ~pin src =
  let v : int = values.(src) in
  if t.sink_flagged.(sink) then begin
    let slot = t.pin_base.(sink) + pin in
    v land lnot t.branch_clear.(slot) lor t.branch_set.(slot)
  end
  else v

let eval_gate t ~values sink kind (ins : int array) =
  let n = Array.length ins in
  let fetch_pin pin = fetch t ~values ~sink ~pin ins.(pin) in
  let fold op seed =
    let acc = ref seed in
    for pin = 0 to n - 1 do
      acc := op !acc (fetch_pin pin)
    done;
    !acc
  in
  let v =
    match kind with
    | Gate.And -> fold ( land ) Lanes.all_mask
    | Gate.Nand -> lnot (fold ( land ) Lanes.all_mask)
    | Gate.Or -> fold ( lor ) 0
    | Gate.Nor -> lnot (fold ( lor ) 0)
    | Gate.Xor -> fold ( lxor ) 0
    | Gate.Xnor -> lnot (fold ( lxor ) 0)
    | Gate.Not -> lnot (fetch_pin 0)
    | Gate.Buf -> fetch_pin 0
  in
  v land Lanes.all_mask
