module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Metrics = Tvs_obs.Metrics

(* Work metrics, recorded per run (not per event) so the observation cost is
   amortized over the whole chunk. These run inside pool workers; the
   per-domain shards merge by summation, so totals are identical for every
   jobs value. Baseline adoptions are jobs-dependent by nature (a jobs=1 run
   never adopts), hence unstable. *)
let m_runs = Metrics.counter "sim.event.runs"
let m_events = Metrics.counter "sim.event.events"
let m_gate_evals = Metrics.counter "sim.event.gate_evals"
let m_full_passes = Metrics.counter "sim.event.full_passes"
let m_adoptions = Metrics.counter ~stable:false "sim.event.baseline_adoptions"
let h_disturbed = Metrics.histogram "sim.event.disturbed_nets"

(* Pre-extracted gate table: kind + fanin nets per net, gate-only fanout
   sinks per net. Avoids constructor matches and tuple traffic on the hot
   propagation path. *)
type t = {
  circuit : Circuit.t;
  good : int array;  (* broadcast fault-free value per net, set by set_stimulus *)
  values : int array;  (* working lane-packed values; equal to [good] between runs *)
  ov : Inject.t;
  level_of : int array;
  depth : int;
  is_gate : bool array;
  kind_of : Gate.kind array;  (* valid where is_gate *)
  ins_of : int array array;  (* valid where is_gate; [||] elsewhere *)
  gate_sinks : int array array;  (* fanout sinks that are gate nets *)
  flop_d : int array;  (* D net per flop, scan order *)
  (* Per-level pending stacks, capacity = level population. *)
  bucket : int array array;
  bucket_len : int array;
  scheduled : bool array;
  touched : int array;  (* stack of nets whose value deviates from [good] *)
  mutable touched_len : int;
  num_gates : int;  (* length of the topo order: full-pass evaluation count *)
  mutable good_po : bool array;
  mutable good_capture : bool array;
  mutable stimulus_set : bool;
  mutable last_events : int;  (* net value changes in the last run *)
  mutable last_evals : int;  (* gate evaluations in the last run *)
}

let create circuit =
  let n = Circuit.num_nets circuit in
  let depth = Circuit.depth circuit in
  let level_of = Array.init n (fun net -> Circuit.level circuit net) in
  let is_gate = Array.make n false in
  let kind_of = Array.make n Gate.Buf in
  let ins_of = Array.make n [||] in
  for net = 0 to n - 1 do
    match Circuit.driver circuit net with
    | Circuit.Gate_node (kind, ins) ->
        is_gate.(net) <- true;
        kind_of.(net) <- kind;
        ins_of.(net) <- ins
    | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> ()
  done;
  let gate_sinks =
    Array.init n (fun net ->
        let sinks = Circuit.fanout circuit net in
        let count = Array.fold_left (fun a (s, _) -> if is_gate.(s) then a + 1 else a) 0 sinks in
        let out = Array.make count 0 in
        let k = ref 0 in
        Array.iter
          (fun (s, _) ->
            if is_gate.(s) then begin
              out.(!k) <- s;
              incr k
            end)
          sinks;
        out)
  in
  let flop_d =
    Array.map
      (fun fnet ->
        match Circuit.driver circuit fnet with
        | Circuit.Flip_flop d -> d
        | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ ->
            invalid_arg "Event.create: flop list corrupt")
      (Circuit.flops circuit)
  in
  let level_pop = Array.make (depth + 1) 0 in
  for net = 0 to n - 1 do
    if is_gate.(net) then level_pop.(level_of.(net)) <- level_pop.(level_of.(net)) + 1
  done;
  {
    circuit;
    good = Array.make n 0;
    values = Array.make n 0;
    ov = Inject.create circuit;
    level_of;
    depth;
    is_gate;
    kind_of;
    ins_of;
    gate_sinks;
    flop_d;
    bucket = Array.map (fun cap -> Array.make (max cap 1) 0) level_pop;
    bucket_len = Array.make (depth + 1) 0;
    scheduled = Array.make n false;
    touched = Array.make n 0;
    touched_len = 0;
    num_gates = Array.length (Circuit.topo_order circuit);
    good_po = [||];
    good_capture = [||];
    stimulus_set = false;
    last_events = 0;
    last_evals = 0;
  }

let circuit t = t.circuit
let last_events t = t.last_events
let last_evals t = t.last_evals
let full_evals t = t.num_gates

(* Branch-override-free gate evaluation over lane-packed words. *)
let eval_plain values kind (ins : int array) =
  let n = Array.length ins in
  let v =
    match kind with
    | Gate.And | Gate.Nand ->
        let acc = ref Lanes.all_mask in
        for p = 0 to n - 1 do
          acc := !acc land Array.unsafe_get values (Array.unsafe_get ins p)
        done;
        if kind = Gate.And then !acc else lnot !acc
    | Gate.Or | Gate.Nor ->
        let acc = ref 0 in
        for p = 0 to n - 1 do
          acc := !acc lor Array.unsafe_get values (Array.unsafe_get ins p)
        done;
        if kind = Gate.Or then !acc else lnot !acc
    | Gate.Xor | Gate.Xnor ->
        let acc = ref 0 in
        for p = 0 to n - 1 do
          acc := !acc lxor Array.unsafe_get values (Array.unsafe_get ins p)
        done;
        if kind = Gate.Xor then !acc else lnot !acc
    | Gate.Not -> lnot values.(ins.(0))
    | Gate.Buf -> values.(ins.(0))
  in
  v land Lanes.all_mask

(* One full fault-free pass; every later [run] against this stimulus only
   re-evaluates what its injections actually disturb. *)
let set_stimulus t ~pi ~state =
  let c = t.circuit in
  if Array.length pi <> Circuit.num_inputs c then
    invalid_arg "Event.set_stimulus: pi length mismatch";
  if Array.length state <> Circuit.num_flops c then
    invalid_arg "Event.set_stimulus: state length mismatch";
  (* Ensure no stale overrides or deviations linger from an aborted run. *)
  Inject.clear t.ov;
  for k = 0 to t.touched_len - 1 do
    let net = t.touched.(k) in
    t.values.(net) <- t.good.(net)
  done;
  t.touched_len <- 0;
  Array.iteri (fun i net -> t.good.(net) <- Lanes.broadcast pi.(i)) (Circuit.inputs c);
  Array.iteri (fun i net -> t.good.(net) <- Lanes.broadcast state.(i)) (Circuit.flops c);
  Array.iter
    (fun net ->
      if t.is_gate.(net) then t.good.(net) <- eval_plain t.good t.kind_of.(net) t.ins_of.(net)
      else
        match Circuit.driver c net with
        | Circuit.Const b -> t.good.(net) <- Lanes.broadcast b
        | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Gate_node _ -> ())
    (Circuit.topo_order c);
  Array.blit t.good 0 t.values 0 (Array.length t.good);
  t.good_po <- Array.map (fun net -> t.good.(net) land 1 = 1) (Circuit.outputs c);
  t.good_capture <- Array.map (fun d -> t.good.(d) land 1 = 1) t.flop_d;
  t.stimulus_set <- true;
  Metrics.incr m_full_passes

(* Same contract as [set_stimulus], but the fault-free pass is inherited
   from a sibling context by blitting its baseline — O(nets) copies instead
   of gate evaluations. This is what lets a domain pool evaluate the
   fault-free machine once and fan chunks out to per-domain contexts. *)
let adopt_baseline t ~from =
  if not from.stimulus_set then invalid_arg "Event.adopt_baseline: source has no stimulus";
  if t.circuit != from.circuit then invalid_arg "Event.adopt_baseline: circuit mismatch";
  Inject.clear t.ov;
  for k = 0 to t.touched_len - 1 do
    let net = t.touched.(k) in
    t.values.(net) <- t.good.(net)
  done;
  t.touched_len <- 0;
  Array.blit from.good 0 t.good 0 (Array.length t.good);
  Array.blit t.good 0 t.values 0 (Array.length t.good);
  t.good_po <- Array.copy from.good_po;
  t.good_capture <- Array.copy from.good_capture;
  t.stimulus_set <- true;
  Metrics.incr m_adoptions

let good_po t = t.good_po
let good_capture t = t.good_capture

let schedule t net =
  if not t.scheduled.(net) then begin
    t.scheduled.(net) <- true;
    let lvl = t.level_of.(net) in
    let len = t.bucket_len.(lvl) in
    t.bucket.(lvl).(len) <- net;
    t.bucket_len.(lvl) <- len + 1
  end

(* Commit a (possibly) new value for [net]; fire an event iff it changed. *)
let touch t net v =
  if v <> t.values.(net) then begin
    if t.values.(net) = t.good.(net) then begin
      t.touched.(t.touched_len) <- net;
      t.touched_len <- t.touched_len + 1
    end;
    t.values.(net) <- v;
    t.last_events <- t.last_events + 1;
    let sinks = t.gate_sinks.(net) in
    for s = 0 to Array.length sinks - 1 do
      schedule t sinks.(s)
    done
  end

let run t ?states ~injections () =
  if not t.stimulus_set then invalid_arg "Event.run: set_stimulus first";
  let c = t.circuit in
  t.last_events <- 0;
  t.last_evals <- 0;
  Inject.clear t.ov;
  Inject.install t.ov injections;
  (* Seed 1: per-lane scan states deviating from the broadcast baseline. *)
  (match states with
  | None -> ()
  | Some words ->
      if Array.length words <> Circuit.num_flops c then
        invalid_arg "Event.run: states length mismatch";
      Array.iteri
        (fun i fnet -> touch t fnet (Inject.apply_stem t.ov fnet (words.(i) land Lanes.all_mask)))
        (Circuit.flops c));
  (* Seed 2: injection sites. Stem masks re-read the current value, so
     multiple seeds on one net compose; branch overrides fire their sink. *)
  List.iter
    (fun (inj : Inject.injection) ->
      match inj.branch with
      | None -> touch t inj.stem (Inject.apply_stem t.ov inj.stem t.values.(inj.stem))
      | Some (sink, _pin) -> if t.is_gate.(sink) then schedule t sink)
    injections;
  (* Propagate level by level: a gate's fanins are all at strictly lower
     levels, so each pending gate is evaluated exactly once per run. *)
  for lvl = 0 to t.depth do
    let pending = t.bucket.(lvl) in
    (* [touch] only schedules at higher levels, so this length is final. *)
    let len = t.bucket_len.(lvl) in
    for k = 0 to len - 1 do
      let net = pending.(k) in
      t.scheduled.(net) <- false;
      t.last_evals <- t.last_evals + 1;
      let v =
        if Inject.sink_flagged t.ov net then
          Inject.eval_gate t.ov ~values:t.values net t.kind_of.(net) t.ins_of.(net)
        else eval_plain t.values t.kind_of.(net) t.ins_of.(net)
      in
      touch t net (Inject.apply_stem t.ov net v)
    done;
    t.bucket_len.(lvl) <- 0
  done;
  let po = Array.map (fun net -> t.values.(net)) (Circuit.outputs c) in
  let flops = Circuit.flops c in
  let capture =
    Array.init (Array.length flops) (fun i ->
        Inject.fetch t.ov ~values:t.values ~sink:flops.(i) ~pin:0 t.flop_d.(i))
  in
  Metrics.incr m_runs;
  Metrics.add m_events t.last_events;
  Metrics.add m_gate_evals t.last_evals;
  Metrics.observe h_disturbed t.touched_len;
  (* Roll the working values back to the baseline for the next run. *)
  for k = 0 to t.touched_len - 1 do
    let net = t.touched.(k) in
    t.values.(net) <- t.good.(net)
  done;
  t.touched_len <- 0;
  { Parallel.po; capture }
