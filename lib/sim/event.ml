module Circuit = Tvs_netlist.Circuit
module Metrics = Tvs_obs.Metrics

(* Work metrics, recorded per run (not per event) so the observation cost is
   amortized over the whole chunk. These run inside pool workers; the
   per-domain shards merge by summation, so totals are identical for every
   jobs value. Baseline adoptions are jobs-dependent by nature (a jobs=1 run
   never adopts), hence unstable. *)
let m_runs = Metrics.counter "sim.event.runs"
let m_events = Metrics.counter "sim.event.events"
let m_gate_evals = Metrics.counter "sim.event.gate_evals"
let m_full_passes = Metrics.counter "sim.event.full_passes"
let m_adoptions = Metrics.counter ~stable:false "sim.event.baseline_adoptions"
let h_disturbed = Metrics.histogram "sim.event.disturbed_nets"

(* All static circuit structure lives in the shared flat {!Soa} table; this
   record only owns the mutable per-context scratch. *)
type t = {
  soa : Soa.t;
  good : int array;  (* broadcast fault-free value per net, set by set_stimulus *)
  values : int array;  (* working lane-packed values; equal to [good] between runs *)
  ov : Inject.t;
  (* Per-level pending stacks, capacity = level population. *)
  bucket : int array array;
  bucket_len : int array;
  scheduled : bool array;
  touched : int array;  (* stack of nets whose value deviates from [good] *)
  mutable touched_len : int;
  mutable good_po : bool array;
  mutable good_capture : bool array;
  mutable stimulus_set : bool;
  mutable last_events : int;  (* net value changes in the last run *)
  mutable last_evals : int;  (* gate evaluations in the last run *)
}

let create ?soa circuit =
  let soa =
    match soa with
    | Some s ->
        if Soa.circuit s != circuit then invalid_arg "Event.create: soa built for another circuit";
        s
    | None -> Soa.create circuit
  in
  let n = Circuit.num_nets circuit in
  {
    soa;
    good = Array.make n 0;
    values = Array.make n 0;
    ov = Inject.create circuit;
    bucket = Array.map (fun cap -> Array.make (max cap 1) 0) soa.Soa.level_pop;
    bucket_len = Array.make (soa.Soa.depth + 1) 0;
    scheduled = Array.make n false;
    touched = Array.make n 0;
    touched_len = 0;
    good_po = [||];
    good_capture = [||];
    stimulus_set = false;
    last_events = 0;
    last_evals = 0;
  }

let circuit t = Soa.circuit t.soa
let soa t = t.soa
let last_events t = t.last_events
let last_evals t = t.last_evals
let full_evals t = Soa.num_evals t.soa

(* One full fault-free pass; every later [run] against this stimulus only
   re-evaluates what its injections actually disturb. *)
let set_stimulus t ~pi ~state =
  let c = circuit t in
  if Array.length pi <> Circuit.num_inputs c then
    invalid_arg "Event.set_stimulus: pi length mismatch";
  if Array.length state <> Circuit.num_flops c then
    invalid_arg "Event.set_stimulus: state length mismatch";
  (* Ensure no stale overrides or deviations linger from an aborted run. *)
  Inject.clear t.ov;
  for k = 0 to t.touched_len - 1 do
    let net = t.touched.(k) in
    t.values.(net) <- t.good.(net)
  done;
  t.touched_len <- 0;
  Array.iteri (fun i net -> t.good.(net) <- Lanes.broadcast pi.(i)) (Circuit.inputs c);
  Array.iteri (fun i net -> t.good.(net) <- Lanes.broadcast state.(i)) (Circuit.flops c);
  let soa = t.soa and good = t.good in
  let order = soa.Soa.order in
  (* Consts ride the same kernel (empty XOR fold + inversion word). *)
  for k = 0 to Array.length order - 1 do
    let net = Array.unsafe_get order k in
    Array.unsafe_set good net (Soa.eval soa good net)
  done;
  Array.blit t.good 0 t.values 0 (Array.length t.good);
  t.good_po <- Array.map (fun net -> t.good.(net) land 1 = 1) (Circuit.outputs c);
  t.good_capture <- Array.map (fun d -> t.good.(d) land 1 = 1) soa.Soa.flop_d;
  t.stimulus_set <- true;
  Metrics.incr m_full_passes

(* Same contract as [set_stimulus], but the fault-free pass is inherited
   from a sibling context by blitting its baseline — O(nets) copies instead
   of gate evaluations. This is what lets a domain pool evaluate the
   fault-free machine once and fan chunks out to per-domain contexts. *)
let adopt_baseline t ~from =
  if not from.stimulus_set then invalid_arg "Event.adopt_baseline: source has no stimulus";
  if circuit t != circuit from then invalid_arg "Event.adopt_baseline: circuit mismatch";
  Inject.clear t.ov;
  for k = 0 to t.touched_len - 1 do
    let net = t.touched.(k) in
    t.values.(net) <- t.good.(net)
  done;
  t.touched_len <- 0;
  Array.blit from.good 0 t.good 0 (Array.length t.good);
  Array.blit t.good 0 t.values 0 (Array.length t.good);
  t.good_po <- Array.copy from.good_po;
  t.good_capture <- Array.copy from.good_capture;
  t.stimulus_set <- true;
  Metrics.incr m_adoptions

let good_po t = t.good_po
let good_capture t = t.good_capture

(* Unchecked accesses throughout the event machinery: every index is a net
   or level drawn from the circuit's own CSR tables, and every scratch array
   was sized from the same circuit in [create]. *)
let schedule t net =
  if not (Array.unsafe_get t.scheduled net) then begin
    Array.unsafe_set t.scheduled net true;
    let lvl = Array.unsafe_get t.soa.Soa.level_of net in
    let len = Array.unsafe_get t.bucket_len lvl in
    Array.unsafe_set (Array.unsafe_get t.bucket lvl) len net;
    Array.unsafe_set t.bucket_len lvl (len + 1)
  end

(* Commit a (possibly) new value for [net]; fire an event iff it changed. *)
let touch t net v =
  let old = Array.unsafe_get t.values net in
  if v <> old then begin
    if old = Array.unsafe_get t.good net then begin
      Array.unsafe_set t.touched t.touched_len net;
      t.touched_len <- t.touched_len + 1
    end;
    Array.unsafe_set t.values net v;
    t.last_events <- t.last_events + 1;
    let soa = t.soa in
    let sb = soa.Soa.sink_base in
    for s = Array.unsafe_get sb net to Array.unsafe_get sb (net + 1) - 1 do
      schedule t (Array.unsafe_get soa.Soa.sink s)
    done
  end

let compile t injections = Inject.compile t.ov injections

(* Shared front half of [run] and [run_diff]: install overrides, seed lane
   deviations, and propagate level by level. Leaves the disturbed values, the
   touched stack and the installed overrides in place for the caller to read;
   the caller must undo the overrides with [Inject.clear_plan] before
   [finish]. All validation happens before the install so no exception can
   leave overrides dangling. *)
let propagate t ?states ~(plan : Inject.plan) () =
  if not t.stimulus_set then invalid_arg "Event.run: set_stimulus first";
  let c = circuit t in
  (match states with
  | Some words when Array.length words <> Circuit.num_flops c ->
      invalid_arg "Event.run: states length mismatch"
  | Some _ | None -> ());
  t.last_events <- 0;
  t.last_evals <- 0;
  Inject.install_plan t.ov plan;
  (* Seed 1: per-lane scan states deviating from the broadcast baseline. *)
  (match states with
  | None -> ()
  | Some words ->
      Array.iteri
        (fun i fnet -> touch t fnet (Inject.apply_stem t.ov fnet (words.(i) land Lanes.all_mask)))
        (Circuit.flops c));
  (* Seed 2: injection sites. Stem masks are pre-merged per unique net, so
     one touch per entry covers every lane; branch overrides fire their
     sink (scheduling dedupes, so repeated sinks are free). *)
  let soa = t.soa in
  let stems = plan.Inject.stems in
  for i = 0 to Array.length stems - 1 do
    let s = Array.unsafe_get stems i in
    touch t s (Inject.apply_stem t.ov s t.values.(s))
  done;
  Array.iter
    (fun sink -> if soa.Soa.is_gate.(sink) then schedule t sink)
    plan.Inject.branch_sinks;
  (* Propagate level by level: a gate's fanins are all at strictly lower
     levels, so each pending gate is evaluated exactly once per run. *)
  for lvl = 0 to soa.Soa.depth do
    let pending = t.bucket.(lvl) in
    (* [touch] only schedules at higher levels, so this length is final. *)
    let len = t.bucket_len.(lvl) in
    for k = 0 to len - 1 do
      let net = pending.(k) in
      t.scheduled.(net) <- false;
      t.last_evals <- t.last_evals + 1;
      let v =
        if Inject.sink_flagged t.ov net then Soa.eval_inject soa t.ov t.values net
        else Soa.eval soa t.values net
      in
      touch t net (Inject.apply_stem t.ov net v)
    done;
    t.bucket_len.(lvl) <- 0
  done

(* Shared back half: record work metrics and roll the working values back to
   the baseline for the next run. *)
let finish t =
  Metrics.incr m_runs;
  Metrics.add m_events t.last_events;
  Metrics.add m_gate_evals t.last_evals;
  Metrics.observe h_disturbed t.touched_len;
  for k = 0 to t.touched_len - 1 do
    let net = Array.unsafe_get t.touched k in
    Array.unsafe_set t.values net (Array.unsafe_get t.good net)
  done;
  t.touched_len <- 0

let run t ?states ~plan () =
  propagate t ?states ~plan ();
  let c = circuit t in
  let po = Array.map (fun net -> t.values.(net)) (Circuit.outputs c) in
  let flops = Circuit.flops c in
  let flop_d = t.soa.Soa.flop_d in
  let capture =
    Array.init (Array.length flops) (fun i ->
        Inject.fetch t.ov ~values:t.values ~sink:flops.(i) ~pin:0 flop_d.(i))
  in
  Inject.clear_plan t.ov plan;
  finish t;
  { Parallel.po; capture }

let run_diff t ?states ~(plan : Inject.plan) ~used () =
  propagate t ?states ~plan ();
  let soa = t.soa in
  let diff = ref 0 in
  (* Only disturbed nets can differ from lane 0, so the observability scan is
     O(touched), not O(outputs + flops): a touched net contributes its
     deviation mask once if it is a primary output and once per flop that
     captures it — unless that flop observes its D net through a branch
     override, which can create or cancel a lane deviation and is therefore
     handled explicitly from the injection list below. *)
  for k = 0 to t.touched_len - 1 do
    let net = Array.unsafe_get t.touched k in
    let w = Array.unsafe_get t.values net in
    let d = (w lxor (-(w land 1) land Lanes.all_mask)) land used in
    if d <> 0 then begin
      if Array.unsafe_get soa.Soa.is_po net then diff := !diff lor d;
      let db = soa.Soa.dflop_base in
      for j = Array.unsafe_get db net to Array.unsafe_get db (net + 1) - 1 do
        if not (Inject.sink_flagged t.ov (Array.unsafe_get soa.Soa.dflop j)) then
          diff := !diff lor d
      done
    end
  done;
  let bsinks = plan.Inject.branch_sinks in
  for i = 0 to Array.length bsinks - 1 do
    let sink = Array.unsafe_get bsinks i in
    if soa.Soa.is_flop.(sink) then begin
      let w =
        Inject.fetch t.ov ~values:t.values ~sink ~pin:plan.Inject.branch_pins.(i)
          plan.Inject.branch_stems.(i)
      in
      diff := !diff lor ((w lxor (-(w land 1) land Lanes.all_mask)) land used)
    end
  done;
  Inject.clear_plan t.ov plan;
  finish t;
  !diff
