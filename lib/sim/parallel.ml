module Circuit = Tvs_netlist.Circuit

type injection = Inject.injection = {
  lane : int;
  stuck : bool;
  stem : Circuit.net;
  branch : (Circuit.net * int) option;
}

type result = { po : int array; capture : int array }

type t = {
  soa : Soa.t;
  values : int array;  (* lane-packed value per net *)
  ov : Inject.t;
}

let create ?soa circuit =
  let soa =
    match soa with
    | Some s ->
        if Soa.circuit s != circuit then invalid_arg "Parallel.create: soa built for another circuit";
        s
    | None -> Soa.create circuit
  in
  { soa; values = Array.make (Circuit.num_nets circuit) 0; ov = Inject.create circuit }

let circuit t = Soa.circuit t.soa
let soa t = t.soa

let run t ~pi ~state ~injections =
  let c = circuit t in
  if Array.length pi <> Circuit.num_inputs c then invalid_arg "Parallel.run: pi length mismatch";
  if Array.length state <> Circuit.num_flops c then invalid_arg "Parallel.run: state length mismatch";
  Inject.clear t.ov;
  Inject.install t.ov injections;
  let soa = t.soa and ov = t.ov and values = t.values in
  Array.iteri
    (fun i net -> values.(net) <- Inject.apply_stem ov net (pi.(i) land Lanes.all_mask))
    (Circuit.inputs c);
  Array.iteri
    (fun i net -> values.(net) <- Inject.apply_stem ov net (state.(i) land Lanes.all_mask))
    (Circuit.flops c);
  (* One cache-friendly sweep over the flat order: gate and const nets only,
     every fanin already evaluated. Branch overrides are rare, so the flagged
     check keeps the per-pin fetch off the common path. *)
  let order = soa.Soa.order in
  for k = 0 to Array.length order - 1 do
    let net = Array.unsafe_get order k in
    let v =
      if Inject.sink_flagged ov net then Soa.eval_inject soa ov values net
      else Soa.eval soa values net
    in
    values.(net) <- Inject.apply_stem ov net v
  done;
  let po = Array.map (fun net -> values.(net)) (Circuit.outputs c) in
  let flops = Circuit.flops c in
  let flop_d = soa.Soa.flop_d in
  let capture =
    Array.init (Array.length flops) (fun i ->
        Inject.fetch ov ~values ~sink:flops.(i) ~pin:0 flop_d.(i))
  in
  { po; capture }

let run_single t ~pi ~state =
  let widen arr = Array.map (fun b -> if b then Lanes.all_mask else 0) arr in
  let r = run t ~pi:(widen pi) ~state:(widen state) ~injections:[] in
  (Array.map (fun w -> Lanes.get w 0) r.po, Array.map (fun w -> Lanes.get w 0) r.capture)

let net_values t = t.values
