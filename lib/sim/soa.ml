module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate

(* Opcodes for the folded gate encoding. Negation lives in [inv], so the
   sweep kernels only ever see three fold operators and a copy. *)
let op_and = 0
let op_or = 1
let op_xor = 2
let op_copy = 3

type t = {
  circuit : Circuit.t;
  order : int array;
  op : int array;
  inv : int array;
  is_gate : bool array;
  level_of : int array;
  depth : int;
  fanin_base : int array;
  fanin : int array;
  sink_base : int array;
  sink : int array;
  level_pop : int array;
  flop_d : int array;
  is_po : bool array;
  is_flop : bool array;
  dflop_base : int array;
  dflop : int array;
}

let op_inv_of_kind = function
  | Gate.And -> (op_and, 0)
  | Gate.Nand -> (op_and, Lanes.all_mask)
  | Gate.Or -> (op_or, 0)
  | Gate.Nor -> (op_or, Lanes.all_mask)
  | Gate.Xor -> (op_xor, 0)
  | Gate.Xnor -> (op_xor, Lanes.all_mask)
  | Gate.Buf -> (op_copy, 0)
  | Gate.Not -> (op_copy, Lanes.all_mask)

let create circuit =
  let n = Circuit.num_nets circuit in
  let order = Circuit.topo_order circuit in
  let depth = Circuit.depth circuit in
  let op = Array.make n op_copy in
  let inv = Array.make n 0 in
  let is_gate = Array.make n false in
  let level_of = Array.init n (fun net -> Circuit.level circuit net) in
  let fanin_base = Array.make (n + 1) 0 in
  for net = 0 to n - 1 do
    let pins =
      match Circuit.driver circuit net with
      | Circuit.Gate_node (_, ins) -> Array.length ins
      | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> 0
    in
    fanin_base.(net + 1) <- fanin_base.(net) + pins
  done;
  let fanin = Array.make (max fanin_base.(n) 1) 0 in
  for net = 0 to n - 1 do
    match Circuit.driver circuit net with
    | Circuit.Gate_node (kind, ins) ->
        is_gate.(net) <- true;
        let o, iv = op_inv_of_kind kind in
        op.(net) <- o;
        inv.(net) <- iv;
        Array.iteri (fun p src -> fanin.(fanin_base.(net) + p) <- src) ins
    | Circuit.Const b ->
        (* Empty XOR fold yields 0; the inversion word supplies the
           constant, so consts evaluate through the same kernel as gates. *)
        op.(net) <- op_xor;
        inv.(net) <- Lanes.broadcast b
    | Circuit.Primary_input | Circuit.Flip_flop _ -> ()
  done;
  let sink_base = Array.make (n + 1) 0 in
  for net = 0 to n - 1 do
    let count =
      Array.fold_left
        (fun a (s, _) -> if is_gate.(s) then a + 1 else a)
        0 (Circuit.fanout circuit net)
    in
    sink_base.(net + 1) <- sink_base.(net) + count
  done;
  let sink = Array.make (max sink_base.(n) 1) 0 in
  let fill = Array.copy sink_base in
  for net = 0 to n - 1 do
    Array.iter
      (fun (s, _) ->
        if is_gate.(s) then begin
          sink.(fill.(net)) <- s;
          fill.(net) <- fill.(net) + 1
        end)
      (Circuit.fanout circuit net)
  done;
  let flops = Circuit.flops circuit in
  let flop_d =
    Array.map
      (fun fnet ->
        match Circuit.driver circuit fnet with
        | Circuit.Flip_flop d -> d
        | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ ->
            invalid_arg "Soa.create: flop list corrupt")
      flops
  in
  let is_po = Array.make n false in
  Array.iter (fun net -> is_po.(net) <- true) (Circuit.outputs circuit);
  let is_flop = Array.make n false in
  Array.iter (fun fnet -> is_flop.(fnet) <- true) flops;
  let dflop_base = Array.make (n + 1) 0 in
  let dcount = Array.make n 0 in
  Array.iter (fun d -> dcount.(d) <- dcount.(d) + 1) flop_d;
  for net = 0 to n - 1 do
    dflop_base.(net + 1) <- dflop_base.(net) + dcount.(net)
  done;
  let dflop = Array.make (max dflop_base.(n) 1) 0 in
  let dfill = Array.copy dflop_base in
  Array.iteri
    (fun i d ->
      dflop.(dfill.(d)) <- flops.(i);
      dfill.(d) <- dfill.(d) + 1)
    flop_d;
  let level_pop = Array.make (depth + 1) 0 in
  for net = 0 to n - 1 do
    if is_gate.(net) then level_pop.(level_of.(net)) <- level_pop.(level_of.(net)) + 1
  done;
  {
    circuit;
    order;
    op;
    inv;
    is_gate;
    level_of;
    depth;
    fanin_base;
    fanin;
    sink_base;
    sink;
    level_pop;
    flop_d;
    is_po;
    is_flop;
    dflop_base;
    dflop;
  }

let circuit t = t.circuit
let num_evals t = Array.length t.order

let eval t values net =
  let base = Array.unsafe_get t.fanin_base net in
  let stop = Array.unsafe_get t.fanin_base (net + 1) in
  let v =
    match Array.unsafe_get t.op net with
    | 0 ->
        let acc = ref Lanes.all_mask in
        for p = base to stop - 1 do
          acc := !acc land Array.unsafe_get values (Array.unsafe_get t.fanin p)
        done;
        !acc
    | 1 ->
        let acc = ref 0 in
        for p = base to stop - 1 do
          acc := !acc lor Array.unsafe_get values (Array.unsafe_get t.fanin p)
        done;
        !acc
    | 2 ->
        let acc = ref 0 in
        for p = base to stop - 1 do
          acc := !acc lxor Array.unsafe_get values (Array.unsafe_get t.fanin p)
        done;
        !acc
    | _ -> Array.unsafe_get values (Array.unsafe_get t.fanin base)
  in
  (v lxor Array.unsafe_get t.inv net) land Lanes.all_mask

let eval_inject t ov values net =
  let base = t.fanin_base.(net) in
  let stop = t.fanin_base.(net + 1) in
  let v =
    match t.op.(net) with
    | 0 ->
        let acc = ref Lanes.all_mask in
        for p = base to stop - 1 do
          acc := !acc land Inject.fetch ov ~values ~sink:net ~pin:(p - base) t.fanin.(p)
        done;
        !acc
    | 1 ->
        let acc = ref 0 in
        for p = base to stop - 1 do
          acc := !acc lor Inject.fetch ov ~values ~sink:net ~pin:(p - base) t.fanin.(p)
        done;
        !acc
    | 2 ->
        let acc = ref 0 in
        for p = base to stop - 1 do
          acc := !acc lxor Inject.fetch ov ~values ~sink:net ~pin:(p - base) t.fanin.(p)
        done;
        !acc
    | _ -> Inject.fetch ov ~values ~sink:net ~pin:0 t.fanin.(base)
  in
  (v lxor t.inv.(net)) land Lanes.all_mask
