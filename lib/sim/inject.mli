(** Per-lane stuck-at override machinery shared by the packed simulators
    ({!Parallel}, full broadcast, and {!Event}, cone-restricted).

    An override set maps stem faults to per-net force-to-0/1 lane masks and
    fanout-branch faults to per-(sink, pin) masks. The structure is reusable:
    {!clear} undoes exactly what the previous {!install} touched, in time
    proportional to the injection count, keeping array and hash-table
    capacity across batch chunks. *)

type injection = {
  lane : int;  (** lane carrying the faulty machine *)
  stuck : bool;  (** stuck-at value *)
  stem : Tvs_netlist.Circuit.net;  (** the faulted net *)
  branch : (Tvs_netlist.Circuit.net * int) option;
      (** [None] = stem fault; [Some (sink, pin)] = fanout-branch fault
          visible only to that consumer pin. *)
}

type t

val create : Tvs_netlist.Circuit.t -> t
(** All overrides initially empty. The circuit fixes the branch-slot layout
    (one slot per consumer pin). *)

val clear : t -> unit
val install : t -> injection list -> unit
(** Raises [Invalid_argument] on a lane outside [0, Lanes.width) or a branch
    pin outside the sink's fanin range. *)

type plan = private {
  stems : Tvs_netlist.Circuit.net array;  (** unique stem-faulted nets *)
  stem_set_m : int array;  (** merged force-to-1 mask per entry of [stems] *)
  stem_clear_m : int array;  (** merged force-to-0 mask per entry of [stems] *)
  flag_sinks : Tvs_netlist.Circuit.net array;  (** unique branch-override sinks *)
  slots : int array;  (** unique overridden (sink, pin) slots *)
  slot_set_m : int array;
  slot_clear_m : int array;
  branch_stems : Tvs_netlist.Circuit.net array;  (** one row per branch injection *)
  branch_sinks : Tvs_netlist.Circuit.net array;
  branch_pins : int array;
}
(** A compiled injection list: the exact override-table writes an {!install}
    of the list would perform, deduplicated and with lane masks pre-merged.
    Compiling once and replaying with {!install_plan}/{!clear_plan} turns the
    per-run injection cost from a list walk with per-entry allocation and
    validation into a few dozen array writes — the difference dominates
    event-driven screening, where cone activity is small but every chunk of
    every vector reinstalls the same 62 overrides. Immutable after
    {!compile}; safe to share read-only across domains. *)

val compile : t -> injection list -> plan
(** Validates like {!install} (raising [Invalid_argument] on a bad lane or
    pin) and leaves [t]'s override tables unchanged. *)

val install_plan : t -> plan -> unit
(** Requires [t] to hold no overrides (the state {!clear}/{!clear_plan}
    leave behind); callers must pair every [install_plan] with a
    {!clear_plan} of the same plan. *)

val clear_plan : t -> plan -> unit

val apply_stem : t -> Tvs_netlist.Circuit.net -> int -> int
(** Apply the net's stem force masks to a lane-packed value. *)

val stem_overridden : t -> Tvs_netlist.Circuit.net -> bool

val sink_flagged : t -> Tvs_netlist.Circuit.net -> bool
(** Whether the sink has at least one branch override installed — the guard
    for taking the slower per-pin {!fetch} path when evaluating its gate. *)

val fetch : t -> values:int array -> sink:Tvs_netlist.Circuit.net -> pin:int -> Tvs_netlist.Circuit.net -> int
(** Value of a source net as seen by one consumer pin (branch overrides
    applied). *)

val eval_gate :
  t -> values:int array -> Tvs_netlist.Circuit.net -> Tvs_netlist.Gate.kind -> int array -> int
(** Evaluate one gate over lane-packed fanin values, honouring branch
    overrides on the gate's pins. The stem masks of the output net are NOT
    applied — callers compose with {!apply_stem}. *)
