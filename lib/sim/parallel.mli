(** Word-parallel levelized simulation of the combinational core with
    per-lane stuck-at fault injection.

    Each machine word carries {!Lanes.width} independent machines. Lanes may
    differ in {e stimulus} (per-lane primary-input and scan-state bits) and in
    {e injected fault}; both are needed by the stitching engine, where every
    hidden fault evolves its own scan state and therefore applies its own
    mutated vector.

    This engine is the project's substitute for the HOPE parallel fault
    simulator. *)

type injection = Inject.injection = {
  lane : int;  (** lane carrying the faulty machine, [1 <= lane < Lanes.width] in typical use *)
  stuck : bool;  (** stuck-at value *)
  stem : Tvs_netlist.Circuit.net;  (** the faulted net *)
  branch : (Tvs_netlist.Circuit.net * int) option;
      (** [None] = stem fault (all consumers and observation see it);
          [Some (sink, pin)] = fanout-branch fault visible only to that
          consumer pin. *)
}

type result = {
  po : int array;  (** word per primary output, lane-packed *)
  capture : int array;  (** word per flip-flop: the captured next state *)
}

type t
(** Reusable simulation context (pre-allocated net-value arrays) for one
    circuit. Not thread-safe. *)

val create : ?soa:Soa.t -> Tvs_netlist.Circuit.t -> t
(** [?soa] supplies a pre-built flat gate table (it must wrap the same
    circuit, physically); when omitted one is built. Sharing one {!Soa.t}
    across the contexts of a fan-out avoids rebuilding the tables per slot.

    Raises [Invalid_argument] if [soa] wraps a different circuit. *)

val circuit : t -> Tvs_netlist.Circuit.t

val soa : t -> Soa.t
(** The flat gate table this context sweeps over (shared, read-only). *)

val run : t -> pi:int array -> state:int array -> injections:injection list -> result
(** [run t ~pi ~state ~injections] evaluates the combinational core once.
    [pi] has one lane-packed word per primary input, [state] one word per
    flip-flop (scan order). Lanes not mentioned by any injection behave as
    fault-free machines under their own stimulus.

    Raises [Invalid_argument] on dimension mismatches. *)

val run_single : t -> pi:bool array -> state:bool array -> (bool array * bool array)
(** Fault-free single-machine convenience wrapper; returns (po, capture). *)

val net_values : t -> int array
(** Lane-packed value of every net after the last [run] (valid until the next
    call). Exposed for observability analysis and tests. *)
