(** Event-driven, cone-restricted counterpart of {!Parallel}.

    The fault-free (broadcast) evaluation of a stimulus is done once, by
    {!set_stimulus}; each subsequent {!run} seeds lane events only at its
    injection sites (and at scan-state words that deviate from the broadcast
    baseline) and re-evaluates only the gates those events actually reach —
    i.e. work is proportional to the disturbed part of the fault cones, not
    to circuit size. Results are bit-exact with {!Parallel.run} on the same
    stimulus and injections.

    The win comes from amortizing: one [set_stimulus] serves every fault
    chunk of a batch, so per-chunk cost collapses from O(gates) to O(cone
    activity). Not thread-safe. *)

type t

val create : Tvs_netlist.Circuit.t -> t
val circuit : t -> Tvs_netlist.Circuit.t

val set_stimulus : t -> pi:bool array -> state:bool array -> unit
(** Evaluate the fault-free machine once for a single-machine stimulus and
    cache it as the baseline for subsequent {!run} calls. One bool per
    primary input / flip-flop.

    Raises [Invalid_argument] on dimension mismatches. *)

val adopt_baseline : t -> from:t -> unit
(** [adopt_baseline t ~from] installs [from]'s current baseline (its last
    {!set_stimulus}) into [t] by copying the cached fault-free net values —
    O(nets) blits, no gate evaluations. Both contexts must wrap the same
    circuit, and [from] must have a stimulus set. After the call, {!run} on
    [t] behaves exactly as on [from]; [from] is not modified and may keep
    running concurrently in another domain (its baseline is only read). *)

val good_po : t -> bool array
(** Fault-free primary-output response of the current stimulus. Fresh arrays
    per {!set_stimulus}; callers may retain them. *)

val good_capture : t -> bool array
(** Fault-free captured next state of the current stimulus. *)

val run :
  t -> ?states:int array -> injections:Inject.injection list -> unit -> Parallel.result
(** [run t ~injections ()] simulates the installed faults against the
    baseline stimulus (every lane sees the {!set_stimulus} vector).
    [?states] optionally supplies lane-packed per-flop scan words replacing
    the baseline state — used when hidden faults evolve divergent states;
    lane 0 must then carry the baseline (good) state.

    Raises [Invalid_argument] if no stimulus is set or on dimension / lane
    range errors. *)

val last_events : t -> int
(** Net-value changes fired by the last {!run}. *)

val last_evals : t -> int
(** Gate evaluations performed by the last {!run}. *)

val full_evals : t -> int
(** Gate evaluations a full broadcast pass would perform (topo-order
    length) — the denominator for skip ratios. *)
