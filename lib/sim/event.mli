(** Event-driven, cone-restricted counterpart of {!Parallel}.

    The fault-free (broadcast) evaluation of a stimulus is done once, by
    {!set_stimulus}; each subsequent {!run} seeds lane events only at its
    injection sites (and at scan-state words that deviate from the broadcast
    baseline) and re-evaluates only the gates those events actually reach —
    i.e. work is proportional to the disturbed part of the fault cones, not
    to circuit size. Results are bit-exact with {!Parallel.run} on the same
    stimulus and injections.

    The win comes from amortizing: one [set_stimulus] serves every fault
    chunk of a batch, so per-chunk cost collapses from O(gates) to O(cone
    activity). Not thread-safe. *)

type t

val create : ?soa:Soa.t -> Tvs_netlist.Circuit.t -> t
(** [?soa] supplies a pre-built flat gate table (it must wrap the same
    circuit, physically); when omitted one is built. Sharing one {!Soa.t}
    across the contexts of a fan-out avoids rebuilding the tables per slot.

    Raises [Invalid_argument] if [soa] wraps a different circuit. *)

val circuit : t -> Tvs_netlist.Circuit.t

val soa : t -> Soa.t
(** The flat gate table this context sweeps over (shared, read-only). *)

val set_stimulus : t -> pi:bool array -> state:bool array -> unit
(** Evaluate the fault-free machine once for a single-machine stimulus and
    cache it as the baseline for subsequent {!run} calls. One bool per
    primary input / flip-flop.

    Raises [Invalid_argument] on dimension mismatches. *)

val adopt_baseline : t -> from:t -> unit
(** [adopt_baseline t ~from] installs [from]'s current baseline (its last
    {!set_stimulus}) into [t] by copying the cached fault-free net values —
    O(nets) blits, no gate evaluations. Both contexts must wrap the same
    circuit, and [from] must have a stimulus set. After the call, {!run} on
    [t] behaves exactly as on [from]; [from] is not modified and may keep
    running concurrently in another domain (its baseline is only read). *)

val good_po : t -> bool array
(** Fault-free primary-output response of the current stimulus. Fresh arrays
    per {!set_stimulus}; callers may retain them. *)

val good_capture : t -> bool array
(** Fault-free captured next state of the current stimulus. *)

val compile : t -> Inject.injection list -> Inject.plan
(** {!Inject.compile} against this context's override tables: validates the
    list once and pre-merges its lane masks. The returned plan is immutable
    and shared freely across sibling contexts of the same circuit — compile
    on the submitter, run on any pool slot. *)

val run : t -> ?states:int array -> plan:Inject.plan -> unit -> Parallel.result
(** [run t ~plan ()] simulates the compiled faults against the baseline
    stimulus (every lane sees the {!set_stimulus} vector). [?states]
    optionally supplies lane-packed per-flop scan words replacing the
    baseline state — used when hidden faults evolve divergent states; lane 0
    must then carry the baseline (good) state.

    Raises [Invalid_argument] if no stimulus is set or on dimension
    mismatches. *)

val run_diff : t -> ?states:int array -> plan:Inject.plan -> used:int -> unit -> int
(** [run_diff t ~plan ~used ()] simulates exactly like {!run} but
    returns only the lane-difference mask: the OR, over every primary output
    and every captured next-state bit, of [(word lxor broadcast(lane0)) land
    used]. A set bit at lane [l] means lane [l]'s machine is distinguishable
    from the fault-free lane 0 at some observation point — precisely the
    detection criterion used by screening.

    Equivalent to running {!run} and folding the result through the lane
    difference masks, but allocation-free: the observability scan walks only
    the disturbed nets, so its cost follows cone activity rather than the
    output and flop counts. *)

val last_events : t -> int
(** Net-value changes fired by the last {!run}. *)

val last_evals : t -> int
(** Gate evaluations performed by the last {!run}. *)

val full_evals : t -> int
(** Gate evaluations a full broadcast pass would perform (topo-order
    length) — the denominator for skip ratios. *)
