module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Sat = Tvs_util.Sat

type t = {
  left : Circuit.t;
  right : Circuit.t;
  canon : (Circuit.net * bool) array;  (* left net -> signed structural representative *)
  source_map : int array;
  subst : (Circuit.net * bool) option array;
  tie_left : (int, bool) Hashtbl.t;
  tie_right : (int, bool) Hashtbl.t;
  mutable nvars : int;
  mutable clauses : int list list;
  lvar : int array;  (* left representative net -> CNF variable, 0 = not yet encoded *)
  rlit : int array;  (* right net -> CNF literal, 0 = not yet encoded *)
  mutable decision : int list;  (* source variables, reverse allocation order *)
}

let create ~left ~right ~canon ~source_map ~subst ~tie_left ~tie_right () =
  if Array.length canon <> Circuit.num_nets left then invalid_arg "Miter.create: canon length";
  if Array.length source_map <> Circuit.num_nets right then
    invalid_arg "Miter.create: source_map length";
  if Array.length subst <> Circuit.num_nets right then invalid_arg "Miter.create: subst length";
  let tl = Hashtbl.create 8 and tr = Hashtbl.create 8 in
  List.iter (fun (n, v) -> Hashtbl.replace tl n v) tie_left;
  List.iter (fun (n, v) -> Hashtbl.replace tr n v) tie_right;
  {
    left;
    right;
    canon;
    source_map;
    subst;
    tie_left = tl;
    tie_right = tr;
    nvars = 0;
    clauses = [];
    lvar = Array.make (Circuit.num_nets left) 0;
    rlit = Array.make (Circuit.num_nets right) 0;
    decision = [];
  }

let fresh t =
  t.nvars <- t.nvars + 1;
  t.nvars

let add t clause = t.clauses <- clause :: t.clauses

(* out <-> AND(ins); NAND/OR/NOR fall out by negating literals. *)
let encode_and t out ins =
  List.iter (fun i -> add t [ -out; i ]) ins;
  add t (out :: List.map (fun i -> -i) ins)

let encode_or t out ins =
  List.iter (fun i -> add t [ out; -i ]) ins;
  add t (-out :: ins)

let encode_xor2 t out a c =
  add t [ -out; a; c ];
  add t [ -out; -a; -c ];
  add t [ out; -a; c ];
  add t [ out; a; -c ]

let encode_equal t x y =
  add t [ -x; y ];
  add t [ x; -y ]

let encode_xor t out = function
  | [] -> invalid_arg "Miter: empty xor"
  | [ single ] -> encode_equal t out single
  | first :: rest ->
      let acc =
        List.fold_left
          (fun acc i ->
            let aux = fresh t in
            encode_xor2 t aux acc i;
            aux)
          first rest
      in
      encode_equal t out acc

let encode_gate t ~out kind ins =
  match kind with
  | Gate.And -> encode_and t out ins
  | Gate.Nand -> encode_and t (-out) ins
  | Gate.Or -> encode_or t out ins
  | Gate.Nor -> encode_or t (-out) ins
  | Gate.Xor -> encode_xor t out ins
  | Gate.Xnor -> encode_xor t (-out) ins
  | Gate.Buf -> (
      match ins with [ i ] -> encode_equal t out i | _ -> invalid_arg "Miter: BUF arity")
  | Gate.Not -> (
      match ins with [ i ] -> encode_equal t (-out) i | _ -> invalid_arg "Miter: NOT arity")

let tie_clause t v = function
  | Some b -> add t [ (if b then v else -v) ]
  | None -> ()

(* Iterative post-order cone encoding: push [(n, false)] to visit, pop and
   re-push as [(n, true)] once the fanins are queued, encode on the [true]
   pop (fanins are then guaranteed encoded — diamonds are skipped by the
   already-encoded guard).

   Left nets are encoded through [canon]: only structural representatives
   get variables, a BUF/NOT chain or duplicate gate borrows its
   representative's literal (with the canon phase folded in). Equivalent
   left nets thereby share one CNF variable, which is what lets a final
   output miter over a substituted right cone collapse by unit propagation
   instead of needing a full cone proof. *)
let lit_left t net =
  let rep0, ph0 = t.canon.(net) in
  let signed ph v = if ph then -v else v in
  if t.lvar.(rep0) <> 0 then signed ph0 t.lvar.(rep0)
  else begin
    let stack = ref [ (rep0, false) ] in
    let pop () =
      match !stack with
      | [] -> None
      | hd :: rest ->
          stack := rest;
          Some hd
    in
    let continue = ref true in
    while !continue do
      match pop () with
      | None -> continue := false
      | Some (n, ready) ->
          (* [n] is always a representative: canon forwards BUF/NOT chains
             and duplicate gates, so their cones are never encoded. *)
          if t.lvar.(n) = 0 then begin
            match Circuit.driver t.left n with
            | Circuit.Gate_node (kind, ins) ->
                if ready then begin
                  let v = fresh t in
                  t.lvar.(n) <- v;
                  encode_gate t ~out:v kind
                    (Array.to_list
                       (Array.map
                          (fun i ->
                            let ri, pi = t.canon.(i) in
                            signed pi t.lvar.(ri))
                          ins))
                end
                else begin
                  stack := (n, true) :: !stack;
                  Array.iter
                    (fun i ->
                      let ri, _ = t.canon.(i) in
                      if t.lvar.(ri) = 0 then stack := (ri, false) :: !stack)
                    ins
                end
            | Circuit.Primary_input | Circuit.Flip_flop _ ->
                let v = fresh t in
                t.lvar.(n) <- v;
                t.decision <- v :: t.decision;
                tie_clause t v (Hashtbl.find_opt t.tie_left n)
            | Circuit.Const b ->
                let v = fresh t in
                t.lvar.(n) <- v;
                add t [ (if b then v else -v) ]
          end
    done;
    signed ph0 t.lvar.(rep0)
  end

let lit_right t net =
  if t.rlit.(net) <> 0 then t.rlit.(net)
  else begin
    let stack = ref [ (net, false) ] in
    let pop () =
      match !stack with
      | [] -> None
      | hd :: rest ->
          stack := rest;
          Some hd
    in
    let continue = ref true in
    while !continue do
      match pop () with
      | None -> continue := false
      | Some (n, ready) ->
          if t.rlit.(n) = 0 then
            if t.source_map.(n) >= 0 then begin
              (* Matched source: share the left variable; a tie registered on
                 the right name pins the shared variable. *)
              let v = lit_left t t.source_map.(n) in
              t.rlit.(n) <- v;
              tie_clause t v (Hashtbl.find_opt t.tie_right n)
            end
            else begin
              match t.subst.(n) with
              | Some (l, negated) ->
                  let v = lit_left t l in
                  t.rlit.(n) <- (if negated then -v else v)
              | None -> (
                  match Circuit.driver t.right n with
                  | Circuit.Gate_node (kind, ins) ->
                      if ready then begin
                        let v = fresh t in
                        t.rlit.(n) <- v;
                        encode_gate t ~out:v kind
                          (Array.to_list (Array.map (fun i -> t.rlit.(i)) ins))
                      end
                      else begin
                        stack := (n, true) :: !stack;
                        Array.iter
                          (fun i -> if t.rlit.(i) = 0 then stack := (i, false) :: !stack)
                          ins
                      end
                  | Circuit.Primary_input | Circuit.Flip_flop _ ->
                      let v = fresh t in
                      t.rlit.(n) <- v;
                      t.decision <- v :: t.decision;
                      tie_clause t v (Hashtbl.find_opt t.tie_right n)
                  | Circuit.Const b ->
                      let v = fresh t in
                      t.rlit.(n) <- v;
                      add t [ (if b then v else -v) ])
            end
    done;
    t.rlit.(net)
  end

type verdict = Proven | Refuted of bool array | Undecided

let check_pair t ~budget ~left ~right ~phase =
  let gl = lit_left t left in
  let rl = lit_right t right in
  let rl = if phase then -rl else rl in
  let d = fresh t in
  encode_xor2 t d gl rl;
  add t [ d ];
  (* Decide variables in reverse allocation order: the XOR difference and
     the miter-adjacent gate variables first, the cone sources last. For
     near-identical cones (the common case after sweeping) the difference
     variables conflict within a few decisions; deciding sources first
     would force the solver to enumerate the whole input cone before unit
     propagation can even reach the point of disagreement. *)
  let decision_order = List.init t.nvars (fun i -> t.nvars - i) in
  match Sat.solve_stats ~decision_order ~max_decisions:budget ~nvars:t.nvars t.clauses with
  | Sat.Unsat, stats -> (Proven, stats)
  | Sat.Sat model, stats -> (Refuted model, stats)
  | Sat.Unknown, stats -> (Undecided, stats)

let lit_value model lit = if lit > 0 then model.(lit) else not model.(-lit)

let left_value t model net =
  let rep, ph = t.canon.(net) in
  let v = t.lvar.(rep) in
  if v <> 0 then model.(v) <> ph
  else match Hashtbl.find_opt t.tie_left net with Some b -> b | None -> false

let right_value t model net =
  let lit = t.rlit.(net) in
  if lit <> 0 then lit_value model lit
  else if t.source_map.(net) >= 0 then left_value t model t.source_map.(net)
  else match Hashtbl.find_opt t.tie_right net with Some b -> b | None -> false
