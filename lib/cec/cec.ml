module Circuit = Tvs_netlist.Circuit
module Sat = Tvs_util.Sat
module Pool = Tvs_util.Pool
module Rng = Tvs_util.Rng
module Wire = Tvs_util.Wire
module Lanes = Tvs_sim.Lanes
module Parallel = Tvs_sim.Parallel
module Cache = Tvs_store.Cache
module Store_digest = Tvs_store.Digest
module Metrics = Tvs_obs.Metrics
module Json = Tvs_obs.Json

exception Mismatch of string

let err fmt = Printf.ksprintf (fun m -> raise (Mismatch m)) fmt

type tie = { name : string; value : bool }

type options = { vectors : int; budget : int; ties : tie list; conventions : bool }

let default_options = { vectors = 8; budget = 200_000; ties = []; conventions = true }

type point = Po of string | Capture of string

let point_kind = function Po _ -> "po" | Capture _ -> "ff"
let point_target = function Po s -> s | Capture s -> s
let point_label p = point_kind p ^ " " ^ point_target p

type counterexample = {
  point : point;
  left_pi : bool array;
  left_state : bool array;
  right_pi : bool array;
  right_state : bool array;
  left_value : bool;
  right_value : bool;
}

type verdict = Equivalent | Inequivalent of counterexample | Unknown of point list

type result = {
  left : string;
  right : string;
  verdict : verdict;
  matched_pis : int;
  matched_flops : int;
  matched_pos : int;
  ties : tie list;
  free_inputs : string list;
  extra_outputs : string list;
  extra_flops : string list;
  classes : int;
  proved : int;
  sat_calls : int;
  decisions : int;
  propagations : int;
  cached : bool;
}

let points r = r.matched_pos + r.matched_flops

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)

let m_checks = Metrics.counter "cec.checks"
let m_equivalent = Metrics.counter "cec.verdict.equivalent"
let m_inequivalent = Metrics.counter "cec.verdict.inequivalent"
let m_unknown = Metrics.counter "cec.verdict.unknown"
let m_points = Metrics.counter "cec.points"
let m_classes = Metrics.counter "cec.sweep.classes"
let m_proved = Metrics.counter "cec.sweep.proved"
let m_sat_calls = Metrics.counter "cec.sat.calls"
let m_sat_decisions = Metrics.counter "cec.sat.decisions"
let m_sat_propagations = Metrics.counter "cec.sat.propagations"

(* Cache traffic legitimately varies across runs, like store.cache.*. *)
let m_cached = Metrics.counter ~stable:false "cec.cached"

(* ------------------------------------------------------------------ *)
(* Interface matching                                                 *)

type matching = {
  source_map : int array;  (* right net -> matched left source net, -1 *)
  po_pairs : (int * int * int) array;  (* (left po net, right po net, right po index) *)
  po_names : string array;
  ff_pairs : (int * int * int) array;  (* (left D net, right D net, right flop index) *)
  ff_names : string array;
  tie_left : (int * bool) list;
  tie_right : (int * bool) list;
  applied_ties : tie list;
  free_inputs : string list;
  extra_outputs : string list;
  extra_flops : string list;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* Pin conventions of the repo's own transforms: scan insertion adds the
   scan_en/scan_in mode pins and the scan_out_tap observation output; TPI
   adds tpi_ctl_* control inputs (transparent at 0), tpi_po_* taps and
   tpi_obs_* observe cells. Recognized extras keep inclusion checking
   honest without a hand-written name map for every gate in CI. *)
let convention_tie name = name = "scan_en" || starts_with ~prefix:"tpi_ctl_" name

let build_matching ~(options : options) left right =
  let lname = Circuit.name left and rname = Circuit.name right in
  let source_map = Array.make (Circuit.num_nets right) (-1) in
  (* Primary inputs, by name. *)
  Array.iter
    (fun l ->
      let nm = Circuit.net_name left l in
      match Circuit.find_net_opt right nm with
      | Some r when Circuit.driver right r = Circuit.Primary_input -> source_map.(r) <- l
      | Some _ -> err "input %s of %s is not a primary input in %s" nm lname rname
      | None -> err "primary input %s of %s is missing from %s" nm lname rname)
    (Circuit.inputs left);
  (* Flip-flops, by name: Q nets are pseudo-PIs, D nets pseudo-POs. *)
  let ff_pairs = ref [] and ff_names = ref [] in
  Array.iter
    (fun lq ->
      let nm = Circuit.net_name left lq in
      match Circuit.find_net_opt right nm with
      | Some rq -> (
          match (Circuit.driver left lq, Circuit.driver right rq) with
          | Circuit.Flip_flop ld, Circuit.Flip_flop rd ->
              source_map.(rq) <- lq;
              let rpos = ref (-1) in
              Array.iteri (fun i q -> if q = rq then rpos := i) (Circuit.flops right);
              ff_pairs := (ld, rd, !rpos) :: !ff_pairs;
              ff_names := nm :: !ff_names
          | _ -> err "flip-flop %s of %s is not a flip-flop in %s" nm lname rname)
      | None -> err "flip-flop %s of %s is missing from %s" nm lname rname)
    (Circuit.flops left);
  (* Primary outputs, by name (inclusion: extra right outputs allowed). *)
  let po_pairs = ref [] and po_names = ref [] in
  Array.iter
    (fun lo ->
      let nm = Circuit.net_name left lo in
      match Circuit.find_net_opt right nm with
      | Some ro when Circuit.is_output right ro ->
          let rpos = ref (-1) in
          Array.iteri (fun i o -> if o = ro then rpos := i) (Circuit.outputs right);
          po_pairs := (lo, ro, !rpos) :: !po_pairs;
          po_names := nm :: !po_names
      | Some _ -> err "output %s of %s is not an output in %s" nm lname rname
      | None -> err "primary output %s of %s is missing from %s" nm lname rname)
    (Circuit.outputs left);
  if !po_pairs = [] && !ff_pairs = [] then
    err "%s and %s share no observation point (no outputs, no flip-flops)" lname rname;
  (* User ties, by name, on whichever side resolves (matched sources tie the
     shared variable through the left net). *)
  let tie_left = ref [] and tie_right = ref [] and applied = ref [] in
  let user_tied = Hashtbl.create 8 in
  List.iter
    (fun t ->
      if Hashtbl.mem user_tied t.name then err "tie %s given twice" t.name;
      Hashtbl.add user_tied t.name ();
      let source c n =
        match Circuit.driver c n with
        | Circuit.Primary_input | Circuit.Flip_flop _ -> true
        | _ -> false
      in
      match Circuit.find_net_opt right t.name with
      | Some r when source right r ->
          if source_map.(r) >= 0 then tie_left := (source_map.(r), t.value) :: !tie_left
          else tie_right := (r, t.value) :: !tie_right;
          applied := t :: !applied
      | _ -> (
          match Circuit.find_net_opt left t.name with
          | Some l when source left l ->
              tie_left := (l, t.value) :: !tie_left;
              applied := t :: !applied
          | _ -> err "tie %s names no input of %s or %s" t.name lname rname))
    options.ties;
  (* Unmatched right inputs: convention pins tie to 0, the rest stay free
     (sound — the proof then covers every value they can take). *)
  let free = ref [] in
  Array.iter
    (fun r ->
      if source_map.(r) < 0 then begin
        let nm = Circuit.net_name right r in
        if Hashtbl.mem user_tied nm then ()
        else if options.conventions && convention_tie nm then begin
          tie_right := (r, false) :: !tie_right;
          applied := { name = nm; value = false } :: !applied
        end
        else free := nm :: !free
      end)
    (Circuit.inputs right);
  let extra_flops = ref [] in
  Array.iter
    (fun rq -> if source_map.(rq) < 0 then extra_flops := Circuit.net_name right rq :: !extra_flops)
    (Circuit.flops right);
  let matched_po = Hashtbl.create 16 in
  List.iter (fun (_, ro, _) -> Hashtbl.replace matched_po ro ()) !po_pairs;
  let extra_outputs = ref [] in
  Array.iter
    (fun ro -> if not (Hashtbl.mem matched_po ro) then extra_outputs := Circuit.net_name right ro :: !extra_outputs)
    (Circuit.outputs right);
  {
    source_map;
    po_pairs = Array.of_list (List.rev !po_pairs);
    po_names = Array.of_list (List.rev !po_names);
    ff_pairs = Array.of_list (List.rev !ff_pairs);
    ff_names = Array.of_list (List.rev !ff_names);
    tie_left = !tie_left;
    tie_right = !tie_right;
    applied_ties = List.sort (fun a b -> compare a.name b.name) !applied;
    free_inputs = List.rev !free;
    extra_outputs = List.rev !extra_outputs;
    extra_flops = List.rev !extra_flops;
  }

(* ------------------------------------------------------------------ *)
(* Random-simulation signatures and candidate classes                 *)

(* Signature of every net over [rounds] lane-packed words, canonicalized so
   a net and its complement land in the same class: the phase flag records
   whether the stored words are the complement of the simulated ones. *)
let canonicalize words =
  if words.(0) land 1 = 0 then (words, false)
  else (Array.map (fun w -> lnot w land Lanes.all_mask) words, true)

let sig_key words =
  let b = Buffer.create (Array.length words * 9) in
  Array.iter (fun w -> Buffer.add_string b (string_of_int w ^ ",")) words;
  Buffer.contents b

let simulate ~(options : options) ~m left right =
  let rounds = max 1 options.vectors in
  let nl = Circuit.num_nets left and nr = Circuit.num_nets right in
  let sig_l = Array.make_matrix nl rounds 0 and sig_r = Array.make_matrix nr rounds 0 in
  let pl = Parallel.create left and pr = Parallel.create right in
  let rng = Rng.of_string ("cec:" ^ Circuit.name left ^ ":" ^ Circuit.name right) in
  let word () = Int64.to_int (Rng.next_int64 rng) land Lanes.all_mask in
  let tie_l = Hashtbl.create 8 and tie_r = Hashtbl.create 8 in
  List.iter (fun (n, v) -> Hashtbl.replace tie_l n v) m.tie_left;
  List.iter (fun (n, v) -> Hashtbl.replace tie_r n v) m.tie_right;
  let left_words = Array.make nl 0 in
  let draw_left n =
    let w =
      match Hashtbl.find_opt tie_l n with Some b -> Lanes.broadcast b | None -> word ()
    in
    left_words.(n) <- w;
    w
  in
  let draw_right n =
    if m.source_map.(n) >= 0 then left_words.(m.source_map.(n))
    else match Hashtbl.find_opt tie_r n with Some b -> Lanes.broadcast b | None -> word ()
  in
  for round = 0 to rounds - 1 do
    let lpi = Array.map draw_left (Circuit.inputs left) in
    let lstate = Array.map draw_left (Circuit.flops left) in
    let rpi = Array.map draw_right (Circuit.inputs right) in
    let rstate = Array.map draw_right (Circuit.flops right) in
    ignore (Parallel.run pl ~pi:lpi ~state:lstate ~injections:[]);
    let nv = Parallel.net_values pl in
    for n = 0 to nl - 1 do
      sig_l.(n).(round) <- nv.(n)
    done;
    ignore (Parallel.run pr ~pi:rpi ~state:rstate ~injections:[]);
    let nv = Parallel.net_values pr in
    for n = 0 to nr - 1 do
      sig_r.(n).(round) <- nv.(n)
    done
  done;
  (sig_l, sig_r)

(* Structural hashing, the cheap front half of the sweep.

   The left circuit is first self-hashed into signed canonical
   representatives: BUF forwards, NOT negates, and two gates of the same
   kind over the same canonical fanin literals share one representative
   (XOR/XNOR additionally normalise fanin negations into an output parity).
   Duplicate left gates thereby collapse onto a single net — essential,
   because a right-side copy substituted onto the "wrong" duplicate would
   otherwise break the structural chain for its entire fanout cone.

   A right gate whose fanins all resolve into canonical left literals
   (matched sources or earlier substitutions) then matches a left
   representative by table lookup — same kind over the same literals
   computes the same function, no solver needed. This proves the untouched
   bulk of a transformed netlist outright, leaving SAT for the genuinely
   rewritten spots; without it, the per-output miter of two identical wide
   cones is exponential for a chronological DPLL. *)
type skey = K of Tvs_netlist.Gate.kind * int list | X of int list

let signed_lit (l, neg) = if neg then -(l + 1) else l + 1

let struct_key kind signed =
  match kind with
  | Tvs_netlist.Gate.And | Tvs_netlist.Gate.Nand | Tvs_netlist.Gate.Or | Tvs_netlist.Gate.Nor
    ->
      Some (K (kind, List.sort compare (List.map signed_lit signed)), false)
  | Tvs_netlist.Gate.Xor | Tvs_netlist.Gate.Xnor ->
      let parity =
        List.fold_left
          (fun p (_, neg) -> if neg then not p else p)
          (kind = Tvs_netlist.Gate.Xnor) signed
      in
      Some (X (List.sort compare (List.map fst signed)), parity)
  | Tvs_netlist.Gate.Buf | Tvs_netlist.Gate.Not -> None

let struct_match ~canon ~tbl ~m ~subst right r =
  match Circuit.driver right r with
  | Circuit.Gate_node (kind, ins) -> (
      let map f =
        if m.source_map.(f) >= 0 then Some canon.(m.source_map.(f)) else subst.(f)
      in
      let rec all acc = function
        | [] -> Some (List.rev acc)
        | f :: rest -> ( match map f with Some s -> all (s :: acc) rest | None -> None)
      in
      match all [] (Array.to_list ins) with
      | None -> None
      | Some signed -> (
          match (kind, signed) with
          | Tvs_netlist.Gate.Buf, [ s ] -> Some s
          | Tvs_netlist.Gate.Not, [ (l, p) ] -> Some (l, not p)
          | _ -> (
              match struct_key kind signed with
              | None -> None
              | Some (key, parity) -> (
                  match Hashtbl.find_opt tbl key with
                  | Some (rep, rep_parity) ->
                      (* the table entry may itself have been merged into
                         another representative by the left self-sweep *)
                      let rep', p' = canon.(rep) in
                      Some (rep', p' <> rep_parity <> parity)
                  | None -> None))))
  | _ -> None

(* SAT-sweep the internal nets, in two passes over one signature space.

   Pass one self-sweeps the left circuit: structurally distinct left nets
   that random simulation puts in one class and a cone-local SAT proof
   confirms equal are merged into one canonical representative. This is
   what keeps the per-point miters cheap when a transformation re-expresses
   an output in terms of a *different but equivalent* left cone — without
   the merge, the final miter would have to prove two full left cones equal
   under the whole budget.

   Pass two walks the right circuit: structural matches substitute for
   free, and every remaining right gate net whose signature class contains
   a left net is a candidate; an UNSAT cone-local miter promotes the pair
   into the substitution table, shrinking every later cone. *)
let sweep ~(options : options) ~m left right sig_l sig_r =
  let budget = max 2_000 (options.budget / 100) in
  let index = Hashtbl.create 256 in
  let add_candidate n (words : int array array) =
    let canon, phase = canonicalize words.(n) in
    let key = sig_key canon in
    let prior = try Hashtbl.find index key with Not_found -> [] in
    if List.length prior < 4 then Hashtbl.replace index key (prior @ [ (n, phase) ])
  in
  Array.iter (fun n -> add_candidate n sig_l) (Circuit.inputs left);
  Array.iter (fun n -> add_candidate n sig_l) (Circuit.flops left);
  Array.iter (fun n -> add_candidate n sig_l) (Circuit.topo_order left);
  let subst = Array.make (Circuit.num_nets right) None in
  let classes = Hashtbl.create 64 in
  let proved = ref 0 and calls = ref 0 and decisions = ref 0 and propagations = ref 0 in
  let count (st : Sat.stats) =
    incr calls;
    decisions := !decisions + st.Sat.decisions;
    propagations := !propagations + st.Sat.propagations
  in
  (* Pass one: canonicalize the left circuit. One topological walk folds
     BUF/NOT chains, collapses structural duplicates (same kind over the
     same canonical fanin literals), and — where structure alone does not
     close the gap — merges signature-class members confirmed equal by a
     cone-local SAT proof. Structural keys are computed over the *merged*
     fanin space, so a SAT merge upstream immediately re-enables structural
     collapsing downstream. Every canon entry written here points at a
     final representative (candidates are never re-merged), so consumers
     resolve in one step. [selfsubst] lets a proof miter borrow the
     already-encoded canonical literal for every fanin, so each attempt
     encodes exactly one new gate on its right side. *)
  let nl = Circuit.num_nets left in
  let canon = Array.init nl (fun i -> (i, false)) in
  let struct_tbl = Hashtbl.create 256 in
  let id_source_map =
    Array.init nl (fun n ->
        match Circuit.driver left n with
        | Circuit.Primary_input | Circuit.Flip_flop _ -> n
        | Circuit.Gate_node _ | Circuit.Const _ -> -1)
  in
  let selfsubst = Array.make nl None in
  let lindex = Hashtbl.create 256 in
  let class_of n =
    let words, phase = canonicalize sig_l.(n) in
    (sig_key words, phase)
  in
  let add_rep n =
    let key, phase = class_of n in
    let prior = try Hashtbl.find lindex key with Not_found -> [] in
    if List.length prior < 4 then Hashtbl.replace lindex key (prior @ [ (n, phase) ])
  in
  Array.iter add_rep (Circuit.inputs left);
  Array.iter add_rep (Circuit.flops left);
  Array.iter
    (fun g ->
      (match Circuit.driver left g with
      | Circuit.Gate_node (kind, ins) -> (
          let signed = List.map (fun f -> canon.(f)) (Array.to_list ins) in
          (match (kind, signed) with
          | Tvs_netlist.Gate.Buf, [ s ] -> canon.(g) <- s
          | Tvs_netlist.Gate.Not, [ (l, p) ] -> canon.(g) <- (l, not p)
          | _ -> (
              match struct_key kind signed with
              | None -> ()
              | Some (key, parity) -> (
                  match Hashtbl.find_opt struct_tbl key with
                  | Some (rep, rep_parity) ->
                      let rep', p' = canon.(rep) in
                      canon.(g) <- (rep', p' <> rep_parity <> parity)
                  | None -> Hashtbl.add struct_tbl key (g, parity))));
          if fst canon.(g) = g then begin
            let key, phase_g = class_of g in
            (match Hashtbl.find_opt lindex key with
            | None -> ()
            | Some candidates ->
                Hashtbl.replace classes key ();
                let tried = ref 0 in
                List.iter
                  (fun (l, phase_l) ->
                    if fst canon.(g) = g && l <> g && !tried < 2 then begin
                      incr tried;
                      let miter =
                        Miter.create ~left ~right:left ~canon ~source_map:id_source_map
                          ~subst:selfsubst ~tie_left:m.tie_left ~tie_right:m.tie_left ()
                      in
                      let phase = phase_l <> phase_g in
                      let v, st = Miter.check_pair miter ~budget ~left:l ~right:g ~phase in
                      count st;
                      match v with
                      | Miter.Proven ->
                          canon.(g) <- (l, phase);
                          incr proved
                      | Miter.Refuted _ | Miter.Undecided -> ()
                    end)
                  candidates);
            if fst canon.(g) = g then add_rep g
          end)
      | _ -> ());
      selfsubst.(g) <- Some canon.(g))
    (Circuit.topo_order left);
  (* Pass two: sweep the right circuit against the merged left space. *)
  Array.iter
    (fun r ->
      match Circuit.driver right r with
      | Circuit.Gate_node _ when m.source_map.(r) < 0 -> (
          match struct_match ~canon ~tbl:struct_tbl ~m ~subst right r with
          | Some (l, phase) ->
              subst.(r) <- Some (l, phase);
              incr proved
          | None -> (
              let words, phase_r = canonicalize sig_r.(r) in
              let key = sig_key words in
              match Hashtbl.find_opt index key with
              | None -> ()
              | Some candidates ->
                  Hashtbl.replace classes key ();
                  let tried = ref 0 in
                  List.iter
                    (fun (l, phase_l) ->
                      if subst.(r) = None && !tried < 2 then begin
                        incr tried;
                        let miter =
                          Miter.create ~left ~right ~canon ~source_map:m.source_map ~subst
                            ~tie_left:m.tie_left ~tie_right:m.tie_right ()
                        in
                        let phase = phase_l <> phase_r in
                        let v, st = Miter.check_pair miter ~budget ~left:l ~right:r ~phase in
                        incr calls;
                        decisions := !decisions + st.Sat.decisions;
                        propagations := !propagations + st.Sat.propagations;
                        match v with
                        | Miter.Proven ->
                            (* store canonically so downstream structural
                               matches keep resolving *)
                            let rep, rep_phase = canon.(l) in
                            subst.(r) <- Some (rep, rep_phase <> phase);
                            incr proved
                        | Miter.Refuted _ | Miter.Undecided -> ()
                      end)
                    candidates))
      | _ -> ())
    (Circuit.topo_order right);
  (canon, subst, Hashtbl.length classes, !proved, !calls, !decisions, !propagations)

(* ------------------------------------------------------------------ *)
(* Per-output miters                                                  *)

type output_check = O_equal | O_diff of counterexample | O_undecided

let observation_points m =
  Array.append
    (Array.mapi (fun i nm -> (Po nm, m.po_pairs.(i))) m.po_names)
    (Array.mapi (fun i nm -> (Capture nm, m.ff_pairs.(i))) m.ff_names)

let check_point ~(options : options) ~m ~canon ~subst left right (pt, (lnet, rnet, _)) =
  let miter =
    Miter.create ~left ~right ~canon ~source_map:m.source_map ~subst ~tie_left:m.tie_left
      ~tie_right:m.tie_right ()
  in
  let v, st = Miter.check_pair miter ~budget:options.budget ~left:lnet ~right:rnet ~phase:false in
  let check =
    match v with
    | Miter.Proven -> O_equal
    | Miter.Undecided -> O_undecided
    | Miter.Refuted model ->
        O_diff
          {
            point = pt;
            left_pi = Array.map (Miter.left_value miter model) (Circuit.inputs left);
            left_state = Array.map (Miter.left_value miter model) (Circuit.flops left);
            right_pi = Array.map (Miter.right_value miter model) (Circuit.inputs right);
            right_state = Array.map (Miter.right_value miter model) (Circuit.flops right);
            left_value = Miter.left_value miter model lnet;
            right_value = Miter.right_value miter model rnet;
          }
  in
  (check, st)

(* Replay a counterexample through both word-parallel simulators; a vector
   the simulators do not confirm means a solver or encoder bug, and must
   never be reported as a verdict. *)
let replay_confirms left right m cex =
  let value c pi state pt =
    let sim = Parallel.create c in
    let po, capture = Parallel.run_single sim ~pi ~state in
    match pt with
    | `Po i -> po.(i)
    | `Ff i -> capture.(i)
  in
  let lpt, rpt =
    match cex.point with
    | Po nm ->
        let li = ref (-1) in
        Array.iteri (fun i n -> if Circuit.net_name left n = nm then li := i) (Circuit.outputs left);
        let ri = ref (-1) in
        Array.iteri (fun i (_, _, rpos) -> if m.po_names.(i) = nm then ri := rpos) m.po_pairs;
        (`Po !li, `Po !ri)
    | Capture nm ->
        let li = ref (-1) in
        Array.iteri (fun i n -> if Circuit.net_name left n = nm then li := i) (Circuit.flops left);
        let ri = ref (-1) in
        Array.iteri (fun i (_, _, rpos) -> if m.ff_names.(i) = nm then ri := rpos) m.ff_pairs;
        (`Ff !li, `Ff !ri)
  in
  let lv = value left cex.left_pi cex.left_state lpt in
  let rv = value right cex.right_pi cex.right_state rpt in
  lv = cex.left_value && rv = cex.right_value && lv <> rv

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)

let cache_kind = "CEQV"
let schema_version = 1

let options_digest o =
  Store_digest.of_encoding (fun w ->
      Wire.write_varint w schema_version;
      Wire.write_varint w o.vectors;
      Wire.write_varint w o.budget;
      Wire.write_bool w o.conventions;
      let ties = List.sort (fun a b -> compare a.name b.name) o.ties in
      Wire.write_list
        (fun w t ->
          Wire.write_string w t.name;
          Wire.write_bool w t.value)
        w ties)

let check_key ~options left right =
  Store_digest.combine
    (Store_digest.circuit left)
    (Store_digest.combine (Store_digest.circuit right) (options_digest options))

let encode_point w = function
  | Po s ->
      Wire.write_u8 w 0;
      Wire.write_string w s
  | Capture s ->
      Wire.write_u8 w 1;
      Wire.write_string w s

let decode_point r =
  match Wire.read_u8 r with
  | 0 -> Po (Wire.read_string r)
  | 1 -> Capture (Wire.read_string r)
  | k -> raise (Wire.Error (Printf.sprintf "bad observation-point tag %d" k))

let encode_tie w t =
  Wire.write_string w t.name;
  Wire.write_bool w t.value

let decode_tie r =
  let name = Wire.read_string r in
  { name; value = Wire.read_bool r }

let encode_result w r =
  Wire.write_string w r.left;
  Wire.write_string w r.right;
  (match r.verdict with
  | Equivalent -> Wire.write_u8 w 0
  | Inequivalent cex ->
      Wire.write_u8 w 1;
      encode_point w cex.point;
      Wire.write_bool_array w cex.left_pi;
      Wire.write_bool_array w cex.left_state;
      Wire.write_bool_array w cex.right_pi;
      Wire.write_bool_array w cex.right_state;
      Wire.write_bool w cex.left_value;
      Wire.write_bool w cex.right_value
  | Unknown pts ->
      Wire.write_u8 w 2;
      Wire.write_list encode_point w pts);
  Wire.write_varint w r.matched_pis;
  Wire.write_varint w r.matched_flops;
  Wire.write_varint w r.matched_pos;
  Wire.write_list encode_tie w r.ties;
  Wire.write_list Wire.write_string w r.free_inputs;
  Wire.write_list Wire.write_string w r.extra_outputs;
  Wire.write_list Wire.write_string w r.extra_flops;
  Wire.write_varint w r.classes;
  Wire.write_varint w r.proved;
  Wire.write_varint w r.sat_calls;
  Wire.write_varint w r.decisions;
  Wire.write_varint w r.propagations

let decode_result r =
  let left = Wire.read_string r in
  let right = Wire.read_string r in
  let verdict =
    match Wire.read_u8 r with
    | 0 -> Equivalent
    | 1 ->
        let point = decode_point r in
        let left_pi = Wire.read_bool_array r in
        let left_state = Wire.read_bool_array r in
        let right_pi = Wire.read_bool_array r in
        let right_state = Wire.read_bool_array r in
        let left_value = Wire.read_bool r in
        let right_value = Wire.read_bool r in
        Inequivalent { point; left_pi; left_state; right_pi; right_state; left_value; right_value }
    | 2 -> Unknown (Wire.read_list decode_point r)
    | k -> raise (Wire.Error (Printf.sprintf "bad verdict tag %d" k))
  in
  let matched_pis = Wire.read_varint r in
  let matched_flops = Wire.read_varint r in
  let matched_pos = Wire.read_varint r in
  let ties = Wire.read_list decode_tie r in
  let free_inputs = Wire.read_list Wire.read_string r in
  let extra_outputs = Wire.read_list Wire.read_string r in
  let extra_flops = Wire.read_list Wire.read_string r in
  let classes = Wire.read_varint r in
  let proved = Wire.read_varint r in
  let sat_calls = Wire.read_varint r in
  let decisions = Wire.read_varint r in
  let propagations = Wire.read_varint r in
  {
    left;
    right;
    verdict;
    matched_pis;
    matched_flops;
    matched_pos;
    ties;
    free_inputs;
    extra_outputs;
    extra_flops;
    classes;
    proved;
    sat_calls;
    decisions;
    propagations;
    cached = true;
  }

(* ------------------------------------------------------------------ *)
(* Top-level check                                                    *)

let count_verdict = function
  | Equivalent -> Metrics.incr m_equivalent
  | Inequivalent _ -> Metrics.incr m_inequivalent
  | Unknown _ -> Metrics.incr m_unknown

let compute ~options ~jobs left right =
  let m = build_matching ~options left right in
  let sig_l, sig_r = simulate ~options ~m left right in
  let canon, subst, classes, proved, s_calls, s_decisions, s_propagations =
    sweep ~options ~m left right sig_l sig_r
  in
  let pts = observation_points m in
  let n = Array.length pts in
  (* Phase B: independent cone-local miters, one per observation point,
     fanned across the domain pool. The merge below reads the slot array in
     index order, so the verdict — including which counterexample is
     reported — is identical at every [jobs]. *)
  let pool = Pool.shared ~jobs in
  let checks =
    Pool.parallel_map_chunks pool ~n (fun ~slot:_ i ->
        check_point ~options ~m ~canon ~subst left right pts.(i))
  in
  let calls = ref s_calls and decisions = ref s_decisions and propagations = ref s_propagations in
  Array.iter
    (fun (_, st) ->
      incr calls;
      decisions := !decisions + st.Sat.decisions;
      propagations := !propagations + st.Sat.propagations)
    checks;
  let first_diff = ref None and undecided = ref [] in
  Array.iteri
    (fun i (check, _) ->
      match check with
      | O_equal -> ()
      | O_undecided -> undecided := fst pts.(i) :: !undecided
      | O_diff cex -> if !first_diff = None then first_diff := Some cex)
    checks;
  let verdict =
    match !first_diff with
    | Some cex ->
        if not (replay_confirms left right m cex) then
          failwith "tvs_cec: counterexample not confirmed by simulation (solver/encoder bug)";
        Inequivalent cex
    | None -> if !undecided = [] then Equivalent else Unknown (List.rev !undecided)
  in
  {
    left = Circuit.name left;
    right = Circuit.name right;
    verdict;
    matched_pis = Circuit.num_inputs left;
    matched_flops = Circuit.num_flops left;
    matched_pos = Circuit.num_outputs left;
    ties = m.applied_ties;
    free_inputs = m.free_inputs;
    extra_outputs = m.extra_outputs;
    extra_flops = m.extra_flops;
    classes;
    proved;
    sat_calls = !calls;
    decisions = !decisions;
    propagations = !propagations;
    cached = false;
  }

let check ?(options = default_options) ?cache ?jobs left right =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  Metrics.incr m_checks;
  let key = check_key ~options left right in
  let cached =
    match cache with None -> None | Some c -> Cache.find c ~kind:cache_kind ~key decode_result
  in
  match cached with
  | Some r ->
      Metrics.incr m_cached;
      count_verdict r.verdict;
      r
  | None ->
      let r = compute ~options ~jobs left right in
      (match cache with
      | None -> ()
      | Some c -> Cache.store c ~kind:cache_kind ~key (fun w -> encode_result w r));
      count_verdict r.verdict;
      Metrics.add m_points (points r);
      Metrics.add m_classes r.classes;
      Metrics.add m_proved r.proved;
      Metrics.add m_sat_calls r.sat_calls;
      Metrics.add m_sat_decisions r.decisions;
      Metrics.add m_sat_propagations r.propagations;
      r

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)

let verdict_name = function
  | Equivalent -> "equivalent"
  | Inequivalent _ -> "inequivalent"
  | Unknown _ -> "unknown"

let bits a =
  if Array.length a = 0 then "-"
  else String.init (Array.length a) (fun i -> if a.(i) then '1' else '0')

let tie_string t = Printf.sprintf "%s=%d" t.name (if t.value then 1 else 0)

(* [cached] is deliberately absent from both renderings: a replayed check
   must be byte-identical to the run that produced it. *)
let to_ascii r =
  let b = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "cec %s vs %s: %s\n" r.left r.right (String.uppercase_ascii (verdict_name r.verdict));
  pf "  points : %d (%d po + %d ff capture)\n" (points r) r.matched_pos r.matched_flops;
  pf "  inputs : %d pi + %d ff matched\n" r.matched_pis r.matched_flops;
  if r.ties <> [] then pf "  ties   : %s\n" (String.concat " " (List.map tie_string r.ties));
  if r.free_inputs <> [] then pf "  free   : %s\n" (String.concat " " r.free_inputs);
  if r.extra_outputs <> [] then pf "  extra  : po %s\n" (String.concat " po " r.extra_outputs);
  if r.extra_flops <> [] then pf "  extra  : ff %s\n" (String.concat " ff " r.extra_flops);
  pf "  sweep  : %d classes, %d internal equivalences proven\n" r.classes r.proved;
  pf "  sat    : %d calls, %d decisions, %d propagations\n" r.sat_calls r.decisions r.propagations;
  (match r.verdict with
  | Equivalent | Unknown [] -> ()
  | Unknown pts -> pf "  undecided: %s\n" (String.concat ", " (List.map point_label pts))
  | Inequivalent cex ->
      pf "  counterexample at %s (simulation confirmed):\n" (point_label cex.point);
      pf "    left  pi=%s state=%s -> %d\n" (bits cex.left_pi) (bits cex.left_state)
        (if cex.left_value then 1 else 0);
      pf "    right pi=%s state=%s -> %d\n" (bits cex.right_pi) (bits cex.right_state)
        (if cex.right_value then 1 else 0));
  Buffer.contents b

let json_of_point p =
  Json.Obj [ ("kind", Json.Str (point_kind p)); ("name", Json.Str (point_target p)) ]

let to_json r =
  let strs l = Json.Arr (List.map (fun s -> Json.Str s) l) in
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("kind", Json.Str "cec");
      ("left", Json.Str r.left);
      ("right", Json.Str r.right);
      ("verdict", Json.Str (verdict_name r.verdict));
      ("points", Json.Int (points r));
      ( "matched",
        Json.Obj
          [
            ("pi", Json.Int r.matched_pis);
            ("ff", Json.Int r.matched_flops);
            ("po", Json.Int r.matched_pos);
          ] );
      ( "ties",
        Json.Arr
          (List.map
             (fun t ->
               Json.Obj
                 [ ("name", Json.Str t.name); ("value", Json.Int (if t.value then 1 else 0)) ])
             r.ties) );
      ("free_inputs", strs r.free_inputs);
      ("extra_outputs", strs r.extra_outputs);
      ("extra_flops", strs r.extra_flops);
      ("sweep", Json.Obj [ ("classes", Json.Int r.classes); ("proved", Json.Int r.proved) ]);
      ( "sat",
        Json.Obj
          [
            ("calls", Json.Int r.sat_calls);
            ("decisions", Json.Int r.decisions);
            ("propagations", Json.Int r.propagations);
          ] );
      ( "undecided",
        match r.verdict with
        | Unknown pts -> Json.Arr (List.map json_of_point pts)
        | Equivalent | Inequivalent _ -> Json.Arr [] );
      ( "counterexample",
        match r.verdict with
        | Inequivalent cex ->
            Json.Obj
              [
                ("point", json_of_point cex.point);
                ( "left",
                  Json.Obj
                    [
                      ("pi", Json.Str (bits cex.left_pi));
                      ("state", Json.Str (bits cex.left_state));
                      ("value", Json.Int (if cex.left_value then 1 else 0));
                    ] );
                ( "right",
                  Json.Obj
                    [
                      ("pi", Json.Str (bits cex.right_pi));
                      ("state", Json.Str (bits cex.right_state));
                      ("value", Json.Int (if cex.right_value then 1 else 0));
                    ] );
              ]
        | Equivalent | Unknown _ -> Json.Null );
    ]

let to_json_string r = Json.to_string (to_json r)
