(** SAT-sweeping combinational equivalence checker.

    The correctness gate for every netlist transformation in the repo: scan
    insertion, TPI instrumentation, the Verilog emit/parse round-trip and
    the cell library's mux2 decomposition. Both circuits are compared under
    the full-scan abstraction — flip-flop Q nets are pseudo primary inputs,
    D nets pseudo primary outputs — so one combinational check covers the
    sequential machine.

    The pipeline is classic SAT sweeping:

    + {b match} the interfaces by name (raising {!Mismatch} when a left
      input, output or flip-flop has no right counterpart; extra right-side
      pins are inclusion-checked — reported, tied by convention, or left as
      free variables, which is sound because the proof then holds for every
      value they take);
    + {b simulate} both circuits on the word-parallel SoA kernels under
      shared random stimulus to partition internal nets into candidate
      equivalence classes (signatures are canonicalized so complements
      share a class);
    + {b sweep}: prove candidate pairs with cone-local miters in topological
      order, substituting every proven equivalence into later cones; then
      prove each matched observation point with a full-budget miter.

    Per-point miters are independent and fan out across the domain pool;
    results merge in point order, so the verdict — including which
    counterexample is reported — is byte-identical at every [--jobs] width.
    Whole checks are memoized in the result cache under kind [{!cache_kind}].

    A reported counterexample is always replayed through both circuits'
    simulators first; an unconfirmed vector fails loudly instead of being
    reported. *)

exception Mismatch of string
(** The two circuits do not share a checkable interface (missing input,
    output or flip-flop; a tie naming no input). Distinct from
    [Inequivalent]: the question could not even be posed. *)

type tie = { name : string; value : bool }
(** Pin a named input (primary input or flip-flop Q) to a constant on
    whichever side it resolves. Transform gates are conditional
    equivalences: scan insertion preserves function only at [scan_en=0],
    TPI only at [tpi_ctl_*=0]. *)

type options = {
  vectors : int;  (** random-simulation rounds (each 63 lane-packed patterns) *)
  budget : int;  (** SAT decision budget per observation-point miter *)
  ties : tie list;
  conventions : bool;
      (** recognize the repo's own transform pins on unmatched right inputs:
          [scan_en] and [tpi_ctl_*] tie to 0 automatically *)
}

val default_options : options
(** 8 vectors, 200_000 decisions, no ties, conventions on. *)

type point =
  | Po of string  (** primary output, by name *)
  | Capture of string  (** flip-flop D pseudo-output, by flop name *)

val point_kind : point -> string
val point_target : point -> string
val point_label : point -> string

type counterexample = {
  point : point;  (** first differing observation point, in check order *)
  left_pi : bool array;  (** left primary inputs, circuit input order *)
  left_state : bool array;  (** left flip-flop Q values, scan order *)
  right_pi : bool array;
  right_state : bool array;
  left_value : bool;
  right_value : bool;
}

type verdict =
  | Equivalent  (** every observation point proven equal *)
  | Inequivalent of counterexample  (** simulation-confirmed difference *)
  | Unknown of point list  (** budget exhausted on the listed points *)

type result = {
  left : string;
  right : string;
  verdict : verdict;
  matched_pis : int;
  matched_flops : int;
  matched_pos : int;
  ties : tie list;  (** applied ties (user + conventions), sorted by name *)
  free_inputs : string list;  (** unmatched right inputs left free *)
  extra_outputs : string list;  (** right outputs not checked (inclusion) *)
  extra_flops : string list;  (** right flip-flops not in the left circuit *)
  classes : int;  (** candidate classes shared by both circuits *)
  proved : int;  (** internal equivalences proven and substituted *)
  sat_calls : int;
  decisions : int;
  propagations : int;
  cached : bool;  (** replayed from the result cache *)
}

val points : result -> int
(** Matched observation points: [matched_pos + matched_flops]. *)

val check :
  ?options:options ->
  ?cache:Tvs_store.Cache.t ->
  ?jobs:int ->
  Tvs_netlist.Circuit.t ->
  Tvs_netlist.Circuit.t ->
  result
(** [check left right] decides whether [right] preserves [left]'s function
    at every matched observation point, under the ties. [jobs] defaults to
    {!Tvs_util.Pool.default_jobs}; the result is identical for every value.
    With [cache], the whole check is memoized under {!cache_kind} keyed by
    both circuit digests and the options. Raises {!Mismatch}. *)

val cache_kind : string
(** ["CEQV"]. *)

val schema_version : int

val check_key : options:options -> Tvs_netlist.Circuit.t -> Tvs_netlist.Circuit.t -> Tvs_store.Digest.t
(** The cache key [check] uses (exposed for serve-side dedupe). *)

val encode_result : Tvs_util.Wire.writer -> result -> unit
val decode_result : Tvs_util.Wire.reader -> result
(** Wire codec for the cache entry; decoded results carry [cached = true]. *)

val verdict_name : verdict -> string
(** ["equivalent"], ["inequivalent"] or ["unknown"]. *)

val to_ascii : result -> string
val to_json : result -> Tvs_obs.Json.t
val to_json_string : result -> string
(** Renderings. [cached] is deliberately omitted so a cache-replayed check
    prints byte-identically to the run that produced it. *)
