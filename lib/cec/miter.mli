(** Cone-local miter CNF over two circuits.

    A miter instance lazily Tseitin-encodes the fanin cones of whatever nets
    a {!check_pair} call touches — nothing outside the cones ever reaches the
    solver. The two circuits share variables at matched sources (primary
    inputs and flip-flop Q nets under the full-scan abstraction), right-side
    nets with a proven substitution borrow the left literal instead of
    encoding their own cone, and tied sources carry unit clauses.

    Instances are one-shot: build, run one {!check_pair}, read values. The
    sweep in {!Cec} builds a fresh instance per proof attempt, which keeps
    every CNF minimal and every call independent (hence safe to fan out
    across pool slots). *)

type t

val create :
  left:Tvs_netlist.Circuit.t ->
  right:Tvs_netlist.Circuit.t ->
  canon:(Tvs_netlist.Circuit.net * bool) array ->
  source_map:int array ->
  subst:(Tvs_netlist.Circuit.net * bool) option array ->
  tie_left:(Tvs_netlist.Circuit.net * bool) list ->
  tie_right:(Tvs_netlist.Circuit.net * bool) list ->
  unit ->
  t
(** [canon] maps every left net to its signed structural representative
    [(rep, negated)] (identity where the net is its own representative —
    see [Cec.left_canon]); only representatives are Tseitin-encoded, so
    structurally equivalent left nets share one CNF variable. [source_map]
    maps every matched right-side source net to its left counterpart ([-1]
    elsewhere; unmatched right sources become free variables). [subst] maps
    right nets to proven left equivalences [(l, negated)] — consulted
    before encoding a right cone. Ties pin source nets to constants via
    unit clauses (applied lazily, only if the source enters a cone). The
    arrays are borrowed read-only, so one substitution table can back many
    concurrent instances. *)

type verdict =
  | Proven  (** UNSAT: the two nets agree everywhere (under the ties) *)
  | Refuted of bool array  (** SAT model, index = CNF variable *)
  | Undecided  (** decision budget exhausted *)

val check_pair :
  t ->
  budget:int ->
  left:Tvs_netlist.Circuit.net ->
  right:Tvs_netlist.Circuit.net ->
  phase:bool ->
  verdict * Tvs_util.Sat.stats
(** Decide [left = right] ([phase = false]) or [left = not right]
    ([phase = true]) for all assignments of the shared/free sources that
    satisfy the ties. Encodes both cones, asserts the XOR difference and
    solves with sources as the decision order. Call at most once per
    instance. *)

val left_value : t -> bool array -> Tvs_netlist.Circuit.net -> bool
(** Value of a left net under a {!Refuted} model: its CNF variable if the
    net entered the encoding, its tie value if tied, [false] otherwise
    (outside every cone — the verdict does not depend on it). *)

val right_value : t -> bool array -> Tvs_netlist.Circuit.net -> bool
(** Same for a right net; matched sources delegate to the left value. *)
