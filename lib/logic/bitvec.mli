(** Packed fixed-length bit vectors.

    Used for response signatures, scan-chain snapshots and lane masks in the
    parallel fault simulator. Bits are stored 63 per [int] word (the native
    unboxed integer), index 0 is the least significant bit of word 0. *)

type t

val length : t -> int

val create : int -> t
(** All-zero vector of the given length. *)

val copy : t -> t

val get : t -> int -> bool
val set : t -> int -> bool -> unit

val equal : t -> t -> bool

val of_bool_array : bool array -> t
val to_bool_array : t -> bool array

val of_string : string -> t
(** From a string of '0'/'1' characters, index 0 = leftmost character. *)

val to_string : t -> string

val popcount : t -> int
(** Number of set bits. *)

val xor : t -> t -> t
(** Bitwise XOR; lengths must match. *)

val first_diff : t -> t -> int option
(** Index of the lowest bit where the two vectors differ, if any. *)

val iteri_set : (int -> unit) -> t -> unit
(** Apply to the index of every set bit, in increasing order. *)

val fill : t -> bool -> unit
(** Set every bit to the given value. *)

val encode : Tvs_util.Wire.writer -> t -> unit
(** Canonical wire form (bit length + packed bits, independent of the
    internal word size), for the persistence layer. *)

val decode : Tvs_util.Wire.reader -> t
(** Raises [Tvs_util.Wire.Error] on truncated or malformed input. *)
