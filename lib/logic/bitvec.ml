let bits_per_word = 63

type t = { len : int; words : int array }

let length t = t.len

let nwords len = (len + bits_per_word - 1) / bits_per_word

let create len =
  assert (len >= 0);
  { len; words = Array.make (max 1 (nwords len)) 0 }

let copy t = { len = t.len; words = Array.copy t.words }

let check t i = if i < 0 || i >= t.len then invalid_arg "Bitvec: index out of bounds"

let get t i =
  check t i;
  t.words.(i / bits_per_word) lsr (i mod bits_per_word) land 1 = 1

let set t i b =
  check t i;
  let w = i / bits_per_word and off = i mod bits_per_word in
  if b then t.words.(w) <- t.words.(w) lor (1 lsl off)
  else t.words.(w) <- t.words.(w) land lnot (1 lsl off)

let equal a b = a.len = b.len && a.words = b.words

let of_bool_array arr =
  let t = create (Array.length arr) in
  Array.iteri (fun i b -> if b then set t i true) arr;
  t

let to_bool_array t = Array.init t.len (get t)

let of_string s =
  let t = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set t i true
      | _ -> invalid_arg "Bitvec.of_string: expected '0' or '1'")
    s;
  t

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let popcount_word w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let xor a b =
  if a.len <> b.len then invalid_arg "Bitvec.xor: length mismatch";
  { len = a.len; words = Array.init (Array.length a.words) (fun i -> a.words.(i) lxor b.words.(i)) }

let first_diff a b =
  if a.len <> b.len then invalid_arg "Bitvec.first_diff: length mismatch";
  let rec scan_words w =
    if w >= Array.length a.words then None
    else
      let d = a.words.(w) lxor b.words.(w) in
      if d = 0 then scan_words (w + 1)
      else
        let rec lowest i = if d lsr i land 1 = 1 then i else lowest (i + 1) in
        Some ((w * bits_per_word) + lowest 0)
  in
  scan_words 0

let iteri_set f t =
  for i = 0 to t.len - 1 do
    if get t i then f i
  done

(* Canonical wire form: the bit length, then the packed bits. Re-packed
   through bool arrays rather than dumping [words] so the encoding does not
   depend on the 63-bit internal word layout. *)
let encode w t = Tvs_util.Wire.write_bool_array w (to_bool_array t)

let decode r = of_bool_array (Tvs_util.Wire.read_bool_array r)

let fill t b =
  let full = if b then (1 lsl bits_per_word) - 1 else 0 in
  Array.fill t.words 0 (Array.length t.words) full;
  if b then begin
    (* Clear the unused bits of the last word so [equal]/[popcount] stay exact. *)
    let used = t.len mod bits_per_word in
    if used > 0 && t.len > 0 then
      t.words.(Array.length t.words - 1) <- (1 lsl used) - 1;
    if t.len = 0 then t.words.(0) <- 0
  end
