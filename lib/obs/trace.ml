type span = {
  name : string;
  ts : float;
  dur : float;
  tid : int;
  depth : int;
  args : (string * string) list;
}

(* Per-domain span buffer: only the owning domain pushes, so no locks on the
   recording path (cf. Metrics.shard). *)
type buf = { dom : int; mutable spans : span list; mutable depth : int }

let bufs : buf list Atomic.t = Atomic.make []
let enabled_flag = Atomic.make false
let epoch = Atomic.make 0.0  (* Clock.now at the last [start] *)

let enabled () = Atomic.get enabled_flag

let rec buf_for_self () =
  let dom = (Domain.self () :> int) in
  let rec find = function
    | [] -> None
    | b :: tl -> if b.dom = dom then Some b else find tl
  in
  let head = Atomic.get bufs in
  match find head with
  | Some b -> b
  | None ->
      let b = { dom; spans = []; depth = 0 } in
      if Atomic.compare_and_set bufs head (b :: head) then b else buf_for_self ()

let clear () =
  List.iter
    (fun b ->
      b.spans <- [];
      b.depth <- 0)
    (Atomic.get bufs)

let start () =
  clear ();
  Atomic.set epoch (Tvs_util.Clock.now ());
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let reset () =
  stop ();
  clear ()

let with_span ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = buf_for_self () in
    let depth = b.depth in
    b.depth <- depth + 1;
    let t0 = Tvs_util.Clock.now () in
    let finish () =
      let t1 = Tvs_util.Clock.now () in
      b.depth <- depth;
      b.spans <- { name; ts = t0; dur = t1 -. t0; tid = b.dom; depth; args } :: b.spans
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let spans () =
  Atomic.get bufs
  |> List.concat_map (fun b -> b.spans)
  |> List.sort (fun a b -> compare (a.tid, a.ts, a.depth) (b.tid, b.ts, b.depth))

let export_json () =
  let t0 = Atomic.get epoch in
  let us t = (t -. t0) *. 1e6 in
  let events =
    List.map
      (fun s ->
        Json.Obj
          ([
             ("name", Json.Str s.name);
             ("cat", Json.Str "tvs");
             ("ph", Json.Str "X");
             ("ts", Json.Float (us s.ts));
             ("dur", Json.Float (s.dur *. 1e6));
             ("pid", Json.Int 1);
             ("tid", Json.Int s.tid);
           ]
          @
          match s.args with
          | [] -> []
          | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)) ]))
      (spans ())
  in
  Json.to_string
    (Json.Obj [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ])

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export_json ()))
