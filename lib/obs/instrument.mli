(** Glue between the generic observability primitives and the pieces of the
    toolkit that cannot depend on [tvs_obs] themselves.

    {!Tvs_util.Pool} sits below this library in the dependency order, so it
    exposes a neutral probe hook instead of recording metrics directly;
    {!install_pool_probe} plugs that hook into {!Metrics}. All pool metrics
    are registered unstable: queue wait and per-slot busy time are wall-clock
    scheduling artifacts that legitimately differ between runs and [jobs]
    values, so they must not pollute the deterministic snapshot. *)

val install_pool_probe : unit -> unit
(** Route {!Tvs_util.Pool} probe events into metrics:
    [pool.submissions] / [pool.chunks] (counters), [pool.chunk_wait_us] /
    [pool.chunk_busy_us] (histograms, microseconds) and [pool.slot<i>.busy_us]
    (per-slot counters). Also installs the {!install_env_warning_counter}
    hook. Idempotent. *)

val install_env_warning_counter : unit -> unit
(** Route {!Tvs_util.Env} misconfiguration warnings (a set but unparseable
    [TVS_JOBS]/[TVS_BATCH]) into the [util.env.invalid] counter, backfilling
    warnings emitted before installation. Idempotent. *)
