(** Named counters, gauges and log2-bucket histograms in a global registry,
    stored as per-domain shards.

    Every metric keeps one shard per domain that ever touched it, keyed by
    [Domain.self ()]. The hot path (an increment or observation) finds its
    own domain's shard in an atomic list — lock-free, and the shard's fields
    are written by that one domain only, so {!Tvs_util.Pool} workers record
    without contention. Reads ({!snapshot}, {!counter_value}) merge shards:
    counters and histograms by summation, gauges by maximum — all
    commutative, so the merged totals depend only on the work done, not on
    which domain did it. A workload whose per-chunk work is deterministic
    therefore snapshots bit-identically at every [jobs] value.

    Registration takes a mutex (cold path: handles are created once, at
    module initialization). Merged reads are exact when the recording
    domains are quiescent — which pool submitters guarantee, since
    {!Tvs_util.Pool.parallel_map_chunks} returns only after every worker has
    synchronized through the pool mutex. A snapshot taken while another
    domain is mid-run may miss its in-flight increments but never tears a
    value.

    Metrics registered with [~stable:false] (wall-clock timings, pool
    scheduling artifacts — anything that legitimately varies across [jobs]
    values or runs) are excluded from {!snapshot} by default so that the
    default snapshot is byte-for-byte reproducible. *)

type counter
type gauge
type histogram

val counter : ?stable:bool -> string -> counter
(** Register (or look up) a counter. Re-registration with the same name
    returns the existing handle; raises [Invalid_argument] if the name is
    already registered as a different metric kind. *)

val add : counter -> int -> unit
val incr : counter -> unit

val counter_value : counter -> int
(** Merged (summed over shards) current value. *)

val gauge : ?stable:bool -> string -> gauge
(** High-watermark gauge: {!observe_max} keeps the maximum ever observed.
    Maximum — unlike last-write-wins — merges deterministically across
    domains. *)

val observe_max : gauge -> int -> unit

val gauge_value : gauge -> int
(** Merged (maximum over shards) watermark; 0 if never observed. *)

val histogram : ?stable:bool -> string -> histogram
(** Log2-bucket histogram of non-negative integer observations. *)

val observe : histogram -> int -> unit

val num_buckets : int
(** 63: bucket 0 holds values [<= 0]; bucket [i >= 1] holds values in
    [[2^(i-1), 2^i - 1]]. [max_int] (62 significant bits on a 64-bit build)
    lands in bucket 62. *)

val bucket_of : int -> int
(** The bucket index an observation falls into (exposed for tests). *)

(** A merged reading of one metric. [buckets] has {!num_buckets} cells;
    [sum] accumulates raw observed values (wrapping on overflow, which is
    still deterministic). *)
type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { count : int; sum : int; buckets : int array }

type snapshot = (string * value) list

val snapshot : ?all:bool -> unit -> snapshot
(** Merged values of every registered metric, sorted by name. [all] defaults
    to [false]: unstable metrics are omitted, making the result comparable
    across [jobs] values. Structural equality ([=]) on snapshots is
    meaningful. *)

val reset : ?prefix:string -> unit -> unit
(** Zero every shard of every metric (or only metrics whose name starts with
    [prefix]). Handles stay registered. Call only while recording domains
    are quiescent. *)

val render : ?all:bool -> unit -> string
(** ASCII table of the current snapshot (via {!Tvs_util.Table}), for
    [tvs --metrics]. [all] defaults to [true] here: a human asking for
    metrics wants the timing-class ones too. *)
