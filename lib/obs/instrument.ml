module Pool = Tvs_util.Pool

let env_installed = Atomic.make false

let install_env_warning_counter () =
  if not (Atomic.exchange env_installed true) then begin
    let invalid = Metrics.counter ~stable:false "util.env.invalid" in
    (* Knobs are read during CLI/server startup, possibly before this hook
       exists: backfill whatever was already warned about so the counter
       agrees with stderr. *)
    Metrics.add invalid (Tvs_util.Env.warning_count ());
    Tvs_util.Env.set_warning_hook (Some (fun ~key:_ ~value:_ -> Metrics.incr invalid))
  end

let installed = Atomic.make false

let us s = int_of_float (s *. 1e6)

let install_pool_probe () =
  install_env_warning_counter ();
  if not (Atomic.exchange installed true) then begin
    let submissions = Metrics.counter ~stable:false "pool.submissions" in
    let chunks = Metrics.counter ~stable:false "pool.chunks" in
    let wait = Metrics.histogram ~stable:false "pool.chunk_wait_us" in
    let busy = Metrics.histogram ~stable:false "pool.chunk_busy_us" in
    (* Per-slot busy counters, created on first use. Slot numbering restarts
       per pool size, so a slot's counter aggregates across shared pools —
       fine for a wall-clock utilization readout. The array is sized for any
       realistic core count; wider slots fold into the last cell's name. *)
    let max_slots = 256 in
    let slot_busy : Metrics.counter option array = Array.make max_slots None in
    let slot_counter slot =
      let slot = if slot < 0 then 0 else if slot >= max_slots then max_slots - 1 else slot in
      match slot_busy.(slot) with
      | Some c -> c
      | None ->
          (* Metrics.counter is idempotent under its own mutex, so a racing
             double-create from two domains lands on the same handle. *)
          let c = Metrics.counter ~stable:false (Printf.sprintf "pool.slot%d.busy_us" slot) in
          slot_busy.(slot) <- Some c;
          c
    in
    Pool.set_probe
      (Some
         {
           Pool.on_submit =
             (fun ~chunks:n ~jobs:_ ->
               Metrics.incr submissions;
               Metrics.add chunks n);
           Pool.on_chunk =
             (fun ~slot ~wait_s ~busy_s ->
               Metrics.observe wait (us wait_s);
               Metrics.observe busy (us busy_s);
               Metrics.add (slot_counter slot) (us busy_s));
         })
  end
