type kind = Counter | Gauge | Histogram

let num_buckets = 63

(* One domain's private slice of a metric. Only the owning domain writes the
   mutable fields; merged readers sum (or max) across shards after
   synchronizing with the writers (the pool's submit/finish mutex provides
   the happens-before edge for fan-out workloads). *)
type shard = {
  dom : int;
  mutable n : int;  (* counter total / gauge watermark / histogram count *)
  mutable sum : int;  (* histogram: sum of observed values *)
  mutable seen : bool;  (* gauge: watermark is valid *)
  buckets : int array;  (* histogram only; [||] otherwise *)
}

type metric = {
  name : string;
  kind : kind;
  stable : bool;
  shards : shard list Atomic.t;
}

type counter = metric
type gauge = metric
type histogram = metric

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Histogram -> "histogram"

let register ~stable kind name =
  Mutex.lock registry_mutex;
  let found =
    match Hashtbl.find_opt registry name with
    | Some m -> Some m
    | None ->
        let m = { name; kind; stable; shards = Atomic.make [] } in
        Hashtbl.add registry name m;
        Some m
  in
  Mutex.unlock registry_mutex;
  match found with
  | Some m when m.kind = kind -> m
  | Some m ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as a %s (wanted a %s)" name
           (kind_name m.kind) (kind_name kind))
  | None -> assert false

let counter ?(stable = true) name = register ~stable Counter name
let gauge ?(stable = true) name = register ~stable Gauge name
let histogram ?(stable = true) name = register ~stable Histogram name

let new_shard m dom =
  {
    dom;
    n = 0;
    sum = 0;
    seen = false;
    buckets = (match m.kind with Histogram -> Array.make num_buckets 0 | Counter | Gauge -> [||]);
  }

(* Find (or lock-free push) the calling domain's shard. The list only ever
   grows, and each element is written by exactly one domain, so a plain
   traversal of a stale head is safe. *)
let rec shard_for m =
  let dom = (Domain.self () :> int) in
  let rec find = function
    | [] -> None
    | s :: tl -> if s.dom = dom then Some s else find tl
  in
  let head = Atomic.get m.shards in
  match find head with
  | Some s -> s
  | None ->
      let s = new_shard m dom in
      if Atomic.compare_and_set m.shards head (s :: head) then s else shard_for m

let add c by =
  let s = shard_for c in
  s.n <- s.n + by

let incr c = add c 1

let observe_max g v =
  let s = shard_for g in
  if (not s.seen) || v > s.n then s.n <- v;
  s.seen <- true

let bucket_of v =
  if v <= 0 then 0
  else begin
    (* Number of significant bits: v in [2^(i-1), 2^i - 1] -> bucket i. *)
    let i = ref 0 and v = ref v in
    while !v > 0 do
      i := !i + 1;
      v := !v lsr 1
    done;
    !i
  end

let observe h v =
  let s = shard_for h in
  s.n <- s.n + 1;
  s.sum <- s.sum + v;
  let b = bucket_of v in
  s.buckets.(b) <- s.buckets.(b) + 1

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { count : int; sum : int; buckets : int array }

type snapshot = (string * value) list

let merged m =
  let shards = Atomic.get m.shards in
  match m.kind with
  | Counter -> Counter_v (List.fold_left (fun acc s -> acc + s.n) 0 shards)
  | Gauge ->
      Gauge_v (List.fold_left (fun acc s -> if s.seen && s.n > acc then s.n else acc) 0 shards)
  | Histogram ->
      let count = ref 0 and sum = ref 0 in
      let buckets = Array.make num_buckets 0 in
      List.iter
        (fun s ->
          count := !count + s.n;
          sum := !sum + s.sum;
          Array.iteri (fun i b -> buckets.(i) <- buckets.(i) + b) s.buckets)
        shards;
      Histogram_v { count = !count; sum = !sum; buckets }

let counter_value c = match merged c with Counter_v n -> n | Gauge_v _ | Histogram_v _ -> 0
let gauge_value g = match merged g with Gauge_v n -> n | Counter_v _ | Histogram_v _ -> 0

let all_metrics () =
  Mutex.lock registry_mutex;
  let ms = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock registry_mutex;
  ms

let snapshot ?(all = false) () =
  all_metrics ()
  |> List.filter (fun m -> all || m.stable)
  |> List.map (fun m -> (m.name, merged m))
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset ?prefix () =
  let wanted name =
    match prefix with
    | None -> true
    | Some p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  List.iter
    (fun m ->
      if wanted m.name then
        List.iter
          (fun s ->
            s.n <- 0;
            s.sum <- 0;
            s.seen <- false;
            Array.fill s.buckets 0 (Array.length s.buckets) 0)
          (Atomic.get m.shards))
    (all_metrics ())

let render ?(all = true) () =
  let tbl = Tvs_util.Table.create [ "metric"; "kind"; "value" ] in
  List.iter
    (fun (name, v) ->
      let kind, cell =
        match v with
        | Counter_v n -> ("counter", string_of_int n)
        | Gauge_v n -> ("gauge", string_of_int n)
        | Histogram_v { count; sum; buckets } ->
            let top = ref 0 in
            Array.iteri (fun i b -> if b > 0 then top := i) buckets;
            ( "histogram",
              Printf.sprintf "count=%d sum=%d max<2^%d" count sum !top )
      in
      Tvs_util.Table.add_row tbl [ name; kind; cell ])
    (snapshot ~all ());
  Tvs_util.Table.render tbl
