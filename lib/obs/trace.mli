(** Span-based tracing on {!Tvs_util.Clock}, exportable as Chrome
    [trace_event] JSON (load the file in [about://tracing] or Perfetto).

    Disabled by default: {!with_span} costs one atomic load and runs the
    body directly, so instrumentation can stay in hot paths permanently.
    When enabled, each domain records completed spans into its own buffer
    (same sharding discipline as {!Metrics}), so pool workers trace without
    locks; the exporter merges buffers and tags each span with its domain id
    as the Chrome [tid].

    Spans nest by construction: a child runs inside its parent's callback,
    so its interval is contained in the parent's and its recorded [depth] is
    one greater. *)

type span = {
  name : string;
  ts : float;  (** start, seconds on {!Tvs_util.Clock.now}'s epoch *)
  dur : float;  (** seconds *)
  tid : int;  (** recording domain's id *)
  depth : int;  (** nesting depth at entry; 0 = top level *)
  args : (string * string) list;  (** per-span attributes *)
}

val enabled : unit -> bool

val start : unit -> unit
(** Discard previously collected spans and begin collecting. *)

val stop : unit -> unit
(** Stop collecting; already-recorded spans are kept for export. *)

val reset : unit -> unit
(** Stop and discard everything. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()]; if tracing is enabled, the elapsed
    interval is recorded as a span (also when [f] raises). *)

val spans : unit -> span list
(** Collected spans, sorted by [(tid, ts, depth)]. Call while recording
    domains are quiescent. *)

val export_json : unit -> string
(** Chrome [trace_event] JSON: an object with a [traceEvents] array of
    complete ("ph":"X") events, timestamps in microseconds relative to the
    last {!start}. *)

val write : string -> unit
(** [export_json] to a file. *)
