(** Versioned, machine-readable benchmark reports.

    One report captures a bench invocation: which artifacts ran, how long
    each took, Bechamel ns/run estimates where available, the merged
    {!Metrics} snapshot, and provenance (git revision, jobs, scale). The
    JSON schema is versioned so the accumulated [BENCH_*.json] trajectory
    stays parseable as it grows; {!of_json} doubles as the validator. The
    [metrics] section contains only stable metrics, so it is bit-identical
    across [--jobs] values. *)

val schema_version : int
(** Currently 3: v2 added the [tpi] section (test-point-insertion studies
    run by the bench), v3 the [cec] section (equivalence-checker gates).
    Earlier versions still parse — the missing sections read as empty. *)

type bench = { name : string; ns_per_run : float }
(** One Bechamel estimate (micro artifacts only). *)

type run = {
  artifact : string;  (** bench artifact name, e.g. "table5" *)
  circuit : string option;  (** a single-circuit run's circuit, if any *)
  wall_ns : float;  (** wall-clock for the whole artifact *)
  benchmarks : bench list;
}

type tpi_entry = {
  tpi_circuit : string;
  points : int;  (** test points selected *)
  converted_faults : int;  (** statically hidden stem faults made observable *)
  caught : int;  (** of those, caught by the final circuit's own test set *)
  d_coverage : float;  (** final minus base stitched coverage *)
  dm : float;  (** memory-ratio delta *)
  dt : float;  (** test-time-ratio delta *)
}
(** One `tvs tpi` study, summarized for the bench trajectory. The [tpi_]
    prefix on [tpi_circuit] avoids clashing with {!run.circuit}; the JSON
    field is plain ["circuit"]. *)

type cec_entry = {
  cec_circuit : string;
  transform : string;  (** what was gated: ["scan"], ["tpi"], ... *)
  verdict : string;  (** ["equivalent"], ["inequivalent"] or ["unknown"] *)
  points : int;  (** observation points checked *)
  sat_calls : int;
  decisions : int;
}
(** One equivalence-checker gate run by the bench. As with {!tpi_entry},
    the [cec_] prefix avoids clashing with {!run.circuit}; the JSON field
    is plain ["circuit"]. *)

type t = {
  version : int;
  scale : float option;  (** --scale override, if given *)
  jobs : int;  (** resolved fan-out width *)
  git_rev : string option;
  runs : run list;
  tpi : tpi_entry list;  (** test-point-insertion studies, execution order *)
  cec : cec_entry list;  (** equivalence-checker gates, execution order *)
  metrics : Metrics.snapshot;
}

val make :
  ?scale:float -> ?git_rev:string -> ?tpi:tpi_entry list -> ?cec:cec_entry list -> jobs:int ->
  runs:run list -> metrics:Metrics.snapshot -> unit -> t
(** Stamp a report with the current {!schema_version}; [tpi] and [cec]
    default to empty. *)

val to_json : t -> string

val of_json : string -> (t, string) result
(** Parse and validate: schema version, field presence and types, metric
    kinds, histogram shape. The error message names the offending field. *)

val validate : string -> (unit, string) result
(** [of_json] with the result discarded — the CI gate. *)

val to_table : t -> string
(** Human-readable ASCII rendering (via {!Tvs_util.Table}): one row per
    artifact and benchmark, then a metrics summary line. *)

val git_rev : unit -> string option
(** [git rev-parse --short HEAD] of the working directory, if it is a git
    checkout with git installed; [None] otherwise. *)
