let schema_version = 3

type bench = { name : string; ns_per_run : float }

type run = {
  artifact : string;
  circuit : string option;
  wall_ns : float;
  benchmarks : bench list;
}

type tpi_entry = {
  tpi_circuit : string;
  points : int;
  converted_faults : int;
  caught : int;
  d_coverage : float;
  dm : float;
  dt : float;
}

type cec_entry = {
  cec_circuit : string;
  transform : string;
  verdict : string;
  points : int;
  sat_calls : int;
  decisions : int;
}

let verdict_vocabulary = [ "equivalent"; "inequivalent"; "unknown" ]

type t = {
  version : int;
  scale : float option;
  jobs : int;
  git_rev : string option;
  runs : run list;
  tpi : tpi_entry list;
  cec : cec_entry list;
  metrics : Metrics.snapshot;
}

let make ?scale ?git_rev ?(tpi = []) ?(cec = []) ~jobs ~runs ~metrics () =
  { version = schema_version; scale; jobs; git_rev; runs; tpi; cec; metrics }

(* --- JSON emission ---------------------------------------------------- *)

let opt f = function None -> Json.Null | Some v -> f v

let metric_to_json = function
  | Metrics.Counter_v n -> Json.Obj [ ("kind", Json.Str "counter"); ("value", Json.Int n) ]
  | Metrics.Gauge_v n -> Json.Obj [ ("kind", Json.Str "gauge"); ("value", Json.Int n) ]
  | Metrics.Histogram_v { count; sum; buckets } ->
      (* Sparse bucket encoding: [[bucket, count], ...] for populated ones. *)
      let cells = ref [] in
      Array.iteri
        (fun i b -> if b > 0 then cells := Json.Arr [ Json.Int i; Json.Int b ] :: !cells)
        buckets;
      Json.Obj
        [
          ("kind", Json.Str "histogram");
          ("count", Json.Int count);
          ("sum", Json.Int sum);
          ("buckets", Json.Arr (List.rev !cells));
        ]

let to_json t =
  let run_to_json r =
    Json.Obj
      [
        ("artifact", Json.Str r.artifact);
        ("circuit", opt (fun c -> Json.Str c) r.circuit);
        ("wall_ns", Json.Float r.wall_ns);
        ( "benchmarks",
          Json.Arr
            (List.map
               (fun b ->
                 Json.Obj
                   [ ("name", Json.Str b.name); ("ns_per_run", Json.Float b.ns_per_run) ])
               r.benchmarks) );
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("schema_version", Json.Int t.version);
         ("tool", Json.Str "tvs-bench");
         ("scale", opt (fun s -> Json.Float s) t.scale);
         ("jobs", Json.Int t.jobs);
         ("git_rev", opt (fun r -> Json.Str r) t.git_rev);
         ("runs", Json.Arr (List.map run_to_json t.runs));
         ( "tpi",
           Json.Arr
             (List.map
                (fun e ->
                  Json.Obj
                    [
                      ("circuit", Json.Str e.tpi_circuit);
                      ("points", Json.Int e.points);
                      ("converted_faults", Json.Int e.converted_faults);
                      ("caught", Json.Int e.caught);
                      ("d_coverage", Json.Float e.d_coverage);
                      ("dm", Json.Float e.dm);
                      ("dt", Json.Float e.dt);
                    ])
                t.tpi) );
         ( "cec",
           Json.Arr
             (List.map
                (fun e ->
                  Json.Obj
                    [
                      ("circuit", Json.Str e.cec_circuit);
                      ("transform", Json.Str e.transform);
                      ("verdict", Json.Str e.verdict);
                      ("points", Json.Int e.points);
                      ("sat_calls", Json.Int e.sat_calls);
                      ("decisions", Json.Int e.decisions);
                    ])
                t.cec) );
         ("metrics", Json.Obj (List.map (fun (k, v) -> (k, metric_to_json v)) t.metrics));
       ])

(* --- parsing / validation --------------------------------------------- *)

exception Invalid of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Invalid msg)) fmt

let get field v =
  match Json.member field v with
  | Some m -> m
  | None -> fail "missing field %S" field

let as_int field = function
  | Json.Int i -> i
  | _ -> fail "field %S must be an integer" field

let as_number field = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> fail "field %S must be a number" field

let as_string field = function
  | Json.Str s -> s
  | _ -> fail "field %S must be a string" field

let as_opt f field = function Json.Null -> None | v -> Some (f field v)

let as_list field = function
  | Json.Arr items -> items
  | _ -> fail "field %S must be an array" field

let as_obj field = function
  | Json.Obj members -> members
  | _ -> fail "field %S must be an object" field

let metric_of_json name v =
  match as_string "kind" (get "kind" v) with
  | "counter" -> Metrics.Counter_v (as_int "value" (get "value" v))
  | "gauge" -> Metrics.Gauge_v (as_int "value" (get "value" v))
  | "histogram" ->
      let buckets = Array.make Metrics.num_buckets 0 in
      List.iter
        (function
          | Json.Arr [ Json.Int i; Json.Int n ] ->
              if i < 0 || i >= Metrics.num_buckets then
                fail "metric %S: bucket index %d out of range" name i;
              buckets.(i) <- n
          | _ -> fail "metric %S: buckets must be [index, count] pairs" name)
        (as_list "buckets" (get "buckets" v));
      Metrics.Histogram_v
        { count = as_int "count" (get "count" v); sum = as_int "sum" (get "sum" v); buckets }
  | k -> fail "metric %S has unknown kind %S" name k

let run_of_json v =
  {
    artifact = as_string "artifact" (get "artifact" v);
    circuit = as_opt as_string "circuit" (get "circuit" v);
    wall_ns = as_number "wall_ns" (get "wall_ns" v);
    benchmarks =
      List.map
        (fun b ->
          {
            name = as_string "name" (get "name" b);
            ns_per_run = as_number "ns_per_run" (get "ns_per_run" b);
          })
        (as_list "benchmarks" (get "benchmarks" v));
  }

let of_json s =
  match Json.parse s with
  | Error msg -> Error ("not valid JSON: " ^ msg)
  | Ok v -> (
      try
        let version = as_int "schema_version" (get "schema_version" v) in
        (* v1 reports (no [tpi] section) stay parseable — the accumulated
           BENCH_*.json trajectory must not go stale on a schema bump. *)
        if version < 1 || version > schema_version then
          fail "schema_version %d unsupported (expected 1..%d)" version schema_version;
        (match as_string "tool" (get "tool" v) with
        | "tvs-bench" -> ()
        | t -> fail "tool %S unsupported" t);
        Ok
          {
            version;
            scale = as_opt as_number "scale" (get "scale" v);
            jobs = as_int "jobs" (get "jobs" v);
            git_rev = as_opt as_string "git_rev" (get "git_rev" v);
            runs = List.map run_of_json (as_list "runs" (get "runs" v));
            tpi =
              (if version < 2 then []
               else
                 List.map
                   (fun e ->
                     let caught = as_int "caught" (get "caught" e) in
                     let converted_faults =
                       as_int "converted_faults" (get "converted_faults" e)
                     in
                     if caught < 0 || converted_faults < 0 || caught > converted_faults then
                       fail "tpi entry: caught %d out of range (converted_faults %d)" caught
                         converted_faults;
                     {
                       tpi_circuit = as_string "circuit" (get "circuit" e);
                       points = as_int "points" (get "points" e);
                       converted_faults;
                       caught;
                       d_coverage = as_number "d_coverage" (get "d_coverage" e);
                       dm = as_number "dm" (get "dm" e);
                       dt = as_number "dt" (get "dt" e);
                     })
                   (as_list "tpi" (get "tpi" v)));
            cec =
              (* the [cec] section arrived with v3; older reports simply
                 have none *)
              (if version < 3 then []
               else
                 List.map
                   (fun e ->
                     let verdict = as_string "verdict" (get "verdict" e) in
                     if not (List.mem verdict verdict_vocabulary) then
                       fail "cec entry: unknown verdict %S (expected %s)" verdict
                         (String.concat "/" verdict_vocabulary);
                     let non_negative field =
                       let n = as_int field (get field e) in
                       if n < 0 then fail "cec entry: %S must be non-negative, got %d" field n;
                       n
                     in
                     {
                       cec_circuit = as_string "circuit" (get "circuit" e);
                       transform = as_string "transform" (get "transform" e);
                       verdict;
                       points = non_negative "points";
                       sat_calls = non_negative "sat_calls";
                       decisions = non_negative "decisions";
                     })
                   (as_list "cec" (get "cec" v)));
            metrics =
              List.map (fun (k, m) -> (k, metric_of_json k m)) (as_obj "metrics" (get "metrics" v));
          }
      with Invalid msg -> Error msg)

let validate s = Result.map (fun (_ : t) -> ()) (of_json s)

(* --- ASCII view ------------------------------------------------------- *)

let to_table t =
  let tbl = Tvs_util.Table.create [ "artifact"; "benchmark"; "ns/run"; "wall" ] in
  List.iter
    (fun r ->
      Tvs_util.Table.add_row tbl
        [ r.artifact; ""; ""; Printf.sprintf "%.2fs" (r.wall_ns /. 1e9) ];
      List.iter
        (fun b ->
          Tvs_util.Table.add_row tbl [ ""; b.name; Printf.sprintf "%.0f" b.ns_per_run; "" ])
        r.benchmarks)
    t.runs;
  let tpi_lines =
    String.concat ""
      (List.map
         (fun e ->
           Printf.sprintf "tpi %s: %d point(s), %d/%d converted fault(s) caught, dm=%+.2f dt=%+.2f\n"
             e.tpi_circuit e.points e.caught e.converted_faults e.dm e.dt)
         t.tpi)
  in
  let cec_lines =
    String.concat ""
      (List.map
         (fun e ->
           Printf.sprintf "cec %s (%s): %s — %d point(s), %d sat call(s), %d decision(s)\n"
             e.cec_circuit e.transform e.verdict e.points e.sat_calls e.decisions)
         t.cec)
  in
  Printf.sprintf "bench report v%d: jobs=%d scale=%s rev=%s\n%s%s%s%d stable metric(s) captured\n"
    t.version t.jobs
    (match t.scale with Some s -> Printf.sprintf "%g" s | None -> "default")
    (Option.value ~default:"unknown" t.git_rev)
    (Tvs_util.Table.render tbl)
    tpi_lines cec_lines
    (List.length t.metrics)

(* --- provenance ------------------------------------------------------- *)

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some rev when rev <> "" -> Some rev
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None
