type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf f =
  if Float.is_finite f then begin
    (* %.17g round-trips every double; trim the common integral case. *)
    let s = Printf.sprintf "%.17g" f in
    Buffer.add_string buf s
  end
  else Buffer.add_string buf "null"

let rec add_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_to buf f
  | Str s -> escape_to buf s
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_to buf v)
        items;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          add_to buf v)
        members;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_to buf v;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let error cur msg = raise (Bad (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let n = String.length cur.src in
  while
    cur.pos < n
    && match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> error cur (Printf.sprintf "expected %C, found %C" c got)
  | None -> error cur (Printf.sprintf "expected %C, found end of input" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | None -> error cur "unterminated escape"
        | Some c ->
            advance cur;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if cur.pos + 4 > String.length cur.src then error cur "truncated \\u escape";
                let hex = String.sub cur.src cur.pos 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> error cur "invalid \\u escape"
                in
                cur.pos <- cur.pos + 4;
                (* Encode the code point as UTF-8; surrogate pairs are left
                   as two separate 3-byte encodings (the report and trace
                   emitters never produce them). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> error cur (Printf.sprintf "invalid escape \\%C" c));
            go ())
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let n = String.length cur.src in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while cur.pos < n && is_num_char cur.src.[cur.pos] do
    advance cur
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  let integral = not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s) in
  match (integral, int_of_string_opt s, float_of_string_opt s) with
  | true, Some i, _ -> Int i
  | _, _, Some f -> Float f
  | _ -> error cur (Printf.sprintf "invalid number %S" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        Arr []
      end
      else begin
        let items = ref [ parse_value cur ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          items := parse_value cur :: !items;
          skip_ws cur
        done;
        expect cur ']';
        Arr (List.rev !items)
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let pair () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let members = ref [ pair () ] in
        skip_ws cur;
        while peek cur = Some ',' do
          advance cur;
          members := pair () :: !members;
          skip_ws cur
        done;
        expect cur '}';
        Obj (List.rev !members)
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> error cur (Printf.sprintf "unexpected character %C" c)

let parse s =
  let cur = { src = s; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
      else Ok v
  | exception Bad msg -> Error msg

(* --- helpers ---------------------------------------------------------- *)

let member k = function Obj members -> List.assoc_opt k members | _ -> None

let rec sort_keys = function
  | Obj members ->
      Obj
        (List.sort
           (fun (a, _) (b, _) -> compare a b)
           (List.map (fun (k, v) -> (k, sort_keys v)) members))
  | Arr items -> Arr (List.map sort_keys items)
  | (Null | Bool _ | Int _ | Float _ | Str _) as v -> v
