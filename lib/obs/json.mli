(** Minimal JSON tree, printer and parser.

    The toolchain is deliberately dependency-free, so the observability layer
    carries its own ~150-line JSON implementation instead of pulling in
    yojson. It covers exactly what {!Report} and {!Trace} need: finite
    numbers, UTF-8 strings passed through byte-for-byte (with control and
    quote escaping), arrays and objects. Object member order is preserved. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). [Float] values must be
    finite; NaN and infinities render as [null] to keep the output valid. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. Numbers
    without [.], [e] or [E] that fit in an OCaml [int] parse as [Int],
    everything else as [Float]. *)

val member : string -> t -> t option
(** [member k (Obj _)] finds the first binding of [k]; [None] on missing
    keys and non-objects. *)

val sort_keys : t -> t
(** Canonical form for structural comparison: recursively sort every
    object's members by key. *)
