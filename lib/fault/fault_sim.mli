(** Batch fault simulation on top of the word-parallel engines.

    One engine run simulates the fault-free machine in lane 0 and up to 62
    faulty machines in the remaining lanes; arbitrary fault batches are
    chunked internally. Two entry points cover the stitching engine's needs:

    - {!run_batch}: all machines receive the same stimulus (screening the
      uncaught set against a candidate vector);
    - {!run_per_state}: each faulty machine applies its own scan state (the
      hidden-fault case, where a fault's retained response bits mutate the
      vector it actually receives).

    Two execution paths produce bit-identical outcomes. {!Full} runs one
    complete levelized pass per chunk ({!Tvs_sim.Parallel}).
    {!Event_driven} (the default) evaluates the fault-free machine once per
    stimulus and then propagates only lane events inside the chunk's fault
    cones ({!Tvs_sim.Event}); chunks are grouped so faults with overlapping
    cones share lanes. Work done and skipped is tallied in {!counters}.

    Chunks are independent, so on both paths they fan out across a
    {!Tvs_util.Pool} domain pool when [jobs > 1]: each pool slot owns a
    private engine context (the engines are not thread-safe), and results and
    counter tallies are merged in chunk order, making outcomes and counters
    bit-identical for every [jobs] value — including [jobs = 1], which never
    touches the pool. Entry points must be called from one domain at a time
    (the submitter). *)

type outcome =
  | Same  (** response identical to the fault-free machine *)
  | Po_detected  (** differs at a primary output: immediately observed *)
  | Capture_differs of bool array
      (** primary outputs identical; faulty captured scan state attached
          (length = number of flip-flops) *)

type frame = { po : bool array; capture : bool array }

type batch_result = { good : frame; outcomes : outcome array }

type mode =
  | Event_driven  (** cone-restricted event propagation (default) *)
  | Full  (** one full levelized pass per chunk *)

type t
(** Reusable fault-simulation context for one circuit: a {!Tvs_sim.Parallel}
    engine plus a lazily-built {!Tvs_sim.Event} engine (and, when [jobs > 1],
    per-domain copies of both). Not thread-safe. *)

val create : ?mode:mode -> ?jobs:int -> Tvs_netlist.Circuit.t -> t
(** [jobs] is the fan-out width (clamped to at least 1); defaults to
    {!Tvs_util.Pool.default_jobs}. Batches too small to chunk always run
    inline on the caller's domain. *)

val of_parallel : ?jobs:int -> Tvs_sim.Parallel.t -> t
(** Wrap an existing broadcast engine (event-driven mode). The event engine
    is built lazily on first use. *)

val circuit : t -> Tvs_netlist.Circuit.t

val parallel : t -> Tvs_sim.Parallel.t
(** The underlying broadcast engine, for callers that also need raw
    {!Tvs_sim.Parallel.run} access on the same circuit. *)

val mode : t -> mode

val jobs : t -> int
(** Fan-out width this context was created with. *)

(** Cumulative work counters across all contexts. The numbers live in the
    [faultsim.*] counters of the {!Tvs_obs.Metrics} registry (per-domain
    shards, merged by summation); this record is a point-in-time snapshot
    for callers that sample deltas (the engine per cycle, the bench
    harness). *)
type counters = {
  mutable full_runs : int;  (** complete levelized passes *)
  mutable event_runs : int;  (** event-driven chunk runs *)
  mutable events_fired : int;  (** net-value changes propagated *)
  mutable gate_evals : int;  (** gates evaluated on the event path *)
  mutable gates_skipped : int;  (** gate evaluations avoided vs. full passes *)
  mutable faults_dropped : int;  (** faults permanently dropped once caught *)
}

val counters : unit -> counters
(** Snapshot the cumulative totals. Taken between batches (the entry points
    are submitter-side), the pool's completion barrier guarantees every
    worker contribution is visible. *)

val reset_counters : unit -> unit
(** Zero the [faultsim.*] metrics (and therefore the {!counters}
    snapshot). *)

val note_dropped : int -> unit
(** Record that [n] caught faults were dropped from further simulation. *)

val run_batch : t -> pi:bool array -> state:bool array -> faults:Fault.t array -> batch_result

val run_per_state :
  t ->
  pi:bool array ->
  good_state:bool array ->
  faults:Fault.t array ->
  states:bool array array ->
  batch_result
(** [states.(i)] is the scan state fault [i]'s machine applies;
    [Array.length states] must equal [Array.length faults]. *)

val detects : t -> pi:bool array -> state:bool array -> Fault.t -> bool
(** Full-observability detection (all POs and the whole captured state), the
    criterion of a traditional full-shift scan test. *)

val detected_faults : t -> pi:bool array -> state:bool array -> Fault.t array -> bool array
(** Full-observability detection flags for a whole fault list. *)
