(** Batch fault simulation on top of the word-parallel engines.

    One engine run simulates the fault-free machine in lane 0 and up to 62
    faulty machines in the remaining lanes; arbitrary fault batches are
    chunked internally. Two entry points cover the stitching engine's needs:

    - {!run_batch}: all machines receive the same stimulus (screening the
      uncaught set against a candidate vector);
    - {!run_per_state}: each faulty machine applies its own scan state (the
      hidden-fault case, where a fault's retained response bits mutate the
      vector it actually receives).

    Two execution paths produce bit-identical outcomes. {!Full} runs one
    complete levelized pass per chunk ({!Tvs_sim.Parallel}).
    {!Event_driven} (the default) evaluates the fault-free machine once per
    stimulus and then propagates only lane events inside the chunk's fault
    cones ({!Tvs_sim.Event}); chunks are grouped so faults with overlapping
    cones share lanes. Work done and skipped is tallied in {!counters}.

    Chunks are independent, so on both paths they fan out across a
    {!Tvs_util.Pool} domain pool when [jobs > 1]: each pool slot owns a
    private engine context (the engines are not thread-safe), and results and
    counter tallies are merged in chunk order, making outcomes and counters
    bit-identical for every [jobs] value — including [jobs = 1], which never
    touches the pool. Entry points must be called from one domain at a time
    (the submitter). *)

type outcome =
  | Same  (** response identical to the fault-free machine *)
  | Po_detected  (** differs at a primary output: immediately observed *)
  | Capture_differs of bool array
      (** primary outputs identical; faulty captured scan state attached
          (length = number of flip-flops) *)

type frame = { po : bool array; capture : bool array }

type batch_result = { good : frame; outcomes : outcome array }

type mode =
  | Event_driven  (** cone-restricted event propagation (default) *)
  | Full  (** one full levelized pass per chunk *)

type t
(** Reusable fault-simulation context for one circuit: a {!Tvs_sim.Parallel}
    engine plus a lazily-built {!Tvs_sim.Event} engine (and, when [jobs > 1],
    per-domain copies of both). Not thread-safe. *)

val create : ?mode:mode -> ?jobs:int -> ?batch:int -> Tvs_netlist.Circuit.t -> t
(** [jobs] is the fan-out width (clamped to at least 1); defaults to
    {!Tvs_util.Pool.default_jobs}. Batches too small to chunk always run
    inline on the caller's domain. [batch] is the number of vectors per pool
    chunk in {!detected_matrix} (clamped to at least 1); defaults to
    {!default_batch}. Like [jobs], [batch] is a scheduling knob only: it
    never changes any result. *)

val of_parallel : ?jobs:int -> ?batch:int -> Tvs_sim.Parallel.t -> t
(** Wrap an existing broadcast engine (event-driven mode). The event engine
    is built lazily on first use. *)

val set_default_batch : int -> unit
(** Process-wide default for [?batch] (the [--batch] CLI flag lands here).
    Raises [Invalid_argument] if the value is < 1. *)

val default_batch : unit -> int
(** The default vector-batch size: {!set_default_batch}'s value if set, else
    the [TVS_BATCH] environment variable, else 16. A set but non-positive or
    unparseable [TVS_BATCH] falls back to 16 and warns through
    {!Tvs_util.Env}. *)

val circuit : t -> Tvs_netlist.Circuit.t

val parallel : t -> Tvs_sim.Parallel.t
(** The underlying broadcast engine, for callers that also need raw
    {!Tvs_sim.Parallel.run} access on the same circuit. *)

val mode : t -> mode

val jobs : t -> int
(** Fan-out width this context was created with. *)

val batch : t -> int
(** Vector-batch size this context was created with. *)

(** Cumulative work counters across all contexts. The numbers live in the
    [faultsim.*] counters of the {!Tvs_obs.Metrics} registry (per-domain
    shards, merged by summation); this record is a point-in-time snapshot
    for callers that sample deltas (the engine per cycle, the bench
    harness). *)
type counters = {
  mutable full_runs : int;  (** complete levelized passes *)
  mutable event_runs : int;  (** event-driven chunk runs *)
  mutable events_fired : int;  (** net-value changes propagated *)
  mutable gate_evals : int;  (** gates evaluated on the event path *)
  mutable gates_skipped : int;  (** gate evaluations avoided vs. full passes *)
  mutable faults_dropped : int;  (** faults permanently dropped once caught *)
}

val counters : unit -> counters
(** Snapshot the cumulative totals. Taken between batches (the entry points
    are submitter-side), the pool's completion barrier guarantees every
    worker contribution is visible. *)

val reset_counters : unit -> unit
(** Zero the [faultsim.*] metrics (and therefore the {!counters}
    snapshot). *)

val note_dropped : int -> unit
(** Record that [n] caught faults were dropped from further simulation. *)

val run_batch : t -> pi:bool array -> state:bool array -> faults:Fault.t array -> batch_result

val run_per_state :
  t ->
  pi:bool array ->
  good_state:bool array ->
  faults:Fault.t array ->
  states:bool array array ->
  batch_result
(** [states.(i)] is the scan state fault [i]'s machine applies;
    [Array.length states] must equal [Array.length faults]. *)

val detects : t -> pi:bool array -> state:bool array -> Fault.t -> bool
(** Full-observability detection (all POs and the whole captured state), the
    criterion of a traditional full-shift scan test. *)

val detected_faults : t -> pi:bool array -> state:bool array -> Fault.t array -> bool array
(** Full-observability detection flags for a whole fault list. *)

val detected_matrix :
  t -> vectors:(bool array * bool array) array -> Fault.t array -> bool array array
(** [detected_matrix t ~vectors faults] screens every [(pi, state)] vector
    against the whole fault list: row [v] equals
    [detected_faults t ~pi ~state faults] for vector [v].

    This is the batched form of per-vector screening: the cone order and
    per-chunk injection tables are built once for the entire call, and the
    domain-pool axis is vector batches of size {!batch} rather than 62-fault
    chunks — so one pool submission amortizes fan-out overhead across the
    whole vector set. Rows are merged by batch index and each vector's work
    is slot-independent, making the matrix byte-identical for every [jobs]
    and [batch] value. *)
