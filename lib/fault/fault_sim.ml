module Parallel = Tvs_sim.Parallel
module Event = Tvs_sim.Event
module Lanes = Tvs_sim.Lanes
module Circuit = Tvs_netlist.Circuit
module Pool = Tvs_util.Pool
module Metrics = Tvs_obs.Metrics
module Trace = Tvs_obs.Trace

type outcome = Same | Po_detected | Capture_differs of bool array

type frame = { po : bool array; capture : bool array }

type batch_result = { good : frame; outcomes : outcome array }

type mode = Event_driven | Full

(* Per-slot engine contexts for pool fan-out. The engines are documented not
   thread-safe, so each pool slot — one fixed domain — owns a private pair;
   slot 0 aliases the submitter's own contexts. Built on the first fan-out
   and reused for the context's lifetime. *)
type slot = { s_par : Parallel.t; s_ev : Event.t Lazy.t }

type fanout = { pool : Pool.t; slots : slot array }

type t = {
  circuit : Circuit.t;
  soa : Tvs_sim.Soa.t;  (* flat gate tables, shared read-only by every slot *)
  par : Parallel.t;
  ev : Event.t Lazy.t;
  mode : mode;
  jobs : int;
  batch : int;  (* vectors per pool chunk in multi-vector screening *)
  mutable fanout : fanout option;
  (* One-entry memos of the per-chunk injection lists and their compiled
     plans for the last fault array screened through this context (see
     [ordered_injections] / [ordered_plans]). *)
  mutable inj_memo : (Fault.t array * Parallel.injection list array) option;
  mutable plan_memo : (Fault.t array * Tvs_sim.Inject.plan array) option;
}

let batch_override = ref None

let set_default_batch b =
  if b < 1 then invalid_arg "Fault_sim.set_default_batch: batch must be >= 1";
  batch_override := Some b

let default_batch () =
  match !batch_override with
  | Some b -> b
  | None -> (
      match Tvs_util.Env.positive_int ~fallback:"16" "TVS_BATCH" with
      | Some b -> b
      | None -> 16)

let create ?(mode = Event_driven) ?jobs ?batch circuit =
  let jobs = max 1 (match jobs with Some j -> j | None -> Pool.default_jobs ()) in
  let batch = max 1 (match batch with Some b -> b | None -> default_batch ()) in
  let soa = Tvs_sim.Soa.create circuit in
  {
    circuit;
    soa;
    par = Parallel.create ~soa circuit;
    ev = lazy (Event.create ~soa circuit);
    mode;
    jobs;
    batch;
    fanout = None;
    inj_memo = None;
    plan_memo = None;
  }

let of_parallel ?jobs ?batch par =
  let circuit = Parallel.circuit par in
  let jobs = max 1 (match jobs with Some j -> j | None -> Pool.default_jobs ()) in
  let batch = max 1 (match batch with Some b -> b | None -> default_batch ()) in
  let soa = Parallel.soa par in
  {
    circuit;
    soa;
    par;
    ev = lazy (Event.create ~soa circuit);
    mode = Event_driven;
    jobs;
    batch;
    fanout = None;
    inj_memo = None;
    plan_memo = None;
  }

let circuit t = t.circuit
let parallel t = t.par
let mode t = t.mode
let jobs t = t.jobs
let batch t = t.batch

type counters = {
  mutable full_runs : int;
  mutable event_runs : int;
  mutable events_fired : int;
  mutable gate_evals : int;
  mutable gates_skipped : int;
  mutable faults_dropped : int;
}

(* The historical global counter record now lives in the metrics registry:
   workers record into their own domain shards (lock-free), and the record is
   rebuilt on demand by summing shards. Pool completion gives the submitter a
   happens-before edge over every worker write, so a snapshot taken between
   batches sees exact totals. *)
let m_full_runs = Metrics.counter "faultsim.full_runs"
let m_event_runs = Metrics.counter "faultsim.event_runs"
let m_events_fired = Metrics.counter "faultsim.events_fired"
let m_gate_evals = Metrics.counter "faultsim.gate_evals"
let m_gates_skipped = Metrics.counter "faultsim.gates_skipped"
let m_faults_dropped = Metrics.counter "faultsim.faults_dropped"
let m_chunks = Metrics.counter "faultsim.chunks"
let m_batches = Metrics.counter "faultsim.batches"

let counters () =
  {
    full_runs = Metrics.counter_value m_full_runs;
    event_runs = Metrics.counter_value m_event_runs;
    events_fired = Metrics.counter_value m_events_fired;
    gate_evals = Metrics.counter_value m_gate_evals;
    gates_skipped = Metrics.counter_value m_gates_skipped;
    faults_dropped = Metrics.counter_value m_faults_dropped;
  }

let reset_counters () = Metrics.reset ~prefix:"faultsim." ()

let note_dropped n = Metrics.add m_faults_dropped n

let chunk_size = Lanes.width - 1 (* lane 0 is the fault-free machine *)

let num_chunks n = (n + chunk_size - 1) / chunk_size

(* Per-lane difference masks against lane 0 for one array of result words. *)
let diff_mask words used_mask =
  let acc = ref 0 in
  Array.iter
    (fun w ->
      let ref0 = - (w land 1) land Lanes.all_mask in
      acc := !acc lor ((w lxor ref0) land used_mask))
    words;
  !acc

let lane0_frame (r : Parallel.result) =
  {
    po = Array.map (fun w -> Lanes.get w 0) r.po;
    capture = Array.map (fun w -> Lanes.get w 0) r.capture;
  }

let outcomes_of_run (r : Parallel.result) ~nfaults =
  let used = Lanes.mask (nfaults + 1) in
  let po_diff = diff_mask r.po used in
  let cap_diff = diff_mask r.capture used in
  Array.init nfaults (fun i ->
      let lane = i + 1 in
      if Lanes.get po_diff lane then Po_detected
      else if Lanes.get cap_diff lane then
        Capture_differs (Array.map (fun w -> Lanes.get w lane) r.capture)
      else Same)

(* Chunking order: faults whose cones overlap share a chunk, so each chunk's
   event activity stays confined to a few cones instead of spraying one cone
   per lane across the whole circuit. Sorting by the cone representative (the
   lowest-numbered observation point a stem reaches, O(E) to index once per
   circuit) clusters overlapping cones at O(n log n) per batch; the secondary
   key packs stems of the same sub-cone next to each other.

   The permutation is a performance hint only — outcomes are mapped back
   through it, so any order is correct. That makes the one-entry memo below
   safe: drivers like [Generator.drop_detected] re-screen the same physical
   fault array against many vectors, and re-sorting it each time would cost
   more than the simulation itself. *)
let compute_chunk_order c (faults : Fault.t array) =
  let n = Array.length faults in
  if n <= chunk_size then Array.init n (fun i -> i)
  else begin
    (* Composite int key: (cone_rep, stem, original index), packed so a
       single monomorphic int sort orders and disambiguates at once. *)
    let order = Array.init n (fun i -> i) in
    let key =
      Array.init n (fun i ->
          let f = faults.(i) in
          (Circuit.cone_rep c f.Fault.stem, f.Fault.stem, i))
    in
    Array.sort
      (fun a b ->
        let (ra, sa, ia) = key.(a) and (rb, sb, ib) = key.(b) in
        if ra <> rb then (if ra < rb then -1 else 1)
        else if sa <> sb then (if sa < sb then -1 else 1)
        else if ia < ib then -1
        else if ia > ib then 1
        else 0)
      order;
    order
  end

let order_memo : (Fault.t array * int array) option ref = ref None

let chunk_order c faults =
  match !order_memo with
  | Some (prev, order) when prev == faults -> order
  | Some _ | None ->
      let order = compute_chunk_order c faults in
      order_memo := Some (faults, order);
      order

let broadcast_words arr = Array.map (fun b -> if b then Lanes.all_mask else 0) arr

(* Per-chunk injection lists for [faults] under [order]. The lane assignment
   [i + 1] is a pure function of (faults, order), and [chunk_order] is
   deterministic per physical fault array, so repeated screens of the same
   array — the shape of every stitching cycle and of multi-vector batches —
   reuse one set of lists instead of rebuilding them per chunk per vector.
   Always built (and memoized) on the submitter before any fan-out; pool
   workers only read the lists. *)
let ordered_injections t (faults : Fault.t array) order =
  match t.inj_memo with
  | Some (prev, lists) when prev == faults -> lists
  | Some _ | None ->
      let n = Array.length faults in
      let lists =
        Array.init (num_chunks n) (fun ci ->
            let pos = ci * chunk_size in
            let len = min chunk_size (n - pos) in
            List.init len (fun i -> Fault.to_injection faults.(order.(pos + i)) ~lane:(i + 1)))
      in
      t.inj_memo <- Some (faults, lists);
      lists

(* Event-path counterpart: the same per-chunk lists, compiled once into
   {!Tvs_sim.Inject.plan}s. Replaying a plan costs a few dozen array writes
   where reinstalling the list costs a validated, allocating walk per chunk
   per vector — the dominant fixed cost of event-driven screening. Compiled
   on the submitter (before any fan-out) and shared read-only. *)
let ordered_plans t (faults : Fault.t array) order =
  match t.plan_memo with
  | Some (prev, plans) when prev == faults -> plans
  | Some _ | None ->
      let ev0 = Lazy.force t.ev in
      let plans = Array.map (Event.compile ev0) (ordered_injections t faults order) in
      t.plan_memo <- Some (faults, plans);
      plans

(* --- pool fan-out ----------------------------------------------------- *)

let fanout_ctx t =
  match t.fanout with
  | Some fo -> fo
  | None ->
      let pool = Pool.shared ~jobs:t.jobs in
      let slots =
        Array.init (Pool.jobs pool) (fun i ->
            if i = 0 then { s_par = t.par; s_ev = t.ev }
            else
              {
                s_par = Parallel.create ~soa:t.soa t.circuit;
                s_ev = lazy (Event.create ~soa:t.soa t.circuit);
              })
      in
      let fo = { pool; slots } in
      t.fanout <- Some fo;
      fo

(* Run [nchunks] independent full-broadcast chunks, across the pool when both
   the context and the workload are wide enough. Results (and the merged
   counters) are indexed by chunk, so every jobs value — including the inline
   jobs=1 path — produces identical output. *)
let run_full_chunks t ~nchunks f =
  let out =
    if t.jobs = 1 || nchunks <= 1 then Array.init nchunks (fun ci -> f t.par ci)
    else begin
      let fo = fanout_ctx t in
      Pool.parallel_map_chunks fo.pool ~n:nchunks (fun ~slot ci -> f fo.slots.(slot).s_par ci)
    end
  in
  Metrics.add m_full_runs nchunks;
  Metrics.add m_chunks nchunks;
  out

(* Event-driven counterpart. [t.ev] must already hold the stimulus; worker
   slots inherit it by baseline adoption (O(nets) blits, no gate work) on
   their first chunk of each submission. Each chunk records its own
   event/eval tallies into the executing domain's metric shards; per-chunk
   work is deterministic and shard merge is a plain sum, so the totals are
   identical for every jobs value. *)
let run_event_chunks t ~nchunks f =
  let ev0 = Lazy.force t.ev in
  let tally ev r =
    Metrics.incr m_event_runs;
    Metrics.add m_events_fired (Event.last_events ev);
    Metrics.add m_gate_evals (Event.last_evals ev);
    Metrics.add m_gates_skipped (Event.full_evals ev - Event.last_evals ev);
    r
  in
  let out =
    if t.jobs = 1 || nchunks <= 1 then begin
      (* Accumulate the tallies locally and flush once: the registry merges
         shards by summation, so totals equal the per-chunk flushes of the
         fan-out path below for every jobs value. *)
      let events = ref 0 and evals = ref 0 in
      let out =
        Array.init nchunks (fun ci ->
            let r = f ev0 ci in
            events := !events + Event.last_events ev0;
            evals := !evals + Event.last_evals ev0;
            r)
      in
      Metrics.add m_event_runs nchunks;
      Metrics.add m_events_fired !events;
      Metrics.add m_gate_evals !evals;
      Metrics.add m_gates_skipped ((nchunks * Event.full_evals ev0) - !evals);
      out
    end
    else begin
      let fo = fanout_ctx t in
      (* Fresh per submission: a slot's baseline is only valid for this
         stimulus. Each cell is touched by exactly one domain. *)
      let adopted = Array.make (Array.length fo.slots) false in
      adopted.(0) <- true;
      Pool.parallel_map_chunks fo.pool ~n:nchunks (fun ~slot ci ->
          let ev = Lazy.force fo.slots.(slot).s_ev in
          if not adopted.(slot) then begin
            Event.adopt_baseline ev ~from:ev0;
            adopted.(slot) <- true
          end;
          tally ev (f ev ci))
    end
  in
  Metrics.add m_chunks nchunks;
  out

(* Full-broadcast path: one complete levelized pass per chunk. *)

let run_chunk_full par ~pi_words ~state_words faults =
  let injections =
    List.mapi (fun i f -> Fault.to_injection f ~lane:(i + 1)) (Array.to_list faults)
  in
  let r = Parallel.run par ~pi:pi_words ~state:state_words ~injections in
  (lane0_frame r, outcomes_of_run r ~nfaults:(Array.length faults))

let run_batch_full t ~pi ~state ~faults =
  let pi_words = broadcast_words pi in
  let state_words = broadcast_words state in
  let n = Array.length faults in
  (* At least one (possibly empty) chunk: the good frame comes from lane 0. *)
  let nchunks = max 1 (num_chunks n) in
  let chunk_out =
    run_full_chunks t ~nchunks (fun par ci ->
        let pos = ci * chunk_size in
        let len = min chunk_size (n - pos) in
        run_chunk_full par ~pi_words ~state_words (Array.sub faults pos len))
  in
  let outcomes = Array.make n Same in
  Array.iteri
    (fun ci (_, out) -> Array.blit out 0 outcomes (ci * chunk_size) (Array.length out))
    chunk_out;
  { good = fst chunk_out.(0); outcomes }

let run_per_state_full t ~pi ~good_state ~faults ~states =
  let n = Array.length faults in
  let nflops = Array.length good_state in
  let pi_words = broadcast_words pi in
  let nchunks = max 1 (num_chunks n) in
  let chunk_out =
    run_full_chunks t ~nchunks (fun par ci ->
        let pos = ci * chunk_size in
        let len = min chunk_size (n - pos) in
        (* Pack lane 0 from the fault-free state and lanes 1..len from each
           fault's private state. *)
        let state_words =
          Array.init nflops (fun j ->
              let w = ref (if good_state.(j) then 1 else 0) in
              for i = 0 to len - 1 do
                if states.(pos + i).(j) then w := !w lor (1 lsl (i + 1))
              done;
              !w)
        in
        run_chunk_full par ~pi_words ~state_words (Array.sub faults pos len))
  in
  let outcomes = Array.make n Same in
  Array.iteri
    (fun ci (_, out) -> Array.blit out 0 outcomes (ci * chunk_size) (Array.length out))
    chunk_out;
  { good = fst chunk_out.(0); outcomes }

(* Event-driven path: the fault-free pass happens once in [set_stimulus];
   each chunk then only re-evaluates the gates its fault cones disturb. *)

let run_batch_event t ~pi ~state ~faults =
  let ev0 = Lazy.force t.ev in
  Event.set_stimulus ev0 ~pi ~state;
  let good = { po = Event.good_po ev0; capture = Event.good_capture ev0 } in
  let n = Array.length faults in
  let order = chunk_order t.circuit faults in
  let plans = ordered_plans t faults order in
  let chunk_out =
    run_event_chunks t ~nchunks:(num_chunks n) (fun ev ci ->
        let len = min chunk_size (n - (ci * chunk_size)) in
        outcomes_of_run (Event.run ev ~plan:plans.(ci) ()) ~nfaults:len)
  in
  let outcomes = Array.make n Same in
  Array.iteri
    (fun ci out ->
      let pos = ci * chunk_size in
      Array.iteri (fun i o -> outcomes.(order.(pos + i)) <- o) out)
    chunk_out;
  { good; outcomes }

let run_per_state_event t ~pi ~good_state ~faults ~states =
  let ev0 = Lazy.force t.ev in
  Event.set_stimulus ev0 ~pi ~state:good_state;
  let good = { po = Event.good_po ev0; capture = Event.good_capture ev0 } in
  let n = Array.length faults in
  let nflops = Array.length good_state in
  let order = chunk_order t.circuit faults in
  let plans = ordered_plans t faults order in
  let chunk_out =
    run_event_chunks t ~nchunks:(num_chunks n) (fun ev ci ->
        let pos = ci * chunk_size in
        let len = min chunk_size (n - pos) in
        let state_words =
          Array.init nflops (fun j ->
              let w = ref (if good_state.(j) then 1 else 0) in
              for i = 0 to len - 1 do
                if states.(order.(pos + i)).(j) then w := !w lor (1 lsl (i + 1))
              done;
              !w)
        in
        outcomes_of_run (Event.run ev ~states:state_words ~plan:plans.(ci) ()) ~nfaults:len)
  in
  let outcomes = Array.make n Same in
  Array.iteri
    (fun ci out ->
      let pos = ci * chunk_size in
      Array.iteri (fun i o -> outcomes.(order.(pos + i)) <- o) out)
    chunk_out;
  { good; outcomes }

let run_batch t ~pi ~state ~faults =
  Metrics.incr m_batches;
  Trace.with_span "faultsim.run_batch"
    ~args:[ ("faults", string_of_int (Array.length faults)) ]
    (fun () ->
      match t.mode with
      | Full -> run_batch_full t ~pi ~state ~faults
      | Event_driven -> run_batch_event t ~pi ~state ~faults)

let run_per_state t ~pi ~good_state ~faults ~states =
  if Array.length states <> Array.length faults then
    invalid_arg "Fault_sim.run_per_state: states length mismatch";
  Metrics.incr m_batches;
  Trace.with_span "faultsim.run_per_state"
    ~args:[ ("faults", string_of_int (Array.length faults)) ]
    (fun () ->
      match t.mode with
      | Full -> run_per_state_full t ~pi ~good_state ~faults ~states
      | Event_driven -> run_per_state_event t ~pi ~good_state ~faults ~states)

let detects t ~pi ~state fault =
  let r = run_batch t ~pi ~state ~faults:[| fault |] in
  match r.outcomes.(0) with Same -> false | Po_detected | Capture_differs _ -> true

(* Detection flags don't need the per-fault faulty-capture payloads that
   [outcomes_of_run] materializes, so the screening entry point reads the
   lane difference masks directly. *)
let detected_faults t ~pi ~state faults =
  Metrics.incr m_batches;
  Trace.with_span "faultsim.detected_faults"
    ~args:[ ("faults", string_of_int (Array.length faults)) ]
  @@ fun () ->
  let n = Array.length faults in
  let flags = Array.make n false in
  let order = chunk_order t.circuit faults in
  let scatter chunk_out =
    Array.iteri
      (fun ci diff ->
        let pos = ci * chunk_size in
        let len = min chunk_size (n - pos) in
        for i = 0 to len - 1 do
          if Lanes.get diff (i + 1) then flags.(order.(pos + i)) <- true
        done)
      chunk_out
  in
  (match t.mode with
  | Full ->
      let inj = ordered_injections t faults order in
      let pi_words = broadcast_words pi in
      let state_words = broadcast_words state in
      scatter
        (run_full_chunks t ~nchunks:(num_chunks n) (fun par ci ->
             let len = min chunk_size (n - (ci * chunk_size)) in
             let r = Parallel.run par ~pi:pi_words ~state:state_words ~injections:inj.(ci) in
             let used = Lanes.mask (len + 1) in
             diff_mask r.po used lor diff_mask r.capture used))
  | Event_driven ->
      let plans = ordered_plans t faults order in
      let ev0 = Lazy.force t.ev in
      Event.set_stimulus ev0 ~pi ~state;
      scatter
        (run_event_chunks t ~nchunks:(num_chunks n) (fun ev ci ->
             let len = min chunk_size (n - (ci * chunk_size)) in
             Event.run_diff ev ~plan:plans.(ci) ~used:(Lanes.mask (len + 1)) ())));
  flags

(* Multi-vector screening. The pool axis here is *vector batches* of size
   [t.batch], not 62-fault chunks: one pool submission covers the whole
   vector set, the cone order and injection lists are built once and shared
   read-only, and each vector's full stimulus pass is private to the slot
   that screens it (no baseline adoption traffic). Results are keyed by
   batch index and every vector's work is identical no matter which slot
   runs it, so the matrix — and the merged stable counters — are
   byte-identical for every [jobs] and every [batch] setting. *)
let detected_matrix t ~vectors faults =
  Metrics.incr m_batches;
  Trace.with_span "faultsim.detected_matrix"
    ~args:
      [
        ("vectors", string_of_int (Array.length vectors));
        ("faults", string_of_int (Array.length faults));
      ]
  @@ fun () ->
  let nvec = Array.length vectors in
  let n = Array.length faults in
  if nvec = 0 then [||]
  else begin
    let nchunks = num_chunks n in
    let order = chunk_order t.circuit faults in
    (* Built (or memo-fetched) on the submitter before any fan-out: pool
       workers only read them. Each mode builds just its own shape. *)
    let inj = match t.mode with Full -> ordered_injections t faults order | Event_driven -> [||] in
    let plans =
      match t.mode with Event_driven -> ordered_plans t faults order | Full -> [||]
    in
    let scatter diff ~pos ~len flags =
      for i = 0 to len - 1 do
        if Lanes.get diff (i + 1) then flags.(order.(pos + i)) <- true
      done
    in
    let screen_event ev (pi, state) =
      Event.set_stimulus ev ~pi ~state;
      let flags = Array.make n false in
      let events = ref 0 and evals = ref 0 in
      for ci = 0 to nchunks - 1 do
        let pos = ci * chunk_size in
        let len = min chunk_size (n - pos) in
        let diff = Event.run_diff ev ~plan:plans.(ci) ~used:(Lanes.mask (len + 1)) () in
        events := !events + Event.last_events ev;
        evals := !evals + Event.last_evals ev;
        scatter diff ~pos ~len flags
      done;
      (* One flush per vector: shard merge is a sum, so totals match a
         per-chunk flush exactly, for every jobs and batch value. *)
      Metrics.add m_event_runs nchunks;
      Metrics.add m_events_fired !events;
      Metrics.add m_gate_evals !evals;
      Metrics.add m_gates_skipped ((nchunks * Event.full_evals ev) - !evals);
      Metrics.add m_chunks nchunks;
      flags
    in
    let screen_full par (pi, state) =
      let pi_words = broadcast_words pi in
      let state_words = broadcast_words state in
      let flags = Array.make n false in
      for ci = 0 to nchunks - 1 do
        let pos = ci * chunk_size in
        let len = min chunk_size (n - pos) in
        let r = Parallel.run par ~pi:pi_words ~state:state_words ~injections:inj.(ci) in
        let used = Lanes.mask (len + 1) in
        scatter (diff_mask r.po used lor diff_mask r.capture used) ~pos ~len flags
      done;
      Metrics.add m_full_runs nchunks;
      Metrics.add m_chunks nchunks;
      flags
    in
    let screen slot v =
      match t.mode with
      | Event_driven -> screen_event (Lazy.force slot.s_ev) v
      | Full -> screen_full slot.s_par v
    in
    let bsize = t.batch in
    let nbatches = (nvec + bsize - 1) / bsize in
    let screen_batch slot bi =
      let pos = bi * bsize in
      let len = min bsize (nvec - pos) in
      Array.init len (fun k -> screen slot vectors.(pos + k))
    in
    let out =
      if t.jobs = 1 || nbatches <= 1 then begin
        let slot0 = { s_par = t.par; s_ev = t.ev } in
        Array.init nbatches (screen_batch slot0)
      end
      else begin
        let fo = fanout_ctx t in
        Pool.parallel_map_chunks fo.pool ~n:nbatches (fun ~slot bi ->
            screen_batch fo.slots.(slot) bi)
      end
    in
    let matrix = Array.make nvec [||] in
    Array.iteri
      (fun bi batch -> Array.iteri (fun k flags -> matrix.((bi * bsize) + k) <- flags) batch)
      out;
    matrix
  end
