(** Single stuck-at faults.

    A fault lives either on a {e stem} (the net itself, affecting every
    consumer and any primary-output observation of that net) or on a fanout
    {e branch} (visible only to one consumer pin). The paper's example fault
    list ("B-D/1", "E-b/0", ...) uses exactly this model. *)

type t = {
  stem : Tvs_netlist.Circuit.net;
  branch : (Tvs_netlist.Circuit.net * int) option;
      (** [Some (sink, pin)]: fault on the branch feeding [pin] of [sink]. *)
  stuck : bool;
}

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val stem_fault : Tvs_netlist.Circuit.net -> bool -> t
val branch_fault : Tvs_netlist.Circuit.net -> sink:Tvs_netlist.Circuit.net -> pin:int -> bool -> t

val to_injection : t -> lane:int -> Tvs_sim.Parallel.injection

val encode : Tvs_util.Wire.writer -> t -> unit
(** Wire form for the persistence layer. Net ids are meaningful only
    relative to the circuit the fault was generated for; persisted fault
    sets are therefore always stored next to the circuit's content digest. *)

val decode : Tvs_util.Wire.reader -> t
(** Raises [Tvs_util.Wire.Error] on malformed input. *)

val name : Tvs_netlist.Circuit.t -> t -> string
(** Human-readable name in the paper's style: ["F/0"] for a stem fault,
    ["B-D/1"] for the branch of net B feeding gate D. *)

val pp : Tvs_netlist.Circuit.t -> Format.formatter -> t -> unit
