module Circuit = Tvs_netlist.Circuit

type t = { stem : Circuit.net; branch : (Circuit.net * int) option; stuck : bool }

let equal a b = a.stem = b.stem && a.branch = b.branch && a.stuck = b.stuck

let compare a b = Stdlib.compare (a.stem, a.branch, a.stuck) (b.stem, b.branch, b.stuck)

let hash a = Hashtbl.hash (a.stem, a.branch, a.stuck)

let stem_fault stem stuck = { stem; branch = None; stuck }

let branch_fault stem ~sink ~pin stuck = { stem; branch = Some (sink, pin); stuck }

let to_injection t ~lane =
  { Tvs_sim.Parallel.lane; stuck = t.stuck; stem = t.stem; branch = t.branch }

module Wire = Tvs_util.Wire

let encode w t =
  Wire.write_varint w t.stem;
  Wire.write_option
    (fun w (sink, pin) ->
      Wire.write_varint w sink;
      Wire.write_varint w pin)
    w t.branch;
  Wire.write_bool w t.stuck

let decode r =
  let stem = Wire.read_varint r in
  let branch =
    Wire.read_option
      (fun r ->
        let sink = Wire.read_varint r in
        (sink, Wire.read_varint r))
      r
  in
  { stem; branch; stuck = Wire.read_bool r }

let name c t =
  let v = if t.stuck then "1" else "0" in
  match t.branch with
  | None -> Printf.sprintf "%s/%s" (Circuit.net_name c t.stem) v
  | Some (sink, pin) ->
      (* Paper style "B-D/1"; the pin index is shown only when the stem feeds
         the same sink on several pins, where the short form is ambiguous. *)
      let same_sink =
        Array.fold_left
          (fun acc (s, _) -> if s = sink then acc + 1 else acc)
          0 (Circuit.fanout c t.stem)
      in
      (* Scan-cell sinks print in lowercase, matching the paper's "E-b/0". *)
      let sink_name =
        let nm = Circuit.net_name c sink in
        match Circuit.driver c sink with
        | Circuit.Flip_flop _ -> String.lowercase_ascii nm
        | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ -> nm
      in
      if same_sink > 1 then
        Printf.sprintf "%s-%s.%d/%s" (Circuit.net_name c t.stem) sink_name pin v
      else Printf.sprintf "%s-%s/%s" (Circuit.net_name c t.stem) sink_name v

let pp c fmt t = Format.pp_print_string fmt (name c t)
