(** ATPG-aware test-point insertion: propose, insert, evaluate.

    A {e study} closes the loop the lint risk table opens. Candidates are
    mined from the S004 hidden-fault-risk analysis ({!Candidate.mine}),
    applied to the netlist ({!Transform.apply}), and selected greedily: each
    round evaluates every remaining candidate by running the full stitched
    flow ({!Tvs_harness.Experiments.run_flow}) on the modified circuit —
    fanned out across {!Tvs_util.Pool} — and keeps the one converting the
    most statically hidden nets (coverage, test time and memory break
    ties). Conversions are measured at the {e matched emitted window}: a
    circuit with [k] observe cells appended is compared at shift [s + k],
    so the original emitted cells stay emitted, every observe cell is
    emitted, and the exclusive-net union can only shrink (DESIGN.md §13).

    Everything is deterministic: candidate order, the chunk-ordered pool
    results, and the jobs-invariant flow summaries make the study
    byte-identical at every [--jobs]/[--batch]. When a result cache is
    installed ({!Tvs_harness.Experiments.set_cache}) each evaluation's flow
    memoizes per modified-circuit digest under kind ["EXPR"], and the whole
    study memoizes under kind ["TPIS"] keyed by the base circuit digest and
    the options — a re-run loads the study without touching the engine. *)

type options = {
  points : int;  (** K: test points to select (greedy rounds) *)
  budget : int;  (** candidate pool size (top of the mined ranking) *)
  shift : int option;  (** mining shift; [None] = {!Tvs_lint.Scan_lint.default_shift} *)
  po_taps : bool;  (** also mine direct primary-output taps *)
  controls : bool;  (** also mine control points *)
}

val default_options : options
(** 2 points from the top 8 candidates, default shift, observe cells only. *)

type point = {
  candidate : Candidate.t;
  conversions : int;
      (** stem faults on nets this point made observable (2 per net),
          incremental over the previously selected points *)
  summary : Tvs_harness.Experiments.run_summary;
      (** the stitched flow on the circuit with this point and all prior
          selections inserted *)
  d_coverage : float;  (** vs the previous round's summary *)
  dm : float;
  dt : float;
}

type result = {
  circuit : string;
  chain_len : int;  (** original chain length *)
  shift : int;  (** mining shift actually used (clamped) *)
  candidates : int;  (** mined pool size *)
  base : Tvs_harness.Experiments.run_summary;  (** unmodified circuit's flow *)
  points : point list;  (** selection order *)
  converted : string list;
      (** nets exclusive under [shift] in the base circuit but observable in
          the final circuit at the matched window, sorted by name *)
  caught : int;
      (** converted stem faults the final circuit's own stitched test set
          actually catches, confirmed by replaying the engine's stimuli
          through a {!Tvs_core.Cycle} machine *)
  converted_faults : int;  (** [2 * length converted] *)
}

val final_summary : result -> Tvs_harness.Experiments.run_summary
(** Last selected point's summary; [base] when nothing was selected. *)

val run : ?options:options -> Tvs_netlist.Circuit.t -> result
(** Run (or load from cache) a study. Raises
    {!Tvs_netlist.Circuit.Build_error} on a circuit without flip-flops or
    one already using the [tpi_] name prefix. *)

val schema_version : int
(** Version of the JSON schema and the cache wire encoding. *)

val study_kind : string
(** Cache frame kind of stored studies (["TPIS"]); exposed so the serve
    daemon can probe {!Tvs_store.Cache.entry_path} for dedupe. *)

val study_key : ?options:options -> Tvs_netlist.Circuit.t -> Tvs_store.Digest.t
(** The cache key {!run} stores its study under: the circuit digest
    combined with the schema version, the label and the options. *)

val label : string
(** The experiment label ("tpi") all of a study's flows run under. *)

val encode_options : Tvs_util.Wire.writer -> options -> unit
val encode_result : Tvs_util.Wire.writer -> result -> unit

val decode_result : Tvs_util.Wire.reader -> result
(** Raises [Tvs_util.Wire.Error] on malformed input. *)

val to_ascii : result -> string
(** Header, base/final summary lines, the per-point table, and the
    hidden-to-caught line. Deterministic; ends with a newline. *)

val to_json : result -> Tvs_obs.Json.t
(** Schema (also enforced by `validate_report --tpi`):
    {v
    { "schema": 1, "circuit": str, "chain_len": int, "shift": int,
      "candidates": int, "base": summary, "points": [point],
      "final": summary, "converted": [str], "caught": int,
      "converted_faults": int }
    summary = { "atv": int, "tv": int, "extra": int, "m": num, "t": num,
                "coverage": num, "peak_hidden": int }
    point   = { "kind": "obs-cell|obs-po|ctl-1|ctl-0", "net": str,
                "score": int, "hits": int, "dmem": int, "dtime": int,
                "conversions": int, "summary": summary, "d_coverage": num,
                "dm": num, "dt": num }
    v} *)

val to_json_string : result -> string
