(** Netlist application of a test-point candidate set.

    Follows the {!Tvs_netlist.Scan_insert} conventions: the circuit is
    rebuilt net by net through {!Tvs_netlist.Circuit.Builder}, original net
    names survive unchanged, and flip-flop declaration order {e is} scan
    order — observe cells are declared after every original flop, so they
    occupy the chain-tail positions the shifted schedule emits first, and
    the Verilog [Emitter --scan] path stitches them in without special
    cases. The result is a pure function of [(circuit, candidate list)], so
    its {!Tvs_store.Digest.circuit} digest is stable and cache keys built
    from it are sound. *)

val reserved_prefix : string
(** ["tpi_"]. All inserted nets are named under it ([tpi_obs_<net>],
    [tpi_po_<net>], [tpi_ctl_<net>], [tpi_ctlg_<net>], [tpi_ctln_<net>]),
    and {!apply} rejects circuits that already use it — mirroring
    {!Tvs_netlist.Scan_insert}'s reserved scan-pin names. *)

val apply : Tvs_netlist.Circuit.t -> Candidate.t list -> Tvs_netlist.Circuit.t
(** Insert every candidate, in list order (which fixes the new chain-tail
    order and the new input/output order). Control points splice a gate
    behind the target net: every reader — downstream gates, flop D pins,
    output marks and observe points — sees the controlled value, while the
    control gate reads the original driver. The result is named
    [<name>_tpi].

    Raises {!Tvs_netlist.Circuit.Build_error} when the circuit already
    contains a [tpi_]-prefixed net, a candidate's target net does not
    exist, or the same [(kind, net)] appears twice. *)

val observe_cells : Candidate.t list -> int
(** How many candidates extend the scan chain ([Observe_cell]) — the [k] of
    the matched emitted window [s + k] the evaluation measures risk at. *)
