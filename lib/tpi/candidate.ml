module Circuit = Tvs_netlist.Circuit
module Cost = Tvs_scan.Cost
module Scan_lint = Tvs_lint.Scan_lint

type kind = Observe_cell | Observe_po | Control_one | Control_zero

type t = {
  kind : kind;
  net : string;
  score : int;
  hits : int;
  dmem : int;
  dtime : int;
}

let kind_name = function
  | Observe_cell -> "obs-cell"
  | Observe_po -> "obs-po"
  | Control_one -> "ctl-1"
  | Control_zero -> "ctl-0"

let kind_rank = function
  | Observe_cell -> 0
  | Observe_po -> 1
  | Control_one -> 2
  | Control_zero -> 3

let same_target a b = a.kind = b.kind && a.net = b.net

(* Mirrors the weight of the exclusive term in the S004 risk formula
   (Scan_lint / DESIGN.md §8): removing one exclusive net from a retained
   row removes 3 risk points there. *)
let exclusive_weight = 3

(* Marginal per-vector cost of one inserted point, expressed through the
   same Cost model every ratio in the project is measured with: the delta of
   the traditional-flow per-vector memory/time when the point's new scan
   cell, output or control input is accounted for. *)
let cost_delta c kind =
  let chain_len = Circuit.num_flops c in
  let npi = Circuit.num_inputs c in
  let npo = Circuit.num_outputs c in
  let mem ~chain_len ~npi ~npo = Cost.baseline_memory ~chain_len ~npi ~npo ~nvec:1 in
  let time ~chain_len = Cost.baseline_time ~chain_len ~nvec:1 in
  match kind with
  | Observe_cell ->
      ( mem ~chain_len:(chain_len + 1) ~npi ~npo - mem ~chain_len ~npi ~npo,
        time ~chain_len:(chain_len + 1) - time ~chain_len )
  | Observe_po -> (mem ~chain_len ~npi ~npo:(npo + 1) - mem ~chain_len ~npi ~npo, 0)
  | Control_one | Control_zero ->
      (mem ~chain_len ~npi:(npi + 1) ~npo - mem ~chain_len ~npi ~npo, 0)

let mine ?shift ?(po_taps = false) ?(controls = false) ?limit c =
  let chain_len = Circuit.num_flops c in
  if chain_len = 0 then []
  else begin
    let s =
      match shift with
      | Some s -> max 1 (min s chain_len)
      | None -> Scan_lint.default_shift c
    in
    let risk = Scan_lint.risk_table ~s c in
    let excl = Scan_lint.exclusive_nets ~s c in
    (* Tally every net that is exclusive to some retained position: [hits]
       rows contain it, [maxobs] is the worst capped observability among
       them — tapping the net pays off once per row and most where
       observation is already expensive. *)
    let tally = Hashtbl.create 32 in
    Array.iteri
      (fun i (row : Scan_lint.risk_row) ->
        if not row.emitted then
          List.iter
            (fun x ->
              let nm = Circuit.net_name c x in
              let hits, maxobs =
                Option.value ~default:(0, 0) (Hashtbl.find_opt tally nm)
              in
              Hashtbl.replace tally nm (hits + 1, max maxobs row.observability))
            excl.(i))
      risk;
    let nets =
      List.sort compare (Hashtbl.fold (fun nm hm acc -> (nm, hm) :: acc) tally [])
    in
    let candidate kind (nm, (hits, maxobs)) =
      let dmem, dtime = cost_delta c kind in
      let score = max 0 ((exclusive_weight * hits) + maxobs - dmem) in
      { kind; net = nm; score; hits; dmem; dtime }
    in
    let kinds =
      [ Observe_cell ]
      @ (if po_taps then [ Observe_po ] else [])
      @ if controls then [ Control_one; Control_zero ] else []
    in
    let all = List.concat_map (fun k -> List.map (candidate k) nets) kinds in
    let ranked =
      List.sort
        (fun a b ->
          match compare b.score a.score with
          | 0 -> (
              match compare (kind_rank a.kind) (kind_rank b.kind) with
              | 0 -> compare a.net b.net
              | n -> n)
          | n -> n)
        all
    in
    match limit with
    | Some n -> List.filteri (fun i _ -> i < n) ranked
    | None -> ranked
  end
