(** Test-point candidates mined from the lint hidden-fault-risk table.

    The S004 risk table ({!Tvs_lint.Scan_lint.risk_table}) already names
    where the stitched flow loses faults: retained scan positions whose
    D-support contains {e exclusive} nets — nets no primary output and no
    emitted cell can observe. Every candidate targets one such net.
    Observation points make the net visible somewhere the shifted schedule
    emits (a new scan cell appended to the chain tail, or a direct primary
    output tap); control points (optional) make it easier to set from
    outside through a fresh control input. *)

type kind =
  | Observe_cell  (** new scan cell at the chain tail capturing the net *)
  | Observe_po  (** buffer tap of the net marked as a new primary output *)
  | Control_one  (** OR the net with a new control input (1 forces 1) *)
  | Control_zero  (** AND the net with the inverted control input (1 forces 0) *)

type t = {
  kind : kind;
  net : string;  (** target net, by name — stable across the transform *)
  score : int;  (** static rank: [3*hits + maxobs - dmem], clamped at 0 *)
  hits : int;  (** retained positions whose exclusive support holds the net *)
  dmem : int;  (** per-vector test-data bits the point adds *)
  dtime : int;  (** per-vector test-time cycles the point adds *)
}

val kind_name : kind -> string
(** ["obs-cell"], ["obs-po"], ["ctl-1"], ["ctl-0"] — the ASCII/JSON tag. *)

val kind_rank : kind -> int
(** Tie-break order: observation before control, cells before taps. *)

val same_target : t -> t -> bool
(** Equal [(kind, net)] — the identity the greedy loop deduplicates on. *)

val cost_delta : Tvs_netlist.Circuit.t -> kind -> int * int
(** [(dmem, dtime)] of one point on this circuit: the marginal per-vector
    cost under {!Tvs_scan.Cost.baseline_memory}/[baseline_time] of one more
    scan cell (observe cell), primary output (tap) or primary input
    (control). *)

val mine :
  ?shift:int ->
  ?po_taps:bool ->
  ?controls:bool ->
  ?limit:int ->
  Tvs_netlist.Circuit.t ->
  t list
(** Ranked candidate list for the risk table at [shift] (clamped to
    [1..L]; default {!Tvs_lint.Scan_lint.default_shift}). One candidate per
    enabled kind per exclusive net; [po_taps] and [controls] (both off by
    default) enable the tap and control kinds. Sorted by score descending,
    then {!kind_rank}, then net name — a pure function of the circuit and
    the flags. [limit] keeps the top entries. Empty when the circuit has no
    flip-flops or the risk table has no exclusive nets. *)
