module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate

let reserved_prefix = "tpi_"

let has_prefix s = String.length s >= 4 && String.sub s 0 4 = reserved_prefix

let obs_cell_name nm = "tpi_obs_" ^ nm
let po_tap_name nm = "tpi_po_" ^ nm
let control_pi_name nm = "tpi_ctl_" ^ nm
let control_gate_name nm = "tpi_ctlg_" ^ nm
let control_not_name nm = "tpi_ctln_" ^ nm

(* Rebuild the circuit net by net — the [Scan_insert] idiom — applying the
   candidate list in order. Net ids change; [map] carries old ids to new
   ones, and [redirect] overrides the mapping for controlled nets so every
   reader downstream of a control gate (gates, flop D pins, output marks,
   observe points) sees the controlled value while the control gate itself
   reads the original driver. Observe cells are declared after the original
   flops, so they occupy the chain-tail positions in {!Circuit.flops}
   order — exactly where the shifted schedule emits first. *)
let apply c cands =
  for net = 0 to Circuit.num_nets c - 1 do
    let nm = Circuit.net_name c net in
    if has_prefix nm then
      raise
        (Circuit.Build_error
           (Printf.sprintf "net %s: %s is a reserved test-point name prefix" nm reserved_prefix))
  done;
  let rec dup = function
    | [] -> ()
    | (x : Candidate.t) :: rest ->
        if List.exists (Candidate.same_target x) rest then
          raise
            (Circuit.Build_error
               (Printf.sprintf "duplicate %s test point on net %s" (Candidate.kind_name x.kind)
                  x.net));
        dup rest
  in
  dup cands;
  let target (cand : Candidate.t) =
    match Circuit.find_net_opt c cand.net with
    | Some n -> n
    | None ->
        raise
          (Circuit.Build_error
             (Printf.sprintf "test-point target %s is not a net of %s" cand.net (Circuit.name c)))
  in
  let controlled =
    List.filter_map
      (fun (cand : Candidate.t) ->
        match cand.kind with
        | Candidate.Control_one | Candidate.Control_zero -> Some (target cand, cand)
        | Candidate.Observe_cell | Candidate.Observe_po -> None)
      cands
  in
  let b = Circuit.Builder.create (Circuit.name c ^ "_tpi") in
  let map = Array.make (Circuit.num_nets c) (-1) in
  let redirect = Array.make (Circuit.num_nets c) (-1) in
  let read x = if redirect.(x) >= 0 then redirect.(x) else map.(x) in
  Array.iter
    (fun net -> map.(net) <- Circuit.Builder.input b (Circuit.net_name c net))
    (Circuit.inputs c);
  let control_pis =
    List.map
      (fun (old, (cand : Candidate.t)) ->
        (old, cand, Circuit.Builder.input b (control_pi_name cand.net)))
      controlled
  in
  Array.iter
    (fun net -> map.(net) <- Circuit.Builder.flop_forward b (Circuit.net_name c net))
    (Circuit.flops c);
  (* The control gate reads the target's ORIGINAL new id, never [read]: a
     controlled net must not feed its own control gate. *)
  let install_control (old, (cand : Candidate.t), pi) =
    let g =
      match cand.kind with
      | Candidate.Control_one ->
          Circuit.Builder.gate b ~name:(control_gate_name cand.net) Gate.Or [ map.(old); pi ]
      | Candidate.Control_zero ->
          let n = Circuit.Builder.gate b ~name:(control_not_name cand.net) Gate.Not [ pi ] in
          Circuit.Builder.gate b ~name:(control_gate_name cand.net) Gate.And [ map.(old); n ]
      | Candidate.Observe_cell | Candidate.Observe_po -> assert false
    in
    redirect.(old) <- g
  in
  (* Controls whose target is already mapped (a PI or a flop Q) install
     before the combinational sweep; the rest install as soon as the topo
     walk maps their target, so later gates read the controlled value. *)
  List.iter (fun ((old, _, _) as cp) -> if map.(old) >= 0 then install_control cp) control_pis;
  Array.iter
    (fun net ->
      (match Circuit.driver c net with
      | Circuit.Gate_node (kind, ins) ->
          map.(net) <-
            Circuit.Builder.gate b ~name:(Circuit.net_name c net) kind
              (Array.to_list (Array.map (fun i -> read i) ins))
      | Circuit.Const v -> map.(net) <- Circuit.Builder.const b ~name:(Circuit.net_name c net) v
      | Circuit.Primary_input | Circuit.Flip_flop _ -> ());
      List.iter
        (fun ((old, _, _) as cp) -> if old = net then install_control cp)
        control_pis)
    (Circuit.topo_order c);
  Array.iter
    (fun fnet ->
      match Circuit.driver c fnet with
      | Circuit.Flip_flop d -> Circuit.Builder.connect_flop b map.(fnet) (read d)
      | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ ->
          raise (Circuit.Build_error "flop list corrupt"))
    (Circuit.flops c);
  Array.iter (fun net -> Circuit.Builder.mark_output b (read net)) (Circuit.outputs c);
  List.iter
    (fun (cand : Candidate.t) ->
      match cand.kind with
      | Candidate.Observe_po ->
          let tap =
            Circuit.Builder.gate b ~name:(po_tap_name cand.net) Gate.Buf [ read (target cand) ]
          in
          Circuit.Builder.mark_output b tap
      | Candidate.Observe_cell ->
          ignore (Circuit.Builder.flop b ~name:(obs_cell_name cand.net) (read (target cand)))
      | Candidate.Control_one | Candidate.Control_zero -> ())
    cands;
  Circuit.Builder.finish b

let observe_cells cands =
  List.length
    (List.filter (fun (c : Candidate.t) -> c.kind = Candidate.Observe_cell) cands)
