module Circuit = Tvs_netlist.Circuit
module Cube = Tvs_atpg.Cube
module Fault = Tvs_fault.Fault
module Baseline = Tvs_core.Baseline
module Cycle = Tvs_core.Cycle
module Engine = Tvs_core.Engine
module Scan_lint = Tvs_lint.Scan_lint
module Prep = Tvs_harness.Prep
module Experiments = Tvs_harness.Experiments
module Pool = Tvs_util.Pool
module Table = Tvs_util.Table
module Wire = Tvs_util.Wire
module Json = Tvs_obs.Json
module Metrics = Tvs_obs.Metrics
module Trace = Tvs_obs.Trace
module Store_digest = Tvs_store.Digest
module Cache = Tvs_store.Cache
module SS = Set.Make (String)

let schema_version = 1
let study_kind = "TPIS"

(* The experiment label every flow of a study runs under: it seeds the
   engine RNG through [Prep.engine_seed], and together with the modified
   circuit's digest it keys the per-evaluation EXPR cache rows. *)
let label = "tpi"

let m_studies = Metrics.counter "tpi.studies"
let m_evaluations = Metrics.counter "tpi.evaluations"
let m_selected = Metrics.counter "tpi.points.selected"
let m_conversions = Metrics.counter "tpi.conversions"

type options = {
  points : int;
  budget : int;
  shift : int option;
  po_taps : bool;
  controls : bool;
}

let default_options = { points = 2; budget = 8; shift = None; po_taps = false; controls = false }

type point = {
  candidate : Candidate.t;
  conversions : int;
  summary : Experiments.run_summary;
  d_coverage : float;
  dm : float;
  dt : float;
}

type result = {
  circuit : string;
  chain_len : int;
  shift : int;
  candidates : int;
  base : Experiments.run_summary;
  points : point list;
  converted : string list;
  caught : int;
  converted_faults : int;
}

let final_summary r =
  match List.rev r.points with [] -> r.base | p :: _ -> p.summary

(* Union of every position's exclusive support, by net name — the set of
   nets statically guaranteed to hide faults under this emitted window. *)
let exclusive_union c ~s =
  Array.fold_left
    (fun acc nets ->
      List.fold_left (fun acc n -> SS.add (Circuit.net_name c n) acc) acc nets)
    SS.empty (Scan_lint.exclusive_nets ~s c)

(* One candidate evaluation: insert [selected @ [cand]], recompute the
   exclusive union at the matched emitted window s + k (k = observe cells
   inserted, so the original emitted cells stay emitted and every observe
   cell is emitted — the DESIGN §13 measurement contract), and run the full
   stitched flow on the modified circuit. [run_flow] memoizes per modified
   circuit digest when a cache is installed. *)
let evaluate c ~s ~selected ~prev_excl (cand : Candidate.t) =
  let trial = selected @ [ cand ] in
  let c' = Transform.apply c trial in
  let excl' = exclusive_union c' ~s:(s + Transform.observe_cells trial) in
  let conv = SS.cardinal (SS.diff prev_excl excl') in
  let summary = Experiments.run_flow ~label (Prep.of_circuit c') in
  (cand, conv, excl', summary)

(* Lexicographic argmax over one round's evaluations: conversions first,
   then coverage, then test time and memory, then the mined rank (array
   order). Evaluations arrive in candidate-array order from the pool, so
   the winner is identical at every [--jobs]. *)
let better (_, conv_a, _, (sa : Experiments.run_summary))
    (_, conv_b, _, (sb : Experiments.run_summary)) =
  if conv_a <> conv_b then conv_a > conv_b
  else if sa.coverage <> sb.coverage then sa.coverage > sb.coverage
  else if sa.t <> sb.t then sa.t < sb.t
  else if sa.m <> sb.m then sa.m < sb.m
  else false

(* Dynamic confirmation of the static conversions: rerun the engine on the
   final modified circuit (the same config, label and RNG stream the
   evaluation flows used, so this is the exact test set the final summary
   describes) and replay its stimuli through a fresh Cycle machine carrying
   only the converted nets' stem faults. *)
let dynamic_caught c selected converted =
  let c' = Transform.apply c selected in
  let prep = Prep.of_circuit c' in
  let config = Experiments.config_for prep in
  let r =
    Engine.run ~config ~fallback:prep.Prep.baseline.Baseline.vectors
      ~rng:(Prep.engine_seed prep label) prep.Prep.ctx ~faults:prep.Prep.testable
  in
  let faults =
    Array.of_list
      (List.concat_map
         (fun nm ->
           let n = Circuit.find_net c' nm in
           [ Fault.stem_fault n false; Fault.stem_fault n true ])
         converted)
  in
  let machine = Cycle.create ~scheme:config.Engine.scheme c' ~faults in
  List.iter (fun (pi, fresh) -> ignore (Cycle.step machine ~pi ~fresh)) r.Engine.stimuli;
  List.iter
    (fun (v : Cube.vector) -> ignore (Cycle.step machine ~pi:v.Cube.pi ~fresh:v.Cube.scan))
    r.Engine.extra_stimuli;
  ignore (Cycle.flush machine ~full:true);
  Cycle.num_caught machine

let run_study (options : options) c =
  let chain_len = Circuit.num_flops c in
  if chain_len = 0 then
    raise (Circuit.Build_error "test-point insertion needs flip-flops");
  let s =
    match options.shift with
    | Some s -> max 1 (min s chain_len)
    | None -> Scan_lint.default_shift c
  in
  (* Force the base circuit's lazy topo cache before worker domains share
     it read-only inside [Transform.apply]. *)
  ignore (Circuit.topo_order c);
  let mined =
    Candidate.mine ~shift:s ~po_taps:options.po_taps ~controls:options.controls
      ~limit:(max 1 options.budget) c
  in
  let base = Experiments.run_flow ~label (Prep.of_circuit c) in
  let e0 = exclusive_union c ~s in
  let pool = Pool.shared ~jobs:(Pool.default_jobs ()) in
  let rec rounds n selected points prev_excl prev_summary remaining =
    if n = 0 || remaining = [] then List.rev points
    else begin
      let arr = Array.of_list remaining in
      let evals =
        Pool.parallel_map_chunks pool ~n:(Array.length arr) (fun ~slot:_ i ->
            evaluate c ~s ~selected ~prev_excl arr.(i))
      in
      Array.iter (fun _ -> Metrics.incr m_evaluations) evals;
      let best = ref 0 in
      Array.iteri (fun i e -> if i > 0 && better e evals.(!best) then best := i) evals;
      let cand, conv, excl', summary = evals.(!best) in
      Metrics.incr m_selected;
      let point =
        {
          candidate = cand;
          conversions = 2 * conv;
          summary;
          d_coverage = summary.Experiments.coverage -. prev_summary.Experiments.coverage;
          dm = summary.Experiments.m -. prev_summary.Experiments.m;
          dt = summary.Experiments.t -. prev_summary.Experiments.t;
        }
      in
      rounds (n - 1) (selected @ [ cand ]) (point :: points) excl' summary
        (List.filter (fun x -> not (Candidate.same_target x cand)) remaining)
    end
  in
  let points = rounds (max 0 options.points) [] [] e0 base mined in
  let selected = List.map (fun p -> p.candidate) points in
  let final_excl =
    match selected with
    | [] -> e0
    | _ ->
        exclusive_union (Transform.apply c selected)
          ~s:(s + Transform.observe_cells selected)
  in
  let converted = SS.elements (SS.diff e0 final_excl) in
  List.iter (fun _ -> Metrics.incr m_conversions) converted;
  let caught =
    match (selected, converted) with
    | [], _ | _, [] -> 0
    | _ -> dynamic_caught c selected converted
  in
  {
    circuit = Circuit.name c;
    chain_len;
    shift = s;
    candidates = List.length mined;
    base;
    points;
    converted;
    caught;
    converted_faults = 2 * List.length converted;
  }

(* ---------- wire form (result cache) ---------- *)

let encode_options w (o : options) =
  Wire.write_varint w o.points;
  Wire.write_varint w o.budget;
  Wire.write_option (fun w s -> Wire.write_varint w s) w o.shift;
  Wire.write_bool w o.po_taps;
  Wire.write_bool w o.controls

let encode_kind w k = Wire.write_u8 w (Candidate.kind_rank k)

let decode_kind r =
  match Wire.read_u8 r with
  | 0 -> Candidate.Observe_cell
  | 1 -> Candidate.Observe_po
  | 2 -> Candidate.Control_one
  | 3 -> Candidate.Control_zero
  | n -> raise (Wire.Error (Printf.sprintf "unknown test-point kind %d" n))

let encode_candidate w (c : Candidate.t) =
  encode_kind w c.kind;
  Wire.write_string w c.net;
  Wire.write_varint w c.score;
  Wire.write_varint w c.hits;
  Wire.write_varint w c.dmem;
  Wire.write_varint w c.dtime

let decode_candidate r : Candidate.t =
  let kind = decode_kind r in
  let net = Wire.read_string r in
  let score = Wire.read_varint r in
  let hits = Wire.read_varint r in
  let dmem = Wire.read_varint r in
  let dtime = Wire.read_varint r in
  { kind; net; score; hits; dmem; dtime }

let encode_point w p =
  encode_candidate w p.candidate;
  Wire.write_varint w p.conversions;
  Experiments.write_summary w p.summary;
  Wire.write_f64 w p.d_coverage;
  Wire.write_f64 w p.dm;
  Wire.write_f64 w p.dt

let decode_point r =
  let candidate = decode_candidate r in
  let conversions = Wire.read_varint r in
  let summary = Experiments.read_summary r in
  let d_coverage = Wire.read_f64 r in
  let dm = Wire.read_f64 r in
  let dt = Wire.read_f64 r in
  { candidate; conversions; summary; d_coverage; dm; dt }

let encode_result w r =
  Wire.write_string w r.circuit;
  Wire.write_varint w r.chain_len;
  Wire.write_varint w r.shift;
  Wire.write_varint w r.candidates;
  Experiments.write_summary w r.base;
  Wire.write_list encode_point w r.points;
  Wire.write_list Wire.write_string w r.converted;
  Wire.write_varint w r.caught;
  Wire.write_varint w r.converted_faults

let decode_result rd =
  let circuit = Wire.read_string rd in
  let chain_len = Wire.read_varint rd in
  let shift = Wire.read_varint rd in
  let candidates = Wire.read_varint rd in
  let base = Experiments.read_summary rd in
  let points = Wire.read_list decode_point rd in
  let converted = Wire.read_list Wire.read_string rd in
  let caught = Wire.read_varint rd in
  let converted_faults = Wire.read_varint rd in
  { circuit; chain_len; shift; candidates; base; points; converted; caught; converted_faults }

let study_key ?(options = default_options) c =
  Store_digest.combine (Store_digest.circuit c)
    (Store_digest.of_encoding (fun w ->
         Wire.write_varint w schema_version;
         Wire.write_string w label;
         encode_options w options))

let run ?(options = default_options) c =
  Trace.with_span "tpi" ~args:[ ("circuit", Circuit.name c) ] @@ fun () ->
  Metrics.incr m_studies;
  let compute () = run_study options c in
  match Experiments.cache () with
  | None -> compute ()
  | Some cache -> (
      let key = study_key ~options c in
      match Cache.find cache ~kind:study_kind ~key decode_result with
      | Some r -> r
      | None ->
          let r = compute () in
          Cache.store cache ~kind:study_kind ~key (fun w -> encode_result w r);
          r)

(* ---------- rendering ---------- *)

let summary_line tag (s : Experiments.run_summary) =
  Printf.sprintf "%s: TV=%d extra=%d m=%.2f t=%.2f coverage=%.4f peak hidden=%d" tag s.tv s.ex
    s.m s.t s.coverage s.peak_hidden

let to_ascii r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "tpi %s: chain %d, mining shift %d, %d candidate(s), %d point(s) selected\n"
       r.circuit r.chain_len r.shift r.candidates (List.length r.points));
  Buffer.add_string b (summary_line "base " r.base ^ "\n");
  if r.points <> [] then begin
    let t =
      Table.create [ "#"; "point"; "net"; "score"; "conv"; "cov"; "dcov"; "m"; "dm"; "t"; "dt" ]
    in
    List.iteri
      (fun i p ->
        Table.add_row t
          [
            string_of_int (i + 1);
            Candidate.kind_name p.candidate.Candidate.kind;
            p.candidate.Candidate.net;
            string_of_int p.candidate.Candidate.score;
            string_of_int p.conversions;
            Printf.sprintf "%.4f" p.summary.Experiments.coverage;
            Printf.sprintf "%+.4f" p.d_coverage;
            Printf.sprintf "%.2f" p.summary.Experiments.m;
            Printf.sprintf "%+.2f" p.dm;
            Printf.sprintf "%.2f" p.summary.Experiments.t;
            Printf.sprintf "%+.2f" p.dt;
          ])
      r.points;
    Buffer.add_string b (Table.render t);
    Buffer.add_string b (summary_line "final" (final_summary r) ^ "\n")
  end;
  (match r.converted with
  | [] -> Buffer.add_string b "hidden->caught: no statically hidden net converted\n"
  | nets ->
      Buffer.add_string b
        (Printf.sprintf "hidden->caught: %d/%d converted stem fault(s) caught across %d net(s): %s\n"
           r.caught r.converted_faults (List.length nets) (String.concat ", " nets)));
  Buffer.contents b

let summary_json (s : Experiments.run_summary) =
  Json.Obj
    [
      ("atv", Json.Int s.atv);
      ("tv", Json.Int s.tv);
      ("extra", Json.Int s.ex);
      ("m", Json.Float s.m);
      ("t", Json.Float s.t);
      ("coverage", Json.Float s.coverage);
      ("peak_hidden", Json.Int s.peak_hidden);
    ]

let point_json p =
  Json.Obj
    [
      ("kind", Json.Str (Candidate.kind_name p.candidate.Candidate.kind));
      ("net", Json.Str p.candidate.Candidate.net);
      ("score", Json.Int p.candidate.Candidate.score);
      ("hits", Json.Int p.candidate.Candidate.hits);
      ("dmem", Json.Int p.candidate.Candidate.dmem);
      ("dtime", Json.Int p.candidate.Candidate.dtime);
      ("conversions", Json.Int p.conversions);
      ("summary", summary_json p.summary);
      ("d_coverage", Json.Float p.d_coverage);
      ("dm", Json.Float p.dm);
      ("dt", Json.Float p.dt);
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.Int schema_version);
      ("circuit", Json.Str r.circuit);
      ("chain_len", Json.Int r.chain_len);
      ("shift", Json.Int r.shift);
      ("candidates", Json.Int r.candidates);
      ("base", summary_json r.base);
      ("points", Json.Arr (List.map point_json r.points));
      ("final", summary_json (final_summary r));
      ("converted", Json.Arr (List.map (fun n -> Json.Str n) r.converted));
      ("caught", Json.Int r.caught);
      ("converted_faults", Json.Int r.converted_faults);
    ]

let to_json_string r = Json.to_string (to_json r)
