(** Test cubes and fully specified test vectors.

    A cube assigns ternary values to the primary inputs and the scan cells;
    [X] bits are don't-cares left for later exploitation — random fill in a
    traditional flow, response reuse in the stitched flow. *)

type t = { pi : Tvs_logic.Ternary.t array; scan : Tvs_logic.Ternary.t array }

type vector = { pi : bool array; scan : bool array }
(** A fully specified stimulus. *)

val fully_x : Tvs_netlist.Circuit.t -> t

val copy : t -> t

val equal : t -> t -> bool

val specified_bits : t -> int
(** Number of non-[X] positions. *)

val total_bits : t -> int

val compatible : t -> t -> bool
(** No position constrained to conflicting binary values. *)

val merge : t -> t -> t option
(** Intersection when [compatible]; used by static compaction. *)

val fill_random : Tvs_util.Rng.t -> t -> vector
(** Replace every [X] with a random bit. *)

val fill_const : bool -> t -> vector

val of_vector : vector -> t

val to_string : t -> string
(** "pi|scan" with one character per bit, e.g. "1X0|01X". *)

val vector_to_string : vector -> string

val encode : Tvs_util.Wire.writer -> t -> unit
(** Wire form (one byte per ternary position) for the persistence layer. *)

val decode : Tvs_util.Wire.reader -> t
(** Raises [Tvs_util.Wire.Error] on malformed input. *)

val encode_vector : Tvs_util.Wire.writer -> vector -> unit
(** Bit-packed wire form of a fully specified stimulus. *)

val decode_vector : Tvs_util.Wire.reader -> vector

val pp : Format.formatter -> t -> unit
