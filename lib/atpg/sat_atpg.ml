module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Ternary = Tvs_logic.Ternary
module Fault = Tvs_fault.Fault
module Sat = Tvs_util.Sat

type result = Detected of Cube.t | Untestable | Unknown

(* CNF construction state: variable 0 is unused; net [n]'s fault-free copy
   is variable [n + 1]; further variables are allocated on demand. *)
type builder = { mutable nvars : int; mutable clauses : int list list }

let fresh b =
  b.nvars <- b.nvars + 1;
  b.nvars

let add b clause = b.clauses <- clause :: b.clauses

(* out <-> AND(ins); NAND/OR/NOR fall out by negating literals. *)
let encode_and b out ins =
  List.iter (fun i -> add b [ -out; i ]) ins;
  add b (out :: List.map (fun i -> -i) ins)

let encode_or b out ins =
  List.iter (fun i -> add b [ out; -i ]) ins;
  add b (-out :: ins)

let encode_xor2 b out a c =
  add b [ -out; a; c ];
  add b [ -out; -a; -c ];
  add b [ out; -a; c ];
  add b [ out; a; -c ]

let encode_equal b x y =
  add b [ -x; y ];
  add b [ x; -y ]

(* out <-> XOR(ins) via a chain of auxiliaries. *)
let encode_xor b out = function
  | [] -> invalid_arg "Sat_atpg: empty xor"
  | [ single ] -> encode_equal b out single
  | first :: rest ->
      let acc =
        List.fold_left
          (fun acc i ->
            let t = fresh b in
            encode_xor2 b t acc i;
            t)
          first rest
      in
      encode_equal b out acc

let encode_gate b ~out kind ins =
  match kind with
  | Gate.And -> encode_and b out ins
  | Gate.Nand -> encode_and b (-out) ins
  | Gate.Or -> encode_or b out ins
  | Gate.Nor -> encode_or b (-out) ins
  | Gate.Xor -> encode_xor b out ins
  | Gate.Xnor -> encode_xor b (-out) ins
  | Gate.Buf -> (
      match ins with
      | [ i ] -> encode_equal b out i
      | _ -> invalid_arg "Sat_atpg: BUF arity")
  | Gate.Not -> (
      match ins with
      | [ i ] -> encode_equal b (-out) i
      | _ -> invalid_arg "Sat_atpg: NOT arity")

(* The fault's combinational output cone (as in Podem.mark_tfo). *)
let fanout_cone c (fault : Fault.t) =
  let in_cone = Hashtbl.create 64 in
  let obs_flops = Hashtbl.create 8 in
  let rec visit net =
    if not (Hashtbl.mem in_cone net) then begin
      Hashtbl.add in_cone net ();
      Array.iter
        (fun (sink, _pin) ->
          match Circuit.driver c sink with
          | Circuit.Flip_flop _ -> Hashtbl.replace obs_flops sink ()
          | Circuit.Gate_node _ -> visit sink
          | Circuit.Primary_input | Circuit.Const _ -> ())
        (Circuit.fanout c net)
    end
  in
  (match fault.branch with
  | None -> visit fault.stem
  | Some (sink, _) -> (
      match Circuit.driver c sink with
      | Circuit.Flip_flop _ -> Hashtbl.replace obs_flops sink ()
      | Circuit.Gate_node _ -> visit sink
      | Circuit.Primary_input | Circuit.Const _ -> ()));
  (in_cone, obs_flops)

let generate_stats ?constraints ?(max_decisions = 200_000) c (fault : Fault.t) =
  let n = Circuit.num_nets c in
  let b = { nvars = n; clauses = [] } in
  let good net = net + 1 in
  (* Fault-free copy: the whole combinational core. *)
  Array.iter
    (fun net ->
      match Circuit.driver c net with
      | Circuit.Gate_node (kind, ins) ->
          encode_gate b ~out:(good net) kind (Array.to_list (Array.map good ins))
      | Circuit.Const v -> add b [ (if v then good net else -(good net)) ]
      | Circuit.Primary_input | Circuit.Flip_flop _ -> ())
    (Circuit.topo_order c);
  (* Scan-cell constraints. *)
  (match constraints with
  | None -> ()
  | Some arr ->
      let flops = Circuit.flops c in
      if Array.length arr <> Array.length flops then
        invalid_arg "Sat_atpg.generate: constraints length mismatch";
      Array.iteri
        (fun i v ->
          match v with
          | Ternary.X -> ()
          | Ternary.One -> add b [ good flops.(i) ]
          | Ternary.Zero -> add b [ -(good flops.(i)) ])
        arr);
  (* Faulty copy over the cone. *)
  let in_cone, obs_flops = fanout_cone c fault in
  let faulty_var = Hashtbl.create 64 in
  let faulty net =
    match Hashtbl.find_opt faulty_var net with
    | Some v -> v
    | None ->
        let v = fresh b in
        Hashtbl.add faulty_var net v;
        v
  in
  let stuck_lit v = if fault.stuck then v else -v in
  (* The value net [src] presents to pin [pin] of [sink] in the faulty copy. *)
  let faulty_input ~sink ~pin src =
    let is_branch =
      match fault.branch with Some (s, p) -> s = sink && p = pin | None -> false
    in
    if is_branch then begin
      let v = fresh b in
      add b [ stuck_lit v ];
      v
    end
    else if (fault.branch = None && src = fault.stem) || Hashtbl.mem in_cone src then faulty src
    else good src
  in
  (match fault.branch with
  | None -> add b [ stuck_lit (faulty fault.stem) ]
  | Some _ -> ());
  Array.iter
    (fun net ->
      if Hashtbl.mem in_cone net && not (fault.branch = None && net = fault.stem) then
        match Circuit.driver c net with
        | Circuit.Gate_node (kind, ins) ->
            let f_ins = Array.to_list (Array.mapi (fun pin src -> faulty_input ~sink:net ~pin src) ins) in
            encode_gate b ~out:(faulty net) kind f_ins
        | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> ())
    (Circuit.topo_order c);
  (* Detection: some observation point differs. *)
  let diffs = ref [] in
  let add_diff glit flit =
    let d = fresh b in
    encode_xor2 b d glit flit;
    diffs := d :: !diffs
  in
  Array.iter
    (fun net ->
      if Circuit.is_output c net && (Hashtbl.mem in_cone net || (fault.branch = None && net = fault.stem))
      then add_diff (good net) (faulty net))
    (Circuit.outputs c);
  Array.iter
    (fun fnet ->
      match Circuit.driver c fnet with
      | Circuit.Flip_flop d ->
          let watch =
            Hashtbl.mem obs_flops fnet || Hashtbl.mem in_cone d
            || (fault.branch = None && d = fault.stem)
          in
          if watch then begin
            let flit =
              match fault.branch with
              | Some (sink, pin) when sink = fnet && pin = 0 ->
                  let v = fresh b in
                  add b [ stuck_lit v ];
                  v
              | Some _ | None ->
                  if Hashtbl.mem in_cone d || (fault.branch = None && d = fault.stem) then faulty d
                  else good d
            in
            add_diff (good d) flit
          end
      | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ -> ())
    (Circuit.flops c);
  if !diffs = [] then (Untestable, Sat.no_stats)
  else begin
    add b !diffs;
    let decision_order =
      Array.to_list (Array.map good (Circuit.inputs c))
      @ Array.to_list (Array.map good (Circuit.flops c))
    in
    match Sat.solve_stats ~decision_order ~max_decisions ~nvars:b.nvars b.clauses with
    | Sat.Unknown, stats -> (Unknown, stats)
    | Sat.Unsat, stats -> (Untestable, stats)
    | Sat.Sat model, stats ->
        let pi =
          Array.map (fun net -> Ternary.of_bool model.(good net)) (Circuit.inputs c)
        in
        let scan =
          Array.map (fun net -> Ternary.of_bool model.(good net)) (Circuit.flops c)
        in
        (Detected ({ pi; scan } : Cube.t), stats)
  end

let generate ?constraints ?max_decisions c fault =
  fst (generate_stats ?constraints ?max_decisions c fault)
