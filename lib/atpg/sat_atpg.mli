(** SAT-based test generation: a complete decision procedure for single
    stuck-at detectability, used to cross-validate PODEM.

    The classic miter encoding: one CNF copy of the fault-free circuit, a
    second copy of the fault's output cone with the fault site forced to its
    stuck value, and a constraint that some observation point (primary
    output or scan capture) differs between the copies. A satisfying
    assignment is a test vector; unsatisfiability is a {e proof} of
    redundancy — PODEM's [Untestable] answers and every [Detected] cube can
    be checked against it (see [test_sat_atpg.ml]).

    Complete but slower than PODEM; intended for validation and for
    adjudicating PODEM's backtrack-limit aborts, not for the inner loop. *)

type result =
  | Detected of Cube.t  (** fully specified over (PI, scan) *)
  | Untestable  (** proven: no test exists under the given constraints *)
  | Unknown  (** decision budget exhausted — inconclusive *)

val generate :
  ?constraints:Tvs_logic.Ternary.t array ->
  ?max_decisions:int ->
  Tvs_netlist.Circuit.t ->
  Tvs_fault.Fault.t ->
  result
(** [constraints] pins scan cells exactly as in {!Podem.generate}.
    [max_decisions] bounds the search (default 200_000); decisions are made
    on input variables first, so internal nets follow by propagation. *)

val generate_stats :
  ?constraints:Tvs_logic.Ternary.t array ->
  ?max_decisions:int ->
  Tvs_netlist.Circuit.t ->
  Tvs_fault.Fault.t ->
  result * Tvs_util.Sat.stats
(** {!generate} plus the solver work done, so callers can meter SAT effort
    (and an [Unknown] can report how much of the budget was consumed). *)
