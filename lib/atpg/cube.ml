module Ternary = Tvs_logic.Ternary
module Circuit = Tvs_netlist.Circuit

type t = { pi : Ternary.t array; scan : Ternary.t array }

type vector = { pi : bool array; scan : bool array }

let fully_x c : t =
  {
    pi = Array.make (Circuit.num_inputs c) Ternary.X;
    scan = Array.make (Circuit.num_flops c) Ternary.X;
  }

let copy (t : t) : t = { pi = Array.copy t.pi; scan = Array.copy t.scan }

let equal (a : t) (b : t) = a.pi = b.pi && a.scan = b.scan

let count_specified arr =
  Array.fold_left (fun acc v -> if Ternary.is_specified v then acc + 1 else acc) 0 arr

let specified_bits (t : t) = count_specified t.pi + count_specified t.scan

let total_bits (t : t) = Array.length t.pi + Array.length t.scan

let arrays_compatible a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri (fun i v -> if not (Ternary.compatible v b.(i)) then ok := false) a;
      !ok)

let compatible (a : t) (b : t) = arrays_compatible a.pi b.pi && arrays_compatible a.scan b.scan

let merge_arrays a b =
  let out = Array.make (Array.length a) Ternary.X in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      match Ternary.merge v b.(i) with
      | Some m -> out.(i) <- m
      | None -> ok := false)
    a;
  if !ok then Some out else None

let merge (a : t) (b : t) =
  if Array.length a.pi <> Array.length b.pi || Array.length a.scan <> Array.length b.scan then None
  else
    match (merge_arrays a.pi b.pi, merge_arrays a.scan b.scan) with
    | Some pi, Some scan -> Some ({ pi; scan } : t)
    | None, _ | _, None -> None

let fill_with f (t : t) : vector =
  let fill arr = Array.map (function Ternary.Zero -> false | Ternary.One -> true | Ternary.X -> f ()) arr in
  { pi = fill t.pi; scan = fill t.scan }

let fill_random rng t = fill_with (fun () -> Tvs_util.Rng.bool rng) t

let fill_const b t = fill_with (fun () -> b) t

let of_vector (v : vector) : t =
  { pi = Array.map Ternary.of_bool v.pi; scan = Array.map Ternary.of_bool v.scan }

module Wire = Tvs_util.Wire

let write_ternary w v =
  Wire.write_u8 w (match v with Ternary.Zero -> 0 | Ternary.One -> 1 | Ternary.X -> 2)

let read_ternary r =
  match Wire.read_u8 r with
  | 0 -> Ternary.Zero
  | 1 -> Ternary.One
  | 2 -> Ternary.X
  | n -> raise (Wire.Error (Printf.sprintf "unknown ternary tag %d" n))

let encode w (t : t) =
  Wire.write_array write_ternary w t.pi;
  Wire.write_array write_ternary w t.scan

let decode r : t =
  let pi = Wire.read_array read_ternary r in
  { pi; scan = Wire.read_array read_ternary r }

let encode_vector w (v : vector) =
  Wire.write_bool_array w v.pi;
  Wire.write_bool_array w v.scan

let decode_vector r : vector =
  let pi = Wire.read_bool_array r in
  { pi; scan = Wire.read_bool_array r }

let chars arr = String.init (Array.length arr) (fun i -> Ternary.to_char arr.(i))

let to_string (t : t) = chars t.pi ^ "|" ^ chars t.scan

let bools arr = String.init (Array.length arr) (fun i -> if arr.(i) then '1' else '0')

let vector_to_string (v : vector) = bools v.pi ^ "|" ^ bools v.scan

let pp fmt t = Format.pp_print_string fmt (to_string t)
