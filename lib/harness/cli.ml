(* Validation shared between the CLI drivers (bin/ and bench/) and the test
   suite. Keeping it here — rather than inline in bin/main.ml — lets the
   bad-input paths be unit-tested without spawning the executable. *)

module Profiles = Tvs_circuits.Profiles

let profile_names = List.map (fun p -> p.Profiles.name) Profiles.all

let check_spec spec =
  match spec with
  | "fig1" | "s27" -> Ok spec
  | name when List.mem name profile_names -> Ok spec
  | path when Sys.file_exists path -> Ok spec
  | _ ->
      Error
        (Printf.sprintf
           "unknown circuit %S: not a profile (%s), not s27 or fig1, and no such file" spec
           (String.concat ", " profile_names))

let load_circuit ?(scale = 1.0) ?format spec =
  match check_spec spec with
  | Error _ as e -> e
  | Ok _ -> (
      match spec with
      | "fig1" -> Ok (Tvs_circuits.Fig1.circuit ())
      | "s27" -> Ok (Tvs_circuits.S27.circuit ())
      | name when List.mem name profile_names ->
          Ok (Tvs_circuits.Synth.generate (Profiles.scale (Profiles.find name) scale))
      | path -> (
          try Ok (Tvs_verilog.Loader.load_file ?format path)
          with
          | Failure msg | Sys_error msg -> Error (Printf.sprintf "cannot load %S: %s" path msg)
          | Tvs_netlist.Bench_format.Parse_error (line, msg) ->
              (* the filename makes multi-file flows (serve, xcheck)
                 debuggable; the exception payload itself stays (line, msg) *)
              Error (Printf.sprintf "%s:%d: %s" path line msg)))

(* The scheme/selection vocabularies are shared verbatim between the [tvs]
   CLI flags and the serve protocol's job fields, so a job submitted over
   the socket accepts exactly the strings the command line does. *)
let parse_scheme s =
  match Tvs_scan.Xor_scheme.of_string s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "unknown scheme %S" s)

let parse_selection = function
  | "random" -> Ok Tvs_core.Policy.Random_order
  | "hardness" -> Ok Tvs_core.Policy.Hardness_order
  | "most-faults" -> Ok (Tvs_core.Policy.Most_faults 5)
  | "weighted" -> Ok (Tvs_core.Policy.Weighted 5)
  | s -> Error (Printf.sprintf "unknown selection %S" s)

let check_shift s =
  if s >= 1 then Ok s else Error (Printf.sprintf "shift must be at least 1 (got %d)" s)

let parse_format = function
  | "auto" -> Ok None
  | s -> (
      match Tvs_verilog.Loader.format_of_name s with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "unknown format %S (expected auto, bench or verilog)" s))

(* Inline netlists are named by the content digest of their raw text, so an
   identical text always builds a digest-identical circuit (the serve dedupe
   key), and a copy persisted to [inline-<hex>.<ext>] parses back — via the
   file's basename — to the same circuit name. The digest covers the raw
   text only: the resolved format is a function of the text (or of an
   explicit field that the job digest covers separately). *)
let inline_name text = "inline-" ^ Tvs_store.Digest.to_hex (Tvs_store.Digest.of_string text)

let inline_file_name ?format text =
  let fmt = match format with Some f -> f | None -> Tvs_verilog.Loader.detect text in
  inline_name text ^ Tvs_verilog.Loader.extension fmt

let inline_circuit ?format text =
  match Tvs_verilog.Loader.parse_string ?format ~name:(inline_name text) text with
  | c -> Ok c
  | exception Tvs_netlist.Bench_format.Parse_error (line, msg) ->
      Error (Printf.sprintf "inline netlist, line %d: %s" line msg)
  | exception Failure msg -> Error (Printf.sprintf "inline netlist: %s" msg)

(* "scan_en=0,tpi_ctl_x=1": the --scan-map / serve "scan_map" vocabulary.
   Whitespace around entries is tolerated; empty entries (trailing commas)
   are skipped so shell-built lists compose. *)
let parse_ties s =
  let entries =
    String.split_on_char ',' s |> List.map String.trim |> List.filter (fun p -> p <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match String.index_opt p '=' with
        | None -> Error (Printf.sprintf "bad tie %S (want name=0 or name=1)" p)
        | Some i -> (
            let name = String.trim (String.sub p 0 i) in
            let value = String.trim (String.sub p (i + 1) (String.length p - i - 1)) in
            if name = "" then Error (Printf.sprintf "bad tie %S: empty pin name" p)
            else
              match value with
              | "0" -> go ((name, false) :: acc) rest
              | "1" -> go ((name, true) :: acc) rest
              | _ -> Error (Printf.sprintf "bad tie %S: value must be 0 or 1" p)))
  in
  go [] entries

let check_table n =
  if n >= 1 && n <= 5 then Ok n
  else Error (Printf.sprintf "no table %d in the paper (tables are numbered 1-5)" n)

let check_jobs j =
  if j >= 1 then Ok j
  else Error (Printf.sprintf "--jobs must be at least 1 (got %d)" j)

let check_batch b =
  if b >= 1 then Ok b
  else Error (Printf.sprintf "--batch must be at least 1 (got %d)" b)

let check_scale f =
  if f > 0.0 && f <= 1.0 then Ok f
  else
    Error
      (Printf.sprintf
         "--scale must be in (0, 1]: got %g (1.0 = full-size profiles; smaller values shrink them)"
         f)

let check_out_file ~flag path =
  if String.length path = 0 then Error (Printf.sprintf "%s needs a non-empty file name" flag)
  else if Sys.file_exists path && Sys.is_directory path then
    Error (Printf.sprintf "%s %S is a directory" flag path)
  else
    let dir = Filename.dirname path in
    if Sys.file_exists dir && Sys.is_directory dir then Ok path
    else Error (Printf.sprintf "%s %S: directory %S does not exist" flag path dir)

let check_trace_file = check_out_file ~flag:"--trace"
let check_checkpoint_file = check_out_file ~flag:"--checkpoint"

let check_checkpoint_every n =
  if n >= 1 then Ok n
  else Error (Printf.sprintf "--checkpoint-every must be at least 1 (got %d)" n)

let check_resume_file path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "no checkpoint file %S" path)
  else if Sys.is_directory path then Error (Printf.sprintf "checkpoint %S is a directory" path)
  else Ok path
