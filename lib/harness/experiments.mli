(** Regeneration of every table and figure of the paper's evaluation.

    Each [tableN] function runs the corresponding experiment and renders an
    ASCII table with the paper's columns (plus an average row). The [scale]
    argument shrinks profile circuits (see DESIGN.md §5, "Scaling note");
    every value printed is measured against this repository's own baseline on
    the same circuit, exactly as the paper computes its ratios against its
    own ATALANTA baseline. *)

type run_summary = {
  atv : int;
  tv : int;
  ex : int;
  m : float;
  t : float;
  coverage : float;
  peak_hidden : int;
}

val summary_kind : string
(** Cache frame kind of stored run summaries (["EXPR"]); exposed so the
    serve daemon can probe {!Tvs_store.Cache.entry_path} for dedupe. *)

val render_summary :
  circuit:string ->
  scheme:Tvs_scan.Xor_scheme.t ->
  selection:Tvs_core.Policy.selection ->
  run_summary ->
  string
(** Exactly the summary block [tvs stitch]/[tvs resume] print: the serve
    daemon and the loadgen verifier both render through this, which is what
    makes "server response byte-identical to the one-shot CLI" hold by
    construction. *)

val write_summary : Tvs_util.Wire.writer -> run_summary -> unit
val read_summary : Tvs_util.Wire.reader -> run_summary
(** The cache wire form of a summary — shared with [Tvs_tpi], whose study
    entries embed per-point summaries. [read_summary] raises
    [Tvs_util.Wire.Error] on malformed input. *)

val set_cache : Tvs_store.Cache.t option -> unit
(** Install (or clear) the process-wide result cache that {!run_flow} and
    {!baseline_detection} consult — set from the drivers' [--cache DIR]. *)

val cache : unit -> Tvs_store.Cache.t option

val config_for :
  ?scheme:Tvs_scan.Xor_scheme.t ->
  ?shift:Tvs_core.Policy.shift_policy ->
  ?selection:Tvs_core.Policy.selection ->
  ?jobs:int ->
  ?batch:int ->
  ?preflight:bool ->
  Prep.t ->
  Tvs_core.Engine.config
(** The exact engine configuration {!run_flow} would run with — exposed so
    the CLI can digest it for checkpoint metadata. *)

val lint_report :
  ?options:Tvs_lint.Lint.options ->
  ?lines:(string, int) Hashtbl.t ->
  Tvs_netlist.Circuit.t ->
  Tvs_lint.Lint.report
(** {!Tvs_lint.Lint.run} behind the result cache: when one is installed the
    report is stored under kind ["LINT"], keyed by the circuit digest
    combined with the lint schema version, the options and the source line
    table — any change to the netlist, the rule set or the knobs recomputes
    instead of replaying. *)

val run_flow :
  ?scheme:Tvs_scan.Xor_scheme.t ->
  ?shift:Tvs_core.Policy.shift_policy ->
  ?selection:Tvs_core.Policy.selection ->
  ?jobs:int ->
  ?batch:int ->
  ?preflight:bool ->
  ?resume:Tvs_core.Engine.snapshot ->
  ?checkpoint:int * (Tvs_core.Engine.snapshot -> unit) ->
  label:string ->
  Prep.t ->
  run_summary
(** One stitched run on a prepared circuit, defaults: NXOR, variable shift,
    most-faults selection. [jobs] sets the fault-simulation fan-out width
    (default {!Tvs_util.Pool.default_jobs}) and [batch] the vector-batch
    size of multi-vector screening (default
    {!Tvs_fault.Fault_sim.default_batch}); the summary is bit-identical for
    every value of either. [preflight] (default off) aborts with [Failure] on
    error-severity lint findings before the engine starts; it never changes
    the results of a run that passes, so cache keys and checkpoint digests
    ignore it. Exposed for the examples and the CLI.

    When a cache is installed ({!set_cache}) and neither [resume] nor
    [checkpoint] is given, a prior identical run's summary is returned
    without running the engine; computed summaries are stored back. [resume]
    and [checkpoint] pass through to {!Tvs_core.Engine.run} — a resumed run's
    summary is identical to the uninterrupted run's. *)

type detection = { detected : int; faults : int; vectors : int }

val baseline_detection : Prep.t -> detection
(** Fault-simulate the baseline test set over the collapsed fault list (the
    [tvs faultsim] measurement). Cached under the circuit digest when a
    cache is installed — the baseline set is a deterministic function of the
    circuit. *)

val table1 : unit -> string
(** The Section 3 worked example: the fault behaviour table regenerated from
    the Figure 1 circuit (including the fault-set evolution summary). *)

val table2 : ?scale:float -> ?circuits:string list -> unit -> string
(** Size and type of shifting: fixed shifts at info ratios 3/8, 5/8, 7/8
    ('/' where unattainable) and the variable-shift scheme. *)

val table3 : ?scale:float -> ?circuits:string list -> unit -> string
(** Hidden-fault observability: NXOR vs VXOR vs HXOR (3 taps). *)

val table4 : ?scale:float -> ?circuits:string list -> unit -> string
(** Vector selection: random vs hardness vs most-faults. *)

val table5 : ?scale:float -> ?circuits:string list -> unit -> string
(** Large circuits under the best scheme (variable shift + most-faults +
    NXOR), with I/O and scan-length columns. *)

val ablations : ?scale:float -> ?circuit:string -> ?jobs:int -> unit -> string
(** The DESIGN.md §6 design-choice ablations: parallel vs serial fault
    simulation, domain-pool scaling at 1/2/4/[jobs] domains (wall clock;
    [jobs] defaults to {!Tvs_util.Pool.default_jobs}), vector-batch size
    scaling at the widest pool of the sweep, SCOAP-guided vs naive
    backtrace, fault dropping on/off, collapsing on/off. *)

val misr_study : ?scale:float -> ?circuit:string -> unit -> string
(** Quantifies the paper's "no MISR, no aliasing" motivation: compacts every
    fault's response stream into MISRs of several widths and reports the
    aliasing escapes and the diagnostic-resolution loss relative to the
    stitched flow's exact per-cycle observation. *)

val comparison_study : ?scale:float -> ?circuits:string list -> unit -> string
(** The Section 2 qualitative argument, measured: static vector reordering
    (Su & Hwang-style, separate-chain assumption) versus the paper's stitched
    generation, on memory and time ratios. *)

val random_testability : ?patterns:int -> ?circuits:string list -> unit -> string
(** LFSR random-pattern fault coverage after 32 / 128 / [patterns] patterns
    per circuit — the classic easy-vs-hard separation that explains the
    paper's s35932 outlier (Table 5). Giants run at their default Table 5
    scale. *)

val diagnosis_study : ?scale:float -> ?circuit:string -> unit -> string
(** Dictionary-based diagnosis with the baseline test set: detected faults,
    distinguishable classes and average resolution — the concrete form of
    the paper's "no loss of information for fault diagnosis". *)

val default_table2_circuits : string list
val default_table5_circuits : string list

val table5_default_scale : string -> float
(** Per-circuit default scale used by the benches: 1.0 up to s5378, 0.5 for
    s9234, 0.25 for the four giants. *)

val table24_default_scale : string -> float
(** Default scale for the Table 2-4 circuits (0.5 for s9234). *)
