(** Argument validation shared by the [tvs] CLI, the bench driver and the
    test suite. Every checker returns [Error msg] instead of raising, so the
    drivers can surface bad input through their usual error channel
    (cmdliner's [`Msg], the bench usage message) with a non-zero exit, and
    the tests can cover the rejection paths directly. *)

val check_spec : string -> (string, string) result
(** A circuit spec is a benchmark profile name, ["s27"], ["fig1"], or a path
    to an existing netlist file ([.bench] or structural Verilog). *)

val load_circuit :
  ?scale:float -> ?format:Tvs_verilog.Loader.format -> string -> (Tvs_netlist.Circuit.t, string) result
(** Validate [spec] and build the circuit. [scale] (default 1.0) applies to
    profile circuits only. File specs are parsed through
    {!Tvs_verilog.Loader} — format forced by [format], else auto-detected by
    extension then content — and parse failures render as
    ["path:line: message"]. *)

val parse_format : string -> (Tvs_verilog.Loader.format option, string) result
(** The [--format] / job-field vocabulary: ["auto"] ([None]), ["bench"],
    ["verilog"]. Shared between the CLI and the serve protocol. *)

val parse_scheme : string -> (Tvs_scan.Xor_scheme.t, string) result
(** ["nxor"] | ["vxor"] | ["hxor:<taps>"] — the [--scheme] vocabulary,
    shared with the serve protocol's ["scheme"] job field. *)

val parse_selection : string -> (Tvs_core.Policy.selection, string) result
(** ["random"] | ["hardness"] | ["most-faults"] | ["weighted"] — the
    [--selection] vocabulary, shared with the serve protocol. *)

val check_shift : int -> (int, string) result
(** Fixed shift size: at least 1. *)

val inline_name : string -> string
(** The circuit name given to an inline netlist text: ["inline-<hex>"] of
    the text's content digest, so identical texts name (and digest)
    identically, and a copy saved as {!inline_file_name} reparses to the
    same circuit. *)

val inline_file_name : ?format:Tvs_verilog.Loader.format -> string -> string
(** {!inline_name} plus the extension of the resolved format
    ([.bench] / [.v]), the file name serve uses to persist inline text. *)

val inline_circuit :
  ?format:Tvs_verilog.Loader.format -> string -> (Tvs_netlist.Circuit.t, string) result
(** Parse an inline netlist text (a serve-protocol job with a ["bench"]
    field), named by {!inline_name}; format auto-detected by content when
    absent. [Error] carries the source line. *)

val parse_ties : string -> ((string * bool) list, string) result
(** The [--scan-map] / serve ["scan_map"] vocabulary: comma-separated
    [name=0|1] pin ties for the equivalence checker (e.g.
    ["scan_en=0,test_mode=1"]). Whitespace-tolerant; empty entries are
    skipped; the empty string is the empty list. *)

val check_table : int -> (int, string) result
(** The paper has tables 1-5. *)

val check_jobs : int -> (int, string) result
(** Fan-out width for the fault-simulation domain pool: at least 1. *)

val check_batch : int -> (int, string) result
(** Vector-batch size for multi-vector screening: at least 1. *)

val check_scale : float -> (float, string) result
(** Profile scale factor: must lie in (0, 1]. Values above 1 would blow up
    synthetic profiles past their reference sizes, and non-positive values
    silently produce empty circuits and degenerate tables. *)

val check_out_file : flag:string -> string -> (string, string) result
(** An output file path the driver will create or overwrite: non-empty, not
    an existing directory, and its parent directory must exist (the write
    happens at exit — failing then would silently lose a whole run).
    [flag] names the offending option in the error message. *)

val check_trace_file : string -> (string, string) result
(** [check_out_file ~flag:"--trace"]. *)

val check_checkpoint_file : string -> (string, string) result
(** [check_out_file ~flag:"--checkpoint"]. *)

val check_checkpoint_every : int -> (int, string) result
(** Checkpoint period in stitched cycles: at least 1. *)

val check_resume_file : string -> (string, string) result
(** The checkpoint file to resume from must exist (its contents are
    validated later, by {!Tvs_store.Checkpoint.load}). *)
