module Circuit = Tvs_netlist.Circuit
module Fault_gen = Tvs_fault.Fault_gen
module Podem = Tvs_atpg.Podem
module Baseline = Tvs_core.Baseline
module Rng = Tvs_util.Rng

type t = {
  circuit : Circuit.t;
  all_faults : Tvs_fault.Fault.t array;
  faults : Tvs_fault.Fault.t array;
  ctx : Podem.ctx;
  baseline : Baseline.t;
  testable : Tvs_fault.Fault.t array;
}

let of_circuit circuit =
  Tvs_obs.Trace.with_span "prep" ~args:[ ("circuit", Circuit.name circuit) ]
  @@ fun () ->
  let all_faults = Fault_gen.all circuit in
  let faults = Fault_gen.collapse circuit all_faults in
  let ctx = Podem.create circuit in
  let rng = Rng.of_string (Circuit.name circuit ^ ":baseline") in
  let baseline = Baseline.run ~rng ctx ~faults in
  let testable = Baseline.testable_faults baseline faults in
  { circuit; all_faults; faults; ctx; baseline; testable }

let cache : (string, t) Hashtbl.t = Hashtbl.create 16

let get ?(scale = 1.0) name =
  let profile = Tvs_circuits.Profiles.scale (Tvs_circuits.Profiles.find name) scale in
  match Hashtbl.find_opt cache profile.Tvs_circuits.Profiles.name with
  | Some prep -> prep
  | None ->
      let prep = of_circuit (Tvs_circuits.Synth.generate profile) in
      Hashtbl.add cache profile.Tvs_circuits.Profiles.name prep;
      prep

let engine_seed prep label = Rng.of_string (Circuit.name prep.circuit ^ ":" ^ label)
