module Circuit = Tvs_netlist.Circuit
module Fault = Tvs_fault.Fault
module Fault_gen = Tvs_fault.Fault_gen
module Fault_sim = Tvs_fault.Fault_sim
module Parallel = Tvs_sim.Parallel
module Cube = Tvs_atpg.Cube
module Podem = Tvs_atpg.Podem
module Generator = Tvs_atpg.Generator
module Chain = Tvs_scan.Chain
module Cost = Tvs_scan.Cost
module Xor_scheme = Tvs_scan.Xor_scheme
module Baseline = Tvs_core.Baseline
module Cycle = Tvs_core.Cycle
module Engine = Tvs_core.Engine
module Info_ratio = Tvs_core.Info_ratio
module Policy = Tvs_core.Policy
module Fig1 = Tvs_circuits.Fig1
module Table = Tvs_util.Table
module Rng = Tvs_util.Rng
module Wire = Tvs_util.Wire
module Store_digest = Tvs_store.Digest
module Cache = Tvs_store.Cache

type run_summary = {
  atv : int;
  tv : int;
  ex : int;
  m : float;
  t : float;
  coverage : float;
  peak_hidden : int;
}

(* --- content-addressed result cache -------------------------------------

   One process-wide cache handle (set from --cache): every [run_flow] and
   [baseline_detection] consults it. Keys are content digests of the inputs
   that determine the result — circuit structure plus engine configuration
   plus the label that seeds the RNG — so a changed netlist or option can
   never replay a stale row, while [jobs] and [batch] (results are
   invariant to both) and the host are free to differ between the writing
   and the reading run. *)

let active_cache : Cache.t option ref = ref None
let set_cache c = active_cache := c
let cache () = !active_cache

let config_for ?scheme ?shift ?selection ?jobs ?batch ?preflight (prep : Prep.t) =
  let chain_len = Circuit.num_flops prep.circuit in
  let base = Engine.default_config ~chain_len in
  {
    base with
    Engine.scheme = Option.value ~default:base.Engine.scheme scheme;
    shift = Option.value ~default:base.Engine.shift shift;
    selection = Option.value ~default:base.Engine.selection selection;
    jobs = (match jobs with Some _ -> jobs | None -> base.Engine.jobs);
    batch = (match batch with Some _ -> batch | None -> base.Engine.batch);
    preflight = Option.value ~default:base.Engine.preflight preflight;
  }

let summary_kind = "EXPR"

(* The one-shot CLI's [stitch]/[resume] summary block, built here so the
   serve daemon's responses are byte-identical to the CLI's stdout by
   construction (CI diffs exactly that). *)
let render_summary ~circuit ~scheme ~selection (r : run_summary) =
  let b = Buffer.create 256 in
  Printf.bprintf b "circuit     : %s\n" circuit;
  Printf.bprintf b "scheme      : %s\n" (Xor_scheme.to_string scheme);
  Printf.bprintf b "selection   : %s\n" (Policy.describe_selection selection);
  Printf.bprintf b "aTV         : %d\n" r.atv;
  Printf.bprintf b "TV          : %d\n" r.tv;
  Printf.bprintf b "extra       : %d\n" r.ex;
  Printf.bprintf b "peak hidden : %d\n" r.peak_hidden;
  Printf.bprintf b "m (memory)  : %.2f\n" r.m;
  Printf.bprintf b "t (time)    : %.2f\n" r.t;
  Printf.bprintf b "coverage    : %.4f\n" r.coverage;
  Buffer.contents b

let write_summary w s =
  Wire.write_varint w s.atv;
  Wire.write_varint w s.tv;
  Wire.write_varint w s.ex;
  Wire.write_f64 w s.m;
  Wire.write_f64 w s.t;
  Wire.write_f64 w s.coverage;
  Wire.write_varint w s.peak_hidden

let read_summary r =
  let atv = Wire.read_varint r in
  let tv = Wire.read_varint r in
  let ex = Wire.read_varint r in
  let m = Wire.read_f64 r in
  let t = Wire.read_f64 r in
  let coverage = Wire.read_f64 r in
  let peak_hidden = Wire.read_varint r in
  { atv; tv; ex; m; t; coverage; peak_hidden }

(* Lint reports are cached like experiment summaries. The key digests the
   circuit, the lint schema version, the options, and the source line table:
   two digest-equal circuits can come from differently formatted .bench
   files whose diagnostics cite different lines. *)
let lint_kind = "LINT"

let lint_report ?options ?lines c =
  let compute () = Tvs_lint.Lint.run ?options ?lines c in
  match !active_cache with
  | None -> compute ()
  | Some cache -> (
      let opts = Option.value ~default:Tvs_lint.Lint.default_options options in
      let key =
        Store_digest.combine (Store_digest.circuit c)
          (Store_digest.of_encoding (fun w ->
               Wire.write_varint w Tvs_lint.Lint.schema_version;
               Tvs_lint.Lint.encode_options w opts;
               let entries =
                 match lines with
                 | None -> []
                 | Some tbl ->
                     List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
               in
               Wire.write_list
                 (fun w (k, v) ->
                   Wire.write_string w k;
                   Wire.write_varint w v)
                 w entries))
      in
      match Cache.find cache ~kind:lint_kind ~key Tvs_lint.Lint.decode_report with
      | Some r -> r
      | None ->
          let r = compute () in
          Cache.store cache ~kind:lint_kind ~key (fun w -> Tvs_lint.Lint.encode_report w r);
          r)

let run_flow ?scheme ?shift ?selection ?jobs ?batch ?preflight ?resume ?checkpoint ~label
    (prep : Prep.t) =
  Tvs_obs.Trace.with_span "flow"
    ~args:[ ("circuit", Circuit.name prep.Prep.circuit); ("label", label) ]
  @@ fun () ->
  let config = config_for ?scheme ?shift ?selection ?jobs ?batch ?preflight prep in
  let key =
    Option.map
      (fun _ ->
        Store_digest.combine (Store_digest.circuit prep.circuit)
          (Store_digest.config ~config ~label))
      !active_cache
  in
  let cached =
    (* A resumed or checkpointing run must actually run the engine: the first
       exists to continue an interrupted flow, the second to produce
       snapshots along the way. *)
    match (!active_cache, key, resume, checkpoint) with
    | Some c, Some key, None, None -> Cache.find c ~kind:summary_kind ~key read_summary
    | _ -> None
  in
  match cached with
  | Some summary -> summary
  | None ->
      let rng = Prep.engine_seed prep label in
      let r =
        Engine.run ~config ~fallback:prep.baseline.Baseline.vectors ?resume ?checkpoint ~rng
          prep.ctx ~faults:prep.testable
      in
      let ratios =
        Cost.ratios r.Engine.schedule ~baseline_nvec:prep.baseline.Baseline.num_vectors
      in
      let summary =
        {
          atv = prep.baseline.Baseline.num_vectors;
          tv = r.Engine.stitched_vectors;
          ex = r.Engine.extra_vectors;
          m = ratios.Cost.m;
          t = ratios.Cost.t;
          coverage = Engine.coverage r;
          peak_hidden = r.Engine.peak_hidden;
        }
      in
      (match (!active_cache, key) with
      | Some c, Some key -> Cache.store c ~kind:summary_kind ~key (fun w -> write_summary w summary)
      | _ -> ());
      summary

(* --- baseline fault-simulation coverage ---------------------------------

   The [tvs faultsim] measurement, cached under the circuit digest alone:
   the baseline test set is itself a deterministic function of the circuit. *)

type detection = { detected : int; faults : int; vectors : int }

let detection_kind = "FSIM"

let write_detection w d =
  Wire.write_varint w d.detected;
  Wire.write_varint w d.faults;
  Wire.write_varint w d.vectors

let read_detection r =
  let detected = Wire.read_varint r in
  let faults = Wire.read_varint r in
  let vectors = Wire.read_varint r in
  { detected; faults; vectors }

let baseline_detection (prep : Prep.t) =
  let compute () =
    Tvs_obs.Trace.with_span "faultsim.baseline"
      ~args:[ ("circuit", Circuit.name prep.Prep.circuit) ]
    @@ fun () ->
    let sim = Fault_sim.create prep.circuit in
    let hit = Array.make (Array.length prep.faults) false in
    (* One matrix call over the whole baseline set: the cone order and
       injection tables are built once, and the pool axis (when jobs > 1)
       is vector batches. *)
    let vectors =
      Array.map (fun (v : Cube.vector) -> (v.Cube.pi, v.Cube.scan)) prep.baseline.Baseline.vectors
    in
    let matrix = Fault_sim.detected_matrix sim ~vectors prep.faults in
    Array.iter (fun flags -> Array.iteri (fun i b -> if b then hit.(i) <- true) flags) matrix;
    {
      detected = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 hit;
      faults = Array.length prep.faults;
      vectors = prep.baseline.Baseline.num_vectors;
    }
  in
  match !active_cache with
  | None -> compute ()
  | Some c -> (
      let key = Store_digest.circuit prep.circuit in
      match Cache.find c ~kind:detection_kind ~key read_detection with
      | Some d -> d
      | None ->
          let d = compute () in
          Cache.store c ~kind:detection_kind ~key (fun w -> write_detection w d);
          d)

let default_table2_circuits =
  [ "s444"; "s526"; "s641"; "s953"; "s1196"; "s1423"; "s5378"; "s9234" ]

let default_table5_circuits =
  [ "s5378"; "s9234"; "s13207"; "s15850"; "s35932"; "s38417"; "s38584" ]

let table5_default_scale = function
  | "s13207" | "s15850" | "s35932" | "s38417" | "s38584" -> 0.25
  | "s9234" -> 0.5
  | _ -> 1.0

(* Tables 2-4 run s9234 at half scale by default; its full profile costs
   ~10 CPU minutes per engine run (EXPERIMENTS.md records a full-scale
   reference measurement). *)
let table24_default_scale = function "s9234" -> 0.5 | _ -> 1.0

let mean values =
  match values with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

(* ------------------------------------------------------------------ *)
(* Table 1: the worked example's fault behaviour.                      *)

let show_bits a = String.init (Array.length a) (fun i -> if a.(i) then '1' else '0')

let table1 () =
  let c = Fig1.circuit () in
  let fsim = Fault_sim.create c in
  let sim = Fault_sim.parallel fsim in
  let response fault state =
    match fault with
    | None -> snd (Parallel.run_single sim ~pi:[||] ~state)
    | Some f -> (
        let r = Fault_sim.run_batch fsim ~pi:[||] ~state ~faults:[| f |] in
        match r.Fault_sim.outcomes.(0) with
        | Fault_sim.Same | Fault_sim.Po_detected -> r.Fault_sim.good.Fault_sim.capture
        | Fault_sim.Capture_differs cap -> cap)
  in
  let replay fault =
    (* (TV, RP) pairs until the fault is caught through the two observed
       tail bits of the following shift. *)
    let rec go contents_g contents_f fresh_remaining acc =
      let caught = Chain.emitted contents_g ~s:2 <> Chain.emitted contents_f ~s:2 in
      if caught || fresh_remaining = [] then List.rev acc
      else
        match fresh_remaining with
        | [] -> List.rev acc
        | fresh :: rest ->
            let applied_g, _ = Chain.shift contents_g ~fresh in
            let applied_f, _ = Chain.shift contents_f ~fresh in
            let rg = response None applied_g in
            let rf = response fault applied_f in
            go rg rf rest ((show_bits applied_f, show_bits rf) :: acc)
    in
    let first = List.hd Fig1.vectors in
    let rg = response None first in
    let rf = response fault first in
    go rg rf (List.tl Fig1.fresh_bits) [ (show_bits first, show_bits rf) ]
  in
  let tbl =
    Table.create
      ([ "fault" ]
      @ List.concat_map (fun i -> [ Printf.sprintf "TV%d" i; Printf.sprintf "RP%d" i ]) [ 1; 2; 3; 4 ])
  in
  let add_row name fault =
    let rows = replay fault in
    let cells =
      List.concat_map (fun (tv, rp) -> [ tv; rp ])
        (rows @ List.init (4 - List.length rows) (fun _ -> ("", "")))
    in
    Table.add_row tbl (name :: cells)
  in
  add_row "correct" None;
  List.iter (fun name -> add_row name (Some (Fig1.paper_fault c name))) Fig1.table1_faults;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Table 1: fault behaviour on the Fig. 1 circuit (schedule 3+2+2+2)\n";
  Buffer.add_string buf (Table.render tbl);
  (* Fault-set evolution summary (Section 3 narrative). *)
  let faults = Array.of_list (List.map (Fig1.paper_fault c) Fig1.table1_faults) in
  let machine = Cycle.create c ~faults in
  Buffer.add_string buf "\nfault sets per cycle (caught/hidden/uncaught):\n";
  List.iter
    (fun fresh ->
      ignore (Cycle.step machine ~pi:[||] ~fresh);
      Buffer.add_string buf
        (Printf.sprintf "  after cycle %d: %d/%d/%d\n" (Cycle.cycle_count machine)
           (Cycle.num_caught machine) (Cycle.num_hidden machine) (Cycle.num_uncaught machine)))
    Fig1.fresh_bits;
  ignore (Cycle.flush machine ~full:false);
  Buffer.add_string buf
    (Printf.sprintf "  after final unload: %d/%d/%d (leftover = redundant E-F/1)\n"
       (Cycle.num_caught machine) (Cycle.num_hidden machine) (Cycle.num_uncaught machine));
  Buffer.add_string buf
    (Printf.sprintf "cost: stitched 11 cycles / 17 bits vs traditional 15 cycles / 24 bits\n");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Table 2: size and type of shifting.                                 *)

let info_targets = [ (3, 8); (5, 8); (7, 8) ]

let table2 ?scale ?(circuits = default_table2_circuits) () =
  let headers =
    [ "circ"; "aTV" ]
    @ List.concat_map
        (fun (n, d) ->
          let tag = Printf.sprintf "%d/%d " n d in
          [ tag ^ "shift"; tag ^ "TV"; tag ^ "ex"; tag ^ "m"; tag ^ "t" ])
        info_targets
    @ [ "var TV"; "var ex"; "var m"; "var t" ]
  in
  let tbl = Table.create headers in
  let acc = Hashtbl.create 8 in
  let note key v = Hashtbl.replace acc key (v :: Option.value ~default:[] (Hashtbl.find_opt acc key)) in
  List.iter
    (fun name ->
      let sc = match scale with Some s -> s | None -> table24_default_scale name in
      let prep = Prep.get ~scale:sc name in
      let chain_len = Circuit.num_flops prep.Prep.circuit in
      let npi = Circuit.num_inputs prep.Prep.circuit in
      let fixed_cells =
        List.concat_map
          (fun (n, d) ->
            match Info_ratio.shift_for ~num:n ~den:d ~chain_len ~npi with
            | None -> [ "/"; "/"; "/"; "/"; "/" ]
            | Some s ->
                let label = Printf.sprintf "t2:%d/%d" n d in
                let r = run_flow ~shift:(Policy.Fixed s) ~label prep in
                note (Printf.sprintf "%d/%d:m" n d) r.m;
                note (Printf.sprintf "%d/%d:t" n d) r.t;
                [
                  Printf.sprintf "%d/%d" s chain_len;
                  string_of_int r.tv;
                  string_of_int r.ex;
                  Table.fmt_ratio r.m;
                  Table.fmt_ratio r.t;
                ])
          info_targets
      in
      let var = run_flow ~label:"t2:var" prep in
      note "var:m" var.m;
      note "var:t" var.t;
      Table.add_row tbl
        ([ name; string_of_int var.atv ]
        @ fixed_cells
        @ [ string_of_int var.tv; string_of_int var.ex; Table.fmt_ratio var.m; Table.fmt_ratio var.t ]))
    circuits;
  Table.add_rule tbl;
  let avg key = match Hashtbl.find_opt acc key with Some l -> Table.fmt_ratio (mean l) | None -> "/" in
  Table.add_row tbl
    ([ "Ave"; "" ]
    @ List.concat_map
        (fun (n, d) -> [ ""; ""; ""; avg (Printf.sprintf "%d/%d:m" n d); avg (Printf.sprintf "%d/%d:t" n d) ])
        info_targets
    @ [ ""; ""; avg "var:m"; avg "var:t" ]);
  "Table 2: varying the size and type of shifting\n" ^ Table.render tbl

(* ------------------------------------------------------------------ *)
(* Table 3: hidden fault observability (XOR schemes).                  *)

let table3 ?scale ?(circuits = default_table2_circuits) () =
  let schemes = [ ("NXOR", Xor_scheme.Nxor); ("VXOR", Xor_scheme.Vxor); ("HXOR", Xor_scheme.Hxor 3) ] in
  let tbl =
    Table.create ([ "circ" ] @ List.concat_map (fun (n, _) -> [ n ^ " m"; n ^ " t" ]) schemes)
  in
  let sums = Hashtbl.create 8 in
  let note key v = Hashtbl.replace sums key (v :: Option.value ~default:[] (Hashtbl.find_opt sums key)) in
  List.iter
    (fun name ->
      let sc = match scale with Some s -> s | None -> table24_default_scale name in
      let prep = Prep.get ~scale:sc name in
      let cells =
        List.concat_map
          (fun (tag, scheme) ->
            let r = run_flow ~scheme ~label:("t3:" ^ tag) prep in
            note (tag ^ ":m") r.m;
            note (tag ^ ":t") r.t;
            [ Table.fmt_ratio r.m; Table.fmt_ratio r.t ])
          schemes
      in
      Table.add_row tbl (name :: cells))
    circuits;
  Table.add_rule tbl;
  Table.add_row tbl
    ("Ave"
    :: List.concat_map
         (fun (tag, _) ->
           [
             Table.fmt_ratio (mean (Hashtbl.find sums (tag ^ ":m")));
             Table.fmt_ratio (mean (Hashtbl.find sums (tag ^ ":t")));
           ])
         schemes);
  "Table 3: hidden fault observability (variable shift, most-faults)\n" ^ Table.render tbl

(* ------------------------------------------------------------------ *)
(* Table 4: selection of test vectors.                                 *)

let table4 ?scale ?(circuits = default_table2_circuits) () =
  let strategies =
    [
      ("Random", Policy.Random_order);
      ("Hardness", Policy.Hardness_order);
      ("Most-faults", Policy.Most_faults 5);
    ]
  in
  let tbl =
    Table.create ([ "circ" ] @ List.concat_map (fun (n, _) -> [ n ^ " m"; n ^ " t" ]) strategies)
  in
  let sums = Hashtbl.create 8 in
  let note key v = Hashtbl.replace sums key (v :: Option.value ~default:[] (Hashtbl.find_opt sums key)) in
  List.iter
    (fun name ->
      let sc = match scale with Some s -> s | None -> table24_default_scale name in
      let prep = Prep.get ~scale:sc name in
      let cells =
        List.concat_map
          (fun (tag, selection) ->
            let r = run_flow ~selection ~label:("t4:" ^ tag) prep in
            note (tag ^ ":m") r.m;
            note (tag ^ ":t") r.t;
            [ Table.fmt_ratio r.m; Table.fmt_ratio r.t ])
          strategies
      in
      Table.add_row tbl (name :: cells))
    circuits;
  Table.add_rule tbl;
  Table.add_row tbl
    ("Ave"
    :: List.concat_map
         (fun (tag, _) ->
           [
             Table.fmt_ratio (mean (Hashtbl.find sums (tag ^ ":m")));
             Table.fmt_ratio (mean (Hashtbl.find sums (tag ^ ":t")));
           ])
         strategies);
  "Table 4: selection of test vectors (variable shift, NXOR)\n" ^ Table.render tbl

(* ------------------------------------------------------------------ *)
(* Table 5: large circuits under the best scheme.                      *)

let table5 ?scale ?(circuits = default_table5_circuits) () =
  let tbl = Table.create [ "circ"; "I/O"; "scan#"; "TV"; "ex"; "m"; "t"; "cov" ] in
  let ms = ref [] and ts = ref [] in
  Fault_sim.reset_counters ();
  List.iter
    (fun name ->
      let sc = match scale with Some s -> s | None -> table5_default_scale name in
      let prep = Prep.get ~scale:sc name in
      let c = prep.Prep.circuit in
      let r = run_flow ~label:"t5" prep in
      ms := r.m :: !ms;
      ts := r.t :: !ts;
      Table.add_row tbl
        [
          Circuit.name c;
          Printf.sprintf "%d/%d" (Circuit.num_inputs c) (Circuit.num_outputs c);
          string_of_int (Circuit.num_flops c);
          string_of_int r.tv;
          string_of_int r.ex;
          Table.fmt_ratio r.m;
          Table.fmt_ratio r.t;
          Printf.sprintf "%.3f" r.coverage;
        ])
    circuits;
  Table.add_rule tbl;
  Table.add_row tbl
    [ "Ave"; ""; ""; ""; ""; Table.fmt_ratio (mean !ms); Table.fmt_ratio (mean !ts); "" ];
  let ctr = Fault_sim.counters () in
  let skip_pct =
    let total = ctr.Fault_sim.gate_evals + ctr.Fault_sim.gates_skipped in
    if total = 0 then 0.0
    else 100.0 *. float_of_int ctr.Fault_sim.gates_skipped /. float_of_int total
  in
  "Table 5: large circuits (variable shift, most-faults, NXOR)\n" ^ Table.render tbl
  ^ Printf.sprintf
      "simulator: %d event runs, %d full runs, %d events fired, %d gate evals (%.1f%% skipped), \
       %d faults dropped\n"
      ctr.Fault_sim.event_runs ctr.Fault_sim.full_runs ctr.Fault_sim.events_fired
      ctr.Fault_sim.gate_evals skip_pct ctr.Fault_sim.faults_dropped

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §6).                                           *)

(* Wall clock, not [Sys.time]: CPU time sums across domains and would
   silently report a domain-pool run as slower than it is. *)
let time_it = Tvs_util.Clock.time_it

let ablations ?(scale = 1.0) ?(circuit = "s953") ?jobs () =
  let prep = Prep.get ~scale circuit in
  let c = prep.Prep.circuit in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "Ablations on %s\n" (Circuit.name c));
  (* 1. Parallel vs serial fault simulation over the baseline test set. *)
  let sim = Fault_sim.create c in
  let vectors = prep.Prep.baseline.Baseline.vectors in
  let vec_pairs = Array.map (fun (v : Cube.vector) -> (v.Cube.pi, v.Cube.scan)) vectors in
  let faults = prep.Prep.faults in
  let _, par_time =
    time_it (fun () -> ignore (Fault_sim.detected_matrix sim ~vectors:vec_pairs faults))
  in
  let _, ser_time =
    time_it (fun () ->
        Array.iter
          (fun (v : Cube.vector) ->
            Array.iter
              (fun f -> ignore (Fault_sim.detects sim ~pi:v.Cube.pi ~state:v.Cube.scan f))
              faults)
          vectors)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  parallel vs serial fault simulation: %.3fs vs %.3fs (speedup %.1fx) over %d vectors x %d faults\n"
       par_time ser_time
       (if par_time > 0.0 then ser_time /. par_time else nan)
       (Array.length vectors) (Array.length faults));
  (* 1b. Domain-pool scaling: the same word-parallel screening fanned out
     over 1/2/4/N domains. Results are bit-identical at every width; only
     the wall clock moves. *)
  let jobs_sweep =
    List.sort_uniq compare
      [ 1; 2; 4; (match jobs with Some j -> max 1 j | None -> Tvs_util.Pool.default_jobs ()) ]
  in
  let screen_time j b =
    let sim = Fault_sim.create ~jobs:j ~batch:b c in
    snd (time_it (fun () -> ignore (Fault_sim.detected_matrix sim ~vectors:vec_pairs faults)))
  in
  let scaling = List.map (fun j -> (j, screen_time j 1)) jobs_sweep in
  let base_time = List.assoc 1 scaling in
  Buffer.add_string buf "  domain-pool scaling (wall clock):";
  List.iter
    (fun (j, tm) ->
      Buffer.add_string buf
        (Printf.sprintf " jobs=%d %.3fs (%.2fx)" j tm
           (if tm > 0.0 then base_time /. tm else nan)))
    scaling;
  Buffer.add_char buf '\n';
  (* 1c. Vector-batch size under the widest pool of the sweep: how coarse
     the vector axis can get before slots idle. Results are identical at
     every (jobs, batch); only the wall clock moves. *)
  let widest = List.fold_left max 1 jobs_sweep in
  let batch_sweep = [ 1; 4; 16 ] in
  let batch_scaling = List.map (fun b -> (b, screen_time widest b)) batch_sweep in
  Buffer.add_string buf (Printf.sprintf "  vector-batch scaling (jobs=%d):" widest);
  List.iter
    (fun (b, tm) -> Buffer.add_string buf (Printf.sprintf " batch=%d %.3fs" b tm))
    batch_scaling;
  Buffer.add_char buf '\n';
  (* 2. SCOAP-guided vs naive PODEM backtrace. *)
  let gen_with ~guided ~dropping label =
    let options =
      {
        Generator.default_options with
        random_patterns = 0;
        compaction = false;
        fault_dropping = dropping;
        podem = { Podem.default_config with guided };
      }
    in
    let rng = Prep.engine_seed prep ("ablation:" ^ label) in
    time_it (fun () -> Generator.generate ~options ~rng prep.Prep.ctx prep.Prep.testable)
  in
  let guided_gen, guided_time = gen_with ~guided:true ~dropping:true "guided" in
  let naive_gen, naive_time = gen_with ~guided:false ~dropping:true "naive" in
  Buffer.add_string buf
    (Printf.sprintf
       "  SCOAP-guided vs naive backtrace: %d vs %d aborts, %d vs %d vectors, %.2fs vs %.2fs\n"
       (List.length guided_gen.Generator.aborted)
       (List.length naive_gen.Generator.aborted)
       (Generator.num_vectors guided_gen) (Generator.num_vectors naive_gen) guided_time naive_time);
  (* 3. Fault dropping on/off. *)
  let nodrop_gen, nodrop_time = gen_with ~guided:true ~dropping:false "nodrop" in
  Buffer.add_string buf
    (Printf.sprintf "  fault dropping on vs off: %d vs %d vectors, %.2fs vs %.2fs\n"
       (Generator.num_vectors guided_gen) (Generator.num_vectors nodrop_gen) guided_time nodrop_time);
  (* 4. Fault collapsing. *)
  Buffer.add_string buf
    (Printf.sprintf "  fault collapsing: %d -> %d faults (ratio %.2f)\n"
       (Array.length prep.Prep.all_faults) (Array.length prep.Prep.faults)
       (float_of_int (Array.length prep.Prep.faults) /. float_of_int (Array.length prep.Prep.all_faults)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* MISR study: aliasing and diagnostic resolution (Sections 1-2).      *)

let misr_study ?(scale = 1.0) ?(circuit = "s953") () =
  let prep = Prep.get ~scale circuit in
  let c = prep.Prep.circuit in
  let sim = Parallel.create c in
  let vectors = prep.Prep.baseline.Baseline.vectors in
  let faults = prep.Prep.faults in
  (* Full per-cycle response stream (POs then captured cells) of a machine
     under the whole test set. *)
  let stream_of outcomes_for =
    Array.to_list vectors
    |> List.concat_map (fun (v : Cube.vector) -> outcomes_for v)
  in
  let good_stream =
    stream_of (fun v ->
        let po, capture = Parallel.run_single sim ~pi:v.Cube.pi ~state:v.Cube.scan in
        [ Array.append po capture ])
  in
  (* Faulty streams, one fault at a time: lane 1 of a two-lane run gives the
     faulty machine's POs and capture directly. *)
  let widen arr = Array.map (fun b -> if b then Tvs_sim.Lanes.all_mask else 0) arr in
  let lane1 words = Array.map (fun w -> Tvs_sim.Lanes.get w 1) words in
  let faulty_streams =
    Array.map
      (fun f ->
        stream_of (fun v ->
            let r =
              Parallel.run sim ~pi:(widen v.Cube.pi) ~state:(widen v.Cube.scan)
                ~injections:[ Fault.to_injection f ~lane:1 ]
            in
            [ Array.append (lane1 r.Parallel.po) (lane1 r.Parallel.capture) ]))
      faults
  in
  let exact_detected = Array.map (fun stream -> stream <> good_stream) faulty_streams in
  let detected_count = Array.fold_left (fun n d -> if d then n + 1 else n) 0 exact_detected in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "MISR aliasing study on %s: %d faults, %d detected by exact observation\n"
       (Circuit.name c) (Array.length faults) detected_count);
  List.iter
    (fun width ->
      let good_sig = Tvs_scan.Misr.signature_of ~width good_stream in
      let aliased = ref 0 in
      let classes = Hashtbl.create 64 in
      Array.iteri
        (fun i stream ->
          if exact_detected.(i) then begin
            let s = Tvs_scan.Misr.signature_of ~width stream in
            if Tvs_logic.Bitvec.equal s good_sig then incr aliased;
            let key = Tvs_logic.Bitvec.to_string s in
            Hashtbl.replace classes key (1 + Option.value ~default:0 (Hashtbl.find_opt classes key))
          end)
        faulty_streams;
      let n_classes = Hashtbl.length classes in
      Buffer.add_string buf
        (Printf.sprintf
           "  %2d-bit MISR: %d aliasing escape(s); %d diagnosis classes for %d faults (avg %.1f faults/class)\n"
           width !aliased n_classes detected_count
           (float_of_int detected_count /. float_of_int (max 1 n_classes))))
    [ 4; 8; 16 ];
  (* Exact observation: diagnosis classes from the full streams. *)
  let exact_classes = Hashtbl.create 64 in
  Array.iteri
    (fun i stream ->
      if exact_detected.(i) then begin
        let key = String.concat "" (List.map (fun a -> String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list a))) stream) in
        Hashtbl.replace exact_classes key (1 + Option.value ~default:0 (Hashtbl.find_opt exact_classes key))
      end)
    faulty_streams;
  Buffer.add_string buf
    (Printf.sprintf
       "  exact observation (stitched flow): 0 aliasing escapes by construction; %d diagnosis classes (avg %.1f faults/class)\n"
       (Hashtbl.length exact_classes)
       (float_of_int detected_count /. float_of_int (max 1 (Hashtbl.length exact_classes))));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Prior-art comparison: static reordering vs stitched generation.     *)

let comparison_study ?(scale = 1.0) ?(circuits = [ "s444"; "s953"; "s1196" ]) () =
  let tbl =
    Table.create
      [
        "circ"; "aTV"; "static m"; "static t"; "bcast m"; "bcast t"; "bcast par/ser";
        "stitched m"; "stitched t";
      ]
  in
  List.iter
    (fun name ->
      let prep = Prep.get ~scale name in
      let c = prep.Prep.circuit in
      let static =
        Tvs_core.Static_stitch.reorder c
          ~rng:(Prep.engine_seed prep "static")
          ~cubes:prep.Prep.baseline.Baseline.cubes
      in
      let bcast =
        Tvs_core.Broadcast_scan.run c
          ~rng:(Prep.engine_seed prep "bcast")
          ~partitions:4 ~faults:prep.Prep.faults ~fallback:prep.Prep.baseline.Baseline.vectors ()
      in
      let stitched = run_flow ~label:"cmp" prep in
      Table.add_row tbl
        [
          name;
          string_of_int prep.Prep.baseline.Baseline.num_vectors;
          Table.fmt_ratio static.Tvs_core.Static_stitch.memory_ratio;
          Table.fmt_ratio static.Tvs_core.Static_stitch.time_ratio;
          Table.fmt_ratio bcast.Tvs_core.Broadcast_scan.memory_ratio;
          Table.fmt_ratio bcast.Tvs_core.Broadcast_scan.time_ratio;
          Printf.sprintf "%d/%d" bcast.Tvs_core.Broadcast_scan.parallel_vectors
            bcast.Tvs_core.Broadcast_scan.serial_vectors;
          Table.fmt_ratio stitched.m;
          Table.fmt_ratio stitched.t;
        ])
    circuits;
  "Prior-art comparison: static reordering [6], broadcast scan [3] (4 partitions,\n\
   MISR granted), and stitched generation (no hardware)\n"
  ^ Table.render tbl

(* ------------------------------------------------------------------ *)
(* Random-pattern testability: why s35932 compresses so well.          *)

let random_testability ?(patterns = 256) ?(circuits = [ "s444"; "s953"; "s1423"; "s5378"; "s35932" ]) () =
  let checkpoints =
    List.sort_uniq compare (List.filter (fun k -> k <= patterns) [ 32; 128; patterns ])
  in
  let tbl =
    Table.create
      ([ "circ"; "faults" ] @ List.map (fun k -> Printf.sprintf "cov@%d" k) checkpoints)
  in
  List.iter
    (fun name ->
      let profile =
        Tvs_circuits.Profiles.scale (Tvs_circuits.Profiles.find name) (table5_default_scale name)
      in
      let c = Tvs_circuits.Synth.generate profile in
      let faults = Fault_gen.collapsed c in
      let sim = Fault_sim.create c in
      let lfsr = Tvs_scan.Lfsr.create ~seed:0x5eed ~width:24 () in
      let detected = Array.make (Array.length faults) false in
      let coverage_at = Hashtbl.create 4 in
      for p = 1 to patterns do
        let pi = Tvs_scan.Lfsr.next_vector lfsr (Circuit.num_inputs c) in
        let scan = Tvs_scan.Lfsr.next_vector lfsr (Circuit.num_flops c) in
        Array.iteri
          (fun i hit -> if hit then detected.(i) <- true)
          (Fault_sim.detected_faults sim ~pi ~state:scan faults);
        if List.mem p checkpoints then begin
          let hits = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 detected in
          Hashtbl.replace coverage_at p (float_of_int hits /. float_of_int (Array.length faults))
        end
      done;
      Table.add_row tbl
        ([ Circuit.name c; string_of_int (Array.length faults) ]
        @ List.map
            (fun k -> Printf.sprintf "%.1f%%" (100.0 *. Hashtbl.find coverage_at k))
            checkpoints))
    circuits;
  "Random-pattern (LFSR) testability: easy circuits saturate fast\n" ^ Table.render tbl

(* ------------------------------------------------------------------ *)
(* Diagnosis resolution with full response data.                       *)

let diagnosis_study ?(scale = 1.0) ?(circuit = "s444") () =
  let prep = Prep.get ~scale circuit in
  let c = prep.Prep.circuit in
  let sim = Parallel.create c in
  let tests =
    Array.map (fun (v : Cube.vector) -> (v.Cube.pi, v.Cube.scan)) prep.Prep.baseline.Baseline.vectors
  in
  let dict = Tvs_fault.Diagnosis.build sim ~faults:prep.Prep.faults ~tests in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "Diagnosis study on %s (%d faults, %d test vectors)\n" (Circuit.name c)
       (Array.length prep.Prep.faults) (Array.length tests));
  Buffer.add_string buf
    (Printf.sprintf "  detected faults      : %d\n" (Tvs_fault.Diagnosis.num_detected dict));
  Buffer.add_string buf
    (Printf.sprintf "  distinguishable      : %d behaviour classes\n"
       (Tvs_fault.Diagnosis.num_classes dict));
  Buffer.add_string buf
    (Printf.sprintf "  resolution           : %.2f faults/class (1.00 = perfect)\n"
       (Tvs_fault.Diagnosis.resolution dict));
  (* Round-trip demonstration: diagnosing each fault's own response finds it. *)
  let hits = ref 0 and total = ref 0 in
  Array.iteri
    (fun i f ->
      if i mod 7 = 0 then begin
        incr total;
        let observed = Tvs_fault.Diagnosis.respond sim ~tests ~fault:f () in
        match Tvs_fault.Diagnosis.diagnose dict ~observed with
        | Tvs_fault.Diagnosis.Candidates cands when List.exists (Fault.equal f) cands -> incr hits
        | Tvs_fault.Diagnosis.No_defect -> incr hits (* undetected fault: looks clean *)
        | Tvs_fault.Diagnosis.Candidates _ | Tvs_fault.Diagnosis.Unknown_defect -> ()
      end)
    prep.Prep.faults;
  Buffer.add_string buf
    (Printf.sprintf "  round-trip sample    : %d/%d responses correctly diagnosed\n" !hits !total);
  Buffer.contents buf
