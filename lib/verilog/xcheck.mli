(** External cross-validation against an event-driven Verilog simulator.

    The whole project rests on one in-house simulator; this module is its
    independent oracle. A circuit and a test program are rendered to
    structural Verilog ({!Emitter}) plus a self-checking testbench, compiled
    with [iverilog], executed with [vvp], and the external simulator's
    observation trace is compared line-by-line against the internal
    fault-free simulation.

    Both sides speak the same trace language, one line per observation:
    - [S b] — the scan-out bit sampled on a shift cycle (pre-edge);
    - [C bbb…b] — the primary outputs sampled on a capture cycle (or on a
      combinational vector application), most-significant-index first.
    Capture lines are omitted when the circuit has no primary outputs.

    When no external simulator is on PATH the check {e skips} — visibly,
    never silently — so developer machines without iverilog stay green
    while CI (which installs it) exercises the real comparison. *)

type program =
  | Comb of bool array list
      (** apply each primary-input vector to a flop-free circuit *)
  | Scan of Tvs_scan.Protocol.op list
      (** cycle-accurate scan schedule for a sequential circuit *)

type verdict =
  | Agree of { observations : int }  (** traces identical, this many lines *)
  | Disagree of { index : int; internal_ : string; external_ : string }
      (** first diverging trace line (0-based); empty string = missing line *)
  | Skipped of string  (** no external simulator; the reason to show *)
  | Tool_error of string  (** iverilog/vvp failed; diagnostic output *)

val internal_trace : Tvs_netlist.Circuit.t -> program -> string list
(** The internal simulator's observation trace. [Scan] programs run on the
    scan-inserted netlist from an all-zero chain, mirroring the emitted
    testbench's reset state. Raises [Invalid_argument] when the program
    kind does not match the circuit (a [Comb] program on a sequential
    circuit or vice versa). *)

val testbench : Emitter.t -> program -> expected:string list -> string
(** Self-checking testbench text: drives the program, [$display]s each
    trace line, compares against [expected] (the internal trace) and ends
    with [TVS-XCHECK PASS] or [TVS-XCHECK FAIL <n>]. *)

val find_tool : string -> string option
(** Search PATH for an executable. *)

val run : ?workdir:string -> Tvs_netlist.Circuit.t -> program -> verdict
(** Emit, compile, execute, compare. Artifacts ([design.v], [cells.v],
    [tb.v], compiled [sim.vvp] and logs) are written to [workdir] (default:
    a fresh directory under the system temp dir) and left in place for
    inspection. *)
