module Bench_format = Tvs_netlist.Bench_format

type format = Bench | Verilog

let format_name = function Bench -> "bench" | Verilog -> "verilog"

let format_of_name s =
  match String.lowercase_ascii s with
  | "bench" -> Some Bench
  | "verilog" | "v" -> Some Verilog
  | _ -> None

let extension = function Bench -> ".bench" | Verilog -> ".v"

let of_extension path =
  match String.lowercase_ascii (Filename.extension path) with
  | ".v" | ".sv" | ".vlog" -> Some Verilog
  | ".bench" -> Some Bench
  | _ -> None

(* First meaningful character/word of the text, skipping whitespace and
   Verilog-style comments. Bench comments start with '#', so a file whose
   first code is a comment still classifies correctly either way. *)
let detect_content text =
  let n = String.length text in
  let rec skip i =
    if i >= n then i
    else
      match text.[i] with
      | ' ' | '\t' | '\r' | '\n' -> skip (i + 1)
      | '/' when i + 1 < n && text.[i + 1] = '/' ->
          let rec eol j = if j >= n || text.[j] = '\n' then j else eol (j + 1) in
          skip (eol (i + 2))
      | '/' when i + 1 < n && text.[i + 1] = '*' ->
          let rec close j =
            if j + 1 >= n then n
            else if text.[j] = '*' && text.[j + 1] = '/' then j + 2
            else close (j + 1)
          in
          skip (close (i + 2))
      | _ -> i
  in
  let i = skip 0 in
  if i >= n then Bench
  else
    match text.[i] with
    | '#' -> Bench
    | '`' -> Verilog
    | _ ->
        let j = ref i in
        while
          !j < n
          &&
          match text.[!j] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
          | _ -> false
        do
          incr j
        done;
        if String.sub text i (!j - i) = "module" then Verilog else Bench

let detect ?path text =
  match Option.bind path of_extension with Some f -> f | None -> detect_content text

let parse_string ?format ?name text =
  match Option.value format ~default:(detect_content text) with
  | Verilog -> Frontend.parse_string ?name text
  | Bench -> Bench_format.parse_string ~name:(Option.value name ~default:"inline") text

let load_file ?format path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let fmt = match format with Some f -> f | None -> detect ~path text in
  match fmt with
  | Verilog -> Frontend.parse_string text
  | Bench ->
      Bench_format.parse_string ~name:(Filename.remove_extension (Filename.basename path)) text
