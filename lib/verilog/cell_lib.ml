type template = Dff | Sdff | Mux2
type role = Q | D | Si | Se | Clk | Y | A | B | S

let builtin = function
  | "dff" | "tvs_dff" | "dffqx1" | "fd1" -> Some Dff
  | "sdff" | "tvs_sdff" | "sdffr" | "sdffqx1" -> Some Sdff
  | "mux2" | "tvs_mux2" | "mux21" -> Some Mux2
  | _ -> None

let template_of_string = function
  | "dff" -> Some Dff
  | "sdff" -> Some Sdff
  | "mux2" -> Some Mux2
  | _ -> None

(* TVS_CELLS is parsed once; malformed entries are user input, so complain
   (once) instead of dying — the variable is a convenience, not a spec. *)
let env_aliases =
  lazy
    (match Sys.getenv_opt "TVS_CELLS" with
    | None | Some "" -> []
    | Some spec ->
        String.split_on_char ',' spec
        |> List.filter_map (fun entry ->
               let entry = String.trim entry in
               if entry = "" then None
               else
                 match String.index_opt entry '=' with
                 | Some i when i > 0 -> (
                     let alias =
                       String.lowercase_ascii (String.trim (String.sub entry 0 i))
                     in
                     let tgt =
                       String.lowercase_ascii
                         (String.trim
                            (String.sub entry (i + 1) (String.length entry - i - 1)))
                     in
                     match template_of_string tgt with
                     | Some t -> Some (alias, t)
                     | None ->
                         Printf.eprintf
                           "tvs: TVS_CELLS: unknown template %S in %S (want dff|sdff|mux2); \
                            ignoring\n\
                            %!"
                           tgt entry;
                         None)
                 | _ ->
                     Printf.eprintf
                       "tvs: TVS_CELLS: malformed entry %S (want alias=template); ignoring\n%!"
                       entry;
                     None))

let template_of_cell ?(extra = []) name =
  let key = String.lowercase_ascii name in
  let find l = List.assoc_opt key (List.map (fun (a, t) -> (String.lowercase_ascii a, t)) l) in
  match find extra with
  | Some t -> Some t
  | None -> (
      match find (Lazy.force env_aliases) with Some t -> Some t | None -> builtin key)

let roles = function
  | Dff -> [| Q; D; Clk |]
  | Sdff -> [| Q; D; Si; Se; Clk |]
  | Mux2 -> [| Y; A; B; S |]

let role_of_pin template pin =
  let p = String.lowercase_ascii pin in
  let r =
    match template with
    | Dff | Sdff -> (
        match p with
        | "q" | "out" -> Some Q
        | "d" | "din" | "data" -> Some D
        | "si" | "sd" | "scan_in" -> Some Si
        | "se" | "sen" | "scan_enable" | "scan_en" -> Some Se
        | "clk" | "ck" | "cp" | "clock" | "gclk" -> Some Clk
        | _ -> None)
    | Mux2 -> (
        match p with
        | "y" | "z" | "out" -> Some Y
        | "a" | "i0" -> Some A
        | "b" | "i1" -> Some B
        | "s" | "sel" | "select" -> Some S
        | _ -> None)
  in
  (* A pin is only valid if the template actually has that role: a plain DFF
     has no scan pins. *)
  match r with
  | Some role when Array.exists (fun x -> x = role) (roles template) -> Some role
  | _ -> None

let ignored = function Se | Clk | Si -> true | Q | D | Y | A | B | S -> false
