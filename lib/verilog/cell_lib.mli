(** The built-in sequential/steering cell library the Verilog frontend
    understands, plus the user-extensible alias map.

    Structural netlists from real flows instantiate vendor flops under names
    like [DFFQX1] or [sky130_fd_sc_hd__dfxtp_1]. Rather than parse liberty
    files, the frontend recognises three {e templates} and lets users map
    their cell names onto them:

    - [Dff]  — D flip-flop: pins (q, d, clk)
    - [Sdff] — scan D flip-flop: pins (q, d, si, se, clk); the frontend
      keeps only the functional data path (q, d) and drops the scan pins,
      recovering the pre-DFT netlist — {!Tvs_netlist.Scan_insert} re-derives
      the chain when the stack needs it
    - [Mux2] — 2-to-1 multiplexer: pins (y, a, b, s), y = s ? b : a

    Pin roles are matched by (case-insensitive) pin-name synonyms in
    named-port instantiations and by template order in positional ones. *)

type template = Dff | Sdff | Mux2

type role =
  | Q  (** flop output *)
  | D  (** functional data *)
  | Si  (** scan-in data *)
  | Se  (** scan-enable; ignored in the functional view *)
  | Clk  (** clock; ignored — the circuit model is single-clock *)
  | Y  (** mux output *)
  | A  (** mux input selected when s = 0 *)
  | B  (** mux input selected when s = 1 *)
  | S  (** mux select *)

val template_of_cell : ?extra:(string * template) list -> string -> template option
(** [template_of_cell name] resolves a module/cell name, case-insensitively,
    against the built-in names ([dff], [tvs_dff], [sdff], [tvs_sdff], [sdffr],
    [mux2], [tvs_mux2], [mux21]), the [extra] alias list, and the [TVS_CELLS]
    environment variable ([alias=dff,other=sdff,...]; malformed entries are
    reported once on stderr and skipped). [extra] wins over the environment,
    which wins over the built-ins. *)

val roles : template -> role array
(** Pin roles in positional-connection order, output first — e.g.
    [Dff] is [|Q; D; Clk|]. *)

val role_of_pin : template -> string -> role option
(** Named-connection pin lookup, case-insensitive, with synonyms:
    q/out, d/din/data, si/sd/scan_in, se/sen/scan_enable/scan_en,
    clk/ck/cp/clock/gclk, y/z/out, a/i0, b/i1, s/sel/select. *)

val ignored : role -> bool
(** Roles the functional circuit model drops ([Se], [Clk], [Si]). *)
