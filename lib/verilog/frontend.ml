module Bench_format = Tvs_netlist.Bench_format
module Gate = Tvs_netlist.Gate

let fail line msg = raise (Bench_format.Parse_error (line, msg))

(* ---------- lexer ---------- *)

type tok = Tid of string | Tnum of string | Tsym of char

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9') || c = '$'
let is_digit c = c >= '0' && c <= '9'
let is_space c = c = ' ' || c = '\t' || c = '\r'

let lex text =
  let n = String.length text in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (!line, t) :: !toks in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if is_space c then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then
      while !i < n && text.[!i] <> '\n' do incr i done
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      let opened = !line in
      let closed = ref false in
      i := !i + 2;
      while (not !closed) && !i < n do
        if text.[!i] = '*' && !i + 1 < n && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else begin
          if text.[!i] = '\n' then incr line;
          incr i
        end
      done;
      if not !closed then fail opened "unterminated block comment"
    end
    else if c = '`' then
      (* compiler directive (`timescale, `define...): none affect the
         structural subset, so the whole line is skipped *)
      while !i < n && text.[!i] <> '\n' do incr i done
    else if c = '\\' then begin
      let start = !i + 1 in
      i := start;
      while !i < n && not (is_space text.[!i] || text.[!i] = '\n') do incr i done;
      if !i = start then fail !line "empty escaped identifier";
      push (Tid (String.sub text start (!i - start)))
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id_char text.[!i] do incr i done;
      push (Tid (String.sub text start (!i - start)))
    end
    else if is_digit c || c = '\'' then begin
      let start = !i in
      while !i < n && is_digit text.[!i] do incr i done;
      if !i < n && text.[!i] = '\'' then begin
        incr i;
        let base_ok =
          !i < n
          && match Char.lowercase_ascii text.[!i] with 'b' | 'd' | 'h' | 'o' -> true | _ -> false
        in
        if not base_ok then fail !line "malformed number literal";
        incr i;
        let vstart = !i in
        while !i < n && is_id_char text.[!i] do incr i done;
        if !i = vstart then fail !line "malformed number literal"
      end;
      push (Tnum (String.sub text start (!i - start)))
    end
    else
      match c with
      | '(' | ')' | ',' | ';' | '=' | '.' | '#' ->
          push (Tsym c);
          incr i
      | '[' -> fail !line "vector ranges are not supported (scalar subset only)"
      | _ -> fail !line (Printf.sprintf "unexpected character %C" c)
  done;
  Array.of_list (List.rev !toks)

(* ---------- token stream ---------- *)

type state = { toks : (int * tok) array; mutable pos : int }

let peek st = if st.pos < Array.length st.toks then Some st.toks.(st.pos) else None

let cur_line st =
  let n = Array.length st.toks in
  if st.pos < n then fst st.toks.(st.pos) else if n = 0 then 1 else fst st.toks.(n - 1)

let next st =
  match peek st with
  | Some t ->
      st.pos <- st.pos + 1;
      t
  | None -> fail (cur_line st) "unexpected end of file"

let describe = function
  | Tid nm -> Printf.sprintf "%S" nm
  | Tnum s -> Printf.sprintf "%S" s
  | Tsym c -> Printf.sprintf "%C" c

let expect_sym st c =
  let line, t = next st in
  match t with
  | Tsym c' when c' = c -> line
  | t -> fail line (Printf.sprintf "expected %C, got %s" c (describe t))

let expect_id st =
  let line, t = next st in
  match t with
  | Tid nm -> (line, nm)
  | t -> fail line (Printf.sprintf "expected an identifier, got %s" (describe t))

let eat_sym st c =
  match peek st with
  | Some (_, Tsym c') when c' = c ->
      st.pos <- st.pos + 1;
      true
  | _ -> false

(* ---------- terminals ---------- *)

type netexpr = Net of string | Lit of bool

let const_of_literal line s =
  let value =
    match String.index_opt s '\'' with
    | None -> s
    | Some q -> String.sub s (q + 2) (String.length s - q - 2)
  in
  match value with
  | "0" -> false
  | "1" -> true
  | _ -> fail line (Printf.sprintf "unsupported constant %S (only 1-bit 0 and 1)" s)

let parse_netexpr st =
  let line, t = next st in
  match t with
  | Tid nm -> (line, Net nm)
  | Tnum s -> (line, Lit (const_of_literal line s))
  | t -> fail line (Printf.sprintf "expected a net or constant, got %s" (describe t))

let gate_kind = function
  | "and" -> Some Gate.And
  | "nand" -> Some Gate.Nand
  | "or" -> Some Gate.Or
  | "nor" -> Some Gate.Nor
  | "xor" -> Some Gate.Xor
  | "xnor" -> Some Gate.Xnor
  | "not" -> Some Gate.Not
  | "buf" -> Some Gate.Buf
  | _ -> None

(* ---------- module body ---------- *)

type collector = {
  mutable stmts : (int * Bench_format.statement) list;  (* reversed *)
  ignored_uses : (string, unit) Hashtbl.t;  (* nets seen only on clk/se/si pins *)
  ties : (bool, unit) Hashtbl.t;  (* which shared tie constants exist *)
}

let push col line st = col.stmts <- (line, st) :: col.stmts

let tie_name v = if v then "tvs$tie1" else "tvs$tie0"

(* A constant terminal where a net is expected becomes a shared tie net,
   declared (as St_const) on first use. *)
let net_of_term col (line, e) =
  match e with
  | Net nm -> nm
  | Lit v ->
      if not (Hashtbl.mem col.ties v) then begin
        Hashtbl.add col.ties v ();
        push col line (Bench_format.St_const (tie_name v, v))
      end;
      tie_name v

let parse_decl_names st =
  (* after input/output/wire/reg/tri: optional net-type keyword, then
     name {, name} ; *)
  (match peek st with
  | Some (_, Tid ("wire" | "reg" | "tri")) -> st.pos <- st.pos + 1
  | _ -> ());
  let names = ref [ expect_id st ] in
  while eat_sym st ',' do
    names := expect_id st :: !names
  done;
  ignore (expect_sym st ';');
  List.rev !names

let parse_assign col st =
  let line, target = expect_id st in
  ignore (expect_sym st '=');
  let rhs = parse_netexpr st in
  ignore (expect_sym st ';');
  match snd rhs with
  | Lit v -> push col line (Bench_format.St_const (target, v))
  | Net nm -> push col line (Bench_format.St_gate (target, Gate.Buf, [ nm ]))

let parse_primitives col st kind =
  (* [instname] ( terms ) {, [instname] ( terms )} ; *)
  let one () =
    (match peek st with Some (_, Tid _) -> st.pos <- st.pos + 1 | _ -> ());
    let lp_line = expect_sym st '(' in
    let terms = ref [ parse_netexpr st ] in
    while eat_sym st ',' do
      terms := parse_netexpr st :: !terms
    done;
    ignore (expect_sym st ')');
    let terms = List.rev !terms in
    let kw = String.lowercase_ascii (Gate.to_string kind) in
    match kind with
    | Gate.Not | Gate.Buf -> (
        (* one or more outputs, then exactly one input (Verilog primitive
           semantics: the last terminal is the input) *)
        match List.rev terms with
        | (_, _) :: [] | [] ->
            fail lp_line (Printf.sprintf "%s needs at least one output and one input" kw)
        | input :: routs ->
            let in_net = net_of_term col input in
            List.iter
              (fun (oline, oe) ->
                match oe with
                | Net out -> push col oline (Bench_format.St_gate (out, kind, [ in_net ]))
                | Lit _ -> fail oline (Printf.sprintf "%s output terminal is a constant" kw))
              (List.rev routs))
    | _ -> (
        match terms with
        | ((oline, oe) as _out) :: ins ->
            if not (Gate.arity_ok kind (List.length ins)) then
              fail lp_line
                (Printf.sprintf "%s needs one output and at least two inputs" kw);
            let out =
              match oe with
              | Net out -> out
              | Lit _ -> fail oline (Printf.sprintf "%s output terminal is a constant" kw)
            in
            let ins = List.map (net_of_term col) ins in
            push col oline (Bench_format.St_gate (out, kind, ins))
        | [] -> fail lp_line (Printf.sprintf "%s needs one output and at least two inputs" kw))
  in
  one ();
  while eat_sym st ',' do
    one ()
  done;
  ignore (expect_sym st ';')

let parse_instance col st ~extra line cell =
  let template =
    match Cell_lib.template_of_cell ~extra cell with
    | Some t -> t
    | None ->
        fail line
          (Printf.sprintf
             "unknown module or cell %S (built-in cells: dff, sdff, mux2; extend via \
              TVS_CELLS=alias=template,...)"
             cell)
  in
  (match peek st with
  | Some (pline, Tsym '#') -> fail pline "parameter overrides are not supported"
  | Some (_, Tid _) -> st.pos <- st.pos + 1 (* instance name *)
  | _ -> ());
  let lp_line = expect_sym st '(' in
  let roles = Cell_lib.roles template in
  let bound : (Cell_lib.role * (int * netexpr)) list ref = ref [] in
  let bind pline role term =
    if List.mem_assoc role !bound then fail pline (Printf.sprintf "cell %s: pin bound twice" cell)
    else bound := (role, term) :: !bound
  in
  (* named (.pin(net)) or positional — all-or-nothing, as in Verilog *)
  (match peek st with
  | Some (_, Tsym '.') ->
      let conn () =
        ignore (expect_sym st '.');
        let pline, pin = expect_id st in
        ignore (expect_sym st '(');
        (* an empty connection (.se()) is legal; only dropped pins may float *)
        let term = if eat_sym st ')' then None else Some (parse_netexpr st) in
        (match term with Some _ -> ignore (expect_sym st ')') | None -> ());
        match Cell_lib.role_of_pin template pin with
        | None -> fail pline (Printf.sprintf "cell %s has no pin %S" cell pin)
        | Some role -> (
            match term with
            | Some t -> bind pline role t
            | None ->
                if not (Cell_lib.ignored role) then
                  fail pline (Printf.sprintf "cell %s: pin %S may not be unconnected" cell pin))
      in
      conn ();
      while eat_sym st ',' do
        conn ()
      done;
      ignore (expect_sym st ')')
  | Some (_, Tsym ')') -> fail lp_line (Printf.sprintf "cell %s: empty port list" cell)
  | _ ->
      let i = ref 0 in
      let conn () =
        let ((pline, _) as term) = parse_netexpr st in
        if !i >= Array.length roles then
          fail pline (Printf.sprintf "cell %s takes %d pins" cell (Array.length roles));
        bind pline roles.(!i) term;
        incr i
      in
      conn ();
      while eat_sym st ',' do
        conn ()
      done;
      ignore (expect_sym st ')'));
  ignore (expect_sym st ';');
  let find role = List.assoc_opt role !bound in
  let require role pin =
    match find role with
    | Some t -> t
    | None -> fail line (Printf.sprintf "cell %s: pin %S is unconnected" cell pin)
  in
  let out_net pin (pline, e) =
    match e with
    | Net nm -> nm
    | Lit _ -> fail pline (Printf.sprintf "cell %s: output pin %S tied to a constant" cell pin)
  in
  (* dropped pins still mark their nets as used-on-ignored-pins, so a pure
     clock/scan-enable port doesn't surface as a floating primary input *)
  List.iter
    (fun (role, (_, e)) ->
      match (Cell_lib.ignored role, e) with
      | true, Net nm -> Hashtbl.replace col.ignored_uses nm ()
      | _ -> ())
    !bound;
  match template with
  | Cell_lib.Dff | Cell_lib.Sdff ->
      let q = out_net "q" (require Cell_lib.Q "q") in
      let d = net_of_term col (require Cell_lib.D "d") in
      push col line (Bench_format.St_dff (q, d))
  | Cell_lib.Mux2 ->
      let y = out_net "y" (require Cell_lib.Y "y") in
      let a = net_of_term col (require Cell_lib.A "a") in
      let b = net_of_term col (require Cell_lib.B "b") in
      let s = net_of_term col (require Cell_lib.S "s") in
      let sn = y ^ "$sn" and ga = y ^ "$a" and gb = y ^ "$b" in
      push col line (Bench_format.St_gate (sn, Gate.Not, [ s ]));
      push col line (Bench_format.St_gate (ga, Gate.And, [ sn; a ]));
      push col line (Bench_format.St_gate (gb, Gate.And, [ s; b ]));
      push col line (Bench_format.St_gate (y, Gate.Or, [ ga; gb ]))

let parse_header col st =
  (* port list: non-ANSI (names only, declared later) or ANSI (directions
     inline, which persist across commas as in the standard) *)
  if eat_sym st '(' then
    if eat_sym st ')' then ()
    else begin
      let dir = ref None in
      let item () =
        let rec directions () =
          match peek st with
          | Some (_, Tid "input") ->
              st.pos <- st.pos + 1;
              dir := Some `Input;
              directions ()
          | Some (_, Tid "output") ->
              st.pos <- st.pos + 1;
              dir := Some `Output;
              directions ()
          | Some (line, Tid "inout") -> fail line "inout ports are not supported"
          | Some (_, Tid ("wire" | "reg" | "tri")) ->
              st.pos <- st.pos + 1;
              directions ()
          | _ -> ()
        in
        directions ();
        let line, nm = expect_id st in
        match !dir with
        | Some `Input -> push col line (Bench_format.St_input nm)
        | Some `Output -> push col line (Bench_format.St_output nm)
        | None -> ()
      in
      item ();
      while eat_sym st ',' do
        item ()
      done;
      ignore (expect_sym st ')')
    end;
  ignore (expect_sym st ';')

let parse_module col st ~extra =
  parse_header col st;
  let finished = ref false in
  while not !finished do
    let line, t = next st in
    match t with
    | Tid "endmodule" -> finished := true
    | Tid "input" ->
        List.iter (fun (l, nm) -> push col l (Bench_format.St_input nm)) (parse_decl_names st)
    | Tid "output" ->
        List.iter (fun (l, nm) -> push col l (Bench_format.St_output nm)) (parse_decl_names st)
    | Tid ("wire" | "reg" | "tri") -> ignore (parse_decl_names st)
    | Tid "inout" -> fail line "inout ports are not supported"
    | Tid "assign" -> parse_assign col st
    | Tid
        (( "always" | "initial" | "parameter" | "localparam" | "specify" | "generate"
         | "function" | "task" | "module" ) as kw) ->
        fail line (Printf.sprintf "unsupported construct %S (structural subset only)" kw)
    | Tid kw when gate_kind kw <> None -> parse_primitives col st (Option.get (gate_kind kw))
    | Tid cell -> parse_instance col st ~extra line cell
    | t -> fail line (Printf.sprintf "expected a statement, got %s" (describe t))
  done

let skip_module st =
  let finished = ref false in
  while not !finished do
    match next st with _, Tid "endmodule" -> finished := true | _ -> ()
  done

(* ---------- entry points ---------- *)

let statements_of_string ?(extra = []) text =
  let st = { toks = lex text; pos = 0 } in
  let result = ref None in
  while peek st <> None do
    let line, t = next st in
    match t with
    | Tid "module" -> (
        let _, name = expect_id st in
        if Cell_lib.template_of_cell ~extra name <> None then skip_module st
        else
          match !result with
          | Some (prev, _) ->
              fail line
                (Printf.sprintf "multiple design modules (%S then %S); one module per file" prev
                   name)
          | None ->
              let col =
                { stmts = []; ignored_uses = Hashtbl.create 16; ties = Hashtbl.create 2 }
              in
              parse_module col st ~extra;
              result := Some (name, col))
    | t -> fail line (Printf.sprintf "expected `module`, got %s" (describe t))
  done;
  match !result with
  | None -> fail (cur_line st) "no module definition found"
  | Some (name, col) ->
      let stmts = List.rev col.stmts in
      (* a net consumed by any gate fanin, flop data pin or output marking is
         functionally live; an input used only on dropped pins (clk/se/si)
         is a mode port, not a stimulus port *)
      let used = Hashtbl.create 64 in
      List.iter
        (fun (_, s) ->
          match s with
          | Bench_format.St_gate (_, _, ins) ->
              List.iter (fun nm -> Hashtbl.replace used nm ()) ins
          | Bench_format.St_dff (_, d) -> Hashtbl.replace used d ()
          | Bench_format.St_output nm -> Hashtbl.replace used nm ()
          | Bench_format.St_input _ | Bench_format.St_const _ -> ())
        stmts;
      let keep nm = Hashtbl.mem used nm || not (Hashtbl.mem col.ignored_uses nm) in
      ( name,
        List.filter
          (fun (_, s) ->
            match s with Bench_format.St_input nm -> keep nm | _ -> true)
          stmts )

let parse_string ?name ?extra text =
  let mod_name, stmts = statements_of_string ?extra text in
  Bench_format.circuit_of_statements ~name:(Option.value name ~default:mod_name) stmts

let parse_file ?extra path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string ?extra text
