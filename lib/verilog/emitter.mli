(** Structural Verilog emitter.

    Renders an in-memory circuit back to the same subset {!Frontend} reads:
    gate primitives for logic, [tvs_dff] / [tvs_sdff] instances for
    flip-flops, [assign] for constants and aliases. Net names are sanitised
    into legal Verilog identifiers (illegal characters become [_], a leading
    digit gains an [n] prefix, keywords gain a [_] suffix, collisions are
    uniquified) — a circuit whose names are already legal round-trips with
    its names intact, and [parse (emit c)] rebuilds [c] exactly in plain
    mode.

    In scan mode ([~scan:true]) every flop becomes a [tvs_sdff] wired into a
    shift chain that mirrors {!Tvs_netlist.Scan_insert}: cell 0's [si] pin is
    the new [scan_in] input, each later cell shifts from its predecessor's
    [q], and the tail [q] drives the new [scan_out] output, with [scan_en]
    selecting shift vs capture. The result is the netlist a tester would
    see, suitable for cycle-accurate external simulation. *)

type ports = {
  pi : string array;  (** Verilog names of the functional primary inputs, circuit order *)
  po : string array;  (** Verilog names of the primary outputs, circuit order *)
  clk : string option;  (** clock port; present iff the circuit has flip-flops *)
  scan : (string * string * string) option;
      (** (scan_en, scan_in, scan_out) port names; present iff [~scan:true] *)
}

type t = { module_name : string; text : string; ports : ports }

val emit : ?scan:bool -> Tvs_netlist.Circuit.t -> t
(** [scan] defaults to [false]. Raises [Invalid_argument] when [~scan:true]
    and the circuit has no flip-flops. *)

val cell_models : string
(** Behavioural Verilog for [tvs_dff], [tvs_sdff] and [tvs_mux2], zero-
    initialised to match the internal simulator's reset state. Written
    alongside emitted netlists so [iverilog] can compile them standalone. *)
