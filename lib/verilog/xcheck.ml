module Circuit = Tvs_netlist.Circuit
module Scan_insert = Tvs_netlist.Scan_insert
module Protocol = Tvs_scan.Protocol
module Comb = Tvs_sim.Comb

type program = Comb of bool array list | Scan of Protocol.op list

type verdict =
  | Agree of { observations : int }
  | Disagree of { index : int; internal_ : string; external_ : string }
  | Skipped of string
  | Tool_error of string

let bitc b = if b then '1' else '0'

(* MSB-first, matching $display("%b", vec) on a [n-1:0] vector *)
let bits arr =
  let n = Array.length arr in
  String.init n (fun i -> bitc arr.(n - 1 - i))

let internal_trace c program =
  match program with
  | Comb vectors ->
      if Circuit.num_flops c > 0 then
        invalid_arg "Xcheck.internal_trace: Comb program on a sequential circuit";
      List.filter_map
        (fun pi ->
          let frame = Comb.eval_bool c ~pi ~state:[||] in
          if Array.length frame.Comb.po = 0 then None else Some ("C " ^ bits frame.Comb.po))
        vectors
  | Scan ops ->
      if Circuit.num_flops c = 0 then
        invalid_arg "Xcheck.internal_trace: Scan program on a combinational circuit";
      let si = Scan_insert.insert c in
      let obs = Protocol.run si ~init:(Array.make (Circuit.num_flops c) false) ops in
      let ss = ref obs.Protocol.scan_stream in
      let ps = ref obs.Protocol.po_samples in
      List.filter_map
        (fun op ->
          match op with
          | Protocol.Shift _ -> (
              match !ss with
              | b :: tl ->
                  ss := tl;
                  Some (Printf.sprintf "S %c" (bitc b))
              | [] -> assert false)
          | Protocol.Capture _ -> (
              match !ps with
              | po :: tl ->
                  ps := tl;
                  if Array.length po = 0 then None else Some ("C " ^ bits po)
              | [] -> assert false))
        ops

(* ---------- testbench ---------- *)

let vec_literal arr =
  let n = Array.length arr in
  if n = 0 then "1'b0" else Printf.sprintf "%d'b%s" n (bits arr)

let bit_literal b = if b then "1'b1" else "1'b0"

let testbench (e : Emitter.t) program ~expected =
  let { Emitter.pi; po; clk; scan } = e.Emitter.ports in
  let npi = Array.length pi and npo = Array.length po in
  let tb_name = if e.Emitter.module_name = "tvs_tb" then "tvs_tb_" else "tvs_tb" in
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "`timescale 1ns/1ps\n";
  add "module %s;\n" tb_name;
  if npi > 0 then add "  reg [%d:0] pi;\n" (npi - 1);
  (match clk with Some _ -> add "  reg clk;\n" | None -> ());
  (match scan with Some _ -> add "  reg scan_en, scan_in;\n" | None -> ());
  if npo > 0 then add "  wire [%d:0] po;\n" (npo - 1);
  (match scan with Some _ -> add "  wire scan_out;\n" | None -> ());
  add "  integer errors;\n\n";
  let conns =
    List.concat
      [
        Array.to_list (Array.mapi (fun i p -> Printf.sprintf ".%s(pi[%d])" p i) pi);
        (match clk with Some c -> [ Printf.sprintf ".%s(clk)" c ] | None -> []);
        (match scan with
        | Some (se, si, _) ->
            [ Printf.sprintf ".%s(scan_en)" se; Printf.sprintf ".%s(scan_in)" si ]
        | None -> []);
        Array.to_list (Array.mapi (fun i p -> Printf.sprintf ".%s(po[%d])" p i) po);
        (match scan with Some (_, _, so) -> [ Printf.sprintf ".%s(scan_out)" so ] | None -> []);
      ]
  in
  add "  %s dut (%s);\n\n" e.Emitter.module_name (String.concat ", " conns);
  (match program with
  | Scan _ ->
      add "  task tick;\n";
      add "    begin #1; clk = 1'b1; #1; clk = 1'b0; #1; end\n";
      add "  endtask\n\n";
      add "  task shift(input v, input exp);\n";
      add "    begin\n";
      add "      scan_en = 1'b1; scan_in = v;";
      if npi > 0 then add " pi = %d'b0;" npi;
      add "\n";
      add "      #1;\n";
      add "      $display(\"S %%b\", scan_out);\n";
      add "      if (scan_out !== exp) errors = errors + 1;\n";
      add "      tick;\n";
      add "    end\n";
      add "  endtask\n\n";
      add "  task capture(input [%d:0] vec%s);\n" (max npi 1 - 1)
        (if npo > 0 then Printf.sprintf ", input [%d:0] exp" (npo - 1) else "");
      add "    begin\n";
      add "      scan_en = 1'b0; scan_in = 1'b0;";
      if npi > 0 then add " pi = vec;";
      add "\n";
      add "      #1;\n";
      if npo > 0 then begin
        add "      $display(\"C %%b\", po);\n";
        add "      if (po !== exp) errors = errors + 1;\n"
      end;
      add "      tick;\n";
      add "    end\n";
      add "  endtask\n\n"
  | Comb _ ->
      add "  task apply(input [%d:0] vec%s);\n" (max npi 1 - 1)
        (if npo > 0 then Printf.sprintf ", input [%d:0] exp" (npo - 1) else "");
      add "    begin\n";
      if npi > 0 then add "      pi = vec;\n";
      add "      #1;\n";
      if npo > 0 then begin
        add "      $display(\"C %%b\", po);\n";
        add "      if (po !== exp) errors = errors + 1;\n"
      end;
      add "    end\n";
      add "  endtask\n\n");
  add "  initial begin\n";
  add "    errors = 0;";
  (match clk with Some _ -> add " clk = 1'b0;" | None -> ());
  (match scan with Some _ -> add " scan_en = 1'b0; scan_in = 1'b0;" | None -> ());
  if npi > 0 then add " pi = %d'b0;" npi;
  add "\n";
  let exp = ref expected in
  let pop_exp () =
    match !exp with
    | line :: tl ->
        exp := tl;
        Some line
    | [] -> None
  in
  (* each op consumes its expected trace line in lock-step with
     internal_trace's rendering *)
  (match program with
  | Scan ops ->
      List.iter
        (fun op ->
          match op with
          | Protocol.Shift v ->
              let e =
                match pop_exp () with
                | Some line when String.length line = 3 && line.[0] = 'S' ->
                    line.[2] = '1'
                | _ -> invalid_arg "Xcheck.testbench: expected trace out of sync"
              in
              add "    shift(%s, %s);\n" (bit_literal v) (bit_literal e)
          | Protocol.Capture pivec ->
              if npo > 0 then
                let e =
                  match pop_exp () with
                  | Some line when String.length line > 2 && line.[0] = 'C' ->
                      String.sub line 2 (String.length line - 2)
                  | _ -> invalid_arg "Xcheck.testbench: expected trace out of sync"
                in
                add "    capture(%s, %d'b%s);\n" (vec_literal pivec) npo e
              else add "    capture(%s);\n" (vec_literal pivec))
        ops
  | Comb vectors ->
      List.iter
        (fun pivec ->
          if npo > 0 then
            let e =
              match pop_exp () with
              | Some line when String.length line > 2 && line.[0] = 'C' ->
                  String.sub line 2 (String.length line - 2)
              | _ -> invalid_arg "Xcheck.testbench: expected trace out of sync"
            in
            add "    apply(%s, %d'b%s);\n" (vec_literal pivec) npo e
          else add "    apply(%s);\n" (vec_literal pivec))
        vectors);
  add "    if (errors == 0) $display(\"TVS-XCHECK PASS\");\n";
  add "    else $display(\"TVS-XCHECK FAIL %%0d\", errors);\n";
  add "    $finish;\n";
  add "  end\n";
  add "endmodule\n";
  Buffer.contents b

(* ---------- external execution ---------- *)

let find_tool name =
  let sep = if Sys.win32 then ';' else ':' in
  match Sys.getenv_opt "PATH" with
  | None -> None
  | Some path ->
      String.split_on_char sep path
      |> List.find_map (fun dir ->
             if dir = "" then None
             else
               let cand = Filename.concat dir name in
               if Sys.file_exists cand && not (Sys.is_directory cand) then Some cand
               else None)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in path in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    text
  end

let fresh_workdir () =
  let base = Filename.get_temp_dir_name () in
  let rec go k =
    let dir = Filename.concat base (Printf.sprintf "tvs-xcheck-%d-%d" (Unix.getpid ()) k) in
    match Unix.mkdir dir 0o755 with
    | () -> dir
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (k + 1)
  in
  go 0

let trace_of_output text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if String.length line >= 2 && (line.[0] = 'S' || line.[0] = 'C') && line.[1] = ' '
         then Some line
         else None)

let compare_traces internal external_ =
  let rec go i a b =
    match (a, b) with
    | [], [] -> Agree { observations = i }
    | x :: xs, y :: ys ->
        if String.equal x y then go (i + 1) xs ys
        else Disagree { index = i; internal_ = x; external_ = y }
    | x :: _, [] -> Disagree { index = i; internal_ = x; external_ = "" }
    | [], y :: _ -> Disagree { index = i; internal_ = ""; external_ = y }
  in
  go 0 internal external_

let run ?workdir c program =
  match (find_tool "iverilog", find_tool "vvp") with
  | None, _ | _, None ->
      Skipped "iverilog/vvp not found on PATH (install Icarus Verilog to enable)"
  | Some iverilog, Some vvp -> (
      let dir = match workdir with Some d -> d | None -> fresh_workdir () in
      let scan = match program with Scan _ -> true | Comb _ -> false in
      let emitted = Emitter.emit ~scan c in
      let internal = internal_trace c program in
      let tb = testbench emitted program ~expected:internal in
      let path name = Filename.concat dir name in
      write_file (path "design.v") emitted.Emitter.text;
      write_file (path "cells.v") Emitter.cell_models;
      write_file (path "tb.v") tb;
      let compile_log = path "iverilog.log" in
      let sim_out = path "vvp.out" in
      let cmd =
        Printf.sprintf "%s -g2001 -o %s %s %s %s >%s 2>&1" (Filename.quote iverilog)
          (Filename.quote (path "sim.vvp"))
          (Filename.quote (path "tb.v"))
          (Filename.quote (path "design.v"))
          (Filename.quote (path "cells.v"))
          (Filename.quote compile_log)
      in
      if Sys.command cmd <> 0 then
        Tool_error (Printf.sprintf "iverilog failed in %s:\n%s" dir (read_file compile_log))
      else
        let cmd =
          Printf.sprintf "%s %s >%s 2>&1" (Filename.quote vvp)
            (Filename.quote (path "sim.vvp"))
            (Filename.quote sim_out)
        in
        if Sys.command cmd <> 0 then
          Tool_error (Printf.sprintf "vvp failed in %s:\n%s" dir (read_file sim_out))
        else compare_traces internal (trace_of_output (read_file sim_out)))
