(** Netlist format detection and dispatch.

    Everywhere the toolkit accepts a netlist spec — [tvs stitch/lint/bench],
    [tvs serve] inline jobs, the cache layer — the format is resolved here,
    so the rules stay identical across entry points:

    - extension [.v], [.sv] or [.vlog] → Verilog; [.bench] → bench;
    - otherwise by content: after skipping whitespace and Verilog comments
      ([// …], [/* … */]), a leading [#] means bench, a backtick directive
      or the keyword [module] means Verilog, anything else means bench
      (the historical default). *)

type format = Bench | Verilog

val format_name : format -> string
(** ["bench"] / ["verilog"] — the wire names used by serve job payloads. *)

val format_of_name : string -> format option
(** Inverse of {!format_name}, case-insensitive. [None] for unknown names
    (callers decide whether unknown is an error; it always is on the wire). *)

val extension : format -> string
(** [".bench"] / [".v"] — used when persisting inline netlist text. *)

val of_extension : string -> format option
(** From a file path's extension alone; [None] when unrecognised. *)

val detect : ?path:string -> string -> format
(** [detect ?path text] resolves the format of netlist [text]: by [path]'s
    extension when given and recognised, else by content. Never fails. *)

val parse_string : ?format:format -> ?name:string -> string -> Tvs_netlist.Circuit.t
(** Parse netlist text, auto-detecting by content when [format] is absent.
    [name] overrides the circuit name (default: Verilog module name, or
    ["inline"] for bench text). Raises
    {!Tvs_netlist.Bench_format.Parse_error} on malformed input. *)

val load_file : ?format:format -> string -> Tvs_netlist.Circuit.t
(** Read and parse a netlist file, auto-detecting by extension then content.
    Raises [Sys_error] on unreadable paths and [Parse_error] (line numbers
    relative to the file) on malformed input. *)
