module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate

type ports = {
  pi : string array;
  po : string array;
  clk : string option;
  scan : (string * string * string) option;
}

type t = { module_name : string; text : string; ports : ports }

let keywords =
  [
    "module"; "endmodule"; "input"; "output"; "inout"; "wire"; "reg"; "tri"; "assign";
    "and"; "nand"; "or"; "nor"; "xor"; "xnor"; "not"; "buf"; "bufif0"; "bufif1";
    "initial"; "always"; "begin"; "end"; "if"; "else"; "case"; "endcase"; "default";
    "task"; "endtask"; "function"; "endfunction"; "parameter"; "localparam"; "integer";
    "real"; "time"; "posedge"; "negedge"; "generate"; "endgenerate"; "genvar";
    "specify"; "endspecify"; "for"; "while"; "repeat"; "forever"; "wait"; "signed";
    "supply0"; "supply1"; "edge"; "scalared"; "vectored"; "small"; "medium"; "large";
    (* cell names the frontend dispatches on at statement position *)
    "dff"; "sdff"; "mux2"; "tvs_dff"; "tvs_sdff"; "tvs_mux2"; "sdffr"; "mux21";
    "dffqx1"; "sdffqx1"; "fd1";
  ]

let is_legal_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false

(* A fresh-name allocator over one Verilog namespace (nets, ports and
   instance names share it in practice). *)
let namer () =
  let taken = Hashtbl.create 64 in
  fun raw ->
    let base =
      let b = Bytes.of_string raw in
      Bytes.iteri (fun i c -> if not (is_legal_char c) then Bytes.set b i '_') b;
      let s = Bytes.to_string b in
      let s = if s = "" then "n" else s in
      let s = match s.[0] with '0' .. '9' | '$' -> "n" ^ s | _ -> s in
      if List.mem (String.lowercase_ascii s) keywords then s ^ "_" else s
    in
    let rec claim cand k =
      if Hashtbl.mem taken cand then claim (Printf.sprintf "%s_%d" base k) (k + 1)
      else begin
        Hashtbl.add taken cand ();
        cand
      end
    in
    claim base 0

let cell_models =
  String.concat "\n"
    [
      "// Behavioural models for the tvs cell library. Zero-initialised to";
      "// match the internal simulator's reset state.";
      "module tvs_dff (q, d, clk);";
      "  output reg q;";
      "  input d, clk;";
      "  initial q = 1'b0;";
      "  always @(posedge clk) q <= d;";
      "endmodule";
      "";
      "module tvs_sdff (q, d, si, se, clk);";
      "  output reg q;";
      "  input d, si, se, clk;";
      "  initial q = 1'b0;";
      "  always @(posedge clk) q <= se ? si : d;";
      "endmodule";
      "";
      "module tvs_mux2 (y, a, b, s);";
      "  output y;";
      "  input a, b, s;";
      "  assign y = s ? b : a;";
      "endmodule";
      "";
    ]

let emit ?(scan = false) c =
  let n_flops = Circuit.num_flops c in
  if scan && n_flops = 0 then
    invalid_arg "Emitter.emit: scan mode requires at least one flip-flop";
  let fresh = namer () in
  let module_name = fresh (Circuit.name c) in
  let vname = Array.make (Circuit.num_nets c) "" in
  for net = 0 to Circuit.num_nets c - 1 do
    vname.(net) <- fresh (Circuit.net_name c net)
  done;
  let clk = if n_flops > 0 then Some (fresh "clk") else None in
  let scan_ports =
    if scan then Some (fresh "scan_en", fresh "scan_in", fresh "scan_out") else None
  in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let pi_nets = Circuit.inputs c in
  let is_pi = Array.make (Circuit.num_nets c) false in
  Array.iter (fun p -> is_pi.(p) <- true) pi_nets;
  (* An output port must not also be an input port, and a net may serve as a
     port at most once — alias any other output through an assign. *)
  let port_used = Hashtbl.create 16 in
  let aliases = ref [] in
  let po_ports =
    Array.map
      (fun o ->
        if is_pi.(o) || Hashtbl.mem port_used o then begin
          let alias = fresh (Circuit.net_name c o ^ "$o") in
          aliases := (alias, vname.(o)) :: !aliases;
          alias
        end
        else begin
          Hashtbl.add port_used o ();
          vname.(o)
        end)
      (Circuit.outputs c)
  in
  let aliases = List.rev !aliases in
  let pi_ports = Array.map (fun p -> vname.(p)) pi_nets in
  let ports_in_order =
    Array.to_list pi_ports
    @ Option.to_list clk
    @ (match scan_ports with Some (se, si, _) -> [ se; si ] | None -> [])
    @ Array.to_list po_ports
    @ match scan_ports with Some (_, _, so) -> [ so ] | None -> []
  in
  add "// emitted by tvs from circuit %S\n" (Circuit.name c);
  (match ports_in_order with
  | [] -> add "module %s;\n" module_name
  | ports -> add "module %s (%s);\n" module_name (String.concat ", " ports));
  List.iter
    (fun p -> add "  input %s;\n" p)
    (Array.to_list pi_ports
    @ Option.to_list clk
    @ match scan_ports with Some (se, si, _) -> [ se; si ] | None -> []);
  List.iter
    (fun p -> add "  output %s;\n" p)
    (Array.to_list po_ports
    @ match scan_ports with Some (_, _, so) -> [ so ] | None -> []);
  (* every non-port net gets a wire declaration *)
  let is_output_port = Hashtbl.create 16 in
  Array.iteri
    (fun i o -> if po_ports.(i) = vname.(o) then Hashtbl.replace is_output_port o ())
    (Circuit.outputs c);
  for net = 0 to Circuit.num_nets c - 1 do
    if (not is_pi.(net)) && not (Hashtbl.mem is_output_port net) then
      add "  wire %s;\n" vname.(net)
  done;
  Buffer.add_char buf '\n';
  let flop_pos = Hashtbl.create 16 in
  Array.iteri (fun i q -> Hashtbl.replace flop_pos q i) (Circuit.flops c);
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.driver c net with
    | Circuit.Primary_input -> ()
    | Circuit.Const v -> add "  assign %s = 1'b%d;\n" vname.(net) (if v then 1 else 0)
    | Circuit.Gate_node (kind, ins) ->
        add "  %s %s (%s);\n"
          (String.lowercase_ascii (Gate.to_string kind) |> fun s ->
           if s = "buff" then "buf" else s)
          (fresh (Printf.sprintf "tvs$g%d" net))
          (String.concat ", "
             (vname.(net) :: (Array.to_list ins |> List.map (fun i -> vname.(i)))))
    | Circuit.Flip_flop d -> (
        match scan_ports with
        | None ->
            add "  tvs_dff %s (.q(%s), .d(%s), .clk(%s));\n"
              (fresh (Printf.sprintf "tvs$ff%d" net))
              vname.(net) vname.(d) (Option.get clk)
        | Some (se, si, _) ->
            let pos = Hashtbl.find flop_pos net in
            let shift_src = if pos = 0 then si else vname.((Circuit.flops c).(pos - 1)) in
            add "  tvs_sdff %s (.q(%s), .d(%s), .si(%s), .se(%s), .clk(%s));\n"
              (fresh (Printf.sprintf "tvs$ff%d" net))
              vname.(net) vname.(d) shift_src se (Option.get clk))
  done;
  (match scan_ports with
  | Some (_, _, so) ->
      let tail = (Circuit.flops c).(n_flops - 1) in
      add "  assign %s = %s;\n" so vname.(tail)
  | None -> ());
  List.iter (fun (alias, src) -> add "  assign %s = %s;\n" alias src) aliases;
  add "endmodule\n";
  {
    module_name;
    text = Buffer.contents buf;
    ports = { pi = pi_ports; po = po_ports; clk; scan = scan_ports };
  }
