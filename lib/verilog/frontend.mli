(** Structural Verilog frontend.

    Parses a synthesised-netlist subset of Verilog into the same
    statement/line-table vocabulary the `.bench` reader uses
    ({!Tvs_netlist.Bench_format.statement}), so every lint rule and every
    cross-statement error ([Parse_error]) carries real Verilog line numbers.

    Supported subset (one design module per file; module definitions whose
    names resolve to known cells — see {!Cell_lib} — are skipped, so a file
    may carry its own cell models):

    {v
      module NAME (ports...);          // ANSI or non-ANSI header
        input  a, b;  output y;        // scalar only; vectors are rejected
        wire w; reg r; tri t;
        and  g1 (y, a, b);             // gate primitives, instance name
        not  (w, a);                   //   optional; buf/not allow multiple
        buf  (o1, o2, in);             //   outputs (last terminal = input)
        tvs_dff  ff0 (.q(s), .d(w), .clk(clk));   // cell instances, named
        tvs_sdff ff1 (s2, w2, si, se, clk);       //   or positional pins
        tvs_mux2 m0  (.y(y2), .a(a), .b(b), .s(s));
        assign y3 = w;                 // alias (becomes a BUF)
        assign y4 = 1'b0;              // tie cell (becomes a constant)
      endmodule
    v}

    Semantics notes: clock pins are dropped (the circuit model is
    single-clock and implicit); scan pins ([si]/[se]) of sdff cells are
    dropped too, recovering the {e functional} netlist the rest of the stack
    expects — {!Tvs_netlist.Scan_insert} re-derives the chain. Module inputs
    used {e only} on dropped pins (a pure clock or scan-enable port) do not
    become primary inputs; unused inputs remain primary inputs. [tvs_mux2]
    decomposes into NOT/AND/AND/OR gates named [<y>$sn], [<y>$a], [<y>$b].
    Constant terminals ([1'b0]/[1'b1]) in gate or cell positions become
    shared tie nets [tvs$tie0]/[tvs$tie1]. *)

val statements_of_string :
  ?extra:(string * Cell_lib.template) list ->
  string ->
  string * (int * Tvs_netlist.Bench_format.statement) list
(** [statements_of_string text] is [(module_name, numbered_statements)].
    Raises {!Tvs_netlist.Bench_format.Parse_error} with a 1-based Verilog
    line number on lexical or syntactic errors; cross-statement problems
    (duplicate drivers, undefined nets, combinational cycles) are
    {!Tvs_netlist.Bench_format.circuit_of_statements}'s job, as for
    `.bench`. [extra] extends the cell-name map (highest precedence). *)

val parse_string :
  ?name:string -> ?extra:(string * Cell_lib.template) list -> string -> Tvs_netlist.Circuit.t
(** Parse and build. The circuit name defaults to the Verilog module name.
    Raises [Parse_error] on any malformed input, always with a line. *)

val parse_file : ?extra:(string * Cell_lib.template) list -> string -> Tvs_netlist.Circuit.t
