(* The SOC scenario the paper's introduction motivates.

     dune exec examples/soc_cores.exe

   A system-on-chip hosts several cores, each with its own scan chain,
   tested back to back on one ATE. Tester memory and test time are paid per
   core; the stitched flow compresses both with zero silicon cost, which is
   exactly the regime the paper targets ("particularly suitable for SOC
   testing"). This example tests a four-core SOC both ways and reports the
   aggregate ATE budget. *)

module Circuit = Tvs_netlist.Circuit
module Cost = Tvs_scan.Cost
module Baseline = Tvs_core.Baseline
module Engine = Tvs_core.Engine
module Experiments = Tvs_harness.Experiments
module Prep = Tvs_harness.Prep
module Table = Tvs_util.Table

let cores = [ "s444"; "s641"; "s953"; "s1196" ]

let () =
  Format.printf "SOC with %d cores, tested sequentially on one ATE:@." (List.length cores);
  let tbl =
    Table.create
      [ "core"; "PI/PO"; "scan"; "trad cycles"; "trad bits"; "stitched cycles"; "stitched bits"; "t"; "m" ]
  in
  let totals = ref (0, 0, 0, 0) in
  List.iter
    (fun name ->
      let prep = Prep.get name in
      let c = prep.Prep.circuit in
      let b = prep.Prep.baseline in
      let r = Experiments.run_flow ~label:"soc" prep in
      (* Recover absolute stitched cost from the ratios. *)
      let st_time = int_of_float (r.Experiments.t *. float_of_int b.Baseline.time) in
      let st_mem = int_of_float (r.Experiments.m *. float_of_int b.Baseline.memory) in
      let bt, bm, st, sm = !totals in
      totals := (bt + b.Baseline.time, bm + b.Baseline.memory, st + st_time, sm + st_mem);
      Table.add_row tbl
        [
          name;
          Printf.sprintf "%d/%d" (Circuit.num_inputs c) (Circuit.num_outputs c);
          string_of_int (Circuit.num_flops c);
          string_of_int b.Baseline.time;
          string_of_int b.Baseline.memory;
          string_of_int st_time;
          string_of_int st_mem;
          Table.fmt_ratio r.Experiments.t;
          Table.fmt_ratio r.Experiments.m;
        ])
    cores;
  let bt, bm, st, sm = !totals in
  Table.add_rule tbl;
  Table.add_row tbl
    [
      "SOC total";
      "";
      "";
      string_of_int bt;
      string_of_int bm;
      string_of_int st;
      string_of_int sm;
      Table.fmt_ratio (float_of_int st /. float_of_int bt);
      Table.fmt_ratio (float_of_int sm /. float_of_int bm);
    ];
  Table.print tbl;
  Format.printf
    "The SOC-level win costs no extra silicon on any core and no output MISR,@.%s@."
    "so diagnosis data stays exact (no aliasing) - the paper's headline claims."
