(* Quickstart: parse a circuit, build the fault list, run the traditional
   baseline and the stitched flow, and print the compression report.

     dune exec examples/quickstart.exe

   This is the five-minute tour of the public API:
   - Tvs_netlist.Bench_format parses ISCAS89 `.bench` text;
   - Tvs_fault.Fault_gen builds and collapses the stuck-at fault list;
   - Tvs_atpg.Podem / Tvs_core.Baseline give the full-shift reference flow;
   - Tvs_core.Engine runs the paper's stitched generation. *)

module Circuit = Tvs_netlist.Circuit
module Fault_gen = Tvs_fault.Fault_gen
module Podem = Tvs_atpg.Podem
module Cost = Tvs_scan.Cost
module Baseline = Tvs_core.Baseline
module Engine = Tvs_core.Engine
module Rng = Tvs_util.Rng

let () =
  (* Any `.bench` text works here; we use the embedded ISCAS89 s27. *)
  let circuit = Tvs_netlist.Bench_format.parse_string ~name:"s27" Tvs_circuits.S27.bench_text in
  Format.printf "Loaded %a@." Circuit.pp_summary circuit;

  (* Stuck-at faults on every stem and fanout branch, structurally collapsed. *)
  let faults = Fault_gen.collapsed circuit in
  Format.printf "Fault list: %d collapsed faults (%.0f%% of the full list)@."
    (Array.length faults)
    (100.0 *. Fault_gen.collapse_ratio circuit);

  (* The traditional flow: every vector fully shifted. This is the paper's
     comparison baseline and yields the aTV count. *)
  let ctx = Podem.create circuit in
  let baseline = Baseline.run ~rng:(Rng.of_string "quickstart:baseline") ctx ~faults in
  Format.printf "Baseline: %d vectors, %d shift cycles, %d memory bits, coverage %.2f%%@."
    baseline.Baseline.num_vectors baseline.Baseline.time baseline.Baseline.memory
    (100.0 *. baseline.Baseline.coverage);

  (* The stitched flow: reuse the retained response as part of the next
     vector, shifting only a few fresh bits per cycle. *)
  let testable = Baseline.testable_faults baseline faults in
  let result =
    Engine.run ~fallback:baseline.Baseline.vectors
      ~rng:(Rng.of_string "quickstart:engine") ctx ~faults:testable
  in
  let ratios = Cost.ratios result.Engine.schedule ~baseline_nvec:baseline.Baseline.num_vectors in
  Format.printf "Stitched: %d vectors (+%d traditional extras), coverage %.2f%%@."
    result.Engine.stitched_vectors result.Engine.extra_vectors (100.0 *. Engine.coverage result);
  Format.printf "Compression: test time t = %.2f, tester memory m = %.2f@." ratios.Cost.t
    ratios.Cost.m;
  Format.printf "(ratios < 1.00 mean the stitched flow wins; no hardware was added)@."
