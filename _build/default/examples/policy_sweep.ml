(* Design-space exploration of Section 6 on one mid-size circuit.

     dune exec examples/policy_sweep.exe [-- circuit]

   Sweeps the three implementation axes the paper discusses — shift size
   (fixed fractions vs variable), observation scheme (NXOR / VXOR / HXOR),
   and vector selection (random / hardness / most-faults / weighted) — and
   prints one table per axis, holding the other axes at the paper's
   preferred settings. *)

module Circuit = Tvs_netlist.Circuit
module Xor_scheme = Tvs_scan.Xor_scheme
module Policy = Tvs_core.Policy
module Experiments = Tvs_harness.Experiments
module Prep = Tvs_harness.Prep
module Table = Tvs_util.Table

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s953" in
  let prep = Prep.get name in
  let chain_len = Circuit.num_flops prep.Prep.circuit in
  Format.printf "Sweeping policies on %a@.@." Circuit.pp_summary prep.Prep.circuit;

  let report tbl label (r : Experiments.run_summary) =
    Table.add_row tbl
      [
        label;
        string_of_int r.Experiments.tv;
        string_of_int r.Experiments.ex;
        string_of_int r.Experiments.peak_hidden;
        Table.fmt_ratio r.Experiments.m;
        Table.fmt_ratio r.Experiments.t;
        Printf.sprintf "%.3f" r.Experiments.coverage;
      ]
  in
  let headers = [ "setting"; "TV"; "ex"; "peak f_h"; "m"; "t"; "cov" ] in

  (* Axis 1: shift size (Section 6.1). *)
  let tbl = Table.create headers in
  List.iter
    (fun frac ->
      let s = max 1 (chain_len * frac / 8) in
      let r =
        Experiments.run_flow ~shift:(Policy.Fixed s)
          ~label:(Printf.sprintf "sweep:fix%d" frac) prep
      in
      report tbl (Printf.sprintf "fixed %d/8 (s=%d)" frac s) r)
    [ 2; 4; 6 ];
  report tbl "variable (/8, x2)" (Experiments.run_flow ~label:"sweep:var" prep);
  print_endline "Shift size (NXOR, most-faults):";
  Table.print tbl;

  (* Axis 2: observation scheme (Section 6.2). *)
  let tbl = Table.create headers in
  List.iter
    (fun (label, scheme) ->
      report tbl label (Experiments.run_flow ~scheme ~label:("sweep:" ^ label) prep))
    [ ("NXOR (no hardware)", Xor_scheme.Nxor);
      ("VXOR (1 XOR/cell)", Xor_scheme.Vxor);
      ("HXOR 3 taps", Xor_scheme.Hxor 3);
      ("HXOR 5 taps", Xor_scheme.Hxor 5) ];
  print_endline "Observation scheme (variable shift, most-faults):";
  Table.print tbl;

  (* Axis 3: vector selection (Section 6.3). *)
  let tbl = Table.create headers in
  List.iter
    (fun (label, selection) ->
      report tbl label (Experiments.run_flow ~selection ~label:("sweep:" ^ label) prep))
    [ ("random", Policy.Random_order);
      ("hardness", Policy.Hardness_order);
      ("most-faults (5)", Policy.Most_faults 5);
      ("weighted (5)", Policy.Weighted 5) ];
  print_endline "Vector selection (variable shift, NXOR):";
  Table.print tbl
