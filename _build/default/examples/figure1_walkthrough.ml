(* The paper's Section 3 worked example, end to end.

     dune exec examples/figure1_walkthrough.exe

   Reconstructs the Figure 1 circuit (three gates, scan chain of length 3),
   applies the four test vectors with the stitched schedule 3+2+2+2, and
   regenerates Table 1: every fault's test vector and response per cycle,
   including the hidden faults F/0, F/1 and D-F/1 whose effects survive in
   the retained part of the chain and are caught through mutated vectors. *)

module Circuit = Tvs_netlist.Circuit
module Cycle = Tvs_core.Cycle
module Fig1 = Tvs_circuits.Fig1
module Experiments = Tvs_harness.Experiments

let () =
  let c = Fig1.circuit () in
  Format.printf "Circuit: %a@." Circuit.pp_summary c;
  Format.printf
    "Scan cells a, b, c capture F = AND(D, E), E = OR(B, C), D = AND(A, B).@\n@.";
  print_string (Experiments.table1 ());
  print_newline ();
  (* Narrate the hidden-fault story the paper tells. *)
  let faults = Array.of_list (List.map (Fig1.paper_fault c) Fig1.table1_faults) in
  let machine = Cycle.create c ~faults in
  let name i = Tvs_fault.Fault.name c faults.(i) in
  let names is = String.concat ", " (List.map name is) in
  List.iteri
    (fun k fresh ->
      let r = Cycle.step machine ~pi:[||] ~fresh in
      Format.printf "cycle %d:@." (k + 1);
      if r.Cycle.caught_now <> [] then Format.printf "  caught: %s@." (names r.Cycle.caught_now);
      if r.Cycle.newly_hidden <> [] then
        Format.printf "  became hidden: %s@." (names r.Cycle.newly_hidden);
      if r.Cycle.reverted <> [] then
        Format.printf "  effect vanished (back to uncaught): %s@." (names r.Cycle.reverted))
    Fig1.fresh_bits;
  let r = Cycle.flush machine ~full:false in
  Format.printf "final unload:@.";
  if r.Cycle.caught_now <> [] then Format.printf "  caught: %s@." (names r.Cycle.caught_now);
  let leftover = Cycle.uncaught_indices machine in
  Format.printf "  never caught: %s (redundant: no test exists)@." (names leftover);
  Format.printf
    "@.Totals: 11 shift cycles and 17 stored bits, versus 15 cycles and 24 bits@.%s@."
    "for the traditional flow - a 27% time and 29% memory reduction, free of hardware."
