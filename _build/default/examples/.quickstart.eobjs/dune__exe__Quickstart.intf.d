examples/quickstart.mli:
