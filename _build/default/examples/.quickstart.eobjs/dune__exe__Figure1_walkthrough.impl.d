examples/figure1_walkthrough.ml: Array Format List String Tvs_circuits Tvs_core Tvs_fault Tvs_harness Tvs_netlist
