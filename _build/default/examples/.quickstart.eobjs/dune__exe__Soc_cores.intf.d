examples/soc_cores.mli:
