examples/quickstart.ml: Array Format Tvs_atpg Tvs_circuits Tvs_core Tvs_fault Tvs_netlist Tvs_scan Tvs_util
