examples/diagnosis_demo.ml: Array Format List String Tvs_atpg Tvs_circuits Tvs_core Tvs_fault Tvs_logic Tvs_netlist Tvs_scan Tvs_sim Tvs_util
