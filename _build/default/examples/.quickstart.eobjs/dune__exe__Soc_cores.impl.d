examples/soc_cores.ml: Format List Printf Tvs_core Tvs_harness Tvs_netlist Tvs_scan Tvs_util
