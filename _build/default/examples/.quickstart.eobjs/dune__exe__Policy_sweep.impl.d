examples/policy_sweep.ml: Array Format List Printf Sys Tvs_core Tvs_harness Tvs_netlist Tvs_scan Tvs_util
