(* Tester-floor debugging with full response data.

     dune exec examples/diagnosis_demo.exe

   The paper's closing argument: because the stitched scheme needs no MISR,
   "the aliasing of faults and the possible loss of information for fault
   diagnosis is prevented". This example plays that story out: a chip with a
   hidden manufacturing defect fails on the tester, and the full (MISR-free)
   response data pinpoints the defect — then the same scenario through a
   narrow MISR shows what compaction throws away. *)

module Circuit = Tvs_netlist.Circuit
module Fault = Tvs_fault.Fault
module Fault_gen = Tvs_fault.Fault_gen
module Diagnosis = Tvs_fault.Diagnosis
module Parallel = Tvs_sim.Parallel
module Cube = Tvs_atpg.Cube
module Podem = Tvs_atpg.Podem
module Misr = Tvs_scan.Misr
module Baseline = Tvs_core.Baseline
module Rng = Tvs_util.Rng

let () =
  let c = Tvs_circuits.Synth.generate_named "s444" in
  Format.printf "Device under test: %a@." Circuit.pp_summary c;
  let faults = Fault_gen.collapsed c in
  let ctx = Podem.create c in
  let baseline = Baseline.run ~rng:(Rng.of_string "diag:baseline") ctx ~faults in
  let tests =
    Array.map (fun (v : Cube.vector) -> (v.Cube.pi, v.Cube.scan)) baseline.Baseline.vectors
  in
  Format.printf "Test program: %d vectors. Building the fault dictionary...@."
    (Array.length tests);
  let sim = Parallel.create c in
  let dict = Diagnosis.build sim ~faults ~tests in
  Format.printf "Dictionary: %d faults detected, %d distinguishable behaviours (%.2f faults/class)@."
    (Diagnosis.num_detected dict) (Diagnosis.num_classes dict) (Diagnosis.resolution dict);

  (* A "manufactured" chip with a defect we pretend not to know. *)
  let secret_defect = faults.(Array.length faults / 3) in
  let observed = Diagnosis.respond sim ~tests ~fault:secret_defect () in
  Format.printf "@.A device fails on the ATE. Diagnosing from the full response data:@.";
  (match Diagnosis.diagnose dict ~observed with
  | Diagnosis.No_defect -> Format.printf "  device looks clean (?)@."
  | Diagnosis.Unknown_defect -> Format.printf "  behaviour matches no modelled fault@."
  | Diagnosis.Candidates cands ->
      Format.printf "  candidate defect site(s): %s@."
        (String.concat ", " (List.map (Fault.name c) cands));
      Format.printf "  (the injected defect was %s)@." (Fault.name c secret_defect));

  (* The same failing device observed only through an 8-bit MISR. *)
  let width = 8 in
  let good_sig = Misr.signature_of ~width (Diagnosis.respond sim ~tests ()) in
  let bad_sig = Misr.signature_of ~width observed in
  Format.printf "@.Through an %d-bit MISR the tester keeps %d bits instead of %d:@." width width
    (List.fold_left (fun acc a -> acc + Array.length a) 0 observed);
  Format.printf "  good signature %s, failing signature %s -> %s@."
    (Tvs_logic.Bitvec.to_string good_sig)
    (Tvs_logic.Bitvec.to_string bad_sig)
    (if Tvs_logic.Bitvec.equal good_sig bad_sig then "ALIASED: the defect escapes!"
     else "fails, but which fault? The signature cannot say.");
  (* How many faults share that signature? *)
  let sharing =
    Array.to_list faults
    |> List.filter (fun f ->
           Tvs_logic.Bitvec.equal bad_sig
             (Misr.signature_of ~width (Diagnosis.respond sim ~tests ~fault:f ())))
  in
  Format.printf "  %d modelled faults produce this very signature.@." (List.length sharing);
  Format.printf
    "@.The stitched flow ships the raw stream to the ATE, so the dictionary@.%s@."
    "diagnosis above is available for free - no MISR, no aliasing, no guesswork."
