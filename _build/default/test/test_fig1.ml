(* Ground truth: the paper's Section 3 worked example. Every row of Table 1
   (fault behaviour over four stitched cycles) is checked bit for bit, along
   with the caught/hidden/uncaught bookkeeping and the cost arithmetic. *)

module Circuit = Tvs_netlist.Circuit
module Fault = Tvs_fault.Fault
module Fault_sim = Tvs_fault.Fault_sim
module Parallel = Tvs_sim.Parallel
module Chain = Tvs_scan.Chain
module Cost = Tvs_scan.Cost
module Cycle = Tvs_core.Cycle
module Fig1 = Tvs_circuits.Fig1

let c = Fig1.circuit ()

let bits s = Array.init (String.length s) (fun i -> s.[i] = '1')
let show a = String.init (Array.length a) (fun i -> if a.(i) then '1' else '0')

(* Response of the (possibly faulty) machine to a given scan state. *)
let response fault state =
  let sim = Fault_sim.create c in
  match fault with
  | None ->
      let _, capture = Parallel.run_single (Fault_sim.parallel sim) ~pi:[||] ~state in
      capture
  | Some f -> (
      let r = Fault_sim.run_batch sim ~pi:[||] ~state ~faults:[| f |] in
      match r.outcomes.(0) with
      | Fault_sim.Same | Fault_sim.Po_detected -> r.good.capture
      | Fault_sim.Capture_differs cap -> cap)

(* Replay the paper's schedule for one fault, returning the (TV, RP) pairs
   until the fault is caught (observation of two tail bits during the next
   shift), exactly as Table 1 tabulates them. *)
let replay fault_name =
  let fault = Fig1.paper_fault c fault_name in
  let rec go contents_g contents_f fresh_remaining acc =
    (* Observation of the previous responses happens while shifting. *)
    let fresh = match fresh_remaining with f :: _ -> f | [] -> [| false; false |] in
    let caught = Chain.emitted contents_g ~s:2 <> Chain.emitted contents_f ~s:2 in
    if caught || fresh_remaining = [] then List.rev acc
    else
      let applied_g, _ = Chain.shift contents_g ~fresh in
      let applied_f, _ = Chain.shift contents_f ~fresh in
      let rg = response None applied_g in
      let rf = response (Some fault) applied_f in
      go rg rf (List.tl fresh_remaining) ((show applied_f, show rf) :: acc)
  in
  let first = List.hd Fig1.vectors in
  let rg = response None first in
  let rf = response (Some fault) first in
  go rg rf (List.tl Fig1.fresh_bits) [ (show first, show rf) ]

let check_rows name expected () =
  let got = replay name in
  Alcotest.(check (list (pair string string))) name expected got

(* Expected (TV, RP) rows transcribed from Table 1. A fault's row stops once
   it is caught (blank cells in the paper). *)
let table1 =
  [
    ("F/0", [ ("110", "011"); ("000", "000") ]);
    ("F/1", [ ("110", "111"); ("001", "110"); ("101", "110") ]);
    ("D-F/1", [ ("110", "111"); ("001", "110"); ("101", "110") ]);
    ("E-F/1", [ ("110", "111"); ("001", "010"); ("100", "000"); ("010", "010") ]);
    ("D/0", [ ("110", "010") ]);
    ("D/1", [ ("110", "111"); ("001", "111") ]);
    ("B-D/1", [ ("110", "111"); ("001", "010"); ("100", "001") ]);
    ("A/1", [ ("110", "111"); ("001", "010"); ("100", "000"); ("010", "111") ]);
    ("B/0", [ ("110", "000") ]);
    ("B/1", [ ("110", "111"); ("001", "010"); ("100", "111") ]);
    ("E/0", [ ("110", "001") ]);
    ("B-E/0", [ ("110", "001") ]);
    ("C/0", [ ("110", "111"); ("001", "000") ]);
    ("E/1", [ ("110", "111"); ("001", "010"); ("100", "010") ]);
    ("E-b/0", [ ("110", "101") ]);
    ("E-b/1", [ ("110", "111"); ("001", "010"); ("100", "010") ]);
    ("D-c/0", [ ("110", "110") ]);
    (* Published-table erratum: the paper prints cycle-2 RP "010" for D-c/1,
       but its own fault-free row has D = 0 in cycle 2, so the stuck-at-1
       branch into cell c must capture 1 — response "011", caught one cycle
       earlier. See EXPERIMENTS.md. *)
    ("D-c/1", [ ("110", "111"); ("001", "011") ]);
  ]

let test_correct_row () =
  (* The fault-free row of Table 1: vectors and responses. *)
  let sim = Parallel.create c in
  let rec go state acc = function
    | [] -> List.rev acc
    | fresh :: rest ->
        let applied, _ = Chain.shift state ~fresh in
        let _, capture = Parallel.run_single sim ~pi:[||] ~state:applied in
        go capture ((show applied, show capture) :: acc) rest
  in
  let init = Array.make 3 false in
  let rows = go init [] Fig1.fresh_bits in
  Alcotest.(check (list (pair string string)))
    "fault-free behaviour"
    [ ("110", "111"); ("001", "010"); ("100", "000"); ("010", "010") ]
    rows

let faults_of_names names = Array.of_list (List.map (Fig1.paper_fault c) names)

(* Drive the Cycle machine through the paper's schedule and check the fault
   set evolution of Section 3. *)
let test_cycle_machine () =
  let faults = faults_of_names Fig1.table1_faults in
  let machine = Cycle.create c ~faults in
  let step fresh = ignore (Cycle.step machine ~pi:[||] ~fresh) in
  let counts () = (Cycle.num_caught machine, Cycle.num_hidden machine, Cycle.num_uncaught machine) in
  step (bits "110");
  Alcotest.(check (triple int int int)) "after cycle 1" (0, 7, 11) (counts ());
  step (bits "00");
  (* 6 hidden rather than the paper-implied 5: the D-c/1 erratum (see the
     table above) makes that fault pending after cycle 2. *)
  Alcotest.(check (triple int int int)) "after cycle 2" (6, 6, 6) (counts ());
  step (bits "10");
  Alcotest.(check (triple int int int)) "after cycle 3" (10, 6, 2) (counts ());
  step (bits "01");
  Alcotest.(check (triple int int int)) "after cycle 4" (16, 1, 1) (counts ());
  ignore (Cycle.flush machine ~full:false);
  Alcotest.(check (triple int int int)) "after final unload" (17, 0, 1) (counts ());
  (* The single uncaught fault is the redundant E-F/1. *)
  let uncaught = Cycle.uncaught_indices machine in
  let names = List.map (fun i -> Fault.name c faults.(i)) uncaught in
  Alcotest.(check (list string)) "redundant leftover" [ "E-F/1" ] names

let test_cost_arithmetic () =
  let schedule =
    {
      Cost.chain_len = 3;
      npi = 0;
      npo = 0;
      shifts = Fig1.shift_schedule;
      extra = 0;
      full_drain = false;
    }
  in
  Alcotest.(check int) "stitched shift cycles" 11 (Cost.time schedule);
  Alcotest.(check int) "stitched memory bits" 17 (Cost.memory schedule);
  Alcotest.(check int) "baseline shift cycles" 15 (Cost.baseline_time ~chain_len:3 ~nvec:4);
  Alcotest.(check int) "baseline memory bits" 24
    (Cost.baseline_memory ~chain_len:3 ~npi:0 ~npo:0 ~nvec:4)

let test_hidden_fault_f0 () =
  (* F/0 is the paper's canonical hidden fault: invisible in the two bits
     shifted out after cycle 1, caught through its mutated second vector. *)
  let faults = faults_of_names [ "F/0" ] in
  let machine = Cycle.create c ~faults in
  ignore (Cycle.step machine ~pi:[||] ~fresh:(bits "110"));
  Alcotest.(check bool) "hidden after cycle 1" true (Cycle.status machine 0 = Cycle.Hidden);
  ignore (Cycle.step machine ~pi:[||] ~fresh:(bits "00"));
  Alcotest.(check bool) "still hidden after cycle 2" true (Cycle.status machine 0 = Cycle.Hidden);
  ignore (Cycle.step machine ~pi:[||] ~fresh:(bits "10"));
  Alcotest.(check bool) "caught at cycle 3's shift" true
    (match Cycle.status machine 0 with Cycle.Caught _ -> true | Cycle.Hidden | Cycle.Uncaught -> false)

let () =
  let table_cases =
    List.map
      (fun (name, expected) -> Alcotest.test_case name `Quick (check_rows name expected))
      table1
  in
  Alcotest.run "fig1"
    [
      ("table1-correct", [ Alcotest.test_case "fault-free row" `Quick test_correct_row ]);
      ("table1-faults", table_cases);
      ( "fault-sets",
        [
          Alcotest.test_case "cycle machine evolution" `Quick test_cycle_machine;
          Alcotest.test_case "hidden fault F/0" `Quick test_hidden_fault_f0;
        ] );
      ("costs", [ Alcotest.test_case "paper arithmetic" `Quick test_cost_arithmetic ]);
    ]
