(* End-to-end flows: baseline ATPG and the stitching engine on the embedded
   s27 and on synthetic profile circuits, checking coverage preservation,
   compression, and determinism. *)

module Circuit = Tvs_netlist.Circuit
module Fault_gen = Tvs_fault.Fault_gen
module Podem = Tvs_atpg.Podem
module Cost = Tvs_scan.Cost
module Xor_scheme = Tvs_scan.Xor_scheme
module Baseline = Tvs_core.Baseline
module Engine = Tvs_core.Engine
module Policy = Tvs_core.Policy
module Rng = Tvs_util.Rng

let prep circuit =
  let faults = Fault_gen.collapsed circuit in
  let ctx = Podem.create circuit in
  let rng = Rng.of_string (Circuit.name circuit ^ ":baseline") in
  let baseline = Baseline.run ~rng ctx ~faults in
  (ctx, faults, baseline)

let run_engine ?config ctx ~faults ~baseline ~seed =
  let testable = Baseline.testable_faults baseline faults in
  Engine.run ?config ~fallback:baseline.Baseline.vectors ~rng:(Rng.of_string seed) ctx
    ~faults:testable

let test_s27_baseline () =
  let c = Tvs_circuits.S27.circuit () in
  let _, faults, baseline = prep c in
  Alcotest.(check bool) "some faults" true (Array.length faults > 20);
  Alcotest.(check (float 0.0001)) "full coverage of testable faults" 1.0 baseline.Baseline.coverage;
  Alcotest.(check bool) "nonempty test set" true (baseline.Baseline.num_vectors > 0)

let test_s27_engine_full_coverage () =
  let c = Tvs_circuits.S27.circuit () in
  let ctx, faults, baseline = prep c in
  let r = run_engine ctx ~faults ~baseline ~seed:"s27:engine" in
  Alcotest.(check (float 0.0001)) "stitched flow loses no coverage" 1.0 (Engine.coverage r);
  Alcotest.(check bool) "uses stitched vectors" true (r.Engine.stitched_vectors > 0)

let test_s27_determinism () =
  let c = Tvs_circuits.S27.circuit () in
  let ctx, faults, baseline = prep c in
  let r1 = run_engine ctx ~faults ~baseline ~seed:"d" in
  let r2 = run_engine ctx ~faults ~baseline ~seed:"d" in
  Alcotest.(check int) "same vector count" r1.Engine.stitched_vectors r2.Engine.stitched_vectors;
  Alcotest.(check int) "same extra count" r1.Engine.extra_vectors r2.Engine.extra_vectors;
  Alcotest.(check (list int)) "same shift schedule" r1.Engine.schedule.Cost.shifts
    r2.Engine.schedule.Cost.shifts

let test_synth_s444_compresses () =
  let c = Tvs_circuits.Synth.generate_named "s444" in
  let ctx, faults, baseline = prep c in
  let r = run_engine ctx ~faults ~baseline ~seed:"s444:engine" in
  Alcotest.(check (float 0.0001)) "no coverage loss" 1.0 (Engine.coverage r);
  let ratios = Cost.ratios r.Engine.schedule ~baseline_nvec:baseline.Baseline.num_vectors in
  Alcotest.(check bool)
    (Printf.sprintf "test time shrinks (t=%.2f)" ratios.Cost.t)
    true (ratios.Cost.t < 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "memory shrinks (m=%.2f)" ratios.Cost.m)
    true (ratios.Cost.m < 1.0)

let test_fixed_shift_engine () =
  let c = Tvs_circuits.Synth.generate_named "s444" in
  let ctx, faults, baseline = prep c in
  let chain_len = Circuit.num_flops c in
  let config =
    { (Engine.default_config ~chain_len) with shift = Policy.Fixed (chain_len / 2) }
  in
  let r = run_engine ~config ctx ~faults ~baseline ~seed:"s444:fixed" in
  Alcotest.(check (float 0.0001)) "no coverage loss" 1.0 (Engine.coverage r);
  List.iteri
    (fun i s ->
      let expected = if i = 0 then chain_len else chain_len / 2 in
      Alcotest.(check int) (Printf.sprintf "shift %d honours policy" i) expected s)
    r.Engine.schedule.Cost.shifts

let test_vxor_engine () =
  let c = Tvs_circuits.Synth.generate_named "s444" in
  let ctx, faults, baseline = prep c in
  let chain_len = Circuit.num_flops c in
  let config = { (Engine.default_config ~chain_len) with scheme = Xor_scheme.Vxor } in
  let r = run_engine ~config ctx ~faults ~baseline ~seed:"s444:vxor" in
  Alcotest.(check (float 0.0001)) "no coverage loss under VXOR" 1.0 (Engine.coverage r)

let test_hxor_engine () =
  let c = Tvs_circuits.Synth.generate_named "s444" in
  let ctx, faults, baseline = prep c in
  let chain_len = Circuit.num_flops c in
  let config = { (Engine.default_config ~chain_len) with scheme = Xor_scheme.Hxor 3 } in
  let r = run_engine ~config ctx ~faults ~baseline ~seed:"s444:hxor" in
  Alcotest.(check (float 0.0001)) "no coverage loss under HXOR" 1.0 (Engine.coverage r)

let test_selection_strategies () =
  let c = Tvs_circuits.S27.circuit () in
  let ctx, faults, baseline = prep c in
  let chain_len = Circuit.num_flops c in
  List.iter
    (fun selection ->
      let config = { (Engine.default_config ~chain_len) with selection } in
      let r = run_engine ~config ctx ~faults ~baseline ~seed:"s27:sel" in
      Alcotest.(check (float 0.0001))
        (Policy.describe_selection selection ^ " keeps coverage")
        1.0 (Engine.coverage r))
    [ Policy.Random_order; Policy.Hardness_order; Policy.Most_faults 3; Policy.Weighted 3 ]

let () =
  Alcotest.run "integration"
    [
      ( "s27",
        [
          Alcotest.test_case "baseline full coverage" `Quick test_s27_baseline;
          Alcotest.test_case "engine full coverage" `Quick test_s27_engine_full_coverage;
          Alcotest.test_case "determinism" `Quick test_s27_determinism;
          Alcotest.test_case "selection strategies" `Quick test_selection_strategies;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "s444 compresses" `Quick test_synth_s444_compresses;
          Alcotest.test_case "fixed shift policy" `Quick test_fixed_shift_engine;
          Alcotest.test_case "vxor scheme" `Quick test_vxor_engine;
          Alcotest.test_case "hxor scheme" `Quick test_hxor_engine;
        ] );
    ]
