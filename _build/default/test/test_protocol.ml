(* Validation of the project's central abstraction: the combinational-core +
   Chain-shift model must agree, cycle by cycle, with a gate-level
   scan-inserted netlist driven through the physical test protocol. *)

module Circuit = Tvs_netlist.Circuit
module Scan_insert = Tvs_netlist.Scan_insert
module Validate = Tvs_netlist.Validate
module Comb = Tvs_sim.Comb
module Parallel = Tvs_sim.Parallel
module Chain = Tvs_scan.Chain
module Protocol = Tvs_scan.Protocol
module Rng = Tvs_util.Rng

let s27 = Tvs_circuits.S27.circuit ()
let fig1 = Tvs_circuits.Fig1.circuit ()

let test_insertion_structure () =
  let inserted = Scan_insert.insert s27 in
  let c = inserted.Scan_insert.circuit in
  Alcotest.(check int) "two extra PIs" (Circuit.num_inputs s27 + 2) (Circuit.num_inputs c);
  Alcotest.(check int) "one extra PO" (Circuit.num_outputs s27 + 1) (Circuit.num_outputs c);
  Alcotest.(check int) "same flops" (Circuit.num_flops s27) (Circuit.num_flops c);
  Alcotest.(check bool) "clean netlist" true (Validate.is_clean c);
  Alcotest.(check int) "scan-out index" (Circuit.num_outputs s27) inserted.Scan_insert.scan_out_index

let test_insertion_rejects_no_flops () =
  let b = Circuit.Builder.create "comb-only" in
  let a = Circuit.Builder.input b "a" in
  let g = Circuit.Builder.gate b ~name:"g" Tvs_netlist.Gate.Not [ a ] in
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finish b in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Scan_insert.insert c);
       false
     with Circuit.Build_error _ -> true)

let test_shift_register_behaviour () =
  (* Pure shifting: the chain is a shift register; the emitted stream is the
     initial contents tail-first, then the injected bits in order. *)
  let inserted = Scan_insert.insert fig1 in
  let init = [| true; false; true |] in
  let injected = [ true; true; false; false; true ] in
  let obs =
    Protocol.run inserted ~init (List.map (fun b -> Protocol.Shift b) injected)
  in
  Alcotest.(check (list bool))
    "stream = old contents tail-first, then injected bits"
    [ true; false; true; true; true ]
    obs.Protocol.scan_stream;
  (* Final contents: the last three injected bits, newest at the head. *)
  Alcotest.(check (array bool)) "final contents" [| true; false; false |] obs.Protocol.final_state

let test_single_capture_matches_core () =
  let inserted = Scan_insert.insert s27 in
  let rng = Rng.of_string "cap" in
  for _ = 1 to 20 do
    let pi = Array.init (Circuit.num_inputs s27) (fun _ -> Rng.bool rng) in
    let state = Array.init (Circuit.num_flops s27) (fun _ -> Rng.bool rng) in
    let frame = Comb.eval_bool s27 ~pi ~state in
    let obs = Protocol.run inserted ~init:state [ Protocol.Capture pi ] in
    (match obs.Protocol.po_samples with
    | [ po ] -> Alcotest.(check (array bool)) "PO agrees" frame.Comb.po po
    | _ -> Alcotest.fail "expected one capture sample");
    Alcotest.(check (array bool)) "capture agrees" frame.Comb.capture obs.Protocol.final_state
  done

(* The end-to-end equivalence: an arbitrary stitched schedule produces, on
   the physical netlist, exactly the stream/PO/contents sequence that the
   Chain + combinational-core abstraction predicts. *)
let check_schedule circuit vectors =
  let inserted = Scan_insert.insert circuit in
  let chain_len = Circuit.num_flops circuit in
  let sim = Parallel.create circuit in
  (* Abstraction: replay with Chain.shift + capture. *)
  let predicted_stream = ref [] in
  let predicted_pos = ref [] in
  let contents = ref (Array.make chain_len false) in
  List.iter
    (fun (pi, fresh) ->
      predicted_stream := !predicted_stream @ Array.to_list (Chain.emitted !contents ~s:(Array.length fresh));
      let applied, _ = Chain.shift !contents ~fresh in
      let po, capture = Parallel.run_single sim ~pi ~state:applied in
      predicted_pos := !predicted_pos @ [ po ];
      contents := capture)
    vectors;
  (* Physical run. *)
  let obs =
    Protocol.run inserted ~init:(Array.make chain_len false) (Protocol.stitched_ops ~vectors)
  in
  Alcotest.(check (list bool)) "scan stream agrees" !predicted_stream obs.Protocol.scan_stream;
  Alcotest.(check int) "capture count" (List.length vectors) (List.length obs.Protocol.po_samples);
  List.iter2
    (fun expected got -> Alcotest.(check (array bool)) "PO sample agrees" expected got)
    !predicted_pos obs.Protocol.po_samples;
  Alcotest.(check (array bool)) "final contents agree" !contents obs.Protocol.final_state

let test_fig1_paper_schedule_physical () =
  let vectors = List.map (fun fresh -> ([||], fresh)) Tvs_circuits.Fig1.fresh_bits in
  check_schedule fig1 vectors

let test_s27_random_schedules () =
  let rng = Rng.of_string "proto-random" in
  for _ = 1 to 10 do
    let nvec = 1 + Rng.int rng 6 in
    let vectors =
      List.init nvec (fun i ->
          let s = if i = 0 then 3 else 1 + Rng.int rng 3 in
          ( Array.init (Circuit.num_inputs s27) (fun _ -> Rng.bool rng),
            Array.init s (fun _ -> Rng.bool rng) ))
    in
    check_schedule s27 vectors
  done

let qcheck_protocol_equivalence =
  QCheck.Test.make ~name:"physical and abstract application agree (fig1)" ~count:60
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 6) (int_range 0 7)))
    (fun (first, rest) ->
      (* Encode each vector's fresh bits in an int: first vector full load of
         3 bits, later vectors 2 bits. *)
      let bits3 n = [| n land 1 = 1; n land 2 = 2; n land 4 = 4 |] in
      let bits2 n = [| n land 1 = 1; n land 2 = 2 |] in
      let vectors = ([||], bits3 first) :: List.map (fun n -> ([||], bits2 n)) rest in
      try
        check_schedule fig1 vectors;
        true
      with _ -> false)

let () =
  Alcotest.run "protocol"
    [
      ( "insertion",
        [
          Alcotest.test_case "structure" `Quick test_insertion_structure;
          Alcotest.test_case "rejects combinational-only" `Quick test_insertion_rejects_no_flops;
        ] );
      ( "physical-vs-abstract",
        [
          Alcotest.test_case "pure shifting" `Quick test_shift_register_behaviour;
          Alcotest.test_case "single capture" `Quick test_single_capture_matches_core;
          Alcotest.test_case "fig1 paper schedule" `Quick test_fig1_paper_schedule_physical;
          Alcotest.test_case "random s27 schedules" `Quick test_s27_random_schedules;
          QCheck_alcotest.to_alcotest qcheck_protocol_equivalence;
        ] );
    ]
