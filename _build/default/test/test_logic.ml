(* Unit and property tests for Tvs_logic: ternary logic, the five-valued
   D-calculus, and packed bit vectors. *)

module Ternary = Tvs_logic.Ternary
module Fivev = Tvs_logic.Fivev
module Bitvec = Tvs_logic.Bitvec

let tern = Alcotest.testable (fun fmt v -> Ternary.pp fmt v) Ternary.equal
let fv = Alcotest.testable (fun fmt v -> Fivev.pp fmt v) Fivev.equal

let all3 = [ Ternary.Zero; Ternary.One; Ternary.X ]
let all5 = [ Fivev.Zero; Fivev.One; Fivev.D; Fivev.Dbar; Fivev.X ]

let gen3 = QCheck.Gen.oneofl all3
let gen5 = QCheck.Gen.oneofl all5
let arb3 = QCheck.make ~print:(fun v -> String.make 1 (Ternary.to_char v)) gen3
let arb5 = QCheck.make ~print:Fivev.to_string gen5

(* --- ternary ------------------------------------------------------- *)

let test_ternary_tables () =
  let open Ternary in
  Alcotest.check tern "0 and X" Zero (t_and Zero X);
  Alcotest.check tern "1 and X" X (t_and One X);
  Alcotest.check tern "1 or X" One (t_or One X);
  Alcotest.check tern "0 or X" X (t_or Zero X);
  Alcotest.check tern "not X" X (t_not X);
  Alcotest.check tern "X xor 1" X (t_xor X One);
  Alcotest.check tern "1 xor 1" Zero (t_xor One One);
  Alcotest.check tern "0 xor 1" One (t_xor Zero One)

let test_ternary_chars () =
  List.iter
    (fun v -> Alcotest.check tern "char roundtrip" v (Ternary.of_char (Ternary.to_char v)))
    all3;
  Alcotest.check tern "lowercase x" Ternary.X (Ternary.of_char 'x');
  Alcotest.check_raises "bad char" (Invalid_argument "Ternary.of_char: '2'") (fun () ->
      ignore (Ternary.of_char '2'))

let test_ternary_merge () =
  let open Ternary in
  Alcotest.(check (option tern)) "X merge 1" (Some One) (merge X One);
  Alcotest.(check (option tern)) "1 merge X" (Some One) (merge One X);
  Alcotest.(check (option tern)) "conflict" None (merge Zero One);
  Alcotest.(check (option tern)) "agree" (Some Zero) (merge Zero Zero)

let qcheck_merge_compatible =
  QCheck.Test.make ~name:"merge succeeds iff compatible" ~count:200 (QCheck.pair arb3 arb3)
    (fun (a, b) -> Ternary.compatible a b = Option.is_some (Ternary.merge a b))

let qcheck_and_comm =
  QCheck.Test.make ~name:"t_and commutative" ~count:100 (QCheck.pair arb3 arb3) (fun (a, b) ->
      Ternary.equal (Ternary.t_and a b) (Ternary.t_and b a))

let qcheck_demorgan =
  QCheck.Test.make ~name:"De Morgan holds in Kleene logic" ~count:100 (QCheck.pair arb3 arb3)
    (fun (a, b) ->
      Ternary.equal
        (Ternary.t_not (Ternary.t_and a b))
        (Ternary.t_or (Ternary.t_not a) (Ternary.t_not b)))

(* --- five-valued --------------------------------------------------- *)

let test_fivev_projections () =
  Alcotest.check tern "good D" Ternary.One (Fivev.good Fivev.D);
  Alcotest.check tern "faulty D" Ternary.Zero (Fivev.faulty Fivev.D);
  Alcotest.check tern "good D'" Ternary.Zero (Fivev.good Fivev.Dbar);
  Alcotest.check tern "faulty D'" Ternary.One (Fivev.faulty Fivev.Dbar);
  Alcotest.check fv "of_pair reconstructs D" Fivev.D (Fivev.of_pair Ternary.One Ternary.Zero);
  Alcotest.check fv "of_pair X absorbs" Fivev.X (Fivev.of_pair Ternary.X Ternary.One)

let test_fivev_d_tables () =
  let open Fivev in
  Alcotest.check fv "D and 1" D (f_and D One);
  Alcotest.check fv "D and 0" Zero (f_and D Zero);
  Alcotest.check fv "D and D'" Zero (f_and D Dbar);
  Alcotest.check fv "D or D'" One (f_or D Dbar);
  Alcotest.check fv "D xor D" Zero (f_xor D D);
  Alcotest.check fv "D xor 1" Dbar (f_xor D One);
  Alcotest.check fv "not D" Dbar (f_not D);
  Alcotest.check fv "D and X" X (f_and D X)

(* The defining law of the D-calculus: every connective acts componentwise on
   the (good, faulty) pair. *)
let componentwise name op top =
  QCheck.Test.make ~name ~count:200 (QCheck.pair arb5 arb5) (fun (a, b) ->
      Fivev.equal (op a b) (Fivev.of_pair (top (Fivev.good a) (Fivev.good b)) (top (Fivev.faulty a) (Fivev.faulty b))))

let qcheck_fivev_and = componentwise "f_and is componentwise t_and" Fivev.f_and Ternary.t_and
let qcheck_fivev_or = componentwise "f_or is componentwise t_or" Fivev.f_or Ternary.t_or
let qcheck_fivev_xor = componentwise "f_xor is componentwise t_xor" Fivev.f_xor Ternary.t_xor

let test_fivev_is_error () =
  Alcotest.(check (list bool))
    "only D and D' are errors"
    [ false; false; true; true; false ]
    (List.map Fivev.is_error all5)

(* --- bitvec --------------------------------------------------------- *)

let test_bitvec_get_set () =
  let v = Bitvec.create 130 in
  Alcotest.(check int) "length" 130 (Bitvec.length v);
  Bitvec.set v 0 true;
  Bitvec.set v 63 true;
  Bitvec.set v 129 true;
  Alcotest.(check bool) "bit 0" true (Bitvec.get v 0);
  Alcotest.(check bool) "bit 62" false (Bitvec.get v 62);
  Alcotest.(check bool) "bit 63 (word boundary)" true (Bitvec.get v 63);
  Alcotest.(check bool) "bit 129" true (Bitvec.get v 129);
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount v);
  Bitvec.set v 63 false;
  Alcotest.(check int) "popcount after clear" 2 (Bitvec.popcount v)

let test_bitvec_bounds () =
  let v = Bitvec.create 8 in
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bitvec.get v 8))

let test_bitvec_strings () =
  let v = Bitvec.of_string "10110" in
  Alcotest.(check string) "roundtrip" "10110" (Bitvec.to_string v);
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount v)

let test_bitvec_xor_diff () =
  let a = Bitvec.of_string "10110" and b = Bitvec.of_string "10011" in
  Alcotest.(check string) "xor" "00101" (Bitvec.to_string (Bitvec.xor a b));
  Alcotest.(check (option int)) "first diff" (Some 2) (Bitvec.first_diff a b);
  Alcotest.(check (option int)) "no diff" None (Bitvec.first_diff a a)

let test_bitvec_fill () =
  let v = Bitvec.create 70 in
  Bitvec.fill v true;
  Alcotest.(check int) "all ones" 70 (Bitvec.popcount v);
  Bitvec.fill v false;
  Alcotest.(check int) "all zeros" 0 (Bitvec.popcount v)

let test_bitvec_iteri_set () =
  let v = Bitvec.of_string "010010001" in
  let acc = ref [] in
  Bitvec.iteri_set (fun i -> acc := i :: !acc) v;
  Alcotest.(check (list int)) "set positions ascending" [ 1; 4; 8 ] (List.rev !acc)

let qcheck_bitvec_roundtrip =
  QCheck.Test.make ~name:"bool array roundtrip" ~count:200
    QCheck.(array_of_size Gen.(int_range 0 200) bool)
    (fun arr -> Bitvec.to_bool_array (Bitvec.of_bool_array arr) = arr)

let qcheck_bitvec_popcount =
  QCheck.Test.make ~name:"popcount equals number of trues" ~count:200
    QCheck.(array_of_size Gen.(int_range 0 200) bool)
    (fun arr ->
      Bitvec.popcount (Bitvec.of_bool_array arr)
      = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 arr)

let qcheck_bitvec_xor_involution =
  QCheck.Test.make ~name:"xor with self is zero" ~count:100
    QCheck.(array_of_size Gen.(int_range 1 200) bool)
    (fun arr ->
      let v = Bitvec.of_bool_array arr in
      Bitvec.popcount (Bitvec.xor v v) = 0)

let () =
  Alcotest.run "logic"
    [
      ( "ternary",
        [
          Alcotest.test_case "kleene tables" `Quick test_ternary_tables;
          Alcotest.test_case "char conversions" `Quick test_ternary_chars;
          Alcotest.test_case "merge" `Quick test_ternary_merge;
          QCheck_alcotest.to_alcotest qcheck_merge_compatible;
          QCheck_alcotest.to_alcotest qcheck_and_comm;
          QCheck_alcotest.to_alcotest qcheck_demorgan;
        ] );
      ( "fivev",
        [
          Alcotest.test_case "projections" `Quick test_fivev_projections;
          Alcotest.test_case "D tables" `Quick test_fivev_d_tables;
          Alcotest.test_case "is_error" `Quick test_fivev_is_error;
          QCheck_alcotest.to_alcotest qcheck_fivev_and;
          QCheck_alcotest.to_alcotest qcheck_fivev_or;
          QCheck_alcotest.to_alcotest qcheck_fivev_xor;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "get/set across words" `Quick test_bitvec_get_set;
          Alcotest.test_case "bounds checking" `Quick test_bitvec_bounds;
          Alcotest.test_case "string conversions" `Quick test_bitvec_strings;
          Alcotest.test_case "xor and first_diff" `Quick test_bitvec_xor_diff;
          Alcotest.test_case "fill" `Quick test_bitvec_fill;
          Alcotest.test_case "iteri_set" `Quick test_bitvec_iteri_set;
          QCheck_alcotest.to_alcotest qcheck_bitvec_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_bitvec_popcount;
          QCheck_alcotest.to_alcotest qcheck_bitvec_xor_involution;
        ] );
    ]
