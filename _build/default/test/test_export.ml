(* Tests for the ATE program format: round-tripping, validation, and the
   end-to-end property that an exported stitched schedule drives the physical
   scan-inserted netlist exactly as the generator intended. *)

module Circuit = Tvs_netlist.Circuit
module Scan_insert = Tvs_netlist.Scan_insert
module Protocol = Tvs_scan.Protocol
module Tester_format = Tvs_scan.Tester_format
module Chain = Tvs_scan.Chain
module Parallel = Tvs_sim.Parallel
module Fault_gen = Tvs_fault.Fault_gen
module Podem = Tvs_atpg.Podem
module Baseline = Tvs_core.Baseline
module Engine = Tvs_core.Engine
module Rng = Tvs_util.Rng

let sample_program () =
  let vectors =
    [ ([| true; false |], [| true; true; false |]); ([| false; false |], [| false; true |]) ]
  in
  Tester_format.of_stitched ~chain_len:3 ~npi:2 ~vectors ()

let test_roundtrip () =
  let p = sample_program () in
  let p' = Tester_format.of_string (Tester_format.to_string p) in
  Alcotest.(check int) "chain" p.Tester_format.chain_len p'.Tester_format.chain_len;
  Alcotest.(check int) "pins" p.Tester_format.npi p'.Tester_format.npi;
  Alcotest.(check bool) "ops preserved" true (p.Tester_format.ops = p'.Tester_format.ops)

let test_counts () =
  let p = sample_program () in
  (* 3 + 2 shifts for the loads, 3 for the default full unload. *)
  Alcotest.(check int) "shift cycles" 8 (Tester_format.num_shift_cycles p);
  Alcotest.(check int) "captures" 2 (Tester_format.num_captures p)

let test_file_io () =
  let p = sample_program () in
  let path = Filename.temp_file "tvs" ".prog" in
  Tester_format.write_file path p;
  let p' = Tester_format.read_file path in
  Sys.remove path;
  Alcotest.(check bool) "file round-trip" true (p.Tester_format.ops = p'.Tester_format.ops)

let expect_parse_error text =
  try
    ignore (Tester_format.of_string text);
    false
  with Tester_format.Parse_error _ -> true

let test_parse_errors () =
  Alcotest.(check bool) "missing header" true (expect_parse_error "chain 3\npins 1\n");
  Alcotest.(check bool) "bad shift bit" true
    (expect_parse_error "tvs-program v1\nchain 3\npins 0\nshift 2\n");
  Alcotest.(check bool) "missing chain" true (expect_parse_error "tvs-program v1\npins 1\n");
  Alcotest.(check bool) "capture width mismatch" true
    (expect_parse_error "tvs-program v1\nchain 3\npins 2\ncapture 101\n");
  Alcotest.(check bool) "comments tolerated" false
    (expect_parse_error "tvs-program v1 # header\nchain 3\npins 0\nshift 1 # bit\ncapture\n")

(* The deliverable property: exporting an engine run and replaying the file
   on the physical netlist applies exactly the vectors the engine generated
   (checked through the capture count and the scan stream length), and the
   replay is deterministic across the text round-trip. *)
let test_exported_program_drives_hardware () =
  let c = Tvs_circuits.S27.circuit () in
  let faults = Fault_gen.collapsed c in
  let ctx = Podem.create c in
  let baseline = Baseline.run ~rng:(Rng.of_string "exp:base") ctx ~faults in
  let r =
    Engine.run ~fallback:baseline.Baseline.vectors ~rng:(Rng.of_string "exp:eng") ctx
      ~faults:(Baseline.testable_faults baseline faults)
  in
  let chain_len = Circuit.num_flops c in
  let program =
    Tester_format.of_stitched ~chain_len ~npi:(Circuit.num_inputs c)
      ~vectors:r.Engine.stimuli ()
  in
  let program' = Tester_format.of_string (Tester_format.to_string program) in
  let inserted = Scan_insert.insert c in
  let init = Array.make chain_len false in
  let obs = Protocol.run inserted ~init program'.Tester_format.ops in
  Alcotest.(check int) "one PO strobe per stitched vector" r.Engine.stitched_vectors
    (List.length obs.Protocol.po_samples);
  Alcotest.(check int) "stream length = shift cycles"
    (Tester_format.num_shift_cycles program')
    (List.length obs.Protocol.scan_stream);
  (* Replaying the original (pre-roundtrip) ops gives identical data. *)
  let obs0 = Protocol.run inserted ~init program.Tester_format.ops in
  Alcotest.(check bool) "round-trip replay identical" true
    (obs0.Protocol.scan_stream = obs.Protocol.scan_stream
    && obs0.Protocol.po_samples = obs.Protocol.po_samples)

let test_stimuli_match_schedule () =
  (* Engine bookkeeping: the recorded stimuli agree with the shift schedule. *)
  let c = Tvs_circuits.S27.circuit () in
  let faults = Fault_gen.collapsed c in
  let ctx = Podem.create c in
  let baseline = Baseline.run ~rng:(Rng.of_string "exp:base2") ctx ~faults in
  let r =
    Engine.run ~fallback:baseline.Baseline.vectors ~rng:(Rng.of_string "exp:eng2") ctx
      ~faults:(Baseline.testable_faults baseline faults)
  in
  Alcotest.(check int) "one stimulus per vector" r.Engine.stitched_vectors
    (List.length r.Engine.stimuli);
  List.iter2
    (fun (_, fresh) s -> Alcotest.(check int) "fresh width = shift" s (Array.length fresh))
    r.Engine.stimuli r.Engine.schedule.Tvs_scan.Cost.shifts;
  Alcotest.(check int) "extras recorded" r.Engine.extra_vectors
    (List.length r.Engine.extra_stimuli)

let () =
  Alcotest.run "export"
    [
      ( "format",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "counters" `Quick test_counts;
          Alcotest.test_case "file I/O" `Quick test_file_io;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "exported program drives hardware" `Quick
            test_exported_program_drives_hardware;
          Alcotest.test_case "stimuli match schedule" `Quick test_stimuli_match_schedule;
        ] );
    ]
