(* Unit tests for Tvs_atpg: cubes, SCOAP, PODEM (unconstrained and
   constrained) and the full test-set generator. *)

module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Ternary = Tvs_logic.Ternary
module Fault = Tvs_fault.Fault
module Fault_gen = Tvs_fault.Fault_gen
module Fault_sim = Tvs_fault.Fault_sim
module Parallel = Tvs_sim.Parallel
module Cube = Tvs_atpg.Cube
module Scoap = Tvs_atpg.Scoap
module Podem = Tvs_atpg.Podem
module Generator = Tvs_atpg.Generator
module Rng = Tvs_util.Rng

let s27 = Tvs_circuits.S27.circuit ()
let fig1 = Tvs_circuits.Fig1.circuit ()

(* --- cubes ----------------------------------------------------------- *)

let cube_of pi scan : Cube.t =
  {
    Cube.pi = Array.init (String.length pi) (fun i -> Ternary.of_char pi.[i]);
    scan = Array.init (String.length scan) (fun i -> Ternary.of_char scan.[i]);
  }

let test_cube_basics () =
  let c = Cube.fully_x s27 in
  Alcotest.(check int) "no specified bits" 0 (Cube.specified_bits c);
  Alcotest.(check int) "total bits" 7 (Cube.total_bits c);
  Alcotest.(check string) "render" "XXXX|XXX" (Cube.to_string c)

let test_cube_merge () =
  let a = cube_of "1X" "X0" and b = cube_of "X0" "X0" in
  (match Cube.merge a b with
  | Some m -> Alcotest.(check string) "merged" "10|X0" (Cube.to_string m)
  | None -> Alcotest.fail "expected a merge");
  let conflict = cube_of "0X" "XX" in
  Alcotest.(check bool) "conflict detected" true (Cube.merge a conflict = None);
  Alcotest.(check bool) "compatible agrees" false (Cube.compatible a conflict)

let test_cube_fill () =
  let c = cube_of "1X0" "X1" in
  let v = Cube.fill_const false c in
  Alcotest.(check (array bool)) "pi filled" [| true; false; false |] v.Cube.pi;
  Alcotest.(check (array bool)) "scan filled" [| false; true |] v.Cube.scan;
  let rng = Rng.of_string "fill" in
  let v2 = Cube.fill_random rng c in
  Alcotest.(check bool) "specified bits preserved" true
    (v2.Cube.pi.(0) && (not v2.Cube.pi.(2)) && v2.Cube.scan.(1))

let qcheck_merge_specified =
  let arb =
    QCheck.make
      QCheck.Gen.(
        pair
          (string_size ~gen:(oneofl [ '0'; '1'; 'X' ]) (return 6))
          (string_size ~gen:(oneofl [ '0'; '1'; 'X' ]) (return 4)))
  in
  QCheck.Test.make ~name:"merge has at least max(specified) bits" ~count:200 (QCheck.pair arb arb)
    (fun ((p1, s1), (p2, s2)) ->
      let a = cube_of p1 s1 and b = cube_of p2 s2 in
      match Cube.merge a b with
      | None -> not (Cube.compatible a b)
      | Some m ->
          Cube.compatible a b
          && Cube.specified_bits m >= max (Cube.specified_bits a) (Cube.specified_bits b))

(* --- SCOAP ----------------------------------------------------------- *)

let test_scoap_chain () =
  (* a -> NOT g1 -> NOT g2: CC0/CC1 grow by one per level. *)
  let b = Circuit.Builder.create "chain" in
  let a = Circuit.Builder.input b "a" in
  let g1 = Circuit.Builder.gate b ~name:"g1" Gate.Not [ a ] in
  let g2 = Circuit.Builder.gate b ~name:"g2" Gate.Not [ g1 ] in
  Circuit.Builder.mark_output b g2;
  let c = Circuit.Builder.finish b in
  let t = Scoap.compute c in
  Alcotest.(check int) "input cc0" 1 (Scoap.cc0 t a);
  Alcotest.(check int) "g1 cc0 = cc1(a)+1" 2 (Scoap.cc0 t g1);
  Alcotest.(check int) "g2 cc0 = cc0(a)+2" 3 (Scoap.cc0 t g2);
  Alcotest.(check int) "output observable free" 0 (Scoap.co_stem t g2);
  Alcotest.(check int) "a co = 2 inversions" 2 (Scoap.co_stem t a)

let test_scoap_and_gate () =
  let b = Circuit.Builder.create "and3" in
  let x = Circuit.Builder.input b "x" in
  let y = Circuit.Builder.input b "y" in
  let z = Circuit.Builder.input b "z" in
  let g = Circuit.Builder.gate b ~name:"g" Gate.And [ x; y; z ] in
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finish b in
  let t = Scoap.compute c in
  Alcotest.(check int) "cc1 = sum + 1" 4 (Scoap.cc1 t g);
  Alcotest.(check int) "cc0 = min + 1" 2 (Scoap.cc0 t g);
  (* Observing x requires y = z = 1: co = 0 + 1 + 1 + 1. *)
  Alcotest.(check int) "co of input" 3 (Scoap.co_stem t x)

let test_scoap_hardness_orders () =
  (* In s27 a redundant-ish deep fault should not be easier than a direct
     input fault; just check hardness is finite for testable sites and
     monotone with depth on a chain. *)
  let t = Scoap.compute s27 in
  Array.iter
    (fun f ->
      Alcotest.(check bool) "finite hardness" true (Scoap.fault_hardness t f < Scoap.unreachable))
    (Fault_gen.collapsed s27)

(* --- PODEM ----------------------------------------------------------- *)

let verify_cube_detects circuit fault cube =
  (* Any fill of a PODEM cube must detect the fault under full observability. *)
  let sim = Fault_sim.create circuit in
  List.for_all
    (fun fill ->
      let v = fill cube in
      Fault_sim.detects sim ~pi:v.Cube.pi ~state:v.Cube.scan fault)
    [ Cube.fill_const false; Cube.fill_const true; Cube.fill_random (Rng.of_string "verify") ]

let test_podem_finds_all_fig1 () =
  let ctx = Podem.create fig1 in
  List.iter
    (fun name ->
      let fault = Tvs_circuits.Fig1.paper_fault fig1 name in
      match Podem.generate ctx fault with
      | Podem.Detected cube ->
          Alcotest.(check bool) (name ^ " cube detects under any fill") true
            (verify_cube_detects fig1 fault cube)
      | Podem.Untestable -> Alcotest.fail (name ^ " wrongly declared untestable")
      | Podem.Aborted -> Alcotest.fail (name ^ " aborted"))
    (List.filter (fun n -> n <> "E-F/1") Tvs_circuits.Fig1.table1_faults)

let test_podem_redundant () =
  let ctx = Podem.create fig1 in
  let ef1 = Tvs_circuits.Fig1.paper_fault fig1 "E-F/1" in
  (match Podem.generate ctx ef1 with
  | Podem.Untestable -> ()
  | Podem.Detected _ -> Alcotest.fail "E-F/1 is redundant, no test exists"
  | Podem.Aborted -> Alcotest.fail "search space is tiny, must not abort")

let test_podem_all_s27 () =
  let ctx = Podem.create s27 in
  let sim = Fault_sim.create s27 in
  let ok = ref 0 and untestable = ref 0 in
  Array.iter
    (fun fault ->
      match Podem.generate ctx fault with
      | Podem.Detected cube ->
          let v = Cube.fill_const false cube in
          Alcotest.(check bool)
            (Fault.name s27 fault ^ " vector verified by simulation")
            true
            (Fault_sim.detects sim ~pi:v.Cube.pi ~state:v.Cube.scan fault);
          incr ok
      | Podem.Untestable -> incr untestable
      | Podem.Aborted -> Alcotest.fail "s27 must not abort")
    (Fault_gen.collapsed s27);
  Alcotest.(check bool) "most faults testable" true (!ok > 25)

let test_podem_constraints_respected () =
  let ctx = Podem.create s27 in
  let nflops = Circuit.num_flops s27 in
  let constraints = Array.make nflops Ternary.X in
  constraints.(0) <- Ternary.Zero;
  constraints.(2) <- Ternary.One;
  Array.iter
    (fun fault ->
      match Podem.generate ~constraints ctx fault with
      | Podem.Detected cube ->
          Alcotest.(check char) "cell 0 pinned" '0' (Ternary.to_char cube.Cube.scan.(0));
          Alcotest.(check char) "cell 2 pinned" '1' (Ternary.to_char cube.Cube.scan.(2))
      | Podem.Untestable | Podem.Aborted -> ())
    (Fault_gen.collapsed s27)

let test_podem_constrained_detection () =
  (* Constrained cubes must still detect their fault when the constraint is
     part of the applied state. *)
  let ctx = Podem.create s27 in
  let sim = Fault_sim.create s27 in
  let constraints = [| Ternary.One; Ternary.X; Ternary.Zero |] in
  Array.iter
    (fun fault ->
      match Podem.generate ~constraints ctx fault with
      | Podem.Detected cube ->
          let v = Cube.fill_random (Rng.of_string "cd") cube in
          Alcotest.(check bool)
            (Fault.name s27 fault ^ " constrained vector detects")
            true
            (Fault_sim.detects sim ~pi:v.Cube.pi ~state:v.Cube.scan fault)
      | Podem.Untestable | Podem.Aborted -> ())
    (Fault_gen.collapsed s27)

let test_podem_impossible_constraints () =
  (* Constrain every scan cell and pick a fault whose activation needs one of
     them inverted: PODEM must return Untestable, not an incorrect cube.
     fig1's D/0 needs A = B = 1; pin A to 0. *)
  let ctx = Podem.create fig1 in
  let d0 = Tvs_circuits.Fig1.paper_fault fig1 "D/0" in
  let constraints = [| Ternary.Zero; Ternary.X; Ternary.X |] in
  (match Podem.generate ~constraints ctx d0 with
  | Podem.Untestable -> ()
  | Podem.Detected _ -> Alcotest.fail "D/0 cannot be activated with A = 0"
  | Podem.Aborted -> Alcotest.fail "tiny space, must not abort")

let test_podem_deterministic () =
  let ctx = Podem.create s27 in
  let fault = (Fault_gen.collapsed s27).(5) in
  let r1 = Podem.generate ctx fault and r2 = Podem.generate ctx fault in
  (match (r1, r2) with
  | Podem.Detected a, Podem.Detected b ->
      Alcotest.(check string) "same cube" (Cube.to_string a) (Cube.to_string b)
  | _ -> Alcotest.fail "expected detections")

(* --- generator -------------------------------------------------------- *)

let test_generator_s27_coverage () =
  let ctx = Podem.create s27 in
  let faults = Fault_gen.collapsed s27 in
  let gen = Generator.generate ~rng:(Rng.of_string "gen") ctx faults in
  Alcotest.(check (float 0.0001)) "full coverage" 1.0 (Generator.coverage gen);
  Alcotest.(check bool) "fewer vectors than faults" true
    (Generator.num_vectors gen < Array.length faults);
  (* Re-simulate the final set: every non-redundant fault detected. *)
  let sim = Fault_sim.create s27 in
  let detected = Array.make (Array.length faults) false in
  Array.iter
    (fun (v : Cube.vector) ->
      Array.iteri
        (fun i hit -> if hit then detected.(i) <- true)
        (Fault_sim.detected_faults sim ~pi:v.Cube.pi ~state:v.Cube.scan faults))
    gen.Generator.vectors;
  Array.iteri
    (fun i hit ->
      let redundant = List.exists (Fault.equal faults.(i)) gen.Generator.redundant in
      let aborted = List.exists (Fault.equal faults.(i)) gen.Generator.aborted in
      if not (redundant || aborted) then
        Alcotest.(check bool) (Fault.name s27 faults.(i) ^ " re-simulates as caught") true hit)
    detected

let test_generator_compaction_shrinks () =
  let ctx = Podem.create s27 in
  let faults = Fault_gen.collapsed s27 in
  let run compaction =
    let options = { Generator.default_options with compaction; random_patterns = 0 } in
    Generator.generate ~options ~rng:(Rng.of_string "cmp") ctx faults
  in
  let with_c = run true and without_c = run false in
  Alcotest.(check bool) "compaction does not grow the set" true
    (Generator.num_vectors with_c <= Generator.num_vectors without_c);
  Alcotest.(check (float 0.0001)) "coverage kept" 1.0 (Generator.coverage with_c)

let test_generator_dropping_effect () =
  let ctx = Podem.create s27 in
  let faults = Fault_gen.collapsed s27 in
  let run fault_dropping =
    let options =
      { Generator.default_options with fault_dropping; random_patterns = 0; compaction = false }
    in
    Generator.generate ~options ~rng:(Rng.of_string "drop") ctx faults
  in
  Alcotest.(check bool) "dropping saves vectors" true
    (Generator.num_vectors (run true) < Generator.num_vectors (run false))

let test_generator_lists_disjoint () =
  let ctx = Podem.create s27 in
  let faults = Fault_gen.collapsed s27 in
  let gen = Generator.generate ~rng:(Rng.of_string "dis") ctx faults in
  List.iter
    (fun f ->
      Alcotest.(check bool) "aborted not also redundant" false
        (List.exists (Fault.equal f) gen.Generator.redundant))
    gen.Generator.aborted

let () =
  Alcotest.run "atpg"
    [
      ( "cube",
        [
          Alcotest.test_case "basics" `Quick test_cube_basics;
          Alcotest.test_case "merge" `Quick test_cube_merge;
          Alcotest.test_case "fill" `Quick test_cube_fill;
          QCheck_alcotest.to_alcotest qcheck_merge_specified;
        ] );
      ( "scoap",
        [
          Alcotest.test_case "inverter chain" `Quick test_scoap_chain;
          Alcotest.test_case "3-input AND" `Quick test_scoap_and_gate;
          Alcotest.test_case "hardness finite on s27" `Quick test_scoap_hardness_orders;
        ] );
      ( "podem",
        [
          Alcotest.test_case "finds all fig1 tests" `Quick test_podem_finds_all_fig1;
          Alcotest.test_case "proves E-F/1 redundant" `Quick test_podem_redundant;
          Alcotest.test_case "verified vectors on s27" `Quick test_podem_all_s27;
          Alcotest.test_case "constraints respected" `Quick test_podem_constraints_respected;
          Alcotest.test_case "constrained detection" `Quick test_podem_constrained_detection;
          Alcotest.test_case "impossible constraints" `Quick test_podem_impossible_constraints;
          Alcotest.test_case "deterministic" `Quick test_podem_deterministic;
        ] );
      ( "generator",
        [
          Alcotest.test_case "s27 coverage" `Quick test_generator_s27_coverage;
          Alcotest.test_case "compaction" `Quick test_generator_compaction_shrinks;
          Alcotest.test_case "fault dropping" `Quick test_generator_dropping_effect;
          Alcotest.test_case "result lists disjoint" `Quick test_generator_lists_disjoint;
        ] );
    ]
