test/test_core.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Tvs_atpg Tvs_circuits Tvs_core Tvs_fault Tvs_logic Tvs_netlist Tvs_scan Tvs_util
