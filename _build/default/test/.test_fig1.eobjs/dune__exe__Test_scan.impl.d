test/test_scan.ml: Alcotest Array Gen List Printf QCheck QCheck_alcotest String Tvs_logic Tvs_scan
