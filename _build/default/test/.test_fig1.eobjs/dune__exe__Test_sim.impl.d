test/test_sim.ml: Alcotest Array Int64 Printf QCheck QCheck_alcotest Tvs_circuits Tvs_logic Tvs_netlist Tvs_sim Tvs_util
