test/test_protocol.ml: Alcotest Array Gen List QCheck QCheck_alcotest Tvs_circuits Tvs_netlist Tvs_scan Tvs_sim Tvs_util
