test/test_integration.ml: Alcotest Array List Printf Tvs_atpg Tvs_circuits Tvs_core Tvs_fault Tvs_netlist Tvs_scan Tvs_util
