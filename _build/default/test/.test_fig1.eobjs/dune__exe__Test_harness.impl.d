test/test_harness.ml: Alcotest Array List String Tvs_core Tvs_harness Tvs_netlist Tvs_util
