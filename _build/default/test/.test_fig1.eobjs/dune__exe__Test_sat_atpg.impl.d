test/test_sat_atpg.ml: Alcotest Array List Tvs_atpg Tvs_circuits Tvs_fault Tvs_logic Tvs_netlist Tvs_sim Tvs_util
