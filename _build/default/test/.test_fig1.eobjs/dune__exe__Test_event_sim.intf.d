test/test_event_sim.mli:
