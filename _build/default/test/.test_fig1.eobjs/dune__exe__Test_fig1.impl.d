test/test_fig1.ml: Alcotest Array List String Tvs_circuits Tvs_core Tvs_fault Tvs_netlist Tvs_scan Tvs_sim
