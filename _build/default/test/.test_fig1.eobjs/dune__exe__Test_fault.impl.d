test/test_fault.ml: Alcotest Array Hashtbl Int64 List Printf QCheck QCheck_alcotest Tvs_circuits Tvs_fault Tvs_netlist Tvs_sim Tvs_util
