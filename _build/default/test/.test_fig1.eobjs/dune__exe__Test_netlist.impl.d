test/test_netlist.ml: Alcotest Array Filename List Option Printf Sys Tvs_circuits Tvs_netlist
