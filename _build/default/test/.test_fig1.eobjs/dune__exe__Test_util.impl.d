test/test_util.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest String Tvs_util
