test/test_event_sim.ml: Alcotest Array Int64 Printf QCheck QCheck_alcotest Tvs_circuits Tvs_fault Tvs_netlist Tvs_util
