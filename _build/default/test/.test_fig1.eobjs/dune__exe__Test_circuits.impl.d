test/test_circuits.ml: Alcotest Array List Printf Tvs_circuits Tvs_netlist Tvs_scan Tvs_sim
