test/test_atpg.ml: Alcotest Array List QCheck QCheck_alcotest String Tvs_atpg Tvs_circuits Tvs_fault Tvs_logic Tvs_netlist Tvs_sim Tvs_util
