test/test_properties.ml: Alcotest Array Gen Int64 List Printf QCheck QCheck_alcotest Tvs_atpg Tvs_circuits Tvs_core Tvs_fault Tvs_netlist Tvs_scan Tvs_sim Tvs_util
