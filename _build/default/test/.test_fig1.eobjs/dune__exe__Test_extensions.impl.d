test/test_extensions.ml: Alcotest Array Gen Hashtbl List Printf QCheck QCheck_alcotest String Tvs_atpg Tvs_circuits Tvs_core Tvs_fault Tvs_harness Tvs_logic Tvs_netlist Tvs_scan Tvs_sim Tvs_util
