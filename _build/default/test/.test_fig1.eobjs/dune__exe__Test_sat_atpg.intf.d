test/test_sat_atpg.mli:
