test/test_logic.ml: Alcotest Array Gen List Option QCheck QCheck_alcotest String Tvs_logic
