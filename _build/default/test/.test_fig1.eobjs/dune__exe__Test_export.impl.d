test/test_export.ml: Alcotest Array Filename List Sys Tvs_atpg Tvs_circuits Tvs_core Tvs_fault Tvs_netlist Tvs_scan Tvs_sim Tvs_util
