(* Unit tests for Tvs_core: policies, info ratios, the Cycle fault-set
   machine's invariants, and Engine behaviour on small circuits. *)

module Circuit = Tvs_netlist.Circuit
module Ternary = Tvs_logic.Ternary
module Fault_gen = Tvs_fault.Fault_gen
module Podem = Tvs_atpg.Podem
module Cost = Tvs_scan.Cost
module Policy = Tvs_core.Policy
module Info_ratio = Tvs_core.Info_ratio
module Cycle = Tvs_core.Cycle
module Engine = Tvs_core.Engine
module Baseline = Tvs_core.Baseline
module Rng = Tvs_util.Rng

(* --- policy ----------------------------------------------------------- *)

let test_policy_grow () =
  let fixed = Policy.Fixed 5 in
  Alcotest.(check (option int)) "fixed cannot grow" None (Policy.grow fixed ~current:5);
  let var = Policy.Variable { initial = 2; growth = Policy.Double; max = 16; decay = false } in
  Alcotest.(check (option int)) "doubles" (Some 4) (Policy.grow var ~current:2);
  Alcotest.(check (option int)) "clamps at max" (Some 16) (Policy.grow var ~current:10);
  Alcotest.(check (option int)) "stops at max" None (Policy.grow var ~current:16);
  let add = Policy.Variable { initial = 2; growth = Policy.Add 3; max = 10; decay = false } in
  Alcotest.(check (option int)) "additive" (Some 5) (Policy.grow add ~current:2)

let test_policy_shrink () =
  let var = Policy.Variable { initial = 2; growth = Policy.Double; max = 16; decay = true } in
  Alcotest.(check int) "halves back" 4 (Policy.shrink var ~current:8);
  Alcotest.(check int) "floors at initial" 2 (Policy.shrink var ~current:3);
  let frozen = Policy.Variable { initial = 2; growth = Policy.Double; max = 16; decay = false } in
  Alcotest.(check int) "no decay" 8 (Policy.shrink frozen ~current:8);
  Alcotest.(check int) "fixed pinned" 5 (Policy.shrink (Policy.Fixed 5) ~current:9)

let test_policy_describe () =
  Alcotest.(check string) "fixed" "fixed:7" (Policy.describe_shift (Policy.Fixed 7));
  Alcotest.(check string) "selection" "most-faults:5" (Policy.describe_selection (Policy.Most_faults 5))

(* --- info ratio -------------------------------------------------------- *)

let test_info_ratio_attainable () =
  (* s444-like: 3 PIs, 21 cells. 3/8 of 24 = 9 -> s = 6. *)
  Alcotest.(check (option int)) "s444 3/8" (Some 6)
    (Info_ratio.shift_for ~num:3 ~den:8 ~chain_len:21 ~npi:3);
  Alcotest.(check (option int)) "s444 7/8" (Some 18)
    (Info_ratio.shift_for ~num:7 ~den:8 ~chain_len:21 ~npi:3)

let test_info_ratio_unattainable () =
  (* s641-like: 35 PIs dominate a 19-cell chain; 3/8 is out of reach, the
     paper prints '/'. *)
  Alcotest.(check (option int)) "s641 3/8 unattainable" None
    (Info_ratio.shift_for ~num:3 ~den:8 ~chain_len:19 ~npi:35);
  (* 5/8 clamps to s = 1 within tolerance, the paper's 1/19 entry. *)
  Alcotest.(check (option int)) "s641 5/8 clamps to 1" (Some 1)
    (Info_ratio.shift_for ~num:5 ~den:8 ~chain_len:19 ~npi:35)

let test_info_of () =
  Alcotest.(check (float 0.0001)) "info value" 0.375 (Info_ratio.info_of ~s:6 ~chain_len:21 ~npi:3)

(* --- cycle machine ------------------------------------------------------ *)

let s27 = Tvs_circuits.S27.circuit ()

let test_cycle_partition_invariant () =
  (* caught + hidden + uncaught = total after any number of steps, and the
     caught count never decreases. *)
  let faults = Fault_gen.collapsed s27 in
  let machine = Cycle.create s27 ~faults in
  let rng = Rng.of_string "cycle-inv" in
  let total = Array.length faults in
  let prev_caught = ref 0 in
  for step = 1 to 30 do
    let s = 1 + Rng.int rng (Circuit.num_flops s27) in
    let pi = Array.init (Circuit.num_inputs s27) (fun _ -> Rng.bool rng) in
    let fresh = Array.init s (fun _ -> Rng.bool rng) in
    ignore (Cycle.step machine ~pi ~fresh);
    let c = Cycle.num_caught machine
    and h = Cycle.num_hidden machine
    and u = Cycle.num_uncaught machine in
    Alcotest.(check int) (Printf.sprintf "partition at step %d" step) total (c + h + u);
    Alcotest.(check bool) "caught monotone" true (c >= !prev_caught);
    prev_caught := c
  done

let test_cycle_flush_empties_hidden () =
  let faults = Fault_gen.collapsed s27 in
  let machine = Cycle.create s27 ~faults in
  let rng = Rng.of_string "flush" in
  for _ = 1 to 5 do
    let pi = Array.init (Circuit.num_inputs s27) (fun _ -> Rng.bool rng) in
    let fresh = Array.init 1 (fun _ -> Rng.bool rng) in
    ignore (Cycle.step machine ~pi ~fresh)
  done;
  ignore (Cycle.flush machine ~full:true);
  Alcotest.(check int) "no hidden after full drain" 0 (Cycle.num_hidden machine)

let test_cycle_preview_pure () =
  let faults = Fault_gen.collapsed s27 in
  let machine = Cycle.create s27 ~faults in
  let pi = Array.make (Circuit.num_inputs s27) true in
  let fresh = Array.make 2 true in
  let before = (Cycle.num_caught machine, Cycle.num_hidden machine, Cycle.num_uncaught machine) in
  let r1 = Cycle.preview machine ~pi ~fresh in
  let after = (Cycle.num_caught machine, Cycle.num_hidden machine, Cycle.num_uncaught machine) in
  Alcotest.(check (triple int int int)) "no mutation" before after;
  let r2 = Cycle.step machine ~pi ~fresh in
  Alcotest.(check int) "preview equals committed step (caught)"
    (List.length r1.Cycle.caught_now) (List.length r2.Cycle.caught_now);
  Alcotest.(check int) "preview equals committed step (hidden)"
    (List.length r1.Cycle.newly_hidden) (List.length r2.Cycle.newly_hidden)

let test_cycle_constraints () =
  let faults = Fault_gen.collapsed s27 in
  let machine = Cycle.create s27 ~faults in
  let pi = Array.make (Circuit.num_inputs s27) false in
  ignore (Cycle.step machine ~pi ~fresh:(Array.make 3 true));
  let contents = Array.copy (Cycle.good_contents machine) in
  let c = Cycle.constraints_for machine ~s:2 in
  Alcotest.(check char) "cell 0 free" 'X' (Ternary.to_char c.(0));
  Alcotest.(check char) "cell 1 free" 'X' (Ternary.to_char c.(1));
  Alcotest.(check char) "cell 2 pinned to retained response"
    (if contents.(0) then '1' else '0')
    (Ternary.to_char c.(2))

let test_cycle_shift_too_big () =
  let faults = Fault_gen.collapsed s27 in
  let machine = Cycle.create s27 ~faults in
  Alcotest.(check bool) "oversized shift rejected" true
    (try
       ignore (Cycle.step machine ~pi:(Array.make 4 false) ~fresh:(Array.make 9 false));
       false
     with Invalid_argument _ -> true)

(* --- engine -------------------------------------------------------------- *)

let prep () =
  let faults = Fault_gen.collapsed s27 in
  let ctx = Podem.create s27 in
  let baseline = Baseline.run ~rng:(Rng.of_string "core:baseline") ctx ~faults in
  (ctx, Baseline.testable_faults baseline faults, baseline)

let test_engine_first_shift_full () =
  let ctx, faults, baseline = prep () in
  let r =
    Engine.run ~fallback:baseline.Baseline.vectors ~rng:(Rng.of_string "eng") ctx ~faults
  in
  (match r.Engine.schedule.Cost.shifts with
  | first :: _ -> Alcotest.(check int) "first load is full" (Circuit.num_flops s27) first
  | [] -> Alcotest.fail "no stitched vectors");
  Alcotest.(check int) "log matches schedule" r.Engine.stitched_vectors
    (List.length r.Engine.log)

let test_engine_counts_consistent () =
  let ctx, faults, baseline = prep () in
  let r = Engine.run ~fallback:baseline.Baseline.vectors ~rng:(Rng.of_string "eng2") ctx ~faults in
  Alcotest.(check int) "all faults accounted"
    (Array.length faults)
    (r.Engine.caught_stitched + r.Engine.caught_extra + List.length r.Engine.redundant
   + List.length r.Engine.aborted);
  Alcotest.(check bool) "coverage in [0,1]" true
    (Engine.coverage r >= 0.0 && Engine.coverage r <= 1.0001)

let test_engine_respects_max_cycles () =
  let ctx, faults, baseline = prep () in
  let chain_len = Circuit.num_flops s27 in
  let config = { (Engine.default_config ~chain_len) with max_cycles = 2 } in
  let r =
    Engine.run ~config ~fallback:baseline.Baseline.vectors ~rng:(Rng.of_string "eng3") ctx ~faults
  in
  Alcotest.(check bool) "at most 2 stitched vectors" true (r.Engine.stitched_vectors <= 2)

let test_engine_hxor_taps_more_observable () =
  (* More taps never lose coverage. *)
  let ctx, faults, baseline = prep () in
  let chain_len = Circuit.num_flops s27 in
  List.iter
    (fun taps ->
      let config =
        { (Engine.default_config ~chain_len) with scheme = Tvs_scan.Xor_scheme.Hxor taps }
      in
      let r =
        Engine.run ~config ~fallback:baseline.Baseline.vectors ~rng:(Rng.of_string "hx") ctx ~faults
      in
      Alcotest.(check (float 0.0001)) (Printf.sprintf "coverage with %d taps" taps) 1.0
        (Engine.coverage r))
    [ 1; 2; 3 ]

let qcheck_info_ratio_monotone =
  QCheck.Test.make ~name:"info value increases with shift size" ~count:200
    QCheck.(triple (int_range 2 64) (int_range 0 64) (int_range 1 62))
    (fun (chain_len, npi, s) ->
      let s = min s (chain_len - 1) in
      Info_ratio.info_of ~s ~chain_len ~npi < Info_ratio.info_of ~s:(s + 1) ~chain_len ~npi)

let qcheck_info_ratio_attained_accuracy =
  QCheck.Test.make ~name:"attained info within tolerance of target" ~count:200
    QCheck.(triple (int_range 2 128) (int_range 0 64) (int_range 1 7))
    (fun (chain_len, npi, num) ->
      match Info_ratio.shift_for ~num ~den:8 ~chain_len ~npi with
      | None -> true
      | Some s ->
          s >= 1 && s <= chain_len
          && Float.abs (Info_ratio.info_of ~s ~chain_len ~npi -. (float_of_int num /. 8.0))
             <= Info_ratio.tolerance +. 1e-9)

let qcheck_cost_oracle =
  (* Neither time nor memory is monotone in the vector count (a trailing
     small-shift vector shrinks the final unload and the observed response -
     the essence of the compression), so the meaningful check is an
     independent recomputation: time = all loads + final unload; memory =
     scan-in bits + observed response bits + per-vector I/O. *)
  QCheck.Test.make ~name:"cost model matches a direct recomputation" ~count:300
    QCheck.(triple (int_range 1 40) (pair (int_range 0 3) (int_range 0 3))
              (list_of_size Gen.(int_range 1 20) (int_range 1 40)))
    (fun (chain_len, (npi, npo), shifts) ->
      let shifts = List.map (fun s -> min s chain_len) shifts in
      let sched = { Cost.chain_len; npi; npo; shifts; extra = 0; full_drain = false } in
      let total = List.fold_left ( + ) 0 shifts in
      let last = List.nth shifts (List.length shifts - 1) in
      let n = List.length shifts in
      let expected_time = total + last in
      (* Response i is observed during load i+1; the last during the final
         partial unload of [last] cycles. *)
      let observed = total - List.hd shifts + last in
      let expected_memory = total + observed + (n * (npi + npo)) in
      Cost.time sched = expected_time && Cost.memory sched = expected_memory)

let test_engine_log_consistent () =
  let ctx, faults, baseline = prep () in
  let r = Engine.run ~fallback:baseline.Baseline.vectors ~rng:(Rng.of_string "log") ctx ~faults in
  List.iter2
    (fun (entry : Engine.cycle_log) s ->
      Alcotest.(check int) "log shift matches schedule" s entry.Engine.shift)
    r.Engine.log r.Engine.schedule.Cost.shifts;
  (* Caught counts across the log plus extras equal the totals. *)
  let logged_caught = List.fold_left (fun acc (e : Engine.cycle_log) -> acc + e.Engine.caught) 0 r.Engine.log in
  Alcotest.(check bool) "log catches within stitched total" true
    (logged_caught <= r.Engine.caught_stitched)

let () =
  Alcotest.run "core"
    [
      ( "policy",
        [
          Alcotest.test_case "grow" `Quick test_policy_grow;
          Alcotest.test_case "shrink" `Quick test_policy_shrink;
          Alcotest.test_case "describe" `Quick test_policy_describe;
        ] );
      ( "info-ratio",
        [
          Alcotest.test_case "attainable shifts" `Quick test_info_ratio_attainable;
          Alcotest.test_case "unattainable marked" `Quick test_info_ratio_unattainable;
          Alcotest.test_case "info value" `Quick test_info_of;
        ] );
      ( "cycle",
        [
          Alcotest.test_case "partition invariant" `Quick test_cycle_partition_invariant;
          Alcotest.test_case "flush empties hidden" `Quick test_cycle_flush_empties_hidden;
          Alcotest.test_case "preview is pure" `Quick test_cycle_preview_pure;
          Alcotest.test_case "constraint cube" `Quick test_cycle_constraints;
          Alcotest.test_case "oversized shift rejected" `Quick test_cycle_shift_too_big;
        ] );
      ( "engine",
        [
          Alcotest.test_case "first shift is a full load" `Quick test_engine_first_shift_full;
          Alcotest.test_case "fault accounting" `Quick test_engine_counts_consistent;
          Alcotest.test_case "max cycles respected" `Quick test_engine_respects_max_cycles;
          Alcotest.test_case "hxor coverage" `Quick test_engine_hxor_taps_more_observable;
          Alcotest.test_case "log consistency" `Quick test_engine_log_consistent;
          QCheck_alcotest.to_alcotest qcheck_info_ratio_monotone;
          QCheck_alcotest.to_alcotest qcheck_info_ratio_attained_accuracy;
          QCheck_alcotest.to_alcotest qcheck_cost_oracle;
        ] );
    ]
