(* Unit tests for Tvs_sim: lane packing, combinational simulation, and the
   word-parallel engine with fault injection. *)

module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Ternary = Tvs_logic.Ternary
module Lanes = Tvs_sim.Lanes
module Comb = Tvs_sim.Comb
module Parallel = Tvs_sim.Parallel
module Rng = Tvs_util.Rng

(* --- lanes ---------------------------------------------------------- *)

let test_lanes_masks () =
  Alcotest.(check int) "width" 63 Lanes.width;
  Alcotest.(check int) "mask 0" 0 (Lanes.mask 0);
  Alcotest.(check int) "mask 3" 0b111 (Lanes.mask 3);
  Alcotest.(check int) "full mask" Lanes.all_mask (Lanes.mask Lanes.width);
  Alcotest.(check int) "lane bit" 0b100 (Lanes.lane_bit 2)

let test_lanes_get_set () =
  let w = Lanes.set 0 5 true in
  Alcotest.(check bool) "set then get" true (Lanes.get w 5);
  Alcotest.(check bool) "others clear" false (Lanes.get w 4);
  Alcotest.(check int) "clear again" 0 (Lanes.set w 5 false)

let test_lanes_pack () =
  let arr = [| true; false; true; true |] in
  let w = Lanes.of_bools arr in
  Alcotest.(check (array bool)) "roundtrip" arr (Lanes.to_bools ~n:4 w);
  Alcotest.(check int) "broadcast true" Lanes.all_mask (Lanes.broadcast true);
  Alcotest.(check int) "broadcast false" 0 (Lanes.broadcast false)

(* --- combinational simulation --------------------------------------- *)

(* A 2:1 mux: out = (a AND NOT s) OR (b AND s). *)
let mux_circuit () =
  let b = Circuit.Builder.create "mux" in
  let a = Circuit.Builder.input b "a" in
  let bb = Circuit.Builder.input b "b" in
  let s = Circuit.Builder.input b "s" in
  let ns = Circuit.Builder.gate b ~name:"ns" Gate.Not [ s ] in
  let t0 = Circuit.Builder.gate b ~name:"t0" Gate.And [ a; ns ] in
  let t1 = Circuit.Builder.gate b ~name:"t1" Gate.And [ bb; s ] in
  let out = Circuit.Builder.gate b ~name:"out" Gate.Or [ t0; t1 ] in
  Circuit.Builder.mark_output b out;
  Circuit.Builder.finish b

let test_comb_mux () =
  let c = mux_circuit () in
  let run a b s =
    let frame = Comb.eval_bool c ~pi:[| a; b; s |] ~state:[||] in
    frame.Comb.po.(0)
  in
  Alcotest.(check bool) "select a" true (run true false false);
  Alcotest.(check bool) "select b" true (run false true true);
  Alcotest.(check bool) "select a=0" false (run false true false)

let test_comb_ternary_x () =
  let c = mux_circuit () in
  (* With s = X but a = b = 1 the output is 1 either way... Kleene logic is
     not that clever (it sees OR of two Xs), so the result is X; with s = 0
     the b input is don't-care. *)
  let run pi =
    let frame = Comb.eval_ternary c ~pi ~state:[||] in
    frame.Comb.po.(0)
  in
  Alcotest.(check char) "s=0 ignores b" '1'
    (Ternary.to_char (run [| Ternary.One; Ternary.X; Ternary.Zero |]));
  Alcotest.(check char) "a=X propagates" 'X'
    (Ternary.to_char (run [| Ternary.X; Ternary.Zero; Ternary.Zero |]))

let test_comb_const () =
  let b = Circuit.Builder.create "const" in
  let a = Circuit.Builder.input b "a" in
  let k = Circuit.Builder.const b true in
  let g = Circuit.Builder.gate b ~name:"g" Gate.And [ a; k ] in
  Circuit.Builder.mark_output b g;
  let c = Circuit.Builder.finish b in
  let frame = Comb.eval_bool c ~pi:[| true |] ~state:[||] in
  Alcotest.(check bool) "AND with const 1" true frame.Comb.po.(0)

let test_comb_scan_capture () =
  let c = Tvs_circuits.Fig1.circuit () in
  (* First paper vector: state 110 -> capture 111. *)
  let frame = Comb.eval_bool c ~pi:[||] ~state:[| true; true; false |] in
  Alcotest.(check (array bool)) "capture" [| true; true; true |] frame.Comb.capture

(* --- parallel engine ------------------------------------------------ *)

let test_parallel_matches_comb () =
  (* Each lane of one parallel run must equal an independent scalar run. *)
  let c = Tvs_circuits.S27.circuit () in
  let sim = Parallel.create c in
  let rng = Rng.of_string "par-vs-comb" in
  let n = 63 in
  let stimuli =
    Array.init n (fun _ ->
        ( Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng),
          Array.init (Circuit.num_flops c) (fun _ -> Rng.bool rng) ))
  in
  let pack select len =
    Array.init len (fun j ->
        let w = ref 0 in
        for lane = 0 to n - 1 do
          if (select stimuli.(lane)).(j) then w := !w lor (1 lsl lane)
        done;
        !w)
  in
  let pi_words = pack fst (Circuit.num_inputs c) in
  let state_words = pack snd (Circuit.num_flops c) in
  let r = Parallel.run sim ~pi:pi_words ~state:state_words ~injections:[] in
  Array.iteri
    (fun lane (pi, state) ->
      let frame = Comb.eval_bool c ~pi ~state in
      Array.iteri
        (fun j expected ->
          Alcotest.(check bool)
            (Printf.sprintf "lane %d po %d" lane j)
            expected
            (Tvs_sim.Lanes.get r.Parallel.po.(j) lane))
        frame.Comb.po;
      Array.iteri
        (fun j expected ->
          Alcotest.(check bool)
            (Printf.sprintf "lane %d capture %d" lane j)
            expected
            (Tvs_sim.Lanes.get r.Parallel.capture.(j) lane))
        frame.Comb.capture)
    stimuli

let test_parallel_stem_injection () =
  (* fig1, vector 110, fault D/0: capture must read 010 (Table 1). *)
  let c = Tvs_circuits.Fig1.circuit () in
  let sim = Parallel.create c in
  let d = Circuit.find_net c "D" in
  let inj = { Parallel.lane = 1; stuck = false; stem = d; branch = None } in
  let state = Array.map (fun w -> if w then Lanes.mask 2 else 0) [| true; true; false |] in
  let r = Parallel.run sim ~pi:[||] ~state ~injections:[ inj ] in
  let lane_bits lane = Array.map (fun w -> Lanes.get w lane) r.Parallel.capture in
  Alcotest.(check (array bool)) "good lane" [| true; true; true |] (lane_bits 0);
  Alcotest.(check (array bool)) "faulty lane" [| false; true; false |] (lane_bits 1)

let test_parallel_branch_injection () =
  (* fig1, vector 110, fault D-c/0 (branch into cell c): capture 110. The
     stem D still feeds F normally, so only the scan capture differs. *)
  let c = Tvs_circuits.Fig1.circuit () in
  let sim = Parallel.create c in
  let d = Circuit.find_net c "D" in
  let cell_c = Circuit.find_net c "C" in
  let inj = { Parallel.lane = 1; stuck = false; stem = d; branch = Some (cell_c, 0) } in
  let state = Array.map (fun w -> if w then Lanes.mask 2 else 0) [| true; true; false |] in
  let r = Parallel.run sim ~pi:[||] ~state ~injections:[ inj ] in
  let lane_bits lane = Array.map (fun w -> Lanes.get w lane) r.Parallel.capture in
  Alcotest.(check (array bool)) "faulty lane keeps F" [| true; true; false |] (lane_bits 1)

let test_parallel_per_lane_stimulus () =
  (* Different lanes may apply different states: lane 0 gets 110, lane 1 gets
     001; captures must be 111 and 010 respectively with no faults. *)
  let c = Tvs_circuits.Fig1.circuit () in
  let sim = Parallel.create c in
  let state =
    [| Lanes.of_bools [| true; false |]; Lanes.of_bools [| true; false |]; Lanes.of_bools [| false; true |] |]
  in
  let r = Parallel.run sim ~pi:[||] ~state ~injections:[] in
  let lane_bits lane = Array.map (fun w -> Lanes.get w lane) r.Parallel.capture in
  Alcotest.(check (array bool)) "lane 0: 110 -> 111" [| true; true; true |] (lane_bits 0);
  Alcotest.(check (array bool)) "lane 1: 001 -> 010" [| false; true; false |] (lane_bits 1)

let test_parallel_dimension_checks () =
  let c = Tvs_circuits.S27.circuit () in
  let sim = Parallel.create c in
  Alcotest.(check bool) "pi mismatch rejected" true
    (try
       ignore (Parallel.run sim ~pi:[| 0 |] ~state:(Array.make 3 0) ~injections:[]);
       false
     with Invalid_argument _ -> true)

let test_run_single () =
  let c = Tvs_circuits.Fig1.circuit () in
  let sim = Parallel.create c in
  let _, capture = Parallel.run_single sim ~pi:[||] ~state:[| false; false; true |] in
  (* 001 -> 010 per the paper. *)
  Alcotest.(check (array bool)) "correct machine" [| false; true; false |] capture

let qcheck_parallel_good_lane =
  (* Property: injections never disturb lane 0 (the fault-free machine). *)
  let c = Tvs_circuits.S27.circuit () in
  let sim = Parallel.create c in
  QCheck.Test.make ~name:"injections leave lane 0 untouched" ~count:100
    QCheck.(triple small_int small_int bool)
    (fun (seed, net_pick, stuck) ->
      let rng = Rng.create (Int64.of_int seed) in
      let pi = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng) in
      let state = Array.init (Circuit.num_flops c) (fun _ -> Rng.bool rng) in
      let stem = net_pick mod Circuit.num_nets c in
      let widen arr = Array.map (fun b -> if b then Lanes.all_mask else 0) arr in
      let clean = Parallel.run sim ~pi:(widen pi) ~state:(widen state) ~injections:[] in
      let injected =
        Parallel.run sim ~pi:(widen pi) ~state:(widen state)
          ~injections:[ { Parallel.lane = 1; stuck; stem; branch = None } ]
      in
      let lane0 (r : Parallel.result) =
        ( Array.map (fun w -> Lanes.get w 0) r.Parallel.po,
          Array.map (fun w -> Lanes.get w 0) r.Parallel.capture )
      in
      lane0 clean = lane0 injected)

let () =
  Alcotest.run "sim"
    [
      ( "lanes",
        [
          Alcotest.test_case "masks" `Quick test_lanes_masks;
          Alcotest.test_case "get/set" `Quick test_lanes_get_set;
          Alcotest.test_case "packing" `Quick test_lanes_pack;
        ] );
      ( "comb",
        [
          Alcotest.test_case "mux truth table" `Quick test_comb_mux;
          Alcotest.test_case "ternary X propagation" `Quick test_comb_ternary_x;
          Alcotest.test_case "constants" `Quick test_comb_const;
          Alcotest.test_case "scan capture" `Quick test_comb_scan_capture;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "63 lanes match scalar runs" `Quick test_parallel_matches_comb;
          Alcotest.test_case "stem injection" `Quick test_parallel_stem_injection;
          Alcotest.test_case "branch injection" `Quick test_parallel_branch_injection;
          Alcotest.test_case "per-lane stimulus" `Quick test_parallel_per_lane_stimulus;
          Alcotest.test_case "dimension checks" `Quick test_parallel_dimension_checks;
          Alcotest.test_case "run_single" `Quick test_run_single;
          QCheck_alcotest.to_alcotest qcheck_parallel_good_lane;
        ] );
    ]
