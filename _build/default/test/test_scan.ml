(* Unit tests for Tvs_scan: chain shift mechanics, the three observation
   schemes (including the paper's Figures 3 and 4), and the ATE cost model. *)

module Chain = Tvs_scan.Chain
module Xor_scheme = Tvs_scan.Xor_scheme
module Cost = Tvs_scan.Cost
module Ternary = Tvs_logic.Ternary

let bits s = Array.init (String.length s) (fun i -> s.[i] = '1')
let show a = String.init (Array.length a) (fun i -> if a.(i) then '1' else '0')

(* --- chain ----------------------------------------------------------- *)

let test_shift_paper_example () =
  (* Contents 111 (response of 110), shift 2 fresh bits -> vector 001,
     emitting cells c then b. *)
  let state', out = Chain.shift (bits "111") ~fresh:(bits "00") in
  Alcotest.(check string) "new contents" "001" (show state');
  Alcotest.(check string) "emitted tail-first" "11" (show out)

let test_shift_full () =
  let state', out = Chain.shift (bits "101") ~fresh:(bits "010") in
  Alcotest.(check string) "full replacement" "010" (show state');
  Alcotest.(check string) "everything out" "101" (show out)

let test_shift_zero () =
  let state', out = Chain.shift (bits "101") ~fresh:[||] in
  Alcotest.(check string) "unchanged" "101" (show state');
  Alcotest.(check int) "nothing out" 0 (Array.length out)

let test_shift_too_long () =
  Alcotest.check_raises "too many fresh bits"
    (Invalid_argument "Chain.shift: more fresh bits than cells") (fun () ->
      ignore (Chain.shift (bits "10") ~fresh:(bits "000")))

let test_shift_ternary_constraints () =
  let state = Array.map Ternary.of_bool (bits "110") in
  let c = Chain.shift_ternary state ~s:2 in
  Alcotest.(check string) "head free, tail pinned" "XX1"
    (String.init 3 (fun i -> Ternary.to_char c.(i)))

let test_emitted_retained () =
  let state = bits "10110" in
  Alcotest.(check string) "emitted" "011" (show (Chain.emitted state ~s:3));
  Alcotest.(check string) "retained" "10" (show (Chain.retained state ~s:3))

let qcheck_shift_conservation =
  (* Every bit of the old state either stays (shifted by s) or is emitted. *)
  QCheck.Test.make ~name:"shift conserves all bits" ~count:300
    QCheck.(pair (array_of_size Gen.(int_range 1 40) bool) small_nat)
    (fun (state, k) ->
      let s = k mod (Array.length state + 1) in
      let fresh = Array.make s false in
      let state', out = Chain.shift state ~fresh in
      let len = Array.length state in
      let kept_ok = Array.for_all (fun i -> state'.(i + s) = state.(i)) (Array.init (len - s) (fun i -> i)) in
      let out_ok = Array.for_all (fun k0 -> out.(k0) = state.(len - 1 - k0)) (Array.init s (fun i -> i)) in
      kept_ok && out_ok)

(* --- xor schemes ------------------------------------------------------ *)

let test_vxor_writeback () =
  let applied = bits "1100" and capture = bits "1010" in
  Alcotest.(check string) "nxor passes capture" "1010"
    (show (Xor_scheme.writeback Xor_scheme.Nxor ~applied_scan:applied ~capture));
  Alcotest.(check string) "vxor is R xor T" "0110"
    (show (Xor_scheme.writeback Xor_scheme.Vxor ~applied_scan:applied ~capture))

(* Figure 3's algebra: under VXOR a hidden fault is erased iff
   R_f xor T_f = R xor T. *)
let qcheck_vxor_elimination =
  QCheck.Test.make ~name:"VXOR elimination condition (Fig. 3)" ~count:300
    QCheck.(quad (array_of_size (Gen.return 6) bool) (array_of_size (Gen.return 6) bool)
              (array_of_size (Gen.return 6) bool) (array_of_size (Gen.return 6) bool))
    (fun (t_good, r_good, t_fault, r_fault) ->
      let wb = Xor_scheme.writeback Xor_scheme.Vxor in
      let erased = wb ~applied_scan:t_fault ~capture:r_fault = wb ~applied_scan:t_good ~capture:r_good in
      let condition =
        Array.for_all (fun i -> (r_fault.(i) <> t_fault.(i)) = (r_good.(i) <> t_good.(i)))
          (Array.init 6 (fun i -> i))
      in
      erased = condition)

let test_hxor_taps () =
  (* Chain of 6, three taps: cells 5, 3, 1 (tail plus two spaced by L/3). *)
  Alcotest.(check (list int)) "tap positions" [ 5; 3; 1 ] (Xor_scheme.taps 3 ~chain_len:6)

let test_hxor_figure4 () =
  (* Figure 4: cells a..f, three taps. First scanned-out bit is
     (b xor d xor f), the second (a xor c xor e). *)
  let a, b, c, d, e, f = (true, false, true, true, false, false) in
  let contents = [| a; b; c; d; e; f |] in
  let stream = Xor_scheme.observe (Xor_scheme.Hxor 3) ~contents ~fresh:[| false; false |] in
  Alcotest.(check bool) "bit 1 = b xor d xor f" (b <> d <> f) stream.(0);
  Alcotest.(check bool) "bit 2 = a xor c xor e" (a <> c <> e) stream.(1)

let test_nxor_observe_is_plain_tail () =
  let contents = bits "10110" in
  let fresh = bits "00" in
  Alcotest.(check string) "tail stream" "01"
    (show (Xor_scheme.observe Xor_scheme.Nxor ~contents ~fresh));
  Alcotest.(check string) "vxor observes contents too" "01"
    (show (Xor_scheme.observe Xor_scheme.Vxor ~contents ~fresh))

let test_hxor_sweeps_whole_chain () =
  (* With n taps, shifting L/n steps sweeps every cell past some tap: a
     single-bit difference anywhere must show in the stream. *)
  let len = 9 in
  let base = Array.make len false in
  for diff = 0 to len - 1 do
    let faulty = Array.copy base in
    faulty.(diff) <- true;
    let fresh = Array.make 3 false in
    let s_good = Xor_scheme.observe (Xor_scheme.Hxor 3) ~contents:base ~fresh in
    let s_bad = Xor_scheme.observe (Xor_scheme.Hxor 3) ~contents:faulty ~fresh in
    Alcotest.(check bool) (Printf.sprintf "diff at %d observed in L/n steps" diff) true
      (s_good <> s_bad)
  done

let test_scheme_strings () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Xor_scheme.to_string s ^ " roundtrip") true
        (match Xor_scheme.of_string (Xor_scheme.to_string s) with
        | Some s' -> Xor_scheme.equal s s'
        | None -> false))
    [ Xor_scheme.Nxor; Xor_scheme.Vxor; Xor_scheme.Hxor 3 ];
  Alcotest.(check bool) "garbage rejected" true (Xor_scheme.of_string "hxor:zero" = None)

let test_hardware_cost () =
  Alcotest.(check int) "nxor free" 0 (Xor_scheme.hardware_cost Xor_scheme.Nxor ~chain_len:100);
  Alcotest.(check int) "vxor one per cell" 100 (Xor_scheme.hardware_cost Xor_scheme.Vxor ~chain_len:100);
  Alcotest.(check int) "hxor n-1 gates" 2 (Xor_scheme.hardware_cost (Xor_scheme.Hxor 3) ~chain_len:100)

(* --- cost model ------------------------------------------------------- *)

let paper_schedule =
  { Cost.chain_len = 3; npi = 0; npo = 0; shifts = [ 3; 2; 2; 2 ]; extra = 0; full_drain = false }

let test_cost_paper () =
  Alcotest.(check int) "time 11" 11 (Cost.time paper_schedule);
  Alcotest.(check int) "memory 17" 17 (Cost.memory paper_schedule);
  let r = Cost.ratios paper_schedule ~baseline_nvec:4 in
  Alcotest.(check (float 0.001)) "t ratio" (11.0 /. 15.0) r.Cost.t;
  Alcotest.(check (float 0.001)) "m ratio" (17.0 /. 24.0) r.Cost.m

let test_cost_io_terms () =
  let s = { paper_schedule with npi = 2; npo = 1 } in
  (* 4 vectors x 3 I/O bits on top of the 17 scan bits. *)
  Alcotest.(check int) "io included" 29 (Cost.memory s);
  Alcotest.(check int) "baseline io" 36 (Cost.baseline_memory ~chain_len:3 ~npi:2 ~npo:1 ~nvec:4)

let test_cost_full_drain () =
  let s = { paper_schedule with full_drain = true } in
  (* Final unload becomes the whole chain: 9 + 3 = 12 cycles. *)
  Alcotest.(check int) "drain time" 12 (Cost.time s);
  Alcotest.(check int) "drain memory" 18 (Cost.memory s)

let test_cost_extra_vectors () =
  let s = { paper_schedule with extra = 2 } in
  (* Loads 9, extras 2x3, final unload 3 (subsumes the partial one). *)
  Alcotest.(check int) "time with extras" (9 + 6 + 3) (Cost.time s);
  (* Memory: in 9 + out (2+2+2 + 3 full for the last stitched response)
     + extras 2 * 2 * 3. *)
  Alcotest.(check int) "memory with extras" (9 + 9 + 12) (Cost.memory s);
  Alcotest.(check int) "vector count" 6 (Cost.num_vectors s)

let test_cost_degenerate () =
  let s = { Cost.chain_len = 5; npi = 1; npo = 1; shifts = []; extra = 0; full_drain = false } in
  Alcotest.(check int) "empty schedule time" 0 (Cost.time s);
  Alcotest.(check int) "empty schedule memory" 0 (Cost.memory s)

let qcheck_stitched_never_worse_than_full_shifts =
  (* If every shift is the full chain, stitched time equals the traditional
     flow's time for the same number of vectors. *)
  QCheck.Test.make ~name:"full-size shifts reduce to the baseline" ~count:100
    QCheck.(pair (int_range 1 40) (int_range 1 30))
    (fun (chain_len, nvec) ->
      let s =
        {
          Cost.chain_len;
          npi = 0;
          npo = 0;
          shifts = List.init nvec (fun _ -> chain_len);
          extra = 0;
          full_drain = false;
        }
      in
      Cost.time s = Cost.baseline_time ~chain_len ~nvec)

let qcheck_full_shifts_memory_is_baseline =
  (* Same degeneracy for the memory model, including the I/O terms: with
     full-size shifts and no extras, every stored bit of the stitched
     schedule has a baseline counterpart. *)
  QCheck.Test.make ~name:"full-size shifts reproduce baseline memory" ~count:100
    QCheck.(quad (int_range 1 40) (int_range 1 30) (int_range 0 16) (int_range 0 16))
    (fun (chain_len, nvec, npi, npo) ->
      let s =
        {
          Cost.chain_len;
          npi;
          npo;
          shifts = List.init nvec (fun _ -> chain_len);
          extra = 0;
          full_drain = false;
        }
      in
      Cost.memory s = Cost.baseline_memory ~chain_len ~npi ~npo ~nvec)

let test_cost_extra_suppresses_final_unload () =
  (* With extra > 0 the first extra full load doubles as the drain of the
     stitched phase, so the schedule's own final unload must contribute
     nothing — regardless of the full_drain flag or the last shift size. *)
  let base full_drain =
    { Cost.chain_len = 3; npi = 1; npo = 1; shifts = [ 3; 2 ]; extra = 2; full_drain }
  in
  (* time = scan-in (5) + final unload (0) + extras (2*3 loads + 3 drain). *)
  Alcotest.(check int) "time with extras" 14 (Cost.time (base false));
  (* memory = scan-in (5) + scan-out (2 + 3) + io (4*2) + extra bits (12). *)
  Alcotest.(check int) "memory with extras" 30 (Cost.memory (base false));
  Alcotest.(check int) "full_drain moot under extras (time)" (Cost.time (base false))
    (Cost.time (base true));
  Alcotest.(check int) "full_drain moot under extras (memory)" (Cost.memory (base false))
    (Cost.memory (base true))

let () =
  Alcotest.run "scan"
    [
      ( "chain",
        [
          Alcotest.test_case "paper example" `Quick test_shift_paper_example;
          Alcotest.test_case "full shift" `Quick test_shift_full;
          Alcotest.test_case "zero shift" `Quick test_shift_zero;
          Alcotest.test_case "overlong shift rejected" `Quick test_shift_too_long;
          Alcotest.test_case "ternary constraints" `Quick test_shift_ternary_constraints;
          Alcotest.test_case "emitted / retained" `Quick test_emitted_retained;
          QCheck_alcotest.to_alcotest qcheck_shift_conservation;
        ] );
      ( "xor-schemes",
        [
          Alcotest.test_case "vxor write-back" `Quick test_vxor_writeback;
          QCheck_alcotest.to_alcotest qcheck_vxor_elimination;
          Alcotest.test_case "hxor tap placement" `Quick test_hxor_taps;
          Alcotest.test_case "figure 4 example" `Quick test_hxor_figure4;
          Alcotest.test_case "nxor/vxor tail stream" `Quick test_nxor_observe_is_plain_tail;
          Alcotest.test_case "hxor sweeps the chain" `Quick test_hxor_sweeps_whole_chain;
          Alcotest.test_case "scheme strings" `Quick test_scheme_strings;
          Alcotest.test_case "hardware cost" `Quick test_hardware_cost;
        ] );
      ( "cost",
        [
          Alcotest.test_case "paper arithmetic" `Quick test_cost_paper;
          Alcotest.test_case "I/O terms" `Quick test_cost_io_terms;
          Alcotest.test_case "full drain" `Quick test_cost_full_drain;
          Alcotest.test_case "extra vectors" `Quick test_cost_extra_vectors;
          Alcotest.test_case "degenerate schedule" `Quick test_cost_degenerate;
          Alcotest.test_case "extras suppress final unload" `Quick
            test_cost_extra_suppresses_final_unload;
          QCheck_alcotest.to_alcotest qcheck_stitched_never_worse_than_full_shifts;
          QCheck_alcotest.to_alcotest qcheck_full_shifts_memory_is_baseline;
        ] );
    ]
