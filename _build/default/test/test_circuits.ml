(* Unit tests for Tvs_circuits: the Figure 1 reconstruction, the embedded
   s27, the benchmark profiles and the synthetic generator. *)

module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Stats = Tvs_netlist.Stats
module Validate = Tvs_netlist.Validate
module Bench_format = Tvs_netlist.Bench_format
module Fig1 = Tvs_circuits.Fig1
module Profiles = Tvs_circuits.Profiles
module Synth = Tvs_circuits.Synth

(* --- fig1 ------------------------------------------------------------- *)

let test_fig1_structure () =
  let c = Fig1.circuit () in
  Alcotest.(check int) "no PIs" 0 (Circuit.num_inputs c);
  Alcotest.(check int) "no POs" 0 (Circuit.num_outputs c);
  Alcotest.(check int) "three cells" 3 (Circuit.num_flops c);
  (* D = AND(A, B), E = OR(B, C), F = AND(D, E). *)
  (match Circuit.driver c (Circuit.find_net c "D") with
  | Circuit.Gate_node (Gate.And, _) -> ()
  | _ -> Alcotest.fail "D must be an AND");
  (match Circuit.driver c (Circuit.find_net c "E") with
  | Circuit.Gate_node (Gate.Or, _) -> ()
  | _ -> Alcotest.fail "E must be an OR");
  (* Cell captures: a <- F, b <- E, c <- D. *)
  let cell q = Circuit.driver c (Circuit.find_net c q) in
  (match cell "A" with
  | Circuit.Flip_flop d -> Alcotest.(check string) "a captures F" "F" (Circuit.net_name c d)
  | _ -> Alcotest.fail "A is a cell");
  (match cell "C" with
  | Circuit.Flip_flop d -> Alcotest.(check string) "c captures D" "D" (Circuit.net_name c d)
  | _ -> Alcotest.fail "C is a cell")

let test_fig1_fault_parsing () =
  let c = Fig1.circuit () in
  List.iter (fun n -> ignore (Fig1.paper_fault c n)) Fig1.table1_faults;
  Alcotest.(check int) "18 faults named" 18 (List.length Fig1.table1_faults);
  Alcotest.(check bool) "unknown fault rejected" true
    (try
       ignore (Fig1.paper_fault c "Z/0");
       false
     with _ -> true)

let test_fig1_schedule_consistent () =
  Alcotest.(check int) "4 vectors" 4 (List.length Fig1.vectors);
  Alcotest.(check int) "4 fresh groups" 4 (List.length Fig1.fresh_bits);
  Alcotest.(check (list int)) "shift schedule" [ 3; 2; 2; 2 ]
    (List.map Array.length Fig1.fresh_bits);
  (* The fresh bits regenerate the paper's vectors through chain shifting. *)
  let state = ref (Array.make 3 false) in
  List.iter2
    (fun fresh expected ->
      let applied, _ = Tvs_scan.Chain.shift !state ~fresh in
      Alcotest.(check (array bool)) "vector reconstructed" expected applied;
      (* Next state is the response; recompute via simulation. *)
      let sim = Tvs_sim.Parallel.create (Fig1.circuit ()) in
      let _, capture = Tvs_sim.Parallel.run_single sim ~pi:[||] ~state:applied in
      state := capture)
    Fig1.fresh_bits Fig1.vectors

(* --- s27 --------------------------------------------------------------- *)

let test_s27_shape () =
  let c = Tvs_circuits.S27.circuit () in
  let s = Stats.compute c in
  Alcotest.(check int) "PI" 4 s.Stats.num_inputs;
  Alcotest.(check int) "PO" 1 s.Stats.num_outputs;
  Alcotest.(check int) "FF" 3 s.Stats.num_flops;
  Alcotest.(check int) "gates" 10 s.Stats.num_gates;
  Alcotest.(check bool) "clean" true (Validate.is_clean c)

(* --- profiles ----------------------------------------------------------- *)

let test_profiles_tables () =
  Alcotest.(check int) "table 2 rows" 8 (List.length Profiles.table2_circuits);
  Alcotest.(check int) "table 5 rows" 7 (List.length Profiles.table5_circuits);
  let p = Profiles.find "s9234" in
  Alcotest.(check int) "s9234 scan length" 228 p.Profiles.nff;
  Alcotest.(check int) "s9234 PIs" 19 p.Profiles.npi;
  Alcotest.(check bool) "unknown raises" true
    (try
       ignore (Profiles.find "s0");
       false
     with Not_found -> true)

let test_profiles_scan_lengths_match_paper () =
  (* The "shift x/L" denominators of Table 2. *)
  List.iter
    (fun (name, nff) ->
      Alcotest.(check int) (name ^ " scan length") nff (Profiles.find name).Profiles.nff)
    [
      ("s444", 21); ("s526", 21); ("s641", 19); ("s953", 29); ("s1196", 18); ("s1423", 74);
      ("s5378", 179); ("s9234", 228); ("s13207", 669); ("s15850", 597); ("s35932", 1728);
      ("s38417", 1636); ("s38584", 1452);
    ]

let test_profile_scale () =
  let p = Profiles.find "s35932" in
  let half = Profiles.scale p 0.5 in
  Alcotest.(check int) "FF halves" 864 half.Profiles.nff;
  Alcotest.(check int) "PI kept" p.Profiles.npi half.Profiles.npi;
  Alcotest.(check string) "name notes scale" "s35932@0.5" half.Profiles.name;
  let same = Profiles.scale p 1.0 in
  Alcotest.(check string) "unit scale is identity" "s35932" same.Profiles.name

(* --- synth --------------------------------------------------------------- *)

let test_synth_matches_profile () =
  List.iter
    (fun name ->
      let p = Profiles.find name in
      let c = Synth.generate p in
      Alcotest.(check int) (name ^ " PI") p.Profiles.npi (Circuit.num_inputs c);
      Alcotest.(check int) (name ^ " PO") p.Profiles.npo (Circuit.num_outputs c);
      Alcotest.(check int) (name ^ " FF") p.Profiles.nff (Circuit.num_flops c);
      let s = Stats.compute c in
      (* The parity-collapse tree may add a few gates beyond the request. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s gates %d ~ %d" name s.Stats.num_gates p.Profiles.ngates)
        true
        (s.Stats.num_gates >= p.Profiles.ngates && s.Stats.num_gates < p.Profiles.ngates * 2))
    [ "s444"; "s641"; "s953"; "s1196" ]

let test_synth_deterministic () =
  let a = Bench_format.to_string (Synth.generate_named "s444") in
  let b = Bench_format.to_string (Synth.generate_named "s444") in
  Alcotest.(check bool) "identical netlists" true (a = b)

let test_synth_no_dangling () =
  let c = Synth.generate_named "s526" in
  let dangling =
    List.filter (function Validate.Dangling_net _ -> true | _ -> false) (Validate.check c)
  in
  Alcotest.(check int) "no dangling nets" 0 (List.length dangling)

let test_synth_acyclic_and_consuming () =
  let c = Synth.generate_named "s641" in
  (* topo_order would have raised on a cycle at build time; recompute depth
     to exercise it. *)
  Alcotest.(check bool) "positive depth" true (Circuit.depth c > 0);
  (* Every PI feeds something. *)
  Array.iter
    (fun pi ->
      Alcotest.(check bool)
        (Circuit.net_name c pi ^ " consumed")
        true
        (Array.length (Circuit.fanout c pi) > 0))
    (Circuit.inputs c)

let test_synth_styles_differ () =
  (* Shallow circuits must be shallower than Deep ones of similar size. *)
  let shallow =
    Synth.generate { Profiles.name = "x-shallow"; npi = 10; npo = 10; nff = 30; ngates = 300; style = Profiles.Shallow }
  in
  let deep =
    Synth.generate { Profiles.name = "x-deep"; npi = 10; npo = 10; nff = 30; ngates = 300; style = Profiles.Deep }
  in
  Alcotest.(check bool)
    (Printf.sprintf "depth(shallow)=%d < depth(deep)=%d" (Circuit.depth shallow) (Circuit.depth deep))
    true
    (Circuit.depth shallow < Circuit.depth deep)

let test_synth_scaled_runs () =
  let c = Synth.generate (Profiles.scale (Profiles.find "s13207") 0.1) in
  Alcotest.(check int) "scaled FF count" 67 (Circuit.num_flops c);
  Alcotest.(check bool) "builds and levelizes" true (Circuit.depth c >= 0)

let () =
  Alcotest.run "circuits"
    [
      ( "fig1",
        [
          Alcotest.test_case "structure" `Quick test_fig1_structure;
          Alcotest.test_case "fault names" `Quick test_fig1_fault_parsing;
          Alcotest.test_case "schedule reconstructs vectors" `Quick test_fig1_schedule_consistent;
        ] );
      ("s27", [ Alcotest.test_case "shape" `Quick test_s27_shape ]);
      ( "profiles",
        [
          Alcotest.test_case "table membership" `Quick test_profiles_tables;
          Alcotest.test_case "scan lengths match the paper" `Quick test_profiles_scan_lengths_match_paper;
          Alcotest.test_case "scaling" `Quick test_profile_scale;
        ] );
      ( "synth",
        [
          Alcotest.test_case "matches profile" `Quick test_synth_matches_profile;
          Alcotest.test_case "deterministic" `Quick test_synth_deterministic;
          Alcotest.test_case "no dangling nets" `Quick test_synth_no_dangling;
          Alcotest.test_case "acyclic, all PIs used" `Quick test_synth_acyclic_and_consuming;
          Alcotest.test_case "styles shape depth" `Quick test_synth_styles_differ;
          Alcotest.test_case "scaled profiles run" `Quick test_synth_scaled_runs;
        ] );
    ]
