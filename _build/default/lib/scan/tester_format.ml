type program = { chain_len : int; npi : int; ops : Protocol.op list }

exception Parse_error of int * string

let of_stitched ~chain_len ~npi ~vectors ?final_unload () =
  let unload = Option.value ~default:chain_len final_unload in
  let ops = Protocol.stitched_ops ~vectors @ Protocol.full_unload_ops ~chain_len:unload in
  { chain_len; npi; ops }

let bits_to_string arr = String.init (Array.length arr) (fun i -> if arr.(i) then '1' else '0')

let to_string p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "tvs-program v1\n";
  Buffer.add_string buf (Printf.sprintf "chain %d\n" p.chain_len);
  Buffer.add_string buf (Printf.sprintf "pins %d\n" p.npi);
  List.iter
    (fun op ->
      match op with
      | Protocol.Shift bit -> Buffer.add_string buf (Printf.sprintf "shift %d\n" (if bit then 1 else 0))
      | Protocol.Capture pi -> Buffer.add_string buf (Printf.sprintf "capture %s\n" (bits_to_string pi)))
    p.ops;
  Buffer.contents buf

let parse_bits lineno s =
  Array.init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | c -> raise (Parse_error (lineno, Printf.sprintf "bad bit %C" c)))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let chain_len = ref None and npi = ref None and ops = ref [] in
  let seen_header = ref false in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some j -> String.trim (String.sub raw 0 j)
        | None -> String.trim raw
      in
      if line <> "" then
        match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
        | [ "tvs-program"; "v1" ] -> seen_header := true
        | [ "chain"; n ] -> chain_len := int_of_string_opt n
        | [ "pins"; n ] -> npi := int_of_string_opt n
        | [ "shift"; b ] -> (
            match b with
            | "0" -> ops := Protocol.Shift false :: !ops
            | "1" -> ops := Protocol.Shift true :: !ops
            | _ -> raise (Parse_error (lineno, "shift takes 0 or 1")))
        | [ "capture" ] -> ops := Protocol.Capture [||] :: !ops
        | [ "capture"; bits ] -> ops := Protocol.Capture (parse_bits lineno bits) :: !ops
        | _ -> raise (Parse_error (lineno, Printf.sprintf "unrecognised statement %S" line)))
    lines;
  if not !seen_header then raise (Parse_error (1, "missing tvs-program header"));
  match (!chain_len, !npi) with
  | Some chain_len, Some npi when chain_len > 0 && npi >= 0 ->
      let p = { chain_len; npi; ops = List.rev !ops } in
      List.iter
        (function
          | Protocol.Capture pi when Array.length pi <> npi ->
              raise (Parse_error (0, "capture width disagrees with pins"))
          | Protocol.Capture _ | Protocol.Shift _ -> ())
        p.ops;
      p
  | _ -> raise (Parse_error (1, "missing or invalid chain/pins declaration"))

let write_file path p =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let num_shift_cycles p =
  List.fold_left
    (fun acc op -> match op with Protocol.Shift _ -> acc + 1 | Protocol.Capture _ -> acc)
    0 p.ops

let num_captures p =
  List.fold_left
    (fun acc op -> match op with Protocol.Capture _ -> acc + 1 | Protocol.Shift _ -> acc)
    0 p.ops
