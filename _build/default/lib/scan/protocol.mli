(** Cycle-accurate test application on a scan-inserted netlist.

    Drives a {!Tvs_netlist.Scan_insert.t} one clock at a time — shift cycles
    with scan-enable high, capture cycles with it low — sampling the
    [scan_out] pin on every shift and the primary outputs on every capture.
    This is the tester's-eye view of the hardware.

    Its purpose is validation: the stitched flow is built on an abstraction
    (combinational core + {!Chain} shift mechanics), and the test suite
    checks that abstraction against this physical model cycle by cycle, on
    both the traditional and the stitched schedule. *)

type op =
  | Shift of bool  (** one shift clock, injecting the given scan-in bit *)
  | Capture of bool array  (** one capture clock under the given PI values *)

type observed = {
  scan_stream : bool list;  (** scan-out samples, one per shift, in order *)
  po_samples : bool array list;  (** primary outputs, one per capture, in order *)
  final_state : bool array;  (** chain contents after the last cycle *)
}

val run : Tvs_netlist.Scan_insert.t -> init:bool array -> op list -> observed
(** [init] is the chain contents before the first cycle (length = #cells).
    During shift cycles the functional primary inputs are held at zero; a
    real tester can drive anything there, and the sampled data is
    unaffected. *)

val load_ops : fresh:bool array -> op list
(** The shift sequence realising {!Chain.shift}'s convention: after these
    [Array.length fresh] clocks, cell [i] holds [fresh.(i)]. *)

val stitched_ops : vectors:(bool array * bool array) list -> op list
(** The full stitched schedule for [(pi, fresh)] pairs: each vector's fresh
    bits are shifted in (observing the previous response on the way out),
    then captured under its PI values. *)

val full_unload_ops : chain_len:int -> op list
(** Trailing shifts that drain the whole chain. *)
