(** Plain-text ATE program interchange.

    The paper stresses that "seen from the vantage point of an ATE, the
    proposed scheme is identical to regular scan based application": a
    stitched schedule is nothing but shift and capture operations. This
    module serialises exactly that — a {!Protocol.op} sequence with its
    chain geometry — so a schedule can leave the generator, live in version
    control or on a tester, and come back bit-identically.

    Format (one statement per line, [#] comments):
    {v
      tvs-program v1
      chain <L>
      pins <PI>
      shift <bit>
      capture <PI bits as 0/1, empty allowed>
    v} *)

type program = { chain_len : int; npi : int; ops : Protocol.op list }

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val of_stitched :
  chain_len:int ->
  npi:int ->
  vectors:(bool array * bool array) list ->
  ?final_unload:int ->
  unit ->
  program
(** Build the op sequence for [(pi, fresh)] stitched vectors plus a trailing
    unload ([final_unload] shifts, default the whole chain). *)

val to_string : program -> string
val of_string : string -> program

val write_file : string -> program -> unit
val read_file : string -> program

val num_shift_cycles : program -> int
val num_captures : program -> int
