type t = Nxor | Vxor | Hxor of int

let equal a b =
  match (a, b) with
  | Nxor, Nxor | Vxor, Vxor -> true
  | Hxor n, Hxor m -> n = m
  | (Nxor | Vxor | Hxor _), _ -> false

let to_string = function
  | Nxor -> "nxor"
  | Vxor -> "vxor"
  | Hxor n -> Printf.sprintf "hxor:%d" n

let of_string s =
  match String.lowercase_ascii s with
  | "nxor" -> Some Nxor
  | "vxor" -> Some Vxor
  | s when String.length s > 5 && String.sub s 0 5 = "hxor:" -> (
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some n when n >= 1 -> Some (Hxor n)
      | Some _ | None -> None)
  | _ -> None

let writeback t ~applied_scan ~capture =
  match t with
  | Nxor | Hxor _ -> Array.copy capture
  | Vxor ->
      if Array.length applied_scan <> Array.length capture then
        invalid_arg "Xor_scheme.writeback: length mismatch";
      Array.map2 (fun a b -> a <> b) applied_scan capture

let taps n ~chain_len =
  assert (n >= 1);
  let n = min n chain_len in
  let spacing = chain_len / n in
  List.init n (fun k -> chain_len - 1 - (k * spacing))

let observe t ~contents ~fresh =
  let len = Array.length contents in
  let s = Array.length fresh in
  if s > len then invalid_arg "Xor_scheme.observe: shift exceeds chain length";
  match t with
  | Nxor | Vxor -> Chain.emitted contents ~s
  | Hxor n ->
      let tap_cells = taps n ~chain_len:len in
      (* Step-by-step: at each step read the XOR of the taps, then shift by
         one, injecting fresh bits in injection order (the last element of
         [fresh] is injected first; see Chain.shift's convention that
         [fresh.(i)] is the final content of cell [i]). *)
      let state = Array.copy contents in
      let out = Array.make s false in
      for k = 0 to s - 1 do
        out.(k) <- List.fold_left (fun acc i -> acc <> state.(i)) false tap_cells;
        for i = len - 1 downto 1 do
          state.(i) <- state.(i - 1)
        done;
        state.(0) <- fresh.(s - 1 - k)
      done;
      out

let hardware_cost t ~chain_len =
  match t with Nxor -> 0 | Vxor -> chain_len | Hxor n -> max 0 (min n chain_len - 1)

let pp fmt t = Format.pp_print_string fmt (to_string t)
