module Bitvec = Tvs_logic.Bitvec

type t = { taps : int list; state : bool array }

let create ~width ~taps =
  if width <= 0 then invalid_arg "Misr.create: width must be positive";
  List.iter (fun i -> if i < 0 || i >= width then invalid_arg "Misr.create: tap out of range") taps;
  { taps; state = Array.make width false }

(* Maximal-length feedback exponents per register width (XAPP052 table),
   converted to 0-based stage indices. *)
let default_taps ~width =
  let poly =
    match width with
    | 2 -> [ 2; 1 ]
    | 3 -> [ 3; 2 ]
    | 4 -> [ 4; 3 ]
    | 5 -> [ 5; 3 ]
    | 6 -> [ 6; 5 ]
    | 7 -> [ 7; 6 ]
    | 8 -> [ 8; 6; 5; 4 ]
    | 9 -> [ 9; 5 ]
    | 10 -> [ 10; 7 ]
    | 11 -> [ 11; 9 ]
    | 12 -> [ 12; 6; 4; 1 ]
    | 13 -> [ 13; 4; 3; 1 ]
    | 14 -> [ 14; 5; 3; 1 ]
    | 15 -> [ 15; 14 ]
    | 16 -> [ 16; 15; 13; 4 ]
    | 17 -> [ 17; 14 ]
    | 18 -> [ 18; 11 ]
    | 19 -> [ 19; 6; 2; 1 ]
    | 20 -> [ 20; 17 ]
    | 24 -> [ 24; 23; 22; 17 ]
    | 32 -> [ 32; 22; 2; 1 ]
    | _ -> [ width; 1 ]
  in
  List.map (fun e -> e - 1) poly

let width t = Array.length t.state

let reset t = Array.fill t.state 0 (Array.length t.state) false

let absorb t data =
  let w = Array.length t.state in
  (* Fold arbitrary-width data into the register width. *)
  let input = Array.make w false in
  Array.iteri (fun i b -> if b then input.(i mod w) <- not input.(i mod w)) data;
  let feedback = List.fold_left (fun acc i -> acc <> t.state.(i)) false t.taps in
  let prev = Array.copy t.state in
  for i = w - 1 downto 1 do
    t.state.(i) <- prev.(i - 1) <> input.(i)
  done;
  t.state.(0) <- feedback <> input.(0)

let absorb_stream t stream = List.iter (absorb t) stream

let signature t = Bitvec.of_bool_array t.state

let signature_of ~width stream =
  let t = create ~width ~taps:(default_taps ~width) in
  absorb_stream t stream;
  signature t
