type schedule = {
  chain_len : int;
  npi : int;
  npo : int;
  shifts : int list;
  extra : int;
  full_drain : bool;
}

let num_vectors s = List.length s.shifts + s.extra

let sum = List.fold_left ( + ) 0

let final_unload s =
  if s.extra > 0 then 0 (* the first extra full load drains the chain *)
  else if s.full_drain then s.chain_len
  else match List.rev s.shifts with last :: _ -> last | [] -> 0

let time s =
  let stitched = sum s.shifts in
  let extra_cycles = if s.extra > 0 then (s.extra * s.chain_len) + s.chain_len else 0 in
  stitched + final_unload s + extra_cycles

let memory s =
  let scan_in = sum s.shifts in
  (* Each stitched response is observed during the following shift; the last
     one during the final unload. *)
  let scan_out =
    match s.shifts with
    | [] -> 0
    | _first :: rest -> sum rest + (if s.extra > 0 then s.chain_len else final_unload s)
  in
  let io = num_vectors s * (s.npi + s.npo) in
  let extra_bits = s.extra * 2 * s.chain_len in
  scan_in + scan_out + io + extra_bits

let baseline_time ~chain_len ~nvec = chain_len * (nvec + 1)

let baseline_memory ~chain_len ~npi ~npo ~nvec = nvec * ((2 * chain_len) + npi + npo)

type ratios = { m : float; t : float }

let ratios s ~baseline_nvec =
  let bt = baseline_time ~chain_len:s.chain_len ~nvec:baseline_nvec in
  let bm = baseline_memory ~chain_len:s.chain_len ~npi:s.npi ~npo:s.npo ~nvec:baseline_nvec in
  {
    t = (if bt = 0 then 1.0 else float_of_int (time s) /. float_of_int bt);
    m = (if bm = 0 then 1.0 else float_of_int (memory s) /. float_of_int bm);
  }
