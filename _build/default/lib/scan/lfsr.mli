(** Fibonacci LFSR pseudo-random pattern generator.

    The building block of the BIST-style schemes the paper competes with
    (virtual scan chains, DFHTC) and of the classic random-testability
    measure: the fraction of faults a short pseudo-random sequence detects
    separates "easy" circuits like s35932 — which the paper singles out for
    its drastic compression — from ATPG-bound ones. See the
    [random-testability] study in the harness. *)

type t

val create : ?seed:int -> width:int -> unit -> t
(** Taps are the maximal-length defaults of {!Misr.default_taps}. A zero
    [seed] (the lock-up state) is replaced by 1. Default seed 1. *)

val next_bit : t -> bool
(** Advance one clock; returns the bit leaving the register. *)

val next_vector : t -> int -> bool array
(** [next_vector t n] collects [n] successive output bits. *)

val state : t -> Tvs_logic.Bitvec.t

val period_is_maximal : width:int -> bool
(** Whether the default taps for this width cycle through all [2^w - 1]
    nonzero states (checked by enumeration; meant for small widths in
    tests). *)
