(** Scan-chain shift mechanics.

    Convention: cell 0 is the scan-in head, cell [L-1] the scan-out tail.
    One shift step moves every cell one position toward the tail, emits the
    tail cell, and loads a fresh bit into the head. Shifting [s] steps
    therefore emits the last [s] cells (tail first) and leaves the first [s]
    cells holding fresh data.

    This matches the paper's worked example: contents [110] shifted by two
    with fresh bits yielding final head cells [00] produce [001] — "the
    leftmost bit is shifted to the rightmost scan cell". *)

val shift : bool array -> fresh:bool array -> bool array * bool array
(** [shift state ~fresh] with [s = Array.length fresh <= length state]
    returns [(state', out)] where
    - [state'.(i) = fresh.(i)] for [i < s] — {b note}: [fresh.(i)] is the
      {e final} content of cell [i], i.e. bits listed in reverse injection
      order;
    - [state'.(i) = state.(i - s)] for [i >= s];
    - [out.(k) = state.(L - 1 - k)]: the emitted stream, tail cell first. *)

val shift_ternary :
  Tvs_logic.Ternary.t array -> s:int -> Tvs_logic.Ternary.t array
(** The constraint cube for the next vector: cells [0 .. s-1] become [X]
    (free for ATPG), cell [i >= s] receives the retained value
    [state.(i - s)]. *)

val emitted : bool array -> s:int -> bool array
(** Just the outgoing stream of a shift of [s]: tail cell first. *)

val retained : bool array -> s:int -> bool array
(** The [L - s] values that stay in the chain, in their post-shift cell
    order: [retained state ~s = Array.sub state' s (L - s)]. *)
