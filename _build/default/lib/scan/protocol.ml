module Circuit = Tvs_netlist.Circuit
module Scan_insert = Tvs_netlist.Scan_insert
module Parallel = Tvs_sim.Parallel

type op = Shift of bool | Capture of bool array

type observed = {
  scan_stream : bool list;
  po_samples : bool array list;
  final_state : bool array;
}

let run (inserted : Scan_insert.t) ~init ops =
  let c = inserted.Scan_insert.circuit in
  let n_func_pi = Circuit.num_inputs c - 2 in
  let n_func_po = Circuit.num_outputs c - 1 in
  let scan_out = inserted.Scan_insert.scan_out_index in
  if Array.length init <> Circuit.num_flops c then invalid_arg "Protocol.run: init length mismatch";
  let sim = Parallel.create c in
  let state = ref (Array.copy init) in
  let scan_stream = ref [] and po_samples = ref [] in
  (* One clock: outputs are combinational on the pre-edge state (that is
     what the tester strobes), then the edge loads the mux outputs. *)
  let clock ~scan_en ~scan_in ~func_pi =
    if Array.length func_pi <> n_func_pi then invalid_arg "Protocol.run: pi length mismatch";
    let pi = Array.append func_pi [| scan_en; scan_in |] in
    let po, capture = Parallel.run_single sim ~pi ~state:!state in
    state := capture;
    po
  in
  List.iter
    (fun op ->
      match op with
      | Shift bit ->
          let po = clock ~scan_en:true ~scan_in:bit ~func_pi:(Array.make n_func_pi false) in
          scan_stream := po.(scan_out) :: !scan_stream
      | Capture func_pi ->
          let po = clock ~scan_en:false ~scan_in:false ~func_pi in
          po_samples := Array.sub po 0 n_func_po :: !po_samples)
    ops;
  { scan_stream = List.rev !scan_stream; po_samples = List.rev !po_samples; final_state = !state }

let load_ops ~fresh =
  let s = Array.length fresh in
  (* Chain.shift's convention: fresh.(i) is the final content of cell i, so
     the bit injected at step k is fresh.(s - 1 - k). *)
  List.init s (fun k -> Shift fresh.(s - 1 - k))

let stitched_ops ~vectors =
  List.concat_map (fun (pi, fresh) -> load_ops ~fresh @ [ Capture pi ]) vectors

let full_unload_ops ~chain_len = List.init chain_len (fun _ -> Shift false)
