module Ternary = Tvs_logic.Ternary

let shift state ~fresh =
  let len = Array.length state in
  let s = Array.length fresh in
  if s > len then invalid_arg "Chain.shift: more fresh bits than cells";
  let state' = Array.init len (fun i -> if i < s then fresh.(i) else state.(i - s)) in
  let out = Array.init s (fun k -> state.(len - 1 - k)) in
  (state', out)

let shift_ternary state ~s =
  let len = Array.length state in
  if s > len then invalid_arg "Chain.shift_ternary: shift exceeds chain length";
  Array.init len (fun i -> if i < s then Ternary.X else state.(i - s))

let emitted state ~s =
  let len = Array.length state in
  if s > len then invalid_arg "Chain.emitted: shift exceeds chain length";
  Array.init s (fun k -> state.(len - 1 - k))

let retained state ~s =
  let len = Array.length state in
  if s > len then invalid_arg "Chain.retained: shift exceeds chain length";
  Array.init (len - s) (fun i -> state.(i))
