module Bitvec = Tvs_logic.Bitvec

type t = { taps : int list; state : bool array }

let create ?(seed = 1) ~width () =
  if width <= 0 then invalid_arg "Lfsr.create: width must be positive";
  let seed = if seed land ((1 lsl width) - 1) = 0 then 1 else seed in
  {
    taps = Misr.default_taps ~width;
    state = Array.init width (fun i -> seed lsr i land 1 = 1);
  }

let next_bit t =
  let w = Array.length t.state in
  let out = t.state.(w - 1) in
  let feedback = List.fold_left (fun acc i -> acc <> t.state.(i)) false t.taps in
  for i = w - 1 downto 1 do
    t.state.(i) <- t.state.(i - 1)
  done;
  t.state.(0) <- feedback;
  out

let next_vector t n = Array.init n (fun _ -> next_bit t)

let state t = Bitvec.of_bool_array t.state

let period_is_maximal ~width =
  let t = create ~width () in
  let start = Bitvec.to_string (state t) in
  let rec walk steps =
    ignore (next_bit t);
    if Bitvec.to_string (state t) = start then steps + 1
    else if steps > 1 lsl width then steps (* safety: non-maximal cycles stop early *)
    else walk (steps + 1)
  in
  walk 0 = (1 lsl width) - 1
