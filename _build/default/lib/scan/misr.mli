(** Multiple-input signature register (MISR) response compaction.

    Competing compression schemes (the paper's Section 2) compact test
    responses into an LFSR-based signature to save output bandwidth, at the
    cost of {e aliasing}: a faulty response sequence can produce the
    fault-free signature and escape detection, and the signature destroys
    the per-cycle data needed for diagnosis. The stitched approach needs no
    MISR — this module exists to {e measure} what that is worth (see the
    [misr] study in the harness and bench).

    The register is a standard type-2 MISR: one new data bit XORs into each
    stage per clock, stage 0 additionally receives the feedback parity of
    the tapped stages. *)

type t

val create : width:int -> taps:int list -> t
(** [taps] are stage indices (0-based) feeding the XOR feedback; they must
    lie in [\[0, width)]. The all-zero register is the reset state. *)

val default_taps : width:int -> int list
(** Feedback taps of a maximal-length polynomial for widths 2..32 (taken
    from the standard LFSR tables); falls back to [width-1; 0] elsewhere. *)

val width : t -> int

val reset : t -> unit

val absorb : t -> bool array -> unit
(** Clock the register once with a data word. Words narrower than the
    register are zero-extended; wider words are folded in by XOR. *)

val absorb_stream : t -> bool array list -> unit

val signature : t -> Tvs_logic.Bitvec.t
(** Current contents, stage 0 first. *)

val signature_of : width:int -> bool array list -> Tvs_logic.Bitvec.t
(** One-shot: reset, absorb the stream, read the signature, using
    {!default_taps}. *)
