(** ATE cost model: test application time in shift cycles and tester memory
    in stored stimulus/response bits (DESIGN.md Section 4).

    The model reproduces the paper's worked example exactly: a chain of 3
    with shift schedule [3; 2; 2; 2] costs 11 cycles and 17 bits against a
    4-vector baseline of 15 cycles and 24 bits. *)

type schedule = {
  chain_len : int;
  npi : int;
  npo : int;
  shifts : int list;
      (** per stitched vector, in application order; the first entry is
          normally [chain_len] (full load of the first vector) *)
  extra : int;  (** appended traditional full-shift vectors *)
  full_drain : bool;
      (** whether the final unload empties the whole chain (used when hidden
          faults remain to flush); otherwise the final unload has the size of
          the last shift *)
}

val num_vectors : schedule -> int
(** Stitched plus extra vectors. *)

val time : schedule -> int
(** Total shift cycles: all loads, plus the final unload (subsumed by the
    first extra full shift when [extra > 0]). *)

val memory : schedule -> int
(** Stored bits: scan stimulus, observed scan response, primary-input
    stimulus per vector and primary-output response per vector. *)

val baseline_time : chain_len:int -> nvec:int -> int
(** [chain_len * (nvec + 1)]: each load overlaps the previous unload, one
    final unload. *)

val baseline_memory : chain_len:int -> npi:int -> npo:int -> nvec:int -> int
(** [nvec * (2 * chain_len + npi + npo)]. *)

type ratios = { m : float; t : float }

val ratios :
  schedule -> baseline_nvec:int -> ratios
(** The paper's reported quantities: [t] = time ratio, [m] = memory ratio,
    both against a traditional run of [baseline_nvec] vectors on the same
    circuit. *)
