lib/scan/cost.mli:
