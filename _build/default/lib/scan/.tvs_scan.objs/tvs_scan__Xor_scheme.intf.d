lib/scan/xor_scheme.mli: Format
