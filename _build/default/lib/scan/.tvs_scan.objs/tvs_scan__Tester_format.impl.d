lib/scan/tester_format.ml: Array Buffer List Option Printf Protocol String
