lib/scan/chain.ml: Array Tvs_logic
