lib/scan/chain.mli: Tvs_logic
