lib/scan/tester_format.mli: Protocol
