lib/scan/protocol.ml: Array List Tvs_netlist Tvs_sim
