lib/scan/misr.mli: Tvs_logic
