lib/scan/cost.ml: List
