lib/scan/lfsr.ml: Array List Misr Tvs_logic
