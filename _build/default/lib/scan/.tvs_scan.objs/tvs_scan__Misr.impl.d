lib/scan/misr.ml: Array List Tvs_logic
