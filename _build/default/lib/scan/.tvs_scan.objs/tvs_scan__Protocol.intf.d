lib/scan/protocol.mli: Tvs_netlist
