lib/scan/lfsr.mli: Tvs_logic
