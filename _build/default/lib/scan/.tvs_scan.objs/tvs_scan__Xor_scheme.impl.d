lib/scan/xor_scheme.ml: Array Chain Format List Printf String
