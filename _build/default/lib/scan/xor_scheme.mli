(** Response observation / write-back schemes of the paper's Section 6.2.

    - [Nxor]: plain implementation. The captured response is written back to
      the chain unchanged; the observed stream is the raw bits leaving the
      tail.
    - [Vxor] (vertical XOR): the value written back into each cell is the
      captured response XORed with the test vector that was sitting in that
      cell — [R ⊕ T]. A hidden fault is erased only when
      [R_f ⊕ T_f = R ⊕ T], preserving fault effects that plain write-back
      would overwrite. Costs one XOR gate per scan cell.
    - [Hxor n] (horizontal XOR): write-back is plain, but the scan-out pin
      carries the XOR of [n] taps spaced evenly along the chain, so a shift
      of [L/n] steps sweeps the whole chain past some tap. Costs [n-1] XOR
      gates total. *)

type t = Nxor | Vxor | Hxor of int

val equal : t -> t -> bool
val to_string : t -> string
val of_string : string -> t option
(** "nxor" | "vxor" | "hxor:<taps>" (case-insensitive). *)

val writeback : t -> applied_scan:bool array -> capture:bool array -> bool array
(** Chain contents after the capture cycle. [applied_scan] is the scan part
    of the vector that was applied (the pre-capture chain contents). *)

val observe : t -> contents:bool array -> fresh:bool array -> bool array
(** The bit stream the tester sees while shifting
    [s = Array.length fresh] steps: for [Nxor]/[Vxor] the raw tail stream,
    for [Hxor n] the tap-XOR stream computed step by step (fresh bits
    entering the head participate once they pass a tap). *)

val taps : int -> chain_len:int -> int list
(** Tap cell indices of [Hxor n] on a chain of the given length: the tail
    cell plus [n-1] evenly spaced predecessors. Exposed for tests. *)

val hardware_cost : t -> chain_len:int -> int
(** Number of XOR gates the scheme adds (0 for [Nxor]). *)

val pp : Format.formatter -> t -> unit
