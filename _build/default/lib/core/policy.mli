(** Tuning knobs of the stitched generation flow (paper Section 6).

    Two orthogonal axes: how many bits to shift per cycle (Section 6.1) and
    how to select the next test vector (Section 6.3). *)

type shift_policy =
  | Fixed of int  (** the same shift size every cycle (after the full first load) *)
  | Variable of { initial : int; growth : growth; max : int; decay : bool }
      (** start small; grow when no constrained vector can catch new faults;
          with [decay], shrink back toward [initial] after successful cycles
          so the schedule spends most of its time at cheap shift sizes *)

and growth = Add of int | Double

type selection =
  | Random_order  (** first generatable target from a shuffled fault order *)
  | Hardness_order  (** hardest-to-test faults first (SCOAP estimate) *)
  | Most_faults of int
      (** try up to [k] candidate targets, keep the vector differentiating
          the most uncaught faults (the paper's greedy winner) *)
  | Weighted of int
      (** like [Most_faults] but each fault weighs its SCOAP hardness,
          the paper's combination of the two schemes *)

val grow : shift_policy -> current:int -> int option
(** Next shift size after a stuck cycle: [None] when the policy cannot grow
    (fixed, or already at max). The result is clamped to [max]. *)

val initial_shift : shift_policy -> int
(** Shift size for the first post-load cycle. *)

val shrink : shift_policy -> current:int -> int
(** Shift size after a successful cycle: one growth step back toward
    [initial] for a decaying variable policy, [current] otherwise. *)

val describe_shift : shift_policy -> string
val describe_selection : selection -> string

val default_variable : chain_len:int -> shift_policy
(** The paper's preferred scheme: start at [max 1 (chain_len / 8)], double
    when stuck, decay after success, capped at [chain_len]. *)
