module Circuit = Tvs_netlist.Circuit
module Ternary = Tvs_logic.Ternary
module Cube = Tvs_atpg.Cube
module Cost = Tvs_scan.Cost
module Fault_sim = Tvs_fault.Fault_sim
module Parallel = Tvs_sim.Parallel
module Rng = Tvs_util.Rng

type result = {
  partitions : int;
  parallel_vectors : int;
  serial_vectors : int;
  time : int;
  memory : int;
  time_ratio : float;
  memory_ratio : float;
  coverage : float;
}

(* Replicate a short pattern across the partitions (remainder cells continue
   the pattern cyclically, as a physical broadcast would). *)
let replicate ~chain_len ~seg pattern =
  Array.init chain_len (fun i -> pattern.(i mod seg))

let run c ~rng ~partitions ~faults ~fallback ?(max_parallel = 512) ?(giveup = 10) () =
  if partitions <= 0 then invalid_arg "Broadcast_scan.run: partitions must be positive";
  let chain_len = Circuit.num_flops c in
  let seg = max 1 (chain_len / partitions) in
  let npi = Circuit.num_inputs c and npo = Circuit.num_outputs c in
  let sim = Fault_sim.create c in
  let n_faults = Array.length faults in
  let detected = Array.make n_faults false in
  let drop vec_pi vec_scan =
    let news = ref 0 in
    Array.iteri
      (fun i hit ->
        if hit && not detected.(i) then begin
          detected.(i) <- true;
          incr news
        end)
      (Fault_sim.detected_faults sim ~pi:vec_pi ~state:vec_scan faults);
    !news
  in
  (* Phase 1: random broadcast patterns, as the scheme's parallel mode
     applies; stop after [giveup] consecutive useless patterns. *)
  let parallel = ref 0 in
  let useless = ref 0 in
  while !parallel + !useless < max_parallel && !useless < giveup do
    let pattern = Array.init seg (fun _ -> Rng.bool rng) in
    let scan = replicate ~chain_len ~seg pattern in
    let pi = Array.init npi (fun _ -> Rng.bool rng) in
    if drop pi scan > 0 then begin
      incr parallel;
      useless := 0
    end
    else incr useless
  done;
  (* Phase 2: serial full-shift vectors from the known-good set cover the
     remaining faults (greedy in order). *)
  let serial = ref 0 in
  Array.iter
    (fun (v : Cube.vector) ->
      let remaining = Array.exists (fun d -> not d) detected in
      if remaining && drop v.Cube.pi v.Cube.scan > 0 then incr serial)
    fallback;
  let covered = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 detected in
  let n = !parallel + !serial in
  (* Parallel loads cost one partition length; their responses drain through
     per-partition outputs into a MISR (hardware this scheme needs and the
     stitched flow does not), so unloads overlap loads. Serial vectors cost
     a full chain length each. *)
  let time = (!parallel * seg) + (!serial * chain_len) + chain_len in
  let memory = (!parallel * (seg + npi + npo)) + (!serial * ((2 * chain_len) + npi + npo)) in
  let base_time = Cost.baseline_time ~chain_len ~nvec:n in
  let base_memory = Cost.baseline_memory ~chain_len ~npi ~npo ~nvec:n in
  {
    partitions;
    parallel_vectors = !parallel;
    serial_vectors = !serial;
    time;
    memory;
    time_ratio = (if base_time = 0 then 1.0 else float_of_int time /. float_of_int base_time);
    memory_ratio =
      (if base_memory = 0 then 1.0 else float_of_int memory /. float_of_int base_memory);
    coverage = (if n_faults = 0 then 1.0 else float_of_int covered /. float_of_int n_faults);
  }
