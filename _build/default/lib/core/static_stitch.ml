module Circuit = Tvs_netlist.Circuit
module Ternary = Tvs_logic.Ternary
module Parallel = Tvs_sim.Parallel
module Cube = Tvs_atpg.Cube
module Cost = Tvs_scan.Cost
module Rng = Tvs_util.Rng

type result = {
  order : int array;
  shifts : int list;
  stimulus_bits : int;
  memory : int;
  memory_ratio : float;
  time_ratio : float;
}

(* Smallest number of fresh bits that realises [cube]'s scan part on top of
   the retained [contents]: every cell at or beyond the cut must already hold
   a compatible value. *)
let min_shift ~contents (cube : Cube.t) =
  let ln = Array.length contents in
  let fits s =
    let ok = ref true in
    for i = s to ln - 1 do
      if not (Ternary.compatible cube.Cube.scan.(i) (Ternary.of_bool contents.(i - s))) then
        ok := false
    done;
    !ok
  in
  let rec search s = if fits s then s else search (s + 1) in
  search 0

let reorder c ~rng ~cubes:(cubes : Cube.t array) =
  let n = Array.length cubes in
  if n = 0 then invalid_arg "Static_stitch.reorder: empty cube set";
  let ln = Circuit.num_flops c in
  let sim = Parallel.create c in
  let used = Array.make n false in
  let order = Array.make n (-1) in
  let shifts = ref [] in
  let contents = ref (Array.make ln false) in
  let fill_bit = function
    | Ternary.Zero -> false
    | Ternary.One -> true
    | Ternary.X -> Rng.bool rng
  in
  let apply idx s =
    let cube = cubes.(idx) in
    let scan =
      Array.init ln (fun i ->
          if i < s then fill_bit cube.Cube.scan.(i) else !contents.(i - s))
    in
    let pi = Array.map fill_bit cube.Cube.pi in
    let _, capture = Parallel.run_single sim ~pi ~state:scan in
    contents := capture;
    shifts := s :: !shifts
  in
  (* The first vector is always a full load. *)
  order.(0) <- 0;
  used.(0) <- true;
  apply 0 ln;
  for k = 1 to n - 1 do
    let best = ref None in
    for idx = 0 to n - 1 do
      if not used.(idx) then begin
        let s = min_shift ~contents:!contents cubes.(idx) in
        match !best with
        | Some (_, bs) when bs <= s -> ()
        | Some _ | None -> best := Some (idx, s)
      end
    done;
    match !best with
    | Some (idx, s) ->
        used.(idx) <- true;
        order.(k) <- idx;
        apply idx s
    | None -> assert false
  done;
  let shifts = List.rev !shifts in
  let stimulus_bits = List.fold_left ( + ) 0 shifts in
  let npi = Circuit.num_inputs c and npo = Circuit.num_outputs c in
  (* Separate-chain model: responses unload in full through their own chain;
     memory = compressed stimulus + full responses + per-vector I/O. *)
  let memory = stimulus_bits + (n * ln) + (n * (npi + npo)) in
  let baseline = Cost.baseline_memory ~chain_len:ln ~npi ~npo ~nvec:n in
  {
    order;
    shifts;
    stimulus_bits;
    memory;
    memory_ratio = (if baseline = 0 then 1.0 else float_of_int memory /. float_of_int baseline);
    time_ratio = 1.0;
  }
