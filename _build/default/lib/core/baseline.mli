(** The traditional full-shift flow the paper compares against: every vector
    is completely shifted through the chain, every response completely
    shifted out. Provides the [aTV] vector count and the cost denominators
    for the [m]/[t] ratios. *)

type t = {
  num_vectors : int;  (** aTV *)
  vectors : Tvs_atpg.Cube.vector array;
  cubes : Tvs_atpg.Cube.t array;  (** the unfilled cubes behind [vectors] *)
  redundant : Tvs_fault.Fault.t list;
  aborted : Tvs_fault.Fault.t list;
  coverage : float;
  time : int;  (** shift cycles *)
  memory : int;  (** stored stimulus + response bits *)
}

val run :
  ?options:Tvs_atpg.Generator.options ->
  rng:Tvs_util.Rng.t ->
  Tvs_atpg.Podem.ctx ->
  faults:Tvs_fault.Fault.t array ->
  t

val testable_faults : t -> Tvs_fault.Fault.t array -> Tvs_fault.Fault.t array
(** The fault list minus the redundant and aborted faults — the universe the
    stitched flow is asked to cover (the paper excludes the redundant
    E-F/1 the same way). *)
