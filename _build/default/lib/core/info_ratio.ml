let tolerance = 0.05

let info_of ~s ~chain_len ~npi =
  float_of_int (s + npi) /. float_of_int (chain_len + npi)

let shift_for ~num ~den ~chain_len ~npi =
  assert (den > 0 && num > 0);
  let target = float_of_int num /. float_of_int den in
  let exact = (target *. float_of_int (chain_len + npi)) -. float_of_int npi in
  let s = max 1 (min chain_len (int_of_float (Float.round exact))) in
  let achieved = info_of ~s ~chain_len ~npi in
  if Float.abs (achieved -. target) <= tolerance then Some s else None
