module Circuit = Tvs_netlist.Circuit
module Fault = Tvs_fault.Fault
module Generator = Tvs_atpg.Generator
module Podem = Tvs_atpg.Podem
module Cost = Tvs_scan.Cost

type t = {
  num_vectors : int;
  vectors : Tvs_atpg.Cube.vector array;
  cubes : Tvs_atpg.Cube.t array;
  redundant : Fault.t list;
  aborted : Fault.t list;
  coverage : float;
  time : int;
  memory : int;
}

let run ?options ~rng ctx ~faults =
  let c = Podem.circuit ctx in
  let gen = Generator.generate ?options ~rng ctx faults in
  let nvec = Generator.num_vectors gen in
  let chain_len = Circuit.num_flops c in
  {
    num_vectors = nvec;
    vectors = gen.Generator.vectors;
    cubes = gen.Generator.cubes;
    redundant = gen.Generator.redundant;
    aborted = gen.Generator.aborted;
    coverage = Generator.coverage gen;
    time = Cost.baseline_time ~chain_len ~nvec;
    memory =
      Cost.baseline_memory ~chain_len ~npi:(Circuit.num_inputs c) ~npo:(Circuit.num_outputs c)
        ~nvec;
  }

let testable_faults t faults =
  let excluded f =
    List.exists (Fault.equal f) t.redundant || List.exists (Fault.equal f) t.aborted
  in
  Array.of_list (List.filter (fun f -> not (excluded f)) (Array.to_list faults))
