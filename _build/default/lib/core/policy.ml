type shift_policy =
  | Fixed of int
  | Variable of { initial : int; growth : growth; max : int; decay : bool }

and growth = Add of int | Double

type selection =
  | Random_order
  | Hardness_order
  | Most_faults of int
  | Weighted of int

let grow policy ~current =
  match policy with
  | Fixed _ -> None
  | Variable { growth; max = cap; _ } ->
      if current >= cap then None
      else
        let next = match growth with Add k -> current + k | Double -> current * 2 in
        Some (min cap (max (current + 1) next))

let initial_shift = function Fixed s -> s | Variable { initial; _ } -> initial

let shrink policy ~current =
  match policy with
  | Fixed s -> s
  | Variable { decay = false; _ } -> current
  | Variable { initial; growth; decay = true; _ } ->
      let back = match growth with Add k -> current - k | Double -> current / 2 in
      max initial back

let describe_shift = function
  | Fixed s -> Printf.sprintf "fixed:%d" s
  | Variable { initial; growth; max; decay } ->
      let g = match growth with Add k -> Printf.sprintf "+%d" k | Double -> "x2" in
      Printf.sprintf "variable:%d%s<=%d%s" initial g max (if decay then "~" else "")

let describe_selection = function
  | Random_order -> "random"
  | Hardness_order -> "hardness"
  | Most_faults k -> Printf.sprintf "most-faults:%d" k
  | Weighted k -> Printf.sprintf "weighted:%d" k

let default_variable ~chain_len =
  let step = max 1 (chain_len / 8) in
  Variable { initial = step; growth = Add step; max = chain_len; decay = true }
