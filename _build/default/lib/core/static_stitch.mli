(** Static test-set stitching by vector reordering — the prior-art baseline
    of the paper's Section 2 (Su & Hwang's serial-scan compression).

    Instead of generating vectors under response constraints, this scheme
    takes a {e precomputed} test set and greedily orders it so each vector
    overlaps maximally with the response the previous vector leaves in the
    chain. Unspecified cube bits count as wildcards, exactly as in the
    original method.

    The original assumes {e separate} scan-in and scan-out chains: responses
    are fully unloaded through their own chain while the next stimulus loads,
    so observability is untouched and test {e time} per vector stays a full
    chain length — only stimulus {e volume} shrinks. The comparison study in
    the harness uses this module to reproduce the paper's qualitative
    argument: reordering alone compresses memory modestly and time not at
    all, while stitched {e generation} compresses both on a single chain. *)

type result = {
  order : int array;  (** permutation applied to the input cube set *)
  shifts : int list;  (** fresh-bit count per vector, in application order *)
  stimulus_bits : int;  (** total scan-in bits = sum of shifts *)
  memory : int;  (** full tester memory under the separate-chain model *)
  memory_ratio : float;  (** against the unordered full-shift baseline *)
  time_ratio : float;  (** always 1.0: loads overlap full unloads *)
}

val reorder :
  Tvs_netlist.Circuit.t ->
  rng:Tvs_util.Rng.t ->
  cubes:Tvs_atpg.Cube.t array ->
  result
(** Greedy nearest-neighbour ordering. Don't-care bits are filled randomly
    once the overlap has been fixed; responses are obtained by simulation.
    Raises [Invalid_argument] on an empty cube set. *)
