lib/core/info_ratio.mli:
