lib/core/policy.mli:
