lib/core/info_ratio.ml: Float
