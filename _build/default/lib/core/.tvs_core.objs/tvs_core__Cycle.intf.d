lib/core/cycle.mli: Tvs_fault Tvs_logic Tvs_netlist Tvs_scan
