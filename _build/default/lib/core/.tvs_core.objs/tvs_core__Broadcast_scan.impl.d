lib/core/broadcast_scan.ml: Array Tvs_atpg Tvs_fault Tvs_logic Tvs_netlist Tvs_scan Tvs_sim Tvs_util
