lib/core/baseline.mli: Tvs_atpg Tvs_fault Tvs_util
