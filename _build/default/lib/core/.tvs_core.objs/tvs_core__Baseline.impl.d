lib/core/baseline.ml: Array List Tvs_atpg Tvs_fault Tvs_netlist Tvs_scan
