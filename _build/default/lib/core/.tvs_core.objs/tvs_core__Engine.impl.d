lib/core/engine.ml: Array Cycle List Policy Tvs_atpg Tvs_fault Tvs_netlist Tvs_scan Tvs_util
