lib/core/cycle.ml: Array List Tvs_fault Tvs_logic Tvs_netlist Tvs_scan Tvs_sim
