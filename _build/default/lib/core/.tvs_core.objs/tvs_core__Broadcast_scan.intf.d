lib/core/broadcast_scan.mli: Tvs_atpg Tvs_fault Tvs_netlist Tvs_util
