lib/core/static_stitch.mli: Tvs_atpg Tvs_netlist Tvs_util
