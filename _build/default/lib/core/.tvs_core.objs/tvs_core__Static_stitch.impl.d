lib/core/static_stitch.ml: Array List Tvs_atpg Tvs_logic Tvs_netlist Tvs_scan Tvs_sim Tvs_util
