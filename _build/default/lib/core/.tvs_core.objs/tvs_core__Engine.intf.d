lib/core/engine.mli: Policy Tvs_atpg Tvs_fault Tvs_scan Tvs_util
