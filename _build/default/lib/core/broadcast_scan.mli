(** Parallel/Serial Full Scan — the paper's prior art [3] (Hamzaoglu &
    Patel, FTCS 1999), as a measurable baseline.

    The chain is split into [partitions] equal segments. In {e parallel}
    mode one short load broadcasts the same data to every segment (cost:
    one segment length per vector on both time and stimulus volume, with a
    MISR draining the per-segment responses — hardware the stitched flow
    does not need). Faults the broadcast patterns cannot reach fall back to
    {e serial} mode: ordinary full-shift vectors taken greedily from a
    known-good test set, preserving full achievable coverage as in the
    original scheme.

    The comparison study runs this next to {!Static_stitch} and the
    stitched engine: broadcast helps exactly as far as random replicated
    patterns reach, while stitching manufactures its overlap per fault. *)

type result = {
  partitions : int;
  parallel_vectors : int;  (** applied in broadcast mode *)
  serial_vectors : int;  (** full-shift fallbacks *)
  time : int;  (** shift cycles under the two-mode schedule *)
  memory : int;  (** stored bits *)
  time_ratio : float;  (** against the all-serial baseline for the same vector count *)
  memory_ratio : float;
  coverage : float;  (** detected fraction of the fault list *)
}

val run :
  Tvs_netlist.Circuit.t ->
  rng:Tvs_util.Rng.t ->
  partitions:int ->
  faults:Tvs_fault.Fault.t array ->
  fallback:Tvs_atpg.Cube.vector array ->
  ?max_parallel:int ->
  ?giveup:int ->
  unit ->
  result
(** [fallback] is a test set known to cover the faults (typically the
    baseline's); [max_parallel] caps the broadcast phase, which also stops
    after [giveup] consecutive useless patterns. *)
