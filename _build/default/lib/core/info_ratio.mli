(** Shift sizes from target "info" ratios (paper Table 2).

    All compression schemes trade on representing a long sequence with fewer
    bits, so Table 2 compares fixed-shift configurations at equal data ratios
    per cycle: info = (s + #PI) / (L + #PI) — the specified bits a cycle
    consumes over the bits a traditional cycle consumes. Because the #PI term
    is incompressible, low ratios are unattainable for circuits whose scan
    chain is short relative to their input count; the paper prints '/' for
    those entries. *)

val shift_for : num:int -> den:int -> chain_len:int -> npi:int -> int option
(** Smallest-error shift size [s] with [1 <= s <= chain_len] such that
    [(s + npi) / (chain_len + npi)] is closest to [num/den]; [None] when even
    clamping to the valid range misses the target by more than
    {!tolerance}. *)

val info_of : s:int -> chain_len:int -> npi:int -> float

val tolerance : float
(** Maximum acceptable |achieved - target| (0.05). *)
