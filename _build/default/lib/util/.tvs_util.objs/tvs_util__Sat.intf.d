lib/util/sat.mli:
