lib/util/rng.mli:
