lib/util/table.mli:
