lib/util/sat.ml: Array List
