(** Minimal ASCII table renderer for experiment reports.

    Used by the bench harness to print rows in the same layout as the paper's
    tables. Cells are strings; columns are sized to their widest cell. *)

type align = Left | Right | Center

type t

val create : ?align:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [align] gives per-column alignment; missing entries default to [Right],
    except the first column which defaults to [Left]. *)

val add_row : t -> string list -> unit
(** Append a data row. Short rows are padded with empty cells. *)

val add_rule : t -> unit
(** Append a horizontal separator line. *)

val render : t -> string
(** Render the table, headers first, with a rule below the header row. *)

val print : t -> unit
(** [render] to stdout followed by a newline flush. *)

val fmt_ratio : float -> string
(** Format a ratio the way the paper prints them: two decimals, e.g. "0.73". *)
