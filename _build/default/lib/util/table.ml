type align = Left | Right | Center

type row = Cells of string list | Rule

type t = {
  headers : string list;
  align : align list;
  mutable rows : row list; (* reversed *)
  ncols : int;
}

let create ?align headers =
  let ncols = List.length headers in
  let align =
    match align with
    | Some a -> a
    | None -> (
        match headers with [] -> [] | _ :: rest -> Left :: List.map (fun _ -> Right) rest)
  in
  { headers; align; rows = []; ncols }

let add_row t cells = t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad_to n cells =
  let len = List.length cells in
  if len >= n then cells else cells @ List.init (n - len) (fun _ -> "")

let column_widths t rows =
  let widths = Array.make t.ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if i < t.ncols then widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Rule -> ()) rows;
  widths

let aligned align width s =
  let pad = width - String.length s in
  if pad <= 0 then s
  else
    match align with
    | Left -> s ^ String.make pad ' '
    | Right -> String.make pad ' ' ^ s
    | Center ->
        let left = pad / 2 in
        String.make left ' ' ^ s ^ String.make (pad - left) ' '

let align_of t i = match List.nth_opt t.align i with Some a -> a | None -> Right

let render t =
  let rows = List.rev t.rows in
  let widths = column_widths t rows in
  let buf = Buffer.create 256 in
  let emit_cells cells =
    let cells = pad_to t.ncols cells in
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (aligned (align_of t i) widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (t.ncols - 1)) in
  let emit_rule () =
    Buffer.add_string buf (String.make (max 1 total_width) '-');
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> emit_rule ()) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_ratio r = Printf.sprintf "%.2f" r
