type t = {
  circuit : Circuit.t;
  scan_en : Circuit.net;
  scan_in : Circuit.net;
  scan_out_index : int;
}

(* Rebuild the circuit net by net, rewriting every flop's data input to
   MUX(scan_en, previous cell's Q, functional D). Net ids change; the map
   from old to new ids is kept during construction. *)
let insert c =
  Array.iter
    (fun reserved ->
      if Circuit.find_net_opt c reserved <> None then
        raise (Circuit.Build_error (reserved ^ " is a reserved scan pin name")))
    [| "scan_en"; "scan_in"; "scan_out_tap" |];
  if Circuit.num_flops c = 0 then raise (Circuit.Build_error "scan insertion needs flip-flops");
  let b = Circuit.Builder.create (Circuit.name c ^ "_scan") in
  let map = Array.make (Circuit.num_nets c) (-1) in
  (* Sources first: original PIs, then the mode pins, then all flops
     (forward-declared so functional logic can reference their Qs). *)
  Array.iter (fun net -> map.(net) <- Circuit.Builder.input b (Circuit.net_name c net)) (Circuit.inputs c);
  let scan_en = Circuit.Builder.input b "scan_en" in
  let scan_in = Circuit.Builder.input b "scan_in" in
  Array.iter
    (fun net -> map.(net) <- Circuit.Builder.flop_forward b (Circuit.net_name c net))
    (Circuit.flops c);
  (* Combinational logic in topological order. *)
  Array.iter
    (fun net ->
      match Circuit.driver c net with
      | Circuit.Gate_node (kind, ins) ->
          map.(net) <-
            Circuit.Builder.gate b ~name:(Circuit.net_name c net) kind
              (Array.to_list (Array.map (fun i -> map.(i)) ins))
      | Circuit.Const v -> map.(net) <- Circuit.Builder.const b ~name:(Circuit.net_name c net) v
      | Circuit.Primary_input | Circuit.Flip_flop _ -> ())
    (Circuit.topo_order c);
  (* Scan multiplexers: cell 0 shifts from scan_in, cell i from cell i-1. *)
  let not_se = Circuit.Builder.gate b ~name:"scan_en_n" Gate.Not [ scan_en ] in
  let flops = Circuit.flops c in
  Array.iteri
    (fun i fnet ->
      match Circuit.driver c fnet with
      | Circuit.Flip_flop d ->
          let shift_src = if i = 0 then scan_in else map.(flops.(i - 1)) in
          let cell = Circuit.net_name c fnet in
          let shift_path =
            Circuit.Builder.gate b ~name:(cell ^ "_sh") Gate.And [ scan_en; shift_src ]
          in
          let func_path =
            Circuit.Builder.gate b ~name:(cell ^ "_fn") Gate.And [ not_se; map.(d) ]
          in
          let mux = Circuit.Builder.gate b ~name:(cell ^ "_mux") Gate.Or [ shift_path; func_path ] in
          Circuit.Builder.connect_flop b map.(fnet) mux
      | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ ->
          raise (Circuit.Build_error "flop list corrupt"))
    flops;
  Array.iter (fun net -> Circuit.Builder.mark_output b map.(net)) (Circuit.outputs c);
  (* The scan-out pin observes the tail cell through a buffer so the tap has
     its own net name. *)
  let tail = map.(flops.(Array.length flops - 1)) in
  let tap = Circuit.Builder.gate b ~name:"scan_out_tap" Gate.Buf [ tail ] in
  Circuit.Builder.mark_output b tap;
  {
    circuit = Circuit.Builder.finish b;
    scan_en;
    scan_in;
    scan_out_index = Circuit.num_outputs c;
  }
