type kind = And | Nand | Or | Nor | Xor | Xnor | Not | Buf

let equal (a : kind) b = a = b

let arity_ok kind n =
  match kind with
  | Not | Buf -> n = 1
  | And | Nand | Or | Nor -> n >= 1
  | Xor | Xnor -> n >= 2

let of_string s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "NOT" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | _ -> None

let to_string = function
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buf -> "BUFF"

let fold_bool op seed inputs =
  let acc = ref seed in
  Array.iter (fun v -> acc := op !acc v) inputs;
  !acc

let eval_bool kind inputs =
  match kind with
  | And -> fold_bool ( && ) true inputs
  | Nand -> not (fold_bool ( && ) true inputs)
  | Or -> fold_bool ( || ) false inputs
  | Nor -> not (fold_bool ( || ) false inputs)
  | Xor -> fold_bool ( <> ) false inputs
  | Xnor -> not (fold_bool ( <> ) false inputs)
  | Not -> not inputs.(0)
  | Buf -> inputs.(0)

let eval_ternary kind inputs =
  let open Tvs_logic.Ternary in
  match kind with
  | And -> fold_bool t_and One inputs
  | Nand -> t_not (fold_bool t_and One inputs)
  | Or -> fold_bool t_or Zero inputs
  | Nor -> t_not (fold_bool t_or Zero inputs)
  | Xor -> fold_bool t_xor Zero inputs
  | Xnor -> t_not (fold_bool t_xor Zero inputs)
  | Not -> t_not inputs.(0)
  | Buf -> inputs.(0)

let eval_fivev kind inputs =
  let open Tvs_logic.Fivev in
  match kind with
  | And -> fold_bool f_and One inputs
  | Nand -> f_not (fold_bool f_and One inputs)
  | Or -> fold_bool f_or Zero inputs
  | Nor -> f_not (fold_bool f_or Zero inputs)
  | Xor -> fold_bool f_xor Zero inputs
  | Xnor -> f_not (fold_bool f_xor Zero inputs)
  | Not -> f_not inputs.(0)
  | Buf -> inputs.(0)

let eval_word kind inputs mask =
  let fold op seed =
    let acc = ref seed in
    Array.iter (fun v -> acc := op !acc v) inputs;
    !acc
  in
  let v =
    match kind with
    | And -> fold ( land ) mask
    | Nand -> lnot (fold ( land ) mask)
    | Or -> fold ( lor ) 0
    | Nor -> lnot (fold ( lor ) 0)
    | Xor -> fold ( lxor ) 0
    | Xnor -> lnot (fold ( lxor ) 0)
    | Not -> lnot inputs.(0)
    | Buf -> inputs.(0)
  in
  v land mask

let controlling_value = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Xor | Xnor | Not | Buf -> None

let inversion = function
  | Nand | Nor | Xnor | Not -> true
  | And | Or | Xor | Buf -> false

let pp fmt k = Format.pp_print_string fmt (to_string k)
