(** Structural statistics of a circuit, as reported by the CLI and recorded
    alongside every experiment. *)

type t = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_flops : int;
  num_gates : int;
  num_nets : int;
  depth : int;
  gate_histogram : (Gate.kind * int) list;  (** sorted by descending count *)
  max_fanin : int;
  max_fanout : int;
  num_stems_with_fanout : int;  (** nets with fanout >= 2: branch-fault sites *)
}

val compute : Circuit.t -> t

val pp : Format.formatter -> t -> unit
