(** Gate kinds of the structural netlist.

    The set matches the ISCAS89 `.bench` vocabulary. [And]/[Nand]/[Or]/[Nor]
    accept two or more inputs; [Xor]/[Xnor] are n-input parity gates;
    [Not]/[Buf] are unary. *)

type kind = And | Nand | Or | Nor | Xor | Xnor | Not | Buf

val equal : kind -> kind -> bool

val arity_ok : kind -> int -> bool
(** Whether a gate of this kind may have the given number of inputs. *)

val of_string : string -> kind option
(** Case-insensitive `.bench` keyword, e.g. "NAND". [None] for unknown
    keywords (including "DFF", which is not a gate). *)

val to_string : kind -> string
(** Upper-case `.bench` keyword. *)

val eval_bool : kind -> bool array -> bool
(** Evaluate on concrete boolean inputs. *)

val eval_ternary : kind -> Tvs_logic.Ternary.t array -> Tvs_logic.Ternary.t

val eval_fivev : kind -> Tvs_logic.Fivev.t array -> Tvs_logic.Fivev.t

val eval_word : kind -> int array -> int -> int
(** [eval_word kind inputs mask] evaluates bit-parallel over machine words
    restricted to [mask] (bits outside [mask] are returned as 0). Each bit
    lane is an independent machine. *)

val controlling_value : kind -> bool option
(** The input value that forces the output regardless of other inputs:
    0 for AND/NAND, 1 for OR/NOR, none for XOR/XNOR/NOT/BUF. *)

val inversion : kind -> bool
(** Whether the gate inverts its controlled/folded result
    (true for NAND, NOR, XNOR, NOT). *)

val pp : Format.formatter -> kind -> unit
