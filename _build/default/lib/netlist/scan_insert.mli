(** Gate-level scan insertion.

    Turns a sequential circuit into its testable equivalent by giving every
    flip-flop a scan multiplexer: in shift mode (scan-enable high) the chain
    forms a shift register from a new [scan_in] primary input through the
    flops in scan order to a new [scan_out] primary output; in capture mode
    each flop loads its functional D input.

    The result is what a DFT tool would hand to the tester. The rest of this
    project works on the {e abstraction} (the combinational core plus
    {!Tvs_scan.Chain} mechanics); this module exists so the abstraction can
    be validated cycle-by-cycle against a real netlist — see
    {!Tvs_scan.Protocol} and [test/test_protocol.ml]. *)

type t = {
  circuit : Circuit.t;
  scan_en : Circuit.net;  (** new primary input *)
  scan_in : Circuit.net;  (** new primary input *)
  scan_out_index : int;  (** index of the new scan-out within [Circuit.outputs] *)
}
(** The inserted netlist. Original primary inputs keep their names and
    order; the two mode pins are appended; flip-flops keep their scan
    order. *)

val insert : Circuit.t -> t
(** Raises [Circuit.Build_error] if the circuit already uses the reserved
    names [scan_en] / [scan_in] / [scan_out_tap], or has no flip-flops. *)
