lib/netlist/circuit.ml: Array Bytes Char Format Gate Hashtbl Lazy List Printf Queue String
