lib/netlist/gate.ml: Array Format String Tvs_logic
