lib/netlist/stats.ml: Array Circuit Format Gate Hashtbl List Option
