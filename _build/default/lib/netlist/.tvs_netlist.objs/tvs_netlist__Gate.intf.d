lib/netlist/gate.mli: Format Tvs_logic
