lib/netlist/bench_format.ml: Array Buffer Circuit Filename Gate Hashtbl List Printf String
