lib/netlist/scan_insert.mli: Circuit
