lib/netlist/circuit.mli: Bytes Format Gate
