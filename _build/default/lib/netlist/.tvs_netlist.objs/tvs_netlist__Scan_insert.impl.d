lib/netlist/scan_insert.ml: Array Circuit Gate
