type t = {
  name : string;
  num_inputs : int;
  num_outputs : int;
  num_flops : int;
  num_gates : int;
  num_nets : int;
  depth : int;
  gate_histogram : (Gate.kind * int) list;
  max_fanin : int;
  max_fanout : int;
  num_stems_with_fanout : int;
}

let compute c =
  let histogram = Hashtbl.create 8 in
  let num_gates = ref 0 in
  let max_fanin = ref 0 in
  let max_fanout = ref 0 in
  let stems = ref 0 in
  for net = 0 to Circuit.num_nets c - 1 do
    (match Circuit.driver c net with
    | Circuit.Gate_node (kind, ins) ->
        incr num_gates;
        max_fanin := max !max_fanin (Array.length ins);
        Hashtbl.replace histogram kind (1 + Option.value ~default:0 (Hashtbl.find_opt histogram kind))
    | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> ());
    let fo = Array.length (Circuit.fanout c net) in
    max_fanout := max !max_fanout fo;
    if fo >= 2 then incr stems
  done;
  let gate_histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) histogram []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    name = Circuit.name c;
    num_inputs = Circuit.num_inputs c;
    num_outputs = Circuit.num_outputs c;
    num_flops = Circuit.num_flops c;
    num_gates = !num_gates;
    num_nets = Circuit.num_nets c;
    depth = Circuit.depth c;
    gate_histogram;
    max_fanin = !max_fanin;
    max_fanout = !max_fanout;
    num_stems_with_fanout = !stems;
  }

let pp fmt s =
  Format.fprintf fmt "@[<v>circuit %s@,  PI=%d PO=%d FF=%d gates=%d nets=%d depth=%d@,  max fanin=%d max fanout=%d stems(fanout>=2)=%d@,  gates:"
    s.name s.num_inputs s.num_outputs s.num_flops s.num_gates s.num_nets s.depth s.max_fanin
    s.max_fanout s.num_stems_with_fanout;
  List.iter (fun (k, n) -> Format.fprintf fmt " %s=%d" (Gate.to_string k) n) s.gate_histogram;
  Format.fprintf fmt "@]"
