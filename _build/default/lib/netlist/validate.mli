(** Structural sanity checks on circuits.

    [Circuit.Builder] already guarantees well-formed references and acyclic
    combinational logic; this module adds the checks a DFT flow cares about
    before investing compute in a netlist. *)

type issue =
  | Dangling_net of Circuit.net  (** drives nothing and is not an output *)
  | Undriven_output of Circuit.net  (** an output that is a constant *)
  | No_inputs
  | No_observation_points  (** neither outputs nor flip-flops *)
  | Trivial_gate of Circuit.net  (** single-input AND/OR family gate *)

val pp_issue : Circuit.t -> Format.formatter -> issue -> unit

val check : Circuit.t -> issue list
(** All issues found, in net order. An empty list means the circuit is clean
    for test generation. *)

val is_clean : Circuit.t -> bool
