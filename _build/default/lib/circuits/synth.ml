module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Rng = Tvs_util.Rng

(* Gate-kind distribution loosely following ISCAS89 netlists: the AND/OR
   families dominate, inverters are common, parity gates are rare. *)
let pick_kind rng =
  match Rng.int rng 100 with
  | n when n < 22 -> Gate.And
  | n when n < 44 -> Gate.Nand
  | n when n < 60 -> Gate.Or
  | n when n < 74 -> Gate.Nor
  | n when n < 88 -> Gate.Not
  | n when n < 93 -> Gate.Buf
  | n when n < 97 -> Gate.Xor
  | _ -> Gate.Xnor

let pick_arity rng kind =
  match kind with
  | Gate.Not | Gate.Buf -> 1
  | Gate.Xor | Gate.Xnor -> 2
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> (
      match Rng.int rng 10 with n when n < 6 -> 2 | n when n < 9 -> 3 | _ -> 4)

(* Pick a fanin net according to the profile style. [sources] are PI/FF
   nets; [gates] the gate nets created so far (newest last). *)
let pick_fanin rng style sources gates =
  let n_gates = Array.length gates in
  let from_sources () = Rng.pick rng sources in
  let recent_window = max 1 (n_gates / 4) in
  let from_recent () = gates.(n_gates - 1 - Rng.int rng recent_window) in
  let from_any_gate () = gates.(Rng.int rng n_gates) in
  if n_gates = 0 then from_sources ()
  else
    match style with
    | Profiles.Shallow -> if Rng.int rng 10 < 8 then from_sources () else from_any_gate ()
    | Profiles.Balanced ->
        if Rng.int rng 10 < 4 then from_sources ()
        else if Rng.int rng 10 < 7 then from_any_gate ()
        else from_recent ()
    | Profiles.Deep ->
        if Rng.int rng 10 < 2 then from_sources ()
        else if Rng.int rng 10 < 7 then from_recent ()
        else from_any_gate ()

let distinct_fanins rng style sources gates arity =
  let chosen = ref [] in
  let attempts = ref 0 in
  while List.length !chosen < arity && !attempts < arity * 8 do
    incr attempts;
    let net = pick_fanin rng style sources gates in
    if not (List.mem net !chosen) then chosen := net :: !chosen
  done;
  (* Fall back to whatever we have; a 1-input AND is rejected by the
     builder, so pad from sources if the pool was too small. *)
  let rec pad () =
    if List.length !chosen < min arity 2 then begin
      let net = Rng.pick rng sources in
      if not (List.mem net !chosen) || Array.length sources = 1 then chosen := net :: !chosen;
      pad ()
    end
  in
  pad ();
  List.rev !chosen

let generate (profile : Profiles.t) =
  let rng = Rng.of_string ("synth:" ^ profile.name) in
  let b = Circuit.Builder.create profile.name in
  let pis = Array.init profile.npi (fun i -> Circuit.Builder.input b (Printf.sprintf "PI%d" i)) in
  let ffs =
    Array.init profile.nff (fun i -> Circuit.Builder.flop_forward b (Printf.sprintf "FF%d" i))
  in
  let sources = Array.append pis ffs in
  let consumed = Hashtbl.create (profile.ngates * 2) in
  let consume nets = List.iter (fun n -> Hashtbl.replace consumed n ()) nets in
  let gates = ref [] and n_gates = ref 0 in
  let gates_arr () = Array.of_list (List.rev !gates) in
  for g = 0 to profile.ngates - 1 do
    let kind = pick_kind rng in
    let arity = pick_arity rng kind in
    let fanins = distinct_fanins rng profile.style sources (gates_arr ()) arity in
    (* Guarantee every primary input is consumed: the first [npi] multi-input
       gates each adopt one PI. *)
    let fanins =
      if g < profile.npi && arity >= 2 && not (List.mem pis.(g) fanins) then
        pis.(g) :: List.tl fanins
      else fanins
    in
    let kind = if List.length fanins = 1 then (if Rng.bool rng then Gate.Not else Gate.Buf) else kind in
    let net = Circuit.Builder.gate b ~name:(Printf.sprintf "G%d" g) kind fanins in
    consume fanins;
    gates := net :: !gates;
    incr n_gates
  done;
  let gate_nets = gates_arr () in
  (* Sinks prefer dangling nets so nothing is left undriven/unobserved. *)
  let dangling () =
    Array.to_list gate_nets |> List.filter (fun n -> not (Hashtbl.mem consumed n))
  in
  let dangling_pool = ref (Array.of_list (dangling ())) in
  Rng.shuffle rng !dangling_pool;
  let pool_pos = ref 0 in
  let next_sink () =
    if !pool_pos < Array.length !dangling_pool then begin
      let n = (!dangling_pool).(!pool_pos) in
      incr pool_pos;
      n
    end
    else gate_nets.(Rng.int rng (Array.length gate_nets))
  in
  Array.iter
    (fun q ->
      let d = next_sink () in
      Circuit.Builder.connect_flop b q d;
      Hashtbl.replace consumed d ())
    ffs;
  (* Primary outputs: distinct where possible, one slot reserved for the
     parity collapse of any remaining dangling nets (including unused PIs,
     which can occur when gates are scarce). *)
  let leftovers =
    dangling () @ (Array.to_list pis |> List.filter (fun n -> not (Hashtbl.mem consumed n)))
  in
  let parity_net =
    (* Balanced XOR reduction so the collapse tree adds only log-depth. *)
    let counter = ref 0 in
    let rec reduce = function
      | [] -> None
      | [ single ] -> Some single
      | nets ->
          let rec pair = function
            | x :: y :: rest ->
                let g =
                  Circuit.Builder.gate b ~name:(Printf.sprintf "COLLAPSE%d" !counter) Gate.Xor [ x; y ]
                in
                incr counter;
                Hashtbl.replace consumed x ();
                Hashtbl.replace consumed y ();
                g :: pair rest
            | ([ _ ] | []) as tail -> tail
          in
          reduce (pair nets)
    in
    reduce leftovers
  in
  let chosen_po = Hashtbl.create profile.npo in
  let n_po = ref 0 in
  (match parity_net with
  | Some net when profile.npo > 0 ->
      Circuit.Builder.mark_output b net;
      Hashtbl.replace chosen_po net ();
      Hashtbl.replace consumed net ();
      incr n_po
  | Some _ | None -> ());
  while !n_po < profile.npo do
    let cand = next_sink () in
    if not (Hashtbl.mem chosen_po cand) || !pool_pos >= Array.length !dangling_pool then begin
      if not (Hashtbl.mem chosen_po cand) then begin
        Circuit.Builder.mark_output b cand;
        Hashtbl.replace chosen_po cand ();
        Hashtbl.replace consumed cand ();
        incr n_po
      end
      else begin
        (* Exhausted distinct candidates: reuse is not allowed, so walk the
           gate list for a fresh one. *)
        let fresh = Array.to_list gate_nets |> List.find_opt (fun n -> not (Hashtbl.mem chosen_po n)) in
        match fresh with
        | Some n ->
            Circuit.Builder.mark_output b n;
            Hashtbl.replace chosen_po n ();
            Hashtbl.replace consumed n ();
            incr n_po
        | None ->
            (* Fewer gates than requested POs: give up on distinctness. *)
            Circuit.Builder.mark_output b cand;
            incr n_po
      end
    end
  done;
  Circuit.Builder.finish b

let generate_named name = generate (Profiles.find name)
