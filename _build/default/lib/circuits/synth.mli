(** Deterministic synthetic benchmark generator.

    Produces a full-scan circuit matching a {!Profiles.t}: exact #PI, #PO,
    #FF, approximately the requested gate count (a small parity-collapse tree
    may be appended so no net dangles), acyclic combinational core, every
    primary input consumed. The construction is seeded from the profile name
    only, so every run of every experiment sees the same netlist.

    Style shapes testability:
    - [Shallow] draws gate inputs mostly from sources, giving wide shallow
      cones whose faults are largely easy — the s35932 character;
    - [Deep] draws heavily from recent gates, building deeper reconvergent
      logic with harder faults;
    - [Balanced] mixes both. *)

val generate : Profiles.t -> Tvs_netlist.Circuit.t

val generate_named : string -> Tvs_netlist.Circuit.t
(** [generate (Profiles.find name)]. *)
