(** The worked example of the paper's Section 3 (Figure 1 / Table 1).

    Three gates and a scan chain of length 3, no primary inputs or outputs:
    - scan cells [a], [b], [c] (head to tail) output nets [A], [B], [C];
    - [D = AND(A, B)], [E = OR(B, C)], [F = AND(D, E)];
    - cell [a] captures [F], cell [b] captures [E], cell [c] captures [D].

    The reconstruction is validated against every row of Table 1 by the test
    suite: each listed fault's response sequence under the paper's four
    vectors matches the published table, fault F/0 goes hidden in cycle 1 and
    is caught in cycle 2, F/1 and D-F/1 go hidden in cycle 2 and are caught
    in cycle 3, and E-F/1 is redundant. *)

val circuit : unit -> Tvs_netlist.Circuit.t

val vectors : bool array list
(** The paper's four test vectors [110; 001; 100; 010], given as scan-chain
    contents (cells [a], [b], [c]). *)

val shift_schedule : int list
(** [3; 2; 2; 2]: full first load, then two fresh bits per cycle. *)

val fresh_bits : bool array list
(** The per-cycle fresh head bits that realise {!vectors} under
    {!shift_schedule}: [110], then [00], [10], [01]. *)

val paper_fault : Tvs_netlist.Circuit.t -> string -> Tvs_fault.Fault.t
(** Resolve a fault name in the paper's notation ("F/0", "B-D/1", "E-b/0",
    ...) against the reconstructed circuit. Raises [Failure] for unknown
    names. *)

val table1_faults : string list
(** The 18 fault names of Table 1, in row order (excluding "correct"). *)
