(** Structural profiles of the ISCAS89 benchmarks used in the paper's tables.

    The actual netlists are not distributable with this repository, so every
    experiment instantiates a profile through {!Synth}: a deterministic
    synthetic circuit matching the benchmark's published interface (#PI, #PO,
    #FF = scan length) and approximate gate count — the quantities the
    stitching technique's behaviour depends on. See DESIGN.md §3 for why
    this substitution preserves the experiments' shape. *)

type style =
  | Balanced  (** typical control logic: mixed depth and fanout *)
  | Shallow
      (** wide, shallow, easy-to-test logic — the s35932 character the paper
          calls out ("most faults of s35932 are easy-to-test") *)
  | Deep  (** deeper cones with reconvergent fanout: harder faults *)

type t = {
  name : string;
  npi : int;
  npo : int;
  nff : int;  (** scan chain length *)
  ngates : int;
  style : style;
}

val table2_circuits : t list
(** s444, s526, s641, s953, s1196, s1423, s5378, s9234 — the rows of
    Tables 2-4. *)

val table5_circuits : t list
(** s5378, s9234, s13207, s15850, s35932, s38417, s38584 — the rows of
    Table 5. *)

val all : t list
(** Union of the above, each benchmark once. *)

val find : string -> t
(** Lookup by name; raises [Not_found]. *)

val scale : t -> float -> t
(** [scale p f] shrinks (or grows) the sequential and combinational bulk of
    the profile — FF, gate and PO counts — by the linear factor [f], keeping
    the PI count (which drives the info-ratio denominators). Used to run the
    giant Table 5 circuits at tractable size. The scaled profile's name gains
    an ["@f"] suffix when [f <> 1]. *)
