module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Fault = Tvs_fault.Fault

let circuit () =
  let b = Circuit.Builder.create "fig1" in
  let a_q = Circuit.Builder.flop_forward b "A" in
  let b_q = Circuit.Builder.flop_forward b "B" in
  let c_q = Circuit.Builder.flop_forward b "C" in
  let d = Circuit.Builder.gate b ~name:"D" Gate.And [ a_q; b_q ] in
  let e = Circuit.Builder.gate b ~name:"E" Gate.Or [ b_q; c_q ] in
  let f = Circuit.Builder.gate b ~name:"F" Gate.And [ d; e ] in
  Circuit.Builder.connect_flop b a_q f;
  Circuit.Builder.connect_flop b b_q e;
  Circuit.Builder.connect_flop b c_q d;
  Circuit.Builder.finish b

let vectors =
  [ [| true; true; false |]; [| false; false; true |]; [| true; false; false |]; [| false; true; false |] ]

let shift_schedule = [ 3; 2; 2; 2 ]

let fresh_bits =
  [ [| true; true; false |]; [| false; false |]; [| true; false |]; [| false; true |] ]

let table1_faults =
  [
    "F/0"; "F/1"; "D-F/1"; "E-F/1"; "D/0"; "D/1"; "B-D/1"; "A/1"; "B/0"; "B/1"; "E/0";
    "B-E/0"; "C/0"; "E/1"; "E-b/0"; "E-b/1"; "D-c/0"; "D-c/1";
  ]

let paper_fault c name =
  let fail () = failwith (Printf.sprintf "Fig1.paper_fault: cannot parse %S" name) in
  match String.split_on_char '/' name with
  | [ site; v ] -> (
      let stuck = match v with "0" -> false | "1" -> true | _ -> fail () in
      match String.split_on_char '-' site with
      | [ stem_name ] -> Fault.stem_fault (Circuit.find_net c stem_name) stuck
      | [ stem_name; sink_name ] ->
          let stem = Circuit.find_net c stem_name in
          (* Lowercase sinks denote scan cells: "b" is the cell whose Q net
             is "B". *)
          let sink = Circuit.find_net c (String.uppercase_ascii sink_name) in
          let pin =
            let fanout = Circuit.fanout c stem in
            match Array.find_opt (fun (s, _) -> s = sink) fanout with
            | Some (_, pin) -> pin
            | None -> fail ()
          in
          Fault.branch_fault stem ~sink ~pin stuck
      | _ -> fail ())
  | _ -> fail ()
