lib/circuits/s27.ml: Tvs_netlist
