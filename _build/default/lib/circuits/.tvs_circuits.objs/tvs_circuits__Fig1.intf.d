lib/circuits/fig1.mli: Tvs_fault Tvs_netlist
