lib/circuits/profiles.mli:
