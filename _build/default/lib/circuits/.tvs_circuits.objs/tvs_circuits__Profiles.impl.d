lib/circuits/profiles.ml: Float List Printf
