lib/circuits/s27.mli: Tvs_netlist
