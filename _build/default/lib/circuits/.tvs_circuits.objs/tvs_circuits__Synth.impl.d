lib/circuits/synth.ml: Array Hashtbl List Printf Profiles Tvs_netlist Tvs_util
