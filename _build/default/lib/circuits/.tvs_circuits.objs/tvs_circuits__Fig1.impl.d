lib/circuits/fig1.ml: Array Printf String Tvs_fault Tvs_netlist
