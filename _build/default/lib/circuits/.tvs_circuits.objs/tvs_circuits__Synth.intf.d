lib/circuits/synth.mli: Profiles Tvs_netlist
