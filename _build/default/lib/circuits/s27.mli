(** The real ISCAS89 s27 benchmark (4 PI, 1 PO, 3 flip-flops, 10 gates),
    embedded as `.bench` text. The one published netlist small enough to ship
    verbatim; the larger benchmarks are profile-matched synthetics (see
    {!Synth}). *)

val bench_text : string

val circuit : unit -> Tvs_netlist.Circuit.t
