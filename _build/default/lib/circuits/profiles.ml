type style = Balanced | Shallow | Deep

type t = { name : string; npi : int; npo : int; nff : int; ngates : int; style : style }

let p name npi npo nff ngates style = { name; npi; npo; nff; ngates; style }

let table2_circuits =
  [
    p "s444" 3 6 21 181 Balanced;
    p "s526" 3 6 21 193 Balanced;
    p "s641" 35 24 19 379 Balanced;
    p "s953" 16 23 29 395 Balanced;
    p "s1196" 14 14 18 529 Balanced;
    p "s1423" 17 5 74 657 Deep;
    p "s5378" 35 49 179 2779 Balanced;
    p "s9234" 19 22 228 5597 Deep;
  ]

let table5_only =
  [
    p "s13207" 31 121 669 7951 Balanced;
    p "s15850" 14 87 597 9772 Deep;
    p "s35932" 35 320 1728 16065 Shallow;
    p "s38417" 28 106 1636 22179 Balanced;
    p "s38584" 12 278 1452 19253 Balanced;
  ]

let table5_circuits =
  List.filter (fun c -> c.name = "s5378" || c.name = "s9234") table2_circuits @ table5_only

let all = table2_circuits @ table5_only

let find name = List.find (fun c -> c.name = name) all

let scale t f =
  if Float.abs (f -. 1.0) < 1e-9 then t
  else
    let by n = max 1 (int_of_float (Float.round (float_of_int n *. f))) in
    {
      t with
      name = Printf.sprintf "%s@%g" t.name f;
      npo = by t.npo;
      nff = by t.nff;
      ngates = by t.ngates;
    }
