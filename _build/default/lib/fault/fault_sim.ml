module Parallel = Tvs_sim.Parallel
module Event = Tvs_sim.Event
module Lanes = Tvs_sim.Lanes
module Circuit = Tvs_netlist.Circuit

type outcome = Same | Po_detected | Capture_differs of bool array

type frame = { po : bool array; capture : bool array }

type batch_result = { good : frame; outcomes : outcome array }

type mode = Event_driven | Full

type t = {
  circuit : Circuit.t;
  par : Parallel.t;
  ev : Event.t Lazy.t;
  mode : mode;
}

let create ?(mode = Event_driven) circuit =
  { circuit; par = Parallel.create circuit; ev = lazy (Event.create circuit); mode }

let of_parallel par =
  let circuit = Parallel.circuit par in
  { circuit; par; ev = lazy (Event.create circuit); mode = Event_driven }

let circuit t = t.circuit
let parallel t = t.par
let mode t = t.mode

type counters = {
  mutable full_runs : int;
  mutable event_runs : int;
  mutable events_fired : int;
  mutable gate_evals : int;
  mutable gates_skipped : int;
  mutable faults_dropped : int;
}

let counters =
  {
    full_runs = 0;
    event_runs = 0;
    events_fired = 0;
    gate_evals = 0;
    gates_skipped = 0;
    faults_dropped = 0;
  }

let reset_counters () =
  counters.full_runs <- 0;
  counters.event_runs <- 0;
  counters.events_fired <- 0;
  counters.gate_evals <- 0;
  counters.gates_skipped <- 0;
  counters.faults_dropped <- 0

let note_dropped n = counters.faults_dropped <- counters.faults_dropped + n

let note_event_run ev =
  counters.event_runs <- counters.event_runs + 1;
  counters.events_fired <- counters.events_fired + Event.last_events ev;
  counters.gate_evals <- counters.gate_evals + Event.last_evals ev;
  counters.gates_skipped <- counters.gates_skipped + (Event.full_evals ev - Event.last_evals ev)

let chunk_size = Lanes.width - 1 (* lane 0 is the fault-free machine *)

(* Per-lane difference masks against lane 0 for one array of result words. *)
let diff_mask words used_mask =
  let acc = ref 0 in
  Array.iter
    (fun w ->
      let ref0 = - (w land 1) land Lanes.all_mask in
      acc := !acc lor ((w lxor ref0) land used_mask))
    words;
  !acc

let lane0_frame (r : Parallel.result) =
  {
    po = Array.map (fun w -> Lanes.get w 0) r.po;
    capture = Array.map (fun w -> Lanes.get w 0) r.capture;
  }

let outcomes_of_run (r : Parallel.result) ~nfaults =
  let used = Lanes.mask (nfaults + 1) in
  let po_diff = diff_mask r.po used in
  let cap_diff = diff_mask r.capture used in
  Array.init nfaults (fun i ->
      let lane = i + 1 in
      if Lanes.get po_diff lane then Po_detected
      else if Lanes.get cap_diff lane then
        Capture_differs (Array.map (fun w -> Lanes.get w lane) r.capture)
      else Same)

(* Chunking order: faults whose cones overlap share a chunk, so each chunk's
   event activity stays confined to a few cones instead of spraying one cone
   per lane across the whole circuit. Sorting by the cone representative (the
   lowest-numbered observation point a stem reaches, O(E) to index once per
   circuit) clusters overlapping cones at O(n log n) per batch; the secondary
   key packs stems of the same sub-cone next to each other.

   The permutation is a performance hint only — outcomes are mapped back
   through it, so any order is correct. That makes the one-entry memo below
   safe: drivers like [Generator.drop_detected] re-screen the same physical
   fault array against many vectors, and re-sorting it each time would cost
   more than the simulation itself. *)
let compute_chunk_order c (faults : Fault.t array) =
  let n = Array.length faults in
  if n <= chunk_size then Array.init n (fun i -> i)
  else begin
    (* Composite int key: (cone_rep, stem, original index), packed so a
       single monomorphic int sort orders and disambiguates at once. *)
    let order = Array.init n (fun i -> i) in
    let key =
      Array.init n (fun i ->
          let f = faults.(i) in
          (Circuit.cone_rep c f.Fault.stem, f.Fault.stem, i))
    in
    Array.sort
      (fun a b ->
        let (ra, sa, ia) = key.(a) and (rb, sb, ib) = key.(b) in
        if ra <> rb then (if ra < rb then -1 else 1)
        else if sa <> sb then (if sa < sb then -1 else 1)
        else if ia < ib then -1
        else if ia > ib then 1
        else 0)
      order;
    order
  end

let order_memo : (Fault.t array * int array) option ref = ref None

let chunk_order c faults =
  match !order_memo with
  | Some (prev, order) when prev == faults -> order
  | Some _ | None ->
      let order = compute_chunk_order c faults in
      order_memo := Some (faults, order);
      order

let broadcast_words arr = Array.map (fun b -> if b then Lanes.all_mask else 0) arr

(* Full-broadcast path: one complete levelized pass per chunk. *)

let run_chunk_full par ~pi_words ~state_words faults =
  let injections =
    List.mapi (fun i f -> Fault.to_injection f ~lane:(i + 1)) (Array.to_list faults)
  in
  let r = Parallel.run par ~pi:pi_words ~state:state_words ~injections in
  counters.full_runs <- counters.full_runs + 1;
  (lane0_frame r, outcomes_of_run r ~nfaults:(Array.length faults))

let run_batch_full par ~pi ~state ~faults =
  let pi_words = broadcast_words pi in
  let state_words = broadcast_words state in
  let n = Array.length faults in
  let outcomes = Array.make n Same in
  let good = ref None in
  let pos = ref 0 in
  while !pos < n || !good = None do
    let len = min chunk_size (n - !pos) in
    let chunk = Array.sub faults !pos len in
    let g, out = run_chunk_full par ~pi_words ~state_words chunk in
    if !good = None then good := Some g;
    Array.blit out 0 outcomes !pos len;
    pos := !pos + max len 1
  done;
  match !good with
  | Some good -> { good; outcomes }
  | None -> assert false

let run_per_state_full par ~pi ~good_state ~faults ~states =
  let n = Array.length faults in
  let nflops = Array.length good_state in
  let pi_words = broadcast_words pi in
  let outcomes = Array.make n Same in
  let good = ref None in
  let pos = ref 0 in
  while !pos < n || !good = None do
    let len = min chunk_size (n - !pos) in
    (* Pack lane 0 from the fault-free state and lanes 1..len from each
       fault's private state. *)
    let state_words =
      Array.init nflops (fun j ->
          let w = ref (if good_state.(j) then 1 else 0) in
          for i = 0 to len - 1 do
            if states.(!pos + i).(j) then w := !w lor (1 lsl (i + 1))
          done;
          !w)
    in
    let chunk = Array.sub faults !pos len in
    let g, out = run_chunk_full par ~pi_words ~state_words chunk in
    if !good = None then good := Some g;
    Array.blit out 0 outcomes !pos len;
    pos := !pos + max len 1
  done;
  match !good with
  | Some good -> { good; outcomes }
  | None -> assert false

(* Event-driven path: the fault-free pass happens once in [set_stimulus];
   each chunk then only re-evaluates the gates its fault cones disturb. *)

let run_batch_event t ~pi ~state ~faults =
  let ev = Lazy.force t.ev in
  Event.set_stimulus ev ~pi ~state;
  let good = { po = Event.good_po ev; capture = Event.good_capture ev } in
  let n = Array.length faults in
  let outcomes = Array.make n Same in
  let order = chunk_order t.circuit faults in
  let pos = ref 0 in
  while !pos < n do
    let len = min chunk_size (n - !pos) in
    let injections =
      List.init len (fun i -> Fault.to_injection faults.(order.(!pos + i)) ~lane:(i + 1))
    in
    let r = Event.run ev ~injections () in
    note_event_run ev;
    let out = outcomes_of_run r ~nfaults:len in
    for i = 0 to len - 1 do
      outcomes.(order.(!pos + i)) <- out.(i)
    done;
    pos := !pos + len
  done;
  { good; outcomes }

let run_per_state_event t ~pi ~good_state ~faults ~states =
  let ev = Lazy.force t.ev in
  Event.set_stimulus ev ~pi ~state:good_state;
  let good = { po = Event.good_po ev; capture = Event.good_capture ev } in
  let n = Array.length faults in
  let nflops = Array.length good_state in
  let outcomes = Array.make n Same in
  let order = chunk_order t.circuit faults in
  let pos = ref 0 in
  while !pos < n do
    let len = min chunk_size (n - !pos) in
    let state_words =
      Array.init nflops (fun j ->
          let w = ref (if good_state.(j) then 1 else 0) in
          for i = 0 to len - 1 do
            if states.(order.(!pos + i)).(j) then w := !w lor (1 lsl (i + 1))
          done;
          !w)
    in
    let injections =
      List.init len (fun i -> Fault.to_injection faults.(order.(!pos + i)) ~lane:(i + 1))
    in
    let r = Event.run ev ~states:state_words ~injections () in
    note_event_run ev;
    let out = outcomes_of_run r ~nfaults:len in
    for i = 0 to len - 1 do
      outcomes.(order.(!pos + i)) <- out.(i)
    done;
    pos := !pos + len
  done;
  { good; outcomes }

let run_batch t ~pi ~state ~faults =
  match t.mode with
  | Full -> run_batch_full t.par ~pi ~state ~faults
  | Event_driven -> run_batch_event t ~pi ~state ~faults

let run_per_state t ~pi ~good_state ~faults ~states =
  if Array.length states <> Array.length faults then
    invalid_arg "Fault_sim.run_per_state: states length mismatch";
  match t.mode with
  | Full -> run_per_state_full t.par ~pi ~good_state ~faults ~states
  | Event_driven -> run_per_state_event t ~pi ~good_state ~faults ~states

let detects t ~pi ~state fault =
  let r = run_batch t ~pi ~state ~faults:[| fault |] in
  match r.outcomes.(0) with Same -> false | Po_detected | Capture_differs _ -> true

(* Detection flags don't need the per-fault faulty-capture payloads that
   [outcomes_of_run] materializes, so the screening entry point reads the
   lane difference masks directly. *)
let detected_faults t ~pi ~state faults =
  let n = Array.length faults in
  let flags = Array.make n false in
  let flags_of_run (r : Parallel.result) ~nfaults ~write =
    let used = Lanes.mask (nfaults + 1) in
    let diff = diff_mask r.po used lor diff_mask r.capture used in
    for i = 0 to nfaults - 1 do
      write i (Lanes.get diff (i + 1))
    done
  in
  (match t.mode with
  | Full ->
      let pi_words = broadcast_words pi in
      let state_words = broadcast_words state in
      let pos = ref 0 in
      while !pos < n do
        let len = min chunk_size (n - !pos) in
        let injections =
          List.init len (fun i -> Fault.to_injection faults.(!pos + i) ~lane:(i + 1))
        in
        let r = Parallel.run t.par ~pi:pi_words ~state:state_words ~injections in
        counters.full_runs <- counters.full_runs + 1;
        let base = !pos in
        flags_of_run r ~nfaults:len ~write:(fun i d -> flags.(base + i) <- d);
        pos := !pos + len
      done
  | Event_driven ->
      let ev = Lazy.force t.ev in
      Event.set_stimulus ev ~pi ~state;
      let order = chunk_order t.circuit faults in
      let pos = ref 0 in
      while !pos < n do
        let len = min chunk_size (n - !pos) in
        let injections =
          List.init len (fun i -> Fault.to_injection faults.(order.(!pos + i)) ~lane:(i + 1))
        in
        let r = Event.run ev ~injections () in
        note_event_run ev;
        let base = !pos in
        flags_of_run r ~nfaults:len ~write:(fun i d -> flags.(order.(base + i)) <- d);
        pos := !pos + len
      done);
  flags
