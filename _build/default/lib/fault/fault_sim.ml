module Parallel = Tvs_sim.Parallel
module Lanes = Tvs_sim.Lanes

type outcome = Same | Po_detected | Capture_differs of bool array

type frame = { po : bool array; capture : bool array }

type batch_result = { good : frame; outcomes : outcome array }

let chunk_size = Lanes.width - 1 (* lane 0 is the fault-free machine *)

(* Per-lane difference masks against lane 0 for one array of result words. *)
let diff_mask words used_mask =
  let acc = ref 0 in
  Array.iter
    (fun w ->
      let ref0 = - (w land 1) land Lanes.all_mask in
      acc := !acc lor ((w lxor ref0) land used_mask))
    words;
  !acc

let lane0_frame (r : Parallel.result) =
  {
    po = Array.map (fun w -> Lanes.get w 0) r.po;
    capture = Array.map (fun w -> Lanes.get w 0) r.capture;
  }

let outcomes_of_run (r : Parallel.result) ~nfaults =
  let used = Lanes.mask (nfaults + 1) in
  let po_diff = diff_mask r.po used in
  let cap_diff = diff_mask r.capture used in
  Array.init nfaults (fun i ->
      let lane = i + 1 in
      if Lanes.get po_diff lane then Po_detected
      else if Lanes.get cap_diff lane then
        Capture_differs (Array.map (fun w -> Lanes.get w lane) r.capture)
      else Same)

let run_chunk ctx ~pi_words ~state_words faults =
  let injections =
    List.mapi (fun i f -> Fault.to_injection f ~lane:(i + 1)) (Array.to_list faults)
  in
  let r = Parallel.run ctx ~pi:pi_words ~state:state_words ~injections in
  (lane0_frame r, outcomes_of_run r ~nfaults:(Array.length faults))

let broadcast_words arr = Array.map (fun b -> if b then Lanes.all_mask else 0) arr

let run_batch ctx ~pi ~state ~faults =
  let pi_words = broadcast_words pi in
  let state_words = broadcast_words state in
  let n = Array.length faults in
  let outcomes = Array.make n Same in
  let good = ref None in
  let pos = ref 0 in
  while !pos < n || !good = None do
    let len = min chunk_size (n - !pos) in
    let chunk = Array.sub faults !pos len in
    let g, out = run_chunk ctx ~pi_words ~state_words chunk in
    if !good = None then good := Some g;
    Array.blit out 0 outcomes !pos len;
    pos := !pos + max len 1
  done;
  match !good with
  | Some good -> { good; outcomes }
  | None -> assert false

let run_per_state ctx ~pi ~good_state ~faults ~states =
  let n = Array.length faults in
  if Array.length states <> n then invalid_arg "Fault_sim.run_per_state: states length mismatch";
  let nflops = Array.length good_state in
  let pi_words = broadcast_words pi in
  let outcomes = Array.make n Same in
  let good = ref None in
  let pos = ref 0 in
  while !pos < n || !good = None do
    let len = min chunk_size (n - !pos) in
    (* Pack lane 0 from the fault-free state and lanes 1..len from each
       fault's private state. *)
    let state_words =
      Array.init nflops (fun j ->
          let w = ref (if good_state.(j) then 1 else 0) in
          for i = 0 to len - 1 do
            if states.(!pos + i).(j) then w := !w lor (1 lsl (i + 1))
          done;
          !w)
    in
    let chunk = Array.sub faults !pos len in
    let g, out = run_chunk ctx ~pi_words ~state_words chunk in
    if !good = None then good := Some g;
    Array.blit out 0 outcomes !pos len;
    pos := !pos + max len 1
  done;
  match !good with
  | Some good -> { good; outcomes }
  | None -> assert false

let detects ctx ~pi ~state fault =
  let r = run_batch ctx ~pi ~state ~faults:[| fault |] in
  match r.outcomes.(0) with Same -> false | Po_detected | Capture_differs _ -> true

let detected_faults ctx ~pi ~state faults =
  let r = run_batch ctx ~pi ~state ~faults in
  Array.map (function Same -> false | Po_detected | Capture_differs _ -> true) r.outcomes
