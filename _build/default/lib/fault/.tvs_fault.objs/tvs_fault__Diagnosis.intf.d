lib/fault/diagnosis.mli: Fault Tvs_sim
