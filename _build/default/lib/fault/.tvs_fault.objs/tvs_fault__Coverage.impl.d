lib/fault/coverage.ml: Array Format
