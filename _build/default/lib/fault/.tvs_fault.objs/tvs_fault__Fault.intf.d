lib/fault/fault.mli: Format Tvs_netlist Tvs_sim
