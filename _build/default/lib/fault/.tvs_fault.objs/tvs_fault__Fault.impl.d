lib/fault/fault.ml: Array Format Hashtbl Printf Stdlib String Tvs_netlist Tvs_sim
