lib/fault/diagnosis.ml: Array Buffer Fault Hashtbl List Option Tvs_sim
