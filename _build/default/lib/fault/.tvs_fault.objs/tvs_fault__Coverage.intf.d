lib/fault/coverage.mli: Format
