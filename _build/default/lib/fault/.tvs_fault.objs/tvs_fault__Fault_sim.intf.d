lib/fault/fault_sim.mli: Fault Tvs_netlist Tvs_sim
