lib/fault/fault_sim.mli: Fault Tvs_sim
