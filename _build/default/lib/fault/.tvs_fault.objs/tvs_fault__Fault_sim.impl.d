lib/fault/fault_sim.ml: Array Fault Lazy List Tvs_netlist Tvs_sim
