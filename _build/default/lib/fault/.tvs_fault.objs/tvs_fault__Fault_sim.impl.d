lib/fault/fault_sim.ml: Array Fault List Tvs_sim
