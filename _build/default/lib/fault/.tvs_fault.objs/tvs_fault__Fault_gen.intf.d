lib/fault/fault_gen.mli: Fault Tvs_netlist
