lib/fault/fault_gen.ml: Array Fault Hashtbl List Tvs_netlist
