type t = { total : int; detected : int; redundant : int; aborted : int }

let make ~total ~detected ~redundant ~aborted =
  if total < 0 || detected < 0 || redundant < 0 || aborted < 0 then
    invalid_arg "Coverage.make: negative count";
  if detected + redundant + aborted > total then invalid_arg "Coverage.make: parts exceed total";
  { total; detected; redundant; aborted }

let of_flags ~detected ~redundant ~aborted =
  let hits = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 detected in
  make ~total:(Array.length detected) ~detected:hits ~redundant ~aborted

let fault_coverage t =
  let considered = t.total - t.redundant in
  if considered <= 0 then 1.0 else float_of_int t.detected /. float_of_int considered

let atpg_effectiveness t =
  if t.total = 0 then 1.0 else float_of_int (t.detected + t.redundant) /. float_of_int t.total

let undetected t = t.total - t.detected - t.redundant

let merge a b =
  {
    total = a.total + b.total;
    detected = a.detected + b.detected;
    redundant = a.redundant + b.redundant;
    aborted = a.aborted + b.aborted;
  }

let pp fmt t =
  Format.fprintf fmt "%d/%d detected (%.2f%% coverage, %d redundant, %d aborted)" t.detected
    t.total
    (100.0 *. fault_coverage t)
    t.redundant t.aborted
