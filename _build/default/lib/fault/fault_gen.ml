module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate

let all c =
  let acc = ref [] in
  let add f = acc := f :: !acc in
  for net = 0 to Circuit.num_nets c - 1 do
    add (Fault.stem_fault net false);
    add (Fault.stem_fault net true);
    let fanout = Circuit.fanout c net in
    if Array.length fanout >= 2 then
      Array.iter
        (fun (sink, pin) ->
          add (Fault.branch_fault net ~sink ~pin false);
          add (Fault.branch_fault net ~sink ~pin true))
        fanout
  done;
  Array.of_list (List.rev !acc)

(* Directed merging: each mergeable input-side fault points at the equivalent
   gate-output fault; following parents reaches the class representative
   nearest the observation points. *)
let collapse c faults =
  let parent : (Fault.t, Fault.t) Hashtbl.t = Hashtbl.create 256 in
  let merge_into ~child ~root = Hashtbl.replace parent child root in
  let pin_fault fanin ~sink ~pin v =
    if Array.length (Circuit.fanout c fanin) >= 2 then
      Some (Fault.branch_fault fanin ~sink ~pin v)
    else if Circuit.is_output c fanin then None (* stays distinguishable at the PO *)
    else Some (Fault.stem_fault fanin v)
  in
  for net = 0 to Circuit.num_nets c - 1 do
    match Circuit.driver c net with
    | Circuit.Gate_node (kind, ins) -> (
        let inv = Gate.inversion kind in
        match Gate.controlling_value kind with
        | Some ctrl ->
            let out_fault = Fault.stem_fault net (ctrl <> inv) in
            Array.iteri
              (fun pin fanin ->
                match pin_fault fanin ~sink:net ~pin ctrl with
                | Some f -> merge_into ~child:f ~root:out_fault
                | None -> ())
              ins
        | None ->
            if Array.length ins = 1 then
              (* NOT / BUFF: both polarities collapse through. *)
              List.iter
                (fun v ->
                  match pin_fault ins.(0) ~sink:net ~pin:0 v with
                  | Some f -> merge_into ~child:f ~root:(Fault.stem_fault net (v <> inv))
                  | None -> ())
                [ false; true ])
    | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> ()
  done;
  let rec find f =
    match Hashtbl.find_opt parent f with None -> f | Some p -> find p
  in
  let seen = Hashtbl.create 256 in
  let keep = ref [] in
  Array.iter
    (fun f ->
      let root = find f in
      if not (Hashtbl.mem seen root) then begin
        Hashtbl.add seen root ();
        keep := root :: !keep
      end)
    faults;
  Array.of_list (List.rev !keep)

let collapsed c = collapse c (all c)

let collapse_ratio c =
  let total = Array.length (all c) in
  if total = 0 then 1.0 else float_of_int (Array.length (collapsed c)) /. float_of_int total
