(** Fault list construction and structural equivalence collapsing. *)

val all : Tvs_netlist.Circuit.t -> Fault.t array
(** The full single-stuck-at list: both polarities on every stem, plus both
    polarities on every fanout branch of stems with two or more consumers.
    Deterministic order (net id, then consumer order, then polarity). *)

val collapse : Tvs_netlist.Circuit.t -> Fault.t array -> Fault.t array
(** Structural equivalence collapsing, keeping one representative per class:
    - input stuck-at-controlling ≡ output stuck-at-(controlling xor
      inversion) for AND/NAND/OR/NOR;
    - both input faults of NOT/BUFF ≡ the corresponding output faults.
    A stem is never merged through a gate when the stem is a primary output
    (it would remain distinguishable there) or has other fanout. The
    representative chosen is the class member closest to the outputs (the
    gate-output fault). *)

val collapsed : Tvs_netlist.Circuit.t -> Fault.t array
(** [collapse c (all c)]. *)

val collapse_ratio : Tvs_netlist.Circuit.t -> float
(** |collapsed| / |all|; the classic sanity metric for the collapser. *)
