(** Fault-coverage accounting.

    Small arithmetic shared by the baseline generator, the stitched engine
    and the reports: given per-fault dispositions, compute the classic
    figures of merit. *)

type t = {
  total : int;
  detected : int;
  redundant : int;  (** proven untestable: excluded from coverage *)
  aborted : int;  (** ATPG gave up: counted against effectiveness only *)
}

val make : total:int -> detected:int -> redundant:int -> aborted:int -> t
(** Raises [Invalid_argument] when the parts exceed the total or any count
    is negative. *)

val of_flags : detected:bool array -> redundant:int -> aborted:int -> t

val fault_coverage : t -> float
(** detected / (total - redundant): the figure the paper's "no loss of fault
    coverage" claim is about. 1.0 on an empty universe. *)

val atpg_effectiveness : t -> float
(** (detected + redundant) / total: how many faults the flow resolved either
    way. *)

val undetected : t -> int

val merge : t -> t -> t
(** Componentwise sum (e.g. totals across SOC cores). *)

val pp : Format.formatter -> t -> unit
