(** Batch fault simulation on top of the word-parallel engine.

    One engine run simulates the fault-free machine in lane 0 and up to 62
    faulty machines in the remaining lanes; arbitrary fault batches are
    chunked internally. Two entry points cover the stitching engine's needs:

    - {!run_batch}: all machines receive the same stimulus (screening the
      uncaught set against a candidate vector);
    - {!run_per_state}: each faulty machine applies its own scan state (the
      hidden-fault case, where a fault's retained response bits mutate the
      vector it actually receives). *)

type outcome =
  | Same  (** response identical to the fault-free machine *)
  | Po_detected  (** differs at a primary output: immediately observed *)
  | Capture_differs of bool array
      (** primary outputs identical; faulty captured scan state attached
          (length = number of flip-flops) *)

type frame = { po : bool array; capture : bool array }

type batch_result = { good : frame; outcomes : outcome array }

val run_batch :
  Tvs_sim.Parallel.t -> pi:bool array -> state:bool array -> faults:Fault.t array -> batch_result

val run_per_state :
  Tvs_sim.Parallel.t ->
  pi:bool array ->
  good_state:bool array ->
  faults:Fault.t array ->
  states:bool array array ->
  batch_result
(** [states.(i)] is the scan state fault [i]'s machine applies;
    [Array.length states] must equal [Array.length faults]. *)

val detects : Tvs_sim.Parallel.t -> pi:bool array -> state:bool array -> Fault.t -> bool
(** Full-observability detection (all POs and the whole captured state), the
    criterion of a traditional full-shift scan test. *)

val detected_faults :
  Tvs_sim.Parallel.t -> pi:bool array -> state:bool array -> Fault.t array -> bool array
(** Full-observability detection flags for a whole fault list. *)
