module Parallel = Tvs_sim.Parallel
module Lanes = Tvs_sim.Lanes

type response = bool array list

let respond sim ~tests ?fault () =
  let injections = match fault with None -> [] | Some f -> [ Fault.to_injection f ~lane:1 ] in
  let lane = match fault with None -> 0 | Some _ -> 1 in
  let widen arr = Array.map (fun b -> if b then Lanes.all_mask else 0) arr in
  Array.to_list tests
  |> List.map (fun (pi, scan) ->
         let r = Parallel.run sim ~pi:(widen pi) ~state:(widen scan) ~injections in
         Array.append
           (Array.map (fun w -> Lanes.get w lane) r.Parallel.po)
           (Array.map (fun w -> Lanes.get w lane) r.Parallel.capture))

let key_of response =
  let buf = Buffer.create 256 in
  List.iter
    (fun frame -> Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) frame)
    response;
  Buffer.contents buf

type dictionary = {
  good_key : string;
  classes : (string, Fault.t list) Hashtbl.t;  (* faulty behaviours only *)
  detected : int;
}

let build sim ~faults ~tests =
  let good_key = key_of (respond sim ~tests ()) in
  let classes = Hashtbl.create 64 in
  let detected = ref 0 in
  Array.iter
    (fun f ->
      let key = key_of (respond sim ~tests ~fault:f ()) in
      if key <> good_key then begin
        incr detected;
        Hashtbl.replace classes key (f :: Option.value ~default:[] (Hashtbl.find_opt classes key))
      end)
    faults;
  (* Keep dictionary order inside each class. *)
  Hashtbl.iter (fun k l -> Hashtbl.replace classes k (List.rev l)) classes;
  { good_key; classes; detected = !detected }

type outcome = No_defect | Candidates of Fault.t list | Unknown_defect

let diagnose t ~observed =
  let key = key_of observed in
  if key = t.good_key then No_defect
  else
    match Hashtbl.find_opt t.classes key with
    | Some faults -> Candidates faults
    | None -> Unknown_defect

let num_detected t = t.detected

let num_classes t = Hashtbl.length t.classes

let resolution t =
  if Hashtbl.length t.classes = 0 then 1.0
  else float_of_int t.detected /. float_of_int (Hashtbl.length t.classes)
