(** Cause-effect fault diagnosis from full response data.

    The paper argues (Sections 1 and 8) that avoiding a MISR preserves "the
    possible loss of information for fault diagnosis". This module is that
    information put to work: a {e fault dictionary} maps every modelled
    fault to its complete observed response under a test set, so a failing
    response observed on the tester narrows the defect down to the matching
    candidates. The diagnostic {e resolution} (average candidates per
    distinguishable behaviour) is the quality metric the MISR study
    compares. *)

type response = bool array list
(** One frame per applied test: primary outputs concatenated with the
    captured scan cells, in application order. *)

val respond :
  Tvs_sim.Parallel.t ->
  tests:(bool array * bool array) array ->
  ?fault:Fault.t ->
  unit ->
  response
(** The (possibly faulty) machine's full response to [(pi, scan)] tests,
    each applied independently (full-shift observation). *)

type dictionary

val build :
  Tvs_sim.Parallel.t -> faults:Fault.t array -> tests:(bool array * bool array) array -> dictionary

type outcome =
  | No_defect  (** the observation equals the fault-free response *)
  | Candidates of Fault.t list
      (** modelled faults whose dictionary entry matches, dictionary order *)
  | Unknown_defect  (** fails, but matches no single-stuck-at entry *)

val diagnose : dictionary -> observed:response -> outcome

val num_detected : dictionary -> int
(** Faults whose response differs from the fault-free machine's. *)

val num_classes : dictionary -> int
(** Distinct faulty behaviours among detected faults. *)

val resolution : dictionary -> float
(** [num_detected / num_classes]: 1.0 is perfect (every detected fault
    uniquely identifiable). *)
