(** Five-valued D-calculus used by PODEM.

    Each value encodes a (fault-free, faulty) pair of ternary values:
    - [Zero]  = (0, 0)
    - [One]   = (1, 1)
    - [D]     = (1, 0)   — the classic "D": good machine 1, faulty machine 0
    - [Dbar]  = (0, 1)
    - [X]     = unassigned in at least one machine

    A fault is detected when a [D] or [Dbar] reaches an observation point. *)

type t = Zero | One | D | Dbar | X

val equal : t -> t -> bool

val of_pair : Ternary.t -> Ternary.t -> t
(** [of_pair good faulty]; any [X] component yields [X]. *)

val good : t -> Ternary.t
(** Projection onto the fault-free machine. *)

val faulty : t -> Ternary.t
(** Projection onto the faulty machine. *)

val is_error : t -> bool
(** [true] for [D] and [Dbar]. *)

val f_not : t -> t
val f_and : t -> t -> t
val f_or : t -> t -> t
val f_xor : t -> t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
