(** Three-valued logic: 0, 1 and X (unspecified / don't-care).

    Test cubes produced by ATPG leave unconstrained inputs at [X]; the
    stitching algorithm exploits exactly those bits. Gate evaluation follows
    the standard Kleene tables: a gate output is [X] only when the specified
    inputs do not already force a controlled value. *)

type t = Zero | One | X

val equal : t -> t -> bool

val of_bool : bool -> t

val to_bool_exn : t -> bool
(** Raises [Invalid_argument] on [X]. *)

val is_specified : t -> bool
(** [true] for [Zero] and [One]. *)

val compatible : t -> t -> bool
(** Two values are compatible when neither constrains the other to a
    conflicting binary value: [X] is compatible with everything. *)

val merge : t -> t -> t option
(** Intersection of two cube values: [merge Zero One = None];
    [merge X v = Some v]. *)

val t_not : t -> t
val t_and : t -> t -> t
val t_or : t -> t -> t
val t_xor : t -> t -> t

val of_char : char -> t
(** '0', '1', 'x' or 'X'. Raises [Invalid_argument] otherwise. *)

val to_char : t -> char

val pp : Format.formatter -> t -> unit
