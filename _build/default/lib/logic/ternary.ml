type t = Zero | One | X

let equal a b =
  match (a, b) with
  | Zero, Zero | One, One | X, X -> true
  | (Zero | One | X), _ -> false

let of_bool b = if b then One else Zero

let to_bool_exn = function
  | Zero -> false
  | One -> true
  | X -> invalid_arg "Ternary.to_bool_exn: X"

let is_specified = function Zero | One -> true | X -> false

let compatible a b =
  match (a, b) with Zero, One | One, Zero -> false | (Zero | One | X), _ -> true

let merge a b =
  match (a, b) with
  | X, v | v, X -> Some v
  | Zero, Zero -> Some Zero
  | One, One -> Some One
  | Zero, One | One, Zero -> None

let t_not = function Zero -> One | One -> Zero | X -> X

let t_and a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (One | X), (One | X) -> X

let t_or a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (Zero | X), (Zero | X) -> X

let t_xor a b =
  match (a, b) with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | Zero, One | One, Zero -> One

let of_char = function
  | '0' -> Zero
  | '1' -> One
  | 'x' | 'X' -> X
  | c -> invalid_arg (Printf.sprintf "Ternary.of_char: %C" c)

let to_char = function Zero -> '0' | One -> '1' | X -> 'X'

let pp fmt v = Format.pp_print_char fmt (to_char v)
