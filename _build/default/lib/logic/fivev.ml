type t = Zero | One | D | Dbar | X

let equal a b =
  match (a, b) with
  | Zero, Zero | One, One | D, D | Dbar, Dbar | X, X -> true
  | (Zero | One | D | Dbar | X), _ -> false

let of_pair good faulty =
  match (good, faulty) with
  | Ternary.X, _ | _, Ternary.X -> X
  | Ternary.Zero, Ternary.Zero -> Zero
  | Ternary.One, Ternary.One -> One
  | Ternary.One, Ternary.Zero -> D
  | Ternary.Zero, Ternary.One -> Dbar

let good = function
  | Zero -> Ternary.Zero
  | One -> Ternary.One
  | D -> Ternary.One
  | Dbar -> Ternary.Zero
  | X -> Ternary.X

let faulty = function
  | Zero -> Ternary.Zero
  | One -> Ternary.One
  | D -> Ternary.Zero
  | Dbar -> Ternary.One
  | X -> Ternary.X

let is_error = function D | Dbar -> true | Zero | One | X -> false

(* All connectives are computed componentwise on the (good, faulty) pair;
   this automatically yields the textbook five-valued tables. *)
let lift2 op a b = of_pair (op (good a) (good b)) (op (faulty a) (faulty b))

let f_not a = of_pair (Ternary.t_not (good a)) (Ternary.t_not (faulty a))
let f_and = lift2 Ternary.t_and
let f_or = lift2 Ternary.t_or
let f_xor = lift2 Ternary.t_xor

let to_string = function
  | Zero -> "0"
  | One -> "1"
  | D -> "D"
  | Dbar -> "D'"
  | X -> "X"

let pp fmt v = Format.pp_print_string fmt (to_string v)
