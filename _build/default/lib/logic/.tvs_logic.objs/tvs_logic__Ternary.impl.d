lib/logic/ternary.ml: Format Printf
