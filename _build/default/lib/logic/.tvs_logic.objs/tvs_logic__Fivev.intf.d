lib/logic/fivev.mli: Format Ternary
