lib/logic/fivev.ml: Format Ternary
