lib/logic/bitvec.ml: Array String
