lib/logic/bitvec.mli:
