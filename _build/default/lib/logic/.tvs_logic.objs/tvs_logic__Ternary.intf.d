lib/logic/ternary.mli: Format
