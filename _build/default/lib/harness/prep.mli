(** Per-circuit preparation shared by every experiment: synthesis (or the
    embedded netlist), fault-list construction and collapsing, PODEM context,
    and the traditional-flow baseline. Memoized per circuit name so the
    tables reuse one another's work within a process. *)

type t = {
  circuit : Tvs_netlist.Circuit.t;
  all_faults : Tvs_fault.Fault.t array;  (** uncollapsed, for ablation *)
  faults : Tvs_fault.Fault.t array;  (** collapsed list fed to the flows *)
  ctx : Tvs_atpg.Podem.ctx;
  baseline : Tvs_core.Baseline.t;
  testable : Tvs_fault.Fault.t array;  (** faults the stitched flow must cover *)
}

val of_circuit : Tvs_netlist.Circuit.t -> t
(** Uncached preparation of an arbitrary circuit. *)

val get : ?scale:float -> string -> t
(** Memoized preparation of a profile benchmark by name ("s444", ...);
    [scale] shrinks the profile first (see {!Tvs_circuits.Profiles.scale}).
    The baseline RNG stream is derived from the (scaled) circuit name. *)

val engine_seed : t -> string -> Tvs_util.Rng.t
(** Fresh deterministic stream for an experiment label on this circuit. *)
