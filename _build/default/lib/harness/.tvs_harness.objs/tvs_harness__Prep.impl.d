lib/harness/prep.ml: Hashtbl Tvs_atpg Tvs_circuits Tvs_core Tvs_fault Tvs_netlist Tvs_util
