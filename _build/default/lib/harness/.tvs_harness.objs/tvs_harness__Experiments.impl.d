lib/harness/experiments.ml: Array Buffer Hashtbl List Option Prep Printf String Sys Tvs_atpg Tvs_circuits Tvs_core Tvs_fault Tvs_logic Tvs_netlist Tvs_scan Tvs_sim Tvs_util
