lib/harness/prep.mli: Tvs_atpg Tvs_core Tvs_fault Tvs_netlist Tvs_util
