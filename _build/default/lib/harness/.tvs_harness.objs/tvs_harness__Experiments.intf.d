lib/harness/experiments.mli: Prep Tvs_core Tvs_scan
