(** Single-machine levelized simulation of the combinational core in two- and
    three-valued logic.

    The ternary entry points are what test-cube handling needs: an [X] input
    propagates as "unknown", so the fault-free response of a cube shows which
    outputs are already determined by the specified bits. *)

type 'v frame = { po : 'v array; capture : 'v array }
(** Response at the observation points: primary outputs and flip-flop D
    captures (scan order). *)

val eval_bool : Tvs_netlist.Circuit.t -> pi:bool array -> state:bool array -> bool frame

val eval_ternary :
  Tvs_netlist.Circuit.t ->
  pi:Tvs_logic.Ternary.t array ->
  state:Tvs_logic.Ternary.t array ->
  Tvs_logic.Ternary.t frame

val ternary_nets :
  Tvs_netlist.Circuit.t ->
  pi:Tvs_logic.Ternary.t array ->
  state:Tvs_logic.Ternary.t array ->
  Tvs_logic.Ternary.t array
(** Value of every net, indexed by net id. *)
