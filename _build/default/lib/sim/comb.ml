module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Ternary = Tvs_logic.Ternary

type 'v frame = { po : 'v array; capture : 'v array }

let ternary_nets c ~pi ~state =
  if Array.length pi <> Circuit.num_inputs c then invalid_arg "Comb: pi length mismatch";
  if Array.length state <> Circuit.num_flops c then invalid_arg "Comb: state length mismatch";
  let values = Array.make (Circuit.num_nets c) Ternary.X in
  Array.iteri (fun i net -> values.(net) <- pi.(i)) (Circuit.inputs c);
  Array.iteri (fun i net -> values.(net) <- state.(i)) (Circuit.flops c);
  Array.iter
    (fun net ->
      match Circuit.driver c net with
      | Circuit.Gate_node (kind, ins) ->
          values.(net) <- Gate.eval_ternary kind (Array.map (fun i -> values.(i)) ins)
      | Circuit.Const b -> values.(net) <- Ternary.of_bool b
      | Circuit.Primary_input | Circuit.Flip_flop _ -> ())
    (Circuit.topo_order c);
  values

let frame_of_values c values =
  let po = Array.map (fun net -> values.(net)) (Circuit.outputs c) in
  let capture =
    Array.map
      (fun fnet ->
        match Circuit.driver c fnet with
        | Circuit.Flip_flop d -> values.(d)
        | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ ->
            invalid_arg "Comb: flop list corrupt")
      (Circuit.flops c)
  in
  { po; capture }

let eval_ternary c ~pi ~state = frame_of_values c (ternary_nets c ~pi ~state)

let eval_bool c ~pi ~state =
  let t3 = Array.map Ternary.of_bool in
  let { po; capture } = eval_ternary c ~pi:(t3 pi) ~state:(t3 state) in
  { po = Array.map Ternary.to_bool_exn po; capture = Array.map Ternary.to_bool_exn capture }
