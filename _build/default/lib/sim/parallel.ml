module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate

type injection = {
  lane : int;
  stuck : bool;
  stem : Circuit.net;
  branch : (Circuit.net * int) option;
}

type result = { po : int array; capture : int array }

type t = {
  circuit : Circuit.t;
  values : int array;  (* lane-packed value per net *)
  stem_set : int array;  (* per-net force-to-1 lane masks *)
  stem_clear : int array;  (* per-net force-to-0 lane masks *)
  sink_flagged : bool array;  (* sinks with at least one branch override *)
  branch_over : (int * int, int * int) Hashtbl.t;  (* (sink, pin) -> (set, clear) *)
  mutable touched_stems : Circuit.net list;
  mutable touched_sinks : Circuit.net list;
}

let create circuit =
  let n = Circuit.num_nets circuit in
  {
    circuit;
    values = Array.make n 0;
    stem_set = Array.make n 0;
    stem_clear = Array.make n 0;
    sink_flagged = Array.make n false;
    branch_over = Hashtbl.create 16;
    touched_stems = [];
    touched_sinks = [];
  }

let circuit t = t.circuit

let clear_overrides t =
  List.iter
    (fun n ->
      t.stem_set.(n) <- 0;
      t.stem_clear.(n) <- 0)
    t.touched_stems;
  List.iter (fun n -> t.sink_flagged.(n) <- false) t.touched_sinks;
  Hashtbl.reset t.branch_over;
  t.touched_stems <- [];
  t.touched_sinks <- []

let install_overrides t injections =
  List.iter
    (fun inj ->
      if inj.lane < 0 || inj.lane >= Lanes.width then invalid_arg "Parallel.run: lane out of range";
      let bit = Lanes.lane_bit inj.lane in
      match inj.branch with
      | None ->
          if t.stem_set.(inj.stem) = 0 && t.stem_clear.(inj.stem) = 0 then
            t.touched_stems <- inj.stem :: t.touched_stems;
          if inj.stuck then t.stem_set.(inj.stem) <- t.stem_set.(inj.stem) lor bit
          else t.stem_clear.(inj.stem) <- t.stem_clear.(inj.stem) lor bit
      | Some (sink, pin) ->
          if not t.sink_flagged.(sink) then begin
            t.sink_flagged.(sink) <- true;
            t.touched_sinks <- sink :: t.touched_sinks
          end;
          let set0, clear0 =
            Option.value ~default:(0, 0) (Hashtbl.find_opt t.branch_over (sink, pin))
          in
          let entry = if inj.stuck then (set0 lor bit, clear0) else (set0, clear0 lor bit) in
          Hashtbl.replace t.branch_over (sink, pin) entry)
    injections

let apply_stem t net v = v land lnot t.stem_clear.(net) lor t.stem_set.(net)

(* Value of [src] as seen by pin [pin] of consumer [sink]. *)
let fetch t ~sink ~pin src =
  let v = t.values.(src) in
  if t.sink_flagged.(sink) then
    match Hashtbl.find_opt t.branch_over (sink, pin) with
    | Some (set, clear) -> v land lnot clear lor set
    | None -> v
  else v

let eval_gate t sink kind (ins : int array) =
  let n = Array.length ins in
  let fetch_pin pin = fetch t ~sink ~pin ins.(pin) in
  let fold op seed =
    let acc = ref seed in
    for pin = 0 to n - 1 do
      acc := op !acc (fetch_pin pin)
    done;
    !acc
  in
  let v =
    match kind with
    | Gate.And -> fold ( land ) Lanes.all_mask
    | Gate.Nand -> lnot (fold ( land ) Lanes.all_mask)
    | Gate.Or -> fold ( lor ) 0
    | Gate.Nor -> lnot (fold ( lor ) 0)
    | Gate.Xor -> fold ( lxor ) 0
    | Gate.Xnor -> lnot (fold ( lxor ) 0)
    | Gate.Not -> lnot (fetch_pin 0)
    | Gate.Buf -> fetch_pin 0
  in
  v land Lanes.all_mask

let run t ~pi ~state ~injections =
  let c = t.circuit in
  if Array.length pi <> Circuit.num_inputs c then invalid_arg "Parallel.run: pi length mismatch";
  if Array.length state <> Circuit.num_flops c then invalid_arg "Parallel.run: state length mismatch";
  clear_overrides t;
  install_overrides t injections;
  Array.iteri (fun i net -> t.values.(net) <- apply_stem t net (pi.(i) land Lanes.all_mask)) (Circuit.inputs c);
  Array.iteri
    (fun i net -> t.values.(net) <- apply_stem t net (state.(i) land Lanes.all_mask))
    (Circuit.flops c);
  Array.iter
    (fun net ->
      let v =
        match Circuit.driver c net with
        | Circuit.Gate_node (kind, ins) -> eval_gate t net kind ins
        | Circuit.Const b -> Lanes.broadcast b
        | Circuit.Primary_input | Circuit.Flip_flop _ -> t.values.(net)
      in
      t.values.(net) <- apply_stem t net v)
    (Circuit.topo_order c);
  let po = Array.map (fun net -> t.values.(net)) (Circuit.outputs c) in
  let capture =
    Array.map
      (fun fnet ->
        match Circuit.driver c fnet with
        | Circuit.Flip_flop d -> fetch t ~sink:fnet ~pin:0 d
        | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ ->
            invalid_arg "Parallel.run: flop list corrupt")
      (Circuit.flops c)
  in
  { po; capture }

let run_single t ~pi ~state =
  let widen arr = Array.map (fun b -> if b then Lanes.all_mask else 0) arr in
  let r = run t ~pi:(widen pi) ~state:(widen state) ~injections:[] in
  (Array.map (fun w -> Lanes.get w 0) r.po, Array.map (fun w -> Lanes.get w 0) r.capture)

let net_values t = t.values
