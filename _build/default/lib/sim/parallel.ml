module Circuit = Tvs_netlist.Circuit

type injection = Inject.injection = {
  lane : int;
  stuck : bool;
  stem : Circuit.net;
  branch : (Circuit.net * int) option;
}

type result = { po : int array; capture : int array }

type t = {
  circuit : Circuit.t;
  values : int array;  (* lane-packed value per net *)
  ov : Inject.t;
}

let create circuit =
  let n = Circuit.num_nets circuit in
  { circuit; values = Array.make n 0; ov = Inject.create circuit }

let circuit t = t.circuit

let run t ~pi ~state ~injections =
  let c = t.circuit in
  if Array.length pi <> Circuit.num_inputs c then invalid_arg "Parallel.run: pi length mismatch";
  if Array.length state <> Circuit.num_flops c then invalid_arg "Parallel.run: state length mismatch";
  Inject.clear t.ov;
  Inject.install t.ov injections;
  let apply_stem net v = Inject.apply_stem t.ov net v in
  Array.iteri (fun i net -> t.values.(net) <- apply_stem net (pi.(i) land Lanes.all_mask)) (Circuit.inputs c);
  Array.iteri
    (fun i net -> t.values.(net) <- apply_stem net (state.(i) land Lanes.all_mask))
    (Circuit.flops c);
  Array.iter
    (fun net ->
      let v =
        match Circuit.driver c net with
        | Circuit.Gate_node (kind, ins) -> Inject.eval_gate t.ov ~values:t.values net kind ins
        | Circuit.Const b -> Lanes.broadcast b
        | Circuit.Primary_input | Circuit.Flip_flop _ -> t.values.(net)
      in
      t.values.(net) <- apply_stem net v)
    (Circuit.topo_order c);
  let po = Array.map (fun net -> t.values.(net)) (Circuit.outputs c) in
  let capture =
    Array.map
      (fun fnet ->
        match Circuit.driver c fnet with
        | Circuit.Flip_flop d -> Inject.fetch t.ov ~values:t.values ~sink:fnet ~pin:0 d
        | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ ->
            invalid_arg "Parallel.run: flop list corrupt")
      (Circuit.flops c)
  in
  { po; capture }

let run_single t ~pi ~state =
  let widen arr = Array.map (fun b -> if b then Lanes.all_mask else 0) arr in
  let r = run t ~pi:(widen pi) ~state:(widen state) ~injections:[] in
  (Array.map (fun w -> Lanes.get w 0) r.po, Array.map (fun w -> Lanes.get w 0) r.capture)

let net_values t = t.values
