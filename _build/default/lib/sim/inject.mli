(** Per-lane stuck-at override machinery shared by the packed simulators
    ({!Parallel}, full broadcast, and {!Event}, cone-restricted).

    An override set maps stem faults to per-net force-to-0/1 lane masks and
    fanout-branch faults to per-(sink, pin) masks. The structure is reusable:
    {!clear} undoes exactly what the previous {!install} touched, in time
    proportional to the injection count, keeping array and hash-table
    capacity across batch chunks. *)

type injection = {
  lane : int;  (** lane carrying the faulty machine *)
  stuck : bool;  (** stuck-at value *)
  stem : Tvs_netlist.Circuit.net;  (** the faulted net *)
  branch : (Tvs_netlist.Circuit.net * int) option;
      (** [None] = stem fault; [Some (sink, pin)] = fanout-branch fault
          visible only to that consumer pin. *)
}

type t

val create : Tvs_netlist.Circuit.t -> t
(** All overrides initially empty. The circuit fixes the branch-slot layout
    (one slot per consumer pin). *)

val clear : t -> unit
val install : t -> injection list -> unit
(** Raises [Invalid_argument] on a lane outside [0, Lanes.width) or a branch
    pin outside the sink's fanin range. *)

val apply_stem : t -> Tvs_netlist.Circuit.net -> int -> int
(** Apply the net's stem force masks to a lane-packed value. *)

val stem_overridden : t -> Tvs_netlist.Circuit.net -> bool

val sink_flagged : t -> Tvs_netlist.Circuit.net -> bool
(** Whether the sink has at least one branch override installed — the guard
    for taking the slower per-pin {!fetch} path when evaluating its gate. *)

val fetch : t -> values:int array -> sink:Tvs_netlist.Circuit.net -> pin:int -> Tvs_netlist.Circuit.net -> int
(** Value of a source net as seen by one consumer pin (branch overrides
    applied). *)

val eval_gate :
  t -> values:int array -> Tvs_netlist.Circuit.net -> Tvs_netlist.Gate.kind -> int array -> int
(** Evaluate one gate over lane-packed fanin values, honouring branch
    overrides on the gate's pins. The stem masks of the output net are NOT
    applied — callers compose with {!apply_stem}. *)
