lib/sim/event.mli: Inject Parallel Tvs_netlist
