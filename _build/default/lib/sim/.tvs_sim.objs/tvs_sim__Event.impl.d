lib/sim/event.ml: Array Inject Lanes List Parallel Tvs_netlist
