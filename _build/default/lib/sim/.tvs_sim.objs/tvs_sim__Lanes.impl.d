lib/sim/lanes.ml: Array
