lib/sim/comb.ml: Array Tvs_logic Tvs_netlist
