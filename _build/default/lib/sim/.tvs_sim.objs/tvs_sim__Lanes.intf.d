lib/sim/lanes.mli:
