lib/sim/parallel.mli: Tvs_netlist
