lib/sim/parallel.mli: Inject Tvs_netlist
