lib/sim/inject.ml: Array Lanes List Tvs_netlist
