lib/sim/parallel.ml: Array Hashtbl Lanes List Option Tvs_netlist
