lib/sim/parallel.ml: Array Inject Lanes Tvs_netlist
