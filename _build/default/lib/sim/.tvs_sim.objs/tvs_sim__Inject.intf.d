lib/sim/inject.mli: Tvs_netlist
