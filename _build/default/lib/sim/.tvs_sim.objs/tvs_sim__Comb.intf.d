lib/sim/comb.mli: Tvs_logic Tvs_netlist
