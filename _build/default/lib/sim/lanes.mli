(** Bit-lane packing helpers for the word-parallel simulator.

    A machine word carries up to [width] independent simulation lanes
    (63 on a 64-bit OCaml runtime; the sign bit is unused so masks stay
    non-negative). Lane 0 conventionally holds the fault-free machine. *)

val width : int
(** Number of usable lanes per word. *)

val all_mask : int
(** Word with every usable lane set. *)

val mask : int -> int
(** [mask k] has lanes [0 .. k-1] set. [0 <= k <= width]. *)

val lane_bit : int -> int
(** [lane_bit i] has only lane [i] set. *)

val get : int -> int -> bool
(** [get word i] reads lane [i]. *)

val set : int -> int -> bool -> int
(** [set word i v] returns [word] with lane [i] forced to [v]. *)

val broadcast : bool -> int
(** All lanes equal to the given value. *)

val of_bools : bool array -> int
(** Pack up to [width] lane values, index = lane. *)

val to_bools : n:int -> int -> bool array
(** Unpack the first [n] lanes. *)
