let width = 63

let all_mask = (1 lsl width) - 1

let mask k =
  assert (k >= 0 && k <= width);
  if k = width then all_mask else (1 lsl k) - 1

let lane_bit i =
  assert (i >= 0 && i < width);
  1 lsl i

let get word i = word lsr i land 1 = 1

let set word i v = if v then word lor lane_bit i else word land lnot (lane_bit i)

let broadcast v = if v then all_mask else 0

let of_bools arr =
  assert (Array.length arr <= width);
  let w = ref 0 in
  Array.iteri (fun i b -> if b then w := !w lor (1 lsl i)) arr;
  !w

let to_bools ~n word = Array.init n (get word)
