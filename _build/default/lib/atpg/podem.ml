module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Ternary = Tvs_logic.Ternary
module Fivev = Tvs_logic.Fivev
module Fault = Tvs_fault.Fault

type result = Detected of Cube.t | Untestable | Aborted

type config = { backtrack_limit : int; guided : bool }

let default_config = { backtrack_limit = 100; guided = true }

(* Assignable positions: primary inputs and scan cells. *)
type pos = Pi of int | Cell of int

type ctx = {
  c : Circuit.t;
  guide : Scoap.t;
  values : Fivev.t array; (* per net, kept current by event-driven implication *)
  positions : (pos * Circuit.net) array;
  pos_of_net : int array; (* net -> index into [positions], or -1 *)
  levels : int array;
  depth : int;
  (* Event queue: one bucket of nets per logic level, processed ascending so
     each net is evaluated at most once per propagation. *)
  buckets : Circuit.net list array;
  queued : bool array;
  (* Fault-cone marking, generation-stamped to avoid O(nets) clears. *)
  tfo_stamp : int array;
  mutable stamp : int;
  (* Fault-free implied values for the last-seen constraint array, so that
     repeated calls under one cycle's constraints (the stitching engine's
     pattern) pay a blit instead of a full re-evaluation. *)
  mutable memo_key : Ternary.t array option;
  memo_values : Fivev.t array;
}

let create ?scoap c =
  let guide = match scoap with Some s -> s | None -> Scoap.compute c in
  let pis = Circuit.inputs c and ffs = Circuit.flops c in
  let positions =
    Array.append
      (Array.mapi (fun i net -> (Pi i, net)) pis)
      (Array.mapi (fun i net -> (Cell i, net)) ffs)
  in
  let n = Circuit.num_nets c in
  let pos_of_net = Array.make n (-1) in
  Array.iteri (fun idx (_, net) -> pos_of_net.(net) <- idx) positions;
  let levels = Array.init n (fun net -> Circuit.level c net) in
  let depth = Circuit.depth c in
  {
    c;
    guide;
    values = Array.make n Fivev.X;
    positions;
    pos_of_net;
    levels;
    depth;
    buckets = Array.make (depth + 1) [];
    queued = Array.make n false;
    tfo_stamp = Array.make n (-1);
    stamp = 0;
    memo_key = None;
    memo_values = Array.make n Fivev.X;
  }

let circuit ctx = ctx.c
let scoap ctx = ctx.guide

(* Value of the faulty machine forced at the fault site, given the fault-free
   value [v] flowing there. Unknown good value stays unknown. *)
let site_transform (fault : Fault.t) v =
  match Fivev.good v with
  | Ternary.X -> Fivev.X
  | g -> Fivev.of_pair g (Ternary.of_bool fault.stuck)

(* Per-generate state: the fault, its transitive fanout (the only region
   where D values can live), the observation points inside it, and the
   current input assignment. *)
type run = {
  ctx : ctx;
  fault : Fault.t;
  assignment : Ternary.t array;
  tfo_gates : Circuit.net list;  (* gate nets in the fault's fanout cone *)
  obs_po : Circuit.net list;  (* primary-output nets in the cone *)
  obs_flops : Circuit.net list;  (* flop nets whose D capture lies in the cone *)
}

let is_branch_read (fault : Fault.t) sink pin =
  match fault.branch with Some (s, p) -> s = sink && p = pin | None -> false

(* Value of [src] as seen by pin [pin] of [sink], fault-aware. *)
let read run ~sink ~pin src =
  let v = run.ctx.values.(src) in
  if run.fault.stem = src && is_branch_read run.fault sink pin then site_transform run.fault v
  else v

let eval_net run net =
  let ctx = run.ctx in
  let v =
    match Circuit.driver ctx.c net with
    | Circuit.Gate_node (kind, ins) ->
        Gate.eval_fivev kind (Array.mapi (fun pin src -> read run ~sink:net ~pin src) ins)
    | Circuit.Const b -> if b then Fivev.One else Fivev.Zero
    | Circuit.Primary_input | Circuit.Flip_flop _ -> (
        match run.assignment.(ctx.pos_of_net.(net)) with
        | Ternary.X -> Fivev.X
        | Ternary.Zero -> Fivev.Zero
        | Ternary.One -> Fivev.One)
  in
  if run.fault.branch = None && net = run.fault.stem then site_transform run.fault v else v

(* Fault-free full evaluation of the constraint-only assignment. The fault
   transform is layered on afterwards by [init_values] via propagation, so
   this result can be memoized across faults sharing one constraint array. *)
let eval_fault_free run =
  let ctx = run.ctx in
  let base_eval net =
    match Circuit.driver ctx.c net with
    | Circuit.Gate_node (kind, ins) ->
        Gate.eval_fivev kind (Array.map (fun src -> ctx.values.(src)) ins)
    | Circuit.Const b -> if b then Fivev.One else Fivev.Zero
    | Circuit.Primary_input | Circuit.Flip_flop _ -> (
        match run.assignment.(ctx.pos_of_net.(net)) with
        | Ternary.X -> Fivev.X
        | Ternary.Zero -> Fivev.Zero
        | Ternary.One -> Fivev.One)
  in
  Array.iter (fun net -> ctx.values.(net) <- base_eval net) (Circuit.inputs ctx.c);
  Array.iter (fun net -> ctx.values.(net) <- base_eval net) (Circuit.flops ctx.c);
  Array.iter (fun net -> ctx.values.(net) <- base_eval net) (Circuit.topo_order ctx.c)

let enqueue ctx net =
  if not ctx.queued.(net) then begin
    ctx.queued.(net) <- true;
    let l = ctx.levels.(net) in
    ctx.buckets.(l) <- net :: ctx.buckets.(l)
  end

(* Event-driven implication from one changed source net. Returns the trail of
   (net, old_value) pairs for undo. *)
let propagate run source =
  let ctx = run.ctx in
  let trail = ref [] in
  enqueue ctx source;
  for level = 0 to ctx.depth do
    let rec drain = function
      | [] -> ()
      | net :: rest ->
          ctx.queued.(net) <- false;
          let old_v = ctx.values.(net) in
          let new_v = eval_net run net in
          if not (Fivev.equal old_v new_v) then begin
            trail := (net, old_v) :: !trail;
            ctx.values.(net) <- new_v;
            Array.iter
              (fun (sink, _pin) ->
                match Circuit.driver ctx.c sink with
                | Circuit.Gate_node _ -> enqueue ctx sink
                | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> ())
              (Circuit.fanout ctx.c net)
          end;
          drain rest
    in
    let nets = ctx.buckets.(level) in
    ctx.buckets.(level) <- [];
    drain nets
  done;
  !trail

let undo run trail = List.iter (fun (net, old_v) -> run.ctx.values.(net) <- old_v) trail

(* Mark the fault's transitive fanout cone; collect its observation points
   and gate nets. *)
let mark_tfo ctx (fault : Fault.t) =
  ctx.stamp <- ctx.stamp + 1;
  let stamp = ctx.stamp in
  let gates = ref [] and obs_po = ref [] and obs_flops = ref [] in
  let add_flop fnet = if not (List.memq fnet !obs_flops) then obs_flops := fnet :: !obs_flops in
  let rec visit net =
    if ctx.tfo_stamp.(net) <> stamp then begin
      ctx.tfo_stamp.(net) <- stamp;
      (match Circuit.driver ctx.c net with
      | Circuit.Gate_node _ -> gates := net :: !gates
      | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> ());
      if Circuit.is_output ctx.c net then obs_po := net :: !obs_po;
      Array.iter
        (fun (sink, _pin) ->
          match Circuit.driver ctx.c sink with
          | Circuit.Flip_flop _ -> add_flop sink
          | Circuit.Gate_node _ -> visit sink
          | Circuit.Primary_input | Circuit.Const _ -> ())
        (Circuit.fanout ctx.c net)
    end
  in
  (match fault.branch with
  | None -> visit fault.stem
  | Some (sink, _pin) -> (
      match Circuit.driver ctx.c sink with
      | Circuit.Flip_flop _ -> add_flop sink
      | Circuit.Gate_node _ -> visit sink
      | Circuit.Primary_input | Circuit.Const _ -> ()));
  (!gates, !obs_po, !obs_flops)

let error_observed run =
  List.exists (fun net -> Fivev.is_error run.ctx.values.(net)) run.obs_po
  || List.exists
       (fun fnet ->
         match Circuit.driver run.ctx.c fnet with
         | Circuit.Flip_flop d -> Fivev.is_error (read run ~sink:fnet ~pin:0 d)
         | Circuit.Primary_input | Circuit.Gate_node _ | Circuit.Const _ -> false)
       run.obs_flops

let site_value run =
  match run.fault.branch with
  | None -> run.ctx.values.(run.fault.stem)
  | Some _ -> site_transform run.fault run.ctx.values.(run.fault.stem)

(* Gates in the fault cone whose output is X while a (fault-aware) input
   carries an error. *)
let d_frontier run =
  let has_error_input net ins =
    let found = ref false in
    Array.iteri (fun pin src -> if Fivev.is_error (read run ~sink:net ~pin src) then found := true) ins;
    !found
  in
  List.filter
    (fun net ->
      Fivev.equal run.ctx.values.(net) Fivev.X
      &&
      match Circuit.driver run.ctx.c net with
      | Circuit.Gate_node (_, ins) -> has_error_input net ins
      | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> false)
    run.tfo_gates

(* Can an error at some D-frontier gate still reach an observation point
   through X-valued nets? *)
let x_path_exists run frontier =
  let c = run.ctx.c and values = run.ctx.values in
  let visited = Hashtbl.create 64 in
  let rec reachable net =
    if Hashtbl.mem visited net then false
    else begin
      Hashtbl.add visited net ();
      Fivev.equal values.(net) Fivev.X
      && (Circuit.is_output c net
         || Array.exists
              (fun (sink, _pin) ->
                match Circuit.driver c sink with
                | Circuit.Flip_flop _ -> true
                | Circuit.Gate_node _ -> reachable sink
                | Circuit.Primary_input | Circuit.Const _ -> false)
              (Circuit.fanout c net))
    end
  in
  List.exists reachable frontier

(* Backtrace an objective (net, value) to an unassigned input position.
   Heuristic only; soundness comes from implication plus backtracking. *)
let backtrace run ~guided (net0, v0) =
  let ctx = run.ctx in
  let c = ctx.c and values = ctx.values and guide = ctx.guide in
  let first_x ins =
    let best = ref None in
    Array.iter (fun i -> if !best = None && Fivev.equal values.(i) Fivev.X then best := Some (i, 0)) ins;
    !best
  in
  let pick prefer_high v ins =
    if not guided then first_x ins
    else begin
      let best = ref None in
      Array.iter
        (fun i ->
          if Fivev.equal values.(i) Fivev.X then
            let cost = Scoap.cc guide i v in
            match !best with
            | Some (_, bcost) when (if prefer_high then bcost >= cost else bcost <= cost) -> ()
            | Some _ | None -> best := Some (i, cost))
        ins;
      !best
    end
  in
  let easiest = pick false and hardest = pick true in
  let rec walk net v fuel =
    if fuel = 0 then None
    else
      let idx = ctx.pos_of_net.(net) in
      if idx >= 0 then
        if Ternary.equal run.assignment.(idx) Ternary.X then Some (idx, v) else None
      else
        match Circuit.driver c net with
        | Circuit.Const _ -> None
        | Circuit.Primary_input | Circuit.Flip_flop _ -> None
        | Circuit.Gate_node (kind, ins) -> (
            let u = v <> Gate.inversion kind in
            match Gate.controlling_value kind with
            | Some ctrl ->
                let choice = if u = ctrl then easiest u ins else hardest u ins in
                (match choice with Some (i, _) -> walk i u (fuel - 1) | None -> None)
            | None -> (
                match kind with
                | Gate.Not | Gate.Buf -> walk ins.(0) u (fuel - 1)
                | Gate.Xor | Gate.Xnor ->
                    (* Choose an X input; its target makes the total parity
                       match, counting specified inputs and treating other X
                       inputs as 0 ([u] already accounts for XNOR inversion). *)
                    let parity = ref u in
                    Array.iter
                      (fun i ->
                        match Fivev.good values.(i) with
                        | Ternary.One -> parity := not !parity
                        | Ternary.Zero | Ternary.X -> ())
                      ins;
                    (match easiest !parity ins with
                    | Some (i, _) -> walk i !parity (fuel - 1)
                    | None -> None)
                | Gate.And | Gate.Or | Gate.Nand | Gate.Nor -> None))
  in
  walk net0 v0 (Circuit.num_nets c + 1)

(* Pick the propagation objective from the D-frontier: the gate whose output
   is cheapest to observe, targeting one of its X inputs with the gate's
   non-controlling value. *)
let propagation_objective run frontier =
  let values = run.ctx.values and guide = run.ctx.guide in
  let cheapest =
    List.fold_left
      (fun acc net ->
        let cost = Scoap.co_stem guide net in
        match acc with Some (_, c0) when c0 <= cost -> acc | Some _ | None -> Some (net, cost))
      None frontier
  in
  match cheapest with
  | None -> None
  | Some (net, _) -> (
      match Circuit.driver run.ctx.c net with
      | Circuit.Gate_node (kind, ins) -> (
          let target = match Gate.controlling_value kind with Some c -> not c | None -> false in
          let x_input = Array.find_opt (fun i -> Fivev.equal values.(i) Fivev.X) ins in
          match x_input with Some i -> Some (i, target) | None -> None)
      | Circuit.Primary_input | Circuit.Flip_flop _ | Circuit.Const _ -> None)

type decision = {
  pos_idx : int;
  mutable value : bool;
  mutable flipped : bool;
  mutable trail : (Circuit.net * Fivev.t) list;
}

let generate ?(config = default_config) ?constraints ctx (fault : Fault.t) =
  let c = ctx.c in
  let nflops = Circuit.num_flops c in
  let constraints =
    match constraints with
    | Some arr ->
        if Array.length arr <> nflops then invalid_arg "Podem.generate: constraints length mismatch";
        arr
    | None -> Array.make nflops Ternary.X
  in
  let npos = Array.length ctx.positions in
  let assignment = Array.make npos Ternary.X in
  Array.iteri
    (fun i v ->
      match fst ctx.positions.(Circuit.num_inputs c + i) with
      | Cell _ -> assignment.(Circuit.num_inputs c + i) <- v
      | Pi _ -> assert false)
    constraints;
  let tfo_gates, obs_po, obs_flops = mark_tfo ctx fault in
  let run = { ctx; fault; assignment; tfo_gates; obs_po; obs_flops } in
  let n = Array.length ctx.values in
  (match ctx.memo_key with
  | Some key when key == constraints -> Array.blit ctx.memo_values 0 ctx.values 0 n
  | Some _ | None ->
      eval_fault_free run;
      Array.blit ctx.values 0 ctx.memo_values 0 n;
      ctx.memo_key <- Some constraints);
  (* Layer the fault transform on the fault-free base. *)
  (match fault.branch with
  | None -> ignore (propagate run fault.stem)
  | Some (sink, _pin) -> (
      match Circuit.driver c sink with
      | Circuit.Gate_node _ -> ignore (propagate run sink)
      | Circuit.Flip_flop _ | Circuit.Primary_input | Circuit.Const _ -> ()));
  let assign pos_idx v =
    assignment.(pos_idx) <- Ternary.of_bool v;
    propagate run (snd ctx.positions.(pos_idx))
  in
  let unassign pos_idx trail =
    assignment.(pos_idx) <- Ternary.X;
    undo run trail
  in
  let extract_cube () =
    let pi = Array.make (Circuit.num_inputs c) Ternary.X in
    let scan = Array.make nflops Ternary.X in
    Array.iteri
      (fun idx (p, _) ->
        match p with Pi i -> pi.(i) <- assignment.(idx) | Cell i -> scan.(i) <- assignment.(idx))
      ctx.positions;
    ({ pi; scan } : Cube.t)
  in
  let stack = ref [] in
  let backtracks = ref 0 in
  (* Pop fully explored decisions, then flip the most recent unexplored one.
     [None] when the whole space is exhausted. *)
  let rec flip_last () =
    match !stack with
    | [] -> None
    | d :: rest ->
        unassign d.pos_idx d.trail;
        if d.flipped then begin
          stack := rest;
          flip_last ()
        end
        else begin
          d.value <- not d.value;
          d.flipped <- true;
          d.trail <- assign d.pos_idx d.value;
          Some ()
        end
  in
  let rec search () =
    if error_observed run then Detected (extract_cube ())
    else begin
      let site = site_value run in
      let activated = Fivev.is_error site in
      let objective =
        if activated then begin
          let frontier = d_frontier run in
          if frontier = [] || not (x_path_exists run frontier) then None
          else propagation_objective run frontier
        end
        else if Fivev.equal site Fivev.X then Some (fault.stem, not fault.stuck)
        else None (* activation impossible under current assignments *)
      in
      let next =
        match objective with
        | Some (net, v) -> backtrace run ~guided:config.guided (net, v)
        | None -> None
      in
      match next with
      | Some (pos_idx, v) ->
          let trail = assign pos_idx v in
          stack := { pos_idx; value = v; flipped = false; trail } :: !stack;
          search ()
      | None ->
          if !backtracks >= config.backtrack_limit then Aborted
          else begin
            incr backtracks;
            match flip_last () with Some () -> search () | None -> Untestable
          end
    end
  in
  search ()
