(** Static test-set compaction.

    Two classic passes, usable separately or chained:

    - {!merge_cubes}: greedy pairwise merging of compatible cubes (their
      specified bits do not conflict), folding each cube into the first
      compatible survivor in reverse generation order. Detection is
      preserved structurally: a merged cube keeps every specified bit of its
      members, and a PODEM cube detects its target under {e any} fill.
    - {!reverse_order}: fault-simulate fully specified vectors in reverse
      order with fault dropping and keep only vectors that detect something
      new — late vectors (generated for hard faults) tend to cover many easy
      faults, making early vectors redundant. *)

val merge_cubes : Cube.t list -> Cube.t list
(** Result length <= input length; application order of survivors is
    preserved. *)

val reverse_order :
  Tvs_fault.Fault_sim.t ->
  faults:Tvs_fault.Fault.t array ->
  vectors:Cube.vector array ->
  Cube.vector array
(** The kept subset, in the original application order. Faults undetected by
    the whole input set impose no constraint. *)

val compaction_ratio : before:int -> after:int -> float
(** after / before; 1.0 for an empty input. *)
