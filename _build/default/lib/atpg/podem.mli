(** PODEM test generation (Goel 1981) over the full-scan combinational core,
    with optional pre-constrained scan cells.

    The constraint mechanism is what the stitching flow relies on: the
    retained part of the previous response occupies scan cells whose values
    are fixed, and PODEM must find a detecting assignment of the {e free}
    positions only (primary inputs plus the freshly shifted-in cells).

    Detection criterion is full observability (any primary output or any
    captured scan cell); the stitched flow classifies partial-observation
    outcomes afterwards by fault simulation. *)

type result =
  | Detected of Cube.t
      (** Cube over (PI, scan); constrained bits are included as specified. *)
  | Untestable
      (** Search space exhausted: redundant when unconstrained, merely
          unproducible under the given constraints otherwise. *)
  | Aborted  (** Backtrack limit hit. *)

type config = {
  backtrack_limit : int;
  guided : bool;
      (** use SCOAP costs in the backtrace (the default); [false] picks the
          first unassigned input instead — the ablation baseline *)
}

val default_config : config
(** 100 backtracks, SCOAP-guided, in line with classic ATPG practice. *)

type ctx

val create : ?scoap:Scoap.t -> Tvs_netlist.Circuit.t -> ctx
(** Pre-computes SCOAP guidance (unless supplied) and allocates simulation
    state reused across calls. *)

val circuit : ctx -> Tvs_netlist.Circuit.t
val scoap : ctx -> Scoap.t

val generate :
  ?config:config ->
  ?constraints:Tvs_logic.Ternary.t array ->
  ctx ->
  Tvs_fault.Fault.t ->
  result
(** [constraints] has one entry per scan cell ([X] = free); defaults to all
    free. Raises [Invalid_argument] on length mismatch. *)
