(** SCOAP testability measures (Goldstein 1979).

    Combinational controllabilities CC0/CC1 (cost of setting a net to 0/1)
    and observability CO (cost of propagating a net's value to an observation
    point). Primary inputs and scan cells cost 1 to control; primary outputs
    and scan-capture points cost 0 to observe. Used for PODEM backtrace
    guidance and for the paper's "hardness to test" fault ordering. *)

type t

val compute : Tvs_netlist.Circuit.t -> t

val cc0 : t -> Tvs_netlist.Circuit.net -> int
val cc1 : t -> Tvs_netlist.Circuit.net -> int

val cc : t -> Tvs_netlist.Circuit.net -> bool -> int
(** [cc t net v] = cost of driving [net] to value [v]. *)

val co_stem : t -> Tvs_netlist.Circuit.net -> int
(** Stem observability: minimum over the net's branches and any direct
    primary-output observation. [max_int / 4] when unobservable. *)

val co_branch : t -> sink:Tvs_netlist.Circuit.net -> pin:int -> int
(** Observability of one fanout branch. *)

val fault_hardness : t -> Tvs_fault.Fault.t -> int
(** Detection-cost estimate: controllability of the activation value at the
    site plus the site's observability. Higher = harder. The paper's
    "Hardness" vector-selection strategy orders faults by this measure. *)

val unreachable : int
(** The cost used for unobservable/uncontrollable sites. *)
