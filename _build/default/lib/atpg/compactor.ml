module Fault_sim = Tvs_fault.Fault_sim

(* Greedy static compaction: fold each cube into the first compatible
   earlier survivor, scanning in reverse generation order. *)
let merge_cubes cubes =
  let survivors = ref [] in
  let fold_in cube =
    let rec try_merge = function
      | [] -> survivors := cube :: !survivors
      | s :: rest -> (
          match Cube.merge s cube with
          | Some merged ->
              let rec replace = function
                | [] -> []
                | x :: xs -> if x == s then merged :: xs else x :: replace xs
              in
              survivors := replace !survivors
          | None -> try_merge rest)
    in
    try_merge !survivors
  in
  List.iter fold_in (List.rev cubes);
  (* [survivors] is ordered newest-first; restore generation order. *)
  List.rev !survivors

let reverse_order sim ~faults ~vectors =
  let n = Array.length vectors in
  let detected = Array.make (Array.length faults) false in
  let kept = Array.make n false in
  (* Establish the reachable coverage so undetectable faults do not force
     every vector to be kept. *)
  Array.iter
    (fun (v : Cube.vector) ->
      Array.iteri
        (fun i hit -> if hit then detected.(i) <- true)
        (Fault_sim.detected_faults sim ~pi:v.Cube.pi ~state:v.Cube.scan faults))
    vectors;
  let remaining = ref (Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 detected) in
  let todo = Array.map (fun d -> d) detected in
  for k = n - 1 downto 0 do
    if !remaining > 0 then begin
      let v = vectors.(k) in
      let flags = Fault_sim.detected_faults sim ~pi:v.Cube.pi ~state:v.Cube.scan faults in
      let news = ref 0 in
      Array.iteri
        (fun i hit ->
          if hit && todo.(i) then begin
            todo.(i) <- false;
            incr news
          end)
        flags;
      if !news > 0 then begin
        kept.(k) <- true;
        remaining := !remaining - !news
      end
    end
  done;
  Array.of_list
    (List.filteri (fun k _ -> kept.(k)) (Array.to_list vectors))

let compaction_ratio ~before ~after =
  if before = 0 then 1.0 else float_of_int after /. float_of_int before
