module Circuit = Tvs_netlist.Circuit
module Ternary = Tvs_logic.Ternary
module Fault = Tvs_fault.Fault
module Fault_sim = Tvs_fault.Fault_sim
module Rng = Tvs_util.Rng

type t = {
  vectors : Cube.vector array;
  cubes : Cube.t array;
  detected : bool array;
  redundant : Fault.t list;
  aborted : Fault.t list;
}

let coverage t =
  let redundant = List.length t.redundant in
  let considered = Array.length t.detected - redundant in
  if considered <= 0 then 1.0
  else
    float_of_int (Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 t.detected)
    /. float_of_int considered

let num_vectors t = Array.length t.vectors

type options = {
  podem : Podem.config;
  random_patterns : int;
  random_giveup : int;
  compaction : bool;
  fault_dropping : bool;
}

let default_options =
  {
    podem = Podem.default_config;
    random_patterns = 64;
    random_giveup = 5;
    compaction = true;
    fault_dropping = true;
  }

let random_vector rng c =
  {
    Cube.pi = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng);
    scan = Array.init (Circuit.num_flops c) (fun _ -> Rng.bool rng);
  }

(* Simulate [vec] against the not-yet-detected faults; flip their [detected]
   flags. Returns how many new faults the vector catches. *)
let drop_detected sim faults detected (vec : Cube.vector) =
  let undetected_idx =
    Array.to_list faults
    |> List.mapi (fun i f -> (i, f))
    |> List.filter (fun (i, _) -> not detected.(i))
  in
  if undetected_idx = [] then 0
  else begin
    let idxs = Array.of_list (List.map fst undetected_idx) in
    let subset = Array.of_list (List.map snd undetected_idx) in
    let flags = Fault_sim.detected_faults sim ~pi:vec.Cube.pi ~state:vec.Cube.scan subset in
    let news = ref 0 in
    Array.iteri
      (fun k hit ->
        if hit then begin
          detected.(idxs.(k)) <- true;
          incr news
        end)
      flags;
    !news
  end

let generate ?(options = default_options) ~rng ctx faults =
  let c = Podem.circuit ctx in
  let sim = Fault_sim.create c in
  let n = Array.length faults in
  let detected = Array.make n false in
  let cubes = ref [] in
  let vectors = ref [] in
  let redundant = ref [] in
  let aborted = ref [] in
  let keep_vector cube vec =
    cubes := cube :: !cubes;
    vectors := vec :: !vectors
  in
  (* Phase 1: random patterns knock out the easy faults cheaply. *)
  let useless = ref 0 in
  let tried = ref 0 in
  while !tried < options.random_patterns && !useless < options.random_giveup do
    incr tried;
    let vec = random_vector rng c in
    let news = drop_detected sim faults detected vec in
    if news > 0 then begin
      useless := 0;
      keep_vector (Cube.of_vector vec) vec
    end
    else incr useless
  done;
  (* Phase 2: deterministic PODEM per remaining fault, with dropping. *)
  let target i =
    if not detected.(i) then
      match Podem.generate ~config:options.podem ctx faults.(i) with
      | Podem.Detected cube ->
          let vec = Cube.fill_random rng cube in
          detected.(i) <- true;
          if options.fault_dropping then ignore (drop_detected sim faults detected vec);
          keep_vector cube vec
      | Podem.Untestable -> redundant := faults.(i) :: !redundant
      | Podem.Aborted -> aborted := faults.(i) :: !aborted
  in
  for i = 0 to n - 1 do
    target i
  done;
  (* Phase 3: optional static compaction plus coverage-restoring top-up. *)
  let final_cubes, final_vectors =
    if not options.compaction then (List.rev !cubes, List.rev !vectors)
    else begin
      let merged = Compactor.merge_cubes !cubes in
      let refill cube = Cube.fill_random rng cube in
      let vecs = List.map refill merged in
      (* Re-check coverage with the compacted fill; top up where needed. *)
      Array.fill detected 0 n false;
      List.iter (fun v -> ignore (drop_detected sim faults detected v)) vecs;
      let extra_cubes = ref [] in
      let extra_vecs = ref [] in
      for i = 0 to n - 1 do
        if
          (not detected.(i))
          && (not (List.exists (Fault.equal faults.(i)) !redundant))
          && not (List.exists (Fault.equal faults.(i)) !aborted)
        then
          match Podem.generate ~config:options.podem ctx faults.(i) with
          | Podem.Detected cube ->
              let vec = Cube.fill_random rng cube in
              detected.(i) <- true;
              ignore (drop_detected sim faults detected vec);
              extra_cubes := cube :: !extra_cubes;
              extra_vecs := vec :: !extra_vecs
          | Podem.Untestable -> redundant := faults.(i) :: !redundant
          | Podem.Aborted -> aborted := faults.(i) :: !aborted
      done;
      (merged @ List.rev !extra_cubes, vecs @ List.rev !extra_vecs)
    end
  in
  (* A backtrack-aborted fault may still have been detected fortuitously by a
     later vector's drop simulation; keep the lists disjoint from [detected]. *)
  let still_missing f =
    let idx = ref (-1) in
    Array.iteri (fun i g -> if !idx < 0 && Fault.equal f g then idx := i) faults;
    !idx >= 0 && not detected.(!idx)
  in
  {
    vectors = Array.of_list final_vectors;
    cubes = Array.of_list final_cubes;
    detected;
    redundant = List.rev !redundant;
    aborted = List.filter still_missing (List.rev !aborted);
  }
