module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate

let unreachable = max_int / 4

type t = { c : Circuit.t; cc0 : int array; cc1 : int array; co : int array }

let sat_add a b = if a >= unreachable || b >= unreachable then unreachable else min unreachable (a + b)

let sum_sat arr f = Array.fold_left (fun acc x -> sat_add acc (f x)) 0 arr

let min_over arr f = Array.fold_left (fun acc x -> min acc (f x)) unreachable arr

(* Minimal cost of giving the inputs of an n-ary parity gate even (dp.(0)) or
   odd (dp.(1)) parity. *)
let parity_costs cc0 cc1 ins =
  let dp = [| 0; unreachable |] in
  Array.iter
    (fun i ->
      let even = min (sat_add dp.(0) cc0.(i)) (sat_add dp.(1) cc1.(i)) in
      let odd = min (sat_add dp.(1) cc0.(i)) (sat_add dp.(0) cc1.(i)) in
      dp.(0) <- even;
      dp.(1) <- odd)
    ins;
  dp

(* Observability of one fanout branch, given the sink's output CO and the
   side-input controllabilities already in [t]. Valid both during the reverse
   sweep (sinks are processed before their fanins) and for later queries. *)
let co_branch t ~sink ~pin =
  match Circuit.driver t.c sink with
  | Circuit.Flip_flop _ -> 0 (* captured into the scan chain: directly observed *)
  | Circuit.Gate_node (kind, ins) ->
      let out_co = t.co.(sink) in
      let others f =
        let acc = ref 0 in
        Array.iteri (fun j i -> if j <> pin then acc := sat_add !acc (f i)) ins;
        !acc
      in
      let side_cost =
        match kind with
        | Gate.And | Gate.Nand -> others (fun i -> t.cc1.(i))
        | Gate.Or | Gate.Nor -> others (fun i -> t.cc0.(i))
        | Gate.Not | Gate.Buf -> 0
        | Gate.Xor | Gate.Xnor -> others (fun i -> min t.cc0.(i) t.cc1.(i))
      in
      sat_add (sat_add out_co side_cost) 1
  | Circuit.Primary_input | Circuit.Const _ -> unreachable

let compute c =
  let n = Circuit.num_nets c in
  let cc0 = Array.make n unreachable in
  let cc1 = Array.make n unreachable in
  Array.iter
    (fun net ->
      cc0.(net) <- 1;
      cc1.(net) <- 1)
    (Circuit.inputs c);
  Array.iter
    (fun net ->
      cc0.(net) <- 1;
      cc1.(net) <- 1)
    (Circuit.flops c);
  Array.iter
    (fun net ->
      match Circuit.driver c net with
      | Circuit.Const b ->
          if b then cc1.(net) <- 0 else cc0.(net) <- 0
      | Circuit.Gate_node (kind, ins) -> (
          let inc x = sat_add x 1 in
          match kind with
          | Gate.And ->
              cc1.(net) <- inc (sum_sat ins (fun i -> cc1.(i)));
              cc0.(net) <- inc (min_over ins (fun i -> cc0.(i)))
          | Gate.Nand ->
              cc0.(net) <- inc (sum_sat ins (fun i -> cc1.(i)));
              cc1.(net) <- inc (min_over ins (fun i -> cc0.(i)))
          | Gate.Or ->
              cc0.(net) <- inc (sum_sat ins (fun i -> cc0.(i)));
              cc1.(net) <- inc (min_over ins (fun i -> cc1.(i)))
          | Gate.Nor ->
              cc1.(net) <- inc (sum_sat ins (fun i -> cc0.(i)));
              cc0.(net) <- inc (min_over ins (fun i -> cc1.(i)))
          | Gate.Not ->
              cc0.(net) <- inc cc1.(ins.(0));
              cc1.(net) <- inc cc0.(ins.(0))
          | Gate.Buf ->
              cc0.(net) <- inc cc0.(ins.(0));
              cc1.(net) <- inc cc1.(ins.(0))
          | Gate.Xor ->
              let dp = parity_costs cc0 cc1 ins in
              cc0.(net) <- inc dp.(0);
              cc1.(net) <- inc dp.(1)
          | Gate.Xnor ->
              let dp = parity_costs cc0 cc1 ins in
              cc0.(net) <- inc dp.(1);
              cc1.(net) <- inc dp.(0))
      | Circuit.Primary_input | Circuit.Flip_flop _ -> ())
    (Circuit.topo_order c);
  let t = { c; cc0; cc1; co = Array.make n unreachable } in
  let stem_co net =
    let direct = if Circuit.is_output c net then 0 else unreachable in
    Array.fold_left
      (fun acc (sink, pin) -> min acc (co_branch t ~sink ~pin))
      direct (Circuit.fanout c net)
  in
  (* Reverse topological sweep: gate outputs first, then sources. *)
  let order = Circuit.topo_order c in
  for i = Array.length order - 1 downto 0 do
    t.co.(order.(i)) <- stem_co order.(i)
  done;
  Array.iter (fun net -> t.co.(net) <- stem_co net) (Circuit.inputs c);
  Array.iter (fun net -> t.co.(net) <- stem_co net) (Circuit.flops c);
  t

let cc0 t net = t.cc0.(net)
let cc1 t net = t.cc1.(net)
let cc t net v = if v then t.cc1.(net) else t.cc0.(net)
let co_stem t net = t.co.(net)

let fault_hardness t (f : Tvs_fault.Fault.t) =
  let activation = cc t f.stem (not f.stuck) in
  let observation =
    match f.branch with
    | None -> co_stem t f.stem
    | Some (sink, pin) -> co_branch t ~sink ~pin
  in
  sat_add activation observation
