(** Complete test-set generation for the traditional full-shift flow: the
    project's stand-in for ATALANTA. Produces the baseline vector count
    ([aTV] in the paper's tables) and the baseline cost denominators.

    Pipeline: optional random-pattern phase with fault dropping, then
    PODEM per remaining fault (dropping after every vector), then optional
    greedy static compaction of the cubes followed by a coverage-restoring
    top-up pass. *)

type t = {
  vectors : Cube.vector array;  (** final, fully specified test set *)
  cubes : Cube.t array;  (** the cubes the vectors were filled from *)
  detected : bool array;  (** per fault of the input list *)
  redundant : Tvs_fault.Fault.t list;  (** proven untestable *)
  aborted : Tvs_fault.Fault.t list;  (** backtrack limit hit *)
}

val coverage : t -> float
(** Detected fraction of the non-redundant faults. *)

val num_vectors : t -> int

type options = {
  podem : Podem.config;
  random_patterns : int;  (** max vectors in the random phase; 0 disables *)
  random_giveup : int;  (** stop after this many consecutive useless patterns *)
  compaction : bool;
  fault_dropping : bool;
      (** simulate each new vector against the whole undetected set (the
          default); [false] credits only the targeted fault — the ablation
          baseline showing why dropping matters *)
}

val default_options : options

val generate :
  ?options:options -> rng:Tvs_util.Rng.t -> Podem.ctx -> Tvs_fault.Fault.t array -> t
(** Deterministic for a given [rng] state and fault order. *)
