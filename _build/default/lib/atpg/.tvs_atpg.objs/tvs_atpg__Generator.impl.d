lib/atpg/generator.ml: Array Compactor Cube List Podem Tvs_fault Tvs_logic Tvs_netlist Tvs_util
