lib/atpg/cube.ml: Array Format String Tvs_logic Tvs_netlist Tvs_util
