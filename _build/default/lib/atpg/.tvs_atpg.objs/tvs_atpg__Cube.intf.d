lib/atpg/cube.mli: Format Tvs_logic Tvs_netlist Tvs_util
