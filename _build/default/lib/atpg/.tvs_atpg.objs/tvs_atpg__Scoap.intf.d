lib/atpg/scoap.mli: Tvs_fault Tvs_netlist
