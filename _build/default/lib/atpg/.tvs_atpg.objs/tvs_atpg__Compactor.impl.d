lib/atpg/compactor.ml: Array Cube List Tvs_fault
