lib/atpg/compactor.mli: Cube Tvs_fault
