lib/atpg/podem.ml: Array Cube Hashtbl List Scoap Tvs_fault Tvs_logic Tvs_netlist
