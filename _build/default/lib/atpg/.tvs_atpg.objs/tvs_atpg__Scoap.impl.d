lib/atpg/scoap.ml: Array Tvs_fault Tvs_netlist
