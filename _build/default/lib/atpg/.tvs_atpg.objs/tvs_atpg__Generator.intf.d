lib/atpg/generator.mli: Cube Podem Tvs_fault Tvs_util
