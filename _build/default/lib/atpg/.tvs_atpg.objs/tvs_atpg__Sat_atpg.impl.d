lib/atpg/sat_atpg.ml: Array Cube Hashtbl List Tvs_fault Tvs_logic Tvs_netlist Tvs_util
