lib/atpg/podem.mli: Cube Scoap Tvs_fault Tvs_logic Tvs_netlist
