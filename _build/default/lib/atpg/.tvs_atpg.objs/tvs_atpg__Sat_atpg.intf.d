lib/atpg/sat_atpg.mli: Cube Tvs_fault Tvs_logic Tvs_netlist
