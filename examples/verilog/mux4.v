// 4:1 multiplexer built from tvs_mux2 library cells. The frontend
// decomposes each cell into NOT/AND/OR gates on parse; proving this file
// equivalent to the gate-level reference exercises that decomposition:
//
//   tvs equiv examples/verilog/mux4_ref.bench examples/verilog/mux4.v
module mux4 (d0, d1, d2, d3, s0, s1, y);
  input d0, d1, d2, d3, s0, s1;
  output y;
  wire m0, m1;

  tvs_mux2 u0 (.y(m0), .a(d0), .b(d1), .s(s0));
  tvs_mux2 u1 (.y(m1), .a(d2), .b(d3), .s(s0));
  tvs_mux2 u2 (.y(y),  .a(m0), .b(m1), .s(s1));
endmodule
