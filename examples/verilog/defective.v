// Deliberately defective netlist for exercising `tvs lint` on Verilog
// input: a multiply-driven net (TVS-N010), a reference to a net nothing
// defines (TVS-N009) and a combinational cycle (TVS-N001), each reported
// with the line number you are looking at.
//
//   tvs lint examples/verilog/defective.v --fail-on error   # exits 1
module defective (a, b, clk, y);
  input a, b, clk;
  output y;
  wire u, v, loop1, loop2;

  and g1 (u, a, b);
  and g2 (u, b, ghost);      // u driven twice; "ghost" is never defined
  or  g3 (loop1, loop2, a);  // loop1 and loop2 feed each other:
  and g4 (loop2, loop1, b);  //   a combinational cycle, no flop in between
  xor g5 (y, u, loop1);
  tvs_dff ff (.q(v), .d(y), .clk(clk));
endmodule
