// c17 with a single seeded defect: gate g16 is AND where the reference
// (examples/verilog/c17.v) has NAND. Same ports, same wires — only the
// equivalence checker tells them apart:
//
//   tvs equiv examples/verilog/c17.v examples/verilog/c17_defect.v   # exits 1
module c17_defect (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;

  nand g10 (N10, N1, N3);
  nand g11 (N11, N3, N6);
  and  g16 (N16, N2, N11);
  nand g19 (N19, N11, N7);
  nand g22 (N22, N10, N16);
  nand g23 (N23, N16, N19);
endmodule
