// s27 (ISCAS89) as a post-DFT structural netlist: the three flip-flops are
// scan cells (sdff) already chained scan_input -> ff1 -> ff2 -> ff3. The
// frontend keeps the functional data path and drops the scan pins (clk, se,
// si), so this parses to the same circuit as the built-in `s27` spec and
// the pure clock/scan-enable/scan-in ports do not become primary inputs.
module s27 (CK, scan_enable, scan_input, G0, G1, G2, G3, G17);
  input CK, scan_enable, scan_input;
  input G0, G1, G2, G3;
  output G17;
  wire G5, G6, G7, G8, G9, G10, G11, G12, G13, G14, G15, G16;

  sdff ff1 (.q(G5), .d(G10), .si(scan_input), .se(scan_enable), .clk(CK));
  sdff ff2 (.q(G6), .d(G11), .si(G5), .se(scan_enable), .clk(CK));
  sdff ff3 (.q(G7), .d(G13), .si(G6), .se(scan_enable), .clk(CK));

  not  g14 (G14, G0);
  not  g17 (G17, G11);
  and  g8  (G8, G14, G6);
  or   g15 (G15, G12, G8);
  or   g16 (G16, G3, G8);
  nand g9  (G9, G16, G15);
  nor  g10 (G10, G14, G11);
  nor  g11 (G11, G5, G9);
  nor  g12 (G12, G1, G7);
  nand g13 (G13, G2, G12);
endmodule
