(* Cross-module property tests on randomized synthetic circuits: the
   invariants that tie the layers together, checked beyond the fixed
   benchmark circuits used elsewhere in the suite. *)

module Circuit = Tvs_netlist.Circuit
module Bench_format = Tvs_netlist.Bench_format
module Scan_insert = Tvs_netlist.Scan_insert
module Stats = Tvs_netlist.Stats
module Comb = Tvs_sim.Comb
module Parallel = Tvs_sim.Parallel
module Fault_gen = Tvs_fault.Fault_gen
module Fault_sim = Tvs_fault.Fault_sim
module Cube = Tvs_atpg.Cube
module Podem = Tvs_atpg.Podem
module Chain = Tvs_scan.Chain
module Xor_scheme = Tvs_scan.Xor_scheme
module Protocol = Tvs_scan.Protocol
module Cycle = Tvs_core.Cycle
module Profiles = Tvs_circuits.Profiles
module Synth = Tvs_circuits.Synth
module Rng = Tvs_util.Rng

(* A family of small random circuits, deterministic per index. *)
let tiny_profile i =
  let styles = [| Profiles.Balanced; Profiles.Shallow; Profiles.Deep |] in
  {
    Profiles.name = Printf.sprintf "prop-%d" i;
    npi = 2 + (i mod 5);
    npo = 1 + (i mod 4);
    nff = 4 + (i mod 9);
    ngates = 25 + (7 * (i mod 11));
    style = styles.(i mod 3);
  }

let tiny_circuit i = Synth.generate (tiny_profile i)

let random_stimulus rng c =
  ( Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng),
    Array.init (Circuit.num_flops c) (fun _ -> Rng.bool rng) )

(* 1. The .bench writer/parser round-trip preserves behaviour, not just
   structure. *)
let qcheck_bench_roundtrip_behaviour =
  QCheck.Test.make ~name:"bench round-trip preserves simulation" ~count:25
    QCheck.(pair (int_range 0 32) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let c' = Bench_format.parse_string ~name:"rt" (Bench_format.to_string c) in
      let rng = Rng.create (Int64.of_int seed) in
      let pi, state = random_stimulus rng c in
      (* Net ids may differ; compare by I/O behaviour. *)
      let f1 = Comb.eval_bool c ~pi ~state in
      let f2 = Comb.eval_bool c' ~pi ~state in
      f1.Comb.po = f2.Comb.po && f1.Comb.capture = f2.Comb.capture)

(* 1b. Print-then-parse is a structural isomorphism, not just behavioural
   equivalence: net numbering may permute (the parser declares flops before
   resolving gates), but names survive, so re-printing must yield exactly
   the same set of statement lines. *)
let qcheck_bench_roundtrip_isomorphism =
  QCheck.Test.make ~name:"bench round-trip is a netlist isomorphism" ~count:50
    QCheck.(int_range 0 64)
    (fun i ->
      let c = tiny_circuit i in
      let text = Bench_format.to_string c in
      let c' = Bench_format.parse_string ~name:(Circuit.name c) text in
      let statement_lines s =
        String.split_on_char '\n' s
        |> List.filter (fun l -> l <> "" && l.[0] <> '#')
        |> List.sort compare
      in
      Circuit.num_nets c = Circuit.num_nets c'
      && Circuit.num_inputs c = Circuit.num_inputs c'
      && Circuit.num_flops c = Circuit.num_flops c'
      && Circuit.num_outputs c = Circuit.num_outputs c'
      && statement_lines text = statement_lines (Bench_format.to_string c'))

(* 2. The word-parallel engine agrees with the scalar simulator on every
   lane, for arbitrary circuits. *)
let qcheck_parallel_agrees_with_scalar =
  QCheck.Test.make ~name:"parallel lanes equal scalar runs" ~count:25
    QCheck.(pair (int_range 0 32) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let sim = Parallel.create c in
      let rng = Rng.create (Int64.of_int seed) in
      let pi, state = random_stimulus rng c in
      let po, capture = Parallel.run_single sim ~pi ~state in
      let frame = Comb.eval_bool c ~pi ~state in
      po = frame.Comb.po && capture = frame.Comb.capture)

(* 3. Every PODEM cube detects its fault under arbitrary fills. *)
let qcheck_podem_cubes_detect =
  QCheck.Test.make ~name:"PODEM cubes detect under any fill" ~count:15
    QCheck.(pair (int_range 0 20) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let ctx = Podem.create c in
      let sim = Fault_sim.create c in
      let faults = Fault_gen.collapsed c in
      let rng = Rng.create (Int64.of_int seed) in
      let fault = faults.(Rng.int rng (Array.length faults)) in
      match Podem.generate ctx fault with
      | Podem.Untestable | Podem.Aborted -> true
      | Podem.Detected cube ->
          List.for_all
            (fun fill ->
              let v = fill cube in
              Fault_sim.detects sim ~pi:v.Cube.pi ~state:v.Cube.scan fault)
            [ Cube.fill_const false; Cube.fill_const true; Cube.fill_random rng ])

(* 4. Fault-free machines in the Cycle tracker never get caught: running the
   machine with an empty differentiating fault (we use the whole list and
   only check the partition invariant and monotonicity). *)
let qcheck_cycle_partition =
  QCheck.Test.make ~name:"cycle partition invariant on random circuits" ~count:15
    QCheck.(pair (int_range 0 20) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let faults = Fault_gen.collapsed c in
      let machine = Cycle.create c ~faults in
      let rng = Rng.create (Int64.of_int seed) in
      let total = Array.length faults in
      let ok = ref true in
      let prev = ref 0 in
      for _ = 1 to 10 do
        let s = 1 + Rng.int rng (Circuit.num_flops c) in
        let pi = Array.init (Circuit.num_inputs c) (fun _ -> Rng.bool rng) in
        let fresh = Array.init s (fun _ -> Rng.bool rng) in
        ignore (Cycle.step machine ~pi ~fresh);
        let caught = Cycle.num_caught machine in
        if
          caught + Cycle.num_hidden machine + Cycle.num_uncaught machine <> total
          || caught < !prev
        then ok := false;
        prev := caught
      done;
      !ok)

(* 5. NXOR observation is exactly the raw emitted tail. *)
let qcheck_nxor_is_emitted =
  QCheck.Test.make ~name:"NXOR stream equals Chain.emitted" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 24) bool) small_nat)
    (fun (contents, k) ->
      let s = k mod (Array.length contents + 1) in
      let fresh = Array.make s false in
      Xor_scheme.observe Xor_scheme.Nxor ~contents ~fresh = Chain.emitted contents ~s)

(* 6. Scan insertion: structural accounting (3 gates per flop plus the
   shared inverter and the scan-out buffer) and behavioural equivalence of
   one capture cycle. *)
let qcheck_scan_insert_accounting =
  QCheck.Test.make ~name:"scan insertion adds exactly the mux logic" ~count:20
    (QCheck.int_range 0 32)
    (fun i ->
      let c = tiny_circuit i in
      let inserted = (Scan_insert.insert c).Scan_insert.circuit in
      let before = (Stats.compute c).Stats.num_gates in
      let after = (Stats.compute inserted).Stats.num_gates in
      after = before + (3 * Circuit.num_flops c) + 2)

let qcheck_scan_insert_capture_equiv =
  QCheck.Test.make ~name:"inserted netlist captures like the core" ~count:20
    QCheck.(pair (int_range 0 32) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let inserted = Scan_insert.insert c in
      let rng = Rng.create (Int64.of_int seed) in
      let pi, state = random_stimulus rng c in
      let frame = Comb.eval_bool c ~pi ~state in
      let obs = Protocol.run inserted ~init:state [ Protocol.Capture pi ] in
      obs.Protocol.final_state = frame.Comb.capture
      && obs.Protocol.po_samples = [ frame.Comb.po ])

(* 7. Fault collapsing never invents detections: any vector detects at most
   as many collapsed faults as full-list faults. *)
let qcheck_collapse_subset =
  QCheck.Test.make ~name:"collapsed detections bounded by full list" ~count:20
    QCheck.(pair (int_range 0 32) small_int)
    (fun (i, seed) ->
      let c = tiny_circuit i in
      let sim = Fault_sim.create c in
      let all = Fault_gen.all c in
      let collapsed = Fault_gen.collapse c all in
      let rng = Rng.create (Int64.of_int seed) in
      let pi, state = random_stimulus rng c in
      let count faults =
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
          (Fault_sim.detected_faults sim ~pi ~state faults)
      in
      count collapsed <= count all)

(* 8. VXOR write-back is an involution given the applied vector. *)
let qcheck_vxor_involution =
  QCheck.Test.make ~name:"VXOR write-back is involutive" ~count:200
    QCheck.(pair (array_of_size (Gen.return 12) bool) (array_of_size (Gen.return 12) bool))
    (fun (applied, capture) ->
      let once = Xor_scheme.writeback Xor_scheme.Vxor ~applied_scan:applied ~capture in
      let twice = Xor_scheme.writeback Xor_scheme.Vxor ~applied_scan:applied ~capture:once in
      twice = capture)

let () =
  Alcotest.run "properties"
    [
      ( "cross-module",
        [
          QCheck_alcotest.to_alcotest qcheck_bench_roundtrip_behaviour;
          QCheck_alcotest.to_alcotest qcheck_bench_roundtrip_isomorphism;
          QCheck_alcotest.to_alcotest qcheck_parallel_agrees_with_scalar;
          QCheck_alcotest.to_alcotest qcheck_podem_cubes_detect;
          QCheck_alcotest.to_alcotest qcheck_cycle_partition;
          QCheck_alcotest.to_alcotest qcheck_nxor_is_emitted;
          QCheck_alcotest.to_alcotest qcheck_scan_insert_accounting;
          QCheck_alcotest.to_alcotest qcheck_scan_insert_capture_equiv;
          QCheck_alcotest.to_alcotest qcheck_collapse_subset;
          QCheck_alcotest.to_alcotest qcheck_vxor_involution;
        ] );
    ]
