(* tvs_lint: rule catalog, the three pass families, the risk table, the
   renderers and the engine preflight gate. Ground truth is exhaustive
   where the circuit is small enough (the SAT cross-check simulates every
   input assignment) and property-based elsewhere. *)

module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Bench_format = Tvs_netlist.Bench_format
module Validate = Tvs_netlist.Validate
module Fault = Tvs_fault.Fault
module Fault_gen = Tvs_fault.Fault_gen
module Fault_sim = Tvs_fault.Fault_sim
module Diagnostic = Tvs_lint.Diagnostic
module Structural = Tvs_lint.Structural
module Dataflow = Tvs_lint.Dataflow
module Scan_lint = Tvs_lint.Scan_lint
module Lint = Tvs_lint.Lint
module Json = Tvs_obs.Json
module Wire = Tvs_util.Wire
module Profiles = Tvs_circuits.Profiles
module Synth = Tvs_circuits.Synth
module B = Circuit.Builder

(* Same deterministic family as test_properties.ml. *)
let tiny_profile i =
  let styles = [| Profiles.Balanced; Profiles.Shallow; Profiles.Deep |] in
  {
    Profiles.name = Printf.sprintf "lint-%d" i;
    npi = 2 + (i mod 5);
    npo = 1 + (i mod 4);
    nff = 4 + (i mod 9);
    ngates = 25 + (7 * (i mod 11));
    style = styles.(i mod 3);
  }

let tiny_circuit i = Synth.generate (tiny_profile i)

(* Structural/constant passes only: SAT is exercised separately. *)
let fast_options = { Lint.default_options with Lint.sat_faults = 0 }
let rules_of r = List.map (fun d -> d.Diagnostic.rule) r.Lint.diagnostics
let has_rule rule r = List.mem rule (rules_of r)

let find_rule rule r =
  match List.find_opt (fun d -> d.Diagnostic.rule = rule) r.Lint.diagnostics with
  | Some d -> d
  | None -> Alcotest.failf "expected a %s diagnostic, got [%s]" rule (String.concat "; " (rules_of r))

(* --- catalog ------------------------------------------------------------ *)

let test_catalog () =
  List.iter
    (fun (i : Diagnostic.rule_info) ->
      Alcotest.(check bool) (i.Diagnostic.id ^ " known") true (Diagnostic.known_rule i.Diagnostic.id);
      Alcotest.(check bool)
        (i.Diagnostic.id ^ " well-formed")
        true
        (String.length i.Diagnostic.id = 8 && String.sub i.Diagnostic.id 0 4 = "TVS-"))
    Diagnostic.catalog;
  let ids = List.map (fun (i : Diagnostic.rule_info) -> i.Diagnostic.id) Diagnostic.catalog in
  Alcotest.(check int) "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool) "prefix match" true (Diagnostic.matches "TVS-N" ~rule:"TVS-N001");
  Alcotest.(check bool) "exact match" true (Diagnostic.matches "TVS-D004" ~rule:"TVS-D004");
  Alcotest.(check bool) "no match" false (Diagnostic.matches "TVS-S" ~rule:"TVS-N001");
  Alcotest.check_raises "unknown rule rejected"
    (Invalid_argument "Diagnostic.make: unknown rule \"TVS-Z999\"") (fun () ->
      ignore (Diagnostic.make ~rule:"TVS-Z999" "nope"))

(* --- clean circuits ----------------------------------------------------- *)

let qcheck_synth_lint_clean =
  QCheck.Test.make ~name:"synthetic circuits lint without errors" ~count:33
    QCheck.(int_range 0 32)
    (fun i ->
      let r = Lint.run ~options:fast_options (tiny_circuit i) in
      Lint.errors r = [])

let test_bundled_clean () =
  let check_clean name c =
    let r = Lint.run c in
    Alcotest.(check int) (name ^ " has no errors") 0 (Lint.count r Diagnostic.Error);
    Alcotest.(check bool) (name ^ " passes --fail-on error") false
      (Lint.failed ~fail_on:Diagnostic.Error r)
  in
  check_clean "s27" (Tvs_circuits.S27.circuit ());
  (* fig1 has no primary inputs at all — that must stay a warning, or every
     error-gated CI run on the paper's own example would fail. *)
  let fig1 = Lint.run (Tvs_circuits.Fig1.circuit ()) in
  Alcotest.(check int) "fig1 has no errors" 0 (Lint.count fig1 Diagnostic.Error);
  Alcotest.(check bool) "fig1 flags no-PI" true (has_rule "TVS-N002" fig1)

(* --- seeded statement-level defects ------------------------------------- *)

let test_source_cycle () =
  let r = Lint.run_source ~name:"cyc" "INPUT(a)\nOUTPUT(d)\nd = AND(a, e)\ne = OR(d, a)\n" in
  let d = find_rule "TVS-N001" r in
  Alcotest.(check (option int)) "cycle line" (Some 3) d.Diagnostic.line;
  Alcotest.(check bool) "names both nets" true
    (List.mem "d" d.Diagnostic.nets && List.mem "e" d.Diagnostic.nets);
  Alcotest.(check bool) "is an error" true (Lint.failed ~fail_on:Diagnostic.Error r)

let test_source_undefined () =
  let r = Lint.run_source ~name:"undef" "INPUT(a)\nOUTPUT(g)\ng = AND(a, zz)\n" in
  let d = find_rule "TVS-N009" r in
  Alcotest.(check (option int)) "undefined ref line" (Some 3) d.Diagnostic.line;
  Alcotest.(check (list string)) "names the missing net" [ "zz" ] d.Diagnostic.nets

let test_source_multiply_driven () =
  let r = Lint.run_source ~name:"dup" "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\ng = BUFF(a)\n" in
  let d = find_rule "TVS-N010" r in
  Alcotest.(check (option int)) "second definition line" (Some 4) d.Diagnostic.line

let test_source_syntax () =
  let r = Lint.run_source ~name:"syn" "g = FROB(a)\n" in
  let d = find_rule "TVS-P001" r in
  Alcotest.(check (option int)) "syntax error line" (Some 1) d.Diagnostic.line

(* A clean source reports exactly like the built circuit, with lines. *)
let test_source_clean_has_lines () =
  let text = Bench_format.to_string (Tvs_circuits.S27.circuit ()) in
  let r = Lint.run_source ~options:fast_options ~name:"s27" text in
  Alcotest.(check int) "no errors" 0 (Lint.count r Diagnostic.Error);
  Alcotest.(check int) "risk rows" 3 (Array.length r.Lint.risk)

(* --- circuit-level structural rules ------------------------------------- *)

let test_repeated_fanin () =
  let b = B.create "rep" in
  let a = B.input b "a" in
  let g = B.gate b ~name:"g" Gate.And [ a; a ] in
  B.mark_output b g;
  let c = B.finish b in
  (* Satellite: the legacy checker must flag it too (tvs stats path). *)
  let from_validate =
    List.exists (function Validate.Repeated_fanin _ -> true | _ -> false) (Validate.check c)
  in
  Alcotest.(check bool) "Validate.check flags AND(a,a)" true from_validate;
  let d = find_rule "TVS-N007" (Lint.run ~options:fast_options c) in
  Alcotest.(check (list string)) "gate then net" [ "g"; "a" ] d.Diagnostic.nets

let test_unobservable () =
  let b = B.create "unobs" in
  let a = B.input b "a" in
  let g = B.gate b ~name:"g" Gate.Not [ a ] in
  ignore (B.gate b ~name:"dead" Gate.Not [ g ]);
  let q = B.flop b ~name:"q" g in
  B.mark_output b q;
  let c = B.finish b in
  let r = Lint.run ~options:fast_options c in
  (* "dead" drives nothing: that is N004 dangling, not N008. *)
  Alcotest.(check bool) "dangling flagged" true (has_rule "TVS-N004" r);
  Alcotest.(check int) "still no errors" 0 (Lint.count r Diagnostic.Error)

let test_cyclic_sccs () =
  (* 0 -> 1 -> 2 -> 0 plus a self-loop at 3 and an acyclic tail 4 -> 5. *)
  let adj = [| [ 1 ]; [ 2 ]; [ 0 ]; [ 3 ]; [ 5 ]; [] |] in
  let sccs = List.map (List.sort compare) (Structural.cyclic_sccs adj) in
  Alcotest.(check int) "two cyclic components" 2 (List.length sccs);
  Alcotest.(check bool) "triangle found" true (List.mem [ 0; 1; 2 ] sccs);
  Alcotest.(check bool) "self-loop found" true (List.mem [ 3 ] sccs);
  (* Deep chain: iterative Tarjan must not overflow the stack. *)
  let n = 200_000 in
  let deep = Array.init n (fun i -> if i + 1 < n then [ i + 1 ] else [ 0 ]) in
  Alcotest.(check int) "one giant cycle" 1 (List.length (Structural.cyclic_sccs deep))

(* --- dataflow rules ------------------------------------------------------ *)

let test_constants () =
  let b = B.create "const" in
  let a = B.input b "a" in
  let k = B.const b ~name:"k" true in
  let stuck = B.gate b ~name:"stuck" Gate.Or [ k; a ] in
  let live = B.gate b ~name:"live" Gate.And [ k; a ] in
  B.mark_output b stuck;
  B.mark_output b live;
  let c = B.finish b in
  let r = Lint.run ~options:fast_options c in
  let d1 = find_rule "TVS-D001" r in
  Alcotest.(check (list string)) "stuck gate named" [ "stuck" ] d1.Diagnostic.nets;
  let d2 = find_rule "TVS-D002" r in
  Alcotest.(check (list string)) "constant output named" [ "stuck" ] d2.Diagnostic.nets;
  let d3 = find_rule "TVS-D003" r in
  Alcotest.(check (list string)) "constant input to live gate" [ "k"; "live" ] d3.Diagnostic.nets;
  (* Ternary fixpoint: OR(1, X) = 1, AND(1, X) = X. *)
  let v = Dataflow.values c in
  Alcotest.(check char) "stuck is 1" '1' (Tvs_logic.Ternary.to_char v.(stuck));
  Alcotest.(check char) "live is X" 'X' (Tvs_logic.Ternary.to_char v.(live))

(* SAT untestability vs exhaustive simulation on y = OR(a, AND(a, b)):
   absorption makes the redundancy real but invisible to ternary
   propagation. Every collapsed fault is adjudicated both ways. *)
let test_sat_vs_exhaustive () =
  let b = B.create "redund" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let g1 = B.gate b ~name:"g1" Gate.And [ a; bb ] in
  let y = B.gate b ~name:"y" Gate.Or [ a; g1 ] in
  B.mark_output b y;
  let c = B.finish b in
  let faults = Fault_gen.collapsed c in
  let sim = Fault_sim.create c in
  let undetectable f =
    let detected = ref false in
    for bits = 0 to 3 do
      let pi = [| bits land 1 = 1; bits land 2 = 2 |] in
      if Fault_sim.detects sim ~pi ~state:[||] f then detected := true
    done;
    not !detected
  in
  let truly_untestable = Array.to_list faults |> List.filter undetectable in
  Alcotest.(check bool) "the absorption redundancy exists" true (truly_untestable <> []);
  let diags =
    Dataflow.untestable ~max_faults:(Array.length faults) ~max_decisions:100_000 c
  in
  let count rule = List.length (List.filter (fun d -> d.Diagnostic.rule = rule) diags) in
  Alcotest.(check int) "every true redundancy proven (D004)"
    (List.length truly_untestable) (count "TVS-D004");
  Alcotest.(check int) "nothing undecided at this budget (D005)" 0 (count "TVS-D005")

(* --- scan rules and the risk table --------------------------------------- *)

let test_chain_integrity () =
  let c = Tvs_circuits.S27.circuit () in
  let flops = Circuit.flops c in
  let gate_net =
    (* any non-flop net *)
    let rec find n =
      match Circuit.driver c n with Circuit.Gate_node _ -> n | _ -> find (n + 1)
    in
    find 0
  in
  let rules diags = List.map (fun d -> d.Diagnostic.rule) diags in
  Alcotest.(check (list string)) "default chain is clean" [] (rules (Scan_lint.integrity c));
  let with_gate = Array.copy flops in
  with_gate.(0) <- gate_net;
  let r = rules (Scan_lint.integrity ~chain:with_gate c) in
  Alcotest.(check bool) "S001 on non-flop cell" true (List.mem "TVS-S001" r);
  Alcotest.(check bool) "S003 on displaced flop" true (List.mem "TVS-S003" r);
  let dup = Array.copy flops in
  dup.(1) <- dup.(0);
  let r = rules (Scan_lint.integrity ~chain:dup c) in
  Alcotest.(check bool) "S002 on duplicate cell" true (List.mem "TVS-S002" r)

let qcheck_risk_table_shape =
  QCheck.Test.make ~name:"risk table: one row per cell, emitted tail risk-free" ~count:33
    QCheck.(pair (int_range 0 32) (int_range 1 12))
    (fun (i, s) ->
      let c = tiny_circuit i in
      let nff = Circuit.num_flops c in
      let rows = Scan_lint.risk_table ~s c in
      let s = max 1 (min s nff) in
      Array.length rows = nff
      && Array.for_all
           (fun (row : Scan_lint.risk_row) ->
             row.Scan_lint.emitted = (row.Scan_lint.position >= nff - s)
             && (if row.Scan_lint.emitted then row.Scan_lint.risk = 0 else row.Scan_lint.risk >= 0)
             && row.Scan_lint.observability <= 50)
           rows
      && rows = Scan_lint.risk_table ~s c)

let test_hotspot () =
  let r = Lint.run ~options:{ fast_options with Lint.shift = Some 1 } (Tvs_circuits.Fig1.circuit ()) in
  Alcotest.(check int) "fig1 shift" 1 r.Lint.shift;
  let d = find_rule "TVS-S004" r in
  let top =
    Array.to_list r.Lint.risk
    |> List.filter (fun (row : Scan_lint.risk_row) -> not row.Scan_lint.emitted)
    |> List.fold_left (fun acc (row : Scan_lint.risk_row) -> max acc row.Scan_lint.risk) 0
  in
  Alcotest.(check bool) "hotspot names the max-risk cell" true
    (match d.Diagnostic.nets with
    | cell :: _ ->
        Array.exists
          (fun (row : Scan_lint.risk_row) -> row.Scan_lint.cell = cell && row.Scan_lint.risk = top)
          r.Lint.risk
    | [] -> false)

(* --- rendering, filtering, round-trips ----------------------------------- *)

let test_rule_filter () =
  let c = Tvs_circuits.Fig1.circuit () in
  let all = Lint.run ~options:fast_options c in
  let only_scan =
    Lint.run ~options:{ fast_options with Lint.rules = Some [ "TVS-S" ] } c
  in
  Alcotest.(check bool) "unfiltered has N002" true (has_rule "TVS-N002" all);
  Alcotest.(check bool) "filtered drops N002" false (has_rule "TVS-N002" only_scan);
  List.iter
    (fun rule -> Alcotest.(check bool) (rule ^ " kept") true (String.sub rule 0 5 = "TVS-S"))
    (rules_of only_scan)

let test_json_stable_and_valid () =
  let c = Tvs_circuits.S27.circuit () in
  let s1 = Lint.to_json_string (Lint.run c) in
  let s2 = Lint.to_json_string (Lint.run c) in
  Alcotest.(check string) "byte-stable across runs" s1 s2;
  match Json.parse s1 with
  | Error msg -> Alcotest.failf "invalid JSON: %s" msg
  | Ok doc ->
      Alcotest.(check (option bool)) "schema version"
        (Some true)
        (Option.map (fun j -> j = Json.Int Lint.schema_version) (Json.member "schema" doc));
      let r = Lint.run c in
      let summary = Option.get (Json.member "summary" doc) in
      Alcotest.(check (option bool)) "error count matches"
        (Some true)
        (Option.map
           (fun j -> j = Json.Int (Lint.count r Diagnostic.Error))
           (Json.member "errors" summary))

let test_wire_roundtrip () =
  let check_rt name c =
    let r = Lint.run ~options:fast_options c in
    let w = Wire.writer () in
    Lint.encode_report w r;
    let r' = Lint.decode_report (Wire.reader (Wire.contents w)) in
    Alcotest.(check bool) (name ^ " round-trips") true (r = r')
  in
  check_rt "s27" (Tvs_circuits.S27.circuit ());
  check_rt "fig1" (Tvs_circuits.Fig1.circuit ());
  check_rt "synthetic" (tiny_circuit 7)

(* --- preflight gate ------------------------------------------------------ *)

let test_preflight () =
  (* Clean circuit: the pass list is empty of errors. *)
  let clean = Lint.preflight (Tvs_circuits.S27.circuit ()) in
  Alcotest.(check bool) "s27 preflight clean" true
    (List.for_all (fun d -> d.Diagnostic.severity <> Diagnostic.Error) clean);
  (* No observation points: N003, an error, must abort the engine. *)
  let b = B.create "noobs" in
  let a = B.input b "a" in
  ignore (B.gate b ~name:"g" Gate.Not [ a ]);
  let c = B.finish b in
  let ctx = Tvs_atpg.Podem.create c in
  let config =
    { (Tvs_core.Engine.default_config ~chain_len:0) with Tvs_core.Engine.preflight = true }
  in
  (match
     Tvs_core.Engine.run ~config
       ~rng:(Tvs_util.Rng.of_string "lint-test")
       ctx ~faults:(Fault_gen.collapsed c)
   with
  | (_ : Tvs_core.Engine.result) -> Alcotest.fail "engine ran on an unobservable circuit"
  | exception Failure msg ->
      Alcotest.(check bool) "failure names the preflight" true
        (String.length msg >= 9 && String.sub msg 0 9 = "preflight"));
  (* The gate passes cleanly end-to-end on a real flow. *)
  let prep = Tvs_harness.Prep.of_circuit (Tvs_circuits.S27.circuit ()) in
  let r = Tvs_harness.Experiments.run_flow ~preflight:true ~label:"lint-preflight" prep in
  Alcotest.(check bool) "preflighted flow still covers" true (r.Tvs_harness.Experiments.coverage > 0.9)

let () =
  Alcotest.run "lint"
    [
      ( "catalog",
        [
          Alcotest.test_case "catalog ids" `Quick test_catalog;
          Alcotest.test_case "rule filter" `Quick test_rule_filter;
        ] );
      ( "clean",
        [
          QCheck_alcotest.to_alcotest qcheck_synth_lint_clean;
          Alcotest.test_case "bundled circuits" `Quick test_bundled_clean;
          Alcotest.test_case "clean source keeps lines" `Quick test_source_clean_has_lines;
        ] );
      ( "structural",
        [
          Alcotest.test_case "seeded cycle" `Quick test_source_cycle;
          Alcotest.test_case "seeded undefined net" `Quick test_source_undefined;
          Alcotest.test_case "seeded multiply-driven" `Quick test_source_multiply_driven;
          Alcotest.test_case "seeded syntax error" `Quick test_source_syntax;
          Alcotest.test_case "repeated fanin" `Quick test_repeated_fanin;
          Alcotest.test_case "dangling vs unobservable" `Quick test_unobservable;
          Alcotest.test_case "tarjan sccs" `Quick test_cyclic_sccs;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "constant propagation rules" `Quick test_constants;
          Alcotest.test_case "sat vs exhaustive" `Quick test_sat_vs_exhaustive;
        ] );
      ( "scan",
        [
          Alcotest.test_case "chain integrity" `Quick test_chain_integrity;
          QCheck_alcotest.to_alcotest qcheck_risk_table_shape;
          Alcotest.test_case "hotspot diagnostic" `Quick test_hotspot;
        ] );
      ( "render",
        [
          Alcotest.test_case "json stable and valid" `Quick test_json_stable_and_valid;
          Alcotest.test_case "wire round-trip" `Quick test_wire_roundtrip;
        ] );
      ("preflight", [ Alcotest.test_case "engine gate" `Quick test_preflight ]);
    ]
