(* The equivalence checker: every transformation gate it guards (scan
   insertion, TPI instrumentation, the Verilog emit/parse round-trip, the
   mux2 cell decomposition), seeded-defect detection with a
   simulation-confirmed counterexample, exhaustive cross-validation against
   the simulator on small random circuits, jobs-invariance and cache
   replay. *)

module Cec = Tvs_cec.Cec
module Cli = Tvs_harness.Cli
module Circuit = Tvs_netlist.Circuit
module Gate = Tvs_netlist.Gate
module Scan_insert = Tvs_netlist.Scan_insert
module Parallel = Tvs_sim.Parallel
module Cache = Tvs_store.Cache
module Loader = Tvs_verilog.Loader
module Emitter = Tvs_verilog.Emitter
module Transform = Tvs_tpi.Transform
module Rng = Tvs_util.Rng

let load spec = Result.get_ok (Cli.load_circuit spec)
let inline text = Result.get_ok (Cli.inline_circuit text)

let check_equivalent what left right =
  match (Cec.check left right).Cec.verdict with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.failf "%s: inequivalent" what
  | Cec.Unknown _ -> Alcotest.failf "%s: budget exhausted" what

(* --- the transformation gates ------------------------------------------ *)

let test_scan_gate () =
  List.iter
    (fun spec ->
      let left = load spec in
      let right = (Scan_insert.insert left).Scan_insert.circuit in
      let r = Cec.check left right in
      (match r.Cec.verdict with
      | Cec.Equivalent -> ()
      | _ -> Alcotest.failf "%s scan form not proven" spec);
      (* The scan_en convention tie must have been recognized and applied. *)
      Alcotest.(check bool) "scan_en tied" true
        (List.exists (fun t -> t.Cec.name = "scan_en" && t.Cec.value = false) r.Cec.ties);
      Alcotest.(check int) "all flops matched" (Circuit.num_flops left) r.Cec.matched_flops)
    [ "s27"; "s444" ]

let test_tpi_gate () =
  (* The same circuit the CLI's [tvs tpi --verify] gate proves: the study's
     selected points applied to the base netlist (inclusion check — the
     original outputs must be preserved, the tpi_ points are extra). *)
  let module Tpi = Tvs_tpi.Tpi in
  let c = load "s27" in
  let study = Tpi.run ~options:{ Tpi.default_options with Tpi.controls = true } c in
  let cands = List.map (fun (p : Tpi.point) -> p.Tpi.candidate) study.Tpi.points in
  Alcotest.(check bool) "points selected" true (cands <> []);
  let right = Transform.apply c cands in
  let r = Cec.check c right in
  match r.Cec.verdict with
  | Cec.Equivalent -> ()
  | _ -> Alcotest.fail "tpi transform not proven (inclusion check under tpi_ctl ties)"

let test_verilog_roundtrip_gate () =
  let c = load "s27" in
  let plain = Loader.parse_string (Emitter.emit c).Emitter.text in
  check_equivalent "plain emit/parse" c plain;
  (* Scan emission re-parses with the scan pins dropped, so it verifies
     against the pre-scan original directly. *)
  let scanned = Loader.parse_string (Emitter.emit ~scan:true c).Emitter.text in
  check_equivalent "scan emit/parse" c scanned

let mux4_verilog =
  "module mux4 (d0, d1, d2, d3, s0, s1, y);\n\
  \  input d0, d1, d2, d3, s0, s1;\n\
  \  output y;\n\
  \  wire m0, m1;\n\
  \  tvs_mux2 u0 (.y(m0), .a(d0), .b(d1), .s(s0));\n\
  \  tvs_mux2 u1 (.y(m1), .a(d2), .b(d3), .s(s0));\n\
  \  tvs_mux2 u2 (.y(y),  .a(m0), .b(m1), .s(s1));\n\
   endmodule\n"

let mux4_reference =
  "INPUT(d0)\nINPUT(d1)\nINPUT(d2)\nINPUT(d3)\nINPUT(s0)\nINPUT(s1)\nOUTPUT(y)\n\
   s0n = NOT(s0)\ns1n = NOT(s1)\n\
   t0 = AND(d0, s0n, s1n)\nt1 = AND(d1, s0, s1n)\n\
   t2 = AND(d2, s0n, s1)\nt3 = AND(d3, s0, s1)\n\
   y = OR(t0, t1, t2, t3)\n"

let test_mux2_gate () =
  (* The frontend decomposes each tvs_mux2 into NOT/AND/OR; the reference is
     the same function in structurally unrelated sum-of-products form. *)
  check_equivalent "mux2 decomposition" (inline mux4_reference) (inline mux4_verilog)

(* --- seeded defect ------------------------------------------------------ *)

let c17 flip =
  (* ISCAS85 c17; [flip] turns gate g16 from NAND into AND — the seeded
     single-gate defect of examples/verilog/c17_defect.v. *)
  Printf.sprintf
    "INPUT(N1)\nINPUT(N2)\nINPUT(N3)\nINPUT(N6)\nINPUT(N7)\nOUTPUT(N22)\nOUTPUT(N23)\n\
     N10 = NAND(N1, N3)\nN11 = NAND(N3, N6)\nN16 = %s(N2, N11)\n\
     N19 = NAND(N11, N7)\nN22 = NAND(N10, N16)\nN23 = NAND(N16, N19)\n"
    (if flip then "AND" else "NAND")

let po_index c name =
  let outs = Circuit.outputs c in
  let rec go i =
    if i >= Array.length outs then Alcotest.failf "no output %S" name
    else if Circuit.net_name c outs.(i) = name then i
    else go (i + 1)
  in
  go 0

let test_seeded_defect () =
  let left = inline (c17 false) and right = inline (c17 true) in
  match (Cec.check left right).Cec.verdict with
  | Cec.Equivalent -> Alcotest.fail "seeded defect proven equivalent"
  | Cec.Unknown _ -> Alcotest.fail "seeded defect undecided"
  | Cec.Inequivalent cex ->
      (* The checker replays counterexamples internally before reporting;
         confirm independently through the simulator here anyway. *)
      let name =
        match cex.Cec.point with
        | Cec.Po n -> n
        | Cec.Capture _ -> Alcotest.fail "combinational circuit reported a capture point"
      in
      let run c pi =
        let po, _ = Parallel.run_single (Parallel.create c) ~pi ~state:[||] in
        po.(po_index c name)
      in
      Alcotest.(check bool) "left value replays" cex.Cec.left_value
        (run left cex.Cec.left_pi);
      Alcotest.(check bool) "right value replays" cex.Cec.right_value
        (run right cex.Cec.right_pi);
      Alcotest.(check bool) "values differ" true (cex.Cec.left_value <> cex.Cec.right_value)

(* --- exhaustive cross-validation ---------------------------------------- *)

(* A random small combinational circuit as a buildable spec: shared between
   the original and its one-gate mutant so net names line up. *)
type gate_spec = { kind : Gate.kind; fanins : int list (* net index: inputs first *) }

let random_spec rng =
  let n_in = 2 + Rng.int rng 4 in
  let n_gates = 1 + Rng.int rng 8 in
  let gates =
    List.init n_gates (fun g ->
        let avail = n_in + g in
        let pick () = Rng.int rng avail in
        match Rng.int rng 8 with
        | 0 -> { kind = Gate.Not; fanins = [ pick () ] }
        | 1 -> { kind = Gate.Buf; fanins = [ pick () ] }
        | k ->
            let kind =
              match k with
              | 2 -> Gate.And
              | 3 -> Gate.Or
              | 4 -> Gate.Nand
              | 5 -> Gate.Nor
              | 6 -> Gate.Xor
              | _ -> Gate.Xnor
            in
            let arity = 2 + Rng.int rng 2 in
            { kind; fanins = List.init arity (fun _ -> pick ()) })
  in
  (n_in, gates)

let flip_kind = function
  | Gate.Not -> Gate.Buf
  | Gate.Buf -> Gate.Not
  | Gate.And -> Gate.Nand
  | Gate.Nand -> Gate.And
  | Gate.Or -> Gate.Nor
  | Gate.Nor -> Gate.Or
  | Gate.Xor -> Gate.Xnor
  | Gate.Xnor -> Gate.Xor

let build_spec ?flip (n_in, gates) =
  let b = Circuit.Builder.create "spec" in
  let nets = Array.make (n_in + List.length gates) (-1) in
  for i = 0 to n_in - 1 do
    nets.(i) <- Circuit.Builder.input b (Printf.sprintf "i%d" i)
  done;
  List.iteri
    (fun g { kind; fanins } ->
      let kind = if flip = Some g then flip_kind kind else kind in
      nets.(n_in + g) <-
        Circuit.Builder.gate b ~name:(Printf.sprintf "g%d" g) kind
          (List.map (fun f -> nets.(f)) fanins))
    gates;
  Circuit.Builder.mark_output b nets.(n_in + List.length gates - 1);
  Circuit.Builder.finish b

(* Ground truth: compare every observation point on all 2^n input vectors. *)
let exhaustive_equal left right =
  let sl = Parallel.create left and sr = Parallel.create right in
  let n = Circuit.num_inputs left in
  let equal = ref true in
  for v = 0 to (1 lsl n) - 1 do
    let pi = Array.init n (fun i -> (v lsr i) land 1 = 1) in
    let pol, _ = Parallel.run_single sl ~pi ~state:[||] in
    let por, _ = Parallel.run_single sr ~pi ~state:[||] in
    if pol <> por then equal := false
  done;
  !equal

let qcheck_verdict_matches_simulation =
  QCheck.Test.make ~name:"verdict matches exhaustive simulation" ~count:60
    QCheck.(pair small_int small_int)
    (fun (seed, gate_seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let spec = random_spec rng in
      let left = build_spec spec in
      let right = build_spec ~flip:(gate_seed mod List.length (snd spec)) spec in
      let truth = exhaustive_equal left right in
      match (Cec.check left right).Cec.verdict with
      | Cec.Equivalent -> truth
      | Cec.Unknown _ -> false (* tiny cones must never exhaust the budget *)
      | Cec.Inequivalent cex ->
          (* A mutant masked on every input vector must not be refuted; a
             live one must come with a confirmed differing pair. *)
          (not truth) && cex.Cec.left_value <> cex.Cec.right_value)

(* --- determinism and caching -------------------------------------------- *)

let test_jobs_invariant () =
  let left = load "s444" in
  let right = (Scan_insert.insert left).Scan_insert.circuit in
  let r1 = Cec.check ~jobs:1 left right in
  let r4 = Cec.check ~jobs:4 left right in
  Alcotest.(check string) "json byte-identical across jobs" (Cec.to_json_string r1)
    (Cec.to_json_string r4);
  Alcotest.(check string) "ascii byte-identical across jobs" (Cec.to_ascii r1)
    (Cec.to_ascii r4)

let test_cache_replay () =
  let dir = Filename.temp_file "tvs-cec" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let cache = Result.get_ok (Cache.open_dir dir) in
  let left = load "s27" in
  let right = (Scan_insert.insert left).Scan_insert.circuit in
  let r1 = Cec.check ~cache left right in
  Alcotest.(check bool) "first run computes" false r1.Cec.cached;
  let r2 = Cec.check ~cache left right in
  Alcotest.(check bool) "second run replays" true r2.Cec.cached;
  Alcotest.(check string) "replayed rendering byte-identical" (Cec.to_json_string r1)
    (Cec.to_json_string r2);
  (* The entry lives under the CEQV kind at the exposed key. *)
  let key = Cec.check_key ~options:Cec.default_options left right in
  Alcotest.(check bool) "entry on disk" true
    (Sys.file_exists (Cache.entry_path cache ~kind:Cec.cache_kind ~key))

let test_wire_roundtrip () =
  let left = load "s27" in
  let right = (Scan_insert.insert left).Scan_insert.circuit in
  let r = Cec.check left right in
  let w = Tvs_util.Wire.writer () in
  Cec.encode_result w r;
  let r' = Cec.decode_result (Tvs_util.Wire.reader (Tvs_util.Wire.contents w)) in
  Alcotest.(check bool) "decoded results are flagged cached" true r'.Cec.cached;
  Alcotest.(check string) "codec round-trips the rendering" (Cec.to_json_string r)
    (Cec.to_json_string r')

let test_mismatch () =
  (* Unrelated interfaces raise Mismatch: the question cannot be posed. *)
  match Cec.check (load "s27") (load "fig1") with
  | exception Cec.Mismatch _ -> ()
  | _ -> Alcotest.fail "unrelated interfaces did not raise Mismatch"

let () =
  Alcotest.run "cec"
    [
      ( "gates",
        [
          Alcotest.test_case "scan insertion" `Quick test_scan_gate;
          Alcotest.test_case "tpi transform" `Quick test_tpi_gate;
          Alcotest.test_case "verilog round-trip" `Quick test_verilog_roundtrip_gate;
          Alcotest.test_case "mux2 decomposition" `Quick test_mux2_gate;
        ] );
      ( "defects",
        [
          Alcotest.test_case "seeded defect refuted and confirmed" `Quick test_seeded_defect;
          QCheck_alcotest.to_alcotest qcheck_verdict_matches_simulation;
          Alcotest.test_case "interface mismatch" `Quick test_mismatch;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs-invariant" `Quick test_jobs_invariant;
          Alcotest.test_case "cache replay" `Quick test_cache_replay;
          Alcotest.test_case "result wire codec" `Quick test_wire_roundtrip;
        ] );
    ]
