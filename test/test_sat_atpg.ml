(* Tests for the DPLL SAT solver and the SAT-based ATPG, including the
   cross-validation of PODEM: both engines must agree on every fault's
   testability, and every generated vector must be confirmed by fault
   simulation. *)

module Circuit = Tvs_netlist.Circuit
module Fault = Tvs_fault.Fault
module Fault_gen = Tvs_fault.Fault_gen
module Fault_sim = Tvs_fault.Fault_sim
module Parallel = Tvs_sim.Parallel
module Ternary = Tvs_logic.Ternary
module Cube = Tvs_atpg.Cube
module Podem = Tvs_atpg.Podem
module Sat_atpg = Tvs_atpg.Sat_atpg
module Sat = Tvs_util.Sat
module Rng = Tvs_util.Rng

(* --- the solver ------------------------------------------------------- *)

let test_sat_trivial () =
  (match Sat.solve ~nvars:0 [] with
  | Sat.Sat _ -> ()
  | Sat.Unsat | Sat.Unknown -> Alcotest.fail "empty CNF is satisfiable");
  (match Sat.solve ~nvars:1 [ [] ] with
  | Sat.Unsat -> ()
  | Sat.Sat _ | Sat.Unknown -> Alcotest.fail "empty clause is unsatisfiable")

let test_sat_units_and_conflict () =
  (match Sat.solve ~nvars:2 [ [ 1 ]; [ -1; 2 ] ] with
  | Sat.Sat m ->
      Alcotest.(check bool) "x1" true m.(1);
      Alcotest.(check bool) "x2 implied" true m.(2)
  | Sat.Unsat | Sat.Unknown -> Alcotest.fail "satisfiable");
  (match Sat.solve ~nvars:1 [ [ 1 ]; [ -1 ] ] with
  | Sat.Unsat -> ()
  | Sat.Sat _ | Sat.Unknown -> Alcotest.fail "contradictory units")

let test_sat_pigeonhole_3_2 () =
  (* Three pigeons, two holes: classic small UNSAT. Variables p_ij = pigeon i
     in hole j, numbered 1..6. *)
  let v i j = (2 * i) + j + 1 in
  let clauses =
    (* Each pigeon somewhere. *)
    List.init 3 (fun i -> [ v i 0; v i 1 ])
    (* No two pigeons share a hole. *)
    @ List.concat_map
        (fun j ->
          [ [ -v 0 j; -v 1 j ]; [ -v 0 j; -v 2 j ]; [ -v 1 j; -v 2 j ] ])
        [ 0; 1 ]
  in
  match Sat.solve ~nvars:6 clauses with
  | Sat.Unsat -> ()
  | Sat.Sat _ | Sat.Unknown -> Alcotest.fail "PHP(3,2) must be unsatisfiable"

let test_sat_models_verified () =
  (* Random 3-CNFs at a satisfiable-leaning density: every Sat answer must
     check, and solving is deterministic. *)
  let rng = Rng.of_string "sat-random" in
  for _ = 1 to 50 do
    let nvars = 8 + Rng.int rng 8 in
    let nclauses = nvars * 3 in
    let clause () =
      List.init 3 (fun _ ->
          let v = 1 + Rng.int rng nvars in
          if Rng.bool rng then v else -v)
    in
    let clauses = List.init nclauses (fun _ -> clause ()) in
    match Sat.solve ~nvars clauses with
    | Sat.Sat model ->
        Alcotest.(check bool) "model checks" true (Sat.check ~nvars clauses model)
    | Sat.Unsat | Sat.Unknown -> () (* UNSAT trusted via the cross-validation below *)
  done

let test_sat_rejects_bad_literal () =
  Alcotest.(check bool) "out-of-range literal" true
    (try
       ignore (Sat.solve ~nvars:2 [ [ 3 ] ]);
       false
     with Invalid_argument _ -> true)

(* --- SAT ATPG --------------------------------------------------------- *)

let fig1 = Tvs_circuits.Fig1.circuit ()
let s27 = Tvs_circuits.S27.circuit ()

let test_sat_atpg_fig1 () =
  let sim = Fault_sim.create fig1 in
  List.iter
    (fun name ->
      let fault = Tvs_circuits.Fig1.paper_fault fig1 name in
      match Sat_atpg.generate fig1 fault with
      | Sat_atpg.Unknown -> Alcotest.fail (name ^ " must be decidable instantly")
      | Sat_atpg.Detected cube ->
          Alcotest.(check bool) (name ^ " is not the redundant fault") true (name <> "E-F/1");
          let v = Cube.fill_const false cube in
          Alcotest.(check bool) (name ^ " vector verified") true
            (Fault_sim.detects sim ~pi:v.Cube.pi ~state:v.Cube.scan fault)
      | Sat_atpg.Untestable ->
          Alcotest.(check string) "only E-F/1 is redundant" "E-F/1" name)
    Tvs_circuits.Fig1.table1_faults

let agree_on circuit =
  let ctx = Podem.create circuit in
  let sim = Fault_sim.create circuit in
  Array.iter
    (fun fault ->
      let name = Fault.name circuit fault in
      let sat = Sat_atpg.generate circuit fault in
      let podem = Podem.generate ~config:{ Podem.default_config with backtrack_limit = 10_000 } ctx fault in
      match (sat, podem) with
      | Sat_atpg.Unknown, _ -> Alcotest.fail (name ^ ": tiny circuit must be decidable")
      | Sat_atpg.Detected cube, Podem.Detected _ ->
          let v = Cube.fill_const true cube in
          Alcotest.(check bool) (name ^ ": SAT vector verified") true
            (Fault_sim.detects sim ~pi:v.Cube.pi ~state:v.Cube.scan fault)
      | Sat_atpg.Untestable, Podem.Untestable -> ()
      | Sat_atpg.Detected _, Podem.Untestable ->
          Alcotest.fail (name ^ ": PODEM wrongly declared untestable (SAT found a test)")
      | Sat_atpg.Untestable, Podem.Detected _ ->
          Alcotest.fail (name ^ ": PODEM 'detected' a provably redundant fault")
      | _, Podem.Aborted -> () (* inconclusive on PODEM's side *))
    (Fault_gen.collapsed circuit)

let test_cross_validation_fig1 () = agree_on fig1
let test_cross_validation_s27 () = agree_on s27

let test_cross_validation_synth () =
  (* A slice of a synthetic circuit's faults, both engines, full agreement. *)
  let c = Tvs_circuits.Synth.generate_named "s444" in
  let ctx = Podem.create c in
  let sim = Fault_sim.create c in
  let faults = Fault_gen.collapsed c in
  Array.iteri
    (fun i fault ->
      if i mod 17 = 0 then begin
        let name = Fault.name c fault in
        match (Sat_atpg.generate ~max_decisions:20_000 c fault, Podem.generate ctx fault) with
        | Sat_atpg.Unknown, _ -> () (* budget exhausted: inconclusive *)
        | Sat_atpg.Detected cube, (Podem.Detected _ | Podem.Aborted) ->
            let v = Cube.fill_const false cube in
            Alcotest.(check bool) (name ^ ": SAT vector verified") true
              (Fault_sim.detects sim ~pi:v.Cube.pi ~state:v.Cube.scan fault)
        | Sat_atpg.Untestable, (Podem.Untestable | Podem.Aborted) -> ()
        | Sat_atpg.Detected _, Podem.Untestable ->
            Alcotest.fail (name ^ ": PODEM under-approximated")
        | Sat_atpg.Untestable, Podem.Detected _ ->
            Alcotest.fail (name ^ ": PODEM over-approximated")
      end)
    faults

let test_sat_atpg_constraints () =
  (* The D/0 example from the PODEM tests: activation needs A = B = 1, so
     pinning A to 0 must yield a redundancy proof. *)
  let d0 = Tvs_circuits.Fig1.paper_fault fig1 "D/0" in
  let constraints = [| Ternary.Zero; Ternary.X; Ternary.X |] in
  (match Sat_atpg.generate ~constraints fig1 d0 with
  | Sat_atpg.Untestable -> ()
  | Sat_atpg.Detected _ | Sat_atpg.Unknown -> Alcotest.fail "unactivatable under A = 0");
  (* And with compatible constraints the cube honours them. *)
  let constraints = [| Ternary.One; Ternary.X; Ternary.X |] in
  match Sat_atpg.generate ~constraints fig1 d0 with
  | Sat_atpg.Detected cube ->
      Alcotest.(check char) "cell 0 honoured" '1' (Ternary.to_char cube.Cube.scan.(0))
  | Sat_atpg.Untestable | Sat_atpg.Unknown -> Alcotest.fail "testable under A = 1"

let () =
  Alcotest.run "sat-atpg"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial cases" `Quick test_sat_trivial;
          Alcotest.test_case "units and conflicts" `Quick test_sat_units_and_conflict;
          Alcotest.test_case "pigeonhole 3/2" `Quick test_sat_pigeonhole_3_2;
          Alcotest.test_case "random models verified" `Quick test_sat_models_verified;
          Alcotest.test_case "literal validation" `Quick test_sat_rejects_bad_literal;
        ] );
      ( "atpg",
        [
          Alcotest.test_case "fig1 faults" `Quick test_sat_atpg_fig1;
          Alcotest.test_case "constraints" `Quick test_sat_atpg_constraints;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "PODEM agreement on fig1" `Quick test_cross_validation_fig1;
          Alcotest.test_case "PODEM agreement on s27" `Quick test_cross_validation_s27;
          Alcotest.test_case "PODEM agreement on s444 sample" `Quick test_cross_validation_synth;
        ] );
    ]
